#!/bin/sh
# Benchmark the scoring engine and record a machine-readable baseline.
#
# Runs the three scoring-path benchmarks (single-vector analysis loop,
# batched ScoreBatch at B=64, sharded multi-stream pipeline) several
# times, takes the median ns/op of each, and writes BENCH_scoring.json
# at the repo root with the derived batch-vs-single and sharded-vs-single
# speedups. The acceptance bar tracked by this file: batch_speedup >= 2.
#
# Usage: scripts/bench.sh [count] [benchtime]
#   count     repetitions per benchmark for the median (default 3)
#   benchtime go test -benchtime value (default 2s; use 10x for a smoke run)
set -eu

cd "$(dirname "$0")/.."

COUNT="${1:-3}"
BENCHTIME="${2:-2s}"
OUT="BENCH_scoring.json"

RAW="$(go test -run '^$' \
  -bench 'AnalysisTime_L1472_Lp9_J5$|ScoreBatch$|ShardedPipeline$' \
  -benchmem -benchtime="$BENCHTIME" -count="$COUNT" .)"

printf '%s\n' "$RAW"

printf '%s\n' "$RAW" | awk -v out="$OUT" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)          # strip GOMAXPROCS suffix
    sub(/^Benchmark/, "", name)
    ns[name] = ns[name] " " $3
    allocs[name] = $7                  # identical across reps (pinned to 0)
    n[name]++
}
function median(list, cnt,    arr, i, j, tmp, m) {
    m = split(list, arr, " ")
    for (i = 1; i < m; i++)
        for (j = i + 1; j <= m; j++)
            if (arr[j] + 0 < arr[i] + 0) { tmp = arr[i]; arr[i] = arr[j]; arr[j] = tmp }
    if (m % 2) return arr[(m + 1) / 2] + 0
    return (arr[m / 2] + arr[m / 2 + 1]) / 2
}
function field(key, bench,    v) {
    if (!(bench in ns)) { printf "bench.sh: missing benchmark %s\n", bench > "/dev/stderr"; exit 1 }
    v = median(ns[bench], n[bench])
    printf "  \"%s\": {\"ns_per_op\": %.1f, \"allocs_per_op\": %d},\n", key, v, allocs[bench] + 0 >> out
    return v
}
END {
    printf "{\n" > out
    single  = field("single",  "AnalysisTime_L1472_Lp9_J5")
    batch   = field("batch64", "ScoreBatch")
    sharded = field("sharded", "ShardedPipeline")
    printf "  \"batch_speedup\": %.2f,\n", single / batch >> out
    printf "  \"sharded_speedup\": %.2f\n", single / sharded >> out
    printf "}\n" >> out
    if (single / batch < 2.0) {
        printf "bench.sh: batch speedup %.2fx below the 2x bar\n", single / batch > "/dev/stderr"
        exit 1
    }
}
'

echo
echo "wrote $OUT:"
cat "$OUT"
