#!/bin/sh
# Benchmark the scoring and training engines and record machine-readable
# baselines.
#
# Every BENCH_*.json records the runner's runtime.NumCPU() as "cpus" so
# a baseline declares the parallelism it was measured under. Speedup
# rows that compare a parallel engine against its serial twin
# (sharded_speedup, train_speedup, pca_speedup) are SKIPPED — not
# recorded as 1.0x — on single-CPU runners, where the comparison is
# meaningless by construction.
#
# Scoring: runs the three scoring-path benchmarks (single-vector
# analysis loop, batched ScoreBatch at B=64, sharded multi-stream
# pipeline) several times, takes the median ns/op of each, and writes
# BENCH_scoring.json at the repo root with the derived batch-vs-single
# and (on multi-core runners) sharded-vs-single speedups. Bar:
# batch_speedup >= 2.
#
# Training: runs the training-engine benchmarks (core.Train serial vs
# parallel, pca.Train serial vs parallel, trace decode per-record vs
# ReadBatch, and the internal/train steady-state EM iteration) and
# writes BENCH_training.json. Bars: the EM iteration must allocate 0
# times per op on every machine; core.Train parallel speedup >= 2.5 is
# enforced only on multi-core runners (serial and parallel are
# bit-identical, so a single-core machine legitimately shows 1.0x).
#
# Scenarios: runs the full scenario × detector matrix at medium scale
# (mhmreport -exp scenarios) and writes BENCH_scenarios.json — the
# repo's detection-quality baseline (per-scenario AUC, detection latency
# and false-positive rates). Bar: on the stealthy scenarios (mimicry,
# slow-drift) the best ensemble AUC must not fall below the best single
# detector — otherwise the fusion layer is dead weight.
#
# Fleet: runs the deterministic fleet simulator (cmd/mhmfleet) at 1k,
# 10k and 100k streams — a capacity-sized nominal run and an overloaded
# run per scale — and writes BENCH_fleet.json (streams/sec, virtual p99
# interval latency, virtual p99 alarm-delivery latency, shed counts).
# Bars: the nominal run must shed nothing (shedding engages only above
# configured capacity) and the overloaded run must shed something.
#
# Refresh: benchmarks the online model-refresh engine's Observe hot
# path, then runs experiment A14 (mhmreport -exp refresh) — one
# steady-state incremental refresh against the full retrain it replaces,
# detection-quality parity on a shared eval set, and a mini fleet run
# with the refresh loop hot-swapping models — and writes
# BENCH_refresh.json. Bars: Observe must allocate 0 times per op,
# refresh speedup >= 10x, AUC gap <= 0.02, dropped intervals == 0.
#
# Usage: scripts/bench.sh [count] [benchtime]
#   count     repetitions per benchmark for the median (default 3)
#   benchtime go test -benchtime value (default 2s; use 10x for a smoke run)
set -eu

cd "$(dirname "$0")/.."

COUNT="${1:-3}"
BENCHTIME="${2:-2s}"
OUT="BENCH_scoring.json"

# The machine's processor count, NOT go env GOMAXPROCS (which reports
# the environment override, not the hardware).
CPUS="$(go run ./scripts/numcpu)"
case "$CPUS" in ''|*[!0-9]*) CPUS=1 ;; esac

RAW="$(go test -run '^$' \
  -bench 'AnalysisTime_L1472_Lp9_J5$|ScoreBatch$|ShardedPipeline$' \
  -benchmem -benchtime="$BENCHTIME" -count="$COUNT" .)"

printf '%s\n' "$RAW"

printf '%s\n' "$RAW" | awk -v out="$OUT" -v cpus="$CPUS" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)          # strip GOMAXPROCS suffix
    sub(/^Benchmark/, "", name)
    ns[name] = ns[name] " " $3
    allocs[name] = $7                  # identical across reps (pinned to 0)
    n[name]++
}
function median(list, cnt,    arr, i, j, tmp, m) {
    m = split(list, arr, " ")
    for (i = 1; i < m; i++)
        for (j = i + 1; j <= m; j++)
            if (arr[j] + 0 < arr[i] + 0) { tmp = arr[i]; arr[i] = arr[j]; arr[j] = tmp }
    if (m % 2) return arr[(m + 1) / 2] + 0
    return (arr[m / 2] + arr[m / 2 + 1]) / 2
}
function field(key, bench,    v) {
    if (!(bench in ns)) { printf "bench.sh: missing benchmark %s\n", bench > "/dev/stderr"; exit 1 }
    v = median(ns[bench], n[bench])
    printf "  \"%s\": {\"ns_per_op\": %.1f, \"allocs_per_op\": %d},\n", key, v, allocs[bench] + 0 >> out
    return v
}
END {
    printf "{\n" > out
    printf "  \"cpus\": %d,\n", cpus >> out
    single  = field("single",  "AnalysisTime_L1472_Lp9_J5")
    batch   = field("batch64", "ScoreBatch")
    sharded = field("sharded", "ShardedPipeline")
    if (cpus > 1)
        printf "  \"sharded_speedup\": %.2f,\n", single / sharded >> out
    else
        printf "bench.sh: single-core runner; sharded_speedup row skipped\n" > "/dev/stderr"
    printf "  \"batch_speedup\": %.2f\n", single / batch >> out
    printf "}\n" >> out
    if (single / batch < 2.0) {
        printf "bench.sh: batch speedup %.2fx below the 2x bar\n", single / batch > "/dev/stderr"
        exit 1
    }
}
'

echo
echo "wrote $OUT:"
cat "$OUT"

# ---------------------------------------------------------------- training

TRAIN_OUT="BENCH_training.json"

TRAIN_RAW="$(go test -run '^$' \
  -bench 'CoreTrainSerial$|CoreTrainParallel$|PCATrain$|PCATrainParallel$|TraceReadRecord$|TraceReadBatch$' \
  -benchmem -benchtime="$BENCHTIME" -count="$COUNT" .)"
EM_RAW="$(go test -run '^$' -bench 'TrainEM$' \
  -benchmem -benchtime="$BENCHTIME" -count="$COUNT" ./internal/train)"

printf '%s\n%s\n' "$TRAIN_RAW" "$EM_RAW"

printf '%s\n%s\n' "$TRAIN_RAW" "$EM_RAW" | awk -v out="$TRAIN_OUT" -v cpus="$CPUS" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)          # strip GOMAXPROCS suffix
    sub(/^Benchmark/, "", name)
    ns[name] = ns[name] " " $3
    allocs[name] = $7                  # identical across reps
    n[name]++
}
function median(list, cnt,    arr, i, j, tmp, m) {
    m = split(list, arr, " ")
    for (i = 1; i < m; i++)
        for (j = i + 1; j <= m; j++)
            if (arr[j] + 0 < arr[i] + 0) { tmp = arr[i]; arr[i] = arr[j]; arr[j] = tmp }
    if (m % 2) return arr[(m + 1) / 2] + 0
    return (arr[m / 2] + arr[m / 2 + 1]) / 2
}
function field(key, bench,    v) {
    if (!(bench in ns)) { printf "bench.sh: missing benchmark %s\n", bench > "/dev/stderr"; exit 1 }
    v = median(ns[bench], n[bench])
    printf "  \"%s\": {\"ns_per_op\": %.1f, \"allocs_per_op\": %d},\n", key, v, allocs[bench] + 0 >> out
    return v
}
END {
    printf "{\n" > out
    printf "  \"cpus\": %d,\n", cpus >> out
    serial   = field("core_train_serial",   "CoreTrainSerial")
    parallel = field("core_train_parallel", "CoreTrainParallel")
    pcas     = field("pca_train_serial",    "PCATrain")
    pcap     = field("pca_train_parallel",  "PCATrainParallel")
    record   = field("trace_read_record",   "TraceReadRecord")
    batch    = field("trace_read_batch",    "TraceReadBatch")
    em       = field("em_iteration",        "TrainEM")
    if (cpus > 1) {
        printf "  \"train_speedup\": %.2f,\n", serial / parallel >> out
        printf "  \"pca_speedup\": %.2f,\n", pcas / pcap >> out
    } else {
        printf "bench.sh: single-core runner; train_speedup/pca_speedup rows skipped\n" > "/dev/stderr"
    }
    printf "  \"ingest_speedup\": %.2f\n", record / batch >> out
    printf "}\n" >> out
    if (allocs["TrainEM"] + 0 != 0) {
        printf "bench.sh: EM iteration allocates %d times per op, want 0\n", allocs["TrainEM"] + 0 > "/dev/stderr"
        exit 1
    }
    if (cpus > 1 && serial / parallel < 2.5) {
        printf "bench.sh: core.Train parallel speedup %.2fx below the 2.5x bar on %d cpus\n", serial / parallel, cpus > "/dev/stderr"
        exit 1
    }
    if (cpus <= 1)
        printf "bench.sh: single-core runner; 2.5x train speedup bar skipped (serial==parallel bit-identical)\n" > "/dev/stderr"
}
'

echo
echo "wrote $TRAIN_OUT:"
cat "$TRAIN_OUT"

# ----------------------------------------------------------------- kernels
#
# Runtime-dispatched SIMD kernel baselines: the blocked B=64 panel
# product under the widest kernel the CPU offers AND under
# GODEBUG=cpu.avx2=off (the SSE2/compaction fallback), the sparse
# run-length scoring path, and the fused zero-copy ingest path
# (trace.ReadBatch -> memometer.SnoopBatch -> sparse collect ->
# ScoreSparse). Bars: the fused path must report 0 allocs/op, and on
# an AVX2 machine the dispatched batch kernel must beat the recorded
# pre-dispatch SSE2 baseline by >= 3x.

KERN_OUT="BENCH_kernels.json"

# The blocked SSE2 batch-64 ns/op this repo recorded before runtime
# dispatch existed (BENCH_scoring.json history, cpus:1 runner). Pinned,
# not remeasured: it is the fixed yardstick the AVX2 bar compares to.
SSE2_BASELINE_NS=2638

KERNELS="$(go run ./scripts/kernelname)"
SCORE_KERNEL="${KERNELS% *}"
TRAIN_KERNEL="${KERNELS#* }"
OFF_KERNELS="$(GODEBUG=cpu.avx2=off go run ./scripts/kernelname)"
OFF_SCORE_KERNEL="${OFF_KERNELS% *}"

KERN_RAW="$(go test -run '^$' -bench 'ScoreBatch$|ScoreSparse$|FusedTraceScore$' \
  -benchmem -benchtime="$BENCHTIME" -count="$COUNT" .)"
KERN_OFF_RAW="$(GODEBUG=cpu.avx2=off go test -run '^$' -bench 'ScoreBatch$' \
  -benchmem -benchtime="$BENCHTIME" -count="$COUNT" . | sed 's/^BenchmarkScoreBatch/BenchmarkScoreBatchOff/')"

printf '%s\n%s\n' "$KERN_RAW" "$KERN_OFF_RAW"

printf '%s\n%s\n' "$KERN_RAW" "$KERN_OFF_RAW" | awk -v out="$KERN_OUT" -v cpus="$CPUS" \
    -v score_kernel="$SCORE_KERNEL" -v train_kernel="$TRAIN_KERNEL" \
    -v off_kernel="$OFF_SCORE_KERNEL" -v baseline="$SSE2_BASELINE_NS" '
# Benchmark lines carry a variable column set (ReportMetric adds
# bytes/interval on the fused row), so collect every value/unit pair.
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)          # strip GOMAXPROCS suffix
    sub(/^Benchmark/, "", name)
    for (i = 3; i < NF; i += 2)
        vals[name SUBSEP $(i+1)] = vals[name SUBSEP $(i+1)] " " ($i + 0)
}
function median(list,    arr, i, j, tmp, m) {
    m = split(list, arr, " ")
    if (!m) { printf "bench.sh: missing kernel benchmark metric\n" > "/dev/stderr"; exit 1 }
    for (i = 1; i < m; i++)
        for (j = i + 1; j <= m; j++)
            if (arr[j] + 0 < arr[i] + 0) { tmp = arr[i]; arr[i] = arr[j]; arr[j] = tmp }
    if (m % 2) return arr[(m + 1) / 2] + 0
    return (arr[m / 2] + arr[m / 2 + 1]) / 2
}
function med(bench, unit) {
    if (!((bench SUBSEP unit) in vals)) {
        printf "bench.sh: missing %s %s\n", bench, unit > "/dev/stderr"; exit 1
    }
    return median(vals[bench SUBSEP unit])
}
END {
    batch      = med("ScoreBatch",      "ns/op")
    batchoff   = med("ScoreBatchOff",   "ns/op")
    sparse     = med("ScoreSparse",     "ns/op")
    fusedns    = med("FusedTraceScore", "ns/op")
    fusedbytes = med("FusedTraceScore", "bytes/interval")
    fusedalloc = med("FusedTraceScore", "allocs/op")
    speedup = baseline / batch
    printf "{\n" > out
    printf "  \"cpus\": %d,\n", cpus >> out
    printf "  \"score_kernel\": \"%s\",\n", score_kernel >> out
    printf "  \"train_kernel\": \"%s\",\n", train_kernel >> out
    printf "  \"sse2_batch64_baseline_ns\": %.1f,\n", baseline >> out
    printf "  \"batch64\": {\"ns_per_op\": %.1f, \"allocs_per_op\": %d},\n", batch, med("ScoreBatch", "allocs/op") >> out
    printf "  \"batch64_avx2_off\": {\"kernel\": \"%s\", \"ns_per_op\": %.1f, \"allocs_per_op\": %d},\n", off_kernel, batchoff, med("ScoreBatchOff", "allocs/op") >> out
    printf "  \"sparse\": {\"ns_per_op\": %.1f, \"allocs_per_op\": %d},\n", sparse, med("ScoreSparse", "allocs/op") >> out
    printf "  \"fused\": {\"ns_per_interval\": %.1f, \"bytes_per_interval\": %.1f, \"allocs_per_op\": %d},\n", fusedns, fusedbytes, fusedalloc >> out
    printf "  \"batch_speedup_vs_sse2_baseline\": %.2f\n", speedup >> out
    printf "}\n" >> out
    if (fusedalloc + 0 != 0) {
        printf "bench.sh: fused path allocates %d times per op, want 0\n", fusedalloc > "/dev/stderr"
        exit 1
    }
    if (score_kernel == "avx2" && speedup < 3.0) {
        printf "bench.sh: dispatched batch kernel %.2fx over the recorded SSE2 baseline, below the 3x bar\n", speedup > "/dev/stderr"
        exit 1
    }
    if (score_kernel != "avx2")
        printf "bench.sh: score kernel is %s, not avx2; 3x-vs-SSE2 bar skipped\n", score_kernel > "/dev/stderr"
}
'

echo
echo "wrote $KERN_OUT:"
cat "$KERN_OUT"

# --------------------------------------------------------------- scenarios

SCEN_OUT="BENCH_scenarios.json"
go run ./cmd/mhmreport -exp scenarios -scale medium -seed 1 -json "$SCEN_OUT"

awk '
/"scenario":/ { gsub(/[",]/, "", $2); scen = $2 }
/"detector":/ { gsub(/[",]/, "", $2); det = $2 }
/"auc":/ {
    gsub(/,/, "", $2)
    auc[scen "/" det] = $2 + 0
}
END {
    fail = 0
    n = split("mimicry slow-drift", stealthy, " ")
    for (i = 1; i <= n; i++) {
        s = stealthy[i]
        single = auc[s "/mhm"]
        if (auc[s "/syscall"] > single) single = auc[s "/syscall"]
        ens = auc[s "/ensemble-max"]
        if (auc[s "/ensemble-wsum"] > ens) ens = auc[s "/ensemble-wsum"]
        printf "scenarios: %-11s best single AUC %.3f, best ensemble AUC %.3f\n", s, single, ens
        if (ens < single) {
            printf "bench.sh: ensemble AUC %.3f below best single %.3f on %s\n", ens, single, s > "/dev/stderr"
            fail = 1
        }
    }
    exit fail
}
' "$SCEN_OUT"

echo
echo "wrote $SCEN_OUT"

# ------------------------------------------------------------------- fleet

FLEET_OUT="BENCH_fleet.json"

# Shard the fleet to nominal capacity: one shard serves
# interval/service = 10ms/50µs = 200 streams, halved for headroom.
fleet_run() { # scale shards extra_flags...
    _scale="$1"; _shards="$2"; shift 2
    go run ./cmd/mhmfleet -json -streams "$_scale" -shards "$_shards" \
        -seed 1 -horizon 300 -anomaly-frac 0.01 "$@"
}

printf '{\n  "cpus": %d,\n  "scales": [\n' "$CPUS" > "$FLEET_OUT"
FIRST=1
FLEET_FAIL=0
for SCALE in 1000 10000 100000; do
    SHARDS=$((SCALE / 100))
    [ "$SHARDS" -lt 4 ] && SHARDS=4
    NOMINAL="$(fleet_run "$SCALE" "$SHARDS")"
    OVERLOAD="$(fleet_run "$SCALE" "$SHARDS" -overload 3)"
    [ "$FIRST" = 1 ] || printf ',\n' >> "$FLEET_OUT"
    FIRST=0
    printf '%s\n%s\n' "$NOMINAL" "$OVERLOAD" | awk -v scale="$SCALE" -v shards="$SHARDS" '
    BEGIN { r = 0 }   # record 0 = nominal, record 1 = overload
    function grab(line,    v) { v = line; gsub(/[^0-9.eE+-]/, "", v); return v + 0 }
    /"shed":/                      { shed[r] = grab($2) }
    /"streams_per_sec":/           { sps[r] = grab($2) }
    /"intervals_per_sec":/         { ips[r] = grab($2) }
    /"p99_interval_micros":/       { p99[r] = grab($2) }
    /"p99_alarm_delivery_micros":/ { del[r] = grab($2) }
    /^}/                           { r++ }
    END {
        printf "    {\"streams\": %d, \"shards\": %d,\n", scale, shards
        printf "     \"nominal\": {\"streams_per_sec\": %.0f, \"intervals_per_sec\": %.0f, \"p99_interval_micros\": %.1f, \"p99_alarm_delivery_micros\": %.1f, \"shed\": %d},\n", sps[0], ips[0], p99[0], del[0], shed[0]
        printf "     \"overload\": {\"streams_per_sec\": %.0f, \"intervals_per_sec\": %.0f, \"p99_interval_micros\": %.1f, \"p99_alarm_delivery_micros\": %.1f, \"shed\": %d}}", sps[1], ips[1], p99[1], del[1], shed[1]
        if (shed[0] != 0) {
            printf "bench.sh: fleet nominal run at %d streams shed %d intervals, want 0\n", scale, shed[0] > "/dev/stderr"
            exit 1
        }
        if (shed[1] == 0) {
            printf "bench.sh: fleet overload run at %d streams shed nothing\n", scale > "/dev/stderr"
            exit 1
        }
    }
    ' >> "$FLEET_OUT" || FLEET_FAIL=1
done
printf '\n  ]\n}\n' >> "$FLEET_OUT"
[ "$FLEET_FAIL" = 0 ] || { echo "bench.sh: fleet bars failed" >&2; exit 1; }

echo
echo "wrote $FLEET_OUT:"
cat "$FLEET_OUT"

# ----------------------------------------------------------------- refresh

REFRESH_OUT="BENCH_refresh.json"

REFRESH_RAW="$(go test -run '^$' -bench 'CenteredObserve$' \
  -benchmem -benchtime="$BENCHTIME" -count="$COUNT" ./internal/refresh)"

printf '%s\n' "$REFRESH_RAW"

printf '%s\n' "$REFRESH_RAW" | awk '
/^BenchmarkCenteredObserve/ {
    found = 1
    if ($7 + 0 != 0) {
        printf "bench.sh: refresh Observe allocates %d times per op, want 0\n", $7 + 0 > "/dev/stderr"
        exit 1
    }
}
END {
    if (!found) {
        print "bench.sh: missing BenchmarkCenteredObserve" > "/dev/stderr"
        exit 1
    }
}
'

go run ./cmd/mhmreport -exp refresh -seed 1 -json "$REFRESH_OUT"

awk '
/"speedup":/           { gsub(/,/, "", $2); speedup = $2 + 0 }
/"auc_gap":/           { gsub(/,/, "", $2); gap = $2 + 0 }
/"dropped_intervals":/ { gsub(/,/, "", $2); dropped = $2 + 0 }
END {
    fail = 0
    if (speedup < 10) {
        printf "bench.sh: refresh speedup %.2fx below the 10x bar\n", speedup > "/dev/stderr"
        fail = 1
    }
    if (gap > 0.02) {
        printf "bench.sh: refreshed-vs-retrained AUC gap %.4f above the 0.02 slack\n", gap > "/dev/stderr"
        fail = 1
    }
    if (dropped != 0) {
        printf "bench.sh: refresh loop dropped %d intervals across hot swaps, want 0\n", dropped > "/dev/stderr"
        fail = 1
    }
    exit fail
}
' "$REFRESH_OUT"

echo
echo "wrote $REFRESH_OUT:"
cat "$REFRESH_OUT"
