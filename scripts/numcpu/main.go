// Command numcpu prints runtime.NumCPU() — the number of CPUs usable
// by the current process. bench.sh records it in every BENCH_*.json so
// a baseline declares the parallelism it was measured under, and uses
// it to decide whether parallel-speedup bars apply (a single-CPU runner
// legitimately shows 1.0x on bit-identical serial/parallel engines).
//
// go env GOMAXPROCS is NOT a substitute: it reports the environment
// override (usually unset, printed as the literal default), not the
// machine's processor count.
package main

import (
	"fmt"
	"runtime"
)

func main() {
	fmt.Println(runtime.NumCPU())
}
