// Command kernelname prints the SIMD kernel runtime dispatch selected
// for the scoring and training engines on this machine, as two
// space-separated words (for example "avx2 avx2", or "sse2 sse2" under
// GODEBUG=cpu.avx2=off, or "go go" on targets without kernels).
// bench.sh records them in BENCH_kernels.json so a kernel baseline
// declares which implementation it measured.
package main

import (
	"fmt"

	"github.com/memheatmap/mhm/internal/score"
	"github.com/memheatmap/mhm/internal/train"
)

func main() {
	fmt.Println(score.Kernel(), train.Kernel())
}
