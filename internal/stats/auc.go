package stats

import (
	"fmt"
	"math"
)

// AUC returns the Mann-Whitney estimate of the area under the ROC
// curve: the probability that a randomly drawn positive score exceeds a
// randomly drawn negative one, with ties counting half. Scores must be
// oriented so that higher means more positive (more anomalous); 0.5 is
// chance, 1.0 perfect separation. NaN scores are rejected — a detector
// that emits them is broken, and silently dropping them would inflate
// the estimate.
func AUC(neg, pos []float64) (float64, error) {
	if len(neg) == 0 || len(pos) == 0 {
		return 0, fmt.Errorf("stats: AUC needs both classes (%d neg, %d pos): %w",
			len(neg), len(pos), ErrEmpty)
	}
	for _, x := range neg {
		if math.IsNaN(x) {
			return 0, fmt.Errorf("stats: AUC over NaN negative score: %w", ErrEmpty)
		}
	}
	for _, x := range pos {
		if math.IsNaN(x) {
			return 0, fmt.Errorf("stats: AUC over NaN positive score: %w", ErrEmpty)
		}
	}
	// Pairwise count; the tie branch is reached exactly when neither
	// ordering holds, avoiding float equality. The corpus sizes here are
	// hundreds of intervals, so O(n·m) is immaterial.
	wins := 0.0
	for _, p := range pos {
		for _, n := range neg {
			if p > n {
				wins++
			} else if !(p < n) {
				wins += 0.5
			}
		}
	}
	return wins / (float64(len(neg)) * float64(len(pos))), nil
}
