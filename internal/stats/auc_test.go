package stats

import (
	"errors"
	"math"
	"testing"
)

func TestAUC(t *testing.T) {
	// Perfect separation.
	if a, err := AUC([]float64{1, 2, 3}, []float64{4, 5}); err != nil || a != 1 {
		t.Errorf("perfect: %v, %v", a, err)
	}
	// Perfectly inverted.
	if a, err := AUC([]float64{4, 5}, []float64{1, 2, 3}); err != nil || a != 0 {
		t.Errorf("inverted: %v, %v", a, err)
	}
	// Identical distributions: chance.
	if a, err := AUC([]float64{1, 2}, []float64{1, 2}); err != nil || math.Abs(a-0.5) > 1e-12 {
		t.Errorf("chance: %v, %v", a, err)
	}
	// Hand-computed mix: neg={1,3}, pos={2,3}. Pairs: (2>1)=1, (2<3)=0,
	// (3>1)=1, (3=3)=0.5 → 2.5/4.
	if a, err := AUC([]float64{1, 3}, []float64{2, 3}); err != nil || math.Abs(a-0.625) > 1e-12 {
		t.Errorf("mixed: %v, %v", a, err)
	}
	// ±Inf order correctly.
	if a, err := AUC([]float64{math.Inf(-1), 0}, []float64{math.Inf(1)}); err != nil || a != 1 {
		t.Errorf("inf: %v, %v", a, err)
	}
	if _, err := AUC(nil, []float64{1}); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty neg: %v", err)
	}
	if _, err := AUC([]float64{1}, nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty pos: %v", err)
	}
	if _, err := AUC([]float64{math.NaN()}, []float64{1}); !errors.Is(err, ErrEmpty) {
		t.Errorf("NaN: %v", err)
	}
}
