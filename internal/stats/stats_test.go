package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, err := Mean(xs)
	if err != nil {
		t.Fatal(err)
	}
	if m != 5 {
		t.Errorf("Mean = %g, want 5", m)
	}
	v, err := Variance(xs)
	if err != nil {
		t.Fatal(err)
	}
	// Sample variance with n-1: sum sq dev = 32, /7.
	if math.Abs(v-32.0/7) > 1e-12 {
		t.Errorf("Variance = %g, want %g", v, 32.0/7)
	}
	sd, err := StdDev(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sd-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("StdDev = %g", sd)
	}
}

func TestEmptyInputs(t *testing.T) {
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Mean(nil): %v", err)
	}
	if _, err := Variance(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Variance(nil): %v", err)
	}
	if _, err := StdDev(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("StdDev(nil): %v", err)
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Errorf("Quantile(nil): %v", err)
	}
	if _, err := Min(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Min(nil): %v", err)
	}
	if _, err := Max(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Max(nil): %v", err)
	}
}

func TestSingleObservation(t *testing.T) {
	v, err := Variance([]float64{3})
	if err != nil || v != 0 {
		t.Errorf("Variance single = %g, %v", v, err)
	}
	q, err := Quantile([]float64{3}, 0.99)
	if err != nil || q != 3 {
		t.Errorf("Quantile single = %g, %v", q, err)
	}
}

func TestQuantileKnownValues(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if _, err := Quantile(xs, -0.1); err == nil {
		t.Error("negative p accepted")
	}
	if _, err := Quantile(xs, 1.1); err == nil {
		t.Error("p > 1 accepted")
	}
	if _, err := Quantile(xs, math.NaN()); err == nil {
		t.Error("NaN p accepted")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Errorf("Quantile mutated input: %v", xs)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	// Property: quantile is monotone in p and bounded by min/max.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		lo, _ := Min(xs)
		hi, _ := Max(xs)
		prev := lo
		for p := 0.0; p <= 1.0; p += 0.1 {
			q, err := Quantile(xs, p)
			if err != nil {
				return false
			}
			if q < prev-1e-9 || q < lo-1e-9 || q > hi+1e-9 {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	mn, _ := Min(xs)
	mx, _ := Max(xs)
	if mn != -1 || mx != 7 {
		t.Errorf("Min/Max = %g/%g", mn, mx)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
		w.Add(xs[i])
	}
	bm, _ := Mean(xs)
	bv, _ := Variance(xs)
	if math.Abs(w.Mean()-bm) > 1e-10 {
		t.Errorf("Welford mean %g vs batch %g", w.Mean(), bm)
	}
	if math.Abs(w.Variance()-bv) > 1e-9 {
		t.Errorf("Welford var %g vs batch %g", w.Variance(), bv)
	}
	if w.N() != 1000 {
		t.Errorf("N = %d", w.N())
	}
}

func TestWelfordSmallN(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdDev() != 0 {
		t.Error("zero-value Welford not zero")
	}
	w.Add(5)
	if w.Mean() != 5 || w.Variance() != 0 {
		t.Errorf("one obs: mean=%g var=%g", w.Mean(), w.Variance())
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 1.9, 2, 5, 9.99, -3, 42} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d", h.Total())
	}
	// -3 clamps into bucket 0; 42 into bucket 4.
	if h.Counts[0] != 3 { // 0, 1.9, -3
		t.Errorf("bucket 0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[4] != 2 { // 9.99, 42
		t.Errorf("bucket 4 = %d, want 2", h.Counts[4])
	}
	if c := h.BucketCenter(0); c != 1 {
		t.Errorf("BucketCenter(0) = %g, want 1", c)
	}
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("lo==hi accepted")
	}
}
