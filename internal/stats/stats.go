// Package stats provides the small statistical toolkit the detector
// needs: summary statistics, quantiles (for θ_p threshold calibration),
// histograms and online accumulators.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned when a statistic is requested over no data.
var ErrEmpty = errors.New("stats: empty data")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// Variance returns the unbiased sample variance of xs (n-1 denominator).
// A single observation has variance 0.
func Variance(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if len(xs) == 1 {
		return 0, nil
	}
	m, _ := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1), nil
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Quantile returns the p-quantile (0 <= p <= 1) of xs using linear
// interpolation between order statistics (type-7, the common default).
// This is the θ_p calibration primitive: the paper sets the detection
// threshold to the p-quantile of normal-set densities.
func Quantile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("stats: Quantile: p=%g out of [0,1]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	h := p * float64(len(sorted)-1)
	lo := int(math.Floor(h))
	hi := int(math.Ceil(h))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Min returns the smallest element.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Welford is an online mean/variance accumulator (Welford's algorithm),
// used for streaming statistics over interval series without retaining
// the series.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations seen.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 before any observation).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running unbiased sample variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the running sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Histogram is a fixed-width bucket histogram over [Lo, Hi); values
// outside the range are clamped into the edge buckets so nothing is
// silently dropped.
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram builds a histogram with n buckets over [lo, hi).
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: NewHistogram: n=%d must be positive", n)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: NewHistogram: lo=%g must be < hi=%g", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	n := len(h.Counts)
	idx := int(float64(n) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	h.Counts[idx]++
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BucketCenter returns the midpoint value of bucket i.
func (h *Histogram) BucketCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}
