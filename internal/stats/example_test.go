package stats_test

import (
	"fmt"

	"github.com/memheatmap/mhm/internal/stats"
)

// ExampleQuantile shows θ_p calibration: the paper sets the detection
// threshold to the p-quantile of normal-set densities.
func ExampleQuantile() {
	densities := []float64{-30, -31, -29, -32, -35, -30, -33, -31, -30, -50}
	theta05, _ := stats.Quantile(densities, 0.005)
	theta1, _ := stats.Quantile(densities, 0.01)
	fmt.Printf("θ0.5 = %.2f\n", theta05)
	fmt.Printf("θ1   = %.2f\n", theta1)
	fmt.Println("ordered:", theta05 <= theta1)
	// Output:
	// θ0.5 = -49.33
	// θ1   = -48.65
	// ordered: true
}
