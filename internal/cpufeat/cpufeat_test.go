package cpufeat

import (
	"os"
	"runtime"
	"testing"
)

func TestDisabledParsesGODEBUG(t *testing.T) {
	cases := []struct {
		godebug string
		feature string
		want    bool
	}{
		{"", "avx2", false},
		{"cpu.avx2=off", "avx2", true},
		{"cpu.avx2=off", "asimd", false},
		{"cpu.all=off", "avx2", true},
		{"cpu.all=off", "asimd", true},
		{"gctrace=1,cpu.avx2=off,schedtrace=100", "avx2", true},
		{"cpu.avx2=on", "avx2", false},
		{"cpu.avx512=off", "avx2", false},
	}
	old, had := os.LookupEnv("GODEBUG")
	defer func() {
		if had {
			os.Setenv("GODEBUG", old)
		} else {
			os.Unsetenv("GODEBUG")
		}
	}()
	for _, c := range cases {
		os.Setenv("GODEBUG", c.godebug)
		if got := disabled(c.feature); got != c.want {
			t.Errorf("disabled(%q) with GODEBUG=%q = %v, want %v", c.feature, c.godebug, got, c.want)
		}
	}
}

func TestFeatureFlagsMatchArch(t *testing.T) {
	// Cross-arch sanity: a feature must never be reported for a
	// foreign architecture, and GODEBUG masking must win over
	// detection on the native one.
	if runtime.GOARCH != "amd64" && X86.HasAVX2 {
		t.Errorf("X86.HasAVX2 = true on %s", runtime.GOARCH)
	}
	if runtime.GOARCH != "arm64" && ARM64.HasASIMD {
		t.Errorf("ARM64.HasASIMD = true on %s", runtime.GOARCH)
	}
	if disabled("avx2") && X86.HasAVX2 {
		t.Error("X86.HasAVX2 = true although GODEBUG masks avx2")
	}
	if disabled("asimd") && ARM64.HasASIMD {
		t.Error("ARM64.HasASIMD = true although GODEBUG masks asimd")
	}
}
