package cpufeat

import "testing"

func TestDetectIsStable(t *testing.T) {
	// CPUID is a pure function of the hardware; repeated probes must
	// agree with the init-time answer modulo the GODEBUG mask.
	for i := 0; i < 3; i++ {
		if got := detectAVX2() && !disabled("avx2"); got != X86.HasAVX2 {
			t.Fatalf("probe %d: detectAVX2 = %v, init said %v", i, got, X86.HasAVX2)
		}
	}
}
