package cpufeat

// ASIMD (NEON) is part of the AArch64 baseline — every arm64 CPU Go
// runs on has it — so no probing is needed, only the GODEBUG mask.
func init() {
	ARM64.HasASIMD = !disabled("asimd")
}
