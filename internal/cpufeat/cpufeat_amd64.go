package cpufeat

// cpuid executes the CPUID instruction with the given leaf and
// subleaf. Implemented in cpuid_amd64.s.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0 (extended control register 0), which tells us
// whether the OS context-switches the YMM half of the AVX registers.
// Only legal once CPUID.1:ECX.OSXSAVE is confirmed. Implemented in
// cpuid_amd64.s.
func xgetbv() (eax, edx uint32)

func init() {
	X86.HasAVX2 = detectAVX2() && !disabled("avx2")
}

// detectAVX2 follows the Intel SDM recipe: AVX2 use is safe only when
// the CPU supports it (CPUID.7.0:EBX[5]), the CPU exposes XGETBV
// (CPUID.1:ECX[27] OSXSAVE) alongside AVX (CPUID.1:ECX[28]), and the
// OS has enabled both XMM and YMM state saving (XCR0[2:1] == 11b).
func detectAVX2() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	xcr0, _ := xgetbv()
	const xmmState = 1 << 1
	const ymmState = 1 << 2
	if xcr0&(xmmState|ymmState) != xmmState|ymmState {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}
