//go:build !amd64 && !arm64

package cpufeat

// No vector extensions are probed on other architectures; the kernels
// fall back to the portable Go reference implementations.
