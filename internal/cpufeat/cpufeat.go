// Package cpufeat detects the SIMD features the scoring and training
// kernels dispatch on. It is a dependency-free stand-in for
// golang.org/x/sys/cpu: the repo is stdlib-only, so the amd64 probe
// hand-rolls CPUID/XGETBV instead of importing the x repo.
//
// Detection runs once at package init. Features can be masked for
// testing and fallback qualification through the same GODEBUG
// convention x/sys/cpu honours: GODEBUG=cpu.avx2=off disables AVX2
// dispatch, GODEBUG=cpu.asimd=off disables NEON on arm64, and
// GODEBUG=cpu.all=off forces the portable reference kernels
// everywhere. Masking is strictly one-way — GODEBUG can turn a
// detected feature off, never fabricate one the hardware lacks.
package cpufeat

import (
	"os"
	"strings"
)

// X86 reports the amd64 vector extensions the kernels care about.
// HasAVX2 is true only when the CPU advertises AVX2, the OS has
// enabled YMM state (XGETBV), and GODEBUG has not masked it.
// Always false on other architectures.
var X86 struct {
	HasAVX2 bool
}

// ARM64 reports the arm64 vector extensions. ASIMD (NEON) is
// architecturally mandatory on AArch64, so HasASIMD is true on arm64
// unless masked via GODEBUG. Always false on other architectures.
var ARM64 struct {
	HasASIMD bool
}

// disabled reports whether GODEBUG masks the named feature, via
// either cpu.<feature>=off or the cpu.all=off blanket switch.
func disabled(feature string) bool {
	for _, kv := range strings.Split(os.Getenv("GODEBUG"), ",") {
		if kv == "cpu.all=off" || kv == "cpu."+feature+"=off" {
			return true
		}
	}
	return false
}
