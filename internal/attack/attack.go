// Package attack implements the paper's three §5.3 anomaly scenarios as
// installable transformations of a monitored-core session:
//
//  1. Application addition/deletion — qsort launched and later exited.
//  2. Shellcode execution — a payload injected into bitcount that
//     disables ASLR, spawns a shell and kills its host.
//  3. Kernel rootkit — an LKM loaded at runtime that hijacks the read
//     system call: loading is loud (module loader), the hijack itself
//     executes outside .text but delays every read.
//
// Each scenario has two stages: Transform rewires task behaviours before
// the scheduler exists; Install schedules its runtime events on a built
// session.
package attack

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/memheatmap/mhm/internal/kernelmap"
	"github.com/memheatmap/mhm/internal/rtos"
	"github.com/memheatmap/mhm/internal/securecore"
	"github.com/memheatmap/mhm/internal/workload"
)

// ErrScenario wraps invalid scenario parameters.
var ErrScenario = errors.New("attack: invalid scenario")

// Scenario is an attack that can be applied to a monitored-core setup.
type Scenario interface {
	// Name identifies the scenario in reports.
	Name() string
	// Transform rewires task behaviours in place before session build.
	Transform(tasks []*rtos.Task) error
	// Install schedules runtime events on the built scheduler; img is the
	// kernel image the session monitors (some scenarios register
	// module-space services on it).
	Install(sched *rtos.Scheduler, img *kernelmap.Image) error
}

// AppAddition launches an extra application at LaunchAt and (optionally)
// exits it at ExitAt — the paper's first scenario, with qsort.
type AppAddition struct {
	// Spec is the added application (use workload.QsortSpec() for the
	// paper's configuration).
	Spec workload.AppSpec
	// LaunchAt / ExitAt are absolute simulation times in µs; ExitAt 0
	// means the application never exits.
	LaunchAt, ExitAt int64
}

// Name implements Scenario.
func (a *AppAddition) Name() string { return "app-addition" }

// Transform implements Scenario; the scenario changes the task set only
// at runtime.
func (a *AppAddition) Transform([]*rtos.Task) error {
	if a.LaunchAt <= 0 {
		return fmt.Errorf("attack: app addition LaunchAt=%d: %w", a.LaunchAt, ErrScenario)
	}
	if a.ExitAt != 0 && a.ExitAt <= a.LaunchAt {
		return fmt.Errorf("attack: app addition ExitAt=%d before LaunchAt=%d: %w", a.ExitAt, a.LaunchAt, ErrScenario)
	}
	return nil
}

// Install implements Scenario.
func (a *AppAddition) Install(sched *rtos.Scheduler, img *kernelmap.Image) error {
	task, err := workload.BuildTask(img, a.Spec)
	if err != nil {
		return err
	}
	// The process launch itself uses kernel facilities: fork + execve in
	// a short one-shot before the periodic task starts.
	launchSegs := []rtos.Segment{
		{Kind: rtos.Syscall, Duration: 120, Service: kernelmap.SvcFork, Invocations: 1},
		{Kind: rtos.Syscall, Duration: 200, Service: kernelmap.SvcExec, Invocations: 1},
	}
	if err := sched.SpawnOneShotAt(a.LaunchAt, "launcher", launchSegs); err != nil {
		return err
	}
	if err := sched.AddTaskAt(a.LaunchAt, task); err != nil {
		return err
	}
	if a.ExitAt != 0 {
		// Process exit also runs kernel code.
		exitSegs := []rtos.Segment{
			{Kind: rtos.Syscall, Duration: 80, Service: kernelmap.SvcExit, Invocations: 1},
		}
		if err := sched.RemoveTaskAt(a.ExitAt, task.Name); err != nil {
			return err
		}
		if err := sched.SpawnOneShotAt(a.ExitAt, "reaper", exitSegs); err != nil {
			return err
		}
	}
	return nil
}

// Shellcode injects a payload into a host task: the first job released
// at or after InjectAt executes the payload — disable ASLR via
// personality(2), fork+exec a shell — and the host is killed. This is
// the paper's second scenario (shellcode in bitcount).
type Shellcode struct {
	// Host is the infected task name (paper: "bitcount").
	Host string
	// InjectAt is the absolute time from which the payload runs.
	InjectAt int64

	hostPeriod int64
	hostPhase  int64
}

// Name implements Scenario.
func (sc *Shellcode) Name() string { return "shellcode" }

// payloadSegments is the shellcode's observable behaviour: partial host
// work, then the exploit path.
func payloadSegments() []rtos.Segment {
	return []rtos.Segment{
		{Kind: rtos.Syscall, Duration: 4, Service: kernelmap.SvcSyscallEntry, Invocations: 2},
		{Kind: rtos.Syscall, Duration: 18, Service: kernelmap.SvcRead, Invocations: 1},
		{Kind: rtos.Compute, Duration: 700},                                                  // host work until the overflow triggers
		{Kind: rtos.Syscall, Duration: 8, Service: kernelmap.SvcPersonality, Invocations: 1}, // disable ASLR
		{Kind: rtos.Syscall, Duration: 120, Service: kernelmap.SvcFork, Invocations: 1},
		{Kind: rtos.Syscall, Duration: 200, Service: kernelmap.SvcExec, Invocations: 1}, // spawn shell
		{Kind: rtos.Syscall, Duration: 15, Service: kernelmap.SvcKill, Invocations: 1},  // host dies
		{Kind: rtos.Syscall, Duration: 80, Service: kernelmap.SvcExit, Invocations: 1},
	}
}

// Transform implements Scenario: it wraps the host's behaviour so the
// hijacked job runs the payload.
func (sc *Shellcode) Transform(tasks []*rtos.Task) error {
	if sc.InjectAt <= 0 {
		return fmt.Errorf("attack: shellcode InjectAt=%d: %w", sc.InjectAt, ErrScenario)
	}
	for _, t := range tasks {
		if t.Name != sc.Host {
			continue
		}
		sc.hostPeriod = t.Period
		sc.hostPhase = t.Phase
		base := t.Behavior
		period, phase, injectAt := t.Period, t.Phase, sc.InjectAt
		t.Behavior = rtos.BehaviorFunc(func(idx int64, rng *rand.Rand) []rtos.Segment {
			release := phase + idx*period
			if release >= injectAt {
				return payloadSegments()
			}
			return base.NewJob(idx, rng)
		})
		return nil
	}
	return fmt.Errorf("attack: shellcode host %q not in task set: %w", sc.Host, ErrScenario)
}

// hijackedRelease returns the release time of the first job at or after
// InjectAt.
func (sc *Shellcode) hijackedRelease() int64 {
	if sc.InjectAt <= sc.hostPhase {
		return sc.hostPhase
	}
	k := (sc.InjectAt - sc.hostPhase + sc.hostPeriod - 1) / sc.hostPeriod
	return sc.hostPhase + k*sc.hostPeriod
}

// Install implements Scenario: after the hijacked job the host is gone.
func (sc *Shellcode) Install(sched *rtos.Scheduler, img *kernelmap.Image) error {
	if sc.hostPeriod == 0 {
		return fmt.Errorf("attack: shellcode Install before Transform: %w", ErrScenario)
	}
	// Remove the host just before its next release after the hijacked
	// job; the payload killed it.
	return sched.RemoveTaskAt(sc.hijackedRelease()+sc.hostPeriod-1, sc.Host)
}

// SvcRootkitHook is the module-space execution profile of the rootkit's
// hooked read handler, registered on the image at Install time. Its
// addresses lie in the module area, outside .text: the paper's monitor
// never sees them (limitation iv); a module-region monitor does.
const SvcRootkitHook = "rootkit_hook"

// RootkitLKM loads a kernel module at LoadAt that hijacks read(2) by
// rewriting the system call table — the paper's third scenario. Loading
// executes the in-.text module loader (visible, Fig. 9's spike); the
// hijacked handler itself lives in module space *outside* the monitored
// region and simply calls the original handler after inspecting the
// buffer, so the steady state changes no .text traffic — only read
// latency (Fig. 9 steady state vs Fig. 10's sha-synchronized dips).
type RootkitLKM struct {
	// LoadAt is the insmod time.
	LoadAt int64
	// ReadDelay is the extra kernel-side latency per hijacked read
	// invocation in µs (default 40).
	ReadDelay int64
}

// Name implements Scenario.
func (rk *RootkitLKM) Name() string { return "rootkit-lkm" }

// Transform implements Scenario: every read syscall issued after LoadAt
// takes ReadDelay extra microseconds executing module-space code that
// emits nothing into the monitored region (modeled as a non-emitting
// segment).
func (rk *RootkitLKM) Transform(tasks []*rtos.Task) error {
	if rk.LoadAt <= 0 {
		return fmt.Errorf("attack: rootkit LoadAt=%d: %w", rk.LoadAt, ErrScenario)
	}
	if rk.ReadDelay == 0 {
		rk.ReadDelay = 40
	}
	if rk.ReadDelay < 0 {
		return fmt.Errorf("attack: rootkit ReadDelay=%d: %w", rk.ReadDelay, ErrScenario)
	}
	for _, t := range tasks {
		base := t.Behavior
		period, phase, loadAt, delay := t.Period, t.Phase, rk.LoadAt, rk.ReadDelay
		t.Behavior = rtos.BehaviorFunc(func(idx int64, rng *rand.Rand) []rtos.Segment {
			segs := base.NewJob(idx, rng)
			if phase+idx*period < loadAt {
				return segs
			}
			out := make([]rtos.Segment, 0, len(segs)+4)
			for _, seg := range segs {
				out = append(out, seg)
				if seg.Kind == rtos.Syscall && seg.Service == kernelmap.SvcRead {
					// The hook executes in module space: time passes and
					// fetches land at module-area addresses the .text
					// monitor filters out (a module-region monitor sees
					// them — see securecore.MultiSession).
					out = append(out, rtos.Segment{
						Kind:        rtos.Syscall,
						Duration:    delay * int64(seg.Invocations),
						Service:     SvcRootkitHook,
						Invocations: seg.Invocations,
					})
				}
			}
			return out
		})
	}
	return nil
}

// Install implements Scenario: insmod runs as a one-shot kernel job,
// and the hook's module-space execution profile is registered on the
// image (idempotently — labs share images across scenario runs).
func (rk *RootkitLKM) Install(sched *rtos.Scheduler, img *kernelmap.Image) error {
	if _, err := img.Service(SvcRootkitHook); err != nil {
		if _, err := img.RegisterModuleService(SvcRootkitHook, 0x40000, rk.ReadDelay, 1200, 77); err != nil {
			return err
		}
	}
	insmod := []rtos.Segment{
		{Kind: rtos.Syscall, Duration: 30, Service: kernelmap.SvcOpen, Invocations: 1},
		{Kind: rtos.Syscall, Duration: 90, Service: kernelmap.SvcRead, Invocations: 5},
		{Kind: rtos.Syscall, Duration: 900, Service: kernelmap.SvcModuleLoad, Invocations: 1},
		{Kind: rtos.Syscall, Duration: 10, Service: kernelmap.SvcClose, Invocations: 1},
	}
	return sched.SpawnOneShotAt(rk.LoadAt, "insmod", insmod)
}

// BuildScenarioSession is the common harness: builds the paper task set,
// applies the scenario's Transform, creates a session and Installs the
// scenario. A nil scenario yields the clean baseline system.
func BuildScenarioSession(img *kernelmap.Image, sc Scenario, cfg securecore.SessionConfig) (*securecore.Session, error) {
	tasks, err := workload.PaperTaskSet(img)
	if err != nil {
		return nil, err
	}
	if sc != nil {
		if err := sc.Transform(tasks); err != nil {
			return nil, err
		}
	}
	s, err := securecore.NewSession(img, tasks, cfg)
	if err != nil {
		return nil, err
	}
	if sc != nil {
		if err := sc.Install(s.Scheduler, s.Image); err != nil {
			return nil, err
		}
	}
	return s, nil
}
