package attack

import (
	"errors"
	"math"
	"testing"

	"github.com/memheatmap/mhm/internal/workload"
)

func TestExfiltrationPreservesScheduleChangesComposition(t *testing.T) {
	const start = 300_000
	sc := &DataExfiltration{StartAt: start}
	infected := runScenario(t, sc, 800_000, 6)
	clean := runScenario(t, nil, 800_000, 6)

	// Identical before the start.
	for i := 0; i < 30; i++ {
		if d, _ := infected[i].L1Distance(clean[i]); d != 0 {
			t.Fatalf("interval %d differs before start", i)
		}
	}
	// Stealth check: total volume shifts only slightly (the attacker
	// hides in the host's budget; only the service mix changes)...
	var inf, cl float64
	for i := 40; i < 80; i++ {
		inf += float64(infected[i].Total())
		cl += float64(clean[i].Total())
	}
	if r := inf / cl; math.Abs(r-1) > 0.10 {
		t.Errorf("volume ratio %.4f; exfiltration should be nearly volume-neutral", r)
	}
	// ...but the composition changes in the host's intervals (basicmath
	// period 50 ms -> every 5th interval window).
	var maxDiff float64
	for i := 40; i < 80; i++ {
		if d := relL1(t, infected[i], clean[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff < 0.01 {
		t.Errorf("max relative L1 %.4f; exfiltration left no compositional trace", maxDiff)
	}
}

func TestExfiltrationValidation(t *testing.T) {
	img := testImage(t)
	tasks, err := workload.PaperTaskSet(img)
	if err != nil {
		t.Fatal(err)
	}
	if err := (&DataExfiltration{StartAt: 0}).Transform(tasks); !errors.Is(err, ErrScenario) {
		t.Errorf("zero StartAt: %v", err)
	}
	if err := (&DataExfiltration{StartAt: 5, Host: "ghost"}).Transform(tasks); !errors.Is(err, ErrScenario) {
		t.Errorf("missing host: %v", err)
	}
	if err := (&DataExfiltration{StartAt: 5, SendsPerJob: -1}).Transform(tasks); !errors.Is(err, ErrScenario) {
		t.Errorf("negative sends: %v", err)
	}
	d := &DataExfiltration{StartAt: 5}
	if err := d.Transform(tasks); err != nil {
		t.Fatal(err)
	}
	if d.Host != "basicmath" || d.SendsPerJob != 2 {
		t.Errorf("defaults = %+v", d)
	}
}

func TestForkBombIsLoud(t *testing.T) {
	const burst = 300_000 // interval 30
	sc := &ForkBomb{BurstAt: burst}
	infected := runScenario(t, sc, 600_000, 8)
	clean := runScenario(t, nil, 600_000, 8)
	// The burst intervals carry much more process-management traffic.
	var burstInf, burstCl float64
	for i := 30; i < 34; i++ {
		burstInf += float64(infected[i].Total())
		burstCl += float64(clean[i].Total())
	}
	if burstInf < 1.2*burstCl {
		t.Errorf("fork bomb traffic %.0f vs clean %.0f; expected loud burst", burstInf, burstCl)
	}
	// Composition in the burst window differs massively.
	if d := relL1(t, infected[30], clean[30]); d < 0.05 {
		t.Errorf("burst interval relative L1 %.4f", d)
	}
}

func TestForkBombValidation(t *testing.T) {
	if err := (&ForkBomb{}).Transform(nil); !errors.Is(err, ErrScenario) {
		t.Errorf("zero BurstAt: %v", err)
	}
	if err := (&ForkBomb{BurstAt: 5, Forks: -1}).Transform(nil); !errors.Is(err, ErrScenario) {
		t.Errorf("negative forks: %v", err)
	}
	fb := &ForkBomb{BurstAt: 5}
	if err := fb.Transform(nil); err != nil {
		t.Fatal(err)
	}
	if fb.Forks != 12 || fb.SpacingMicros != 2000 {
		t.Errorf("defaults = %+v", fb)
	}
}

func TestExtraScenarioNames(t *testing.T) {
	if (&DataExfiltration{}).Name() != "data-exfiltration" {
		t.Error("exfiltration name")
	}
	if (&ForkBomb{}).Name() != "fork-bomb" {
		t.Error("fork bomb name")
	}
}
