// Scenario corpus v2: adversarial attacks designed against the MHM
// detector itself. The paper's three scenarios (attack.go) change
// either the task set or the kernel's cell profile; the scenarios here
// are shaped to NOT change the cell profile — a mimicry attack reuses
// exactly the kernel services its host already executes, and a
// slow-drift rootkit ramps its displacement below θ_p over many
// intervals. Both are the motivating cases for the syscall-frequency
// channel (internal/syscalls) and the ensemble fusion layer
// (internal/ensemble).
package attack

import (
	"fmt"
	"math/rand"

	"github.com/memheatmap/mhm/internal/kernelmap"
	"github.com/memheatmap/mhm/internal/rtos"
)

// Mimicry models a compromised task that performs covert extra kernel
// work while imitating the clean kernel's cell profile: instead of
// calling conspicuous services (sockets, fork/exec) it amplifies the
// host's own syscall mix — the same services, in the same proportions —
// so the MHM's per-cell composition keeps its shape and the density
// displacement stays small. The kernel time for the extra invocations
// is stolen from the host's compute budget, so the schedule is
// unchanged too. What does shift is the absolute syscall frequency,
// which is the signature the syscall-frequency channel reads.
type Mimicry struct {
	// Host is the imitated task (default "sha", whose read-heavy profile
	// offers the most cover traffic).
	Host string
	// StartAt is when the covert activity begins.
	StartAt int64
	// Intensity is the fraction of the host's own per-job syscall
	// invocations added as covert work (default 0.5).
	Intensity float64
}

// Name implements Scenario.
func (m *Mimicry) Name() string { return "mimicry" }

// Transform implements Scenario: after StartAt every host job's syscall
// segments are amplified by Intensity, with the extra kernel time
// carved out of the job's largest compute segment.
func (m *Mimicry) Transform(tasks []*rtos.Task) error {
	if m.StartAt <= 0 {
		return fmt.Errorf("attack: mimicry StartAt=%d: %w", m.StartAt, ErrScenario)
	}
	if m.Host == "" {
		m.Host = "sha"
	}
	if m.Intensity == 0 {
		m.Intensity = 0.5
	}
	if m.Intensity < 0 || m.Intensity > 4 {
		return fmt.Errorf("attack: mimicry Intensity=%g: %w", m.Intensity, ErrScenario)
	}
	for _, t := range tasks {
		if t.Name != m.Host {
			continue
		}
		base := t.Behavior
		period, phase, startAt, intensity := t.Period, t.Phase, m.StartAt, m.Intensity
		t.Behavior = rtos.BehaviorFunc(func(idx int64, rng *rand.Rand) []rtos.Segment {
			segs := base.NewJob(idx, rng)
			if phase+idx*period < startAt {
				return segs
			}
			return amplifySyscalls(segs, intensity)
		})
		return nil
	}
	return fmt.Errorf("attack: mimicry host %q not in task set: %w", m.Host, ErrScenario)
}

// amplifySyscalls scales every syscall segment's invocations by
// (1+intensity), paying for the extra kernel time out of the largest
// compute segment so the job's total execution time is preserved when
// the budget allows.
func amplifySyscalls(segs []rtos.Segment, intensity float64) []rtos.Segment {
	out := make([]rtos.Segment, len(segs))
	copy(out, segs)
	var extraTime int64
	for i, seg := range out {
		if seg.Kind != rtos.Syscall || seg.Invocations <= 0 || seg.Duration <= 0 {
			continue
		}
		perInv := float64(seg.Duration) / float64(seg.Invocations)
		extraInv := int(intensity*float64(seg.Invocations) + 0.5)
		if extraInv == 0 {
			continue
		}
		extraDur := int64(perInv*float64(extraInv) + 0.5)
		out[i].Invocations += extraInv
		out[i].Duration += extraDur
		extraTime += extraDur
	}
	// Steal the time from the biggest compute segment; if there is no
	// room the job simply runs long (a louder, less careful attacker).
	biggest := -1
	for i, seg := range out {
		if seg.Kind == rtos.Compute && (biggest < 0 || seg.Duration > out[biggest].Duration) {
			biggest = i
		}
	}
	if biggest >= 0 && out[biggest].Duration > extraTime {
		out[biggest].Duration -= extraTime
	}
	return out
}

// Install implements Scenario: the behaviour wrap does all the work.
func (m *Mimicry) Install(*rtos.Scheduler, *kernelmap.Image) error { return nil }

// SvcDriftHook is the module-space execution profile of the slow-drift
// rootkit's hooked read handler. Like SvcRootkitHook it lives outside
// the monitored .text region; a separate service name keeps the two
// rootkits' images independent when labs share an image.
const SvcDriftHook = "drift_hook"

// SlowDrift models a rootkit engineered against per-interval θ_p
// decision rules on BOTH channels: it hot-patches the read path
// silently (no insmod spike) and burns unattributed CPU time after each
// read — the implant's code lives in module space, outside the
// monitored .text region, and crosses no recorded service boundary, so
// neither the heat map nor the syscall-frequency stream sees a direct
// marker. What remains is indirect: jobs stretch, the per-interval
// composition of kernel activity drifts, and the displacement ramps
// linearly from zero to MaxDelay per read over RampMicros. Every single
// interval stays below threshold — only statistics that accumulate
// evidence across intervals (the ensemble's CUSUM drift channel) see
// the ramp.
type SlowDrift struct {
	// StartAt is when the hot-patch lands.
	StartAt int64
	// RampMicros is the time to reach full intensity (default 2s).
	RampMicros int64
	// MaxDelay is the fully ramped extra latency per hijacked read
	// invocation in µs (default 40, the RootkitLKM steady state).
	MaxDelay int64
}

// Name implements Scenario.
func (sd *SlowDrift) Name() string { return "slow-drift" }

// Transform implements Scenario: reads issued after StartAt pick up an
// unattributed compute stretch whose duration ramps with the release
// time.
func (sd *SlowDrift) Transform(tasks []*rtos.Task) error {
	if sd.StartAt <= 0 {
		return fmt.Errorf("attack: slow-drift StartAt=%d: %w", sd.StartAt, ErrScenario)
	}
	if sd.RampMicros == 0 {
		sd.RampMicros = 2_000_000
	}
	if sd.MaxDelay == 0 {
		sd.MaxDelay = 40
	}
	if sd.RampMicros < 0 || sd.MaxDelay < 0 {
		return fmt.Errorf("attack: slow-drift RampMicros=%d MaxDelay=%d: %w",
			sd.RampMicros, sd.MaxDelay, ErrScenario)
	}
	for _, t := range tasks {
		base := t.Behavior
		period, phase := t.Period, t.Phase
		startAt, ramp, maxDelay := sd.StartAt, sd.RampMicros, sd.MaxDelay
		t.Behavior = rtos.BehaviorFunc(func(idx int64, rng *rand.Rand) []rtos.Segment {
			segs := base.NewJob(idx, rng)
			release := phase + idx*period
			if release < startAt {
				return segs
			}
			elapsed := release - startAt
			delay := maxDelay
			if elapsed < ramp {
				delay = maxDelay * elapsed / ramp
			}
			if delay < 1 {
				return segs
			}
			out := make([]rtos.Segment, 0, len(segs)+4)
			for _, seg := range segs {
				out = append(out, seg)
				if seg.Kind == rtos.Syscall && seg.Service == kernelmap.SvcRead {
					// The implant runs inline on the read return path but in
					// module space and without a service event: pure stolen
					// time, no direct signature on either channel.
					out = append(out, rtos.Segment{
						Kind:     rtos.Compute,
						Duration: delay * int64(seg.Invocations),
					})
				}
			}
			return out
		})
	}
	return nil
}

// Install implements Scenario: the hook's module-space profile is
// registered on the image (idempotently); unlike RootkitLKM there is no
// insmod one-shot — the patch is applied through an existing kernel
// write primitive and loads nothing the module loader would log.
func (sd *SlowDrift) Install(sched *rtos.Scheduler, img *kernelmap.Image) error {
	if _, err := img.Service(SvcDriftHook); err != nil {
		if _, err := img.RegisterModuleService(SvcDriftHook, 0x48000, sd.MaxDelay, 900, 78); err != nil {
			return err
		}
	}
	return nil
}
