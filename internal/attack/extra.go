package attack

import (
	"fmt"
	"math/rand"

	"github.com/memheatmap/mhm/internal/kernelmap"
	"github.com/memheatmap/mhm/internal/rtos"
)

// DataExfiltration models a compromised task that, from StartAt on,
// covertly ships data out every job: extra reads of the victim data and
// socket sends on the network stack. Unlike the shellcode scenario the
// host stays alive and keeps meeting its deadlines — the attack hides
// inside an existing task's budget, so only its kernel-service mix
// changes.
type DataExfiltration struct {
	// Host is the compromised task (defaults to "basicmath", which has
	// the slack to hide the extra work).
	Host string
	// StartAt is when the exfiltration begins.
	StartAt int64
	// SendsPerJob is the number of socket sends added per job
	// (default 2).
	SendsPerJob int
}

// Name implements Scenario.
func (d *DataExfiltration) Name() string { return "data-exfiltration" }

// Transform implements Scenario.
func (d *DataExfiltration) Transform(tasks []*rtos.Task) error {
	if d.StartAt <= 0 {
		return fmt.Errorf("attack: exfiltration StartAt=%d: %w", d.StartAt, ErrScenario)
	}
	if d.Host == "" {
		d.Host = "basicmath"
	}
	if d.SendsPerJob == 0 {
		d.SendsPerJob = 2
	}
	if d.SendsPerJob < 0 {
		return fmt.Errorf("attack: exfiltration SendsPerJob=%d: %w", d.SendsPerJob, ErrScenario)
	}
	for _, t := range tasks {
		if t.Name != d.Host {
			continue
		}
		base := t.Behavior
		period, phase, startAt, sends := t.Period, t.Phase, d.StartAt, d.SendsPerJob
		t.Behavior = rtos.BehaviorFunc(func(idx int64, rng *rand.Rand) []rtos.Segment {
			segs := base.NewJob(idx, rng)
			if phase+idx*period < startAt {
				return segs
			}
			// Steal the exfiltration time from the job's largest compute
			// segment so the task's execution time (and the schedule) is
			// unchanged — a stealthy attacker stays inside the budget.
			extra := []rtos.Segment{
				{Kind: rtos.Syscall, Duration: 36, Service: kernelmap.SvcRead, Invocations: 2},
				{Kind: rtos.Syscall, Duration: int64(35 * sends), Service: kernelmap.SvcSocket, Invocations: sends},
			}
			var cost int64
			for _, s := range extra {
				cost += s.Duration
			}
			biggest := -1
			for i, s := range segs {
				if s.Kind == rtos.Compute && (biggest < 0 || s.Duration > segs[biggest].Duration) {
					biggest = i
				}
			}
			if biggest < 0 || segs[biggest].Duration <= cost {
				// No room to hide: append anyway (the attack then also
				// perturbs timing, making it louder).
				return append(segs, extra...)
			}
			segs[biggest].Duration -= cost
			out := make([]rtos.Segment, 0, len(segs)+len(extra))
			out = append(out, segs[:biggest+1]...)
			out = append(out, extra...)
			out = append(out, segs[biggest+1:]...)
			return out
		})
		return nil
	}
	return fmt.Errorf("attack: exfiltration host %q not in task set: %w", d.Host, ErrScenario)
}

// Install implements Scenario: nothing to schedule, the behaviour wrap
// does all the work.
func (d *DataExfiltration) Install(*rtos.Scheduler, *kernelmap.Image) error { return nil }

// ForkBomb models a denial-of-service process that, at BurstAt, starts
// spawning children in bursts: repeated fork+exec one-shots that hammer
// the process-management kernel paths and steal CPU from the task set.
type ForkBomb struct {
	// BurstAt is when the bomb detonates.
	BurstAt int64
	// Forks is the number of fork+exec pairs (default 12).
	Forks int
	// SpacingMicros separates consecutive forks (default 2000).
	SpacingMicros int64
}

// Name implements Scenario.
func (f *ForkBomb) Name() string { return "fork-bomb" }

// Transform implements Scenario.
func (f *ForkBomb) Transform([]*rtos.Task) error {
	if f.BurstAt <= 0 {
		return fmt.Errorf("attack: fork bomb BurstAt=%d: %w", f.BurstAt, ErrScenario)
	}
	if f.Forks == 0 {
		f.Forks = 12
	}
	if f.SpacingMicros == 0 {
		f.SpacingMicros = 2000
	}
	if f.Forks < 0 || f.SpacingMicros < 0 {
		return fmt.Errorf("attack: fork bomb Forks=%d Spacing=%d: %w", f.Forks, f.SpacingMicros, ErrScenario)
	}
	return nil
}

// Install implements Scenario.
func (f *ForkBomb) Install(sched *rtos.Scheduler, img *kernelmap.Image) error {
	segs := []rtos.Segment{
		{Kind: rtos.Syscall, Duration: 120, Service: kernelmap.SvcFork, Invocations: 1},
		{Kind: rtos.Syscall, Duration: 200, Service: kernelmap.SvcExec, Invocations: 1},
	}
	for i := 0; i < f.Forks; i++ {
		at := f.BurstAt + int64(i)*f.SpacingMicros
		if err := sched.SpawnOneShotAt(at, fmt.Sprintf("bomb-%d", i), segs); err != nil {
			return err
		}
	}
	return nil
}
