package attack

import (
	"errors"
	"testing"

	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/securecore"
	"github.com/memheatmap/mhm/internal/workload"
)

// scenarioErr accepts either package's sentinel: attack scenarios wrap
// ErrScenario, workload-change scenarios wrap workload.ErrSpec.
func scenarioErr(err error) bool {
	return errors.Is(err, ErrScenario) || errors.Is(err, workload.ErrSpec)
}

// hostBound lists catalog entries whose Transform must reject a task
// set that lacks their host (and therefore also a nil task set).
var hostBound = map[string]bool{
	"shellcode":         true,
	"data-exfiltration": true,
	"mimicry":           true,
	"app-upgrade":       true,
	"phase-shift":       true, // rejects an empty task set outright
}

// TestCatalogConformance is the table-driven contract every catalogued
// scenario must satisfy: names match, a zero event time is rejected,
// and Transform on a nil task set either errors cleanly (host-bound
// scenarios) or succeeds — it never panics.
func TestCatalogConformance(t *testing.T) {
	entries := Catalog()
	if len(entries) < 10 {
		t.Fatalf("catalog has %d scenarios, want ≥ 10", len(entries))
	}
	seen := map[string]bool{}
	for _, e := range entries {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			if seen[e.Name] {
				t.Fatalf("duplicate catalog name %q", e.Name)
			}
			seen[e.Name] = true
			if e.Kind != "attack" && e.Kind != "workload-change" {
				t.Errorf("kind %q, want attack|workload-change", e.Kind)
			}
			if got := e.Build(1000).Name(); got != e.Name {
				t.Errorf("Build().Name() = %q, want %q", got, e.Name)
			}
			if err := e.Build(0).Transform(nil); !scenarioErr(err) {
				t.Errorf("Transform with eventAt=0: got %v, want scenario error", err)
			}
			err := e.Build(1000).Transform(nil)
			if hostBound[e.Name] {
				if !scenarioErr(err) {
					t.Errorf("Transform(nil) for host-bound scenario: got %v, want scenario error", err)
				}
			} else if err != nil {
				t.Errorf("Transform(nil) = %v, want nil", err)
			}
			fresh, err2 := Find(e.Name)
			if err2 != nil || fresh.Name != e.Name {
				t.Errorf("Find(%q) = %+v, %v", e.Name, fresh, err2)
			}
		})
	}
	if _, err := Find("no-such-scenario"); !errors.Is(err, ErrScenario) {
		t.Errorf("Find(unknown): got %v, want ErrScenario", err)
	}
}

// TestCatalogCleanPrefixAndDeterminism runs every catalogued scenario
// twice at the same seed and checks (1) both runs produce bit-identical
// heat-map series — scenarios must be deterministic — and (2) every
// interval before the scenario's event is bit-identical to the clean
// baseline: activating a scenario must not perturb the past.
func TestCatalogCleanPrefixAndDeterminism(t *testing.T) {
	const (
		eventAt = 300_000 // interval 30
		horizon = 500_000
		seed    = 11
	)
	run := func(sc Scenario) []*heatmap.HeatMap {
		t.Helper()
		img := testImage(t)
		s, err := BuildScenarioSession(img, sc, securecore.SessionConfig{NoiseSeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		maps, err := s.Run(horizon)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Monitor.Err(); err != nil {
			t.Fatal(err)
		}
		return maps
	}
	clean := run(nil)
	if len(clean) != horizon/10_000 {
		t.Fatalf("clean run produced %d maps, want %d", len(clean), horizon/10_000)
	}
	for _, e := range Catalog() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			a := run(e.Build(eventAt))
			b := run(e.Build(eventAt))
			if len(a) != len(clean) || len(b) != len(clean) {
				t.Fatalf("map counts %d/%d, want %d", len(a), len(b), len(clean))
			}
			for i := range a {
				if d, err := a[i].L1Distance(b[i]); err != nil || d != 0 {
					t.Fatalf("interval %d not deterministic across runs (d=%d, err=%v)", i, d, err)
				}
			}
			for i := 0; i < int(eventAt)/10_000; i++ {
				if d, err := a[i].L1Distance(clean[i]); err != nil || d != 0 {
					t.Fatalf("pre-event interval %d differs from clean baseline (d=%d, err=%v)", i, d, err)
				}
			}
		})
	}
}
