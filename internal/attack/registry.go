package attack

import (
	"fmt"

	"github.com/memheatmap/mhm/internal/workload"
)

// Entry describes one catalogued scenario: how to build it for a given
// event time plus the metadata the experiment matrix and the examples
// report alongside results.
type Entry struct {
	// Name is the scenario's stable identifier (matches Scenario.Name()).
	Name string
	// Kind is "attack" for adversarial scenarios and "workload-change"
	// for benign shifts whose flags are false positives.
	Kind string
	// Stealthy marks scenarios engineered to evade the per-interval MHM
	// threshold (mimicry, slow-drift).
	Stealthy bool
	// Build constructs a fresh scenario whose disruptive event occurs at
	// eventAt (µs). Scenarios are stateful across Transform/Install, so
	// every run needs a fresh Build.
	Build func(eventAt int64) Scenario
}

// Catalog returns every registered scenario, paper attacks first, in
// the order the experiment matrix reports them.
func Catalog() []Entry {
	return []Entry{
		{Name: "app-addition", Kind: "attack", Build: func(at int64) Scenario {
			return &AppAddition{Spec: workload.QsortSpec(), LaunchAt: at}
		}},
		{Name: "shellcode", Kind: "attack", Build: func(at int64) Scenario {
			return &Shellcode{Host: "bitcount", InjectAt: at}
		}},
		{Name: "rootkit-lkm", Kind: "attack", Build: func(at int64) Scenario {
			return &RootkitLKM{LoadAt: at}
		}},
		{Name: "data-exfiltration", Kind: "attack", Build: func(at int64) Scenario {
			return &DataExfiltration{StartAt: at}
		}},
		{Name: "fork-bomb", Kind: "attack", Build: func(at int64) Scenario {
			return &ForkBomb{BurstAt: at}
		}},
		{Name: "mimicry", Kind: "attack", Stealthy: true, Build: func(at int64) Scenario {
			return &Mimicry{StartAt: at}
		}},
		{Name: "slow-drift", Kind: "attack", Stealthy: true, Build: func(at int64) Scenario {
			// A 4 s ramp keeps the per-interval displacement below θ_p for
			// many hyperperiods — the regime where only cumulative (drift)
			// statistics see the attack.
			return &SlowDrift{StartAt: at, RampMicros: 4_000_000}
		}},
		{Name: "app-upgrade", Kind: "workload-change", Build: func(at int64) Scenario {
			return &workload.AppUpgrade{SwitchAt: at}
		}},
		{Name: "phase-shift", Kind: "workload-change", Build: func(at int64) Scenario {
			return &workload.PhaseShift{At: at}
		}},
		{Name: "tenant-churn", Kind: "workload-change", Build: func(at int64) Scenario {
			return &workload.TenantChurn{StartAt: at}
		}},
	}
}

// Find returns the catalog entry with the given name.
func Find(name string) (Entry, error) {
	for _, e := range Catalog() {
		if e.Name == name {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("attack: unknown scenario %q: %w", name, ErrScenario)
}
