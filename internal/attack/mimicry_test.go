package attack

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/memheatmap/mhm/internal/kernelmap"
	"github.com/memheatmap/mhm/internal/rtos"
	"github.com/memheatmap/mhm/internal/workload"
)

func taskByName(t *testing.T, tasks []*rtos.Task, name string) *rtos.Task {
	t.Helper()
	for _, tk := range tasks {
		if tk.Name == name {
			return tk
		}
	}
	t.Fatalf("task %q not in set", name)
	return nil
}

func jobStats(segs []rtos.Segment) (invocations int, total int64) {
	for _, s := range segs {
		total += s.Duration
		if s.Kind == rtos.Syscall {
			invocations += s.Invocations
		}
	}
	return invocations, total
}

func TestMimicryAmplifiesHostSyscallsBudgetNeutral(t *testing.T) {
	img := testImage(t)
	cleanTasks, err := workload.PaperTaskSet(img)
	if err != nil {
		t.Fatal(err)
	}
	infTasks, err := workload.PaperTaskSet(img)
	if err != nil {
		t.Fatal(err)
	}
	m := &Mimicry{StartAt: 200_000}
	if err := m.Transform(infTasks); err != nil {
		t.Fatal(err)
	}
	cleanHost := taskByName(t, cleanTasks, "sha")
	infHost := taskByName(t, infTasks, "sha")

	// Pre-event jobs are byte-identical (same rng stream).
	const preIdx = 1 // release = 100 ms < StartAt
	cleanPre := cleanHost.Behavior.NewJob(preIdx, rand.New(rand.NewSource(7)))
	infPre := infHost.Behavior.NewJob(preIdx, rand.New(rand.NewSource(7)))
	if len(cleanPre) != len(infPre) {
		t.Fatalf("pre-event segment counts differ: %d vs %d", len(cleanPre), len(infPre))
	}
	for i := range cleanPre {
		if cleanPre[i] != infPre[i] {
			t.Fatalf("pre-event segment %d differs: %+v vs %+v", i, cleanPre[i], infPre[i])
		}
	}

	// Post-event: ~1.5× the host's own syscall invocations, same services,
	// near-unchanged total job duration (budget stolen from compute).
	const postIdx = 5 // release = 500 ms ≥ StartAt
	cleanJob := cleanHost.Behavior.NewJob(postIdx, rand.New(rand.NewSource(9)))
	infJob := infHost.Behavior.NewJob(postIdx, rand.New(rand.NewSource(9)))
	cleanInv, cleanTotal := jobStats(cleanJob)
	infInv, infTotal := jobStats(infJob)
	if infInv < cleanInv+cleanInv/3 {
		t.Errorf("amplified invocations %d vs clean %d; want ≈1.5×", infInv, cleanInv)
	}
	if infTotal != cleanTotal {
		t.Errorf("job total %d vs clean %d; mimicry must stay inside the budget", infTotal, cleanTotal)
	}
	services := map[string]bool{}
	for _, s := range cleanJob {
		if s.Kind == rtos.Syscall {
			services[s.Service] = true
		}
	}
	for _, s := range infJob {
		if s.Kind == rtos.Syscall && !services[s.Service] {
			t.Errorf("mimicry introduced foreign service %q", s.Service)
		}
	}
}

func TestMimicryValidation(t *testing.T) {
	if err := (&Mimicry{StartAt: 0}).Transform(nil); !errors.Is(err, ErrScenario) {
		t.Errorf("zero StartAt: %v", err)
	}
	if err := (&Mimicry{StartAt: 10, Intensity: 9}).Transform(nil); !errors.Is(err, ErrScenario) {
		t.Errorf("excessive intensity: %v", err)
	}
	img := testImage(t)
	tasks, err := workload.PaperTaskSet(img)
	if err != nil {
		t.Fatal(err)
	}
	if err := (&Mimicry{StartAt: 10, Host: "nope"}).Transform(tasks); !errors.Is(err, ErrScenario) {
		t.Errorf("missing host: %v", err)
	}
}

func TestSlowDriftRampsStolenTime(t *testing.T) {
	img := testImage(t)
	tasks, err := workload.PaperTaskSet(img)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := workload.PaperTaskSet(img)
	if err != nil {
		t.Fatal(err)
	}
	sd := &SlowDrift{StartAt: 100_000, RampMicros: 1_000_000, MaxDelay: 40}
	if err := sd.Transform(tasks); err != nil {
		t.Fatal(err)
	}
	host := taskByName(t, tasks, "sha") // period 100 ms, read-heavy
	base := taskByName(t, clean, "sha")

	// stolenTime diffs the wrapped job against the clean one at the same
	// seed: the implant adds pure unattributed compute, so the stolen
	// per-read-invocation delay is (Δ total duration) / read invocations.
	stolenTime := func(idx int64) (perInv int64, reads int) {
		segs := host.Behavior.NewJob(idx, rand.New(rand.NewSource(3)))
		ref := base.Behavior.NewJob(idx, rand.New(rand.NewSource(3)))
		var dur, refDur int64
		var inv int
		for _, s := range segs {
			dur += s.Duration
			if s.Kind == rtos.Syscall && s.Service == kernelmap.SvcRead {
				inv += s.Invocations
			}
			// No service events beyond the clean job's: the implant never
			// crosses a recorded service boundary.
			if s.Service == SvcDriftHook {
				t.Fatalf("job %d: drift hook surfaced as a service event", idx)
			}
		}
		for _, s := range ref {
			refDur += s.Duration
		}
		if dur == refDur {
			return 0, 0
		}
		return (dur - refDur) / int64(inv), inv
	}

	// Before StartAt: no stolen time at all.
	if per, n := stolenTime(0); per != 0 || n != 0 {
		t.Errorf("job 0 (release 0): stolen time present (%d µs × %d)", per, n)
	}
	// Just after StartAt the ramp is still below 1 µs: stealth window.
	if per, n := stolenTime(1); per != 0 || n != 0 {
		t.Errorf("job 1 (release 100 ms, elapsed 0): stole %d µs × %d, want none", per, n)
	}
	// Mid-ramp: about half the max delay.
	perMid, nMid := stolenTime(6) // elapsed 500 ms of 1 s ramp
	if nMid == 0 || perMid < 15 || perMid > 25 {
		t.Errorf("mid-ramp per-invocation delay = %d µs (×%d), want ≈20", perMid, nMid)
	}
	// Past the ramp: full delay.
	perEnd, nEnd := stolenTime(12) // elapsed 1.1 s
	if nEnd == 0 || perEnd != 40 {
		t.Errorf("post-ramp per-invocation delay = %d µs (×%d), want 40", perEnd, nEnd)
	}
}

func TestSlowDriftValidationAndInstall(t *testing.T) {
	if err := (&SlowDrift{StartAt: 0}).Transform(nil); !errors.Is(err, ErrScenario) {
		t.Errorf("zero StartAt: %v", err)
	}
	if err := (&SlowDrift{StartAt: 5, MaxDelay: -1}).Transform(nil); !errors.Is(err, ErrScenario) {
		t.Errorf("negative delay: %v", err)
	}
	img := testImage(t)
	sd := &SlowDrift{StartAt: 5}
	if err := sd.Transform(nil); err != nil {
		t.Fatal(err)
	}
	if err := sd.Install(nil, img); err != nil {
		t.Fatal(err)
	}
	if _, err := img.Service(SvcDriftHook); err != nil {
		t.Errorf("drift hook not registered: %v", err)
	}
	// Idempotent: labs share images across runs.
	if err := sd.Install(nil, img); err != nil {
		t.Errorf("second Install: %v", err)
	}
}

// Compile-time check: the workload-change scenarios satisfy the
// Scenario contract structurally without workload importing attack.
var (
	_ Scenario = &workload.AppUpgrade{}
	_ Scenario = &workload.PhaseShift{}
	_ Scenario = &workload.TenantChurn{}
)
