package attack

import (
	"errors"
	"math"
	"testing"

	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/kernelmap"
	"github.com/memheatmap/mhm/internal/rtos"
	"github.com/memheatmap/mhm/internal/securecore"
	"github.com/memheatmap/mhm/internal/workload"
)

func testImage(t *testing.T) *kernelmap.Image {
	t.Helper()
	img, err := kernelmap.NewImage(1)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func runScenario(t *testing.T, sc Scenario, horizon int64, seed int64) []*heatmap.HeatMap {
	t.Helper()
	img := testImage(t)
	s, err := BuildScenarioSession(img, sc, securecore.SessionConfig{NoiseSeed: seed})
	if err != nil {
		t.Fatal(err)
	}
	maps, err := s.Run(horizon)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Monitor.Err(); err != nil {
		t.Fatal(err)
	}
	return maps
}

func relL1(t *testing.T, a, b *heatmap.HeatMap) float64 {
	t.Helper()
	d, err := a.L1Distance(b)
	if err != nil {
		t.Fatal(err)
	}
	return float64(d) / float64(a.Total()+b.Total())
}

func TestCleanScenarioMatchesPlainSession(t *testing.T) {
	img := testImage(t)
	clean := runScenario(t, nil, 100000, 9)
	tasks, err := workload.PaperTaskSet(img)
	if err != nil {
		t.Fatal(err)
	}
	s, err := securecore.NewSession(img, tasks, securecore.SessionConfig{NoiseSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := s.Run(100000)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean) != len(plain) {
		t.Fatalf("lengths differ: %d vs %d", len(clean), len(plain))
	}
	for i := range clean {
		if d, _ := clean[i].L1Distance(plain[i]); d != 0 {
			t.Fatalf("interval %d differs between nil scenario and plain session", i)
		}
	}
}

func TestAppAdditionChangesMHMsAfterLaunch(t *testing.T) {
	const launch = 500000 // 500 ms -> interval 50
	sc := &AppAddition{Spec: workload.QsortSpec(), LaunchAt: launch, ExitAt: 900000}
	infected := runScenario(t, sc, 1000000, 3)
	clean := runScenario(t, nil, 1000000, 3)
	if len(infected) != 100 || len(clean) != 100 {
		t.Fatalf("lengths: %d/%d", len(infected), len(clean))
	}
	// Before launch: identical (same seeds, same dynamics).
	for i := 0; i < 50; i++ {
		if d, _ := infected[i].L1Distance(clean[i]); d != 0 {
			t.Fatalf("interval %d differs before launch", i)
		}
	}
	// After launch, before exit: materially different (qsort's services +
	// timing perturbation).
	var diff float64
	for i := 51; i < 90; i++ {
		diff += relL1(t, infected[i], clean[i])
	}
	diff /= 39
	if diff < 0.02 {
		t.Errorf("post-launch mean relative L1 = %.4f; qsort left no signature", diff)
	}
}

func TestAppAdditionValidation(t *testing.T) {
	if err := (&AppAddition{Spec: workload.QsortSpec(), LaunchAt: 0}).Transform(nil); !errors.Is(err, ErrScenario) {
		t.Errorf("zero LaunchAt: %v", err)
	}
	if err := (&AppAddition{Spec: workload.QsortSpec(), LaunchAt: 100, ExitAt: 50}).Transform(nil); !errors.Is(err, ErrScenario) {
		t.Errorf("exit before launch: %v", err)
	}
}

func TestShellcodeKillsHost(t *testing.T) {
	const inject = 300000
	img := testImage(t)
	sc := &Shellcode{Host: "bitcount", InjectAt: inject}
	tasks, err := workload.PaperTaskSet(img)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Transform(tasks); err != nil {
		t.Fatal(err)
	}
	s, err := securecore.NewSession(img, tasks, securecore.SessionConfig{NoiseSeed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Install(s.Scheduler, s.Image); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(800000); err != nil {
		t.Fatal(err)
	}
	// bitcount releases every 20 ms; hijacked job at 300 ms, removal
	// before 320 ms. Released jobs of bitcount = 300/20 + 1 = 16.
	// Count completions via a second, instrumented run instead of poking
	// scheduler internals: compare against the clean run's MHM series.
	infected := s.Maps()
	clean := runScenario(t, nil, 800000, 4)
	for i := 0; i < 30; i++ {
		if d, _ := infected[i].L1Distance(clean[i]); d != 0 {
			t.Fatalf("interval %d differs before injection", i)
		}
	}
	var diff float64
	for i := 31; i < 80; i++ {
		diff += relL1(t, infected[i], clean[i])
	}
	diff /= 49
	if diff < 0.01 {
		t.Errorf("post-injection mean relative L1 = %.4f; shellcode invisible", diff)
	}
	// Steady state after host death: the traffic mix changes — bitcount's
	// syscall cells cool while the idle loop's cells heat up (the CPU it
	// used is idle now). Total volume shifts measurably in some direction.
	var infTotal, clTotal float64
	for i := 40; i < 80; i++ {
		infTotal += float64(infected[i].Total())
		clTotal += float64(clean[i].Total())
	}
	if r := infTotal / clTotal; math.Abs(r-1) < 0.01 {
		t.Errorf("traffic ratio after host death %.4f; expected a visible shift", r)
	}
}

func TestShellcodeValidation(t *testing.T) {
	img := testImage(t)
	tasks, err := workload.PaperTaskSet(img)
	if err != nil {
		t.Fatal(err)
	}
	if err := (&Shellcode{Host: "bitcount", InjectAt: 0}).Transform(tasks); !errors.Is(err, ErrScenario) {
		t.Errorf("zero InjectAt: %v", err)
	}
	if err := (&Shellcode{Host: "nope", InjectAt: 100}).Transform(tasks); !errors.Is(err, ErrScenario) {
		t.Errorf("missing host: %v", err)
	}
	sc := &Shellcode{Host: "bitcount", InjectAt: 100}
	s, err := securecore.NewSession(img, tasks, securecore.SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Install(s.Scheduler, s.Image); !errors.Is(err, ErrScenario) {
		t.Errorf("Install before Transform: %v", err)
	}
}

func TestShellcodeHijackedRelease(t *testing.T) {
	sc := &Shellcode{Host: "h", InjectAt: 50}
	sc.hostPeriod, sc.hostPhase = 20, 0
	if got := sc.hijackedRelease(); got != 60 {
		t.Errorf("hijackedRelease = %d, want 60", got)
	}
	sc.InjectAt = 60
	if got := sc.hijackedRelease(); got != 60 {
		t.Errorf("aligned hijackedRelease = %d, want 60", got)
	}
	sc.hostPhase = 5
	sc.InjectAt = 3
	if got := sc.hijackedRelease(); got != 5 {
		t.Errorf("pre-phase hijackedRelease = %d, want 5", got)
	}
}

func TestRootkitLoadIsLoudSteadyStateIsQuiet(t *testing.T) {
	const load = 300000 // interval 30
	sc := &RootkitLKM{LoadAt: load}
	infected := runScenario(t, sc, 800000, 5)
	clean := runScenario(t, nil, 800000, 5)

	// Identical before the load.
	for i := 0; i < 30; i++ {
		if d, _ := infected[i].L1Distance(clean[i]); d != 0 {
			t.Fatalf("interval %d differs before load", i)
		}
	}
	// The insmod interval carries a large traffic spike (Fig. 9).
	spike := float64(infected[30].Total())
	normal := float64(clean[30].Total())
	if spike < 1.3*normal {
		t.Errorf("load interval traffic %.0f vs clean %.0f; expected a pronounced spike", spike, normal)
	}
	// Steady state: total traffic statistically indistinguishable (the
	// hijacked read calls the original handler; Fig. 9's flat tail).
	var inf, cl float64
	for i := 40; i < 80; i++ {
		inf += float64(infected[i].Total())
		cl += float64(clean[i].Total())
	}
	ratio := inf / cl
	if math.Abs(ratio-1) > 0.03 {
		t.Errorf("steady-state traffic ratio %.4f; rootkit should not change volume", ratio)
	}
	// ... but the composition does shift in some intervals (timing of
	// read-heavy sha changes), which is what Fig. 10 detects.
	var maxDiff float64
	for i := 40; i < 80; i++ {
		if d := relL1(t, infected[i], clean[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff < 0.005 {
		t.Errorf("steady-state max relative L1 = %.5f; rootkit left no compositional trace", maxDiff)
	}
}

func TestRootkitValidation(t *testing.T) {
	if err := (&RootkitLKM{LoadAt: 0}).Transform(nil); !errors.Is(err, ErrScenario) {
		t.Errorf("zero LoadAt: %v", err)
	}
	if err := (&RootkitLKM{LoadAt: 10, ReadDelay: -1}).Transform(nil); !errors.Is(err, ErrScenario) {
		t.Errorf("negative delay: %v", err)
	}
	rk := &RootkitLKM{LoadAt: 10}
	if err := rk.Transform([]*rtos.Task{}); err != nil {
		t.Fatal(err)
	}
	if rk.ReadDelay != 40 {
		t.Errorf("default ReadDelay = %d, want 40", rk.ReadDelay)
	}
}

func TestScenarioNames(t *testing.T) {
	for _, tc := range []struct {
		sc   Scenario
		want string
	}{
		{&AppAddition{}, "app-addition"},
		{&Shellcode{}, "shellcode"},
		{&RootkitLKM{}, "rootkit-lkm"},
	} {
		if got := tc.sc.Name(); got != tc.want {
			t.Errorf("Name = %q, want %q", got, tc.want)
		}
	}
}
