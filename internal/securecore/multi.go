package securecore

import (
	"fmt"

	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/kernelmap"
	"github.com/memheatmap/mhm/internal/memometer"
	"github.com/memheatmap/mhm/internal/rtos"
	"github.com/memheatmap/mhm/internal/sim"
	"github.com/memheatmap/mhm/internal/trace"
)

// MultiSession monitors several memory regions from one bus: a single
// monitored core whose traffic fans out to one Memometer per region.
// This lifts the paper's limitation (iv) — "our detection mechanism
// cannot detect anomalies that access memory segments outside the region
// under monitoring" — by adding regions (e.g. the module area where LKM
// rootkit hooks execute) next to the kernel .text watch.
type MultiSession struct {
	Engine    *sim.Engine
	Scheduler *rtos.Scheduler
	Monitor   *Monitor
	Image     *kernelmap.Image

	devices []*memometer.Device
	maps    [][]*heatmap.HeatMap
}

// NewMultiSession builds a session snooping the same bus into one
// Memometer per region.
func NewMultiSession(img *kernelmap.Image, tasks []*rtos.Task, cfg SessionConfig, regions []heatmap.Def) (*MultiSession, error) {
	if len(regions) == 0 {
		return nil, fmt.Errorf("securecore: no regions: %w", ErrMonitor)
	}
	if cfg.IntervalMicros == 0 {
		cfg.IntervalMicros = 10000
	}
	if cfg.TickPeriod == 0 {
		cfg.TickPeriod = 1000
	}
	s := &MultiSession{Engine: sim.NewEngine(), Image: img, maps: make([][]*heatmap.HeatMap, len(regions))}
	for i, region := range regions {
		dev := memometer.New()
		if err := dev.Configure(memometer.Config{
			Region:         region,
			IntervalMicros: cfg.IntervalMicros,
		}); err != nil {
			return nil, fmt.Errorf("securecore: region %d: %w", i, err)
		}
		s.devices = append(s.devices, dev)
	}
	mon, err := NewPortMonitor(img, cfg.NoiseSeed, func(a trace.Access) error {
		for i, dev := range s.devices {
			if err := dev.SnoopBurst(a.Time, a.Addr, a.Count); err != nil {
				return err
			}
			for dev.HasPending() {
				hm, err := dev.Collect()
				if err != nil {
					return err
				}
				s.maps[i] = append(s.maps[i], hm)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.Monitor = mon
	sched, err := rtos.NewScheduler(s.Engine, rtos.Config{TickPeriod: cfg.TickPeriod}, tasks, mon)
	if err != nil {
		return nil, err
	}
	s.Scheduler = sched
	return s, nil
}

// Run advances the simulation and returns per-region MHM series,
// indexed as the regions were passed to NewMultiSession.
func (s *MultiSession) Run(horizon int64) ([][]*heatmap.HeatMap, error) {
	if s.Engine.Now() == 0 {
		if err := s.Scheduler.Start(); err != nil {
			return nil, err
		}
	}
	if _, err := s.Engine.Run(horizon); err != nil {
		return nil, err
	}
	s.Scheduler.FinishIdle()
	if err := s.Monitor.Err(); err != nil {
		return nil, err
	}
	for i, dev := range s.devices {
		if err := dev.Tick(horizon); err != nil {
			return nil, err
		}
		for dev.HasPending() {
			hm, err := dev.Collect()
			if err != nil {
				return nil, err
			}
			s.maps[i] = append(s.maps[i], hm)
		}
	}
	return s.maps, nil
}

// Devices exposes the per-region Memometers.
func (s *MultiSession) Devices() []*memometer.Device { return s.devices }
