package securecore

import (
	"fmt"

	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/kernelmap"
	"github.com/memheatmap/mhm/internal/memometer"
	"github.com/memheatmap/mhm/internal/rtos"
	"github.com/memheatmap/mhm/internal/sim"
	"github.com/memheatmap/mhm/internal/trace"
)

// SMPSession is the §5.5 symmetric-multiprocessing variant of Session:
// several monitored cores under partitioned scheduling (one scheduler
// per core, disjoint task sets) feed one shared set of MHM memories
// through replicated snoop ports. The kernel is shared, so one heat map
// aggregates every core's kernel activity.
type SMPSession struct {
	Engine     *sim.Engine
	Schedulers []*rtos.Scheduler
	Monitors   []*Monitor
	Image      *kernelmap.Image

	smp  *memometer.SMP
	maps []*heatmap.HeatMap
}

// NewSMPSession builds a multi-core session; coreTasks[i] is core i's
// task set (task names must be globally unique).
func NewSMPSession(img *kernelmap.Image, coreTasks [][]*rtos.Task, cfg SessionConfig) (*SMPSession, error) {
	if len(coreTasks) == 0 {
		return nil, fmt.Errorf("securecore: no cores: %w", ErrMonitor)
	}
	if cfg.IntervalMicros == 0 {
		cfg.IntervalMicros = 10000
	}
	if cfg.TickPeriod == 0 {
		cfg.TickPeriod = 1000
	}
	if cfg.Region == (heatmap.Def{}) {
		cfg.Region = heatmap.Def{AddrBase: img.Base, Size: img.Size, Gran: 2048}
	}
	seen := map[string]bool{}
	for _, tasks := range coreTasks {
		for _, t := range tasks {
			if seen[t.Name] {
				return nil, fmt.Errorf("securecore: task %q on multiple cores: %w", t.Name, ErrMonitor)
			}
			seen[t.Name] = true
		}
	}

	s := &SMPSession{Engine: sim.NewEngine(), Image: img}
	smp, err := memometer.NewSMP(memometer.Config{
		Region:         cfg.Region,
		IntervalMicros: cfg.IntervalMicros,
	}, len(coreTasks), func(hm *heatmap.HeatMap) error {
		s.maps = append(s.maps, hm)
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.smp = smp

	for i, tasks := range coreTasks {
		port, err := smp.Port(i)
		if err != nil {
			return nil, err
		}
		mon, err := NewPortMonitor(img, cfg.NoiseSeed+int64(i)*7919, func(a trace.Access) error {
			return port.SnoopBurst(a.Time, a.Addr, a.Count)
		})
		if err != nil {
			return nil, err
		}
		sched, err := rtos.NewScheduler(s.Engine, rtos.Config{TickPeriod: cfg.TickPeriod}, tasks, mon)
		if err != nil {
			return nil, fmt.Errorf("securecore: core %d: %w", i, err)
		}
		s.Monitors = append(s.Monitors, mon)
		s.Schedulers = append(s.Schedulers, sched)
	}
	return s, nil
}

// Device exposes the shared Memometer.
func (s *SMPSession) Device() *memometer.Device { return s.smp.Device() }

// Run starts every core's scheduler, advances the simulation to the
// horizon, and finalizes the merge, returning all completed MHMs.
// Unlike Session.Run it is single-shot: the SMP merge closes its ports
// at the horizon.
func (s *SMPSession) Run(horizon int64) ([]*heatmap.HeatMap, error) {
	if s.Engine.Now() == 0 {
		for i, sched := range s.Schedulers {
			if err := sched.Start(); err != nil {
				return nil, fmt.Errorf("securecore: core %d start: %w", i, err)
			}
		}
	}
	if _, err := s.Engine.Run(horizon); err != nil {
		return nil, err
	}
	for i, sched := range s.Schedulers {
		sched.FinishIdle()
		if err := s.Monitors[i].Err(); err != nil {
			return nil, err
		}
	}
	if err := s.smp.Finish(horizon); err != nil {
		return nil, err
	}
	return s.maps, nil
}

// Maps returns the MHMs collected so far.
func (s *SMPSession) Maps() []*heatmap.HeatMap { return s.maps }
