package securecore

import (
	"bytes"
	"errors"
	"testing"

	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/memometer"
	"github.com/memheatmap/mhm/internal/trace"
	"github.com/memheatmap/mhm/internal/workload"
)

// capturedSession runs the paper workload with a trace tap and returns
// the trace bytes alongside the directly produced maps.
func capturedSession(t *testing.T, gran uint64, horizon int64, seed int64) ([]byte, []*heatmap.HeatMap) {
	t.Helper()
	img := testImage(t)
	tasks, err := workload.PaperTaskSet(img)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(img, tasks, SessionConfig{
		Region:    heatmap.Def{AddrBase: img.Base, Size: img.Size, Gran: gran},
		NoiseSeed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	s.Monitor.SetTraceWriter(tw)
	maps, err := s.Run(horizon)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), maps
}

func TestReplayReproducesDirectRun(t *testing.T) {
	raw, direct := capturedSession(t, 2048, 100_000, 4)
	replayed, err := Replay(trace.NewReader(bytes.NewReader(raw)), memometer.Config{
		Region:         direct[0].Def,
		IntervalMicros: 10_000,
	}, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != len(direct) {
		t.Fatalf("replayed %d maps, direct %d", len(replayed), len(direct))
	}
	for i := range direct {
		d, err := replayed[i].L1Distance(direct[i])
		if err != nil {
			t.Fatal(err)
		}
		if d != 0 {
			t.Errorf("interval %d differs after replay (L1=%d)", i, d)
		}
	}
}

func TestReplayAtDifferentGranularity(t *testing.T) {
	// One capture, two analyses: replaying the 2 KB capture at 8 KB must
	// equal a direct 8 KB run with the same seed (the bus traffic is
	// identical; only the cell mapping changes).
	raw, _ := capturedSession(t, 2048, 100_000, 5)
	img := testImage(t)
	coarseDef := heatmap.Def{AddrBase: img.Base, Size: img.Size, Gran: 8192}
	replayed, err := Replay(trace.NewReader(bytes.NewReader(raw)), memometer.Config{
		Region:         coarseDef,
		IntervalMicros: 10_000,
	}, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	_, direct := capturedSession(t, 8192, 100_000, 5)
	if len(replayed) != len(direct) {
		t.Fatalf("replayed %d maps, direct %d", len(replayed), len(direct))
	}
	for i := range direct {
		d, err := replayed[i].L1Distance(direct[i])
		if err != nil {
			t.Fatal(err)
		}
		if d != 0 {
			t.Errorf("interval %d: cross-granularity replay differs (L1=%d)", i, d)
		}
	}
}

func TestReplayAtDifferentInterval(t *testing.T) {
	// Replaying with a 20 ms interval merges adjacent 10 ms maps: the
	// totals must be conserved.
	raw, direct := capturedSession(t, 2048, 100_000, 6)
	replayed, err := Replay(trace.NewReader(bytes.NewReader(raw)), memometer.Config{
		Region:         direct[0].Def,
		IntervalMicros: 20_000,
	}, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 5 {
		t.Fatalf("replayed %d maps, want 5", len(replayed))
	}
	for i, m := range replayed {
		want := direct[2*i].Total() + direct[2*i+1].Total()
		if m.Total() != want {
			t.Errorf("20 ms interval %d total %d, want %d", i, m.Total(), want)
		}
	}
}

func TestReplayRejectsBadConfigAndTrace(t *testing.T) {
	if _, err := Replay(trace.NewReader(bytes.NewReader(nil)), memometer.Config{}, 0); err == nil {
		t.Error("bad config accepted")
	}
	cfg := memometer.Config{
		Region:         heatmap.Def{AddrBase: 0, Size: 0x1000, Gran: 0x100},
		IntervalMicros: 1000,
	}
	if _, err := Replay(trace.NewReader(bytes.NewReader([]byte{1, 2, 3})), cfg, 0); err == nil {
		t.Error("garbage trace accepted")
	}
}

func TestMultiSessionTextRegionMatchesPlainSession(t *testing.T) {
	img := testImage(t)
	tasks, err := workload.PaperTaskSet(img)
	if err != nil {
		t.Fatal(err)
	}
	textDef := heatmap.Def{AddrBase: img.Base, Size: img.Size, Gran: 2048}
	multi, err := NewMultiSession(img, tasks, SessionConfig{NoiseSeed: 7}, []heatmap.Def{
		textDef,
		{AddrBase: 0xBF000000, Size: 1 << 20, Gran: 2048},
	})
	if err != nil {
		t.Fatal(err)
	}
	multiMaps, err := multi.Run(100_000)
	if err != nil {
		t.Fatal(err)
	}
	tasks2, err := workload.PaperTaskSet(img)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewSession(img, tasks2, SessionConfig{Region: textDef, NoiseSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	plainMaps, err := plain.Run(100_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(multiMaps[0]) != len(plainMaps) {
		t.Fatalf("lengths: %d vs %d", len(multiMaps[0]), len(plainMaps))
	}
	for i := range plainMaps {
		if d, _ := multiMaps[0][i].L1Distance(plainMaps[i]); d != 0 {
			t.Fatalf("interval %d: multi-session .text view differs from plain session", i)
		}
	}
	// Clean system never touches the module area.
	for i, m := range multiMaps[1] {
		if m.Total() != 0 {
			t.Errorf("module region interval %d has %d accesses on a clean system", i, m.Total())
		}
	}
}

func TestMultiSessionValidation(t *testing.T) {
	img := testImage(t)
	tasks, err := workload.PaperTaskSet(img)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMultiSession(img, tasks, SessionConfig{}, nil); !errors.Is(err, ErrMonitor) {
		t.Errorf("no regions: %v", err)
	}
	bad := []heatmap.Def{{AddrBase: 0, Size: 10, Gran: 3}}
	if _, err := NewMultiSession(img, tasks, SessionConfig{}, bad); err == nil {
		t.Error("bad region accepted")
	}
}

// replayPerRecord is the pre-batching replay loop, kept verbatim as the
// equivalence reference for the batched ingest path.
func replayPerRecord(t *testing.T, raw []byte, cfg memometer.Config, endTime int64) []*heatmap.HeatMap {
	t.Helper()
	dev := memometer.New()
	if err := dev.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	var maps []*heatmap.HeatMap
	drain := func() {
		for dev.HasPending() {
			hm, err := dev.Collect()
			if err != nil {
				t.Fatal(err)
			}
			maps = append(maps, hm)
		}
	}
	r := trace.NewReader(bytes.NewReader(raw))
	for {
		a, err := r.Read()
		if err != nil {
			break
		}
		if err := dev.SnoopBurst(a.Time, a.Addr, a.Count); err != nil {
			t.Fatal(err)
		}
		drain()
	}
	if err := dev.Tick(endTime); err != nil {
		t.Fatal(err)
	}
	drain()
	return maps
}

func TestReplayBatchedMatchesPerRecord(t *testing.T) {
	raw, direct := capturedSession(t, 2048, 100_000, 9)
	cfg := memometer.Config{Region: direct[0].Def, IntervalMicros: 10_000}
	want := replayPerRecord(t, raw, cfg, 100_000)
	got, err := Replay(trace.NewReader(bytes.NewReader(raw)), cfg, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("batched replay produced %d maps, per-record %d", len(got), len(want))
	}
	for i := range want {
		d, err := got[i].L1Distance(want[i])
		if err != nil {
			t.Fatal(err)
		}
		if d != 0 {
			t.Errorf("interval %d differs between batched and per-record replay (L1=%d)", i, d)
		}
	}
}
