// Package securecore assembles the paper's dual-core monitoring
// architecture in simulation: the monitored core (RTOS + workload over
// the synthetic kernel) generates a kernel instruction-fetch stream, the
// Memometer snoops it into memory heat maps, and the secure core — the
// analysis side — receives one completed MHM per monitoring interval.
package securecore

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/memheatmap/mhm/internal/cache"
	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/kernelmap"
	"github.com/memheatmap/mhm/internal/memometer"
	"github.com/memheatmap/mhm/internal/obs"
	"github.com/memheatmap/mhm/internal/rtos"
	"github.com/memheatmap/mhm/internal/sim"
	"github.com/memheatmap/mhm/internal/trace"
)

// ErrMonitor wraps monitoring pipeline failures.
var ErrMonitor = errors.New("securecore: monitoring failure")

// emitChunkMicros bounds how coarsely a syscall segment's fetches are
// spread over its execution window; smaller chunks split bursts more
// accurately across interval boundaries.
const emitChunkMicros = 250

// Monitor implements rtos.ExecListener: it converts scheduler activity
// into kernel .text fetch bursts via the image's service catalog and
// snoops them into the Memometer. Completed MHMs are handed to the sink.
type Monitor struct {
	img  *kernelmap.Image
	dev  *memometer.Device // nil in port mode (SMP front-end owns the device)
	rng  *rand.Rand
	sink func(*heatmap.HeatMap) error

	// burst is where filtered accesses go: the local device by default,
	// an SMP merge port in port mode.
	burst func(a trace.Access) error
	// icache, when set, sits between emission and the burst sink: only
	// misses are visible (the §5.5 below-the-cache placement).
	icache *cache.ICache
	// tap, when set, records the raw bus traffic (before any cache
	// filter) so a captured trace can be replayed through other
	// Memometer configurations.
	tap *trace.Writer

	tickSvc *kernelmap.Service
	ctxSvc  *kernelmap.Service
	idleSvc *kernelmap.Service

	inIdle    bool
	idleSince int64

	buf []trace.Access // reused emission buffer

	// emitted/delivered are observability counters (nil until
	// SetMetrics): completed MHMs handed to the sink and bursts pushed
	// through the cache filter into the snoop point.
	emitted   *obs.Counter
	delivered *obs.Counter

	err error // first pipeline error; checked via Err()
}

// newEmitter builds the service-emission half of a Monitor.
func newEmitter(img *kernelmap.Image, seed int64) (*Monitor, error) {
	if img == nil {
		return nil, fmt.Errorf("securecore: nil image: %w", ErrMonitor)
	}
	m := &Monitor{
		img: img,
		rng: rand.New(rand.NewSource(seed)),
	}
	var err error
	if m.tickSvc, err = img.Service(kernelmap.SvcSchedTick); err != nil {
		return nil, err
	}
	if m.ctxSvc, err = img.Service(kernelmap.SvcCtxSwitch); err != nil {
		return nil, err
	}
	if m.idleSvc, err = img.Service(kernelmap.SvcIdleLoop); err != nil {
		return nil, err
	}
	return m, nil
}

// NewMonitor configures a Memometer for the image's region and wires it
// to sink. The rng seed controls the per-burst emission noise.
func NewMonitor(img *kernelmap.Image, cfg memometer.Config, seed int64, sink func(*heatmap.HeatMap) error) (*Monitor, error) {
	m, err := newEmitter(img, seed)
	if err != nil {
		return nil, err
	}
	if sink == nil {
		sink = func(*heatmap.HeatMap) error { return nil }
	}
	dev := memometer.New()
	if err := dev.Configure(cfg); err != nil {
		return nil, err
	}
	m.dev = dev
	m.sink = sink
	m.burst = func(a trace.Access) error {
		if err := dev.SnoopBurst(a.Time, a.Addr, a.Count); err != nil {
			return err
		}
		for dev.HasPending() {
			hm, err := dev.Collect()
			if err != nil {
				return err
			}
			if err := m.sink(hm); err != nil {
				return err
			}
			m.emitted.Inc()
		}
		return nil
	}
	return m, nil
}

// SetMetrics installs observability counters on the monitor and its
// Memometer (catalogue: DESIGN.md §6). A nil registry uninstalls them.
func (m *Monitor) SetMetrics(r *obs.Registry) {
	m.emitted = r.Counter("securecore.mhm_emitted")
	m.delivered = r.Counter("securecore.bursts_delivered")
	if m.dev != nil {
		m.dev.SetMetrics(r)
	}
}

// NewPortMonitor builds a Monitor that emits into an arbitrary burst
// sink instead of its own Memometer — the per-core front end of the
// SMP architecture (§5.5), where all cores share one set of MHM
// memories behind replicated snoop/filter ports.
func NewPortMonitor(img *kernelmap.Image, seed int64, burst func(a trace.Access) error) (*Monitor, error) {
	if burst == nil {
		return nil, fmt.Errorf("securecore: nil burst sink: %w", ErrMonitor)
	}
	m, err := newEmitter(img, seed)
	if err != nil {
		return nil, err
	}
	m.burst = burst
	return m, nil
}

// SetICache installs an instruction-cache model between emission and the
// snoop point; only misses reach the heat map. Call before running.
func (m *Monitor) SetICache(c *cache.ICache) { m.icache = c }

// SetTraceWriter installs a tap recording the raw bus traffic (before
// any cache filter). Call before running; Flush the writer after the
// run.
func (m *Monitor) SetTraceWriter(w *trace.Writer) { m.tap = w }

// Device exposes the underlying Memometer (stats, pending state).
func (m *Monitor) Device() *memometer.Device { return m.dev }

// Err returns the first pipeline error, if any. Listener callbacks have
// no error channel, so failures latch here and suppress further work.
func (m *Monitor) Err() error { return m.err }

// fail latches the first error.
func (m *Monitor) fail(err error) {
	if m.err == nil && err != nil {
		m.err = fmt.Errorf("%w: %w", ErrMonitor, err)
	}
}

// deliver pushes buffered accesses through the optional cache filter
// into the burst sink.
func (m *Monitor) deliver() {
	if m.err != nil {
		m.buf = m.buf[:0]
		return
	}
	for _, a := range m.buf {
		if m.tap != nil {
			if err := m.tap.Write(a); err != nil {
				m.fail(err)
				break
			}
		}
		if m.icache != nil {
			// A fully-hit burst still reaches the sink with count 0 so
			// the device clock advances and interval boundaries close
			// during cache-quiet stretches.
			a.Count = m.icache.AccessBurst(a.Addr, a.Count)
		}
		if err := m.burst(a); err != nil {
			m.fail(err)
			break
		}
		m.delivered.Inc()
	}
	m.buf = m.buf[:0]
}

// EmitService injects scale invocations of a named service at time t,
// used by attack scenarios for kernel activity that does not belong to a
// scheduled task (e.g. insmod loading the rootkit module).
func (m *Monitor) EmitService(t int64, name string, scale float64) error {
	svc, err := m.img.Service(name)
	if err != nil {
		return err
	}
	m.buf = svc.Emit(m.rng, t, scale, m.buf)
	m.deliver()
	return m.err
}

// AdvanceTo pushes the device clock to t, closing any pending interval;
// call at the end of a run to flush the final MHMs. In port mode (SMP)
// the merge front-end owns the device clock and this is a no-op.
func (m *Monitor) AdvanceTo(t int64) error {
	if m.err != nil || m.dev == nil {
		return m.err
	}
	if err := m.dev.Tick(t); err != nil {
		m.fail(err)
		return m.err
	}
	for m.dev.HasPending() {
		hm, err := m.dev.Collect()
		if err != nil {
			m.fail(err)
			return m.err
		}
		if err := m.sink(hm); err != nil {
			m.fail(err)
			return m.err
		}
		m.emitted.Inc()
	}
	return m.err
}

// OnSlice implements rtos.ExecListener: syscall segments emit their
// service's fetches spread across the executed window; compute segments
// run in user space and emit nothing.
func (m *Monitor) OnSlice(task *rtos.Task, seg rtos.Segment, start, end int64, frac0, frac1 float64) {
	if m.err != nil || seg.Kind != rtos.Syscall || end <= start || frac1 <= frac0 {
		return
	}
	svc, err := m.img.Service(seg.Service)
	if err != nil {
		m.fail(err)
		return
	}
	totalScale := float64(seg.Invocations) * (frac1 - frac0)
	span := end - start
	// Spread emission over the window in bounded chunks so bursts land
	// in the right monitoring interval even when a segment straddles a
	// boundary.
	for off := int64(0); off < span; off += emitChunkMicros {
		chunk := span - off
		if chunk > emitChunkMicros {
			chunk = emitChunkMicros
		}
		scale := totalScale * float64(chunk) / float64(span)
		m.buf = svc.Emit(m.rng, start+off, scale, m.buf)
	}
	m.deliver()
}

// OnContextSwitch implements rtos.ExecListener: dispatches emit the
// context-switch path; transitions into idle start idle accounting and
// transitions out flush it.
func (m *Monitor) OnContextSwitch(t int64, from, to string) {
	if m.err != nil {
		return
	}
	if m.inIdle && to != "" {
		m.emitIdle(t)
		m.inIdle = false
	}
	m.buf = m.ctxSvc.Emit(m.rng, t, 1, m.buf)
	if to == "" {
		m.inIdle = true
		m.idleSince = t
	}
	m.deliver()
}

// OnTick implements rtos.ExecListener: the timer interrupt and scheduler
// tick path. During idle, each tick also flushes the idle loop's fetches
// accrued since the last emission point.
func (m *Monitor) OnTick(t int64) {
	if m.err != nil {
		return
	}
	if m.inIdle {
		m.emitIdle(t)
		m.idleSince = t
	}
	m.buf = m.tickSvc.Emit(m.rng, t, 1, m.buf)
	m.deliver()
}

// OnIdle implements rtos.ExecListener: it flushes the tail of an idle
// period (the incremental chunks were already emitted on ticks).
func (m *Monitor) OnIdle(start, end int64) {
	if m.err != nil || !m.inIdle {
		return
	}
	m.emitIdle(end)
	m.idleSince = end
	m.deliver()
}

// emitIdle emits the idle loop's fetches for [idleSince, t). The idle
// service's fetch budget is per millisecond of idling.
func (m *Monitor) emitIdle(t int64) {
	if t <= m.idleSince {
		return
	}
	span := t - m.idleSince
	for off := int64(0); off < span; off += 1000 {
		chunk := span - off
		if chunk > 1000 {
			chunk = 1000
		}
		m.buf = m.idleSvc.Emit(m.rng, m.idleSince+off, float64(chunk)/1000, m.buf)
	}
}

// OnJobRelease implements rtos.ExecListener. Job release goes through
// the scheduler's wakeup path; its fetches are folded into the
// context-switch and tick services, so nothing extra is emitted here.
func (m *Monitor) OnJobRelease(int64, *rtos.Task, int64) {}

// OnJobComplete implements rtos.ExecListener.
func (m *Monitor) OnJobComplete(int64, *rtos.Task, int64, bool) {}

// Session bundles a complete monitored-core setup: engine, scheduler and
// monitor, ready to run scenarios.
type Session struct {
	Engine    *sim.Engine
	Scheduler *rtos.Scheduler
	Monitor   *Monitor
	Image     *kernelmap.Image

	maps []*heatmap.HeatMap
}

// SessionConfig parameterizes NewSession.
type SessionConfig struct {
	// Region to monitor; zero value means the image's full span at the
	// paper's 2 KB granularity.
	Region heatmap.Def
	// IntervalMicros is the monitoring interval (default 10,000 = 10 ms).
	IntervalMicros int64
	// TickPeriod for the RTOS (default 1,000 = 1 ms).
	TickPeriod int64
	// NoiseSeed controls emission noise; vary it across training runs.
	NoiseSeed int64
	// ExtraListeners receive scheduler events alongside the monitor
	// (e.g. statistics recorders).
	ExtraListeners []rtos.ExecListener
	// Cache, when non-nil, places an instruction-cache model between the
	// monitored core and the Memometer (§5.5's below-the-cache snoop
	// point): only misses are counted into the heat maps.
	Cache *cache.Config
	// OnMHM, when non-nil, receives every completed MHM as it is
	// collected (in addition to Session-internal accumulation) — the
	// hook for online per-interval analysis.
	OnMHM func(*heatmap.HeatMap) error
}

// NewSession builds a session over img running the given tasks. MHMs are
// accumulated internally and returned by Run.
func NewSession(img *kernelmap.Image, tasks []*rtos.Task, cfg SessionConfig) (*Session, error) {
	if cfg.IntervalMicros == 0 {
		cfg.IntervalMicros = 10000
	}
	if cfg.TickPeriod == 0 {
		cfg.TickPeriod = 1000
	}
	if cfg.Region == (heatmap.Def{}) {
		cfg.Region = heatmap.Def{AddrBase: img.Base, Size: img.Size, Gran: 2048}
	}
	s := &Session{Engine: sim.NewEngine(), Image: img}
	mon, err := NewMonitor(img, memometer.Config{
		Region:         cfg.Region,
		IntervalMicros: cfg.IntervalMicros,
	}, cfg.NoiseSeed, func(hm *heatmap.HeatMap) error {
		s.maps = append(s.maps, hm)
		if cfg.OnMHM != nil {
			return cfg.OnMHM(hm)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.Monitor = mon
	if cfg.Cache != nil {
		ic, err := cache.New(*cfg.Cache)
		if err != nil {
			return nil, err
		}
		mon.SetICache(ic)
	}
	var listener rtos.ExecListener = mon
	if len(cfg.ExtraListeners) > 0 {
		listener = rtos.Tee(append([]rtos.ExecListener{mon}, cfg.ExtraListeners...)...)
	}
	sched, err := rtos.NewScheduler(s.Engine, rtos.Config{TickPeriod: cfg.TickPeriod}, tasks, listener)
	if err != nil {
		return nil, err
	}
	s.Scheduler = sched
	return s, nil
}

// Run starts the scheduler (if not yet started) and advances the
// simulation to the horizon, returning all MHMs completed so far. It may
// be called repeatedly with growing horizons.
func (s *Session) Run(horizon int64) ([]*heatmap.HeatMap, error) {
	if s.Engine.Now() == 0 {
		if err := s.Scheduler.Start(); err != nil {
			return nil, err
		}
	}
	if _, err := s.Engine.Run(horizon); err != nil {
		return nil, err
	}
	s.Scheduler.FinishIdle()
	if err := s.Monitor.AdvanceTo(horizon); err != nil {
		return nil, err
	}
	return s.maps, nil
}

// Maps returns the MHMs collected so far.
func (s *Session) Maps() []*heatmap.HeatMap { return s.maps }
