package securecore

import (
	"errors"
	"testing"

	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/kernelmap"
	"github.com/memheatmap/mhm/internal/memometer"
	"github.com/memheatmap/mhm/internal/workload"
)

func testImage(t *testing.T) *kernelmap.Image {
	t.Helper()
	img, err := kernelmap.NewImage(1)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func paperSession(t *testing.T, seed int64) *Session {
	t.Helper()
	img := testImage(t)
	tasks, err := workload.PaperTaskSet(img)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(img, tasks, SessionConfig{NoiseSeed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSessionProducesOneMHMPerInterval(t *testing.T) {
	s := paperSession(t, 1)
	maps, err := s.Run(300000) // 300 ms -> 30 intervals of 10 ms
	if err != nil {
		t.Fatal(err)
	}
	if len(maps) != 30 {
		t.Fatalf("got %d MHMs, want 30", len(maps))
	}
	for i, m := range maps {
		if m.Start != int64(i)*10000 || m.End != int64(i+1)*10000 {
			t.Errorf("MHM %d spans [%d,%d)", i, m.Start, m.End)
		}
		if m.Total() == 0 {
			t.Errorf("MHM %d is empty", i)
		}
	}
	if err := s.Monitor.Err(); err != nil {
		t.Fatal(err)
	}
	if s.Monitor.Device().Stats().Overruns != 0 {
		t.Errorf("overruns: %d", s.Monitor.Device().Stats().Overruns)
	}
}

func TestTrafficVolumeInPaperRange(t *testing.T) {
	// Fig. 9's y-axis runs to ~1.4e5 accesses per 10 ms interval; the
	// synthetic workload should land within an order of magnitude.
	s := paperSession(t, 2)
	maps, err := s.Run(200000)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range maps {
		total := m.Total()
		if total < 5e3 || total > 5e5 {
			t.Errorf("interval %d: traffic %d outside plausible range", i, total)
		}
	}
}

func TestMHMsRepeatAcrossHyperperiods(t *testing.T) {
	// The task set's hyperperiod is 100 ms = 10 intervals. Interval i and
	// i+10 observe the same phase of the schedule, so their MHMs must be
	// far more similar than MHMs from different phases.
	s := paperSession(t, 3)
	maps, err := s.Run(400000)
	if err != nil {
		t.Fatal(err)
	}
	if len(maps) != 40 {
		t.Fatalf("maps = %d", len(maps))
	}
	rel := func(a, b *heatmap.HeatMap) float64 {
		d, err := a.L1Distance(b)
		if err != nil {
			t.Fatal(err)
		}
		return float64(d) / float64(a.Total()+b.Total())
	}
	// Compare phase-aligned intervals from the 2nd hyperperiod on (the
	// first may carry startup transients).
	var same, diff float64
	var nSame, nDiff int
	for i := 10; i < 30; i++ {
		same += rel(maps[i], maps[i+10])
		nSame++
		diff += rel(maps[i], maps[i+5])
		nDiff++
	}
	same /= float64(nSame)
	diff /= float64(nDiff)
	if same >= diff {
		t.Errorf("phase-aligned distance %.3f not smaller than cross-phase %.3f", same, diff)
	}
}

func TestSessionDeterministicForSameSeed(t *testing.T) {
	a, err := paperSession(t, 7).Run(100000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := paperSession(t, 7).Run(100000)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		d, err := a[i].L1Distance(b[i])
		if err != nil {
			t.Fatal(err)
		}
		if d != 0 {
			t.Fatalf("MHM %d differs across identical runs (L1=%d)", i, d)
		}
	}
	c, err := paperSession(t, 8).Run(100000)
	if err != nil {
		t.Fatal(err)
	}
	var totalDiff uint64
	for i := range a {
		d, _ := a[i].L1Distance(c[i])
		totalDiff += d
	}
	if totalDiff == 0 {
		t.Error("different noise seeds produced identical MHMs")
	}
}

func TestAccessesConfinedToKernelText(t *testing.T) {
	s := paperSession(t, 4)
	if _, err := s.Run(100000); err != nil {
		t.Fatal(err)
	}
	st := s.Monitor.Device().Stats()
	if st.Snooped == 0 {
		t.Fatal("no snoops")
	}
	// Everything the workload emits lies inside .text, so the filter
	// should accept every burst.
	if st.Accepted != st.Snooped {
		t.Errorf("accepted %d of %d snoops; emission leaked outside .text", st.Accepted, st.Snooped)
	}
}

func TestEmitService(t *testing.T) {
	img := testImage(t)
	var got []*heatmap.HeatMap
	mon, err := NewMonitor(img, memometer.Config{
		Region:         heatmap.Def{AddrBase: img.Base, Size: img.Size, Gran: 2048},
		IntervalMicros: 10000,
	}, 1, func(hm *heatmap.HeatMap) error {
		got = append(got, hm)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.EmitService(5000, kernelmap.SvcModuleLoad, 1); err != nil {
		t.Fatal(err)
	}
	if err := mon.AdvanceTo(10000); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("MHMs = %d", len(got))
	}
	if got[0].Total() < 10000 {
		t.Errorf("module load emitted only %d fetches", got[0].Total())
	}
	if err := mon.EmitService(11000, "nope", 1); !errors.Is(err, kernelmap.ErrUnknownService) {
		t.Errorf("unknown service: %v", err)
	}
}

func TestSinkErrorLatches(t *testing.T) {
	img := testImage(t)
	sentinel := errors.New("sink failed")
	mon, err := NewMonitor(img, memometer.Config{
		Region:         heatmap.Def{AddrBase: img.Base, Size: img.Size, Gran: 2048},
		IntervalMicros: 1000,
	}, 1, func(hm *heatmap.HeatMap) error { return sentinel })
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.EmitService(1500, kernelmap.SvcRead, 1); !errors.Is(err, sentinel) {
		t.Errorf("EmitService err = %v", err)
	}
	if !errors.Is(mon.Err(), ErrMonitor) {
		t.Errorf("Err = %v, want ErrMonitor wrap", mon.Err())
	}
	// Further calls keep reporting the latched error.
	if err := mon.AdvanceTo(5000); !errors.Is(err, sentinel) {
		t.Errorf("AdvanceTo after latch: %v", err)
	}
}

func TestNewMonitorValidation(t *testing.T) {
	img := testImage(t)
	if _, err := NewMonitor(nil, memometer.Config{}, 1, nil); !errors.Is(err, ErrMonitor) {
		t.Errorf("nil image: %v", err)
	}
	if _, err := NewMonitor(img, memometer.Config{
		Region:         heatmap.Def{AddrBase: img.Base, Size: img.Size, Gran: 512}, // too many cells
		IntervalMicros: 10000,
	}, 1, nil); !errors.Is(err, memometer.ErrConfig) {
		t.Errorf("oversized region: %v", err)
	}
}

func TestCoarseGranularitySession(t *testing.T) {
	// δ = 8 KB gives L = 368 cells (paper §5.4's coarse configuration).
	img := testImage(t)
	tasks, err := workload.PaperTaskSet(img)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(img, tasks, SessionConfig{
		Region:    heatmap.Def{AddrBase: img.Base, Size: img.Size, Gran: 8192},
		NoiseSeed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	maps, err := s.Run(50000)
	if err != nil {
		t.Fatal(err)
	}
	if len(maps) != 5 {
		t.Fatalf("maps = %d", len(maps))
	}
	if got := len(maps[0].Counts); got != 368 {
		t.Errorf("cells = %d, want 368 (paper §5.4)", got)
	}
}
