package securecore

import (
	"errors"
	"testing"

	"github.com/memheatmap/mhm/internal/cache"
	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/kernelmap"
	"github.com/memheatmap/mhm/internal/rtos"
	"github.com/memheatmap/mhm/internal/trace"
	"github.com/memheatmap/mhm/internal/workload"
)

// twoCoreTasks partitions the paper task set across two cores:
// FFT + sha on core 0, bitcount + basicmath on core 1.
func twoCoreTasks(t *testing.T, img *kernelmap.Image) [][]*rtos.Task {
	t.Helper()
	tasks, err := workload.PaperTaskSet(img)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*rtos.Task{}
	for _, task := range tasks {
		byName[task.Name] = task
	}
	return [][]*rtos.Task{
		{byName["FFT"], byName["sha"]},
		{byName["bitcount"], byName["basicmath"]},
	}
}

func TestSMPSessionProducesMergedMHMs(t *testing.T) {
	img := testImage(t)
	s, err := NewSMPSession(img, twoCoreTasks(t, img), SessionConfig{NoiseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	maps, err := s.Run(300_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(maps) != 30 {
		t.Fatalf("maps = %d, want 30", len(maps))
	}
	for i, m := range maps {
		if m.Start != int64(i)*10_000 {
			t.Errorf("interval %d starts at %d", i, m.Start)
		}
		if m.Total() == 0 {
			t.Errorf("interval %d empty", i)
		}
	}
	if s.Device().Stats().Overruns != 0 {
		t.Errorf("overruns: %d", s.Device().Stats().Overruns)
	}
}

func TestSMPAggregatesBothCores(t *testing.T) {
	// Each interval of the 2-core run must carry roughly the kernel
	// activity of both partitions: its traffic exceeds what either
	// single-core partition produces alone.
	img := testImage(t)
	parts := twoCoreTasks(t, img)

	smp, err := NewSMPSession(img, parts, SessionConfig{NoiseSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := smp.Run(200_000)
	if err != nil {
		t.Fatal(err)
	}

	soloTotals := make([][]uint64, 2)
	for c := 0; c < 2; c++ {
		solo, err := NewSession(img, parts[c], SessionConfig{NoiseSeed: 2})
		if err != nil {
			t.Fatal(err)
		}
		maps, err := solo.Run(200_000)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range maps {
			soloTotals[c] = append(soloTotals[c], m.Total())
		}
	}
	for i := 2; i < len(merged); i++ {
		mt := merged[i].Total()
		if mt <= soloTotals[0][i] || mt <= soloTotals[1][i] {
			t.Errorf("interval %d: merged %d not above solo cores %d/%d",
				i, mt, soloTotals[0][i], soloTotals[1][i])
		}
	}
}

func TestSMPSessionValidation(t *testing.T) {
	img := testImage(t)
	if _, err := NewSMPSession(img, nil, SessionConfig{}); !errors.Is(err, ErrMonitor) {
		t.Errorf("no cores: %v", err)
	}
	tasks, err := workload.PaperTaskSet(img)
	if err != nil {
		t.Fatal(err)
	}
	dup := [][]*rtos.Task{{tasks[0]}, {tasks[0]}}
	if _, err := NewSMPSession(img, dup, SessionConfig{}); !errors.Is(err, ErrMonitor) {
		t.Errorf("duplicated task: %v", err)
	}
}

func TestSMPDeterministic(t *testing.T) {
	img := testImage(t)
	run := func() []uint64 {
		s, err := NewSMPSession(img, twoCoreTasks(t, img), SessionConfig{NoiseSeed: 5})
		if err != nil {
			t.Fatal(err)
		}
		maps, err := s.Run(150_000)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]uint64, len(maps))
		for i, m := range maps {
			out[i] = m.Total()
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("interval %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestCachedSessionThinsTraffic(t *testing.T) {
	// With an L1 model in front of the Memometer (§5.5), only misses are
	// visible: traffic must drop dramatically but not to zero.
	img := testImage(t)
	tasks, err := workload.PaperTaskSet(img)
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewSession(img, tasks, SessionConfig{NoiseSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	fullMaps, err := full.Run(200_000)
	if err != nil {
		t.Fatal(err)
	}
	tasks2, err := workload.PaperTaskSet(img)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := NewSession(img, tasks2, SessionConfig{
		NoiseSeed: 3,
		Cache:     &cache.Config{SizeBytes: 32 * 1024, LineBytes: 32, Ways: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	cachedMaps, err := cached.Run(200_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(cachedMaps) != len(fullMaps) {
		t.Fatalf("interval counts differ: %d vs %d", len(cachedMaps), len(fullMaps))
	}
	var fullTotal, cachedTotal uint64
	for i := range fullMaps {
		fullTotal += fullMaps[i].Total()
		cachedTotal += cachedMaps[i].Total()
	}
	if cachedTotal == 0 {
		t.Fatal("cache filtered everything; no signal left")
	}
	if float64(cachedTotal) > 0.5*float64(fullTotal) {
		t.Errorf("cache filtered too little: %d of %d visible", cachedTotal, fullTotal)
	}
	// Every interval must still complete even when fully hit.
	for i, m := range cachedMaps {
		if m.Start != int64(i)*10_000 {
			t.Errorf("cached interval %d starts at %d", i, m.Start)
		}
	}
	if cached.Monitor.Device().Stats().Overruns != 0 {
		t.Errorf("overruns with cache: %d", cached.Monitor.Device().Stats().Overruns)
	}
}

func TestPortMonitorValidation(t *testing.T) {
	img := testImage(t)
	if _, err := NewPortMonitor(img, 1, nil); !errors.Is(err, ErrMonitor) {
		t.Errorf("nil sink: %v", err)
	}
	if _, err := NewPortMonitor(nil, 1, func(a trace.Access) error { return nil }); err == nil {
		t.Error("nil image accepted")
	}
}

func TestSMPMapsAccessor(t *testing.T) {
	img := testImage(t)
	s, err := NewSMPSession(img, twoCoreTasks(t, img), SessionConfig{NoiseSeed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Maps()) != 0 {
		t.Error("maps before run")
	}
	maps, err := s.Run(50_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Maps()) != len(maps) {
		t.Errorf("Maps() = %d, Run returned %d", len(s.Maps()), len(maps))
	}
}

func TestMultiSessionDevicesAccessor(t *testing.T) {
	img := testImage(t)
	tasks, err := workload.PaperTaskSet(img)
	if err != nil {
		t.Fatal(err)
	}
	regions := []heatmap.Def{
		{AddrBase: img.Base, Size: img.Size, Gran: 2048},
		{AddrBase: 0xBF000000, Size: 1 << 20, Gran: 4096},
	}
	s, err := NewMultiSession(img, tasks, SessionConfig{NoiseSeed: 12}, regions)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(30_000); err != nil {
		t.Fatal(err)
	}
	devs := s.Devices()
	if len(devs) != 2 {
		t.Fatalf("devices = %d", len(devs))
	}
	if devs[0].Stats().Accepted == 0 {
		t.Error(".text device saw no traffic")
	}
	if devs[1].Stats().Accepted != 0 {
		t.Error("module device saw traffic on a clean run")
	}
}
