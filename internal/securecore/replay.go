package securecore

import (
	"errors"
	"fmt"
	"io"

	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/memometer"
	"github.com/memheatmap/mhm/internal/trace"
)

// replayBatch is the ingest unit of Replay: enough records per
// ReadBatch to amortize the decode, small enough that the decode buffer
// stays cache-resident next to the device's on-chip counters.
const replayBatch = 256

// Replay feeds a captured bus trace (from Monitor.SetTraceWriter)
// through a fresh Memometer configuration and returns the resulting heat
// maps. This is how one capture supports many analyses: the same trace
// can be cut at different granularities or intervals without re-running
// the simulation. endTime closes the final interval (pass the original
// run's horizon).
//
// Ingest is batched — trace.Reader.ReadBatch decodes a block of records
// at a time and memometer.SnoopBatch feeds them, pausing at each
// interval boundary so completed MHMs are collected before the next
// event, exactly as the per-record loop did. The resulting maps are
// identical to record-at-a-time replay.
func Replay(r *trace.Reader, cfg memometer.Config, endTime int64) ([]*heatmap.HeatMap, error) {
	dev := memometer.New()
	if err := dev.Configure(cfg); err != nil {
		return nil, err
	}
	var maps []*heatmap.HeatMap
	drain := func() error {
		for dev.HasPending() {
			hm, err := dev.Collect()
			if err != nil {
				return err
			}
			maps = append(maps, hm)
		}
		return nil
	}
	buf := make([]trace.Access, replayBatch)
	for {
		n, err := r.ReadBatch(buf)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("securecore: replay: %w", err)
		}
		for off := 0; off < n; {
			c, err := dev.SnoopBatch(buf[off:n])
			off += c
			if err != nil {
				return nil, fmt.Errorf("securecore: replay: %w", err)
			}
			if err := drain(); err != nil {
				return nil, err
			}
		}
	}
	if err := dev.Tick(endTime); err != nil {
		return nil, fmt.Errorf("securecore: replay: %w", err)
	}
	if err := drain(); err != nil {
		return nil, err
	}
	return maps, nil
}
