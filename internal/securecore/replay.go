package securecore

import (
	"errors"
	"fmt"
	"io"

	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/memometer"
	"github.com/memheatmap/mhm/internal/trace"
)

// Replay feeds a captured bus trace (from Monitor.SetTraceWriter)
// through a fresh Memometer configuration and returns the resulting heat
// maps. This is how one capture supports many analyses: the same trace
// can be cut at different granularities or intervals without re-running
// the simulation. endTime closes the final interval (pass the original
// run's horizon).
func Replay(r *trace.Reader, cfg memometer.Config, endTime int64) ([]*heatmap.HeatMap, error) {
	dev := memometer.New()
	if err := dev.Configure(cfg); err != nil {
		return nil, err
	}
	var maps []*heatmap.HeatMap
	drain := func() error {
		for dev.HasPending() {
			hm, err := dev.Collect()
			if err != nil {
				return err
			}
			maps = append(maps, hm)
		}
		return nil
	}
	for {
		a, err := r.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("securecore: replay: %w", err)
		}
		if err := dev.SnoopBurst(a.Time, a.Addr, a.Count); err != nil {
			return nil, fmt.Errorf("securecore: replay: %w", err)
		}
		if err := drain(); err != nil {
			return nil, err
		}
	}
	if err := dev.Tick(endTime); err != nil {
		return nil, fmt.Errorf("securecore: replay: %w", err)
	}
	if err := drain(); err != nil {
		return nil, err
	}
	return maps, nil
}
