// Package pca implements the paper's "eigenmemory" dimensionality
// reduction (§4.2): principal component analysis of the training MHMs,
// exactly the eigenfaces recipe. A training set of N heat maps in
// L dimensions is mean-shifted, the top L' eigenvectors of the empirical
// covariance become the eigenmemories, and every MHM is represented by
// its L' projection weights.
package pca

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"

	"github.com/memheatmap/mhm/internal/mat"
	"github.com/memheatmap/mhm/internal/train"
)

// ErrTraining wraps invalid training inputs.
var ErrTraining = errors.New("pca: invalid training input")

// Options tunes Train.
type Options struct {
	// Components fixes L' directly when positive.
	Components int
	// VarianceFraction picks the smallest L' whose eigenvalues explain at
	// least this fraction of total variance (used when Components == 0;
	// the paper uses 0.9999 — "more than 99.99% of the variances").
	VarianceFraction float64
	// MaxComponents caps the eigenpairs computed during variance-driven
	// selection (default 32).
	MaxComponents int
	// Seed seeds the subspace iteration (default 1).
	Seed int64
	// Parallel runs the subspace iteration's operator applications on
	// separate goroutines; results are identical to the serial run.
	Parallel bool
	// Workers bounds the goroutines used for the mean/Φ/variance build
	// (fixed dimension tiles merged in index order). Zero picks
	// GOMAXPROCS when Parallel is set, else 1. Results are bit-identical
	// for every worker count.
	Workers int
}

func (o *Options) fill() error {
	if o.Components < 0 {
		return fmt.Errorf("pca: negative component count %d: %w", o.Components, ErrTraining)
	}
	if o.Components == 0 {
		if mat.IsZero(o.VarianceFraction) {
			o.VarianceFraction = 0.9999
		}
		if o.VarianceFraction < 0 || o.VarianceFraction > 1 {
			return fmt.Errorf("pca: variance fraction %g out of (0,1]: %w", o.VarianceFraction, ErrTraining)
		}
	}
	if o.MaxComponents <= 0 {
		o.MaxComponents = 32
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return nil
}

// Model holds the learned eigenmemory basis.
type Model struct {
	// Mean is the empirical mean MHM Ψ (length L).
	Mean []float64
	// Components is L x L': eigenmemory u_j in column j.
	Components *mat.Matrix
	// Values are the corresponding eigenvalues, decreasing.
	Values []float64
	// TotalVariance is trace of the empirical covariance, for
	// variance-explained reporting.
	TotalVariance float64

	// Projection cache: uᵀ stored row-wise plus the precomputed uᵀΨ
	// offsets, so Project is a clean L·L' dot-product sweep.
	prepOnce sync.Once
	compT    *mat.Matrix // L' x L
	meanOff  []float64   // length L': u_jᵀ Ψ
}

// prepare builds the projection cache.
func (m *Model) prepare() {
	m.prepOnce.Do(func() {
		m.compT = m.Components.T()
		m.meanOff = make([]float64, m.compT.Rows())
		for j := range m.meanOff {
			m.meanOff[j] = mat.Dot(m.compT.Row(j), m.Mean)
		}
	})
}

// Train learns the eigenmemories of a training set (each element one MHM
// vector of equal length L).
//
//mhm:deterministic
func Train(set [][]float64, opts Options) (*Model, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	n := len(set)
	if n < 2 {
		return nil, fmt.Errorf("pca: need at least 2 training MHMs, got %d: %w", n, ErrTraining)
	}
	l := len(set[0])
	if l == 0 {
		return nil, fmt.Errorf("pca: zero-length MHMs: %w", ErrTraining)
	}
	for i, v := range set {
		if len(v) != l {
			return nil, fmt.Errorf("pca: MHM %d has length %d, want %d: %w", i, len(v), l, ErrTraining)
		}
	}
	// The covariance of N samples in L dims has rank ≤ min(L, N); asking
	// for more eigenpairs than that is a caller bug for explicit
	// Components, and silently capped during automatic selection.
	rank := l
	if n < rank {
		rank = n
	}
	if opts.Components > rank {
		return nil, fmt.Errorf("pca: %d components from %d samples in %d dims: %w",
			opts.Components, n, l, ErrTraining)
	}
	maxK := opts.MaxComponents
	if opts.Components > 0 {
		maxK = opts.Components
	}
	if maxK > rank {
		maxK = rank
	}

	// Ψ = mean, Φ = mean-shifted columns, via the training engine's
	// tiled build (bit-identical for every worker count).
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
		if opts.Parallel {
			workers = runtime.GOMAXPROCS(0)
		}
	}
	mean, phi, totalVar := train.BuildCentered(set, workers)

	eig, err := mat.EigenSymTopK(mat.NewGramOp(phi), maxK, mat.TopKOptions{Seed: opts.Seed, Parallel: opts.Parallel})
	if err != nil {
		return nil, fmt.Errorf("pca: eigendecomposition: %w", err)
	}

	k := maxK
	if opts.Components == 0 {
		// Variance-driven selection.
		cum := 0.0
		k = maxK
		for i, v := range eig.Values {
			if v > 0 {
				cum += v
			}
			if totalVar > 0 && cum/totalVar >= opts.VarianceFraction {
				k = i + 1
				break
			}
		}
	}

	comps := mat.New(l, k)
	for j := 0; j < k; j++ {
		for i := 0; i < l; i++ {
			comps.Set(i, j, eig.Vectors.At(i, j))
		}
	}
	return &Model{
		Mean:          mean,
		Components:    comps,
		Values:        append([]float64(nil), eig.Values[:k]...),
		TotalVariance: totalVar,
	}, nil
}

// Dim returns (L, L').
func (m *Model) Dim() (int, int) { return m.Components.Rows(), m.Components.Cols() }

// VarianceExplained returns the fraction of total variance captured by
// the retained eigenmemories.
func (m *Model) VarianceExplained() float64 {
	if m.TotalVariance <= 0 {
		return 1
	}
	s := 0.0
	for _, v := range m.Values {
		if v > 0 {
			s += v
		}
	}
	f := s / m.TotalVariance
	if f > 1 {
		f = 1 // numerical round-off
	}
	return f
}

// Project transforms one MHM vector into eigenmemory weights
// (Eq. 1: M' = uᵀ(M − Ψ), computed as uᵀM − uᵀΨ with the second term
// cached).
func (m *Model) Project(v []float64) ([]float64, error) {
	_, lp := m.Dim()
	out := make([]float64, lp)
	if err := m.ProjectInto(out, v); err != nil {
		return nil, err
	}
	return out, nil
}

// ProjectInto computes Project into dst (length L'), allocating nothing
// after the projection cache is built on first use. Safe for concurrent
// use with distinct dst slices.
//
//mhm:deterministic
func (m *Model) ProjectInto(dst, v []float64) error {
	l, lp := m.Dim()
	if len(v) != l {
		return fmt.Errorf("pca: Project: length %d, want %d: %w", len(v), l, ErrTraining)
	}
	if len(dst) != lp {
		return fmt.Errorf("pca: Project: dst length %d, want %d: %w", len(dst), lp, ErrTraining)
	}
	m.prepare()
	for j := 0; j < lp; j++ {
		dst[j] = mat.Dot(m.compT.Row(j), v) - m.meanOff[j]
	}
	return nil
}

// ProjectAll transforms a whole set.
func (m *Model) ProjectAll(set [][]float64) ([][]float64, error) {
	out := make([][]float64, len(set))
	for i, v := range set {
		w, err := m.Project(v)
		if err != nil {
			return nil, fmt.Errorf("pca: MHM %d: %w", i, err)
		}
		out[i] = w
	}
	return out, nil
}

// Reconstruct maps weights back to MHM space: Ψ + Σ w_j u_j.
func (m *Model) Reconstruct(w []float64) ([]float64, error) {
	l, lp := m.Dim()
	if len(w) != lp {
		return nil, fmt.Errorf("pca: Reconstruct: length %d, want %d: %w", len(w), lp, ErrTraining)
	}
	out := make([]float64, l)
	copy(out, m.Mean)
	for j, wj := range w {
		if mat.IsZero(wj) {
			continue
		}
		for i := 0; i < l; i++ {
			out[i] += wj * m.Components.At(i, j)
		}
	}
	return out, nil
}

// ReconstructionError returns the RMS error of projecting and
// reconstructing v.
func (m *Model) ReconstructionError(v []float64) (float64, error) {
	l, lp := m.Dim()
	return m.ReconstructionErrorInto(make([]float64, lp), make([]float64, l), v)
}

// ReconstructionErrorInto is ReconstructionError with caller-provided
// scratch — w of length L' and rec of length L — so per-interval
// residual checks run allocation-free. Results are bit-identical to
// ReconstructionError.
func (m *Model) ReconstructionErrorInto(w, rec, v []float64) (float64, error) {
	if err := m.ProjectInto(w, v); err != nil {
		return 0, err
	}
	l, _ := m.Dim()
	if len(rec) != l {
		return 0, fmt.Errorf("pca: ReconstructionErrorInto: rec length %d, want %d: %w", len(rec), l, ErrTraining)
	}
	copy(rec, m.Mean)
	for j, wj := range w {
		if mat.IsZero(wj) {
			continue
		}
		for i := 0; i < l; i++ {
			rec[i] += wj * m.Components.At(i, j)
		}
	}
	return mat.DistEuclid(v, rec) / math.Sqrt(float64(len(v))), nil
}

// modelJSON is the serialization form of Model.
type modelJSON struct {
	Mean          []float64   `json:"mean"`
	Components    [][]float64 `json:"components"` // row-major L x L'
	Values        []float64   `json:"values"`
	TotalVariance float64     `json:"totalVariance"`
}

// Save writes the model as JSON.
func (m *Model) Save(w io.Writer) error {
	l, lp := m.Dim()
	rows := make([][]float64, l)
	for i := 0; i < l; i++ {
		rows[i] = make([]float64, lp)
		copy(rows[i], m.Components.Row(i))
	}
	return json.NewEncoder(w).Encode(modelJSON{
		Mean:          m.Mean,
		Components:    rows,
		Values:        m.Values,
		TotalVariance: m.TotalVariance,
	})
}

// Load reads a model produced by Save.
func Load(r io.Reader) (*Model, error) {
	var mj modelJSON
	if err := json.NewDecoder(r).Decode(&mj); err != nil {
		return nil, fmt.Errorf("pca: decode model: %w", err)
	}
	if len(mj.Mean) == 0 || len(mj.Components) != len(mj.Mean) {
		return nil, fmt.Errorf("pca: malformed model: %w", ErrTraining)
	}
	comps, err := mat.FromRows(mj.Components)
	if err != nil {
		return nil, fmt.Errorf("pca: malformed components: %w", err)
	}
	if comps.Cols() != len(mj.Values) {
		return nil, fmt.Errorf("pca: %d values for %d components: %w", len(mj.Values), comps.Cols(), ErrTraining)
	}
	return &Model{
		Mean:          mj.Mean,
		Components:    comps,
		Values:        mj.Values,
		TotalVariance: mj.TotalVariance,
	}, nil
}
