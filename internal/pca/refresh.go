// The incremental eigenmemory refresh: re-derive the basis from a
// sliding-window covariance sketch, warm-starting subspace iteration
// from the live model's eigenvectors. When the window has drifted only
// incrementally since the previous fit the start block is already near
// the invariant subspace, so a handful of iterations replace the
// hundreds a cold start needs — and the covariance is applied straight
// off the sketch's raw-sample ring, never materializing Φ.
package pca

import (
	"fmt"

	"github.com/memheatmap/mhm/internal/mat"
	"github.com/memheatmap/mhm/internal/train"
)

// RefreshOptions tunes Refresh.
type RefreshOptions struct {
	// MaxIter bounds the warm-started subspace iterations (default 8 —
	// enough for an incrementally drifted window; a cold-start-quality
	// fit should go through Train instead).
	MaxIter int
	// Seed seeds the oversampling block's random rows (default 1).
	Seed int64
	// Parallel applies the covariance operator to the block vectors on
	// separate goroutines; results are identical to the serial run.
	Parallel bool
}

// Refresh re-fits the eigenmemory basis over the sketch's current
// window, keeping the previous model's dimensionality L' fixed — the
// warm-start contract: downstream consumers (the GMM, the packed score
// panel) see the same shapes, only refreshed values. The previous
// model is not modified; the returned model owns its storage.
//
//mhm:deterministic
func Refresh(prev *Model, sk *train.Centered, opts RefreshOptions) (*Model, error) {
	if prev == nil || sk == nil {
		return nil, fmt.Errorf("pca: Refresh: nil model or sketch: %w", ErrTraining)
	}
	l, lp := prev.Dim()
	if sk.Dim() != l {
		return nil, fmt.Errorf("pca: Refresh: sketch dim %d, model dim %d: %w", sk.Dim(), l, ErrTraining)
	}
	if sk.Len() < 2 || sk.Len() < lp {
		return nil, fmt.Errorf("pca: Refresh: %d window samples for %d components: %w", sk.Len(), lp, ErrTraining)
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 8
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	eig, err := mat.EigenSymTopK(sk, lp, mat.TopKOptions{
		MaxIter:  opts.MaxIter,
		Seed:     opts.Seed,
		Parallel: opts.Parallel,
		Init:     prev.Components,
	})
	if err != nil {
		return nil, fmt.Errorf("pca: Refresh: eigendecomposition: %w", err)
	}
	mean := make([]float64, l)
	copy(mean, sk.Mean())
	return &Model{
		Mean:          mean,
		Components:    eig.Vectors,
		Values:        eig.Values,
		TotalVariance: sk.TotalVar(),
	}, nil
}
