package pca

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/memheatmap/mhm/internal/mat"
)

// syntheticSet builds N samples in L dims lying (plus noise) in a
// k-dimensional affine subspace, the structure PCA must recover.
func syntheticSet(rng *rand.Rand, n, l, k int, noise float64) ([][]float64, [][]float64) {
	basis := make([][]float64, k)
	for b := range basis {
		basis[b] = make([]float64, l)
		for i := range basis[b] {
			basis[b][i] = rng.NormFloat64()
		}
		mat.Normalize(basis[b])
	}
	center := make([]float64, l)
	for i := range center {
		center[i] = 10 * rng.NormFloat64()
	}
	set := make([][]float64, n)
	for s := range set {
		v := append([]float64(nil), center...)
		for b := range basis {
			// Decreasing energy per direction.
			w := rng.NormFloat64() * float64(k-b) * 5
			mat.Axpy(w, basis[b], v)
		}
		for i := range v {
			v[i] += noise * rng.NormFloat64()
		}
		set[s] = v
	}
	return set, basis
}

func TestTrainRecoversSubspaceDimension(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	set, _ := syntheticSet(rng, 200, 60, 4, 0.01)
	m, err := Train(set, Options{VarianceFraction: 0.999})
	if err != nil {
		t.Fatal(err)
	}
	_, lp := m.Dim()
	if lp != 4 {
		t.Errorf("selected %d components, want 4", lp)
	}
	if ve := m.VarianceExplained(); ve < 0.999 {
		t.Errorf("variance explained %g", ve)
	}
}

func TestFixedComponentCount(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	set, _ := syntheticSet(rng, 100, 40, 5, 0.1)
	m, err := Train(set, Options{Components: 9})
	if err != nil {
		t.Fatal(err)
	}
	l, lp := m.Dim()
	if l != 40 || lp != 9 {
		t.Errorf("Dim = (%d, %d), want (40, 9)", l, lp)
	}
	if len(m.Values) != 9 {
		t.Errorf("values = %d", len(m.Values))
	}
	// Eigenvalues decreasing.
	for i := 1; i < len(m.Values); i++ {
		if m.Values[i] > m.Values[i-1]+1e-9 {
			t.Errorf("values not decreasing at %d", i)
		}
	}
}

func TestComponentsOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	set, _ := syntheticSet(rng, 120, 50, 6, 0.05)
	m, err := Train(set, Options{Components: 6})
	if err != nil {
		t.Fatal(err)
	}
	utu, err := mat.Mul(m.Components.T(), m.Components)
	if err != nil {
		t.Fatal(err)
	}
	diff, _ := mat.Sub(utu, mat.Identity(6))
	if diff.MaxAbs() > 1e-8 {
		t.Errorf("UᵀU deviates from I by %g", diff.MaxAbs())
	}
}

func TestProjectionCentersTrainingMean(t *testing.T) {
	// Projecting the mean MHM gives the zero weight vector.
	rng := rand.New(rand.NewSource(4))
	set, _ := syntheticSet(rng, 80, 30, 3, 0.1)
	m, err := Train(set, Options{Components: 3})
	if err != nil {
		t.Fatal(err)
	}
	w, err := m.Project(m.Mean)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range w {
		if math.Abs(x) > 1e-9 {
			t.Errorf("w[%d] = %g, want 0", i, x)
		}
	}
}

func TestReconstructionErrorDecreasesWithComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	set, _ := syntheticSet(rng, 150, 40, 8, 0.2)
	var prev float64 = math.Inf(1)
	for _, k := range []int{1, 2, 4, 8} {
		m, err := Train(set, Options{Components: k})
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, v := range set {
			e, err := m.ReconstructionError(v)
			if err != nil {
				t.Fatal(err)
			}
			sum += e
		}
		avg := sum / float64(len(set))
		if avg > prev+1e-9 {
			t.Errorf("k=%d: reconstruction error %g did not decrease from %g", k, avg, prev)
		}
		prev = avg
	}
	// With the full subspace the residual is just the noise.
	if prev > 0.5 {
		t.Errorf("full-rank residual %g too large", prev)
	}
}

func TestProjectReconstructRoundTripInSubspace(t *testing.T) {
	// Noise-free samples reconstruct exactly with k components.
	rng := rand.New(rand.NewSource(6))
	set, _ := syntheticSet(rng, 100, 30, 4, 0)
	m, err := Train(set, Options{Components: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		v := set[i]
		w, err := m.Project(v)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := m.Reconstruct(w)
		if err != nil {
			t.Fatal(err)
		}
		if d := mat.DistEuclid(v, rec); d > 1e-6*mat.Norm2(v) {
			t.Errorf("sample %d: reconstruction distance %g", i, d)
		}
	}
}

func TestTrainValidation(t *testing.T) {
	ok := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	cases := []struct {
		name string
		set  [][]float64
		opts Options
	}{
		{"too few samples", [][]float64{{1, 2}}, Options{Components: 1}},
		{"empty vectors", [][]float64{{}, {}}, Options{Components: 1}},
		{"ragged", [][]float64{{1, 2}, {3}}, Options{Components: 1}},
		{"negative components", ok, Options{Components: -1}},
		{"bad fraction", ok, Options{VarianceFraction: 1.5}},
		{"components exceed samples", ok, Options{Components: 4}},
	}
	for _, c := range cases {
		if _, err := Train(c.set, c.opts); !errors.Is(err, ErrTraining) {
			t.Errorf("%s: err = %v, want ErrTraining", c.name, err)
		}
	}
}

func TestProjectValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	set, _ := syntheticSet(rng, 50, 20, 2, 0.1)
	m, err := Train(set, Options{Components: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Project(make([]float64, 5)); !errors.Is(err, ErrTraining) {
		t.Errorf("short Project: %v", err)
	}
	if _, err := m.Reconstruct(make([]float64, 5)); !errors.Is(err, ErrTraining) {
		t.Errorf("short Reconstruct: %v", err)
	}
	if _, err := m.ProjectAll([][]float64{make([]float64, 20), make([]float64, 3)}); !errors.Is(err, ErrTraining) {
		t.Errorf("ragged ProjectAll: %v", err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	set, _ := syntheticSet(rng, 60, 25, 3, 0.1)
	m, err := Train(set, Options{Components: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Same projections from both models.
	w1, _ := m.Project(set[0])
	w2, err := m2.Project(set[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := range w1 {
		if math.Abs(w1[i]-w2[i]) > 1e-12 {
			t.Errorf("projection %d differs after round trip", i)
		}
	}
	if m2.VarianceExplained() != m.VarianceExplained() {
		t.Error("variance explained changed after round trip")
	}
}

func TestLoadRejectsMalformed(t *testing.T) {
	cases := []string{
		"not json",
		`{"mean":[],"components":[],"values":[]}`,
		`{"mean":[1,2],"components":[[1],[2],[3]],"values":[0.5]}`,
		`{"mean":[1,2],"components":[[1],[2]],"values":[0.5,0.6]}`,
	}
	for i, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: malformed model accepted", i)
		}
	}
}

func TestAutoSelectionCapsAtSampleCount(t *testing.T) {
	// 5 samples in 20 dims: automatic selection must not request more
	// eigenpairs than the data's rank supports.
	rng := rand.New(rand.NewSource(9))
	set := make([][]float64, 5)
	for i := range set {
		set[i] = make([]float64, 20)
		for j := range set[i] {
			set[i][j] = rng.NormFloat64()
		}
	}
	m, err := Train(set, Options{VarianceFraction: 0.99999})
	if err != nil {
		t.Fatal(err)
	}
	if _, lp := m.Dim(); lp > 5 {
		t.Errorf("selected %d components from 5 samples", lp)
	}
}

// TestTrainWorkersBitIdentical pins the training engine's determinism
// contract at the pca level: the tiled mean/Φ/variance build yields the
// same model bit for bit for every worker count, serial and parallel.
func TestTrainWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	set, _ := syntheticSet(rng, 40, 700, 5, 0.05) // spans two dimension tiles
	base, err := Train(set, Options{Components: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 9} {
		for _, parallel := range []bool{false, true} {
			m, err := Train(set, Options{Components: 5, Workers: workers, Parallel: parallel})
			if err != nil {
				t.Fatalf("workers=%d parallel=%v: %v", workers, parallel, err)
			}
			if math.Float64bits(m.TotalVariance) != math.Float64bits(base.TotalVariance) {
				t.Fatalf("workers=%d parallel=%v: total variance %v, want %v", workers, parallel, m.TotalVariance, base.TotalVariance)
			}
			for i := range base.Mean {
				if math.Float64bits(m.Mean[i]) != math.Float64bits(base.Mean[i]) {
					t.Fatalf("workers=%d parallel=%v: mean[%d] differs", workers, parallel, i)
				}
			}
			for i := range base.Values {
				if math.Float64bits(m.Values[i]) != math.Float64bits(base.Values[i]) {
					t.Fatalf("workers=%d parallel=%v: eigenvalue[%d] %v, want %v", workers, parallel, i, m.Values[i], base.Values[i])
				}
			}
			l, lp := base.Dim()
			for i := 0; i < l; i++ {
				for j := 0; j < lp; j++ {
					if math.Float64bits(m.Components.At(i, j)) != math.Float64bits(base.Components.At(i, j)) {
						t.Fatalf("workers=%d parallel=%v: component [%d][%d] differs", workers, parallel, i, j)
					}
				}
			}
		}
	}
}
