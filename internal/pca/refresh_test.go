package pca

import (
	"math"
	"math/rand"
	"testing"

	"github.com/memheatmap/mhm/internal/mat"
	"github.com/memheatmap/mhm/internal/train"
)

// TestRefreshMatchesTrainOnSameWindow refreshes over the exact window a
// cold Train saw and checks the recovered subspace agrees: same L',
// matching eigenvalues, aligned eigenvectors (up to sign).
func TestRefreshMatchesTrainOnSameWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	set, _ := syntheticSet(rng, 150, 48, 4, 0.01)
	prev, err := Train(set, Options{Components: 4})
	if err != nil {
		t.Fatal(err)
	}
	sk, err := train.NewCentered(48, 150, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sk.Update(set); err != nil {
		t.Fatal(err)
	}
	got, err := Refresh(prev, sk, RefreshOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, lp := got.Dim()
	if lp != 4 {
		t.Fatalf("refreshed L' = %d, want 4", lp)
	}
	for i := range got.Values {
		if d := math.Abs(got.Values[i] - prev.Values[i]); d > 1e-6*(1+prev.Values[0]) {
			t.Errorf("value[%d] = %g, want %g", i, got.Values[i], prev.Values[i])
		}
		dot := math.Abs(mat.Dot(got.Components.ColCopy(i), prev.Components.ColCopy(i)))
		if math.Abs(dot-1) > 1e-5 {
			t.Errorf("component %d misaligned: |dot| = %g", i, dot)
		}
	}
	if d := math.Abs(got.TotalVariance - prev.TotalVariance); d > 1e-6*(1+prev.TotalVariance) {
		t.Errorf("total variance %g, want %g", got.TotalVariance, prev.TotalVariance)
	}
}

// TestRefreshTracksDriftedWindow slides the window onto drifted data
// and checks the refreshed basis matches a cold retrain over the same
// window far better than the stale basis does.
func TestRefreshTracksDriftedWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	set, _ := syntheticSet(rng, 150, 48, 4, 0.01)
	prev, err := Train(set, Options{Components: 4})
	if err != nil {
		t.Fatal(err)
	}
	drifted, _ := syntheticSet(rng, 150, 48, 4, 0.01)
	sk, err := train.NewCentered(48, 150, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sk.Update(drifted); err != nil {
		t.Fatal(err)
	}
	cold, err := Train(drifted, Options{Components: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Refresh(prev, sk, RefreshOptions{MaxIter: 30})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Values {
		if d := math.Abs(got.Values[i] - cold.Values[i]); d > 1e-4*(1+cold.Values[0]) {
			t.Errorf("value[%d] = %g, cold retrain %g", i, got.Values[i], cold.Values[i])
		}
	}
}

// TestRefreshDeterministic pins bit-identity across the Parallel modes.
func TestRefreshDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	set, _ := syntheticSet(rng, 120, 40, 3, 0.02)
	prev, err := Train(set, Options{Components: 3})
	if err != nil {
		t.Fatal(err)
	}
	drifted, _ := syntheticSet(rng, 120, 40, 3, 0.02)
	sk, err := train.NewCentered(40, 120, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := sk.Update(drifted); err != nil {
		t.Fatal(err)
	}
	base, err := Refresh(prev, sk, RefreshOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, parallel := range []bool{false, true} {
		got, err := Refresh(prev, sk, RefreshOptions{Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		for i := range base.Values {
			if math.Float64bits(base.Values[i]) != math.Float64bits(got.Values[i]) {
				t.Fatalf("parallel=%t: value[%d] differs", parallel, i)
			}
		}
		for i := range base.Mean {
			if math.Float64bits(base.Mean[i]) != math.Float64bits(got.Mean[i]) {
				t.Fatalf("parallel=%t: mean[%d] differs", parallel, i)
			}
		}
	}
}

// TestRefreshRejectsThinWindow checks the window floor.
func TestRefreshRejectsThinWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	set, _ := syntheticSet(rng, 60, 20, 4, 0.01)
	prev, err := Train(set, Options{Components: 4})
	if err != nil {
		t.Fatal(err)
	}
	sk, err := train.NewCentered(20, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sk.Update(set[:2]); err != nil {
		t.Fatal(err)
	}
	if _, err := Refresh(prev, sk, RefreshOptions{}); err == nil {
		t.Fatal("refresh over a 2-sample window for L'=4 succeeded")
	}
}
