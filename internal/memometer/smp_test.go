package memometer

import (
	"errors"
	"testing"

	"github.com/memheatmap/mhm/internal/heatmap"
)

func smpCfg() Config {
	return Config{
		Region:         heatmap.Def{AddrBase: 0x1000, Size: 0x1000, Gran: 0x100},
		IntervalMicros: 1000,
	}
}

func TestNewSMPValidation(t *testing.T) {
	if _, err := NewSMP(smpCfg(), 0, nil); !errors.Is(err, ErrConfig) {
		t.Errorf("zero ports: %v", err)
	}
	if _, err := NewSMP(Config{}, 2, nil); !errors.Is(err, heatmap.ErrConfig) {
		t.Errorf("bad region: %v", err)
	}
	s, err := NewSMP(smpCfg(), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Port(2); !errors.Is(err, ErrPort) {
		t.Errorf("out-of-range port: %v", err)
	}
	if _, err := s.Port(-1); !errors.Is(err, ErrPort) {
		t.Errorf("negative port: %v", err)
	}
}

func TestMergePreservesGlobalTimeOrder(t *testing.T) {
	// Two ports with interleaved timestamps; the device must never see
	// time going backwards (it would error), and all counts must land.
	var maps []*heatmap.HeatMap
	s, err := NewSMP(smpCfg(), 2, func(hm *heatmap.HeatMap) error {
		maps = append(maps, hm)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	p0, _ := s.Port(0)
	p1, _ := s.Port(1)
	// Port 0 leads, port 1 lags: events release only at the lagging
	// port's watermark.
	if err := p0.SnoopBurst(100, 0x1000, 1); err != nil {
		t.Fatal(err)
	}
	if err := p0.SnoopBurst(900, 0x1100, 2); err != nil {
		t.Fatal(err)
	}
	if err := p1.SnoopBurst(50, 0x1200, 4); err != nil {
		t.Fatal(err)
	}
	if err := p1.SnoopBurst(950, 0x1300, 8); err != nil {
		t.Fatal(err)
	}
	// Cross the boundary on both ports.
	if err := p0.SnoopBurst(1100, 0x1000, 16); err != nil {
		t.Fatal(err)
	}
	if err := p1.SnoopBurst(1200, 0x1000, 32); err != nil {
		t.Fatal(err)
	}
	if err := s.Finish(2000); err != nil {
		t.Fatal(err)
	}
	if len(maps) != 2 {
		t.Fatalf("maps = %d, want 2", len(maps))
	}
	first, second := maps[0], maps[1]
	if first.Total() != 1+2+4+8 {
		t.Errorf("first interval total = %d, want 15", first.Total())
	}
	if second.Total() != 16+32 {
		t.Errorf("second interval total = %d, want 48", second.Total())
	}
	if s.Device().Stats().Overruns != 0 {
		t.Errorf("overruns: %d", s.Device().Stats().Overruns)
	}
}

func TestLaggingPortStallsRelease(t *testing.T) {
	delivered := 0
	s, err := NewSMP(smpCfg(), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	p0, _ := s.Port(0)
	p1, _ := s.Port(1)
	if err := p0.SnoopBurst(500, 0x1000, 1); err != nil {
		t.Fatal(err)
	}
	// Port 1 has not advanced past 0: nothing may be delivered yet.
	if got := s.Device().Stats().Snooped; got != 0 {
		t.Errorf("delivered %d events before watermark", got)
	}
	// Port 1 ticks forward: the buffered event releases.
	if err := p1.Tick(600); err != nil {
		t.Fatal(err)
	}
	if got := s.Device().Stats().Snooped; got != 1 {
		t.Errorf("delivered %d events after watermark, want 1", got)
	}
	_ = delivered
}

func TestClosedPortDoesNotStall(t *testing.T) {
	s, err := NewSMP(smpCfg(), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	p0, _ := s.Port(0)
	p1, _ := s.Port(1)
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p0.SnoopBurst(100, 0x1000, 1); err != nil {
		t.Fatal(err)
	}
	if got := s.Device().Stats().Snooped; got != 1 {
		t.Errorf("closed port stalled delivery: %d", got)
	}
	// Closed port rejects traffic.
	if err := p1.SnoopBurst(200, 0x1000, 1); !errors.Is(err, ErrPort) {
		t.Errorf("closed port accepted snoop: %v", err)
	}
	if err := p1.Tick(200); !errors.Is(err, ErrPort) {
		t.Errorf("closed port accepted tick: %v", err)
	}
	// Double close is idempotent.
	if err := p1.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestPortTimeMonotonicity(t *testing.T) {
	s, err := NewSMP(smpCfg(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := s.Port(0)
	if err := p.SnoopBurst(500, 0x1000, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.SnoopBurst(400, 0x1000, 1); !errors.Is(err, ErrConfig) {
		t.Errorf("backwards snoop: %v", err)
	}
	if err := p.Tick(100); !errors.Is(err, ErrConfig) {
		t.Errorf("backwards tick: %v", err)
	}
}

func TestSMPEquivalentToSingleDeviceForOnePort(t *testing.T) {
	// A 1-port SMP must produce exactly what a plain Device produces.
	var smpMaps []*heatmap.HeatMap
	s, err := NewSMP(smpCfg(), 1, func(hm *heatmap.HeatMap) error {
		smpMaps = append(smpMaps, hm)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	plain := New()
	if err := plain.Configure(smpCfg()); err != nil {
		t.Fatal(err)
	}
	p, _ := s.Port(0)
	events := []struct {
		t     int64
		addr  uint64
		count uint32
	}{
		{100, 0x1000, 3}, {600, 0x1800, 5}, {1500, 0x1000, 7}, {2900, 0x1F00, 11},
	}
	var plainMaps []*heatmap.HeatMap
	for _, e := range events {
		if err := p.SnoopBurst(e.t, e.addr, e.count); err != nil {
			t.Fatal(err)
		}
		if err := plain.SnoopBurst(e.t, e.addr, e.count); err != nil {
			t.Fatal(err)
		}
		for plain.HasPending() {
			hm, err := plain.Collect()
			if err != nil {
				t.Fatal(err)
			}
			plainMaps = append(plainMaps, hm)
		}
	}
	if err := s.Finish(3000); err != nil {
		t.Fatal(err)
	}
	if err := plain.Tick(3000); err != nil {
		t.Fatal(err)
	}
	for plain.HasPending() {
		hm, err := plain.Collect()
		if err != nil {
			t.Fatal(err)
		}
		plainMaps = append(plainMaps, hm)
	}
	if len(smpMaps) != len(plainMaps) {
		t.Fatalf("SMP %d maps vs plain %d", len(smpMaps), len(plainMaps))
	}
	for i := range smpMaps {
		if d, _ := smpMaps[i].L1Distance(plainMaps[i]); d != 0 {
			t.Errorf("interval %d differs between SMP and plain device", i)
		}
	}
}
