// Package memometer models the paper's on-chip monitoring hardware: a
// module that snoops the address bus between the monitored core and its
// L1 cache, filters addresses into a configured region, increments
// per-cell counters in a fast on-chip memory, and double-buffers two such
// memories so the secure core can analyze a completed MHM while the next
// interval is being recorded.
package memometer

import (
	"errors"
	"fmt"

	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/obs"
	"github.com/memheatmap/mhm/internal/trace"
)

// Default hardware sizing from the paper's prototype: two 8 KB on-chip
// memories of 32-bit counters, i.e. at most 2,048 cells per MHM.
const (
	// MemoryBytes is the size of each on-chip MHM memory.
	MemoryBytes = 8 * 1024
	// CounterBytes is the width of one cell counter.
	CounterBytes = 4
	// MaxCells is the largest MHM the on-chip memories can hold.
	MaxCells = MemoryBytes / CounterBytes
)

// SparseCollectFrac is the occupancy fraction below which Collect
// routes the snapshot through the run-length form: the completed MHM is
// sparsified into a reusable scratch and scattered into a fresh
// (runtime-zeroed) map instead of dense-cloned, so a mostly-empty
// interval copies only its occupied runs. The routing is behavioural
// only — both routes produce bit-identical snapshots.
const SparseCollectFrac = 0.25

// Errors reported by the device model.
var (
	// ErrConfig wraps invalid monitoring parameters.
	ErrConfig = errors.New("memometer: invalid configuration")
	// ErrNotConfigured is returned when the device is used before the
	// secure core programs its control registers.
	ErrNotConfigured = errors.New("memometer: device not configured")
	// ErrNotReady is returned when the secure core reads an MHM before an
	// interval boundary has produced one.
	ErrNotReady = errors.New("memometer: no completed MHM pending")
)

// Config mirrors the device's control registers: the monitored region
// triple plus the monitoring interval.
type Config struct {
	// Region defines AddrBase, Size and Granularity.
	Region heatmap.Def
	// IntervalMicros is the monitoring interval in microseconds (the
	// paper uses 10 ms = 10,000 µs).
	IntervalMicros int64
}

// Validate checks the register values against hardware limits.
func (c Config) Validate() error {
	if err := c.Region.Validate(); err != nil {
		return fmt.Errorf("memometer: region: %w", err)
	}
	if cells := c.Region.Cells(); cells > MaxCells {
		return fmt.Errorf("memometer: %d cells exceed on-chip memory capacity %d: %w",
			cells, MaxCells, ErrConfig)
	}
	if c.IntervalMicros <= 0 {
		return fmt.Errorf("memometer: non-positive interval %d: %w", c.IntervalMicros, ErrConfig)
	}
	return nil
}

// Stats counts device activity for observability and tests.
type Stats struct {
	// Snooped is the number of bus events observed (bursts count once).
	Snooped uint64
	// Accepted is the number of bus events that fell inside the region.
	Accepted uint64
	// AcceptedAccesses is the total fetch count accepted (bursts count
	// their full size).
	AcceptedAccesses uint64
	// Intervals is the number of completed MHMs produced.
	Intervals uint64
	// Overruns counts completed MHMs that were discarded because the
	// secure core had not collected the previous one in time (both
	// on-chip memories full).
	Overruns uint64
	// SparseCollects counts Collect calls that took the run-length route
	// (interval occupancy below SparseCollectFrac).
	SparseCollects uint64
}

// deviceMetrics mirrors Stats into live obs counters; all-nil (free)
// until SetMetrics installs a registry.
type deviceMetrics struct {
	snooped          *obs.Counter
	accepted         *obs.Counter
	acceptedAccesses *obs.Counter
	swaps            *obs.Counter
	overruns         *obs.Counter
	pending          *obs.Gauge
}

// Device is the Memometer. It is driven by two actors: the monitored
// core's bus (Snoop/SnoopBurst, plus Tick for time) and the secure core
// (Configure, Collect). The model is single-threaded by design — the
// simulation delivers events in time order. Installed metrics counters
// are atomic, so a metrics exporter may snapshot them from another
// goroutine while the simulation runs.
type Device struct {
	cfg        Config
	configured bool

	active   *heatmap.HeatMap // buffer currently recording
	shadow   *heatmap.HeatMap // buffer available for the next swap
	pending  *heatmap.HeatMap // completed MHM awaiting secure-core Collect
	started  int64            // start time of the active interval
	lastTime int64

	activeOcc  int            // occupied cells in the active interval
	pendingOcc int            // occupied cells in the pending MHM
	sparse     heatmap.Sparse // reusable sparse-route Collect scratch

	stats Stats
	met   deviceMetrics
}

// SetMetrics installs observability counters (catalogue: DESIGN.md §6).
// A nil registry uninstalls instrumentation.
func (d *Device) SetMetrics(r *obs.Registry) {
	d.met = deviceMetrics{
		snooped:          r.Counter("memometer.snooped"),
		accepted:         r.Counter("memometer.accepted"),
		acceptedAccesses: r.Counter("memometer.accepted_accesses"),
		swaps:            r.Counter("memometer.swaps"),
		overruns:         r.Counter("memometer.overruns"),
		pending:          r.Gauge("memometer.pending"),
	}
}

// New returns an unconfigured device.
func New() *Device { return &Device{} }

// Configure programs the control registers and resets monitoring state.
// It mirrors the secure core writing Control Reg 1/2 in Fig. 4.
func (d *Device) Configure(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	active, err := heatmap.New(cfg.Region)
	if err != nil {
		return err
	}
	shadow, err := heatmap.New(cfg.Region)
	if err != nil {
		return err
	}
	d.cfg = cfg
	d.configured = true
	d.active = active
	d.shadow = shadow
	d.pending = nil
	d.started = 0
	d.lastTime = 0
	d.activeOcc = 0
	d.pendingOcc = 0
	d.stats = Stats{}
	return nil
}

// Config returns the programmed registers.
func (d *Device) Config() (Config, error) {
	if !d.configured {
		return Config{}, ErrNotConfigured
	}
	return d.cfg, nil
}

// Stats returns a copy of the activity counters.
func (d *Device) Stats() Stats { return d.stats }

// advanceTo rolls the device clock forward to t, closing any interval
// boundaries crossed on the way. Each boundary swaps the double buffer:
// the filled memory becomes the pending MHM for the secure core and the
// other memory starts recording. If the pending slot is still occupied
// (analysis overran the interval), the older MHM is dropped and counted
// as an overrun, as real fixed-size hardware would.
//
//mhm:hotpath
func (d *Device) advanceTo(t int64) {
	for t-d.started >= d.cfg.IntervalMicros {
		boundary := d.started + d.cfg.IntervalMicros
		d.active.Start = d.started
		d.active.End = boundary

		if d.pending != nil {
			// Secure core never collected the previous MHM.
			d.stats.Overruns++
			d.met.overruns.Inc()
			// Reclaim the stale buffer as the new shadow.
			d.pending.Reset()
			d.shadow = d.pending
		}
		d.pending = d.active
		d.pendingOcc = d.activeOcc
		d.activeOcc = 0
		d.shadow.Reset()
		d.active = d.shadow
		d.shadow = nil // exactly one of shadow/pending holds the spare
		d.started = boundary
		d.stats.Intervals++
		d.met.swaps.Inc()
		d.met.pending.Set(1)
	}
	d.lastTime = t
}

// Tick informs the device of the current simulation time without a bus
// event, so interval boundaries fire during quiet periods.
//
//mhm:hotpath
func (d *Device) Tick(t int64) error {
	if !d.configured {
		return ErrNotConfigured
	}
	if t < d.lastTime {
		//mhmlint:ignore hotpath cold error path; a malformed stream already aborts the run
		return fmt.Errorf("memometer: time went backwards (%d < %d): %w", t, d.lastTime, ErrConfig)
	}
	d.advanceTo(t)
	return nil
}

// Snoop observes a single fetch at addr at time t.
//
//mhm:hotpath
func (d *Device) Snoop(t int64, addr uint64) error {
	return d.SnoopBurst(t, addr, 1)
}

// SnoopBurst observes a burst of count fetches starting at addr. The
// synthetic kernel emits function-level bursts; recording them is
// equivalent to count unit snoops for counter histograms.
//
//mhm:hotpath
func (d *Device) SnoopBurst(t int64, addr uint64, count uint32) error {
	if !d.configured {
		return ErrNotConfigured
	}
	if t < d.lastTime {
		//mhmlint:ignore hotpath cold error path; a malformed stream already aborts the run
		return fmt.Errorf("memometer: time went backwards (%d < %d): %w", t, d.lastTime, ErrConfig)
	}
	d.advanceTo(t)
	d.stats.Snooped++
	d.met.snooped.Inc()
	if count == 0 {
		return nil
	}
	if newCell, ok := d.active.RecordNew(addr, count); ok {
		if newCell {
			d.activeOcc++
		}
		d.stats.Accepted++
		d.stats.AcceptedAccesses += uint64(count)
		d.met.accepted.Inc()
		d.met.acceptedAccesses.Add(uint64(count))
	}
	return nil
}

// SnoopBatch observes a time-ordered batch of bus events, the ingest
// unit of the batched trace path (trace.Reader.ReadBatch). It stops as
// soon as an event completes an MHM — before the following event is
// fed — so the caller can Collect the pending map and resubmit the
// remainder, preserving the drain-as-you-go overrun semantics of
// per-event feeding. It returns the number of events consumed; on error
// the failing event is not counted.
//
//mhm:hotpath
func (d *Device) SnoopBatch(events []trace.Access) (int, error) {
	for i := range events {
		a := &events[i]
		if err := d.SnoopBurst(a.Time, a.Addr, a.Count); err != nil {
			return i, err
		}
		if d.pending != nil {
			return i + 1, nil
		}
	}
	return len(events), nil
}

// HasPending reports whether a completed MHM awaits collection.
func (d *Device) HasPending() bool { return d.pending != nil }

// Collect hands the completed MHM to the secure core and frees the
// on-chip memory for the next swap. The returned heat map is a snapshot
// the caller owns. When the interval occupied fewer than
// SparseCollectFrac of the region's cells, the snapshot is built
// through the run-length form (a reusable scratch scattered into a
// fresh map) instead of a dense clone; the result is bit-identical
// either way.
func (d *Device) Collect() (*heatmap.HeatMap, error) {
	if !d.configured {
		return nil, ErrNotConfigured
	}
	if d.pending == nil {
		return nil, ErrNotReady
	}
	var out *heatmap.HeatMap
	if float64(d.pendingOcc) < SparseCollectFrac*float64(d.cfg.Region.Cells()) {
		d.pending.Sparsify(&d.sparse)
		out = d.sparse.Dense(nil)
		d.stats.SparseCollects++
	} else {
		out = d.pending.Clone()
	}
	// The analyzed on-chip memory is reset and becomes the spare buffer,
	// per the paper's timing diagram.
	d.pending.Reset()
	d.shadow = d.pending
	d.pending = nil
	d.met.pending.Set(0)
	return out, nil
}

// CollectSparse hands the completed MHM to the secure core in
// run-length form, reusing dst's backing arrays, and frees the
// on-chip memory for the next swap — the zero-copy variant of Collect
// for the fused ingest→snoop→score path: no dense clone is
// materialized, and with a warmed dst the steady state is
// allocation-free.
func (d *Device) CollectSparse(dst *heatmap.Sparse) error {
	if !d.configured {
		return ErrNotConfigured
	}
	if d.pending == nil {
		return ErrNotReady
	}
	d.pending.Sparsify(dst)
	d.pending.Reset()
	d.shadow = d.pending
	d.pending = nil
	d.met.pending.Set(0)
	return nil
}

// Run pumps a time-ordered access stream through the device, invoking
// collect for every completed MHM. It is the software equivalent of the
// secure core polling at interval boundaries.
func (d *Device) Run(events func(yield func(t int64, addr uint64, count uint32) error) error, collect func(*heatmap.HeatMap) error) error {
	if !d.configured {
		return ErrNotConfigured
	}
	drain := func() error {
		for d.HasPending() {
			m, err := d.Collect()
			if err != nil {
				return err
			}
			if err := collect(m); err != nil {
				return err
			}
		}
		return nil
	}
	err := events(func(t int64, addr uint64, count uint32) error {
		if err := d.SnoopBurst(t, addr, count); err != nil {
			return err
		}
		return drain()
	})
	if err != nil {
		return err
	}
	return drain()
}
