package memometer

import (
	"container/heap"
	"errors"
	"fmt"

	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/trace"
)

// ErrPort wraps SMP port misuse.
var ErrPort = errors.New("memometer: invalid SMP port usage")

// SMP is the §5.5 symmetric-multiprocessing variant of the Memometer:
// one set of MHM memories (a single Device) fed by replicated per-core
// snoop/filter ports. Each port receives a monotone event stream from
// its core; the merge front-end releases events to the device only once
// every open port has advanced past them, preserving global time order.
type SMP struct {
	dev     *Device
	ports   []*Port
	pending mergeHeap
	collect func(*heatmap.HeatMap) error
}

// Port is one core's snoop interface into the shared device.
type Port struct {
	owner  *SMP
	index  int
	last   int64
	closed bool
}

type mergeEvent struct {
	acc  trace.Access
	seq  uint64
	port int
}

type mergeHeap struct {
	events  []mergeEvent
	nextSeq uint64
}

func (h mergeHeap) Len() int { return len(h.events) }
func (h mergeHeap) Less(i, j int) bool {
	if h.events[i].acc.Time != h.events[j].acc.Time {
		return h.events[i].acc.Time < h.events[j].acc.Time
	}
	return h.events[i].seq < h.events[j].seq
}
func (h mergeHeap) Swap(i, j int) { h.events[i], h.events[j] = h.events[j], h.events[i] }
func (h *mergeHeap) Push(x any)   { h.events = append(h.events, x.(mergeEvent)) }
func (h *mergeHeap) Pop() any {
	old := h.events
	n := len(old)
	e := old[n-1]
	h.events = old[:n-1]
	return e
}

// NewSMP builds a shared device with n snoop ports. Every completed MHM
// is handed to collect immediately — the merge can cross several
// interval boundaries in one release, and the device holds only one
// pending MHM at a time.
func NewSMP(cfg Config, n int, collect func(*heatmap.HeatMap) error) (*SMP, error) {
	if n <= 0 {
		return nil, fmt.Errorf("memometer: %d SMP ports: %w", n, ErrConfig)
	}
	if collect == nil {
		collect = func(*heatmap.HeatMap) error { return nil }
	}
	dev := New()
	if err := dev.Configure(cfg); err != nil {
		return nil, err
	}
	s := &SMP{dev: dev, collect: collect}
	for i := 0; i < n; i++ {
		s.ports = append(s.ports, &Port{owner: s, index: i})
	}
	return s, nil
}

// drain hands completed MHMs to the collector.
func (s *SMP) drain() error {
	for s.dev.HasPending() {
		hm, err := s.dev.Collect()
		if err != nil {
			return err
		}
		if err := s.collect(hm); err != nil {
			return err
		}
	}
	return nil
}

// Device returns the shared Memometer (for stats and Collect).
func (s *SMP) Device() *Device { return s.dev }

// Port returns snoop port i.
func (s *SMP) Port(i int) (*Port, error) {
	if i < 0 || i >= len(s.ports) {
		return nil, fmt.Errorf("memometer: port %d of %d: %w", i, len(s.ports), ErrPort)
	}
	return s.ports[i], nil
}

// SnoopBurst feeds one event into the port. Events on a port must be
// time-ordered; the merge releases them to the device once safe.
func (p *Port) SnoopBurst(t int64, addr uint64, count uint32) error {
	if p.closed {
		return fmt.Errorf("memometer: port %d is closed: %w", p.index, ErrPort)
	}
	if t < p.last {
		return fmt.Errorf("memometer: port %d time went backwards (%d < %d): %w",
			p.index, t, p.last, ErrConfig)
	}
	p.last = t
	s := p.owner
	s.pending.nextSeq++
	heap.Push(&s.pending, mergeEvent{
		acc:  trace.Access{Time: t, Addr: addr, Count: count},
		seq:  s.pending.nextSeq,
		port: p.index,
	})
	return s.pump()
}

// Tick advances the port's clock without an event so idle cores do not
// stall the merge.
func (p *Port) Tick(t int64) error {
	if p.closed {
		return fmt.Errorf("memometer: port %d is closed: %w", p.index, ErrPort)
	}
	if t < p.last {
		return fmt.Errorf("memometer: port %d time went backwards (%d < %d): %w",
			p.index, t, p.last, ErrConfig)
	}
	p.last = t
	return p.owner.pump()
}

// Close marks the port as finished; remaining merges ignore it.
func (p *Port) Close() error {
	if p.closed {
		return nil
	}
	p.closed = true
	return p.owner.pump()
}

// watermark returns the merge-safe time: the minimum last-seen time over
// open ports, or the maximum possible when all ports are closed.
func (s *SMP) watermark() int64 {
	w := int64(1)<<62 - 1
	open := false
	for _, p := range s.ports {
		if p.closed {
			continue
		}
		open = true
		if p.last < w {
			w = p.last
		}
	}
	if !open {
		return int64(1)<<62 - 1
	}
	return w
}

// pump releases every buffered event at or before the watermark into the
// shared device, in global time order.
func (s *SMP) pump() error {
	w := s.watermark()
	for s.pending.Len() > 0 && s.pending.events[0].acc.Time <= w {
		e := heap.Pop(&s.pending).(mergeEvent)
		if err := s.dev.SnoopBurst(e.acc.Time, e.acc.Addr, e.acc.Count); err != nil {
			return err
		}
		if err := s.drain(); err != nil {
			return err
		}
	}
	return nil
}

// Finish closes all ports, flushes the merge, and advances the shared
// device clock to t so the final interval completes. The session is
// done after Finish; ports reject further traffic.
func (s *SMP) Finish(t int64) error {
	for _, p := range s.ports {
		p.closed = true
	}
	if err := s.pump(); err != nil {
		return err
	}
	if err := s.dev.Tick(t); err != nil {
		return err
	}
	return s.drain()
}
