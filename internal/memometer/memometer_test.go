package memometer

import (
	"errors"
	"testing"

	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/trace"
)

func testCfg() Config {
	return Config{
		Region:         heatmap.Def{AddrBase: 0x1000, Size: 0x1000, Gran: 0x100}, // 16 cells
		IntervalMicros: 1000,
	}
}

func mustDevice(t *testing.T) *Device {
	t.Helper()
	d := New()
	if err := d.Configure(testCfg()); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want error
	}{
		{"ok", testCfg(), nil},
		{"bad region", Config{Region: heatmap.Def{Size: 10, Gran: 3}, IntervalMicros: 10}, heatmap.ErrConfig},
		{"zero interval", Config{Region: heatmap.Def{Size: 0x100, Gran: 0x100}, IntervalMicros: 0}, ErrConfig},
		{"too many cells", Config{
			Region:         heatmap.Def{AddrBase: 0, Size: (MaxCells + 1) * 0x100, Gran: 0x100},
			IntervalMicros: 10,
		}, ErrConfig},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if c.want == nil && err != nil {
			t.Errorf("%s: unexpected %v", c.name, err)
		}
		if c.want != nil && !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestPaperRegionFitsOnChipMemory(t *testing.T) {
	// The paper's 1,472-cell MHM must fit the 8 KB on-chip memory
	// (max ~2,000 cells).
	cfg := Config{
		Region:         heatmap.Def{AddrBase: 0xC0008000, Size: 3013284, Gran: 2048},
		IntervalMicros: 10000,
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("paper config rejected: %v", err)
	}
	if cfg.Region.Cells() != 1472 || MaxCells != 2048 {
		t.Errorf("cells=%d maxcells=%d", cfg.Region.Cells(), MaxCells)
	}
}

func TestUnconfiguredDevice(t *testing.T) {
	d := New()
	if err := d.Snoop(0, 0x1000); !errors.Is(err, ErrNotConfigured) {
		t.Errorf("Snoop: %v", err)
	}
	if err := d.Tick(0); !errors.Is(err, ErrNotConfigured) {
		t.Errorf("Tick: %v", err)
	}
	if _, err := d.Collect(); !errors.Is(err, ErrNotConfigured) {
		t.Errorf("Collect: %v", err)
	}
	if _, err := d.Config(); !errors.Is(err, ErrNotConfigured) {
		t.Errorf("Config: %v", err)
	}
	if err := d.Run(nil, nil); !errors.Is(err, ErrNotConfigured) {
		t.Errorf("Run: %v", err)
	}
}

func TestSnoopFiltersAddresses(t *testing.T) {
	d := mustDevice(t)
	if err := d.Snoop(10, 0x1000); err != nil { // in region
		t.Fatal(err)
	}
	if err := d.Snoop(20, 0x0FFF); err != nil { // below
		t.Fatal(err)
	}
	if err := d.Snoop(30, 0x2000); err != nil { // above
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Snooped != 3 || st.Accepted != 1 || st.AcceptedAccesses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestIntervalBoundaryProducesMHM(t *testing.T) {
	d := mustDevice(t)
	if d.HasPending() {
		t.Fatal("pending before any interval")
	}
	if err := d.Snoop(100, 0x1100); err != nil {
		t.Fatal(err)
	}
	if err := d.SnoopBurst(500, 0x1200, 9); err != nil {
		t.Fatal(err)
	}
	// Crossing the boundary (t=1000) completes the first MHM.
	if err := d.Snoop(1001, 0x1300); err != nil {
		t.Fatal(err)
	}
	if !d.HasPending() {
		t.Fatal("no pending MHM after boundary")
	}
	m, err := d.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if m.Start != 0 || m.End != 1000 {
		t.Errorf("interval = [%d, %d), want [0, 1000)", m.Start, m.End)
	}
	if m.Counts[1] != 1 || m.Counts[2] != 9 {
		t.Errorf("counts = %v", m.Counts[:4])
	}
	if m.Total() != 10 {
		t.Errorf("Total = %d", m.Total())
	}
	// The post-boundary snoop belongs to the second interval.
	if err := d.Tick(2000); err != nil {
		t.Fatal(err)
	}
	m2, err := d.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if m2.Start != 1000 || m2.End != 2000 || m2.Counts[3] != 1 {
		t.Errorf("second MHM = [%d,%d) counts[3]=%d", m2.Start, m2.End, m2.Counts[3])
	}
}

func TestQuietIntervalsViaTick(t *testing.T) {
	d := mustDevice(t)
	// Jump across 3 boundaries with no bus traffic: boundaries still
	// fire; hardware keeps only the most recent completed MHM (two
	// dropped as overruns because nobody collected).
	if err := d.Tick(3500); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Intervals != 3 {
		t.Errorf("Intervals = %d, want 3", st.Intervals)
	}
	if st.Overruns != 2 {
		t.Errorf("Overruns = %d, want 2", st.Overruns)
	}
	m, err := d.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if m.Start != 2000 || m.End != 3000 || m.Total() != 0 {
		t.Errorf("kept MHM = [%d,%d) total=%d", m.Start, m.End, m.Total())
	}
}

func TestDoubleBufferingContinuity(t *testing.T) {
	// Recording continues in the second buffer while the first awaits
	// analysis: accesses after the boundary land in the next MHM even
	// before Collect.
	d := mustDevice(t)
	if err := d.Snoop(100, 0x1000); err != nil {
		t.Fatal(err)
	}
	if err := d.Snoop(1100, 0x1F00); err != nil { // into interval 2
		t.Fatal(err)
	}
	if !d.HasPending() {
		t.Fatal("interval 1 not pending")
	}
	first, err := d.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if first.Counts[0] != 1 || first.Counts[15] != 0 {
		t.Errorf("first interval counts wrong: %v", first.Counts)
	}
	if err := d.Tick(2000); err != nil {
		t.Fatal(err)
	}
	second, err := d.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if second.Counts[15] != 1 || second.Counts[0] != 0 {
		t.Errorf("second interval counts wrong: %v", second.Counts)
	}
	if d.Stats().Overruns != 0 {
		t.Errorf("unexpected overruns: %d", d.Stats().Overruns)
	}
}

func TestCollectWithoutPending(t *testing.T) {
	d := mustDevice(t)
	if _, err := d.Collect(); !errors.Is(err, ErrNotReady) {
		t.Errorf("Collect: %v, want ErrNotReady", err)
	}
}

func TestTimeMonotonicity(t *testing.T) {
	d := mustDevice(t)
	if err := d.Snoop(500, 0x1000); err != nil {
		t.Fatal(err)
	}
	if err := d.Snoop(400, 0x1000); !errors.Is(err, ErrConfig) {
		t.Errorf("backwards snoop: %v", err)
	}
	if err := d.Tick(100); !errors.Is(err, ErrConfig) {
		t.Errorf("backwards tick: %v", err)
	}
}

func TestZeroCountBurstIgnored(t *testing.T) {
	d := mustDevice(t)
	if err := d.SnoopBurst(10, 0x1000, 0); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.Accepted != 0 || st.AcceptedAccesses != 0 {
		t.Errorf("zero burst counted: %+v", st)
	}
}

func TestReconfigureResetsState(t *testing.T) {
	d := mustDevice(t)
	if err := d.Tick(2500); err != nil {
		t.Fatal(err)
	}
	if err := d.Configure(testCfg()); err != nil {
		t.Fatal(err)
	}
	if d.HasPending() {
		t.Error("pending survived reconfigure")
	}
	if st := d.Stats(); st.Intervals != 0 || st.Snooped != 0 {
		t.Errorf("stats survived reconfigure: %+v", st)
	}
	if err := d.Tick(10); err != nil {
		t.Errorf("clock not reset: %v", err)
	}
}

func TestRunPumpsAllIntervals(t *testing.T) {
	d := mustDevice(t)
	var collected []int64
	var totals []uint64
	err := d.Run(
		func(yield func(t int64, addr uint64, count uint32) error) error {
			for i := int64(0); i < 5; i++ {
				// One burst per interval, sized i+1.
				if err := yield(i*1000+500, 0x1000, uint32(i+1)); err != nil {
					return err
				}
			}
			// Push time past the final boundary.
			return yield(5001, 0x0, 0)
		},
		func(m *heatmap.HeatMap) error {
			collected = append(collected, m.Start)
			totals = append(totals, m.Total())
			return nil
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(collected) != 5 {
		t.Fatalf("collected %d MHMs, want 5", len(collected))
	}
	for i, start := range collected {
		if start != int64(i)*1000 {
			t.Errorf("MHM %d start = %d", i, start)
		}
		if totals[i] != uint64(i+1) {
			t.Errorf("MHM %d total = %d, want %d", i, totals[i], i+1)
		}
	}
	if d.Stats().Overruns != 0 {
		t.Errorf("overruns in pumped run: %d", d.Stats().Overruns)
	}
}

func TestRunPropagatesCollectError(t *testing.T) {
	d := mustDevice(t)
	sentinel := errors.New("stop")
	err := d.Run(
		func(yield func(t int64, addr uint64, count uint32) error) error {
			return yield(1500, 0x1000, 1)
		},
		func(m *heatmap.HeatMap) error { return sentinel },
	)
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want sentinel", err)
	}
}

// TestSnoopBatchEquivalentToPerEvent pins the batched ingest contract:
// feeding a time-ordered stream through SnoopBatch with collect-at-stop
// resubmission produces the same maps and stats as per-event SnoopBurst
// with drain-after-every-event, and SnoopBatch pauses exactly at the
// event that completes an MHM.
func TestSnoopBatchEquivalentToPerEvent(t *testing.T) {
	// 3.5 intervals of traffic: boundaries inside and between batches.
	var events []trace.Access
	for i := int64(0); i < 35; i++ {
		events = append(events, trace.Access{
			Time:  i * 100, // one event per 100 µs, interval 1000 µs
			Addr:  0x1000 + uint64(i%16)*0x100,
			Count: uint32(1 + i%3),
		})
	}

	ref := mustDevice(t)
	var refMaps []*heatmap.HeatMap
	for _, a := range events {
		if err := ref.SnoopBurst(a.Time, a.Addr, a.Count); err != nil {
			t.Fatal(err)
		}
		for ref.HasPending() {
			m, err := ref.Collect()
			if err != nil {
				t.Fatal(err)
			}
			refMaps = append(refMaps, m)
		}
	}

	dev := mustDevice(t)
	var maps []*heatmap.HeatMap
	for off := 0; off < len(events); {
		c, err := dev.SnoopBatch(events[off:])
		if err != nil {
			t.Fatal(err)
		}
		if c == 0 {
			t.Fatal("SnoopBatch made no progress")
		}
		off += c
		if off < len(events) && !dev.HasPending() {
			t.Fatalf("SnoopBatch stopped at %d without a pending MHM", off)
		}
		for dev.HasPending() {
			m, err := dev.Collect()
			if err != nil {
				t.Fatal(err)
			}
			maps = append(maps, m)
		}
	}

	if len(maps) != len(refMaps) {
		t.Fatalf("batched path produced %d maps, per-event %d", len(maps), len(refMaps))
	}
	for i := range refMaps {
		d, err := maps[i].L1Distance(refMaps[i])
		if err != nil {
			t.Fatal(err)
		}
		if d != 0 {
			t.Errorf("interval %d differs between batched and per-event ingest (L1=%d)", i, d)
		}
	}
	if dev.Stats() != ref.Stats() {
		t.Errorf("stats diverge: batched %+v, per-event %+v", dev.Stats(), ref.Stats())
	}
}

// TestSnoopBatchPropagatesErrors checks the consumed-count contract on
// a malformed (time-reversed) stream.
func TestSnoopBatchPropagatesErrors(t *testing.T) {
	dev := mustDevice(t)
	events := []trace.Access{
		{Time: 100, Addr: 0x1000, Count: 1},
		{Time: 50, Addr: 0x1000, Count: 1}, // time goes backwards
		{Time: 200, Addr: 0x1000, Count: 1},
	}
	n, err := dev.SnoopBatch(events)
	if err == nil {
		t.Fatal("time-reversed batch accepted")
	}
	if n != 1 {
		t.Fatalf("consumed %d events before the error, want 1", n)
	}
}

func TestCollectSparseMatchesCollect(t *testing.T) {
	// Two identically-driven devices: one collected densely, one
	// sparsely. The sparse collection must densify to the same MHM and
	// leave the device in the same state (buffer recycled, pending
	// cleared).
	dd := mustDevice(t)
	ds := mustDevice(t)
	events := []trace.Access{
		{Time: 100, Addr: 0x1000, Count: 3},
		{Time: 200, Addr: 0x1F00, Count: 1},
		{Time: 950, Addr: 0x1200, Count: 7},
		{Time: 1100, Addr: 0x1000, Count: 2}, // crosses into interval 2
	}
	for _, a := range events {
		if err := dd.SnoopBurst(a.Time, a.Addr, a.Count); err != nil {
			t.Fatal(err)
		}
		if err := ds.SnoopBurst(a.Time, a.Addr, a.Count); err != nil {
			t.Fatal(err)
		}
	}
	dense, err := dd.Collect()
	if err != nil {
		t.Fatal(err)
	}
	var sp heatmap.Sparse
	if err := ds.CollectSparse(&sp); err != nil {
		t.Fatal(err)
	}
	if err := sp.Validate(); err != nil {
		t.Fatalf("CollectSparse produced invalid runs: %v", err)
	}
	back := sp.Dense(nil)
	if back.Def != dense.Def || back.Start != dense.Start || back.End != dense.End {
		t.Errorf("sparse header %+v [%d,%d], dense %+v [%d,%d]",
			back.Def, back.Start, back.End, dense.Def, dense.Start, dense.End)
	}
	for i := range dense.Counts {
		if back.Counts[i] != dense.Counts[i] {
			t.Fatalf("cell %d: sparse %d, dense %d", i, back.Counts[i], dense.Counts[i])
		}
	}
	if ds.HasPending() {
		t.Error("pending not cleared after CollectSparse")
	}
	// Device keeps double-buffering: next interval still collects.
	if err := ds.Tick(2000); err != nil {
		t.Fatal(err)
	}
	if err := ds.CollectSparse(&sp); err != nil {
		t.Fatal(err)
	}
	if got := sp.Dense(nil).Counts[0]; got != 2 {
		t.Errorf("interval 2 cell 0 = %d, want 2", got)
	}
}

func TestCollectSparseErrors(t *testing.T) {
	var sp heatmap.Sparse
	if err := New().CollectSparse(&sp); !errors.Is(err, ErrNotConfigured) {
		t.Errorf("unconfigured CollectSparse: %v, want ErrNotConfigured", err)
	}
	d := mustDevice(t)
	if err := d.CollectSparse(&sp); !errors.Is(err, ErrNotReady) {
		t.Errorf("CollectSparse without pending: %v, want ErrNotReady", err)
	}
}

func TestCollectSparseAllocationFree(t *testing.T) {
	d := mustDevice(t)
	var sp heatmap.Sparse
	// Warm the backing arrays once.
	if err := d.Snoop(100, 0x1000); err != nil {
		t.Fatal(err)
	}
	if err := d.Tick(1000); err != nil {
		t.Fatal(err)
	}
	if err := d.CollectSparse(&sp); err != nil {
		t.Fatal(err)
	}
	clock := int64(1000)
	allocs := testing.AllocsPerRun(50, func() {
		if err := d.Snoop(clock+100, 0x1000); err != nil {
			t.Fatal(err)
		}
		clock += 1000
		if err := d.Tick(clock); err != nil {
			t.Fatal(err)
		}
		if err := d.CollectSparse(&sp); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm CollectSparse cycle allocates %.1f times, want 0", allocs)
	}
}
