package memometer

import (
	"math/rand"
	"testing"

	"github.com/memheatmap/mhm/internal/heatmap"
)

// collectOne drives one interval's worth of the given accesses through
// a freshly configured device and returns the collected MHM plus the
// device stats.
func collectOne(t *testing.T, region heatmap.Def, accesses []uint64) (*heatmap.HeatMap, Stats) {
	t.Helper()
	d := New()
	if err := d.Configure(Config{Region: region, IntervalMicros: 1000}); err != nil {
		t.Fatal(err)
	}
	for i, a := range accesses {
		if err := d.Snoop(int64(i%900), a); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Tick(1000); err != nil {
		t.Fatal(err)
	}
	m, err := d.Collect()
	if err != nil {
		t.Fatal(err)
	}
	return m, d.Stats()
}

// TestCollectSparseRouteBitIdentical pins the satellite contract: the
// sparse Collect route and the dense clone produce bit-identical
// snapshots. A low-occupancy interval (sparse route) and a saturated
// one (dense route) are both checked against a reference accumulation.
func TestCollectSparseRouteBitIdentical(t *testing.T) {
	region := heatmap.Def{AddrBase: 0x1000, Size: 256 * 64, Gran: 64} // 256 cells
	rng := rand.New(rand.NewSource(91))

	// Sparse interval: ~12 occupied cells out of 256 (< 25%).
	var sparseAcc []uint64
	for i := 0; i < 300; i++ {
		cell := uint64(rng.Intn(12)) * 64
		sparseAcc = append(sparseAcc, 0x1000+cell+uint64(rng.Intn(64)))
	}
	// Dense interval: every cell touched (≥ 25%).
	var denseAcc []uint64
	for c := 0; c < 256; c++ {
		denseAcc = append(denseAcc, 0x1000+uint64(c)*64)
	}

	for _, tc := range []struct {
		name       string
		accesses   []uint64
		wantSparse uint64
	}{
		{"sparse-route", sparseAcc, 1},
		{"dense-route", denseAcc, 0},
	} {
		m, stats := collectOne(t, region, tc.accesses)
		if stats.SparseCollects != tc.wantSparse {
			t.Fatalf("%s: SparseCollects = %d, want %d", tc.name, stats.SparseCollects, tc.wantSparse)
		}
		// Reference accumulation, independent of the device.
		ref, err := heatmap.New(region)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range tc.accesses {
			ref.Record(a, 1)
		}
		if m.Def != region {
			t.Fatalf("%s: snapshot def %+v", tc.name, m.Def)
		}
		if m.Start != 0 || m.End != 1000 {
			t.Fatalf("%s: interval [%d,%d], want [0,1000]", tc.name, m.Start, m.End)
		}
		for i, c := range ref.Counts {
			if m.Counts[i] != c {
				t.Fatalf("%s: cell %d = %d, want %d", tc.name, i, m.Counts[i], c)
			}
		}
	}
}

// TestCollectSparseRouteAcrossIntervals checks occupancy tracking
// resets per interval: a sparse interval after a dense one still takes
// the sparse route, and repeated collects reuse the scratch without
// corrupting snapshots (each returned map is caller-owned).
func TestCollectSparseRouteAcrossIntervals(t *testing.T) {
	region := heatmap.Def{AddrBase: 0, Size: 128 * 64, Gran: 64} // 128 cells
	d := New()
	if err := d.Configure(Config{Region: region, IntervalMicros: 100}); err != nil {
		t.Fatal(err)
	}
	var snaps []*heatmap.HeatMap
	for interval := 0; interval < 4; interval++ {
		base := int64(interval * 100)
		if interval%2 == 0 {
			// Dense: touch every cell.
			for c := 0; c < 128; c++ {
				if err := d.Snoop(base+int64(c*90/128), uint64(c)*64); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			// Sparse: cells 0-3 only, counts marking the interval.
			for i := 0; i < 8; i++ {
				if err := d.Snoop(base+int64(i), uint64(i%4)*64); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := d.Tick(base + 100); err != nil {
			t.Fatal(err)
		}
		m, err := d.Collect()
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, m)
	}
	if got := d.Stats().SparseCollects; got != 2 {
		t.Fatalf("SparseCollects = %d, want 2", got)
	}
	// Earlier snapshots must be untouched by later scratch reuse.
	for _, interval := range []int{1, 3} {
		m := snaps[interval]
		for c := 0; c < 4; c++ {
			if m.Counts[c] != 2 {
				t.Fatalf("interval %d cell %d = %d, want 2", interval, c, m.Counts[c])
			}
		}
		for c := 4; c < 128; c++ {
			if m.Counts[c] != 0 {
				t.Fatalf("interval %d cell %d = %d, want 0", interval, c, m.Counts[c])
			}
		}
	}
	for _, interval := range []int{0, 2} {
		for c, v := range snaps[interval].Counts {
			if v != 1 {
				t.Fatalf("interval %d cell %d = %d, want 1", interval, c, v)
			}
		}
	}
}
