package memometer

import (
	"testing"

	"github.com/memheatmap/mhm/internal/obs"
)

// The record path is annotated //mhm:hotpath (enforced by mhmlint); this
// test pins the runtime side of the same contract: steady-state snooping
// must not allocate, with or without metrics attached.
func TestRecordPathDoesNotAllocate(t *testing.T) {
	run := func(name string, d *Device) {
		var now int64
		if n := testing.AllocsPerRun(1000, func() {
			now++
			if err := d.Snoop(now, 0x1000+uint64(now)%0x1000); err != nil {
				t.Fatalf("Snoop: %v", err)
			}
		}); n != 0 {
			t.Errorf("%s: Snoop allocates %v per op", name, n)
		}
		if n := testing.AllocsPerRun(1000, func() {
			now++
			if err := d.SnoopBurst(now, 0x1000, 4); err != nil {
				t.Fatalf("SnoopBurst: %v", err)
			}
		}); n != 0 {
			t.Errorf("%s: SnoopBurst allocates %v per op", name, n)
		}
		if n := testing.AllocsPerRun(1000, func() {
			now++
			if err := d.Tick(now); err != nil {
				t.Fatalf("Tick: %v", err)
			}
		}); n != 0 {
			t.Errorf("%s: Tick allocates %v per op", name, n)
		}
	}

	d := mustDevice(t)
	run("bare", d)

	dm := mustDevice(t)
	dm.SetMetrics(obs.NewRegistry())
	run("with metrics", dm)

	// Interval boundaries swap the double buffer in place; crossing one
	// per call must stay allocation-free too (overruns included, since
	// nothing collects the pending MHM).
	db := mustDevice(t)
	step := testCfg().IntervalMicros
	var now int64
	if n := testing.AllocsPerRun(1000, func() {
		now += step
		if err := db.Snoop(now, 0x1234); err != nil {
			t.Fatalf("Snoop: %v", err)
		}
	}); n != 0 {
		t.Errorf("boundary crossing allocates %v per op", n)
	}
}
