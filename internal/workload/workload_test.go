package workload

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/memheatmap/mhm/internal/kernelmap"
	"github.com/memheatmap/mhm/internal/rtos"
)

func testImage(t *testing.T) *kernelmap.Image {
	t.Helper()
	img, err := kernelmap.NewImage(1)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestPaperTaskSetTimings(t *testing.T) {
	img := testImage(t)
	tasks, err := PaperTaskSet(img)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][2]int64{ // name -> {exec µs, period µs} from §5.1
		"FFT":       {2000, 10000},
		"bitcount":  {3000, 20000},
		"basicmath": {9000, 50000},
		"sha":       {25000, 100000},
	}
	if len(tasks) != len(want) {
		t.Fatalf("task count = %d", len(tasks))
	}
	for _, task := range tasks {
		w, ok := want[task.Name]
		if !ok {
			t.Errorf("unexpected task %s", task.Name)
			continue
		}
		if task.WCET != w[0] || task.Period != w[1] {
			t.Errorf("%s: wcet/period = %d/%d, want %d/%d", task.Name, task.WCET, task.Period, w[0], w[1])
		}
	}
	// Utilization: 78% as stated in the paper's footnote.
	if u := rtos.Utilization(tasks); math.Abs(u-0.78) > 1e-9 {
		t.Errorf("utilization = %g, want 0.78", u)
	}
}

func TestJobSegmentTimesMatchExecTime(t *testing.T) {
	img := testImage(t)
	for _, spec := range []AppSpec{FFTSpec(), BitcountSpec(), BasicmathSpec(), ShaSpec(), QsortSpec()} {
		task, err := BuildTask(img, spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		rng := rand.New(rand.NewSource(9))
		for job := int64(0); job < 20; job++ {
			segs := task.Behavior.NewJob(job, rng)
			var total int64
			for _, s := range segs {
				total += s.Duration
			}
			// Within jitter + drift tolerance of the nominal exec time.
			rel := math.Abs(float64(total-spec.ExecTime)) / float64(spec.ExecTime)
			if rel > 0.05 {
				t.Errorf("%s job %d: duration %d vs exec %d (%.1f%%)", spec.Name, job, total, spec.ExecTime, 100*rel)
			}
		}
	}
}

func TestJobsJitterButStayDeterministic(t *testing.T) {
	img := testImage(t)
	task, err := BuildTask(img, FFTSpec())
	if err != nil {
		t.Fatal(err)
	}
	r1 := rand.New(rand.NewSource(5))
	r2 := rand.New(rand.NewSource(5))
	sawDifferent := false
	var prev int64 = -1
	for job := int64(0); job < 10; job++ {
		a := task.Behavior.NewJob(job, r1)
		b := task.Behavior.NewJob(job, r2)
		if len(a) != len(b) {
			t.Fatal("same seed produced different segment counts")
		}
		var ta int64
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("same seed produced different segments")
			}
			ta += a[i].Duration
		}
		if prev >= 0 && ta != prev {
			sawDifferent = true
		}
		prev = ta
	}
	if !sawDifferent {
		t.Error("no jitter across jobs; MHM training needs execution variation")
	}
}

func TestShaIsReadHeavy(t *testing.T) {
	// The rootkit scenario depends on sha being the read-dominated task.
	img := testImage(t)
	countReads := func(spec AppSpec) int {
		task, err := BuildTask(img, spec)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		n := 0
		for _, s := range task.Behavior.NewJob(0, rng) {
			if s.Kind == rtos.Syscall && s.Service == kernelmap.SvcRead {
				n += s.Invocations
			}
		}
		return n
	}
	sha := countReads(ShaSpec())
	for _, other := range []AppSpec{FFTSpec(), BitcountSpec(), BasicmathSpec()} {
		if o := countReads(other); o >= sha {
			t.Errorf("%s has %d reads >= sha's %d", other.Name, o, sha)
		}
	}
	if sha < 20 {
		t.Errorf("sha reads = %d; expected many (paper: 'uses many read system calls')", sha)
	}
}

func TestBuildTaskValidation(t *testing.T) {
	img := testImage(t)
	cases := []struct {
		name string
		spec AppSpec
	}{
		{"empty name", AppSpec{Period: 10, ExecTime: 10, Script: []ScriptStep{Compute(10)}}},
		{"zero period", AppSpec{Name: "x", ExecTime: 10, Script: []ScriptStep{Compute(10)}}},
		{"zero exec", AppSpec{Name: "x", Period: 10, Script: []ScriptStep{Compute(10)}}},
		{"empty script", AppSpec{Name: "x", Period: 10, ExecTime: 10}},
		{"zero compute", AppSpec{Name: "x", Period: 10, ExecTime: 10, Script: []ScriptStep{Compute(0)}}},
		{"zero count", AppSpec{Name: "x", Period: 10, ExecTime: 10, Script: []ScriptStep{Call(kernelmap.SvcRead, 0)}}},
		{"bad service", AppSpec{Name: "x", Period: 10, ExecTime: 18, Script: []ScriptStep{Call("nope", 1)}}},
		{"drift too large", AppSpec{Name: "x", Period: 10000, ExecTime: 5000, Script: []ScriptStep{Compute(1000)}}},
	}
	for _, c := range cases {
		if _, err := BuildTask(img, c.spec); err == nil {
			t.Errorf("%s: accepted", c.name)
		} else if !errors.Is(err, ErrSpec) && !errors.Is(err, kernelmap.ErrUnknownService) {
			t.Errorf("%s: unexpected error class: %v", c.name, err)
		}
	}
}

func TestScriptStepConstructors(t *testing.T) {
	c := Compute(500)
	if c.Kind != StepCompute || c.Micros != 500 {
		t.Errorf("Compute = %+v", c)
	}
	s := Call(kernelmap.SvcRead, 3)
	if s.Kind != StepSyscall || s.Service != kernelmap.SvcRead || s.Count != 3 {
		t.Errorf("Call = %+v", s)
	}
}

func TestQsortSpecShape(t *testing.T) {
	spec := QsortSpec()
	if spec.Period != 30000 || spec.ExecTime != 6000 {
		t.Errorf("qsort timing = %d/%d, want 6000/30000 (paper §5.3)", spec.ExecTime, spec.Period)
	}
}

func TestAlternateTaskSet(t *testing.T) {
	img := testImage(t)
	tasks, err := AlternateTaskSet(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 4 {
		t.Fatalf("tasks = %d", len(tasks))
	}
	u := rtos.Utilization(tasks)
	if math.Abs(u-0.70) > 1e-9 {
		t.Errorf("alternate utilization = %g, want 0.70", u)
	}
	names := map[string]bool{}
	for _, task := range tasks {
		names[task.Name] = true
	}
	for _, want := range []string{"crc32", "dijkstra", "susan", "patricia"} {
		if !names[want] {
			t.Errorf("missing task %s", want)
		}
	}
}

func TestAlternateSpecsBalanceBudgets(t *testing.T) {
	img := testImage(t)
	for _, spec := range []AppSpec{CRC32Spec(), DijkstraSpec(), SusanSpec(), PatriciaSpec()} {
		task, err := BuildTask(img, spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		rng := rand.New(rand.NewSource(3))
		segs := task.Behavior.NewJob(0, rng)
		var total int64
		for _, s := range segs {
			total += s.Duration
		}
		rel := math.Abs(float64(total-spec.ExecTime)) / float64(spec.ExecTime)
		if rel > 0.05 {
			t.Errorf("%s: job duration %d vs exec %d", spec.Name, total, spec.ExecTime)
		}
	}
}
