// Package workload models the benchmark applications of the paper's
// evaluation as periodic real-time tasks: each job is a script of
// user-space compute segments interleaved with kernel service
// invocations. The kernel services — not the user computation — are what
// the Memometer observes, so a task's observable signature is its
// syscall mix and timing, which these models reproduce.
package workload

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/memheatmap/mhm/internal/kernelmap"
	"github.com/memheatmap/mhm/internal/rtos"
)

// ErrSpec wraps invalid application specifications.
var ErrSpec = errors.New("workload: invalid specification")

// JitterFrac is the relative execution-time jitter applied to compute
// segments (±2%), modeling cache and input variation of real jobs.
const JitterFrac = 0.02

// AppSpec describes a periodic application.
type AppSpec struct {
	Name string
	// Period and ExecTime in microseconds (the paper's table is in ms).
	Period   int64
	ExecTime int64
	// Script is the job body; its syscall time plus compute time should
	// equal ExecTime (BuildTask validates this).
	Script []ScriptStep
	// Seed isolates the app's jitter stream.
	Seed int64
}

// StepKind says what a script step does.
type StepKind int

const (
	// StepCompute burns user-space CPU time.
	StepCompute StepKind = iota
	// StepSyscall invokes a kernel service N times back to back.
	StepSyscall
)

// ScriptStep is one phase of a job.
type ScriptStep struct {
	Kind StepKind
	// Micros is the compute duration for StepCompute.
	Micros int64
	// Service and Count describe StepSyscall.
	Service string
	Count   int
}

// Compute returns a compute step.
func Compute(micros int64) ScriptStep {
	return ScriptStep{Kind: StepCompute, Micros: micros}
}

// Call returns a syscall step.
func Call(service string, count int) ScriptStep {
	return ScriptStep{Kind: StepSyscall, Service: service, Count: count}
}

// BuildTask converts an AppSpec into an rtos.Task whose jobs follow the
// script. Kernel time per syscall comes from the image's service
// catalog; compute time receives ±2% jitter per job.
func BuildTask(img *kernelmap.Image, spec AppSpec) (*rtos.Task, error) {
	if spec.Name == "" || spec.Period <= 0 || spec.ExecTime <= 0 {
		return nil, fmt.Errorf("workload: app %q period=%d exec=%d: %w",
			spec.Name, spec.Period, spec.ExecTime, ErrSpec)
	}
	if len(spec.Script) == 0 {
		return nil, fmt.Errorf("workload: app %q has empty script: %w", spec.Name, ErrSpec)
	}
	// Resolve services once and check the time budget.
	var scriptTime int64
	type resolved struct {
		step ScriptStep
		svc  *kernelmap.Service
	}
	steps := make([]resolved, len(spec.Script))
	for i, st := range spec.Script {
		switch st.Kind {
		case StepCompute:
			if st.Micros <= 0 {
				return nil, fmt.Errorf("workload: app %q step %d: non-positive compute: %w", spec.Name, i, ErrSpec)
			}
			scriptTime += st.Micros
			steps[i] = resolved{step: st}
		case StepSyscall:
			if st.Count <= 0 {
				return nil, fmt.Errorf("workload: app %q step %d: non-positive count: %w", spec.Name, i, ErrSpec)
			}
			svc, err := img.Service(st.Service)
			if err != nil {
				return nil, fmt.Errorf("workload: app %q step %d: %w", spec.Name, i, err)
			}
			scriptTime += svc.KernelTime * int64(st.Count)
			steps[i] = resolved{step: st, svc: svc}
		default:
			return nil, fmt.Errorf("workload: app %q step %d: unknown kind %d: %w", spec.Name, i, st.Kind, ErrSpec)
		}
	}
	// The script must fill the spec's execution time within 10%; large
	// drift means the model no longer matches the paper's table.
	drift := float64(scriptTime-spec.ExecTime) / float64(spec.ExecTime)
	if drift > 0.10 || drift < -0.10 {
		return nil, fmt.Errorf("workload: app %q script time %d vs exec time %d (drift %.1f%%): %w",
			spec.Name, scriptTime, spec.ExecTime, 100*drift, ErrSpec)
	}

	behavior := rtos.BehaviorFunc(func(jobIdx int64, rng *rand.Rand) []rtos.Segment {
		segs := make([]rtos.Segment, 0, len(steps))
		for _, r := range steps {
			switch r.step.Kind {
			case StepCompute:
				d := r.step.Micros
				j := 1 + JitterFrac*(2*rng.Float64()-1)
				d = int64(float64(d) * j)
				if d < 1 {
					d = 1
				}
				segs = append(segs, rtos.Segment{Kind: rtos.Compute, Duration: d})
			case StepSyscall:
				segs = append(segs, rtos.Segment{
					Kind:        rtos.Syscall,
					Duration:    r.svc.KernelTime * int64(r.step.Count),
					Service:     r.step.Service,
					Invocations: r.step.Count,
				})
			}
		}
		return segs
	})

	return &rtos.Task{
		Name:     spec.Name,
		Period:   spec.Period,
		WCET:     spec.ExecTime,
		Behavior: behavior,
		Seed:     spec.Seed,
	}, nil
}

// The paper's §5.1 task set (execution time / period):
//
//	FFT        2 ms / 10 ms   (telecomm)
//	bitcount   3 ms / 20 ms   (automotive)
//	basicmath  9 ms / 50 ms   (automotive)
//	sha       25 ms /100 ms   (security)
//
// plus qsort (6 ms / 30 ms) used by the application-addition scenario.
// Scripts are constructed so syscall kernel time + compute time equals
// the paper's execution time.

// FFTSpec returns the FFT application model: telecomm data in/out with a
// compute core.
func FFTSpec() AppSpec {
	// Syscall time: 2 reads (36) + 1 write (16) + 3 entries (6) = 58 µs.
	return AppSpec{
		Name: "FFT", Period: 10000, ExecTime: 2000, Seed: 101,
		Script: []ScriptStep{
			Call(kernelmap.SvcSyscallEntry, 3),
			Call(kernelmap.SvcRead, 2),
			Compute(1926),
			Call(kernelmap.SvcWrite, 1),
		},
	}
}

// BitcountSpec returns the bitcount model: compute-dominated with light
// I/O — the host the shellcode scenario infects.
func BitcountSpec() AppSpec {
	// Syscall time: 1 read (18) + 1 write (16) + 2 entries (4) = 38 µs.
	return AppSpec{
		Name: "bitcount", Period: 20000, ExecTime: 3000, Seed: 102,
		Script: []ScriptStep{
			Call(kernelmap.SvcSyscallEntry, 2),
			Call(kernelmap.SvcRead, 1),
			Compute(2946),
			Call(kernelmap.SvcWrite, 1),
		},
	}
}

// BasicmathSpec returns the basicmath model: long compute with periodic
// result writes.
func BasicmathSpec() AppSpec {
	// Syscall time: 4 writes (64) + 4 entries (8) = 72 µs.
	return AppSpec{
		Name: "basicmath", Period: 50000, ExecTime: 9000, Seed: 103,
		Script: []ScriptStep{
			Compute(2232),
			Call(kernelmap.SvcWrite, 1),
			Call(kernelmap.SvcSyscallEntry, 1),
			Compute(2232),
			Call(kernelmap.SvcWrite, 1),
			Call(kernelmap.SvcSyscallEntry, 1),
			Compute(2232),
			Call(kernelmap.SvcWrite, 1),
			Call(kernelmap.SvcSyscallEntry, 1),
			Compute(2232),
			Call(kernelmap.SvcWrite, 1),
			Call(kernelmap.SvcSyscallEntry, 1),
		},
	}
}

// ShaSpec returns the sha model: read-heavy hashing, the task whose
// timing the rootkit's read hijack perturbs (paper §5.3, scenario 3).
func ShaSpec() AppSpec {
	// 40 reads in 8 batches of 5: 40*18 = 720, 8 entries*2 = 16,
	// 1 open 30 + 1 close 10 + 2 writes 32 + 3 entries 6.
	// Syscall total = 720 + 16 + 30 + 10 + 32 + 6 = 814 µs.
	steps := []ScriptStep{
		Call(kernelmap.SvcSyscallEntry, 1),
		Call(kernelmap.SvcOpen, 1),
	}
	for i := 0; i < 8; i++ {
		steps = append(steps,
			Call(kernelmap.SvcSyscallEntry, 1),
			Call(kernelmap.SvcRead, 5),
			Compute(3023),
		)
	}
	steps = append(steps,
		Call(kernelmap.SvcSyscallEntry, 2),
		Call(kernelmap.SvcWrite, 2),
		Call(kernelmap.SvcClose, 1),
	)
	return AppSpec{Name: "sha", Period: 100000, ExecTime: 25000, Seed: 104, Script: steps}
}

// QsortSpec returns the qsort model used by the application-addition
// scenario (exec 6 ms, period 30 ms).
func QsortSpec() AppSpec {
	// Syscall time: 4 reads (72) + 2 writes (32) + 1 open (30) +
	// 1 close (10) + 4 entries (8) = 152 µs.
	return AppSpec{
		Name: "qsort", Period: 30000, ExecTime: 6000, Seed: 105,
		Script: []ScriptStep{
			Call(kernelmap.SvcSyscallEntry, 2),
			Call(kernelmap.SvcOpen, 1),
			Call(kernelmap.SvcRead, 4),
			Compute(5848),
			Call(kernelmap.SvcSyscallEntry, 2),
			Call(kernelmap.SvcWrite, 2),
			Call(kernelmap.SvcClose, 1),
		},
	}
}

// PaperTaskSet builds the four-task baseline workload from §5.1.
func PaperTaskSet(img *kernelmap.Image) ([]*rtos.Task, error) {
	specs := []AppSpec{FFTSpec(), BitcountSpec(), BasicmathSpec(), ShaSpec()}
	tasks := make([]*rtos.Task, len(specs))
	for i, sp := range specs {
		t, err := BuildTask(img, sp)
		if err != nil {
			return nil, err
		}
		tasks[i] = t
	}
	return tasks, nil
}
