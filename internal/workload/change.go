// Workload-change scenarios: legitimate behaviour shifts that a
// deployed detector must ride out (or be recalibrated for). They
// implement the attack.Scenario contract structurally — Name /
// Transform / Install — but model no adversary: an application upgrade,
// a schedule phase shift after a resync, and container-style
// multi-tenant churn per the Linux-container IDS line of work. The
// scenario matrix (internal/experiments) reports their false-positive
// rates at the calibrated θ_p.
package workload

import (
	"fmt"
	"math/rand"

	"github.com/memheatmap/mhm/internal/kernelmap"
	"github.com/memheatmap/mhm/internal/rtos"
)

// AppUpgrade models a routine software update of one task: from
// SwitchAt on, every EveryJobs-th job additionally re-reads its
// configuration (open + read + close) and the compute core runs
// slightly longer — a new feature, not an attack. The kernel services
// involved are all in the clean vocabulary; only their frequency and
// timing shift mildly.
type AppUpgrade struct {
	// Task is the upgraded application (default "FFT").
	Task string
	// SwitchAt is the moment the new version takes over.
	SwitchAt int64
	// EveryJobs is the config-reload period in jobs (default 8).
	EveryJobs int64
}

// Name implements the attack.Scenario contract.
func (u *AppUpgrade) Name() string { return "app-upgrade" }

// Transform implements the attack.Scenario contract.
func (u *AppUpgrade) Transform(tasks []*rtos.Task) error {
	if u.SwitchAt <= 0 {
		return fmt.Errorf("workload: app upgrade SwitchAt=%d: %w", u.SwitchAt, ErrSpec)
	}
	if u.Task == "" {
		u.Task = "FFT"
	}
	if u.EveryJobs == 0 {
		u.EveryJobs = 8
	}
	if u.EveryJobs < 0 {
		return fmt.Errorf("workload: app upgrade EveryJobs=%d: %w", u.EveryJobs, ErrSpec)
	}
	for _, t := range tasks {
		if t.Name != u.Task {
			continue
		}
		base := t.Behavior
		period, phase, switchAt, every := t.Period, t.Phase, u.SwitchAt, u.EveryJobs
		t.Behavior = rtos.BehaviorFunc(func(idx int64, rng *rand.Rand) []rtos.Segment {
			segs := base.NewJob(idx, rng)
			if phase+idx*period < switchAt {
				return segs
			}
			out := make([]rtos.Segment, 0, len(segs)+3)
			out = append(out, segs...)
			// v2 runs its compute ~2% longer (new feature path).
			for i, seg := range out {
				if seg.Kind == rtos.Compute {
					out[i].Duration += seg.Duration / 50
				}
			}
			if idx%every == 0 {
				out = append(out,
					rtos.Segment{Kind: rtos.Syscall, Duration: 30, Service: kernelmap.SvcOpen, Invocations: 1},
					rtos.Segment{Kind: rtos.Syscall, Duration: 18, Service: kernelmap.SvcRead, Invocations: 1},
					rtos.Segment{Kind: rtos.Syscall, Duration: 10, Service: kernelmap.SvcClose, Invocations: 1},
				)
			}
			return out
		})
		return nil
	}
	return fmt.Errorf("workload: app upgrade task %q not in task set: %w", u.Task, ErrSpec)
}

// Install implements the attack.Scenario contract; the behaviour wrap
// does all the work.
func (u *AppUpgrade) Install(*rtos.Scheduler, *kernelmap.Image) error { return nil }

// PhaseShift models a schedule resynchronization — a mode change or
// clock adjustment that stops every periodic task at At and restarts it
// with a new, staggered phase. Task behaviour is bit-for-bit identical;
// only the alignment of jobs to monitoring intervals changes.
type PhaseShift struct {
	// At is the resync time.
	At int64
	// DeltaMicros staggers the restarts: task i restarts at
	// At + (i+1)·DeltaMicros (default 3000).
	DeltaMicros int64

	tasks []*rtos.Task
}

// Name implements the attack.Scenario contract.
func (p *PhaseShift) Name() string { return "phase-shift" }

// Transform implements the attack.Scenario contract: it only records
// the task set for Install.
func (p *PhaseShift) Transform(tasks []*rtos.Task) error {
	if p.At <= 0 {
		return fmt.Errorf("workload: phase shift At=%d: %w", p.At, ErrSpec)
	}
	if p.DeltaMicros == 0 {
		p.DeltaMicros = 3000
	}
	if p.DeltaMicros < 0 {
		return fmt.Errorf("workload: phase shift DeltaMicros=%d: %w", p.DeltaMicros, ErrSpec)
	}
	if len(tasks) == 0 {
		return fmt.Errorf("workload: phase shift over empty task set: %w", ErrSpec)
	}
	p.tasks = tasks
	return nil
}

// Install implements the attack.Scenario contract: each task is removed
// at At and re-added with a staggered restart.
func (p *PhaseShift) Install(sched *rtos.Scheduler, img *kernelmap.Image) error {
	if len(p.tasks) == 0 {
		return fmt.Errorf("workload: phase shift Install before Transform: %w", ErrSpec)
	}
	for i, t := range p.tasks {
		if err := sched.RemoveTaskAt(p.At, t.Name); err != nil {
			return err
		}
		restart := *t
		restart.Phase = 0
		if err := sched.AddTaskAt(p.At+int64(i+1)*p.DeltaMicros, &restart); err != nil {
			return err
		}
	}
	return nil
}

// TenantChurn models container-style multi-tenant operation: every
// PeriodMicros a new benign tenant application (drawn round-robin from
// the alternate task set) is launched — fork + execve, like any process
// start — runs for three quarters of the period, and exits. The host's
// "normal" is therefore a moving target, the central false-positive
// problem of the container IDS literature.
type TenantChurn struct {
	// StartAt is the first tenant launch.
	StartAt int64
	// PeriodMicros separates consecutive launches (default 400,000).
	PeriodMicros int64
	// Tenants is the number of launches (default 4).
	Tenants int
}

// Name implements the attack.Scenario contract.
func (c *TenantChurn) Name() string { return "tenant-churn" }

// Transform implements the attack.Scenario contract.
func (c *TenantChurn) Transform([]*rtos.Task) error {
	if c.StartAt <= 0 {
		return fmt.Errorf("workload: tenant churn StartAt=%d: %w", c.StartAt, ErrSpec)
	}
	if c.PeriodMicros == 0 {
		c.PeriodMicros = 400_000
	}
	if c.Tenants == 0 {
		c.Tenants = 4
	}
	if c.PeriodMicros <= 0 || c.Tenants < 0 {
		return fmt.Errorf("workload: tenant churn Period=%d Tenants=%d: %w",
			c.PeriodMicros, c.Tenants, ErrSpec)
	}
	return nil
}

// tenantSpecs are the small alternate-set applications cycled through
// by the churn; the heavier ones would not fit the paper task set's
// remaining utilization.
func tenantSpecs() []AppSpec { return []AppSpec{CRC32Spec(), PatriciaSpec()} }

// Install implements the attack.Scenario contract.
func (c *TenantChurn) Install(sched *rtos.Scheduler, img *kernelmap.Image) error {
	specs := tenantSpecs()
	launchSegs := []rtos.Segment{
		{Kind: rtos.Syscall, Duration: 120, Service: kernelmap.SvcFork, Invocations: 1},
		{Kind: rtos.Syscall, Duration: 200, Service: kernelmap.SvcExec, Invocations: 1},
	}
	exitSegs := []rtos.Segment{
		{Kind: rtos.Syscall, Duration: 80, Service: kernelmap.SvcExit, Invocations: 1},
	}
	for k := 0; k < c.Tenants; k++ {
		spec := specs[k%len(specs)]
		spec.Name = fmt.Sprintf("%s-t%d", spec.Name, k)
		spec.Seed += int64(1000 + k)
		task, err := BuildTask(img, spec)
		if err != nil {
			return err
		}
		launchAt := c.StartAt + int64(k)*c.PeriodMicros
		exitAt := launchAt + c.PeriodMicros*3/4
		if err := sched.SpawnOneShotAt(launchAt, spec.Name+"-launcher", launchSegs); err != nil {
			return err
		}
		if err := sched.AddTaskAt(launchAt, task); err != nil {
			return err
		}
		if err := sched.RemoveTaskAt(exitAt, task.Name); err != nil {
			return err
		}
		if err := sched.SpawnOneShotAt(exitAt, spec.Name+"-reaper", exitSegs); err != nil {
			return err
		}
	}
	return nil
}
