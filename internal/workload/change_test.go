package workload

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/memheatmap/mhm/internal/kernelmap"
	"github.com/memheatmap/mhm/internal/rtos"
)

func changeTestTasks(t *testing.T) (*kernelmap.Image, []*rtos.Task) {
	t.Helper()
	img, err := kernelmap.NewImage(1)
	if err != nil {
		t.Fatal(err)
	}
	tasks, err := PaperTaskSet(img)
	if err != nil {
		t.Fatal(err)
	}
	return img, tasks
}

func TestAppUpgradeReloadsConfigPeriodically(t *testing.T) {
	_, tasks := changeTestTasks(t)
	u := &AppUpgrade{SwitchAt: 100_000, EveryJobs: 4}
	if err := u.Transform(tasks); err != nil {
		t.Fatal(err)
	}
	var fft *rtos.Task
	for _, tk := range tasks {
		if tk.Name == "FFT" {
			fft = tk
		}
	}
	if fft == nil {
		t.Fatal("FFT not in paper task set")
	}
	countSvc := func(segs []rtos.Segment, svc string) int {
		n := 0
		for _, s := range segs {
			if s.Service == svc {
				n += s.Invocations
			}
		}
		return n
	}
	// FFT period 10 ms: idx 12 (release 120 ms ≥ SwitchAt) is a reload
	// job (12 % 4 == 0); idx 13 is not; idx 1 predates the switch.
	pre := fft.Behavior.NewJob(1, rand.New(rand.NewSource(2)))
	reload := fft.Behavior.NewJob(12, rand.New(rand.NewSource(2)))
	plain := fft.Behavior.NewJob(13, rand.New(rand.NewSource(2)))
	if n := countSvc(reload, kernelmap.SvcOpen); n < 1 {
		t.Errorf("reload job has %d opens, want ≥ 1", n)
	}
	if countSvc(plain, kernelmap.SvcOpen) != countSvc(pre, kernelmap.SvcOpen) {
		t.Errorf("non-reload post-switch job changed its open count")
	}
}

func TestAppUpgradeValidation(t *testing.T) {
	if err := (&AppUpgrade{SwitchAt: 0}).Transform(nil); !errors.Is(err, ErrSpec) {
		t.Errorf("zero SwitchAt: %v", err)
	}
	if err := (&AppUpgrade{SwitchAt: 5, EveryJobs: -1}).Transform(nil); !errors.Is(err, ErrSpec) {
		t.Errorf("negative EveryJobs: %v", err)
	}
	_, tasks := changeTestTasks(t)
	if err := (&AppUpgrade{SwitchAt: 5, Task: "nope"}).Transform(tasks); !errors.Is(err, ErrSpec) {
		t.Errorf("missing task: %v", err)
	}
}

func TestPhaseShiftValidation(t *testing.T) {
	if err := (&PhaseShift{At: 0}).Transform(nil); !errors.Is(err, ErrSpec) {
		t.Errorf("zero At: %v", err)
	}
	if err := (&PhaseShift{At: 5}).Transform(nil); !errors.Is(err, ErrSpec) {
		t.Errorf("empty task set: %v", err)
	}
	if err := (&PhaseShift{At: 5, DeltaMicros: -1}).Transform(nil); !errors.Is(err, ErrSpec) {
		t.Errorf("negative delta: %v", err)
	}
	p := &PhaseShift{At: 5}
	if err := p.Install(nil, nil); !errors.Is(err, ErrSpec) {
		t.Errorf("Install before Transform: %v", err)
	}
	_, tasks := changeTestTasks(t)
	if err := p.Transform(tasks); err != nil {
		t.Fatal(err)
	}
	if p.DeltaMicros != 3000 {
		t.Errorf("default DeltaMicros = %d, want 3000", p.DeltaMicros)
	}
}

func TestTenantChurnValidationAndDefaults(t *testing.T) {
	if err := (&TenantChurn{StartAt: 0}).Transform(nil); !errors.Is(err, ErrSpec) {
		t.Errorf("zero StartAt: %v", err)
	}
	if err := (&TenantChurn{StartAt: 5, Tenants: -1}).Transform(nil); !errors.Is(err, ErrSpec) {
		t.Errorf("negative tenants: %v", err)
	}
	c := &TenantChurn{StartAt: 5}
	if err := c.Transform(nil); err != nil {
		t.Fatal(err)
	}
	if c.PeriodMicros != 400_000 || c.Tenants != 4 {
		t.Errorf("defaults = (%d, %d), want (400000, 4)", c.PeriodMicros, c.Tenants)
	}
}
