package workload

import (
	"github.com/memheatmap/mhm/internal/kernelmap"
	"github.com/memheatmap/mhm/internal/rtos"
)

// A second MiBench-style task set, used to show the detector is not
// tuned to the paper's particular four applications: different periods,
// different kernel-service mixes (network- and mm-heavy), same
// methodology.

// CRC32Spec returns a small, high-rate telecomm checksum task
// (1 ms / 5 ms).
func CRC32Spec() AppSpec {
	// Syscalls: 2 entries (4) + 2 reads (36) = 40 µs.
	return AppSpec{
		Name: "crc32", Period: 5000, ExecTime: 1000, Seed: 201,
		Script: []ScriptStep{
			Call(kernelmap.SvcSyscallEntry, 2),
			Call(kernelmap.SvcRead, 2),
			Compute(960),
		},
	}
}

// DijkstraSpec returns a network shortest-path task (5 ms / 25 ms) with
// socket traffic.
func DijkstraSpec() AppSpec {
	// Syscalls: 2 entries (4) + open (30) + 3 reads (54) + 2 sockets
	// (70) + write (16) = 174 µs.
	return AppSpec{
		Name: "dijkstra", Period: 25000, ExecTime: 5000, Seed: 202,
		Script: []ScriptStep{
			Call(kernelmap.SvcSyscallEntry, 2),
			Call(kernelmap.SvcOpen, 1),
			Call(kernelmap.SvcRead, 3),
			Call(kernelmap.SvcSocket, 2),
			Compute(4826),
			Call(kernelmap.SvcWrite, 1),
		},
	}
}

// SusanSpec returns an image-processing task (12 ms / 60 ms) with
// memory-mapped input.
func SusanSpec() AppSpec {
	// Syscalls: 2 entries (4) + mmap (40) + 2 page faults (24) +
	// 2 reads (36) + write (16) = 120 µs.
	return AppSpec{
		Name: "susan", Period: 60000, ExecTime: 12000, Seed: 203,
		Script: []ScriptStep{
			Call(kernelmap.SvcSyscallEntry, 2),
			Call(kernelmap.SvcMmap, 1),
			Call(kernelmap.SvcPageFault, 2),
			Call(kernelmap.SvcRead, 2),
			Compute(11880),
			Call(kernelmap.SvcWrite, 1),
		},
	}
}

// PatriciaSpec returns a routing-table task (4 ms / 40 ms) mixing
// network and pipe IPC.
func PatriciaSpec() AppSpec {
	// Syscalls: 2 entries (4) + 2 sockets (70) + pipe (22) + 2 reads
	// (36) + write (16) = 148 µs.
	return AppSpec{
		Name: "patricia", Period: 40000, ExecTime: 4000, Seed: 204,
		Script: []ScriptStep{
			Call(kernelmap.SvcSyscallEntry, 2),
			Call(kernelmap.SvcSocket, 2),
			Call(kernelmap.SvcPipe, 1),
			Call(kernelmap.SvcRead, 2),
			Compute(3852),
			Call(kernelmap.SvcWrite, 1),
		},
	}
}

// AlternateTaskSet builds the second workload (utilization 0.70, hyper-
// period 600 ms).
func AlternateTaskSet(img *kernelmap.Image) ([]*rtos.Task, error) {
	specs := []AppSpec{CRC32Spec(), DijkstraSpec(), SusanSpec(), PatriciaSpec()}
	tasks := make([]*rtos.Task, len(specs))
	for i, sp := range specs {
		t, err := BuildTask(img, sp)
		if err != nil {
			return nil, err
		}
		tasks[i] = t
	}
	return tasks, nil
}
