// NEON micro-kernel for the blocked EM forward substitution. As in
// internal/score, the Go arm64 assembler has no mnemonics for the
// unfused two-double vector FMUL/FSUB, so those are WORD-encoded
// (encodings verified against `go tool objdump`). FMLS is
// deliberately not used: fusing the multiply-subtract would change
// rounding and break the bit-identity contract detorder enforces.

#include "textflag.h"

// func fsubPacked8NEON(row, packed []float64, out *[8]float64)
TEXT ·fsubPacked8NEON(SB), NOSPLIT, $0-56
	MOVD row_base+0(FP), R0
	MOVD row_len+8(FP), R1
	MOVD packed_base+24(FP), R2
	MOVD out+48(FP), R3

	// Running lane accumulators: V0 = lanes 0,1 ... V3 = lanes 6,7.
	VLD1 (R3), [V0.D2, V1.D2, V2.D2, V3.D2]

	CBZ R1, done

loop:
	// Broadcast row[i] into both halves of V8.
	FMOVD (R0), F8
	VDUP  V8.D[0], V8.D2

	VLD1.P 64(R2), [V9.D2, V10.D2, V11.D2, V12.D2]
	WORD   $0x6E68DD29 // FMUL V9.2D, V9.2D, V8.2D
	WORD   $0x4EE9D400 // FSUB V0.2D, V0.2D, V9.2D
	WORD   $0x6E68DD4A // FMUL V10.2D, V10.2D, V8.2D
	WORD   $0x4EEAD421 // FSUB V1.2D, V1.2D, V10.2D
	WORD   $0x6E68DD6B // FMUL V11.2D, V11.2D, V8.2D
	WORD   $0x4EEBD442 // FSUB V2.2D, V2.2D, V11.2D
	WORD   $0x6E68DD8C // FMUL V12.2D, V12.2D, V8.2D
	WORD   $0x4EECD463 // FSUB V3.2D, V3.2D, V12.2D

	ADD  $8, R0
	SUB  $1, R1
	CBNZ R1, loop

done:
	VST1 [V0.D2, V1.D2, V2.D2, V3.D2], (R3)
	RET
