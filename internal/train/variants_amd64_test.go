package train

import "github.com/memheatmap/mhm/internal/cpufeat"

// fsubVariant names one dispatchable forward-substitution kernel.
type fsubVariant struct {
	name string
	fn   func(row, packed []float64, out *[8]float64)
}

// fsubVariants lists every fsub kernel this amd64 host can execute.
func fsubVariants() []fsubVariant {
	vs := []fsubVariant{
		{name: "go", fn: fsubPacked8Ref},
		{name: "sse2", fn: fsubPacked8SSE2},
	}
	if cpufeat.X86.HasAVX2 {
		vs = append(vs, fsubVariant{name: "avx2", fn: fsubPacked8AVX2})
	}
	return vs
}
