// Deterministic work partitioning: the chunk grid is a pure function of
// the problem size, never of the worker count, so state keyed by chunk
// index can be reduced in ascending order with the same result on one
// goroutine or many.
package train

import (
	"sync"
	"sync/atomic"
)

// chunkCount returns the number of fixed-size chunks covering [0, n).
func chunkCount(n, chunk int) int {
	return (n + chunk - 1) / chunk
}

// ChunkCount is the exported form of the grid arithmetic, for callers
// sizing per-chunk reduction state to match Chunks.
func ChunkCount(n, chunk int) int {
	return chunkCount(n, chunk)
}

// Chunks invokes fn(lo, hi, idx) once for every fixed-size chunk of
// [0, n), on up to workers goroutines. fn must confine its writes to
// chunk-private state (indexable by idx); under that contract results
// are identical for every worker count, and the caller reduces
// per-chunk partials in ascending idx.
func Chunks(n, chunk, workers int, fn func(lo, hi, idx int)) {
	chunksWorker(chunkCount(n, chunk), workers, func(idx, _ int) {
		lo := idx * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		fn(lo, hi, idx)
	})
}

// chunksWorker dispatches chunk indices [0, nChunks) to up to workers
// goroutines, passing each invocation the worker's stable id for
// per-worker scratch. workers <= 1 runs inline.
func chunksWorker(nChunks, workers int, fn func(idx, worker int)) {
	if workers > nChunks {
		workers = nChunks
	}
	if workers <= 1 {
		for i := 0; i < nChunks; i++ {
			fn(i, 0)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= nChunks {
					return
				}
				fn(i, w)
			}
		}(w)
	}
	wg.Wait()
}
