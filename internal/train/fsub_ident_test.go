package train

import (
	"math"
	"testing"
)

// withFsub runs f with the forward-substitution dispatch temporarily
// rebound, restoring the init-time binding afterwards. Tests using it
// must not run in parallel.
func withFsub(t *testing.T, k func(row, packed []float64, out *[8]float64), f func()) {
	t.Helper()
	old := fsubPacked8
	fsubPacked8 = k
	defer func() { fsubPacked8 = old }()
	f()
}

// TestFsubKernelsBitIdentical compares every host fsub kernel against
// the portable reference on the raw kernel contract.
func TestFsubKernelsBitIdentical(t *testing.T) {
	for _, kv := range fsubVariants() {
		for _, rows := range []int{0, 1, 3, 8, 17, 64} {
			row := make([]float64, rows)
			packed := make([]float64, rows*8)
			for i := range row {
				row[i] = float64(i%7) - 2.5
			}
			for i := range packed {
				packed[i] = float64((i*37)%11) * 0.25
			}
			var got, want [8]float64
			for lane := range got {
				got[lane] = float64(lane) - 3.5
				want[lane] = got[lane]
			}
			kv.fn(row, packed, &got)
			fsubPacked8Ref(row, packed, &want)
			for lane := range got {
				if math.Float64bits(got[lane]) != math.Float64bits(want[lane]) {
					t.Fatalf("%s rows=%d lane %d: %v, want %v", kv.name, rows, lane, got[lane], want[lane])
				}
			}
		}
	}
}

// TestEMFitKernelsBitIdentical pins the dispatch guarantee at the
// model level: EMFit under every host fsub kernel reproduces the
// portable-reference model bit for bit, so runtime dispatch can never
// shift a trained mixture.
func TestEMFitKernelsBitIdentical(t *testing.T) {
	data, means := testData(700, 9, 4, 11)
	var base *EMModel
	withFsub(t, fsubPacked8Ref, func() {
		var err error
		base, err = EMFit(data, means, fitCfg(4, 3))
		if err != nil {
			t.Fatal(err)
		}
	})
	for _, kv := range fsubVariants() {
		var got *EMModel
		withFsub(t, kv.fn, func() {
			var err error
			got, err = EMFit(data, means, fitCfg(4, 3))
			if err != nil {
				t.Fatalf("%s: %v", kv.name, err)
			}
		})
		if math.Float64bits(base.LogLikelihood) != math.Float64bits(got.LogLikelihood) {
			t.Fatalf("%s: LL %v, reference %v", kv.name, got.LogLikelihood, base.LogLikelihood)
		}
		for i := range base.Means {
			if math.Float64bits(base.Means[i]) != math.Float64bits(got.Means[i]) {
				t.Fatalf("%s: mean flat[%d] differs", kv.name, i)
			}
		}
		for i := range base.Covs {
			if math.Float64bits(base.Covs[i]) != math.Float64bits(got.Covs[i]) {
				t.Fatalf("%s: cov flat[%d] differs", kv.name, i)
			}
		}
	}
}
