//go:build arm64

package train

import "github.com/memheatmap/mhm/internal/cpufeat"

// fsubPacked8NEON is the arm64 kernel: four 128-bit vector
// accumulators cover the eight lanes, using unfused FMUL/FSUB pairs
// (no FMLS — fused rounding would break the bit-identity contract
// detorder enforces). len(packed) must be 8·len(row).
//
//mhm:hotpath
//go:noescape
func fsubPacked8NEON(row, packed []float64, out *[8]float64)

func init() {
	if cpufeat.ARM64.HasASIMD {
		kernelName = "neon"
		fsubPacked8 = fsubPacked8NEON
	}
}
