package train

import "testing"

// BenchmarkTrainEM times one steady-state EM iteration (blocked E-step,
// log-likelihood reduction, per-component M-step) at the paper's
// reduced shape — L' = 9 dims, J = 5 components — over 2,048 samples.
// allocs/op must be 0: the engine preallocates everything in newEM.
func BenchmarkTrainEM(b *testing.B) {
	data, means := testData(2048, 9, 5, 1)
	e, err := newEM(data, means, fitCfg(5, 1))
	if err != nil {
		b.Fatal(err)
	}
	e.eStep()
	if bad := e.mStep(); bad >= 0 {
		b.Fatalf("M-step failed on component %d", bad)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.eStep()
		_ = e.sumLL()
		if bad := e.mStep(); bad >= 0 {
			b.Fatalf("M-step failed on component %d", bad)
		}
	}
}
