// SIMD micro-kernels for the blocked EM forward substitution: eight
// packed dot-product subtractions from the lane accumulators, one
// sample per SIMD lane. Every kernel subtracts row[i]*packed[i*8+k]
// from out[k] in ascending i with separate multiply and subtract (no
// FMA), so each lane performs exactly the scalar solve's operation
// sequence and the factor solve is bit-identical to the staged path.
// SSE2 is the amd64 baseline; the AVX2 kernel is bound by
// internal/cpufeat dispatch only when the CPU and OS support it.

#include "textflag.h"

// func fsubPacked8SSE2(row, packed []float64, out *[8]float64)
TEXT ·fsubPacked8SSE2(SB), NOSPLIT, $0-56
	MOVQ row_base+0(FP), SI
	MOVQ row_len+8(FP), CX
	MOVQ packed_base+24(FP), DI
	MOVQ out+48(FP), DX

	// Running lane accumulators: X0 = lanes 0,1 ... X3 = lanes 6,7.
	MOVUPS (DX), X0
	MOVUPS 16(DX), X1
	MOVUPS 32(DX), X2
	MOVUPS 48(DX), X3

	TESTQ CX, CX
	JZ    done

loop:
	// Broadcast row[i] into both halves of X4.
	MOVSD    (SI), X4
	UNPCKLPD X4, X4

	MOVUPS (DI), X5
	MULPD  X4, X5
	SUBPD  X5, X0
	MOVUPS 16(DI), X6
	MULPD  X4, X6
	SUBPD  X6, X1
	MOVUPS 32(DI), X7
	MULPD  X4, X7
	SUBPD  X7, X2
	MOVUPS 48(DI), X8
	MULPD  X4, X8
	SUBPD  X8, X3

	ADDQ $8, SI
	ADDQ $64, DI
	DECQ CX
	JNZ  loop

done:
	MOVUPS X0, (DX)
	MOVUPS X1, 16(DX)
	MOVUPS X2, 32(DX)
	MOVUPS X3, 48(DX)
	RET

// func fsubPacked8AVX2(row, packed []float64, out *[8]float64)
//
// Two YMM accumulators: Y0 = lanes 0..3, Y1 = lanes 4..7. Per i: one
// VBROADCASTSD, two VMULPD, two VSUBPD — halving the instruction
// count of the SSE2 loop while keeping each lane's multiply-then-
// subtract order.
TEXT ·fsubPacked8AVX2(SB), NOSPLIT, $0-56
	MOVQ row_base+0(FP), SI
	MOVQ row_len+8(FP), CX
	MOVQ packed_base+24(FP), DI
	MOVQ out+48(FP), DX

	VMOVUPD (DX), Y0
	VMOVUPD 32(DX), Y1

	TESTQ CX, CX
	JZ    done

loop:
	VBROADCASTSD (SI), Y4

	VMULPD (DI), Y4, Y5
	VSUBPD Y5, Y0, Y0
	VMULPD 32(DI), Y4, Y6
	VSUBPD Y6, Y1, Y1

	ADDQ $8, SI
	ADDQ $64, DI
	DECQ CX
	JNZ  loop

done:
	VMOVUPD Y0, (DX)
	VMOVUPD Y1, 32(DX)
	VZEROUPPER
	RET
