// The eigenmemory covariance build: mean, mean-shifted Φ and total
// variance over fixed dimension tiles. Each tile owns a disjoint band
// of rows of Φ (and of the mean), so workers never contend; the only
// cross-tile quantity — the total variance — is reduced from per-tile
// partials in ascending tile index. Per-cell arithmetic keeps the
// staged order (samples folded in ascending index), so the mean and Φ
// are bit-identical to the historical serial build for every worker
// count.
package train

import "github.com/memheatmap/mhm/internal/mat"

// dimTile is the build work unit: a band of 512 heat-map cells, small
// enough to split the paper's L = 1472 across workers, large enough to
// amortize dispatch.
const dimTile = 512

// BuildCentered computes the mean vector Ψ, the L×N mean-shifted column
// matrix Φ and the total variance tr(C) = Σ‖Φ_j‖²/N of a training set
// (one sample per element, equal lengths — the caller validates). The
// result is bit-identical for every worker count.
//
//mhm:deterministic
func BuildCentered(set [][]float64, workers int) (mean []float64, phi *mat.Matrix, totalVar float64) {
	n := len(set)
	l := len(set[0])
	mean = make([]float64, l)
	phi = mat.New(l, n)
	nTiles := chunkCount(l, dimTile)
	tv := make([]float64, nTiles)
	chunksWorker(nTiles, workers, func(idx, _ int) {
		lo := idx * dimTile
		hi := lo + dimTile
		if hi > l {
			hi = l
		}
		buildTile(set, mean, phi, tv, lo, hi, idx)
	})
	for _, v := range tv {
		totalVar += v
	}
	totalVar /= float64(n)
	return mean, phi, totalVar
}

// buildTile fills rows [lo, hi) of the mean and Φ and the tile's
// variance partial. Per cell, the mean folds samples in ascending index
// — the staged accumulation order.
func buildTile(set [][]float64, mean []float64, phi *mat.Matrix, tv []float64, lo, hi, idx int) {
	n := len(set)
	for _, v := range set {
		for i := lo; i < hi; i++ {
			mean[i] += v[i]
		}
	}
	inv := float64(n)
	for i := lo; i < hi; i++ {
		mean[i] /= inv
	}
	s := 0.0
	for i := lo; i < hi; i++ {
		row := phi.Row(i)
		m := mean[i]
		for j, v := range set {
			d := v[i] - m
			row[j] = d
			s += d * d
		}
	}
	tv[idx] = s
}
