package train

// Runtime kernel dispatch, mirroring internal/score: fsubPacked8 is
// bound exactly once at package init to the widest kernel
// internal/cpufeat reports (GODEBUG=cpu.<feature>=off masks a feature
// for fallback testing) and never reassigned afterwards. Every
// candidate performs per-lane multiply-then-subtract in ascending
// index order with no FMA, so EM fits are bit-identical whichever
// kernel dispatch selects; mhmlint checks the bound functions through
// this table.

// fsubPacked8 subtracts eight packed dot products from the lane
// accumulators: out[k] -= Σ_i row[i]·packed[i*8+k], one forward-
// substitution row for eight samples at once. len(packed) must be
// 8·len(row).
//
//mhm:hotpath
var fsubPacked8 func(row, packed []float64, out *[8]float64) = fsubPacked8Ref

// kernelName records which substitution kernel dispatch selected, for
// benchmarks and reports.
var kernelName = "go"

// Kernel reports the forward-substitution kernel selected at startup:
// "avx2", "sse2", "neon", or "go".
func Kernel() string { return kernelName }
