package train

// fsubPacked8Ref subtracts eight packed dot products from the lane
// accumulators: out[k] -= Σ_i row[i]·packed[i*8+k], in ascending i per
// lane — the same operation sequence as the scalar forward-substitution
// row. Portable reference implementation, compiled on every
// architecture: it anchors the cross-kernel bit-identity fuzz and is
// the dispatch fallback when no SIMD kernel applies.
//
//mhm:hotpath
func fsubPacked8Ref(row, packed []float64, out *[8]float64) {
	for i, r := range row {
		p := packed[i*8 : i*8+8]
		out[0] -= r * p[0]
		out[1] -= r * p[1]
		out[2] -= r * p[2]
		out[3] -= r * p[3]
		out[4] -= r * p[4]
		out[5] -= r * p[5]
		out[6] -= r * p[6]
		out[7] -= r * p[7]
	}
}
