package train

import (
	"math"
	"math/rand"
	"testing"

	"github.com/memheatmap/mhm/internal/mat"
)

func sketchData(n, l int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	set := make([][]float64, n)
	for i := range set {
		v := make([]float64, l)
		for j := range v {
			v[j] = rng.NormFloat64() + float64(j%7)
		}
		set[i] = v
	}
	return set
}

// TestCenteredMatchesBuildOnFirstFill pins the contract that a sketch
// filled once from empty reproduces BuildCentered's mean bit for bit
// (same per-tile sums, same final division) and its total variance to
// rounding.
func TestCenteredMatchesBuildOnFirstFill(t *testing.T) {
	for _, shape := range []struct{ n, l int }{{64, 64}, {100, 700}, {3, 5}} {
		set := sketchData(shape.n, shape.l, 11)
		mean, _, tv := BuildCentered(set, 1)

		c, err := NewCentered(shape.l, shape.n, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Update(set); err != nil {
			t.Fatal(err)
		}
		for i, v := range mean {
			if math.Float64bits(v) != math.Float64bits(c.Mean()[i]) {
				t.Fatalf("n=%d l=%d: mean[%d] %v vs %v", shape.n, shape.l, i, v, c.Mean()[i])
			}
		}
		if d := math.Abs(tv - c.TotalVar()); d > 1e-9*(1+math.Abs(tv)) {
			t.Fatalf("n=%d l=%d: totalVar %v vs %v", shape.n, shape.l, tv, c.TotalVar())
		}
	}
}

// TestCenteredEviction pushes past the window and checks the running
// sums agree with an exact rebuild over the surviving samples.
func TestCenteredEviction(t *testing.T) {
	const l, window = 33, 40
	set := sketchData(97, l, 5) // 2.4 windows worth, odd remainders
	c, err := NewCentered(l, window, 1)
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < len(set); lo += 7 { // ragged batches
		hi := lo + 7
		if hi > len(set) {
			hi = len(set)
		}
		if err := c.Update(set[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != window {
		t.Fatalf("Len = %d, want %d", c.Len(), window)
	}
	// The ring must hold exactly the last `window` samples (in some slot
	// order); verify as a multiset via sorted first-coordinates.
	want := map[float64]int{}
	for _, v := range set[len(set)-window:] {
		want[v[0]]++
	}
	for s := 0; s < window; s++ {
		want[c.Sample(s)[0]]--
	}
	for k, n := range want {
		if n != 0 {
			t.Fatalf("ring multiset mismatch at first-coord %v (count %d)", k, n)
		}
	}

	// Incremental sums vs exact rebuild: close to rounding.
	incMean := append([]float64(nil), c.Mean()...)
	incTV := c.TotalVar()
	c.Rebuild()
	for i, v := range c.Mean() {
		if d := math.Abs(v - incMean[i]); d > 1e-9*(1+math.Abs(v)) {
			t.Fatalf("mean[%d] drift %v vs %v", i, incMean[i], v)
		}
	}
	if d := math.Abs(c.TotalVar() - incTV); d > 1e-6*(1+c.TotalVar()) {
		t.Fatalf("totalVar drift %v vs %v", incTV, c.TotalVar())
	}
}

// TestCenteredWorkerBitIdentity pins the determinism contract: the same
// push history yields bit-identical state at every worker count.
func TestCenteredWorkerBitIdentity(t *testing.T) {
	const l, window = 1100, 48 // spans three dimension tiles
	set := sketchData(130, l, 3)
	run := func(workers int) *Centered {
		c, err := NewCentered(l, window, workers)
		if err != nil {
			t.Fatal(err)
		}
		for lo := 0; lo < len(set); lo += 9 {
			hi := lo + 9
			if hi > len(set) {
				hi = len(set)
			}
			if err := c.Update(set[lo:hi]); err != nil {
				t.Fatal(err)
			}
		}
		return c
	}
	base := run(1)
	src := sketchData(1, l, 8)[0]
	baseDst := make([]float64, l)
	base.Apply(baseDst, src)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		for i := range base.mean {
			if math.Float64bits(base.mean[i]) != math.Float64bits(got.mean[i]) {
				t.Fatalf("workers=%d: mean[%d] differs", workers, i)
			}
			if math.Float64bits(base.sum[i]) != math.Float64bits(got.sum[i]) {
				t.Fatalf("workers=%d: sum[%d] differs", workers, i)
			}
		}
		if math.Float64bits(base.TotalVar()) != math.Float64bits(got.TotalVar()) {
			t.Fatalf("workers=%d: TotalVar differs", workers)
		}
		dst := make([]float64, l)
		got.Apply(dst, src)
		for i := range dst {
			if math.Float64bits(dst[i]) != math.Float64bits(baseDst[i]) {
				t.Fatalf("workers=%d: Apply[%d] differs", workers, i)
			}
		}
	}
}

// TestCenteredApplyMatchesExplicit checks the implicit operator against
// an explicitly materialized covariance on a small case.
func TestCenteredApplyMatchesExplicit(t *testing.T) {
	const n, l = 30, 12
	set := sketchData(n, l, 2)
	c, err := NewCentered(l, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Update(set); err != nil {
		t.Fatal(err)
	}
	mean := c.Mean()
	cov := mat.New(l, l)
	for _, v := range set {
		for i := 0; i < l; i++ {
			for j := 0; j < l; j++ {
				cov.Set(i, j, cov.At(i, j)+(v[i]-mean[i])*(v[j]-mean[j])/float64(n))
			}
		}
	}
	src := sketchData(1, l, 9)[0]
	got := make([]float64, l)
	c.Apply(got, src)
	for i := 0; i < l; i++ {
		want := 0.0
		for j := 0; j < l; j++ {
			want += cov.At(i, j) * src[j]
		}
		if math.Abs(want-got[i]) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("Apply[%d] = %v, want %v", i, got[i], want)
		}
	}
}

// TestCenteredUpdateAllocationFree pins the steady-state zero-alloc
// contract on the incremental-update hot path.
func TestCenteredUpdateAllocationFree(t *testing.T) {
	const l, window = 600, 64
	set := sketchData(window+8, l, 4)
	c, err := NewCentered(l, window, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Update(set[:window]); err != nil {
		t.Fatal(err)
	}
	batch := set[window:]
	allocs := testing.AllocsPerRun(50, func() {
		if err := c.Update(batch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Centered.Update allocated %.1f/op, want 0", allocs)
	}
}
