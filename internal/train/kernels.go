// The blocked E-step and M-step kernels. Everything here is annotated
// //mhm:hotpath and enforced allocation-free by mhmlint; all storage is
// preallocated by newEM. Per-lane and per-component operation order
// reproduces the staged gmm path (Responsibilities → LogProb per
// sample, then the straight M-step sweeps) exactly, so fits are
// bit-identical to the historical arithmetic.
package train

import (
	"math"

	"github.com/memheatmap/mhm/internal/mat"
)

// densRange runs the E-step over samples [lo, hi): full blocks of eight
// through the SIMD panel kernel, the remainder through the scalar path
// (identical per-sample operation order, so the split point is
// invisible in the results). wi selects the worker's private panels.
//
//mhm:hotpath
func (e *em) densRange(lo, hi, wi int) {
	base := wi * (16*e.d + 8)
	pd := e.pack[base : base+8*e.d]
	py := e.pack[base+8*e.d : base+16*e.d]
	sv := (*[8]float64)(e.pack[base+16*e.d : base+16*e.d+8])
	s := lo
	for ; s+8 <= hi; s += 8 {
		e.densBlock8(s, pd, py, sv)
	}
	for ; s < hi; s++ {
		e.densScalar(s, pd[:e.d], py[:e.d])
	}
}

// densBlock8 evaluates all K component log densities for the eight
// samples starting at s, then converts the eight rows to
// responsibilities + log-likelihoods in place. Per component the
// mean-shifted diffs are packed column-major (pd[i*8+lane]) and the
// forward substitution L y = diff runs all eight lanes at once: row i
// subtracts its dot against the solved prefix via fsubPacked8 — each
// lane performing exactly the scalar sequence s -= L[i][t]·y[t] in
// ascending t — then divides by the pivot and accumulates m2 += y².
// sv is the worker's eight-lane substitution buffer: it lives in the
// preallocated pack panel (not on the stack) because it is passed to
// the dispatched kernel through a function variable, where escape
// analysis cannot see the kernels' //go:noescape.
//
//mhm:hotpath
func (e *em) densBlock8(s int, pd, py []float64, sv *[8]float64) {
	d, k := e.d, e.k
	for j := 0; j < k; j++ {
		meanj := e.mean[j*d : (j+1)*d]
		cholj := e.chol[j*d*d : (j+1)*d*d]
		for lane := 0; lane < 8; lane++ {
			xi := e.x[(s+lane)*d : (s+lane+1)*d]
			for i, m := range meanj {
				pd[i*8+lane] = xi[i] - m
			}
		}
		var m2 [8]float64
		for i := 0; i < d; i++ {
			copy(sv[:], pd[i*8:i*8+8])
			fsubPacked8(cholj[i*d:i*d+i], py[:i*8], sv)
			lii := cholj[i*d+i]
			for lane := 0; lane < 8; lane++ {
				yv := sv[lane] / lii
				py[i*8+lane] = yv
				m2[lane] += yv * yv
			}
		}
		lw := e.logW[j]
		bs := e.base[j]
		for lane := 0; lane < 8; lane++ {
			e.resp[(s+lane)*k+j] = lw - 0.5*(bs+m2[lane])
		}
	}
	for lane := 0; lane < 8; lane++ {
		e.ll[s+lane] = respLLRow(e.resp[(s+lane)*k : (s+lane+1)*k])
	}
}

// densScalar is the one-sample tail path: the same arithmetic as one
// lane of densBlock8.
//
//mhm:hotpath
func (e *em) densScalar(s int, diff, y []float64) {
	d, k := e.d, e.k
	row := e.resp[s*k : (s+1)*k]
	xi := e.x[s*d : (s+1)*d]
	for j := 0; j < k; j++ {
		meanj := e.mean[j*d : (j+1)*d]
		cholj := e.chol[j*d*d : (j+1)*d*d]
		for i, m := range meanj {
			diff[i] = xi[i] - m
		}
		m2 := 0.0
		for i := 0; i < d; i++ {
			sv := diff[i]
			li := cholj[i*d : i*d+i]
			for t, lv := range li {
				sv -= lv * y[t]
			}
			yv := sv / cholj[i*d+i]
			y[i] = yv
			m2 += yv * yv
		}
		row[j] = e.logW[j] - 0.5*(e.base[j]+m2)
	}
	e.ll[s] = respLLRow(row)
}

// respLLRow converts one row of per-component log terms into
// responsibilities in place and returns the sample's log-likelihood,
// with the max-shifted exponential normalization and ascending-order
// sums of the staged Responsibilities/LogProb pair.
//
//mhm:hotpath
func respLLRow(row []float64) float64 {
	best := math.Inf(-1)
	for _, t := range row {
		if t > best {
			best = t
		}
	}
	if math.IsInf(best, -1) {
		// Degenerate: uniform responsibilities, -Inf likelihood.
		u := 1 / float64(len(row))
		for j := range row {
			row[j] = u
		}
		return math.Inf(-1)
	}
	sum := 0.0
	for j, t := range row {
		ex := math.Exp(t - best)
		row[j] = ex
		sum += ex
	}
	for j := range row {
		row[j] /= sum
	}
	return best + math.Log(sum)
}

// mStepComponent recomputes component j from the responsibility matrix:
// weight, mean, covariance (+Reg on the diagonal) and the refreshed
// Cholesky factor with its density constant. A component whose
// responsibility mass collapsed is re-seeded on the worst-modeled
// sample using the log-likelihoods already computed in the E-step — a
// consistent pre-update criterion (the staged path rescanned against a
// half-updated model), which is also what makes the components
// independent and the per-component fan-out deterministic. Returns
// false when the covariance is no longer SPD.
//
//mhm:hotpath
func (e *em) mStepComponent(j int) bool {
	d, k := e.d, e.k
	lo, hi := e.bLo, e.bHi
	bn := hi - lo
	nj := 0.0
	for i := lo; i < hi; i++ {
		nj += e.resp[i*k+j]
	}
	if nj < 1e-10 {
		worstI := lo
		worstLL := math.Inf(1)
		for i := lo; i < hi; i++ {
			if e.ll[i] < worstLL {
				worstI, worstLL = i, e.ll[i]
			}
		}
		copy(e.mean[j*d:(j+1)*d], e.x[worstI*d:(worstI+1)*d])
		e.weight[j] = 1 / float64(bn)
		e.logW[j] = math.Log(e.weight[j])
		return true // covariance (and its factor) kept
	}
	e.weight[j] = nj / float64(bn)
	e.logW[j] = math.Log(e.weight[j])
	meanj := e.mean[j*d : (j+1)*d]
	for c := range meanj {
		meanj[c] = 0
	}
	for i := lo; i < hi; i++ {
		w := e.resp[i*k+j]
		xi := e.x[i*d : (i+1)*d]
		for c, v := range xi {
			meanj[c] += w * v
		}
	}
	for c := range meanj {
		meanj[c] /= nj
	}
	covj := e.cov[j*d*d : (j+1)*d*d]
	for c := range covj {
		covj[c] = 0
	}
	diff := e.mdiff[j*d : (j+1)*d]
	for i := lo; i < hi; i++ {
		w := e.resp[i*k+j]
		if mat.IsZero(w) {
			continue
		}
		xi := e.x[i*d : (i+1)*d]
		for c := range xi {
			diff[c] = xi[c] - meanj[c]
		}
		for a := 0; a < d; a++ {
			wa := w * diff[a]
			row := covj[a*d : (a+1)*d]
			for b, dv := range diff {
				row[b] += wa * dv
			}
		}
	}
	s := 1 / nj
	for c := range covj {
		covj[c] *= s
	}
	for a := 0; a < d; a++ {
		covj[a*d+a] += e.reg
	}
	cholj := e.chol[j*d*d : (j+1)*d*d]
	if !cholFlat(covj, cholj, d) {
		return false
	}
	e.base[j] = float64(d)*log2Pi + logDetFlat(cholj, d)
	return true
}

// cholFlat factors the d×d row-major SPD matrix a into the
// lower-triangular l in place (upper entries of l are left untouched
// and never read), with mat.NewCholesky's exact operation order.
// Returns false when a pivot is not positive.
//
//mhm:hotpath
func cholFlat(a, l []float64, d int) bool {
	for j := 0; j < d; j++ {
		dd := a[j*d+j]
		lj := l[j*d : j*d+j]
		for _, v := range lj {
			dd -= v * v
		}
		if dd <= 0 || math.IsNaN(dd) {
			return false
		}
		ljj := math.Sqrt(dd)
		l[j*d+j] = ljj
		for i := j + 1; i < d; i++ {
			s := a[i*d+j]
			li := l[i*d : i*d+j]
			for k, v := range li {
				s -= v * lj[k]
			}
			l[i*d+j] = s / ljj
		}
	}
	return true
}

// logDetFlat is Cholesky.LogDet over a flat factor: 2·Σ ln L[i][i] in
// ascending order.
//
//mhm:hotpath
func logDetFlat(l []float64, d int) float64 {
	s := 0.0
	for i := 0; i < d; i++ {
		s += math.Log(l[i*d+i])
	}
	return 2 * s
}
