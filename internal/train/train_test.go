package train

import (
	"math"
	"math/rand"
	"testing"

	"github.com/memheatmap/mhm/internal/mat"
)

// testData draws n samples around k separated centers plus the k seed
// means (the first k samples, mimicking a crude k-means pick).
func testData(n, d, k int, seed int64) (data, means [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	data = make([][]float64, n)
	for i := range data {
		c := i % k
		v := make([]float64, d)
		for j := range v {
			v[j] = 8*float64(c) + rng.NormFloat64()
		}
		data[i] = v
	}
	means = make([][]float64, k)
	for j := range means {
		means[j] = append([]float64(nil), data[j]...)
	}
	return data, means
}

func fitCfg(k, workers int) EMConfig {
	return EMConfig{K: k, MaxIter: 40, Tol: 1e-6, Reg: 1e-6, InitVar: 1, Workers: workers}
}

// TestEMFitWorkerCountsBitIdentical pins the determinism contract at
// the engine level: every worker count yields a bitwise-equal model.
func TestEMFitWorkerCountsBitIdentical(t *testing.T) {
	for _, shape := range []struct{ n, d, k int }{
		{300, 5, 3},
		{1029, 9, 5}, // crosses the sample-chunk boundary, odd tail
		{17, 3, 2},
	} {
		data, means := testData(shape.n, shape.d, shape.k, 7)
		base, err := EMFit(data, means, fitCfg(shape.k, 1))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 5, 16} {
			got, err := EMFit(data, means, fitCfg(shape.k, workers))
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if math.Float64bits(base.LogLikelihood) != math.Float64bits(got.LogLikelihood) {
				t.Fatalf("n=%d workers=%d: LL %v vs %v", shape.n, workers, base.LogLikelihood, got.LogLikelihood)
			}
			for i, v := range base.Weights {
				if math.Float64bits(v) != math.Float64bits(got.Weights[i]) {
					t.Fatalf("n=%d workers=%d: weight[%d] differs", shape.n, workers, i)
				}
			}
			for i, v := range base.Means {
				if math.Float64bits(v) != math.Float64bits(got.Means[i]) {
					t.Fatalf("n=%d workers=%d: mean flat[%d] differs", shape.n, workers, i)
				}
			}
			for i, v := range base.Covs {
				if math.Float64bits(v) != math.Float64bits(got.Covs[i]) {
					t.Fatalf("n=%d workers=%d: cov flat[%d] differs", shape.n, workers, i)
				}
			}
		}
	}
}

// TestEMIterationAllocationFree is the PR's steady-state guard: after
// newEM, a full serial EM iteration (E-step, reduction, M-step)
// performs zero heap allocations.
func TestEMIterationAllocationFree(t *testing.T) {
	data, means := testData(512, 9, 5, 3)
	e, err := newEM(data, means, fitCfg(5, 1))
	if err != nil {
		t.Fatal(err)
	}
	e.eStep()
	if bad := e.mStep(); bad >= 0 {
		t.Fatalf("M-step failed on component %d", bad)
	}
	allocs := testing.AllocsPerRun(10, func() {
		e.eStep()
		_ = e.sumLL()
		if bad := e.mStep(); bad >= 0 {
			t.Fatalf("M-step failed on component %d", bad)
		}
	})
	if allocs != 0 {
		t.Fatalf("EM iteration allocates %.1f times, want 0", allocs)
	}
}

// TestCholFlatMatchesMat verifies the in-place factorization against
// mat.NewCholesky bit for bit, including the log-determinant.
func TestCholFlatMatchesMat(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, d := range []int{1, 2, 5, 9} {
		// Build an SPD matrix A = B Bᵀ + I.
		a := make([]float64, d*d)
		b := make([]float64, d*d)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		am := mat.New(d, d)
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				s := 0.0
				for k := 0; k < d; k++ {
					s += b[i*d+k] * b[j*d+k]
				}
				if i == j {
					s += float64(d)
				}
				a[i*d+j] = s
				am.Set(i, j, s)
			}
		}
		want, err := mat.NewCholesky(am)
		if err != nil {
			t.Fatal(err)
		}
		l := make([]float64, d*d)
		if !cholFlat(a, l, d) {
			t.Fatalf("d=%d: cholFlat rejected an SPD matrix", d)
		}
		wl := want.L()
		for i := 0; i < d; i++ {
			for j := 0; j <= i; j++ {
				if math.Float64bits(l[i*d+j]) != math.Float64bits(wl.At(i, j)) {
					t.Fatalf("d=%d: L[%d][%d] = %v, want %v", d, i, j, l[i*d+j], wl.At(i, j))
				}
			}
		}
		if math.Float64bits(logDetFlat(l, d)) != math.Float64bits(want.LogDet()) {
			t.Fatalf("d=%d: logdet %v, want %v", d, logDetFlat(l, d), want.LogDet())
		}
		// Non-SPD input must be rejected.
		bad := make([]float64, d*d)
		bad[0] = -1
		if cholFlat(bad, l, d) {
			t.Fatalf("d=%d: cholFlat accepted a negative pivot", d)
		}
	}
}

// TestFsubPacked8MatchesScalar verifies the SIMD lane kernel against
// the scalar subtraction sequence bit for bit.
func TestFsubPacked8MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, rows := range []int{0, 1, 3, 8, 17} {
		row := make([]float64, rows)
		packed := make([]float64, rows*8)
		for i := range row {
			row[i] = rng.NormFloat64()
		}
		for i := range packed {
			packed[i] = rng.NormFloat64()
		}
		var got, want [8]float64
		for lane := 0; lane < 8; lane++ {
			got[lane] = rng.NormFloat64()
			want[lane] = got[lane]
		}
		fsubPacked8(row, packed, &got)
		for lane := 0; lane < 8; lane++ {
			s := want[lane]
			for i, r := range row {
				s -= r * packed[i*8+lane]
			}
			want[lane] = s
		}
		for lane := 0; lane < 8; lane++ {
			if math.Float64bits(got[lane]) != math.Float64bits(want[lane]) {
				t.Fatalf("rows=%d lane %d: %v, want %v", rows, lane, got[lane], want[lane])
			}
		}
	}
}

// TestEMFitRejectsBadInput covers the argument contract.
func TestEMFitRejectsBadInput(t *testing.T) {
	data, means := testData(10, 2, 2, 1)
	if _, err := EMFit(nil, means, fitCfg(2, 1)); err == nil {
		t.Fatal("empty data accepted")
	}
	if _, err := EMFit(data, means[:1], fitCfg(2, 1)); err == nil {
		t.Fatal("mismatched initial means accepted")
	}
	if _, err := EMFit(data, means, fitCfg(0, 1)); err == nil {
		t.Fatal("zero components accepted")
	}
}

// TestBuildCenteredMatchesStaged verifies the tiled build against the
// staged serial reference (the pre-engine pca.Train loops) bit for bit
// on mean and Φ, and that the variance reduction is worker-independent.
func TestBuildCenteredMatchesStaged(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, shape := range []struct{ n, l int }{
		{5, 3},
		{40, 700}, // spans two dimension tiles
		{9, 1472}, // the paper's L
	} {
		set := make([][]float64, shape.n)
		for j := range set {
			v := make([]float64, shape.l)
			for i := range v {
				v[i] = rng.NormFloat64()
			}
			set[j] = v
		}
		// Staged reference.
		wantMean := make([]float64, shape.l)
		for _, v := range set {
			for i, x := range v {
				wantMean[i] += x
			}
		}
		for i := range wantMean {
			wantMean[i] /= float64(shape.n)
		}
		wantPhi := mat.New(shape.l, shape.n)
		for j, v := range set {
			for i, x := range v {
				wantPhi.Set(i, j, x-wantMean[i])
			}
		}
		var baseVar float64
		for wi, workers := range []int{1, 2, 4, 9} {
			mean, phi, totalVar := BuildCentered(set, workers)
			for i := range mean {
				if math.Float64bits(mean[i]) != math.Float64bits(wantMean[i]) {
					t.Fatalf("l=%d workers=%d: mean[%d] = %v, want %v", shape.l, workers, i, mean[i], wantMean[i])
				}
			}
			for i := 0; i < shape.l; i++ {
				for j := 0; j < shape.n; j++ {
					if math.Float64bits(phi.At(i, j)) != math.Float64bits(wantPhi.At(i, j)) {
						t.Fatalf("l=%d workers=%d: phi[%d][%d] differs", shape.l, workers, i, j)
					}
				}
			}
			if wi == 0 {
				baseVar = totalVar
				continue
			}
			if math.Float64bits(totalVar) != math.Float64bits(baseVar) {
				t.Fatalf("l=%d workers=%d: totalVar %v, want %v", shape.l, workers, totalVar, baseVar)
			}
		}
	}
}

// TestChunksCoversRange checks the public chunk iterator contract.
func TestChunksCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 65} {
		if got, want := ChunkCount(n, 16), (n+15)/16; got != want {
			t.Fatalf("ChunkCount(%d, 16) = %d, want %d", n, got, want)
		}
		seen := make([]bool, n)
		Chunks(n, 16, 4, func(lo, hi, idx int) {
			for i := lo; i < hi; i++ {
				seen[i] = true
			}
		})
		for i, ok := range seen {
			if !ok {
				t.Fatalf("n=%d: index %d not covered", n, i)
			}
		}
	}
}
