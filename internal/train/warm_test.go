package train

import (
	"math"
	"testing"
)

// TestEMFitWarmStart seeds EM from a previous fit and checks the warm
// run needs no init means, keeps K, and does not regress the data
// log-likelihood (a warm iteration from the optimum is a no-op up to
// rounding; from anywhere else EM ascends).
func TestEMFitWarmStart(t *testing.T) {
	data, means := testData(400, 6, 3, 21)
	prev, err := EMFit(data, means, fitCfg(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := fitCfg(3, 1)
	cfg.MaxIter = 4
	cfg.Warm = prev
	got, err := EMFit(data, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.K != prev.K || got.D != prev.D {
		t.Fatalf("warm fit shape (%d,%d), want (%d,%d)", got.K, got.D, prev.K, prev.D)
	}
	if got.LogLikelihood < prev.LogLikelihood-1e-6*math.Abs(prev.LogLikelihood) {
		t.Fatalf("warm LL %v regressed below seed %v", got.LogLikelihood, prev.LogLikelihood)
	}
}

// TestEMFitWarmStartOnShiftedData warm-starts on a drifted window and
// checks convergence in a small bounded iteration budget: the warm fit
// must reach within 0.5% of a cold 40-iteration fit's log-likelihood in
// 4 iterations.
func TestEMFitWarmStartOnShiftedData(t *testing.T) {
	data, means := testData(400, 6, 3, 21)
	prev, err := EMFit(data, means, fitCfg(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	shifted, shiftMeans := testData(400, 6, 3, 22)
	for _, v := range shifted {
		for j := range v {
			v[j] += 0.5
		}
	}
	cold, err := EMFit(shifted, shiftMeans, fitCfg(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := fitCfg(3, 1)
	cfg.MaxIter = 4
	cfg.Warm = prev
	warm, err := EMFit(shifted, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.LogLikelihood < cold.LogLikelihood-0.005*math.Abs(cold.LogLikelihood) {
		t.Fatalf("warm LL %v too far below cold LL %v", warm.LogLikelihood, cold.LogLikelihood)
	}
}

// TestEMFitMiniBatchDeterministic pins bit-identity of the mini-batch
// path across worker counts, including a batch size that does not
// divide n.
func TestEMFitMiniBatchDeterministic(t *testing.T) {
	data, means := testData(1029, 5, 3, 13)
	prev, err := EMFit(data, means, fitCfg(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *EMModel {
		cfg := fitCfg(3, workers)
		cfg.MaxIter = 6
		cfg.Warm = prev
		cfg.BatchSize = 300
		m, err := EMFit(data, nil, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return m
	}
	base := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		for j := range base.Weights {
			if math.Float64bits(base.Weights[j]) != math.Float64bits(got.Weights[j]) {
				t.Fatalf("workers=%d: weight[%d] differs", workers, j)
			}
		}
		for i := range base.Means {
			if math.Float64bits(base.Means[i]) != math.Float64bits(got.Means[i]) {
				t.Fatalf("workers=%d: mean[%d] differs", workers, i)
			}
		}
		for i := range base.Covs {
			if math.Float64bits(base.Covs[i]) != math.Float64bits(got.Covs[i]) {
				t.Fatalf("workers=%d: cov[%d] differs", workers, i)
			}
		}
	}
}

// TestEMFitWarmRejectsShapeMismatch checks warm-start validation.
func TestEMFitWarmRejectsShapeMismatch(t *testing.T) {
	data, means := testData(100, 4, 2, 3)
	prev, err := EMFit(data, means, fitCfg(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	wrong, _ := testData(100, 5, 2, 4)
	cfg := fitCfg(2, 1)
	cfg.Warm = prev
	if _, err := EMFit(wrong, nil, cfg); err == nil {
		t.Fatal("warm fit over mismatched dimension succeeded")
	}
}
