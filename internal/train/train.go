// Package train is the fused, parallel, zero-steady-state-allocation
// training engine behind gmm.Train and pca.Train (DESIGN.md §9). It
// owns the blocked EM inner loop — a per-iteration log-density matrix
// computed once through fused Cholesky forward-substitution kernels
// (SSE2 lanes on amd64, pure Go elsewhere), responsibilities and the
// total log-likelihood derived from that single matrix, and a
// per-component parallel M-step — plus the tiled mean/Φ/variance build
// of the eigenmemory covariance.
//
// Determinism contract: for a fixed input, every result is bit-identical
// for every worker count, including the serial run. Sample chunks and
// dimension tiles form a fixed grid that depends only on the problem
// size; each chunk writes disjoint state, and every cross-chunk
// reduction (the log-likelihood sum, the variance partials) folds in
// ascending chunk index. The per-sample and per-component arithmetic
// reproduces the operation order of the staged gmm/pca paths exactly, so
// models trained through this engine match the historical fits bit for
// bit.
package train

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotSPD is returned when a component covariance loses positive
// definiteness during the M-step (regularization too small for the
// data); the caller abandons that restart.
var ErrNotSPD = errors.New("train: covariance not positive definite")

const log2Pi = 1.8378770664093453 // ln(2π)

// sampleChunk is the E-step work unit: a fixed slice of samples, a
// multiple of the 8-lane SIMD block, small enough to spread restarts'
// leftover cores and large enough to amortize dispatch.
const sampleChunk = 1024

// EMConfig tunes one EM fit.
type EMConfig struct {
	// K is the number of mixture components.
	K int
	// MaxIter bounds EM iterations.
	MaxIter int
	// Tol stops iterating when the total log-likelihood improves by less
	// than Tol.
	Tol float64
	// Reg is the diagonal covariance regularization.
	Reg float64
	// InitVar is the initial shared spherical variance (Reg is added on
	// the diagonal on top of it).
	InitVar float64
	// Workers bounds the goroutines used inside the fit (E-step sample
	// chunks, M-step components). Values below 1 mean serial. Results
	// are bit-identical for every value.
	Workers int
	// Warm, when non-nil, seeds the fit from an existing model instead
	// of the spherical initializer: weights, means and covariances are
	// copied and the covariances Cholesky-factored up front. initMeans
	// is ignored (may be nil); K and the sample dimension must match the
	// model, and every covariance must still be SPD.
	Warm *EMModel
	// BatchSize, when positive, runs each iteration's E and M pass over
	// one contiguous mini-batch of at most BatchSize samples instead of
	// the full set, rotating through the fixed batch grid in iteration
	// order (iteration i uses batch i mod ⌈n/BatchSize⌉). The grid
	// depends only on n and BatchSize, so fits stay bit-identical for
	// every worker count. Mini-batch likelihoods are not comparable
	// across batches, so Tol-based early stopping is disabled: the fit
	// runs exactly MaxIter iterations — the refresh loop's bounded-
	// iteration contract.
	BatchSize int
}

// EMModel is a fitted mixture in flat form: component j's mean occupies
// Means[j*D:(j+1)*D] and its covariance Covs[j*D*D:(j+1)*D*D],
// row-major.
type EMModel struct {
	K, D    int
	Weights []float64
	Means   []float64
	Covs    []float64
	// LogLikelihood is the total training log-likelihood at the stopping
	// E-step (the restart-selection criterion).
	LogLikelihood float64
}

// EMFit runs one EM fit from the given initial means (one slice per
// component, typically from k-means++ seeding). data is not modified;
// the returned model owns its storage.
//
//mhm:deterministic
func EMFit(data [][]float64, initMeans [][]float64, cfg EMConfig) (*EMModel, error) {
	n := len(data)
	if n == 0 || cfg.K <= 0 || (cfg.Warm == nil && len(initMeans) != cfg.K) {
		return nil, fmt.Errorf("train: EMFit: %d samples, %d components, %d initial means", n, cfg.K, len(initMeans))
	}
	d := len(data[0])
	if cfg.Warm != nil && (cfg.Warm.K != cfg.K || cfg.Warm.D != d) {
		return nil, fmt.Errorf("train: EMFit: warm model is %d×%d, fit wants %d×%d", cfg.Warm.K, cfg.Warm.D, cfg.K, d)
	}
	e, err := newEM(data, initMeans, cfg)
	if err != nil {
		return nil, err
	}
	nBatches := 1
	if cfg.BatchSize > 0 && cfg.BatchSize < n {
		nBatches = chunkCount(n, cfg.BatchSize)
	}
	prevLL := math.Inf(-1)
	for iter := 0; iter < cfg.MaxIter; iter++ {
		if nBatches > 1 {
			e.bLo = (iter % nBatches) * cfg.BatchSize
			e.bHi = e.bLo + cfg.BatchSize
			if e.bHi > n {
				e.bHi = n
			}
		}
		e.eStep()
		ll := e.sumLL()
		if nBatches == 1 && iter > 0 && ll-prevLL < cfg.Tol {
			prevLL = ll
			break
		}
		prevLL = ll
		if bad := e.mStep(); bad >= 0 {
			return nil, fmt.Errorf("train: component %d: %w", bad, ErrNotSPD)
		}
	}
	m := &EMModel{
		K:             cfg.K,
		D:             d,
		Weights:       e.weight,
		Means:         e.mean,
		Covs:          e.cov,
		LogLikelihood: prevLL,
	}
	return m, nil
}

// em is the preallocated per-restart state: after newEM, an iteration
// (eStep + sumLL + mStep) allocates nothing in serial mode and only
// goroutine bookkeeping when Workers > 1.
type em struct {
	n, d, k int
	workers int
	reg     float64

	// The active sample range [bLo, bHi): the full set for batch EM,
	// one rotating contiguous mini-batch otherwise. Every kernel —
	// E-step chunks, the log-likelihood fold, the M-step sweeps and the
	// dead-component reseed — confines itself to this range, so the
	// full-batch case reproduces the historical arithmetic bit for bit.
	bLo, bHi int

	x    []float64 // n×d packed samples
	resp []float64 // n×k: log-density terms, then responsibilities in place
	ll   []float64 // per-sample log-likelihood of the current E-step

	weight []float64 // k mixing weights
	logW   []float64 // k: ln weight, refreshed each M-step
	mean   []float64 // k×d
	cov    []float64 // k×d×d row-major
	chol   []float64 // k×d×d lower-triangular factors of cov
	base   []float64 // k: d·ln(2π) + logdet, the density constant
	spd    []bool    // per-component M-step factorization outcome

	pack  []float64 // per-worker diff/y/sv panels, 16·d+8 floats each
	mdiff []float64 // per-component M-step diff scratch, k×d

	// Dispatch closures, built once so steady-state iterations do not
	// allocate even for the serial dispatcher.
	eChunk func(idx, worker int)
	mChunk func(idx, worker int)
}

// newEM packs the data and builds the initial model: the caller's means
// with uniform weights and a shared spherical covariance InitVar+Reg,
// or — warm start — the given model's weights, means and covariances,
// factored up front.
func newEM(data [][]float64, initMeans [][]float64, cfg EMConfig) (*em, error) {
	n, d, k := len(data), len(data[0]), cfg.K
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	e := &em{
		n: n, d: d, k: k,
		workers: workers,
		reg:     cfg.Reg,
		bLo:     0, bHi: n,
		x:      make([]float64, n*d),
		resp:   make([]float64, n*k),
		ll:     make([]float64, n),
		weight: make([]float64, k),
		logW:   make([]float64, k),
		mean:   make([]float64, k*d),
		cov:    make([]float64, k*d*d),
		chol:   make([]float64, k*d*d),
		base:   make([]float64, k),
		spd:    make([]bool, k),
		pack:   make([]float64, workers*(16*d+8)),
		mdiff:  make([]float64, k*d),
	}
	for i, v := range data {
		copy(e.x[i*d:(i+1)*d], v)
	}
	if w := cfg.Warm; w != nil {
		copy(e.weight, w.Weights)
		copy(e.mean, w.Means)
		copy(e.cov, w.Covs)
		for j := 0; j < k; j++ {
			if !(e.weight[j] > 0) {
				return nil, fmt.Errorf("train: warm component %d has weight %v", j, e.weight[j])
			}
			e.logW[j] = math.Log(e.weight[j])
			cholj := e.chol[j*d*d : (j+1)*d*d]
			if !cholFlat(e.cov[j*d*d:(j+1)*d*d], cholj, d) {
				return nil, fmt.Errorf("train: warm component %d: %w", j, ErrNotSPD)
			}
			e.base[j] = float64(d)*log2Pi + logDetFlat(cholj, d)
		}
	} else {
		v0 := cfg.InitVar + cfg.Reg
		for j := 0; j < k; j++ {
			copy(e.mean[j*d:(j+1)*d], initMeans[j])
			e.weight[j] = 1 / float64(k)
			e.logW[j] = math.Log(e.weight[j])
			covj := e.cov[j*d*d : (j+1)*d*d]
			for a := 0; a < d; a++ {
				covj[a*d+a] = v0
			}
			// The spherical initial covariance is SPD by construction.
			cholFlat(covj, e.chol[j*d*d:(j+1)*d*d], d)
			e.base[j] = float64(d)*log2Pi + logDetFlat(e.chol[j*d*d:(j+1)*d*d], d)
		}
	}
	e.eChunk = func(c, wi int) {
		lo := e.bLo + c*sampleChunk
		hi := lo + sampleChunk
		if hi > e.bHi {
			hi = e.bHi
		}
		e.densRange(lo, hi, wi)
	}
	e.mChunk = func(j, _ int) {
		e.spd[j] = e.mStepComponent(j)
	}
	return e, nil
}

// eStep fills resp with responsibilities and ll with per-sample
// log-likelihoods over the active range, parallel over fixed sample
// chunks.
func (e *em) eStep() {
	chunksWorker(chunkCount(e.bHi-e.bLo, sampleChunk), e.workers, e.eChunk)
}

// sumLL folds the active range's per-sample log-likelihoods in
// ascending sample order — the same order the staged E-step accumulated
// them — keeping the convergence test independent of the chunk grid.
func (e *em) sumLL() float64 {
	s := 0.0
	for _, v := range e.ll[e.bLo:e.bHi] {
		s += v
	}
	return s
}

// mStep updates weights, means and covariances from resp, parallel over
// components (their accumulations are independent straight loops, so
// per-component fan-out preserves bit-identity with the serial sweep).
// It returns the index of a component whose covariance failed to factor,
// or -1.
func (e *em) mStep() int {
	chunksWorker(e.k, e.workers, e.mChunk)
	for j, ok := range e.spd {
		if !ok {
			return j
		}
	}
	return -1
}
