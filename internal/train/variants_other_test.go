//go:build !amd64 && !arm64

package train

// fsubVariant names one dispatchable forward-substitution kernel.
type fsubVariant struct {
	name string
	fn   func(row, packed []float64, out *[8]float64)
}

// fsubVariants: targets with no SIMD kernels run only the portable
// reference, so the identity tests degenerate to self-consistency.
func fsubVariants() []fsubVariant {
	return []fsubVariant{{name: "go", fn: fsubPacked8Ref}}
}
