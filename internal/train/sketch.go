// The incremental form of the eigenmemory covariance build: a sliding
// window of raw interval vectors whose mean, per-tile sum-of-squares
// and implicit covariance operator are maintained by mini-batch updates
// instead of being rebuilt from scratch. An Update folds the entering
// samples into (and the evicted samples out of) per-dimension running
// sums over the same fixed dimension tiles as BuildCentered, so the
// steady-state cost of absorbing a batch is O(b·L) with zero
// allocations — against O(W·L) plus an L×W materialization for a full
// rebuild. The covariance is never materialized: subspace iteration
// applies it as C·v = (1/n)·Σ_s x_s (x_s·v) − μ (μ·v), the eigenfaces
// Gram trick rearranged for a ring of raw rows.
package train

import (
	"fmt"
	"sync"

	"github.com/memheatmap/mhm/internal/mat"
)

// Centered is the sliding-window centered covariance sketch behind the
// incremental model refresh. All storage is preallocated by
// NewCentered; Update is allocation-free in steady state. The held
// samples always occupy ring slots [0, Len()); slot order is the
// deterministic function of the push history (round-robin overwrite),
// not recency order.
//
// Determinism contract: for a fixed push history, every field — mean,
// sums, total variance, operator results — is bit-identical for every
// worker count. Each dimension tile owns a disjoint band of the mean,
// the sums and the ring rows, and folds batch samples in ascending
// batch index; cross-tile reductions fold in ascending tile index.
//
// The incremental sums accumulate rounding drift relative to a from-
// scratch pass over the same window. Rebuild recomputes them exactly
// from the ring contents; callers on a drift alarm should prefer a full
// retrain, which also re-derives the basis.
type Centered struct {
	l, window int
	workers   int

	n    int // samples currently held; held slots are exactly [0, n)
	head int // ring slot the next pushed sample lands in

	x     []float64 // window×l ring of raw samples, row-major by slot
	sum   []float64 // per-dimension Σ x_s[i] over held samples
	mean  []float64 // sum / n, refreshed by the owning tile each Update
	sumSq []float64 // per-tile Σ_s Σ_{i∈tile} x_s[i]² partials

	batch  [][]float64           // in-flight Update batch, read by the tile kernels
	uChunk func(idx, worker int) // prebuilt Update dispatch (alloc-free steady state)
	rChunk func(idx, worker int) // prebuilt Rebuild dispatch

	scratch sync.Pool // per-Apply t vectors, length window
}

// NewCentered returns an empty sketch over l-dimensional samples with
// the given window capacity. workers bounds the goroutines used inside
// Update/Rebuild/Apply dispatch; values below 1 mean serial, and
// results are bit-identical for every value.
func NewCentered(l, window, workers int) (*Centered, error) {
	if l <= 0 || window <= 0 {
		return nil, fmt.Errorf("train: NewCentered: l=%d window=%d", l, window)
	}
	if workers < 1 {
		workers = 1
	}
	c := &Centered{
		l: l, window: window, workers: workers,
		x:     make([]float64, window*l),
		sum:   make([]float64, l),
		mean:  make([]float64, l),
		sumSq: make([]float64, chunkCount(l, dimTile)),
	}
	c.uChunk = func(idx, _ int) {
		lo := idx * dimTile
		hi := lo + dimTile
		if hi > c.l {
			hi = c.l
		}
		c.updateTile(lo, hi, idx)
	}
	c.rChunk = func(idx, _ int) {
		lo := idx * dimTile
		hi := lo + dimTile
		if hi > c.l {
			hi = c.l
		}
		c.rebuildTile(lo, hi, idx)
	}
	c.scratch.New = func() any {
		s := make([]float64, window)
		return &s
	}
	return c, nil
}

// Len returns the number of samples currently held (≤ Window).
func (c *Centered) Len() int { return c.n }

// Window returns the sliding-window capacity.
func (c *Centered) Window() int { return c.window }

// Dim returns the sample dimension L (the SymOp contract).
func (c *Centered) Dim() int { return c.l }

// Mean returns the current window mean. The slice aliases internal
// state and is only valid until the next Update/Rebuild; callers that
// keep it must copy.
func (c *Centered) Mean() []float64 { return c.mean }

// Sample returns held sample s (0 ≤ s < Len) as a view into the ring.
// Only valid until an Update overwrites the slot.
func (c *Centered) Sample(s int) []float64 { return c.x[s*c.l : (s+1)*c.l] }

// Update folds a batch of samples into the window, evicting the oldest
// entries once the ring is full. Steady state allocates nothing; the
// cost is O(len(batch)·L) regardless of the window size.
//
//mhm:deterministic
func (c *Centered) Update(batch [][]float64) error {
	for i, v := range batch {
		if len(v) != c.l {
			return fmt.Errorf("train: Centered.Update: sample %d has %d dims, want %d", i, len(v), c.l)
		}
	}
	if len(batch) == 0 {
		return nil
	}
	c.batch = batch
	chunksWorker(chunkCount(c.l, dimTile), c.workers, c.uChunk)
	c.batch = nil
	c.n += len(batch)
	if c.n > c.window {
		c.n = c.window
	}
	c.head = (c.head + len(batch)) % c.window
	return nil
}

// updateTile folds the in-flight batch into dimension band [lo, hi):
// per batch sample in ascending index, the evicted slot's contribution
// leaves the running sums before the entering sample's arrives, then
// the band's mean is re-derived with the same division as buildTile.
//
//mhm:hotpath
func (c *Centered) updateTile(lo, hi, idx int) {
	sq := c.sumSq[idx]
	for b, v := range c.batch {
		slot := (c.head + b) % c.window
		row := c.x[slot*c.l : (slot+1)*c.l]
		if c.n+b >= c.window { // slot holds a live sample: evict it
			for i := lo; i < hi; i++ {
				old := row[i]
				c.sum[i] -= old
				sq -= old * old
			}
		}
		for i := lo; i < hi; i++ {
			xv := v[i]
			row[i] = xv
			c.sum[i] += xv
			sq += xv * xv
		}
	}
	c.sumSq[idx] = sq
	nn := c.n + len(c.batch)
	if nn > c.window {
		nn = c.window
	}
	inv := float64(nn)
	for i := lo; i < hi; i++ {
		c.mean[i] = c.sum[i] / inv
	}
}

// Rebuild recomputes the running sums, the per-tile variance partials
// and the mean exactly from the ring contents (ascending slot order),
// discarding the rounding drift the incremental updates accumulate.
//
//mhm:deterministic
func (c *Centered) Rebuild() {
	chunksWorker(chunkCount(c.l, dimTile), c.workers, c.rChunk)
}

// rebuildTile is the exact from-scratch pass over band [lo, hi).
func (c *Centered) rebuildTile(lo, hi, idx int) {
	for i := lo; i < hi; i++ {
		c.sum[i] = 0
	}
	sq := 0.0
	for s := 0; s < c.n; s++ {
		row := c.x[s*c.l : (s+1)*c.l]
		for i := lo; i < hi; i++ {
			xv := row[i]
			c.sum[i] += xv
			sq += xv * xv
		}
	}
	c.sumSq[idx] = sq
	inv := float64(c.n)
	for i := lo; i < hi; i++ {
		c.mean[i] = c.sum[i] / inv
	}
}

// TotalVar returns tr(C) = Σ‖x‖²/n − ‖μ‖² over the held window,
// clamped at zero against rounding. Partial sums fold in ascending
// tile index.
//
//mhm:deterministic
func (c *Centered) TotalVar() float64 {
	if c.n == 0 {
		return 0
	}
	s := 0.0
	for _, v := range c.sumSq {
		s += v
	}
	tv := s/float64(c.n) - mat.Dot(c.mean, c.mean)
	if tv < 0 {
		tv = 0
	}
	return tv
}

// Apply computes dst = C·src for the window covariance
// C = (1/n)·Σ x xᵀ − μ μᵀ without materializing C, folding samples in
// ascending slot order. Safe for concurrent use: the per-call scratch
// comes from an internal pool, so steady-state iteration does not
// allocate. Together with Dim this makes *Centered a mat.SymOp, feeding
// warm-started subspace iteration directly.
//
//mhm:deterministic
func (c *Centered) Apply(dst, src []float64) {
	for i := range dst {
		dst[i] = 0
	}
	if c.n == 0 {
		return
	}
	tp := c.scratch.Get().(*[]float64)
	defer c.scratch.Put(tp)
	t := *tp
	for s := 0; s < c.n; s++ {
		t[s] = mat.Dot(c.x[s*c.l:(s+1)*c.l], src)
	}
	for s := 0; s < c.n; s++ {
		mat.Axpy(t[s], c.x[s*c.l:(s+1)*c.l], dst)
	}
	ms := mat.Dot(c.mean, src)
	inv := 1 / float64(c.n)
	for i := range dst {
		dst[i] = dst[i]*inv - c.mean[i]*ms
	}
}
