//go:build amd64

package train

// fsubPacked8 subtracts eight packed dot products from the lane
// accumulators: out[k] -= Σ_i row[i]·packed[i*8+k], one forward-
// substitution row for eight samples at once. The SSE2 kernel (baseline
// amd64, no feature detection needed) gives each sample its own SIMD
// lane; every lane multiplies then subtracts in ascending index order,
// exactly the scalar sequence s -= L[i][t]·y[t], so the solve stays
// bit-identical to the staged path. len(packed) must be 8·len(row).
//
//mhm:hotpath
//go:noescape
func fsubPacked8(row, packed []float64, out *[8]float64)
