//go:build amd64

package train

import "github.com/memheatmap/mhm/internal/cpufeat"

// fsubPacked8SSE2 is the amd64 baseline kernel (SSE2 needs no feature
// detection): each sample owns one SIMD lane; every lane multiplies
// then subtracts in ascending index order, exactly the scalar
// sequence s -= L[i][t]·y[t], so the solve stays bit-identical to the
// staged path.
//
//mhm:hotpath
//go:noescape
func fsubPacked8SSE2(row, packed []float64, out *[8]float64)

// fsubPacked8AVX2 is the 4-lane-wide variant: two YMM accumulators
// cover all eight lanes with separate VMULPD/VSUBPD (no FMA — fused
// rounding would break the bit-identity contract detorder enforces).
//
//mhm:hotpath
//go:noescape
func fsubPacked8AVX2(row, packed []float64, out *[8]float64)

func init() {
	if cpufeat.X86.HasAVX2 {
		kernelName = "avx2"
		fsubPacked8 = fsubPacked8AVX2
	} else {
		kernelName = "sse2"
		fsubPacked8 = fsubPacked8SSE2
	}
}
