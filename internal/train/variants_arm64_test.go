package train

import "github.com/memheatmap/mhm/internal/cpufeat"

// fsubVariant names one dispatchable forward-substitution kernel.
type fsubVariant struct {
	name string
	fn   func(row, packed []float64, out *[8]float64)
}

// fsubVariants lists every fsub kernel this arm64 host can execute.
func fsubVariants() []fsubVariant {
	vs := []fsubVariant{{name: "go", fn: fsubPacked8Ref}}
	if cpufeat.ARM64.HasASIMD {
		vs = append(vs, fsubVariant{name: "neon", fn: fsubPacked8NEON})
	}
	return vs
}
