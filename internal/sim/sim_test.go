package sim

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var fired []int64
	for _, tm := range []int64{50, 10, 30, 20, 40} {
		tm := tm
		if err := e.At(tm, func(now int64) { fired = append(fired, now) }); err != nil {
			t.Fatal(err)
		}
	}
	n, err := e.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("executed %d, want 5", n)
	}
	if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
		t.Errorf("out of order: %v", fired)
	}
	if e.Now() != 1000 {
		t.Errorf("clock = %d, want horizon 1000", e.Now())
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if err := e.At(5, func(int64) { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []int64
	var step func(now int64)
	step = func(now int64) {
		times = append(times, now)
		if now < 50 {
			if err := e.After(10, step); err != nil {
				t.Error(err)
			}
		}
	}
	if err := e.After(10, step); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(1000); err != nil {
		t.Fatal(err)
	}
	want := []int64{10, 20, 30, 40, 50}
	if len(times) != len(want) {
		t.Fatalf("times = %v", times)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("times[%d] = %d, want %d", i, times[i], want[i])
		}
	}
}

func TestPastSchedulingRejected(t *testing.T) {
	e := NewEngine()
	if err := e.At(100, func(int64) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(1000); err != nil {
		t.Fatal(err)
	}
	if err := e.At(50, func(int64) {}); !errors.Is(err, ErrPast) {
		t.Errorf("At in past: %v", err)
	}
	if err := e.After(-1, func(int64) {}); !errors.Is(err, ErrPast) {
		t.Errorf("negative After: %v", err)
	}
}

func TestHorizonLeavesFutureEventsQueued(t *testing.T) {
	e := NewEngine()
	var fired []int64
	for _, tm := range []int64{5, 15, 25} {
		if err := e.At(tm, func(now int64) { fired = append(fired, now) }); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Run(20); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || e.Pending() != 1 {
		t.Errorf("fired=%v pending=%d", fired, e.Pending())
	}
	if e.Now() != 20 {
		t.Errorf("clock = %d", e.Now())
	}
	// Resume past the horizon.
	if _, err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 {
		t.Errorf("after resume fired=%v", fired)
	}
}

func TestEventAtHorizonDoesNotFire(t *testing.T) {
	e := NewEngine()
	fired := false
	if err := e.At(10, func(int64) { fired = true }); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(10); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("event at horizon fired (horizon is exclusive)")
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d", e.Pending())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := int64(1); i <= 10; i++ {
		if err := e.At(i, func(int64) {
			count++
			if count == 3 {
				e.Stop()
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	n, err := e.Run(100)
	if !errors.Is(err, ErrStopped) {
		t.Errorf("err = %v, want ErrStopped", err)
	}
	if n != 3 || count != 3 {
		t.Errorf("executed %d, count %d", n, count)
	}
	// Run again resumes from where it stopped.
	n2, err := e.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 7 {
		t.Errorf("resumed executed %d, want 7", n2)
	}
}

func TestClockAdvancesMonotonicallyProperty(t *testing.T) {
	// Property: handlers observe a non-decreasing clock regardless of the
	// insertion order of events.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var last int64 = -1
		ok := true
		for i := 0; i < 100; i++ {
			tm := int64(rng.Intn(1000))
			if err := e.At(tm, func(now int64) {
				if now < last {
					ok = false
				}
				last = now
			}); err != nil {
				return false
			}
		}
		if _, err := e.Run(2000); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
