// Package sim provides the discrete-event simulation engine underneath
// the monitored core: a microsecond-resolution clock and a time-ordered
// event queue. The RTOS scheduler, workload models and monitoring
// harness all run on top of it.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
)

// ErrPast is returned when an event is scheduled before the current time.
var ErrPast = errors.New("sim: event scheduled in the past")

// ErrStopped is returned by Run when the engine was stopped explicitly.
var ErrStopped = errors.New("sim: stopped")

// Handler is invoked when its event fires; now is the simulation time.
type Handler func(now int64)

type event struct {
	time int64
	seq  uint64 // tie-break: FIFO among same-time events
	fn   Handler
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator.
type Engine struct {
	now     int64
	seq     uint64
	queue   eventQueue
	stopped bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time in microseconds.
func (e *Engine) Now() int64 { return e.now }

// At schedules fn to run at absolute time t.
func (e *Engine) At(t int64, fn Handler) error {
	if t < e.now {
		return fmt.Errorf("sim: At(%d) with clock at %d: %w", t, e.now, ErrPast)
	}
	e.seq++
	heap.Push(&e.queue, &event{time: t, seq: e.seq, fn: fn})
	return nil
}

// After schedules fn to run delay microseconds from now.
func (e *Engine) After(delay int64, fn Handler) error {
	if delay < 0 {
		return fmt.Errorf("sim: After(%d): %w", delay, ErrPast)
	}
	return e.At(e.now+delay, fn)
}

// Stop makes Run return after the current handler completes.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Run executes events in time order until the queue empties, the clock
// passes horizon (exclusive), or Stop is called. It returns the number of
// events executed. Events scheduled at or after horizon stay queued.
func (e *Engine) Run(horizon int64) (int, error) {
	e.stopped = false
	executed := 0
	for len(e.queue) > 0 {
		if e.stopped {
			return executed, ErrStopped
		}
		next := e.queue[0]
		if next.time >= horizon {
			// Park the clock at the horizon so a subsequent Run resumes
			// cleanly.
			e.now = horizon
			return executed, nil
		}
		heap.Pop(&e.queue)
		e.now = next.time
		next.fn(next.time)
		executed++
	}
	if e.now < horizon {
		e.now = horizon
	}
	return executed, nil
}
