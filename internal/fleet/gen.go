// The seeded fleet workload generator. Every value it produces — cell
// counts, arrival jitter, per-stream phase — is a stateless hash of
// (seed, stream, interval, cell), so the generator needs no per-stream
// RNG state at 100k streams and any component can regenerate any
// interval's vector independently: the property that lets the simulator
// score admitted intervals in parallel while staying bit-reproducible.
package fleet

import (
	"fmt"
	"math"

	"github.com/memheatmap/mhm/internal/core"
	"github.com/memheatmap/mhm/internal/gmm"
	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/pca"
)

// u01 maps a hash to the unit interval with 53-bit resolution.
//
//mhm:deterministic
func u01(h uint64) float64 {
	return float64(h>>11) * (1.0 / (1 << 53))
}

// Workload generates per-stream interval heat maps for the simulator:
// a structured base access pattern (a few hot code/data banks with a
// decaying tail, the shape of the paper's Fig. 1 heat maps) modulated
// per stream and dithered per interval.
type Workload struct {
	Seed int64
	Def  heatmap.Def
	base []float64
	peak float64
}

// NewWorkload builds a generator over the given region.
func NewWorkload(seed int64, def heatmap.Def) (*Workload, error) {
	if err := def.Validate(); err != nil {
		return nil, err
	}
	w := &Workload{Seed: seed, Def: def, base: make([]float64, def.Cells())}
	cells := len(w.base)
	for c := range w.base {
		// Three hot banks with exponential falloff over a cold floor.
		v := 8.0
		for _, hot := range []int{0, cells / 3, 2 * cells / 3} {
			d := float64(c - hot)
			v += 120 * math.Exp(-d*d/float64(cells))
		}
		w.base[c] = v
		if v > w.peak {
			w.peak = v
		}
	}
	return w, nil
}

// key derives the per-(stream, interval) hash chain root.
//
//mhm:deterministic
func (w *Workload) key(stream, interval int) uint64 {
	return splitmix64(splitmix64(uint64(w.Seed)^0x6d686d666c656574) ^
		splitmix64(uint64(stream)*0x9e3779b97f4a7c15+uint64(interval)))
}

// VectorInto writes the stream's interval vector (integral cell counts,
// the exact values HeatMap.Vector would produce for the same interval).
// Anomalous intervals invert the bank pattern — activity concentrated
// where training never saw it — so they land far from the eigenmemory
// subspace.
//
//mhm:deterministic
func (w *Workload) VectorInto(dst []float64, stream, interval int, anomalous bool) {
	k := w.key(stream, interval)
	// Per-stream gain on odd cells: persistent device-to-device
	// variation the model must absorb.
	gain := 1 + 0.25*u01(splitmix64(uint64(stream)+0x5d4))
	for c := range dst {
		b := w.base[c]
		if anomalous {
			b = w.peak - b
		}
		if c%2 == 1 {
			b *= gain
		}
		noise := 12 * u01(splitmix64(k+uint64(c)))
		dst[c] = math.Floor(b + noise)
	}
}

// HeatMap materializes one interval as a heat map (counts saturate the
// uint32 range like the hardware counters).
func (w *Workload) HeatMap(stream, interval int, anomalous bool) (*heatmap.HeatMap, error) {
	m, err := heatmap.New(w.Def)
	if err != nil {
		return nil, err
	}
	v := make([]float64, w.Def.Cells())
	w.VectorInto(v, stream, interval, anomalous)
	for c, x := range v {
		if x < 0 {
			x = 0
		}
		if x > math.MaxUint32 {
			x = math.MaxUint32
		}
		m.Counts[c] = uint32(x)
	}
	return m, nil
}

// jitter returns the stream's arrival jitter for one emission in
// [-bound, +bound] microseconds.
//
//mhm:deterministic
func (w *Workload) jitter(stream, interval int, bound int64) int64 {
	if bound <= 0 {
		return 0
	}
	h := splitmix64(w.key(stream, interval) ^ 0x1ee7)
	return int64(h%uint64(2*bound+1)) - bound
}

// TrainDetector fits the fleet's base detector on clean draws from the
// generator: trainN maps sampled across pseudo-streams plus a held-out
// calibration set, with the small model shape the fleet benchmarks use
// (the detection-quality experiments own the full-size models).
func (w *Workload) TrainDetector(trainN, calibN int) (*core.Detector, error) {
	if trainN < 2 || calibN < 1 {
		return nil, fmt.Errorf("fleet: training set %d/%d: %w", trainN, calibN, ErrConfig)
	}
	mk := func(n, phase int) ([]*heatmap.HeatMap, error) {
		maps := make([]*heatmap.HeatMap, n)
		for i := range maps {
			m, err := w.HeatMap(i%64, phase+i, false)
			if err != nil {
				return nil, err
			}
			maps[i] = m
		}
		return maps, nil
	}
	trainSet, err := mk(trainN, 0)
	if err != nil {
		return nil, err
	}
	calib, err := mk(calibN, trainN)
	if err != nil {
		return nil, err
	}
	return core.Train(trainSet, calib, core.Config{
		PCA: pca.Options{Components: 6},
		GMM: gmm.Options{Components: 3, Restarts: 2},
	})
}
