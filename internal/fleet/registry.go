// The per-stream model registry: which trained model scores which
// stream, and when a refreshed model takes over. Models are immutable
// once built (copy-on-write: a refresh builds a new *Model and swaps
// the pointer), so readers never see a half-updated model and a swap
// never drops or reorders submissions — it only changes which engine
// scores the next interval.
//
// Swaps are scheduled against the stream's own interval index, not the
// wall clock: SwapAt(stream, k, m) means "intervals k and later score
// under m". Because exactly one shard worker assigns a stream's indices
// (the routing affinity contract), the boundary is exact — the fleet's
// alarms under a concurrent swap are bit-identical to a serial run that
// applies the same swap at the same boundary, which is what the race
// stress test pins.
package fleet

import (
	"errors"
	"fmt"
	"sync"

	"github.com/memheatmap/mhm/internal/core"
	"github.com/memheatmap/mhm/internal/score"
)

// ErrSwapPending reports a SwapAt scheduled while a different boundary
// is still pending for the stream. Exactly one swap may be in flight
// per stream: stacking a second one behind it made the applied model a
// function of scheduling order relative to the stream's progress, which
// raced with the refresh loop's own retries. Callers that want
// latest-wins semantics use SwapAtCoalesce.
var ErrSwapPending = errors.New("fleet: swap already pending for stream")

// Model is one immutable scoring configuration: the fused engine and
// the calibrated decision threshold. Version identifies the model in
// traces and tests; refreshes should increment it.
type Model struct {
	eng     *score.Engine
	theta   float64
	version int
}

// NewModel derives a fleet model from a trained detector at the given
// threshold quantile (0 selects the default θ1 = 0.01).
func NewModel(det *core.Detector, quantile float64, version int) (*Model, error) {
	if det == nil {
		return nil, fmt.Errorf("fleet: nil detector: %w", ErrConfig)
	}
	if quantile == 0 {
		quantile = 0.01
	}
	theta, err := det.Threshold(quantile)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	eng, err := det.ScoreEngine()
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	return &Model{eng: eng, theta: theta, version: version}, nil
}

// Engine exposes the model's fused scoring engine.
func (m *Model) Engine() *score.Engine { return m.eng }

// Theta returns the calibrated decision threshold.
func (m *Model) Theta() float64 { return m.theta }

// Version returns the model's refresh generation.
func (m *Model) Version() int { return m.version }

// scheduledSwap is one pending hot swap: from interval `at` onward the
// stream scores under m.
type scheduledSwap struct {
	at int
	m  *Model
}

// regSlot is one stream's registry entry. The mutex fences the owning
// worker's reads against concurrent swap scheduling; it is held only
// for pointer manipulation, never across scoring. At most one swap is
// pending per stream (hasPending): SwapAt rejects a second boundary,
// SwapAtCoalesce replaces it.
type regSlot struct {
	mu         sync.Mutex
	cur        *Model
	hasPending bool
	pending    scheduledSwap
}

// Registry holds the per-stream copy-on-write model pointers.
type Registry struct {
	slots []regSlot
}

// NewRegistry builds a registry serving `streams` streams, all starting
// on the base model.
func NewRegistry(streams int, base *Model) (*Registry, error) {
	if streams <= 0 {
		return nil, fmt.Errorf("fleet: %d streams: %w", streams, ErrConfig)
	}
	if base == nil {
		return nil, fmt.Errorf("fleet: nil base model: %w", ErrConfig)
	}
	r := &Registry{slots: make([]regSlot, streams)}
	for i := range r.slots {
		r.slots[i].cur = base
	}
	return r, nil
}

// Streams reports the registry's stream count.
func (r *Registry) Streams() int { return len(r.slots) }

// Swap replaces a stream's model immediately: the next interval the
// owning worker scores uses m. The boundary is whatever interval
// happens to be next — deterministic relative to the stream's own
// sequence, but not coordinated with a specific index; use SwapAt for
// a reproducible boundary.
func (r *Registry) Swap(stream int, m *Model) error {
	if err := r.check(stream, m); err != nil {
		return err
	}
	sl := &r.slots[stream]
	sl.mu.Lock()
	sl.cur = m
	sl.hasPending = false
	sl.mu.Unlock()
	return nil
}

// SwapAt schedules a hot swap at an exact interval boundary: intervals
// with per-stream index >= at score under m. Scheduling the same
// boundary twice replaces the earlier model (a deterministic coalesce);
// scheduling a different boundary while one is still pending returns
// ErrSwapPending — see SwapAtCoalesce for latest-wins replacement.
// Boundaries the stream has already passed apply to its very next
// interval.
func (r *Registry) SwapAt(stream, at int, m *Model) error {
	return r.swapAt(stream, at, m, false)
}

// SwapAtCoalesce is SwapAt with latest-wins semantics: a pending swap
// for the stream, whatever its boundary, is replaced by this one. The
// refresh loop uses it so a slow stream that never reached the previous
// generation's boundary jumps straight to the newest model instead of
// wedging the schedule.
func (r *Registry) SwapAtCoalesce(stream, at int, m *Model) error {
	return r.swapAt(stream, at, m, true)
}

func (r *Registry) swapAt(stream, at int, m *Model, coalesce bool) error {
	if err := r.check(stream, m); err != nil {
		return err
	}
	if at < 0 {
		return fmt.Errorf("fleet: swap at interval %d: %w", at, ErrConfig)
	}
	sl := &r.slots[stream]
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if sl.hasPending && sl.pending.at != at && !coalesce {
		return fmt.Errorf("fleet: stream %d has a swap pending at interval %d, refusing boundary %d: %w",
			stream, sl.pending.at, at, ErrSwapPending)
	}
	sl.pending = scheduledSwap{at: at, m: m}
	sl.hasPending = true
	return nil
}

// SwapAllAt schedules the same boundary swap for every stream — the
// fleet-wide model refresh. Strict per-stream semantics: any stream
// with a different boundary still pending fails the whole call with
// ErrSwapPending (streams already scheduled keep the new swap).
func (r *Registry) SwapAllAt(at int, m *Model) error {
	for s := range r.slots {
		if err := r.SwapAt(s, at, m); err != nil {
			return err
		}
	}
	return nil
}

// SwapAllAtCoalesce is SwapAllAt with latest-wins per-stream semantics.
func (r *Registry) SwapAllAtCoalesce(at int, m *Model) error {
	for s := range r.slots {
		if err := r.SwapAtCoalesce(s, at, m); err != nil {
			return err
		}
	}
	return nil
}

// ModelFor resolves the model scoring the stream's interval `idx`,
// applying any scheduled swaps whose boundary has arrived. It must be
// called with the stream's indices in ascending order by the single
// owner that assigns them (the shard worker, or the simulator's
// sequential decision pass); under that contract swap boundaries are
// exact and the resolution is deterministic.
//
//mhm:deterministic
func (r *Registry) ModelFor(stream, idx int) *Model {
	sl := &r.slots[stream]
	sl.mu.Lock()
	if sl.hasPending && sl.pending.at <= idx {
		sl.cur = sl.pending.m
		sl.hasPending = false
	}
	m := sl.cur
	sl.mu.Unlock()
	return m
}

// Current returns the stream's live model without advancing scheduled
// swaps — the read-side view for status exporters.
func (r *Registry) Current(stream int) (*Model, error) {
	if stream < 0 || stream >= len(r.slots) {
		return nil, fmt.Errorf("fleet: stream %d out of [0,%d): %w", stream, len(r.slots), ErrConfig)
	}
	sl := &r.slots[stream]
	sl.mu.Lock()
	m := sl.cur
	sl.mu.Unlock()
	return m, nil
}

func (r *Registry) check(stream int, m *Model) error {
	if stream < 0 || stream >= len(r.slots) {
		return fmt.Errorf("fleet: stream %d out of [0,%d): %w", stream, len(r.slots), ErrConfig)
	}
	if m == nil {
		return fmt.Errorf("fleet: nil model: %w", ErrConfig)
	}
	return nil
}
