// Obs-driven shard autoscaling. The autoscaler closes the loop between
// the fleet's observability layer and its topology: the controller
// publishes queue occupancy and interval-latency gauges each poll
// window, and the autoscaler turns those gauges into a target shard
// count with hysteresis and a cooldown, so a transient spike does not
// thrash the shard set. The decision is a pure function of (virtual
// time, gauge values, previous decision time) — the simulator replays
// it bit-identically.
package fleet

import (
	"fmt"

	"github.com/memheatmap/mhm/internal/obs"
)

// ScaleConfig tunes the autoscaler.
type ScaleConfig struct {
	// MinShards and MaxShards clamp the topology (defaults 1 and 64).
	MinShards, MaxShards int
	// HighQueueFrac scales up when the fullest shard queue exceeds this
	// fraction of capacity (default 0.5); LowQueueFrac scales down when
	// it falls below (default 0.1). Hysteresis requires Low < High.
	HighQueueFrac, LowQueueFrac float64
	// HighLatencyMicros scales up when the window's p99 interval latency
	// exceeds it (default 4× LowLatencyMicros); LowLatencyMicros gates
	// scale-down (default 1000µs). Both in virtual microseconds.
	HighLatencyMicros, LowLatencyMicros float64
	// CooldownMicros is the minimum virtual time between resizes
	// (default 50_000µs = 5 monitoring intervals).
	CooldownMicros int64
}

func (c *ScaleConfig) fill() error {
	if c.MinShards == 0 {
		c.MinShards = 1
	}
	if c.MaxShards == 0 {
		c.MaxShards = 64
	}
	if c.HighQueueFrac == 0 {
		c.HighQueueFrac = 0.5
	}
	if c.LowQueueFrac == 0 {
		c.LowQueueFrac = 0.1
	}
	if c.LowLatencyMicros == 0 {
		c.LowLatencyMicros = 1000
	}
	if c.HighLatencyMicros == 0 {
		c.HighLatencyMicros = 4 * c.LowLatencyMicros
	}
	if c.CooldownMicros == 0 {
		c.CooldownMicros = 50_000
	}
	if c.MinShards < 1 || c.MaxShards < c.MinShards {
		return fmt.Errorf("fleet: shard bounds [%d,%d]: %w", c.MinShards, c.MaxShards, ErrConfig)
	}
	if c.LowQueueFrac >= c.HighQueueFrac || c.LowLatencyMicros >= c.HighLatencyMicros {
		return fmt.Errorf("fleet: autoscale hysteresis bands inverted: %w", ErrConfig)
	}
	return nil
}

// Autoscaler derives shard-count decisions from the fleet gauges. It is
// not internally synchronized: one control goroutine (or the simulator)
// owns it.
type Autoscaler struct {
	cfg        ScaleConfig
	queueFrac  *obs.Gauge // fleet.queue_frac_max
	p99Latency *obs.Gauge // fleet.p99_interval_micros
	lastResize int64
	resized    bool
}

// NewAutoscaler builds an autoscaler reading the fleet gauges from reg
// (a nil registry yields nil gauges, which read as 0 — the autoscaler
// then never scales, matching "no observability, no decisions").
func NewAutoscaler(cfg ScaleConfig, reg *obs.Registry) (*Autoscaler, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	return &Autoscaler{
		cfg:        cfg,
		queueFrac:  reg.Gauge("fleet.queue_frac_max"),
		p99Latency: reg.Gauge("fleet.p99_interval_micros"),
	}, nil
}

// Config returns the filled configuration.
func (a *Autoscaler) Config() ScaleConfig { return a.cfg }

// Decide returns the target shard count given the current topology and
// the gauge values at virtual time now, with "" or a reason string
// explaining the change. A target equal to cur means no resize. Scale
// up grows by half the current count, scale down shrinks by a quarter —
// fast reaction to overload, gentle decay back.
//
//mhm:deterministic
func (a *Autoscaler) Decide(now int64, cur int) (int, string) {
	if a.resized && now-a.lastResize < a.cfg.CooldownMicros {
		return cur, ""
	}
	qf := a.queueFrac.Value()
	p99 := a.p99Latency.Value()
	target := cur
	reason := ""
	switch {
	case qf >= a.cfg.HighQueueFrac || p99 >= a.cfg.HighLatencyMicros:
		step := cur / 2
		if step < 1 {
			step = 1
		}
		target = cur + step
		reason = fmt.Sprintf("scale-up queue_frac=%.3f p99=%.1f", qf, p99)
	case qf <= a.cfg.LowQueueFrac && p99 <= a.cfg.LowLatencyMicros:
		step := cur / 4
		if step < 1 {
			step = 1
		}
		target = cur - step
		reason = fmt.Sprintf("scale-down queue_frac=%.3f p99=%.1f", qf, p99)
	}
	if target > a.cfg.MaxShards {
		target = a.cfg.MaxShards
	}
	if target < a.cfg.MinShards {
		target = a.cfg.MinShards
	}
	if target == cur {
		return cur, ""
	}
	a.lastResize = now
	a.resized = true
	return target, reason
}
