// Admission control for the fleet controller. The sharded pipeline
// answers overload with back-pressure (Submit blocks); a fleet serving
// 100k independent device streams cannot let one slow shard stall every
// monitor, so the controller sheds instead — and it sheds fairly per
// stream, not per shard: a stream that already has its share of work in
// flight is rejected before an idle stream ever is, so a hot device
// cannot starve the quiet ones that share its shard.
package fleet

// Shed reasons, recorded in the decision trace and the shed counter.
// Ordered by severity: queue-full is a hard limit, stream-cap and
// high-water are fairness decisions.
const (
	// ShedQueueFull: the shard queue is at capacity; nothing is admitted.
	ShedQueueFull = "queue-full"
	// ShedStreamCap: the stream already has MaxPerStream intervals in
	// flight; admitting more would let it monopolize the queue.
	ShedStreamCap = "stream-cap"
	// ShedHighWater: the shard queue is above the high-water mark, where
	// only streams with nothing in flight are admitted — the per-stream
	// fairness rule under overload.
	ShedHighWater = "high-water"
)

// admitVerdict is the fleet's single admission decision, shared by the
// live controller and the simulator so both shed identically. It
// inspects the target shard's queue occupancy (qlen of qcap), the
// submitting stream's in-flight count against its cap, and the
// high-water mark above which only idle streams are admitted. The
// returned reason is "" when the submission is admitted.
//
//mhm:deterministic
func admitVerdict(qlen, qcap, inflight, streamCap, highWater int) string {
	if qlen >= qcap {
		return ShedQueueFull
	}
	if inflight >= streamCap {
		return ShedStreamCap
	}
	if qlen >= highWater && inflight > 0 {
		return ShedHighWater
	}
	return ""
}

// highWaterMark derives the occupancy threshold for the fairness rule
// from the queue capacity and the configured fraction.
//
//mhm:deterministic
func highWaterMark(qcap int, frac float64) int {
	hw := int(frac * float64(qcap))
	if hw < 1 {
		hw = 1
	}
	if hw > qcap {
		hw = qcap
	}
	return hw
}
