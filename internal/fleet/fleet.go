// Package fleet is the fleet-scale detection control plane: it serves
// the paper's per-device memory-heat-map detection for up to 100k+
// independent device streams. Where pipeline.Sharded proved the
// stream→shard affinity and back-pressure mechanics for one fixed pool,
// the fleet controller adds the cluster-shaped concerns of a serving
// system — a per-stream model registry with copy-on-write hot swap
// (registry.go), admission control with per-stream-fair overload
// shedding (admission.go), consistent routing over a resizable shard
// set (router.go), and obs-driven shard autoscaling (autoscale.go) —
// plus the deterministic simulator (sim.go) that makes every one of
// those decisions bit-reproducible and assertable.
package fleet

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/memheatmap/mhm/internal/alarm"
	"github.com/memheatmap/mhm/internal/core"
	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/obs"
	"github.com/memheatmap/mhm/internal/score"
)

// ErrConfig wraps invalid fleet configuration or inputs.
var ErrConfig = errors.New("fleet: invalid configuration")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("fleet: controller closed")

// Config tunes the live controller.
type Config struct {
	// Shards is the initial worker count (default GOMAXPROCS, capped at
	// the stream count).
	Shards int
	// QueueDepth is the per-shard queue capacity (default 128). Negative
	// values are rejected: a fleet must state its capacity, not
	// silently inherit one.
	QueueDepth int
	// MaxPerStream caps one stream's in-flight intervals (default 4) —
	// the per-stream fairness share under load.
	MaxPerStream int
	// HighWaterFrac is the queue occupancy fraction above which only
	// streams with nothing in flight are admitted (default 0.75).
	HighWaterFrac float64
	// Quantile selects the calibrated threshold (default 0.01 = θ1).
	Quantile float64
	// Alarm configures per-stream debouncing (zero value = defaults).
	Alarm alarm.Config
	// Metrics, when non-nil, installs the fleet metric set (see
	// fleetMetrics; names are frozen by a golden schema test).
	Metrics *obs.Registry
	// Scale, when non-nil, enables PollScale-driven autoscaling.
	Scale *ScaleConfig
}

func (c *Config) fill(streams int) error {
	if c.Shards == 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.Shards < 0 {
		return fmt.Errorf("fleet: %d shards: %w", c.Shards, ErrConfig)
	}
	if c.Shards > streams {
		c.Shards = streams
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 128
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf("fleet: queue depth %d: %w", c.QueueDepth, ErrConfig)
	}
	if c.MaxPerStream == 0 {
		c.MaxPerStream = 4
	}
	if c.MaxPerStream < 0 {
		return fmt.Errorf("fleet: per-stream cap %d: %w", c.MaxPerStream, ErrConfig)
	}
	if c.HighWaterFrac == 0 {
		c.HighWaterFrac = 0.75
	}
	if c.HighWaterFrac < 0 || c.HighWaterFrac > 1 {
		return fmt.Errorf("fleet: high-water fraction %g: %w", c.HighWaterFrac, ErrConfig)
	}
	if c.Quantile == 0 {
		c.Quantile = 0.01
	}
	return nil
}

// fleetMetrics is the controller's frozen metric set; the golden schema
// test pins these names so dashboards cannot break silently. All
// metrics are fleet-aggregate — per-shard names would churn under
// autoscaling.
type fleetMetrics struct {
	submitted *obs.Counter // fleet.submitted
	admitted  *obs.Counter // fleet.admitted
	shed      *obs.Counter // fleet.shed
	anomalous *obs.Counter // fleet.anomalous
	swaps     *obs.Counter // fleet.swaps
	resizes   *obs.Counter // fleet.resizes
	raised    *obs.Counter // fleet.alarms_raised
	cleared   *obs.Counter // fleet.alarms_cleared

	shards    *obs.Gauge // fleet.shards
	streams   *obs.Gauge // fleet.streams
	inflight  *obs.Gauge // fleet.inflight
	queueFrac *obs.Gauge // fleet.queue_frac_max
	p99       *obs.Gauge // fleet.p99_interval_micros

	interval *obs.Histogram // fleet.interval_micros
	delivery *obs.Histogram // fleet.alarm_delivery_micros
}

func newFleetMetrics(reg *obs.Registry) fleetMetrics {
	return fleetMetrics{
		submitted: reg.Counter("fleet.submitted"),
		admitted:  reg.Counter("fleet.admitted"),
		shed:      reg.Counter("fleet.shed"),
		anomalous: reg.Counter("fleet.anomalous"),
		swaps:     reg.Counter("fleet.swaps"),
		resizes:   reg.Counter("fleet.resizes"),
		raised:    reg.Counter("fleet.alarms_raised"),
		cleared:   reg.Counter("fleet.alarms_cleared"),
		shards:    reg.Gauge("fleet.shards"),
		streams:   reg.Gauge("fleet.streams"),
		inflight:  reg.Gauge("fleet.inflight"),
		queueFrac: reg.Gauge("fleet.queue_frac_max"),
		p99:       reg.Gauge("fleet.p99_interval_micros"),
		interval:  reg.Histogram("fleet.interval_micros", obs.LatencyBuckets),
		delivery:  reg.Histogram("fleet.alarm_delivery_micros", obs.LatencyBuckets),
	}
}

// Record is one analyzed interval of one stream.
type Record struct {
	Index      int
	Start, End int64
	LogDensity float64
	Anomalous  bool
	// ModelVersion is the registry model that scored the interval —
	// hot swaps are visible per record.
	ModelVersion int
	// Event is the alarm transition this interval triggered, if any.
	Event *alarm.Event
}

// item is one queued interval.
type item struct {
	stream int
	m      *heatmap.HeatMap
}

// streamState is one monitored stream. Stream→shard affinity means
// exactly one worker assigns indices and appends records; the mutex
// only fences those writes against read-side Records/Alarms.
type streamState struct {
	inflight atomic.Int32

	mu      sync.Mutex
	index   int
	records []Record
	rt      *alarm.Runtime
}

// worker is one shard worker's private state. Because hot swap means
// different streams on one shard may score under different engines, the
// worker keeps a scorer per engine it has seen (engines are few — the
// live model generations — and immutable).
type worker struct {
	scorers map[*score.Engine]*score.Scorer
	vbuf    []float64
}

func (w *worker) scorerFor(eng *score.Engine) *score.Scorer {
	sc := w.scorers[eng]
	if sc == nil {
		sc = eng.NewScorer()
		w.scorers[eng] = sc
	}
	return sc
}

// Controller is the live fleet control plane: a resizable pool of shard
// workers draining bounded FIFO queues, with per-stream admission
// control and the copy-on-write model registry deciding which engine
// scores each interval.
type Controller struct {
	cfg       Config
	region    heatmap.Def
	cells     int
	reg       *Registry
	streams   []*streamState
	met       fleetMetrics
	highWater int

	auto *Autoscaler // nil without Config.Scale

	mu      sync.RWMutex // fences Submit/readers against Resize/Close
	workers []*worker
	chans   []chan item
	closed  bool
	wg      sync.WaitGroup
}

// New builds the controller for a fixed stream population over a
// trained detector (model version 1 in the registry).
func New(det *core.Detector, streams int, cfg Config) (*Controller, error) {
	if det == nil {
		return nil, fmt.Errorf("fleet: nil detector: %w", ErrConfig)
	}
	if streams <= 0 {
		return nil, fmt.Errorf("fleet: %d streams: %w", streams, ErrConfig)
	}
	if err := cfg.fill(streams); err != nil {
		return nil, err
	}
	// Autoscaling decides from the obs gauges; with no registry they read
	// 0 and every poll looks idle. Install a private registry rather than
	// let PollScale silently shrink the fleet to MinShards.
	if cfg.Scale != nil && cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	base, err := NewModel(det, cfg.Quantile, 1)
	if err != nil {
		return nil, err
	}
	l, _ := base.eng.Dim()
	if l != det.Region.Cells() {
		return nil, fmt.Errorf("fleet: engine dimension %d, region cells %d: %w",
			l, det.Region.Cells(), ErrConfig)
	}
	reg, err := NewRegistry(streams, base)
	if err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:       cfg,
		region:    det.Region,
		cells:     l,
		reg:       reg,
		streams:   make([]*streamState, streams),
		met:       newFleetMetrics(cfg.Metrics),
		highWater: highWaterMark(cfg.QueueDepth, cfg.HighWaterFrac),
	}
	for i := range c.streams {
		rt, err := alarm.NewRuntime(cfg.Alarm)
		if err != nil {
			return nil, err
		}
		c.streams[i] = &streamState{rt: rt}
	}
	if cfg.Scale != nil {
		if c.auto, err = NewAutoscaler(*cfg.Scale, cfg.Metrics); err != nil {
			return nil, err
		}
	}
	c.met.streams.Set(float64(streams))
	c.startWorkers(cfg.Shards)
	return c, nil
}

// startWorkers builds a fresh worker pool of the given size. Callers
// must hold the write lock (or be the constructor).
func (c *Controller) startWorkers(shards int) {
	c.workers = make([]*worker, shards)
	c.chans = make([]chan item, shards)
	for i := range c.workers {
		c.workers[i] = &worker{
			scorers: make(map[*score.Engine]*score.Scorer),
			vbuf:    make([]float64, c.cells),
		}
		c.chans[i] = make(chan item, c.cfg.QueueDepth)
		c.wg.Add(1)
		go c.run(i)
	}
	c.met.shards.Set(float64(shards))
}

// Streams and Shards report the current topology.
func (c *Controller) Streams() int { return len(c.streams) }
func (c *Controller) Shards() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.workers)
}

// Registry exposes the per-stream model registry for hot swaps.
func (c *Controller) Registry() *Registry { return c.reg }

// SwapAt schedules a hot model swap at an exact per-stream interval
// boundary (see Registry.SwapAt) and counts it.
func (c *Controller) SwapAt(stream, at int, m *Model) error {
	if err := c.reg.SwapAt(stream, at, m); err != nil {
		return err
	}
	c.met.swaps.Inc()
	return nil
}

// Submit offers one completed MHM of a stream. Unlike the sharded
// pipeline it never blocks: under overload the submission is shed
// (admitted=false) according to the per-stream fairness policy, and the
// monitor keeps its interval cadence. The error is non-nil only for
// invalid submissions or a closed controller.
func (c *Controller) Submit(stream int, m *heatmap.HeatMap) (admitted bool, err error) {
	if stream < 0 || stream >= len(c.streams) {
		return false, fmt.Errorf("fleet: stream %d out of [0,%d): %w", stream, len(c.streams), ErrConfig)
	}
	if m.Def != c.region {
		return false, fmt.Errorf("fleet: stream %d: %w", stream, core.ErrRegionMismatch)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return false, ErrClosed
	}
	c.met.submitted.Inc()
	st := c.streams[stream]
	shard := RouteStream(stream, len(c.chans))
	ch := c.chans[shard]
	reason := admitVerdict(len(ch), c.cfg.QueueDepth, int(st.inflight.Load()),
		c.cfg.MaxPerStream, c.highWater)
	if reason != "" {
		c.met.shed.Inc()
		return false, nil
	}
	st.inflight.Add(1)
	c.met.inflight.Add(1)
	select {
	case ch <- item{stream: stream, m: m}:
		c.met.admitted.Inc()
		return true, nil
	default:
		// The queue filled between the verdict and the send; shed.
		st.inflight.Add(-1)
		c.met.inflight.Add(-1)
		c.met.shed.Inc()
		return false, nil
	}
}

// run is one shard worker: it drains the shard's FIFO queue, resolving
// each interval's model through the registry (hot-swap boundary), then
// scoring and recording in submission order.
func (c *Controller) run(shard int) {
	defer c.wg.Done()
	w := c.workers[shard]
	for it := range c.chans[shard] {
		start := time.Now()
		st := c.streams[it.stream]

		st.mu.Lock()
		idx := st.index
		st.index++
		st.mu.Unlock()

		mdl := c.reg.ModelFor(it.stream, idx)
		it.m.VectorInto(w.vbuf)
		lp, err := w.scorerFor(mdl.eng).Score(w.vbuf)
		if err != nil {
			// Unreachable: Submit pinned the region, so the vector length
			// always matches the engine.
			panic("fleet: score: " + err.Error())
		}
		anomalous := lp < mdl.theta
		rec := Record{
			Index:        idx,
			Start:        it.m.Start,
			End:          it.m.End,
			LogDensity:   lp,
			Anomalous:    anomalous,
			ModelVersion: mdl.version,
		}

		st.mu.Lock()
		rec.Event = st.rt.Observe(anomalous, it.m.End)
		st.records = append(st.records, rec)
		st.mu.Unlock()

		st.inflight.Add(-1)
		c.met.inflight.Add(-1)
		if anomalous {
			c.met.anomalous.Inc()
		}
		micros := float64(time.Since(start).Nanoseconds()) / 1e3
		c.met.interval.Observe(micros)
		if rec.Event != nil {
			if rec.Event.Raised {
				c.met.raised.Inc()
			} else {
				c.met.cleared.Inc()
			}
			c.met.delivery.Observe(micros)
		}
	}
}

// Resize re-shapes the worker pool to the given shard count. It is a
// drain barrier: submissions pause, every queued interval completes
// under the old topology, then workers restart with the new one — so a
// stream's records stay in submission order across the move, and only
// the streams whose jump-hash owner changed are re-homed. Returns how
// many streams moved.
func (c *Controller) Resize(shards int) (moved int, err error) {
	if shards <= 0 {
		return 0, fmt.Errorf("fleet: resize to %d shards: %w", shards, ErrConfig)
	}
	if shards > len(c.streams) {
		shards = len(c.streams)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, ErrClosed
	}
	old := len(c.workers)
	if shards == old {
		return 0, nil
	}
	for _, ch := range c.chans {
		close(ch)
	}
	c.wg.Wait()
	moved = MovedStreams(len(c.streams), old, shards)
	c.startWorkers(shards)
	c.met.resizes.Inc()
	return moved, nil
}

// PollScale publishes the queue-occupancy and latency gauges and, when
// autoscaling is configured, applies the autoscaler's decision. now is
// the caller's clock in microseconds (wall or virtual — the decision
// only compares differences against the cooldown). It returns the new
// shard count and how many streams moved (0 when no resize fired).
func (c *Controller) PollScale(now int64) (shards, moved int, err error) {
	c.mu.RLock()
	maxFrac := 0.0
	for _, ch := range c.chans {
		if f := float64(len(ch)) / float64(c.cfg.QueueDepth); f > maxFrac {
			maxFrac = f
		}
	}
	cur := len(c.workers)
	c.mu.RUnlock()
	c.met.queueFrac.Set(maxFrac)
	c.met.p99.Set(c.met.interval.Snapshot().Quantile(0.99))
	if c.auto == nil {
		return cur, 0, nil
	}
	target, _ := c.auto.Decide(now, cur)
	if target == cur {
		return cur, 0, nil
	}
	moved, err = c.Resize(target)
	if err != nil {
		return cur, 0, err
	}
	return target, moved, nil
}

// Records returns the analyzed intervals of one stream so far, in
// submission order.
func (c *Controller) Records(stream int) ([]Record, error) {
	if stream < 0 || stream >= len(c.streams) {
		return nil, fmt.Errorf("fleet: stream %d out of [0,%d): %w", stream, len(c.streams), ErrConfig)
	}
	st := c.streams[stream]
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]Record, len(st.records))
	copy(out, st.records)
	return out, nil
}

// Alarms returns one stream's alarm transitions so far.
func (c *Controller) Alarms(stream int) ([]alarm.Event, error) {
	if stream < 0 || stream >= len(c.streams) {
		return nil, fmt.Errorf("fleet: stream %d out of [0,%d): %w", stream, len(c.streams), ErrConfig)
	}
	st := c.streams[stream]
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.rt.Events(), nil
}

// Close drains the queues, stops the workers, and waits for them.
// Further Submit calls fail; Records and Alarms remain readable.
func (c *Controller) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	for _, ch := range c.chans {
		close(ch)
	}
	c.mu.Unlock()
	c.wg.Wait()
}
