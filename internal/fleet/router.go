// Stream→shard routing for the fleet controller. The requirements are
// the sharded pipeline's affinity contract scaled to a resizable shard
// set: every stream maps to exactly one shard (so one worker owns the
// stream's order), the mapping is a pure function of (stream, shard
// count) so any component can recompute it without coordination, and a
// resize moves as few streams as possible — ~streams/shards per ±1
// step, not a full reshuffle like `stream mod shards` would.
//
// Jump consistent hashing (Lamping & Veach, arXiv 1406.2294) gives
// exactly that: growing n→n+1 moves only the streams that land on the
// new shard, shrinking n+1→n moves only the streams that were on the
// removed (highest-numbered) shard. Shards are therefore numbered
// 0..n-1 and the autoscaler always adds/removes at the top.
package fleet

// splitmix64 is the stateless mixer used everywhere the fleet needs a
// reproducible pseudo-random value keyed by identifiers (stream keys,
// workload noise): one multiply-xor-shift chain per draw, no shared
// generator state, bit-stable on every platform.
//
//mhm:deterministic
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RouteStream maps a stream to its owning shard in [0, shards) with
// jump consistent hashing. It is a pure function: callers on any
// goroutine, the simulator and the live controller all agree on the
// owner without shared state. shards must be >= 1.
//
//mhm:deterministic
func RouteStream(stream int, shards int) int {
	key := splitmix64(uint64(stream))
	var b, j int64 = -1, 0
	for j < int64(shards) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}

// MovedStreams counts how many of the streams [0, streams) change
// owner when the shard set resizes from → to — the disruption cost the
// autoscaler weighs and the resize trace records.
//
//mhm:deterministic
func MovedStreams(streams, from, to int) int {
	moved := 0
	for s := 0; s < streams; s++ {
		if RouteStream(s, from) != RouteStream(s, to) {
			moved++
		}
	}
	return moved
}
