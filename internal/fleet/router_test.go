package fleet

import (
	"math"
	"math/rand"
	"testing"
)

// TestRouteStreamInRange: every stream maps to exactly one shard in
// [0, shards) for a sweep of shard counts.
func TestRouteStreamInRange(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 7, 16, 63, 1024} {
		for stream := 0; stream < 2048; stream++ {
			sh := RouteStream(stream, shards)
			if sh < 0 || sh >= shards {
				t.Fatalf("RouteStream(%d, %d) = %d out of range", stream, shards, sh)
			}
		}
	}
}

// TestRouteStreamMonotoneGrowth pins the jump-hash contract exactly: on
// a grow from n to n+1 shards, a stream either stays put or moves to the
// new shard n — never between old shards. This is what makes a resize
// re-home only the moved streams.
func TestRouteStreamMonotoneGrowth(t *testing.T) {
	const streams = 4096
	for n := 1; n < 64; n++ {
		for s := 0; s < streams; s++ {
			before := RouteStream(s, n)
			after := RouteStream(s, n+1)
			if after != before && after != n {
				t.Fatalf("stream %d: grow %d->%d moved %d->%d (not the new shard)",
					s, n, n+1, before, after)
			}
		}
	}
}

// TestRouteStreamResizeProperty is the randomized property test: random
// walks over shard counts, asserting (a) determinism — the same
// (stream, shards) always routes identically, (b) bounded movement —
// each ±1 resize step moves at most streams/newShards + ε streams,
// where ε covers hash variance, and (c) balance — no shard holds more
// than 3× its fair share.
func TestRouteStreamResizeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const streams = 8192
	for trial := 0; trial < 20; trial++ {
		shards := 1 + rng.Intn(96)
		assign := make([]int, streams)
		for s := range assign {
			assign[s] = RouteStream(s, shards)
		}
		for step := 0; step < 30; step++ {
			next := shards
			if rng.Intn(2) == 0 && shards > 1 {
				next--
			} else {
				next++
			}
			moved := 0
			for s := 0; s < streams; s++ {
				sh := RouteStream(s, next)
				if sh != RouteStream(s, next) {
					t.Fatal("RouteStream not deterministic")
				}
				if sh != assign[s] {
					moved++
				}
				assign[s] = sh
			}
			fair := float64(streams) / float64(next)
			eps := 4*math.Sqrt(fair) + 8
			if float64(moved) > fair+eps {
				t.Fatalf("resize %d->%d moved %d streams, bound %.0f",
					shards, next, moved, fair+eps)
			}
			if got := MovedStreams(streams, shards, next); got != moved {
				t.Fatalf("MovedStreams(%d, %d, %d) = %d, counted %d",
					streams, shards, next, got, moved)
			}
			shards = next
		}
		// Balance after the walk.
		load := make([]int, shards)
		for _, sh := range assign {
			load[sh]++
		}
		fair := float64(streams) / float64(shards)
		for sh, n := range load {
			if float64(n) > 3*fair+8 {
				t.Fatalf("shard %d holds %d streams, fair share %.0f", sh, n, fair)
			}
		}
	}
}

// TestRouteStreamOrderAcrossResize asserts the ordering contract the
// controller's drain-barrier resize relies on: per-stream submission
// order is preserved across a resize because the stream's entire queue
// position transfers atomically (simulated here by replaying a schedule
// through the routing function before and after a resize and checking
// each stream's events never interleave out of order).
func TestRouteStreamOrderAcrossResize(t *testing.T) {
	const streams, events = 128, 12
	type ev struct{ stream, seq, shard int }
	var timeline []ev
	shards := 4
	for seq := 0; seq < events; seq++ {
		if seq == events/2 {
			shards = 7 // resize mid-schedule
		}
		for s := 0; s < streams; s++ {
			timeline = append(timeline, ev{s, seq, RouteStream(s, shards)})
		}
	}
	// Within a stream, sequence numbers must appear in submission order
	// (trivially true for a deterministic route + FIFO shards; the check
	// guards against a future router that splits one stream's events
	// across shards within a single topology).
	seen := make([]int, streams)
	for i := range seen {
		seen[i] = -1
	}
	for _, e := range timeline {
		if e.seq <= seen[e.stream] {
			t.Fatalf("stream %d: seq %d after %d", e.stream, e.seq, seen[e.stream])
		}
		seen[e.stream] = e.seq
		if want4, want7 := RouteStream(e.stream, 4), RouteStream(e.stream, 7); e.shard != want4 && e.shard != want7 {
			t.Fatalf("stream %d routed to %d, expected %d or %d", e.stream, e.shard, want4, want7)
		}
	}
}

func TestMovedStreamsEdgeCases(t *testing.T) {
	if got := MovedStreams(100, 5, 5); got != 0 {
		t.Fatalf("no-op resize moved %d", got)
	}
	if got := MovedStreams(100, 1, 2); got == 0 || got == 100 {
		t.Fatalf("1->2 moved %d, want strictly between", got)
	}
}

func TestSplitmix64Distinct(t *testing.T) {
	seen := make(map[uint64]bool, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		h := splitmix64(i)
		if seen[h] {
			t.Fatalf("collision at %d", i)
		}
		seen[h] = true
	}
}
