package fleet

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"github.com/memheatmap/mhm/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// metricNames is the frozen-schema shape: the sorted name set per
// metric kind. Values are deliberately excluded — they depend on wall
// clock and load — but a renamed, dropped, or retyped metric breaks
// every dashboard reading the fleet, so the names are golden.
type metricNames struct {
	Counters   []string `json:"counters"`
	Gauges     []string `json:"gauges"`
	Histograms []string `json:"histograms"`
}

// TestFleetMetricsSchemaGolden freezes the fleet metric names (the PR 1
// obs pattern). newFleetMetrics pre-registers every metric, so the full
// name set exists before any traffic. Regenerate with
// `go test ./internal/fleet -run TestFleetMetricsSchemaGolden -update`
// only when a schema change is intentional.
func TestFleetMetricsSchemaGolden(t *testing.T) {
	reg := obs.NewRegistry()
	newFleetMetrics(reg)
	snap := reg.Snapshot()
	got := metricNames{
		Counters:   sortedNames(snap.Counters),
		Gauges:     sortedNames(snap.Gauges),
		Histograms: sortedNames(snap.Histograms),
	}
	data, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')

	path := filepath.Join("testdata", "fleet_metrics_schema.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if string(data) != string(want) {
		t.Errorf("fleet metric schema drifted from golden file.\ngot:\n%s\nwant:\n%s", data, want)
	}
}

// TestFleetMetricsRegisteredThroughStack asserts the same names surface
// through a real controller and a real simulation — no path registers a
// metric the schema doesn't know.
func TestFleetMetricsRegisteredThroughStack(t *testing.T) {
	want := readGoldenNames(t)

	_, det := fixture(t)
	creg := obs.NewRegistry()
	c, err := New(det, 4, Config{Shards: 2, Metrics: creg})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	checkNames(t, "controller", creg, want)

	sreg := obs.NewRegistry()
	s, err := NewSim(SimConfig{Streams: 8, Seed: 1, HorizonMicros: 20_000, Metrics: sreg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	checkNames(t, "simulator", sreg, want)
}

func readGoldenNames(t *testing.T) metricNames {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "fleet_metrics_schema.json"))
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	var want metricNames
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}
	return want
}

func checkNames(t *testing.T, who string, reg *obs.Registry, want metricNames) {
	t.Helper()
	snap := reg.Snapshot()
	for kind, pair := range map[string][2][]string{
		"counters":   {sortedNames(snap.Counters), want.Counters},
		"gauges":     {sortedNames(snap.Gauges), want.Gauges},
		"histograms": {sortedNames(snap.Histograms), want.Histograms},
	} {
		got, exp := pair[0], pair[1]
		if len(got) != len(exp) {
			t.Errorf("%s %s: %v, golden %v", who, kind, got, exp)
			continue
		}
		for i := range got {
			if got[i] != exp[i] {
				t.Errorf("%s %s[%d]: %q, golden %q", who, kind, i, got[i], exp[i])
			}
		}
	}
}

func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
