package fleet

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"github.com/memheatmap/mhm/internal/alarm"
	"github.com/memheatmap/mhm/internal/obs"
)

// runSim builds and runs one simulation, failing the test on any error.
func runSim(t *testing.T, cfg SimConfig) (*Sim, *SimResult) {
	t.Helper()
	s, err := NewSim(cfg)
	if err != nil {
		t.Fatalf("NewSim: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return s, res
}

func TestSimNominalRun(t *testing.T) {
	tr := &Trace{}
	_, res := runSim(t, SimConfig{
		Streams: 64, Seed: 1, HorizonMicros: 100_000, Trace: tr,
	})
	if res.Submitted == 0 || res.Admitted == 0 {
		t.Fatalf("no traffic: %+v", res)
	}
	if res.Shed != 0 {
		t.Fatalf("nominal run shed %d intervals:\n%s", res.Shed, tr.Bytes())
	}
	// ~10 intervals per stream over the horizon.
	if res.Submitted < 9*64 || res.Submitted > 11*64 {
		t.Fatalf("submitted %d, want ~%d", res.Submitted, 10*64)
	}
	if len(res.Alarms) != 0 {
		t.Fatalf("clean workload raised %d alarms", len(res.Alarms))
	}
	if res.P99IntervalMicros <= 0 {
		t.Fatalf("p99 interval latency %g", res.P99IntervalMicros)
	}
}

// TestSimDeterminism is the tentpole acceptance gate: two runs with the
// same seed — full fault script, autoscaling on, parallel scoring at
// different worker counts — must produce byte-identical decision traces
// and identical alarm sequences at 10k streams, including under -race.
func TestSimDeterminism(t *testing.T) {
	streams := 10_000
	if testing.Short() {
		streams = 1_000
	}
	cfg := SimConfig{
		Streams:       streams,
		Seed:          42,
		HorizonMicros: 120_000,
		Shards:        8,
		QueueDepth:    64,
		Scale:         &ScaleConfig{MinShards: 2, MaxShards: 64, CooldownMicros: 20_000},
		Faults: []Fault{
			{Kind: FaultOverload, FromMicros: 20_000, UntilMicros: 60_000,
				StreamLo: 0, StreamHi: streams / 2, Factor: 8},
			{Kind: FaultStall, FromMicros: 30_000, UntilMicros: 50_000, Factor: 20},
			{Kind: FaultAnomaly, FromMicros: 40_000, UntilMicros: 90_000,
				StreamLo: 0, StreamHi: 32},
			{Kind: FaultSwap, StreamLo: 0, StreamHi: streams / 4, SwapInterval: 5},
		},
	}

	type outcome struct {
		trace  []byte
		res    *SimResult
		alarms []AlarmEvent
	}
	run := func(workers int) outcome {
		c := cfg
		c.Workers = workers
		c.Trace = &Trace{}
		_, res := runSim(t, c)
		return outcome{trace: c.Trace.Bytes(), res: res, alarms: res.Alarms}
	}

	a := run(1)
	b := run(8)
	if !bytes.Equal(a.trace, b.trace) {
		t.Fatalf("decision traces differ between runs (%d vs %d lines)",
			bytes.Count(a.trace, []byte("\n")), bytes.Count(b.trace, []byte("\n")))
	}
	if len(a.alarms) != len(b.alarms) {
		t.Fatalf("alarm counts differ: %d vs %d", len(a.alarms), len(b.alarms))
	}
	for i := range a.alarms {
		if a.alarms[i] != b.alarms[i] {
			t.Fatalf("alarm %d differs: %+v vs %+v", i, a.alarms[i], b.alarms[i])
		}
	}
	// Scalar summaries must agree too (Alarms compared above).
	ar, br := *a.res, *b.res
	ar.Alarms, br.Alarms = nil, nil
	if !reflect.DeepEqual(ar, br) {
		t.Fatalf("summaries differ:\n%+v\n%+v", ar, br)
	}
	if a.res.Shed == 0 {
		t.Fatal("overload fault did not trigger shedding")
	}
	if len(a.alarms) == 0 {
		t.Fatal("anomaly fault raised no alarms")
	}
	if a.res.Resizes == 0 {
		t.Fatal("stall fault did not trigger autoscaling")
	}
	if tl := bytes.Count(a.trace, []byte("\n")); tl == 0 {
		t.Fatal("empty decision trace")
	}
}

func TestSimOverloadShedsOnlyAboveCapacity(t *testing.T) {
	// Nominal: 64 streams, ample shards and queue — zero shed.
	_, nominal := runSim(t, SimConfig{
		Streams: 64, Seed: 7, HorizonMicros: 100_000, Shards: 4,
	})
	if nominal.Shed != 0 {
		t.Fatalf("nominal run shed %d", nominal.Shed)
	}
	// Overloaded: same fleet, half the streams submit at 32x rate into
	// tiny queues — shedding must engage, and fairly: unaffected streams
	// keep their cadence.
	tr := &Trace{}
	_, over := runSim(t, SimConfig{
		Streams: 64, Seed: 7, HorizonMicros: 100_000, Shards: 2,
		QueueDepth: 8, MaxPerStream: 2, ServiceMicros: 400, Trace: tr,
		Faults: []Fault{{Kind: FaultOverload, FromMicros: 0,
			StreamLo: 0, StreamHi: 32, Factor: 32}},
	})
	if over.Shed == 0 {
		t.Fatal("overload did not shed")
	}
	// Per-stream fairness: the shed log must hit the overloading streams,
	// and the stream-cap rule (not just queue-full) must appear — the cap
	// is what stops one hot stream from monopolizing a queue.
	if !strings.Contains(string(tr.Bytes()), "reason="+ShedStreamCap) {
		t.Fatalf("no %s sheds in trace", ShedStreamCap)
	}
}

func TestSimAnomalyFaultRaisesAndClears(t *testing.T) {
	_, res := runSim(t, SimConfig{
		Streams: 16, Seed: 3, HorizonMicros: 400_000,
		// θ0.5 plus a 3-interval debounce keeps clean streams quiet over
		// the long horizon (isolated false positives cannot raise); the
		// inverted-pattern anomaly holds for 15 straight intervals.
		Quantile: 0.005,
		Alarm:    alarm.Config{RaiseAfter: 3, ClearAfter: 3},
		Faults: []Fault{{Kind: FaultAnomaly, FromMicros: 50_000,
			UntilMicros: 200_000, StreamLo: 4, StreamHi: 8}},
	})
	raised := map[int]bool{}
	cleared := map[int]bool{}
	for _, ev := range res.Alarms {
		if ev.Stream < 4 || ev.Stream >= 8 {
			t.Fatalf("alarm on unaffected stream %d", ev.Stream)
		}
		if ev.Raised {
			raised[ev.Stream] = true
		} else {
			if !raised[ev.Stream] {
				t.Fatalf("stream %d cleared before raising", ev.Stream)
			}
			cleared[ev.Stream] = true
		}
		if ev.DeliveredMicros < ev.AtMicros {
			t.Fatalf("alarm delivered before its interval ended: %+v", ev)
		}
	}
	for s := 4; s < 8; s++ {
		if !raised[s] {
			t.Fatalf("stream %d never raised", s)
		}
		if !cleared[s] {
			t.Fatalf("stream %d never cleared after the fault window", s)
		}
	}
}

func TestSimSwapFaultAppliesAtBoundary(t *testing.T) {
	sim, res := runSim(t, SimConfig{
		Streams: 8, Seed: 5, HorizonMicros: 200_000,
		Faults: []Fault{{Kind: FaultSwap, StreamLo: 0, StreamHi: 4, SwapInterval: 3}},
	})
	if res.SwapsScheduled != 4 {
		t.Fatalf("scheduled %d swaps, want 4", res.SwapsScheduled)
	}
	for s := 0; s < 8; s++ {
		m, err := sim.Registry().Current(s)
		if err != nil {
			t.Fatal(err)
		}
		want := 1
		if s < 4 {
			want = 2 // past the boundary, the refreshed model is live
		}
		if m.Version() != want {
			t.Fatalf("stream %d on model v%d, want v%d", s, m.Version(), want)
		}
	}
}

func TestSimAutoscaleUpAndDown(t *testing.T) {
	tr := &Trace{}
	reg := obs.NewRegistry()
	_, res := runSim(t, SimConfig{
		Streams: 256, Seed: 11, HorizonMicros: 600_000, Shards: 2,
		QueueDepth: 16, ServiceMicros: 100, Trace: tr, Metrics: reg,
		Scale: &ScaleConfig{MinShards: 2, MaxShards: 32,
			HighLatencyMicros: 2_000, LowLatencyMicros: 500, CooldownMicros: 30_000},
		Faults: []Fault{{Kind: FaultStall, FromMicros: 50_000,
			UntilMicros: 250_000, Factor: 40}},
	})
	if res.Resizes == 0 {
		t.Fatalf("stall window triggered no resizes:\n%s", tr.Bytes())
	}
	trace := string(tr.Bytes())
	if !strings.Contains(trace, "resize") {
		t.Fatal("no resize lines in trace")
	}
	// The stall must scale the fleet up...
	up := false
	for _, ln := range strings.Split(trace, "\n") {
		if strings.Contains(ln, "reason=scale-up") {
			up = true
		}
	}
	if !up {
		t.Fatalf("no scale-up decision in trace:\n%s", trace)
	}
	snap := reg.Snapshot()
	if snap.Counters["fleet.resizes"] == 0 {
		t.Fatal("fleet.resizes counter not incremented")
	}
	if snap.Gauges["fleet.shards"] != float64(res.FinalShards) {
		t.Fatalf("fleet.shards gauge %g, final shards %d",
			snap.Gauges["fleet.shards"], res.FinalShards)
	}
}

func TestSimConfigValidation(t *testing.T) {
	bad := []SimConfig{
		{Streams: 0},
		{Streams: 4, HorizonMicros: -1},
		{Streams: 4, JitterMicros: 20_000},
		{Streams: 4, Shards: -1},
		{Streams: 4, QueueDepth: -1},
		{Streams: 4, MaxPerStream: -1},
		{Streams: 4, HighWaterFrac: 1.5},
		{Streams: 4, ServiceMicros: -1},
		{Streams: 4, Faults: []Fault{{Kind: "bogus"}}},
		{Streams: 4, Faults: []Fault{{Kind: FaultOverload, Factor: 0}}},
		{Streams: 4, Faults: []Fault{{Kind: FaultSwap, SwapInterval: -1}}},
		{Streams: 4, Faults: []Fault{{Kind: FaultAnomaly, StreamLo: 2, StreamHi: 9}}},
	}
	for i, cfg := range bad {
		if _, err := NewSim(cfg); err == nil {
			t.Errorf("case %d: config %+v accepted", i, cfg)
		}
	}
}
