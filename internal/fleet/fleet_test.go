package fleet

import (
	"runtime"
	"sync"
	"testing"

	"github.com/memheatmap/mhm/internal/alarm"
	"github.com/memheatmap/mhm/internal/core"
	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/obs"
)

// fleetFixture trains one small detector per test binary (training is
// the expensive part; the controller tests only need a valid model).
var fixOnce sync.Once
var fixWL *Workload
var fixDet *core.Detector

func fixture(t *testing.T) (*Workload, *core.Detector) {
	t.Helper()
	fixOnce.Do(func() {
		wl, err := NewWorkload(17, SimRegion)
		if err != nil {
			t.Fatalf("workload: %v", err)
		}
		det, err := wl.TrainDetector(192, 96)
		if err != nil {
			t.Fatalf("train: %v", err)
		}
		fixWL, fixDet = wl, det
	})
	if fixDet == nil {
		t.Fatal("fixture training failed in an earlier test")
	}
	return fixWL, fixDet
}

// mustSubmit spins until the interval is admitted — the tests that
// compare against a serial reference must not lose submissions to
// back-pressure.
func mustSubmit(t *testing.T, c *Controller, wl *Workload, stream, interval int) {
	t.Helper()
	m, err := wl.HeatMap(stream, interval, false)
	if err != nil {
		t.Fatalf("heat map: %v", err)
	}
	for {
		ok, err := c.Submit(stream, m)
		if err != nil {
			t.Fatalf("submit stream %d: %v", stream, err)
		}
		if ok {
			return
		}
		runtime.Gosched()
	}
}

func TestControllerBasic(t *testing.T) {
	wl, det := fixture(t)
	reg := obs.NewRegistry()
	c, err := New(det, 8, Config{Shards: 2, Metrics: reg})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	const intervals = 16
	for i := 0; i < intervals; i++ {
		for s := 0; s < 8; s++ {
			mustSubmit(t, c, wl, s, i)
		}
	}
	c.Close()
	for s := 0; s < 8; s++ {
		recs, err := c.Records(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != intervals {
			t.Fatalf("stream %d: %d records, want %d", s, len(recs), intervals)
		}
		for i, r := range recs {
			if r.Index != i {
				t.Fatalf("stream %d: record %d has index %d", s, i, r.Index)
			}
			if r.ModelVersion != 1 {
				t.Fatalf("stream %d rec %d: model v%d, want v1", s, i, r.ModelVersion)
			}
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["fleet.admitted"] != 8*intervals {
		t.Fatalf("fleet.admitted = %d, want %d", snap.Counters["fleet.admitted"], 8*intervals)
	}
	if _, err := c.Submit(0, mustMap(t, wl, 0, 0)); err != ErrClosed {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
}

func mustMap(t *testing.T, wl *Workload, stream, interval int) *heatmap.HeatMap {
	t.Helper()
	m, err := wl.HeatMap(stream, interval, false)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestControllerValidation(t *testing.T) {
	_, det := fixture(t)
	if _, err := New(nil, 4, Config{}); err == nil {
		t.Error("nil detector accepted")
	}
	if _, err := New(det, 0, Config{}); err == nil {
		t.Error("zero streams accepted")
	}
	for _, cfg := range []Config{
		{Shards: -1},
		{QueueDepth: -1},
		{MaxPerStream: -2},
		{HighWaterFrac: 2},
	} {
		if _, err := New(det, 4, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

// TestControllerHotSwapBitIdentical is the race-stress pin (run in CI
// with -race -count=3): N streams submit under load from concurrent
// producers while every stream's model is hot-swapped at per-stream
// boundary K. The resulting log densities, verdicts, model versions and
// alarm transitions must be bit-identical to a serial reference run
// that applies the swap at the same boundary — the copy-on-write
// registry must neither drop, reorder, nor smear the swap.
func TestControllerHotSwapBitIdentical(t *testing.T) {
	wl, det := fixture(t)
	const (
		streams   = 24
		intervals = 40
		swapAt    = 17
	)
	c, err := New(det, streams, Config{
		Shards: 4, QueueDepth: 16, MaxPerStream: 4,
		Alarm: alarm.Config{RaiseAfter: 2, ClearAfter: 3},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	alt, err := NewModel(det, 0.005, 2)
	if err != nil {
		t.Fatalf("alt model: %v", err)
	}
	// Schedule the swap while producers run — half before they start,
	// half concurrently, to stress the scheduling path itself.
	for s := 0; s < streams/2; s++ {
		if err := c.SwapAt(s, swapAt, alt); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			if s >= streams/2 {
				if err := c.SwapAt(s, swapAt, alt); err != nil {
					t.Errorf("swap stream %d: %v", s, err)
					return
				}
			}
			for i := 0; i < intervals; i++ {
				mustSubmit(t, c, wl, s, i)
			}
		}(s)
	}
	wg.Wait()
	c.Close()

	// Serial reference: same vectors, same models, swap applied exactly
	// at the boundary.
	base, err := NewModel(det, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	baseSc := base.Engine().NewScorer()
	altSc := alt.Engine().NewScorer()
	vbuf := make([]float64, SimRegion.Cells())
	for s := 0; s < streams; s++ {
		recs, err := c.Records(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != intervals {
			t.Fatalf("stream %d: %d records, want %d", s, len(recs), intervals)
		}
		rt, err := alarm.NewRuntime(alarm.Config{RaiseAfter: 2, ClearAfter: 3})
		if err != nil {
			t.Fatal(err)
		}
		for i, rec := range recs {
			mdl, sc := base, baseSc
			if i >= swapAt {
				mdl, sc = alt, altSc
			}
			if rec.ModelVersion != mdl.Version() {
				t.Fatalf("stream %d interval %d scored by v%d, want v%d",
					s, i, rec.ModelVersion, mdl.Version())
			}
			wl.VectorInto(vbuf, s, i, false)
			want, err := sc.Score(vbuf)
			if err != nil {
				t.Fatal(err)
			}
			if rec.LogDensity != want {
				t.Fatalf("stream %d interval %d density %v, want %v (bit-exact)",
					s, i, rec.LogDensity, want)
			}
			if rec.Anomalous != (want < mdl.Theta()) {
				t.Fatalf("stream %d interval %d verdict %v", s, i, rec.Anomalous)
			}
			refEv := rt.Observe(rec.Anomalous, rec.End)
			if (refEv == nil) != (rec.Event == nil) {
				t.Fatalf("stream %d interval %d alarm presence differs", s, i)
			}
			if refEv != nil && refEv.Raised != rec.Event.Raised {
				t.Fatalf("stream %d interval %d alarm direction differs", s, i)
			}
		}
	}
}

// TestControllerResizePreservesOrder: submissions straddling two
// resizes keep per-stream index order and lose nothing.
func TestControllerResizePreservesOrder(t *testing.T) {
	wl, det := fixture(t)
	c, err := New(det, 32, Config{Shards: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	interval := 0
	submitRound := func(rounds int) {
		for r := 0; r < rounds; r++ {
			for s := 0; s < 32; s++ {
				mustSubmit(t, c, wl, s, interval)
			}
			interval++
		}
	}
	submitRound(5)
	moved, err := c.Resize(7)
	if err != nil {
		t.Fatalf("resize: %v", err)
	}
	if moved <= 0 || moved >= 32 {
		t.Fatalf("resize 2->7 moved %d streams", moved)
	}
	if c.Shards() != 7 {
		t.Fatalf("shards = %d, want 7", c.Shards())
	}
	submitRound(5)
	if _, err := c.Resize(3); err != nil {
		t.Fatalf("resize: %v", err)
	}
	submitRound(5)
	c.Close()
	for s := 0; s < 32; s++ {
		recs, err := c.Records(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 15 {
			t.Fatalf("stream %d: %d records, want 15", s, len(recs))
		}
		for i, r := range recs {
			if r.Index != i {
				t.Fatalf("stream %d: out of order at %d (index %d)", s, i, r.Index)
			}
		}
	}
}

// TestControllerShedsFairly: one hot stream flooding a small fleet is
// capped by MaxPerStream while other streams on the same shard keep
// being admitted.
func TestControllerShedsFairly(t *testing.T) {
	wl, det := fixture(t)
	reg := obs.NewRegistry()
	c, err := New(det, 16, Config{Shards: 1, QueueDepth: 8, MaxPerStream: 2, Metrics: reg})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hot := 3
	shed := 0
	m := mustMap(t, wl, hot, 0)
	// Flood far past the per-stream cap without letting the worker drain:
	// the controller guarantees non-blocking submission, so extra
	// intervals shed rather than queue.
	for i := 0; i < 64; i++ {
		ok, err := c.Submit(hot, m)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			shed++
		}
	}
	if shed == 0 {
		t.Fatal("flooding a capped stream shed nothing")
	}
	// Other streams must still get through.
	mustSubmit(t, c, wl, 9, 0)
	c.Close()
	snap := reg.Snapshot()
	if snap.Counters["fleet.shed"] == 0 {
		t.Fatal("fleet.shed counter not incremented")
	}
}

// TestControllerPollScaleResizes: queue congestion published through
// PollScale triggers an autoscale resize on the live controller.
func TestControllerPollScaleResizes(t *testing.T) {
	wl, det := fixture(t)
	c, err := New(det, 64, Config{
		Shards: 2, QueueDepth: 4,
		Scale: &ScaleConfig{MinShards: 2, MaxShards: 16, CooldownMicros: 1},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	// Fill queues faster than workers drain to push queue_frac up, then
	// poll until the autoscaler reacts (bounded attempts: the gauges are
	// sampled, so one poll may catch an empty instant).
	grew := false
	for attempt := 0; attempt < 50 && !grew; attempt++ {
		for i := 0; i < 16; i++ {
			for s := 0; s < 64; s++ {
				_, err := c.Submit(s, mustMap(t, wl, s, i))
				if err != nil {
					t.Fatal(err)
				}
			}
		}
		shards, _, err := c.PollScale(int64(attempt) * 100_000)
		if err != nil {
			t.Fatal(err)
		}
		grew = shards > 2
	}
	if !grew {
		t.Fatal("sustained congestion never scaled the fleet up")
	}
}
