package fleet

import "testing"

func TestAdmitVerdictPrecedence(t *testing.T) {
	const depth, streamCap, hw = 8, 4, 6
	cases := []struct {
		qlen, inflight int
		want           string
	}{
		{0, 0, ""},            // idle fleet admits
		{5, 3, ""},            // busy but under every limit
		{8, 0, ShedQueueFull}, // full queue sheds even idle streams
		{8, 9, ShedQueueFull}, // queue-full outranks stream-cap
		{2, 4, ShedStreamCap}, // at the per-stream cap
		{2, 9, ShedStreamCap}, // far past the cap
		{6, 1, ShedHighWater}, // above high water, stream busy
		{7, 3, ShedHighWater}, // above high water, under-cap still sheds
		{6, 0, ""},            // above high water, idle stream admits
	}
	for i, c := range cases {
		got := admitVerdict(c.qlen, depth, c.inflight, streamCap, hw)
		if got != c.want {
			t.Errorf("case %d (qlen=%d inflight=%d): got %q want %q",
				i, c.qlen, c.inflight, got, c.want)
		}
	}
}

func TestHighWaterMark(t *testing.T) {
	if got := highWaterMark(8, 0.75); got != 6 {
		t.Fatalf("highWaterMark(8, 0.75) = %d", got)
	}
	// Clamped to [1, qcap]: frac 1 never exceeds the queue, tiny
	// fractions still admit the first interval.
	if got := highWaterMark(10, 1); got != 10 {
		t.Fatalf("highWaterMark(10, 1) = %d", got)
	}
	if got := highWaterMark(100, 0.001); got != 1 {
		t.Fatalf("highWaterMark(100, 0.001) = %d", got)
	}
}
