// The deterministic fleet simulator: the test harness the control
// plane is designed around. Real goroutine interleavings make a live
// 10k-stream controller impossible to assert decision-by-decision, so
// the simulator re-runs the same decision functions — RouteStream,
// admitVerdict, Registry.ModelFor, Autoscaler.Decide — on a virtual
// microsecond clock with a seeded workload and scripted fault
// injection. Admission, shedding, hot swaps, resizes and alarm
// deliveries are decided in a sequential pass over time-sorted events
// (bit-reproducible by construction); only the scoring of the admitted
// batch fans out over real goroutines, writing densities into per-slot
// storage exactly like the training engine's chunk dispatch — so two
// runs with the same seed produce byte-identical decision traces and
// alarm sequences at any parallelism, including under -race.
//
// The queueing model: each shard serves its FIFO queue one interval at
// a time, ServiceMicros of virtual work per interval. An admitted
// interval starts at max(arrival, shard backlog, the stream's previous
// completion) — the last term preserves per-stream order across a
// resize that re-homes the stream mid-flight, mirroring the live
// controller's drain barrier.
package fleet

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"github.com/memheatmap/mhm/internal/alarm"
	"github.com/memheatmap/mhm/internal/core"
	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/obs"
	"github.com/memheatmap/mhm/internal/score"
	"github.com/memheatmap/mhm/internal/train"
)

// Fault kinds for scripted injection.
const (
	// FaultOverload multiplies the affected streams' submission rate by
	// Factor during the window — the shedding trigger.
	FaultOverload = "overload"
	// FaultStall multiplies every shard's service time by Factor during
	// the window — a slow secure core, the autoscale-up trigger.
	FaultStall = "stall"
	// FaultAnomaly makes the affected streams emit anomalous heat maps
	// during the window — the alarm trigger.
	FaultAnomaly = "anomaly"
	// FaultSwap schedules a hot swap to the refreshed model for the
	// affected streams at per-stream interval boundary SwapInterval.
	FaultSwap = "swap"
)

// Fault is one scripted injection.
type Fault struct {
	Kind                    string
	FromMicros, UntilMicros int64
	// StreamLo, StreamHi bound the affected streams [lo, hi); 0,0 means
	// every stream.
	StreamLo, StreamHi int
	// Factor is the overload rate / stall service multiplier.
	Factor float64
	// SwapInterval is the FaultSwap per-stream boundary index.
	SwapInterval int
}

func (f *Fault) fill(streams int) error {
	switch f.Kind {
	case FaultOverload, FaultStall:
		if f.Factor <= 0 {
			return fmt.Errorf("fleet: %s fault factor %g: %w", f.Kind, f.Factor, ErrConfig)
		}
	case FaultAnomaly:
	case FaultSwap:
		if f.SwapInterval < 0 {
			return fmt.Errorf("fleet: swap fault at interval %d: %w", f.SwapInterval, ErrConfig)
		}
	default:
		return fmt.Errorf("fleet: unknown fault kind %q: %w", f.Kind, ErrConfig)
	}
	if f.StreamLo == 0 && f.StreamHi == 0 {
		f.StreamHi = streams
	}
	if f.StreamLo < 0 || f.StreamHi > streams || f.StreamLo >= f.StreamHi {
		return fmt.Errorf("fleet: fault streams [%d,%d): %w", f.StreamLo, f.StreamHi, ErrConfig)
	}
	if f.UntilMicros == 0 {
		f.UntilMicros = int64(1) << 62
	}
	return nil
}

// covers reports whether the fault affects stream s at virtual time t.
//
//mhm:deterministic
func (f *Fault) covers(t int64, s int) bool {
	return t >= f.FromMicros && t < f.UntilMicros && s >= f.StreamLo && s < f.StreamHi
}

// SimConfig parameterizes one simulation run.
type SimConfig struct {
	// Streams is the simulated device population (required).
	Streams int
	// Seed drives the workload generator, arrival jitter and detector
	// training; equal seeds reproduce runs byte-identically.
	Seed int64
	// HorizonMicros is the simulated duration (default 300_000 = 30
	// monitoring intervals).
	HorizonMicros int64
	// IntervalMicros is the monitoring interval (default 10_000, the
	// paper's 10 ms).
	IntervalMicros int64
	// JitterMicros bounds per-emission arrival jitter (default 500).
	JitterMicros int64
	// Shards is the initial shard count (default 4).
	Shards int
	// QueueDepth, MaxPerStream, HighWaterFrac: admission parameters,
	// defaults as in Config.
	QueueDepth    int
	MaxPerStream  int
	HighWaterFrac float64
	// ServiceMicros is the virtual analysis cost per interval
	// (default 50).
	ServiceMicros int64
	// Quantile selects the base model's threshold (default 0.01).
	Quantile float64
	// Alarm configures per-stream debouncing.
	Alarm alarm.Config
	// Scale enables autoscaling when non-nil; PollMicros is the gauge
	// publication / decision cadence (default 5 intervals).
	Scale      *ScaleConfig
	PollMicros int64
	// Faults is the injection script.
	Faults []Fault
	// Workers bounds the real goroutines scoring admitted batches
	// (default GOMAXPROCS; results are identical for every value).
	Workers int
	// Metrics receives the fleet metric set when non-nil.
	Metrics *obs.Registry
	// Trace records the decision trace when non-nil.
	Trace *Trace
}

func (c *SimConfig) fill() error {
	if c.Streams <= 0 {
		return fmt.Errorf("fleet: %d streams: %w", c.Streams, ErrConfig)
	}
	if c.HorizonMicros == 0 {
		c.HorizonMicros = 300_000
	}
	if c.IntervalMicros == 0 {
		c.IntervalMicros = 10_000
	}
	if c.HorizonMicros <= 0 || c.IntervalMicros <= 0 || c.JitterMicros < 0 ||
		c.JitterMicros >= c.IntervalMicros {
		return fmt.Errorf("fleet: horizon/interval/jitter %d/%d/%d: %w",
			c.HorizonMicros, c.IntervalMicros, c.JitterMicros, ErrConfig)
	}
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.Shards < 0 {
		return fmt.Errorf("fleet: %d shards: %w", c.Shards, ErrConfig)
	}
	if c.Shards > c.Streams {
		c.Shards = c.Streams
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 128
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf("fleet: queue depth %d: %w", c.QueueDepth, ErrConfig)
	}
	if c.MaxPerStream == 0 {
		c.MaxPerStream = 4
	}
	if c.MaxPerStream < 0 {
		return fmt.Errorf("fleet: per-stream cap %d: %w", c.MaxPerStream, ErrConfig)
	}
	if c.HighWaterFrac == 0 {
		c.HighWaterFrac = 0.75
	}
	if c.HighWaterFrac < 0 || c.HighWaterFrac > 1 {
		return fmt.Errorf("fleet: high-water fraction %g: %w", c.HighWaterFrac, ErrConfig)
	}
	if c.ServiceMicros == 0 {
		c.ServiceMicros = 50
	}
	if c.ServiceMicros < 0 {
		return fmt.Errorf("fleet: service %dµs: %w", c.ServiceMicros, ErrConfig)
	}
	if c.Quantile == 0 {
		c.Quantile = 0.01
	}
	if c.PollMicros == 0 {
		c.PollMicros = 5 * c.IntervalMicros
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	for i := range c.Faults {
		if err := c.Faults[i].fill(c.Streams); err != nil {
			return err
		}
	}
	return nil
}

// AlarmEvent is one alarm transition delivered by the fleet.
type AlarmEvent struct {
	Stream   int
	Interval int // per-stream scored interval index
	Raised   bool
	// AtMicros is the triggering interval's end time; DeliveredMicros is
	// when its analysis completed (the operator sees the alarm then).
	AtMicros        int64
	DeliveredMicros int64
}

// SimResult summarizes one run.
type SimResult struct {
	Submitted, Admitted, Shed int64
	Anomalous                 int64
	SwapsScheduled            int64
	// DroppedIntervals counts admitted intervals that resolved no model
	// (the registry returned nil). Hot swaps must never drop a stream's
	// interval, so this is 0 by invariant; the refresh experiments
	// assert it.
	DroppedIntervals int64
	Resizes          int
	FinalShards      int
	Alarms           []AlarmEvent
	// Interval completion latency over admitted intervals, virtual µs.
	P50IntervalMicros, P99IntervalMicros float64
	// Alarm delivery latency (completion − interval end) over raise
	// transitions, virtual µs.
	P99DeliveryMicros float64
	MaxQueueFrac      float64
}

// ModelMaintainer observes every scored interval from the simulator's
// sequential verdict pass — stream, per-stream admitted index, the
// verdict under the scoring model, the log density, and the raw MHM
// vector (valid only for the duration of the call). Implementations
// drive online model maintenance: they may schedule registry swaps from
// inside Observe. Because the pass is sequential and in admission
// order, a maintainer's decisions are deterministic at any worker
// count.
type ModelMaintainer interface {
	Observe(stream, scoredIdx int, anomalous bool, density float64, vec []float64)
}

// Sim is one configured simulation. Build with NewSim, run once with
// Run.
type Sim struct {
	cfg SimConfig
	wl  *Workload
	det *core.Detector
	reg *Registry
	met fleetMetrics
	mnt ModelMaintainer
}

// SetMaintainer installs a model maintainer before Run. The simulator
// materializes each scored interval's vector for it (one extra
// generator pass per interval), so leave it nil when not refreshing.
func (s *Sim) SetMaintainer(m ModelMaintainer) { s.mnt = m }

// SimRegion is the heat-map region the simulator monitors: 64 cells of
// 256 B — small enough that a 100k-stream run scores millions of
// intervals in seconds, structured enough for the detector to separate
// the workload's anomalous pattern.
var SimRegion = heatmap.Def{AddrBase: 0x2000_0000, Size: 64 * 256, Gran: 256}

// NewSim trains the base detector from the seeded workload and prepares
// the run. The refreshed model (version 2, recalibrated at the sharper
// θ0.5 threshold) backs FaultSwap injections.
func NewSim(cfg SimConfig) (*Sim, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	// Autoscaling decides from the obs gauges; without a registry the
	// gauges read 0 and every poll looks idle. Give the loop a private
	// registry rather than let it silently shrink to MinShards.
	if cfg.Scale != nil && cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	wl, err := NewWorkload(cfg.Seed, SimRegion)
	if err != nil {
		return nil, err
	}
	det, err := wl.TrainDetector(192, 96)
	if err != nil {
		return nil, fmt.Errorf("fleet: sim detector: %w", err)
	}
	base, err := NewModel(det, cfg.Quantile, 1)
	if err != nil {
		return nil, err
	}
	reg, err := NewRegistry(cfg.Streams, base)
	if err != nil {
		return nil, err
	}
	return &Sim{cfg: cfg, wl: wl, det: det, reg: reg, met: newFleetMetrics(cfg.Metrics)}, nil
}

// Detector exposes the trained base detector (tests derive reference
// scorers from it).
func (s *Sim) Detector() *core.Detector { return s.det }

// Registry exposes the per-stream model registry (tests assert swap
// boundaries landed).
func (s *Sim) Registry() *Registry { return s.reg }

// simEvent is one due submission in a tick bucket.
type simEvent struct {
	t      int64
	stream int
	genIdx int // generator interval number (includes shed emissions)
}

// simJob is one admitted interval awaiting scoring.
type simJob struct {
	stream    int
	scoredIdx int // per-stream admitted index (registry boundary domain)
	genIdx    int
	mdl       *Model
	t         int64 // interval end / arrival
	done      int64 // virtual completion
	anomalous bool  // generator-level (fault window), not the verdict
}

// simScratch is one worker's scoring state, pooled across chunks.
type simScratch struct {
	scorers map[*score.Engine]*score.Scorer
	vbuf    []float64
}

// qitem is one in-flight interval in a shard's FIFO.
type qitem struct {
	done   int64
	stream int
}

// Run executes the simulation. It may be called once per Sim.
func (s *Sim) Run() (*SimResult, error) {
	cfg := &s.cfg
	tr := cfg.Trace

	var auto *Autoscaler
	if cfg.Scale != nil {
		var err error
		if auto, err = NewAutoscaler(*cfg.Scale, cfg.Metrics); err != nil {
			return nil, err
		}
	}

	res := &SimResult{}

	// Schedule FaultSwap injections up front: boundaries are per-stream
	// interval indices, so scheduling time does not matter.
	altModel, err := NewModel(s.det, 0.005, 2)
	if err != nil {
		return nil, err
	}
	for i := range cfg.Faults {
		f := &cfg.Faults[i]
		if f.Kind != FaultSwap {
			continue
		}
		for st := f.StreamLo; st < f.StreamHi; st++ {
			if err := s.reg.SwapAt(st, f.SwapInterval, altModel); err != nil {
				return nil, err
			}
			res.SwapsScheduled++
			s.met.swaps.Inc()
		}
		tr.Eventf("t=%d swap streams=[%d,%d) at=%d version=%d",
			f.FromMicros, f.StreamLo, f.StreamHi, f.SwapInterval, altModel.version)
	}

	// Per-stream state.
	n := cfg.Streams
	next := make([]int64, n)   // next emission time
	genIdx := make([]int, n)   // emissions so far
	scored := make([]int, n)   // admitted (scored) intervals so far
	inflight := make([]int, n) // queued, not yet complete
	lastDone := make([]int64, n)
	rts := make([]*alarm.Runtime, n)
	for i := range rts {
		rt, err := alarm.NewRuntime(cfg.Alarm)
		if err != nil {
			return nil, err
		}
		rts[i] = rt
		// Stagger stream phases across the interval.
		next[i] = int64(splitmix64(uint64(cfg.Seed)^uint64(i)*0x9e3779b97f4a7c15) % uint64(cfg.IntervalMicros))
	}
	s.met.streams.Set(float64(n))

	// Shard state.
	shards := cfg.Shards
	busyUntil := make([]int64, shards)
	queues := make([][]qitem, shards)
	var retired []qitem // in-flight items of removed shards
	s.met.shards.Set(float64(shards))

	highWater := highWaterMark(cfg.QueueDepth, cfg.HighWaterFrac)
	lastPoll := int64(-1)
	// Queue-occupancy high-water mark over the poll window: sampling only
	// at poll boundaries (after the drain) would understate congestion,
	// since everything due by then has completed.
	windowMaxFrac := 0.0

	var latencies, windowLat, deliveryLat []float64

	pool := sync.Pool{New: func() any {
		return &simScratch{
			scorers: make(map[*score.Engine]*score.Scorer),
			vbuf:    make([]float64, SimRegion.Cells()),
		}
	}}

	var events []simEvent
	var admitted []simJob
	var dens []float64
	var mntVec []float64
	if s.mnt != nil {
		mntVec = make([]float64, SimRegion.Cells())
	}

	for tick := int64(0); tick < cfg.HorizonMicros; tick += cfg.IntervalMicros {
		tickEnd := tick + cfg.IntervalMicros

		// Gauge publication + autoscale decision at poll boundaries.
		if tick/cfg.PollMicros != lastPoll/cfg.PollMicros || lastPoll < 0 {
			lastPoll = tick
			for sh := range queues {
				drainShard(queues, inflight, sh, tick)
			}
			retired = drainRetired(retired, inflight, tick)
			maxFrac := windowMaxFrac
			windowMaxFrac = 0
			for _, q := range queues {
				if f := float64(len(q)) / float64(cfg.QueueDepth); f > maxFrac {
					maxFrac = f
				}
			}
			if maxFrac > res.MaxQueueFrac {
				res.MaxQueueFrac = maxFrac
			}
			p99 := quantileSorted(sortedCopy(windowLat), 0.99)
			windowLat = windowLat[:0]
			s.met.queueFrac.Set(maxFrac)
			s.met.p99.Set(p99)
			if auto != nil {
				target, reason := auto.Decide(tick, shards)
				if target > n {
					target = n
				}
				if target != shards {
					moved := MovedStreams(n, shards, target)
					tr.Eventf("t=%d resize %d->%d moved=%d reason=%s", tick, shards, target, moved, reason)
					// Shrink: surviving in-flight work keeps draining from
					// the retired list; grow: new shards start idle.
					for sh := target; sh < shards; sh++ {
						retired = append(retired, queues[sh]...)
					}
					if target < shards {
						busyUntil = busyUntil[:target]
						queues = queues[:target]
					} else {
						for sh := shards; sh < target; sh++ {
							busyUntil = append(busyUntil, tick)
							queues = append(queues, nil)
						}
					}
					shards = target
					res.Resizes++
					s.met.resizes.Inc()
					s.met.shards.Set(float64(shards))
				}
			}
		}

		// Collect the tick's emissions, time-sorted with stream as the
		// tie-break so the admission order is total.
		events = events[:0]
		for st := 0; st < n; st++ {
			for next[st] < tickEnd {
				events = append(events, simEvent{t: next[st], stream: st, genIdx: genIdx[st]})
				genIdx[st]++
				period := cfg.IntervalMicros
				for i := range cfg.Faults {
					f := &cfg.Faults[i]
					if f.Kind == FaultOverload && f.covers(next[st], st) {
						period = int64(float64(period) / f.Factor)
						if period < 1 {
							period = 1
						}
					}
				}
				adv := period + s.wl.jitter(st, genIdx[st], cfg.JitterMicros)
				if adv < 1 {
					adv = 1
				}
				next[st] += adv
			}
		}
		sort.Slice(events, func(i, j int) bool {
			if events[i].t != events[j].t {
				return events[i].t < events[j].t
			}
			return events[i].stream < events[j].stream
		})

		// Sequential admission pass: every decision in event order.
		admitted = admitted[:0]
		for _, ev := range events {
			res.Submitted++
			s.met.submitted.Inc()
			sh := RouteStream(ev.stream, shards)
			drainShard(queues, inflight, sh, ev.t)
			retired = drainRetired(retired, inflight, ev.t)
			reason := admitVerdict(len(queues[sh]), cfg.QueueDepth, inflight[ev.stream],
				cfg.MaxPerStream, highWater)
			if reason != "" {
				res.Shed++
				s.met.shed.Inc()
				tr.Eventf("t=%d shed stream=%d shard=%d qlen=%d inflight=%d reason=%s",
					ev.t, ev.stream, sh, len(queues[sh]), inflight[ev.stream], reason)
				continue
			}
			idx := scored[ev.stream]
			scored[ev.stream]++
			mdl := s.reg.ModelFor(ev.stream, idx)
			if mdl == nil {
				// Never expected: registry slots always hold a model and
				// a swap replaces the pointer atomically. Counted rather
				// than panicked so the refresh experiments can assert the
				// zero-drop invariant held end to end.
				res.DroppedIntervals++
				continue
			}
			svc := cfg.ServiceMicros
			for i := range cfg.Faults {
				f := &cfg.Faults[i]
				if f.Kind == FaultStall && f.covers(ev.t, ev.stream) {
					svc = int64(float64(svc) * f.Factor)
				}
			}
			start := ev.t
			if busyUntil[sh] > start {
				start = busyUntil[sh]
			}
			if lastDone[ev.stream] > start {
				start = lastDone[ev.stream]
			}
			done := start + svc
			busyUntil[sh] = done
			lastDone[ev.stream] = done
			queues[sh] = append(queues[sh], qitem{done: done, stream: ev.stream})
			inflight[ev.stream]++
			if f := float64(len(queues[sh])) / float64(cfg.QueueDepth); f > windowMaxFrac {
				windowMaxFrac = f
			}
			anom := false
			for i := range cfg.Faults {
				f := &cfg.Faults[i]
				if f.Kind == FaultAnomaly && f.covers(ev.t, ev.stream) {
					anom = true
				}
			}
			admitted = append(admitted, simJob{
				stream: ev.stream, scoredIdx: idx, genIdx: ev.genIdx,
				mdl: mdl, t: ev.t, done: done, anomalous: anom,
			})
			lat := float64(done - ev.t)
			latencies = append(latencies, lat)
			windowLat = append(windowLat, lat)
			res.Admitted++
			s.met.admitted.Inc()
			s.met.interval.Observe(lat)
		}

		// Parallel scoring of the admitted batch: densities land in
		// per-slot storage, so the fold below is order-independent and
		// bit-identical at any worker count.
		if cap(dens) < len(admitted) {
			dens = make([]float64, len(admitted))
		}
		dens = dens[:len(admitted)]
		train.Chunks(len(admitted), 64, cfg.Workers, func(lo, hi, _ int) {
			sc := pool.Get().(*simScratch)
			defer pool.Put(sc)
			for i := lo; i < hi; i++ {
				j := &admitted[i]
				s.wl.VectorInto(sc.vbuf, j.stream, j.genIdx, j.anomalous)
				scorer := sc.scorers[j.mdl.eng]
				if scorer == nil {
					scorer = j.mdl.eng.NewScorer()
					sc.scorers[j.mdl.eng] = scorer
				}
				lp, err := scorer.Score(sc.vbuf)
				if err != nil {
					panic("fleet: sim score: " + err.Error())
				}
				dens[i] = lp
			}
		})

		// Sequential verdict + alarm pass in admission order.
		for i := range admitted {
			j := &admitted[i]
			anomalous := dens[i] < j.mdl.theta
			if anomalous {
				res.Anomalous++
				s.met.anomalous.Inc()
			}
			if s.mnt != nil {
				s.wl.VectorInto(mntVec, j.stream, j.genIdx, j.anomalous)
				s.mnt.Observe(j.stream, j.scoredIdx, anomalous, dens[i], mntVec)
			}
			ev := rts[j.stream].Observe(anomalous, j.t)
			if ev == nil {
				continue
			}
			res.Alarms = append(res.Alarms, AlarmEvent{
				Stream: j.stream, Interval: j.scoredIdx, Raised: ev.Raised,
				AtMicros: j.t, DeliveredMicros: j.done,
			})
			tr.Eventf("t=%d alarm stream=%d interval=%d raised=%t delivered=%d",
				j.t, j.stream, j.scoredIdx, ev.Raised, j.done)
			if ev.Raised {
				s.met.raised.Inc()
				deliveryLat = append(deliveryLat, float64(j.done-j.t))
				s.met.delivery.Observe(float64(j.done - j.t))
			} else {
				s.met.cleared.Inc()
			}
		}
	}

	lat := sortedCopy(latencies)
	res.P50IntervalMicros = quantileSorted(lat, 0.50)
	res.P99IntervalMicros = quantileSorted(lat, 0.99)
	res.P99DeliveryMicros = quantileSorted(sortedCopy(deliveryLat), 0.99)
	res.FinalShards = shards
	return res, nil
}

// drainShard completes queued intervals whose virtual finish time has
// passed, releasing the streams' in-flight slots. A negative shard
// index is a no-op.
//
//mhm:deterministic
func drainShard(queues [][]qitem, inflight []int, shard int, now int64) {
	if shard < 0 || shard >= len(queues) {
		return
	}
	q := queues[shard]
	k := 0
	for k < len(q) && q[k].done <= now {
		inflight[q[k].stream]--
		k++
	}
	if k > 0 {
		queues[shard] = q[:copy(q, q[k:])]
	}
}

// drainRetired completes in-flight intervals of removed shards.
//
//mhm:deterministic
func drainRetired(retired []qitem, inflight []int, now int64) []qitem {
	k := 0
	for _, it := range retired {
		if it.done <= now {
			inflight[it.stream]--
		} else {
			retired[k] = it
			k++
		}
	}
	return retired[:k]
}

// sortedCopy returns an ascending copy of xs.
//
//mhm:deterministic
func sortedCopy(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Float64s(out)
	return out
}

// quantileSorted reads the q-quantile from an ascending slice (0 when
// empty), nearest-rank.
//
//mhm:deterministic
func quantileSorted(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(q * float64(len(xs)))
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}
