package fleet

import (
	"errors"
	"sync"
	"testing"

	"github.com/memheatmap/mhm/internal/core"
)

// TestRegistryRejectsStackedSwap pins the single-pending-swap contract:
// scheduling a second, different boundary while one is pending returns
// ErrSwapPending and leaves the original schedule intact.
func TestRegistryRejectsStackedSwap(t *testing.T) {
	base, alt := testModels(t)
	r, err := NewRegistry(2, base)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SwapAt(0, 5, alt); err != nil {
		t.Fatal(err)
	}
	if err := r.SwapAt(0, 9, base); !errors.Is(err, ErrSwapPending) {
		t.Fatalf("stacked swap: err = %v, want ErrSwapPending", err)
	}
	// Same boundary still coalesces deterministically.
	if err := r.SwapAt(0, 5, alt); err != nil {
		t.Fatalf("same-boundary replace: %v", err)
	}
	// The original boundary fires; the rejected one never does.
	if m := r.ModelFor(0, 4); m.Version() != 1 {
		t.Fatalf("interval 4 under version %d", m.Version())
	}
	if m := r.ModelFor(0, 5); m.Version() != 2 {
		t.Fatalf("interval 5 under version %d", m.Version())
	}
	// Pending slot drained: a new boundary schedules cleanly now.
	if err := r.SwapAt(0, 9, base); err != nil {
		t.Fatalf("post-drain schedule: %v", err)
	}
}

// TestRegistrySwapAtCoalesce pins latest-wins semantics: the newest
// scheduled model replaces the pending one, whatever its boundary.
func TestRegistrySwapAtCoalesce(t *testing.T) {
	base, alt := testModels(t)
	r, err := NewRegistry(1, base)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SwapAt(0, 10, alt); err != nil {
		t.Fatal(err)
	}
	third, err := NewModel(fixtureDetector(t), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SwapAtCoalesce(0, 4, third); err != nil {
		t.Fatal(err)
	}
	// The coalesced boundary fires with the newest model; the replaced
	// schedule is gone.
	if m := r.ModelFor(0, 4); m.Version() != 3 {
		t.Fatalf("interval 4 under version %d, want 3", m.Version())
	}
	if m := r.ModelFor(0, 10); m.Version() != 3 {
		t.Fatalf("interval 10 under version %d, want 3", m.Version())
	}
}

// TestRegistrySwapAllAtCoalesce checks the fleet-wide latest-wins path
// and that immediate Swap clears a pending schedule.
func TestRegistrySwapAllAtCoalesce(t *testing.T) {
	base, alt := testModels(t)
	r, err := NewRegistry(3, base)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SwapAllAt(6, alt); err != nil {
		t.Fatal(err)
	}
	third, err := NewModel(fixtureDetector(t), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SwapAllAtCoalesce(3, third); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		if m := r.ModelFor(s, 3); m.Version() != 3 {
			t.Fatalf("stream %d interval 3 under version %d", s, m.Version())
		}
	}
	// Immediate Swap clears whatever is pending.
	if err := r.SwapAllAt(8, alt); err != nil {
		t.Fatal(err)
	}
	if err := r.Swap(1, base); err != nil {
		t.Fatal(err)
	}
	if m := r.ModelFor(1, 100); m.Version() != 1 {
		t.Fatalf("post-Swap stream 1 under version %d, want 1", m.Version())
	}
	if m := r.ModelFor(0, 100); m.Version() != 2 {
		t.Fatalf("stream 0 under version %d, want 2", m.Version())
	}
}

// TestRegistryConcurrentStackedSwaps hammers one stream's slot from
// many schedulers while the owner advances; run under -race this pins
// that rejected stacking is just an error, never a data race, and the
// owner always observes a fully-applied model.
func TestRegistryConcurrentStackedSwaps(t *testing.T) {
	base, alt := testModels(t)
	r, err := NewRegistry(1, base)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for at := 0; ; at++ {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				if g%2 == 0 {
					err = r.SwapAt(0, at%64, alt)
				} else {
					err = r.SwapAtCoalesce(0, at%64, alt)
				}
				if err != nil && !errors.Is(err, ErrSwapPending) {
					panic(err)
				}
			}
		}(g)
	}
	for idx := 0; idx < 2000; idx++ {
		if m := r.ModelFor(0, idx); m == nil {
			t.Fatalf("interval %d resolved nil model", idx)
		}
	}
	close(stop)
	wg.Wait()
}

func fixtureDetector(t *testing.T) *core.Detector {
	t.Helper()
	_, det := fixture(t)
	return det
}
