package fleet

import (
	"testing"
)

func testModels(t *testing.T) (*Model, *Model) {
	t.Helper()
	_, det := fixture(t)
	base, err := NewModel(det, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	alt, err := NewModel(det, 0.005, 2)
	if err != nil {
		t.Fatal(err)
	}
	return base, alt
}

func TestModelAccessors(t *testing.T) {
	base, alt := testModels(t)
	if base.Version() != 1 || alt.Version() != 2 {
		t.Fatalf("versions %d/%d", base.Version(), alt.Version())
	}
	if base.Engine() == nil || alt.Theta() >= base.Theta() {
		// θ0.5 is stricter (lower) than the default θ1.
		t.Fatalf("theta ordering: base %v alt %v", base.Theta(), alt.Theta())
	}
	if _, err := NewModel(nil, 0, 1); err == nil {
		t.Error("nil detector accepted")
	}
}

func TestRegistrySwapAtBoundary(t *testing.T) {
	base, alt := testModels(t)
	r, err := NewRegistry(4, base)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.SwapAt(1, 3, alt); err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < 6; idx++ {
		m := r.ModelFor(1, idx)
		want := 1
		if idx >= 3 {
			want = 2
		}
		if m.Version() != want {
			t.Fatalf("idx %d scored by v%d, want v%d", idx, m.Version(), want)
		}
	}
	// Unswapped streams are untouched.
	if m := r.ModelFor(0, 100); m.Version() != 1 {
		t.Fatalf("stream 0 on v%d", m.Version())
	}
}

func TestRegistrySwapAtReplacesSameBoundary(t *testing.T) {
	base, alt := testModels(t)
	r, _ := NewRegistry(1, base)
	if err := r.SwapAt(0, 2, base); err != nil {
		t.Fatal(err)
	}
	if err := r.SwapAt(0, 2, alt); err != nil {
		t.Fatal(err)
	}
	if m := r.ModelFor(0, 2); m.Version() != 2 {
		t.Fatalf("same-boundary reschedule ignored, got v%d", m.Version())
	}
}

func TestRegistryPassedBoundaryAppliesNext(t *testing.T) {
	base, alt := testModels(t)
	r, _ := NewRegistry(1, base)
	if m := r.ModelFor(0, 0); m.Version() != 1 {
		t.Fatal("wrong base")
	}
	if m := r.ModelFor(0, 1); m.Version() != 1 {
		t.Fatal("wrong base")
	}
	// Boundary 1 is already in the past (next idx is 2): applies to the
	// very next interval.
	if err := r.SwapAt(0, 1, alt); err != nil {
		t.Fatal(err)
	}
	if m := r.ModelFor(0, 2); m.Version() != 2 {
		t.Fatal("passed boundary did not apply to the next interval")
	}
}

func TestRegistrySwapImmediateAndCurrent(t *testing.T) {
	base, alt := testModels(t)
	r, _ := NewRegistry(2, base)
	if err := r.SwapAt(0, 100, alt); err != nil {
		t.Fatal(err)
	}
	// Current does not advance scheduled swaps.
	if m, err := r.Current(0); err != nil || m.Version() != 1 {
		t.Fatalf("current %v %v", m, err)
	}
	// Immediate Swap clears the pending schedule.
	if err := r.Swap(0, alt); err != nil {
		t.Fatal(err)
	}
	if m := r.ModelFor(0, 0); m.Version() != 2 {
		t.Fatal("immediate swap not visible")
	}
	if err := r.SwapAllAt(5, alt); err != nil {
		t.Fatal(err)
	}
	if m := r.ModelFor(1, 7); m.Version() != 2 {
		t.Fatal("SwapAllAt missed a stream")
	}
}

func TestRegistryValidation(t *testing.T) {
	base, _ := testModels(t)
	if _, err := NewRegistry(0, base); err == nil {
		t.Error("zero streams accepted")
	}
	if _, err := NewRegistry(2, nil); err == nil {
		t.Error("nil base accepted")
	}
	r, _ := NewRegistry(2, base)
	if err := r.Swap(5, base); err == nil {
		t.Error("out-of-range stream accepted")
	}
	if err := r.SwapAt(0, -1, base); err == nil {
		t.Error("negative boundary accepted")
	}
	if err := r.SwapAt(0, 1, nil); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := r.Current(-1); err == nil {
		t.Error("negative stream accepted")
	}
}
