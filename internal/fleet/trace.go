// The decision trace: an append-only textual log of every control-plane
// decision the fleet takes — admission sheds, hot swaps, resizes,
// autoscale verdicts, alarm deliveries. The simulator's determinism bar
// is byte-identity of this trace across runs with the same seed, the
// same bar mhmlint's detorder analyzer enforces on scoring and
// training: if two runs produce different bytes, a decision depended on
// something other than (seed, config).
package fleet

import (
	"bytes"
	"fmt"
)

// Trace accumulates decision lines. A nil *Trace is valid and records
// nothing, so the live controller can run untraced for free. Not
// internally synchronized: the simulator's sequential decision pass is
// the only writer.
type Trace struct {
	buf   bytes.Buffer
	lines int
}

// Eventf appends one formatted decision line. No-op on a nil trace.
func (t *Trace) Eventf(format string, args ...any) {
	if t == nil {
		return
	}
	fmt.Fprintf(&t.buf, format, args...)
	t.buf.WriteByte('\n')
	t.lines++
}

// Bytes returns the accumulated trace (nil for a nil trace).
func (t *Trace) Bytes() []byte {
	if t == nil {
		return nil
	}
	return t.buf.Bytes()
}

// Lines reports the number of recorded decisions.
func (t *Trace) Lines() int {
	if t == nil {
		return 0
	}
	return t.lines
}
