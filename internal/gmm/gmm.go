// Package gmm implements Gaussian mixture models with full covariances,
// trained by expectation-maximization — the paper's §4.3 clustering of
// reduced MHMs. Densities are computed in log space through Cholesky
// factors for numerical stability.
//
// Note on the paper: Eq. 2 writes the multivariate normal with Σ instead
// of Σ⁻¹ in the exponent and an inverted normalizing constant; this
// package implements the standard (correct) density.
package gmm

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"

	"github.com/memheatmap/mhm/internal/mat"
	"github.com/memheatmap/mhm/internal/train"
)

// ErrTraining wraps invalid training inputs or EM failures.
var ErrTraining = errors.New("gmm: invalid training input")

const log2Pi = 1.8378770664093453 // ln(2π)

// Component is one Gaussian of the mixture.
type Component struct {
	// Weight is the mixing parameter λ_j.
	Weight float64
	// Mean is µ_j.
	Mean []float64
	// Cov is Σ_j (D x D, symmetric positive definite).
	Cov *mat.Matrix

	chol   *mat.Cholesky // cached factor of Cov
	logDet float64
}

// prepare caches the Cholesky factor; covariance must be SPD.
func (c *Component) prepare() error {
	ch, err := mat.NewCholesky(c.Cov)
	if err != nil {
		return fmt.Errorf("gmm: component covariance: %w", err)
	}
	c.chol = ch
	c.logDet = ch.LogDet()
	return nil
}

// LogPDF returns ln f(x | µ, Σ).
func (c *Component) LogPDF(x []float64) (float64, error) {
	n := len(c.Mean)
	return c.logPDFScratch(x, make([]float64, n), make([]float64, n))
}

// Model is a J-component Gaussian mixture.
type Model struct {
	Components []Component
}

// Dim returns the data dimensionality.
func (m *Model) Dim() int {
	if len(m.Components) == 0 {
		return 0
	}
	return len(m.Components[0].Mean)
}

// LogProb returns ln Pr(x) = ln Σ_j λ_j f(x | µ_j, Σ_j), the quantity the
// paper's figures plot (log probability density of an MHM).
//
//mhm:deterministic
func (m *Model) LogProb(x []float64) (float64, error) {
	if len(m.Components) == 0 {
		return 0, fmt.Errorf("gmm: empty model: %w", ErrTraining)
	}
	return m.LogProbScratch(x, m.NewScratch())
}

// Responsibilities returns the posterior component probabilities for x.
func (m *Model) Responsibilities(x []float64) ([]float64, error) {
	terms := make([]float64, len(m.Components))
	best := math.Inf(-1)
	for j := range m.Components {
		c := &m.Components[j]
		if c.Weight <= 0 {
			terms[j] = math.Inf(-1)
			continue
		}
		lp, err := c.LogPDF(x)
		if err != nil {
			return nil, err
		}
		terms[j] = math.Log(c.Weight) + lp
		if terms[j] > best {
			best = terms[j]
		}
	}
	out := make([]float64, len(terms))
	if math.IsInf(best, -1) {
		// Degenerate: uniform responsibilities.
		for j := range out {
			out[j] = 1 / float64(len(out))
		}
		return out, nil
	}
	sum := 0.0
	for j, t := range terms {
		out[j] = math.Exp(t - best)
		sum += out[j]
	}
	for j := range out {
		out[j] /= sum
	}
	return out, nil
}

// TotalLogLikelihood returns Σ_i ln Pr(x_i).
func (m *Model) TotalLogLikelihood(data [][]float64) (float64, error) {
	total := 0.0
	for i, x := range data {
		lp, err := m.LogProb(x)
		if err != nil {
			return 0, fmt.Errorf("gmm: sample %d: %w", i, err)
		}
		total += lp
	}
	return total, nil
}

// Options tunes Train.
type Options struct {
	// Components is J, the number of Gaussians (the paper uses 5).
	Components int
	// MaxIter bounds EM iterations per restart (default 200).
	MaxIter int
	// Tol stops EM when the total log-likelihood improves by less than
	// Tol (default 1e-6).
	Tol float64
	// Restarts runs EM this many times from different initializations and
	// keeps the best (the paper runs 10). Default 1.
	Restarts int
	// Reg is the diagonal regularization added to covariances to keep
	// them SPD (default 1e-6 relative to data variance).
	Reg float64
	// Seed drives initialization (default 1).
	Seed int64
	// Parallel runs the restarts on separate goroutines. Results are
	// identical to the serial run: each restart derives its own RNG from
	// (Seed, restart index).
	Parallel bool
	// Workers bounds the goroutines the training engine uses inside each
	// restart (blocked E-step sample chunks, per-component M-step).
	// Values below 1 mean serial. Fits are bit-identical for every
	// worker count, so Workers trades only wall-clock; combine with
	// Parallel when Restarts alone cannot saturate the machine.
	Workers int
}

func (o *Options) fill() error {
	if o.Components <= 0 {
		return fmt.Errorf("gmm: components %d: %w", o.Components, ErrTraining)
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 200
	}
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}
	if o.Restarts <= 0 {
		o.Restarts = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return nil
}

// Train fits a mixture to data by EM with k-means++ style seeding,
// returning the restart with the highest training log-likelihood.
//
//mhm:deterministic
func Train(data [][]float64, opts Options) (*Model, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	n := len(data)
	if n == 0 {
		return nil, fmt.Errorf("gmm: empty training set: %w", ErrTraining)
	}
	d := len(data[0])
	if d == 0 {
		return nil, fmt.Errorf("gmm: zero-dimensional data: %w", ErrTraining)
	}
	for i, x := range data {
		if len(x) != d {
			return nil, fmt.Errorf("gmm: sample %d has dim %d, want %d: %w", i, len(x), d, ErrTraining)
		}
	}
	if opts.Components > n {
		return nil, fmt.Errorf("gmm: %d components for %d samples: %w", opts.Components, n, ErrTraining)
	}

	reg := opts.Reg
	if mat.IsZero(reg) {
		reg = 1e-6 * dataVariance(data)
		if reg <= 0 {
			reg = 1e-9
		}
	}

	// Each restart gets its own deterministic RNG so serial and parallel
	// execution produce identical models.
	type attempt struct {
		m   *Model
		ll  float64
		err error
	}
	attempts := make([]attempt, opts.Restarts)
	runOne := func(r int) {
		rng := rand.New(rand.NewSource(opts.Seed + int64(r)*0x9E3779B9))
		m, ll, err := emOnce(data, opts.Components, opts.MaxIter, opts.Tol, reg, opts.Workers, rng)
		attempts[r] = attempt{m: m, ll: ll, err: err}
	}
	if opts.Parallel {
		var wg sync.WaitGroup
		for r := 0; r < opts.Restarts; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				runOne(r)
			}(r)
		}
		wg.Wait()
	} else {
		for r := 0; r < opts.Restarts; r++ {
			runOne(r)
		}
	}
	var best *Model
	bestLL := math.Inf(-1)
	var lastErr error
	for _, a := range attempts {
		if a.err != nil {
			lastErr = a.err
			continue
		}
		if a.ll > bestLL {
			best, bestLL = a.m, a.ll
		}
	}
	if best == nil {
		return nil, fmt.Errorf("gmm: all %d restarts failed: %w", opts.Restarts, lastErr)
	}
	return best, nil
}

// dataVariance returns the average per-dimension variance.
func dataVariance(data [][]float64) float64 {
	n := len(data)
	d := len(data[0])
	mean := make([]float64, d)
	for _, x := range data {
		for i, v := range x {
			mean[i] += v
		}
	}
	for i := range mean {
		mean[i] /= float64(n)
	}
	s := 0.0
	for _, x := range data {
		for i, v := range x {
			dv := v - mean[i]
			s += dv * dv
		}
	}
	return s / float64(n*d)
}

// kmeansSeed picks initial means by k-means++ and refines with a few
// Lloyd iterations.
func kmeansSeed(data [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(data)
	means := make([][]float64, 0, k)
	first := data[rng.Intn(n)]
	means = append(means, append([]float64(nil), first...))
	dist := make([]float64, n)
	for len(means) < k {
		total := 0.0
		for i, x := range data {
			dmin := math.Inf(1)
			for _, mu := range means {
				if dd := mat.DistEuclid(x, mu); dd < dmin {
					dmin = dd
				}
			}
			dist[i] = dmin * dmin
			total += dist[i]
		}
		if mat.IsZero(total) {
			// All points coincide with chosen means; duplicate one.
			means = append(means, append([]float64(nil), data[rng.Intn(n)]...))
			continue
		}
		r := rng.Float64() * total
		acc := 0.0
		pick := n - 1
		for i, dd := range dist {
			acc += dd
			if acc >= r {
				pick = i
				break
			}
		}
		means = append(means, append([]float64(nil), data[pick]...))
	}
	// Lloyd refinement.
	assign := make([]int, n)
	for iter := 0; iter < 10; iter++ {
		changed := false
		for i, x := range data {
			bestJ, bestD := 0, math.Inf(1)
			for j, mu := range means {
				if dd := mat.DistEuclid(x, mu); dd < bestD {
					bestJ, bestD = j, dd
				}
			}
			if assign[i] != bestJ {
				assign[i] = bestJ
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		counts := make([]int, k)
		sums := make([][]float64, k)
		for j := range sums {
			sums[j] = make([]float64, len(data[0]))
		}
		for i, x := range data {
			counts[assign[i]]++
			for c, v := range x {
				sums[assign[i]][c] += v
			}
		}
		for j := range means {
			if counts[j] == 0 {
				continue // keep the old mean for empty clusters
			}
			for c := range means[j] {
				means[j][c] = sums[j][c] / float64(counts[j])
			}
		}
	}
	return means
}

// emOnce runs one EM fit from a fresh initialization through the
// internal/train engine: k-means++ seeding here, then the blocked
// E-step / per-component M-step loop with all scratch preallocated once
// for the restart. The fit is bit-identical to the historical staged
// loop (which evaluated every component density twice per sample — see
// the regression test), except when a dead component is re-seeded: the
// engine picks the worst-modeled sample from the E-step's own
// log-likelihoods instead of rescanning against a half-updated model.
func emOnce(data [][]float64, k, maxIter int, tol, reg float64, workers int, rng *rand.Rand) (*Model, float64, error) {
	means := kmeansSeed(data, k, rng)

	// Initial covariances: shared spherical from overall variance.
	v := dataVariance(data)
	if v <= 0 {
		v = 1
	}
	fit, err := train.EMFit(data, means, train.EMConfig{
		K:       k,
		MaxIter: maxIter,
		Tol:     tol,
		Reg:     reg,
		InitVar: v,
		Workers: workers,
	})
	if err != nil {
		return nil, 0, fmt.Errorf("gmm: component covariance: %w", err)
	}

	model, err := modelFromFit(fit)
	if err != nil {
		return nil, 0, err
	}
	return model, fit.LogLikelihood, nil
}

// modelFromFit converts a flat engine fit into a prepared Model. The
// model owns its storage.
func modelFromFit(fit *train.EMModel) (*Model, error) {
	k, d := fit.K, fit.D
	model := &Model{Components: make([]Component, k)}
	for j := 0; j < k; j++ {
		cov := mat.New(d, d)
		for a := 0; a < d; a++ {
			copy(cov.Row(a), fit.Covs[j*d*d+a*d:j*d*d+(a+1)*d])
		}
		model.Components[j] = Component{
			Weight: fit.Weights[j],
			Mean:   append([]float64(nil), fit.Means[j*d:(j+1)*d]...),
			Cov:    cov,
		}
		if err := model.Components[j].prepare(); err != nil {
			return nil, err
		}
	}
	return model, nil
}

// componentJSON serializes one Gaussian.
type componentJSON struct {
	Weight float64     `json:"weight"`
	Mean   []float64   `json:"mean"`
	Cov    [][]float64 `json:"cov"`
}

// Save writes the model as JSON.
func (m *Model) Save(w io.Writer) error {
	out := make([]componentJSON, len(m.Components))
	for j, c := range m.Components {
		rows := make([][]float64, c.Cov.Rows())
		for i := range rows {
			rows[i] = append([]float64(nil), c.Cov.Row(i)...)
		}
		out[j] = componentJSON{Weight: c.Weight, Mean: c.Mean, Cov: rows}
	}
	return json.NewEncoder(w).Encode(out)
}

// Load reads a model produced by Save.
func Load(r io.Reader) (*Model, error) {
	var in []componentJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("gmm: decode model: %w", err)
	}
	if len(in) == 0 {
		return nil, fmt.Errorf("gmm: empty model: %w", ErrTraining)
	}
	m := &Model{Components: make([]Component, len(in))}
	for j, cj := range in {
		cov, err := mat.FromRows(cj.Cov)
		if err != nil {
			return nil, fmt.Errorf("gmm: component %d covariance: %w", j, err)
		}
		if cov.Rows() != len(cj.Mean) || cov.Cols() != len(cj.Mean) {
			return nil, fmt.Errorf("gmm: component %d: cov %dx%d for dim %d: %w",
				j, cov.Rows(), cov.Cols(), len(cj.Mean), ErrTraining)
		}
		m.Components[j] = Component{Weight: cj.Weight, Mean: cj.Mean, Cov: cov}
		if err := m.Components[j].prepare(); err != nil {
			return nil, err
		}
	}
	return m, nil
}
