// The warm-start mixture refresh: re-fit a live model over a fresh
// window of reduced MHMs by seeding EM from the model's own parameters
// instead of k-means++ restarts. A drifted-but-close start needs only a
// few bounded iterations through the blocked training engine — no
// restarts, no seeding scans — which is what makes the refresh loop an
// order of magnitude cheaper than Train.
package gmm

import (
	"fmt"

	"github.com/memheatmap/mhm/internal/mat"
	"github.com/memheatmap/mhm/internal/train"
)

// RefitOptions tunes Refit.
type RefitOptions struct {
	// MaxIter bounds the EM iterations (default 4). With BatchSize set
	// the fit always runs exactly MaxIter iterations — the bounded-
	// iteration refresh contract.
	MaxIter int
	// BatchSize, when positive, runs each iteration over one contiguous
	// rotating mini-batch instead of the full window.
	BatchSize int
	// Reg is the diagonal covariance regularization (default derived
	// from the data variance, as in Train).
	Reg float64
	// Workers bounds the goroutines inside the fit; fits are
	// bit-identical for every value.
	Workers int
}

// Refit warm-starts EM from prev over data and returns the refreshed
// mixture. prev is not modified; the returned model owns its storage.
// The component count and dimensionality are pinned to prev's — the
// warm-start contract shared with pca.Refresh.
//
//mhm:deterministic
func Refit(data [][]float64, prev *Model, opts RefitOptions) (*Model, error) {
	if prev == nil || len(prev.Components) == 0 {
		return nil, fmt.Errorf("gmm: Refit: empty model: %w", ErrTraining)
	}
	n := len(data)
	if n == 0 {
		return nil, fmt.Errorf("gmm: Refit: empty window: %w", ErrTraining)
	}
	k, d := len(prev.Components), prev.Dim()
	for i, x := range data {
		if len(x) != d {
			return nil, fmt.Errorf("gmm: Refit: sample %d has dim %d, want %d: %w", i, len(x), d, ErrTraining)
		}
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 4
	}
	reg := opts.Reg
	if mat.IsZero(reg) {
		reg = 1e-6 * dataVariance(data)
		if reg <= 0 {
			reg = 1e-9
		}
	}
	warm := &train.EMModel{
		K: k, D: d,
		Weights: make([]float64, k),
		Means:   make([]float64, k*d),
		Covs:    make([]float64, k*d*d),
	}
	for j := 0; j < k; j++ {
		c := &prev.Components[j]
		warm.Weights[j] = c.Weight
		copy(warm.Means[j*d:(j+1)*d], c.Mean)
		for a := 0; a < d; a++ {
			copy(warm.Covs[j*d*d+a*d:j*d*d+(a+1)*d], c.Cov.Row(a))
		}
	}
	fit, err := train.EMFit(data, nil, train.EMConfig{
		K:         k,
		MaxIter:   opts.MaxIter,
		Tol:       1e-6,
		Reg:       reg,
		Workers:   opts.Workers,
		Warm:      warm,
		BatchSize: opts.BatchSize,
	})
	if err != nil {
		return nil, fmt.Errorf("gmm: Refit: %w", err)
	}
	return modelFromFit(fit)
}
