package gmm

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/memheatmap/mhm/internal/mat"
)

// sampleMixture draws n points from a ground-truth mixture of spherical
// Gaussians at the given centers.
func sampleMixture(rng *rand.Rand, n int, centers [][]float64, sigma float64) ([][]float64, []int) {
	d := len(centers[0])
	data := make([][]float64, n)
	labels := make([]int, n)
	for i := range data {
		j := rng.Intn(len(centers))
		labels[i] = j
		x := make([]float64, d)
		for c := 0; c < d; c++ {
			x[c] = centers[j][c] + sigma*rng.NormFloat64()
		}
		data[i] = x
	}
	return data, labels
}

func TestLogPDFMatchesClosedForm(t *testing.T) {
	// 1-D standard normal: ln f(0) = -0.5 ln(2π).
	c := Component{
		Weight: 1,
		Mean:   []float64{0},
		Cov:    mat.Identity(1),
	}
	got, err := c.LogPDF([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	want := -0.5 * math.Log(2*math.Pi)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("LogPDF(0) = %g, want %g", got, want)
	}
	// ln f(2) = -0.5 ln(2π) - 2.
	got, err = c.LogPDF([]float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-(want-2)) > 1e-12 {
		t.Errorf("LogPDF(2) = %g, want %g", got, want-2)
	}
	if _, err := c.LogPDF([]float64{1, 2}); !errors.Is(err, ErrTraining) {
		t.Errorf("dim mismatch: %v", err)
	}
}

func TestLogPDFDiagonalCovariance(t *testing.T) {
	cov, _ := mat.FromRows([][]float64{{4, 0}, {0, 9}})
	c := Component{Weight: 1, Mean: []float64{1, -1}, Cov: cov}
	got, err := c.LogPDF([]float64{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	// -0.5*(2 ln2π + ln36 + (4/4 + 9/9)) = -0.5*(2 ln2π + ln36 + 2)
	want := -0.5 * (2*math.Log(2*math.Pi) + math.Log(36) + 2)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("LogPDF = %g, want %g", got, want)
	}
}

func TestModelLogProbMixture(t *testing.T) {
	// Two equally weighted unit Gaussians at ±2 in 1-D; density at 0 is
	// 2 * 0.5 * N(0; 2, 1) = N(2).
	m := &Model{Components: []Component{
		{Weight: 0.5, Mean: []float64{-2}, Cov: mat.Identity(1)},
		{Weight: 0.5, Mean: []float64{2}, Cov: mat.Identity(1)},
	}}
	got, err := m.LogProb([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	want := -0.5*math.Log(2*math.Pi) - 2
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("LogProb = %g, want %g", got, want)
	}
}

func TestResponsibilitiesSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 5}}
	data, _ := sampleMixture(rng, 200, centers, 1)
	m, err := Train(data, Options{Components: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		r, err := m.Responsibilities(data[i])
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, v := range r {
			if v < 0 {
				t.Errorf("negative responsibility %g", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("responsibilities sum to %g", sum)
		}
	}
}

func TestTrainRecoversWellSeparatedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	centers := [][]float64{{0, 0, 0}, {20, 0, 0}, {0, 20, 0}}
	data, _ := sampleMixture(rng, 600, centers, 1)
	m, err := Train(data, Options{Components: 3, Restarts: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Every true center must be within 1 unit of some learned mean.
	for _, c := range centers {
		best := math.Inf(1)
		for _, comp := range m.Components {
			if d := mat.DistEuclid(c, comp.Mean); d < best {
				best = d
			}
		}
		if best > 1 {
			t.Errorf("center %v not recovered (nearest mean %.2f away)", c, best)
		}
	}
	// Weights near 1/3 each.
	for _, comp := range m.Components {
		if comp.Weight < 0.2 || comp.Weight > 0.5 {
			t.Errorf("weight %g far from 1/3", comp.Weight)
		}
	}
}

func TestWeightsSumToOneAfterTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data, _ := sampleMixture(rng, 300, [][]float64{{0, 0}, {5, 5}}, 1)
	m, err := Train(data, Options{Components: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, c := range m.Components {
		sum += c.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %g", sum)
	}
}

func TestEMImprovesOverIterations(t *testing.T) {
	// Compare 1-iteration vs converged LL on the same data and seed.
	rng := rand.New(rand.NewSource(7))
	data, _ := sampleMixture(rng, 400, [][]float64{{0, 0}, {8, 8}}, 1.5)
	early, err := Train(data, Options{Components: 2, MaxIter: 1, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	converged, err := Train(data, Options{Components: 2, MaxIter: 200, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	llEarly, err := early.TotalLogLikelihood(data)
	if err != nil {
		t.Fatal(err)
	}
	llConv, err := converged.TotalLogLikelihood(data)
	if err != nil {
		t.Fatal(err)
	}
	if llConv < llEarly-1e-6 {
		t.Errorf("converged LL %g worse than 1-iteration LL %g", llConv, llEarly)
	}
}

func TestRestartsPickBest(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data, _ := sampleMixture(rng, 300, [][]float64{{0, 0}, {12, 0}, {0, 12}, {12, 12}}, 1)
	one, err := Train(data, Options{Components: 4, Restarts: 1, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Train(data, Options{Components: 4, Restarts: 10, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	llOne, _ := one.TotalLogLikelihood(data)
	llMany, _ := many.TotalLogLikelihood(data)
	if llMany < llOne-1e-9 {
		t.Errorf("10 restarts LL %g worse than 1 restart LL %g", llMany, llOne)
	}
}

func TestAnomaliesScoreLowerThanNormal(t *testing.T) {
	// The detection premise: points far from all training clusters have
	// much lower density.
	rng := rand.New(rand.NewSource(11))
	data, _ := sampleMixture(rng, 500, [][]float64{{0, 0}, {10, 0}}, 1)
	m, err := Train(data, Options{Components: 2, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	var normalMin float64 = math.Inf(1)
	for _, x := range data[:100] {
		lp, err := m.LogProb(x)
		if err != nil {
			t.Fatal(err)
		}
		if lp < normalMin {
			normalMin = lp
		}
	}
	anomaly, err := m.LogProb([]float64{50, 50})
	if err != nil {
		t.Fatal(err)
	}
	if anomaly >= normalMin {
		t.Errorf("anomaly LL %g not below normal minimum %g", anomaly, normalMin)
	}
}

func TestTrainValidation(t *testing.T) {
	ok := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	cases := []struct {
		name string
		data [][]float64
		opts Options
	}{
		{"empty", nil, Options{Components: 2}},
		{"zero dim", [][]float64{{}, {}}, Options{Components: 1}},
		{"ragged", [][]float64{{1, 2}, {3}}, Options{Components: 1}},
		{"zero components", ok, Options{}},
		{"more components than samples", ok, Options{Components: 5}},
	}
	for _, c := range cases {
		if _, err := Train(c.data, c.opts); !errors.Is(err, ErrTraining) {
			t.Errorf("%s: err = %v, want ErrTraining", c.name, err)
		}
	}
}

func TestTrainDeterministicPerSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	data, _ := sampleMixture(rng, 200, [][]float64{{0, 0}, {6, 6}}, 1)
	a, err := Train(data, Options{Components: 2, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(data, Options{Components: 2, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	la, _ := a.TotalLogLikelihood(data)
	lb, _ := b.TotalLogLikelihood(data)
	if la != lb {
		t.Errorf("same seed: LL %g vs %g", la, lb)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	data, _ := sampleMixture(rng, 200, [][]float64{{0, 0}, {7, 7}}, 1)
	m, err := Train(data, Options{Components: 2, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		a, _ := m.LogProb(data[i])
		b, err := m2.LogProb(data[i])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a-b) > 1e-9 {
			t.Errorf("sample %d: LogProb %g vs %g after round trip", i, a, b)
		}
	}
}

func TestLoadRejectsMalformed(t *testing.T) {
	cases := []string{
		"garbage",
		"[]",
		`[{"weight":1,"mean":[0,0],"cov":[[1,0]]}]`,
		`[{"weight":1,"mean":[0],"cov":[[0]]}]`, // non-SPD covariance
	}
	for i, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSingularCovarianceRejectedInLogPDF(t *testing.T) {
	cov, _ := mat.FromRows([][]float64{{1, 1}, {1, 1}}) // rank 1
	c := Component{Weight: 1, Mean: []float64{0, 0}, Cov: cov}
	if _, err := c.LogPDF([]float64{0, 0}); !errors.Is(err, mat.ErrSingular) {
		t.Errorf("singular cov: %v", err)
	}
}

func TestIdenticalPointsTrainWithRegularization(t *testing.T) {
	// Degenerate data (all points identical) must not crash EM thanks to
	// covariance regularization.
	data := make([][]float64, 20)
	for i := range data {
		data[i] = []float64{3, 3}
	}
	m, err := Train(data, Options{Components: 2, Seed: 17, Reg: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	lp, err := m.LogProb([]float64{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(lp) || math.IsInf(lp, 0) {
		t.Errorf("LogProb on degenerate fit = %g", lp)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	data, _ := sampleMixture(rng, 300, [][]float64{{0, 0}, {9, 9}, {0, 9}}, 1)
	serial, err := Train(data, Options{Components: 3, Restarts: 6, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Train(data, Options{Components: 3, Restarts: 6, Seed: 42, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		a, _ := serial.LogProb(data[i])
		b, err := parallel.LogProb(data[i])
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("sample %d: serial %g vs parallel %g", i, a, b)
		}
	}
}
