// Scratch-based scoring: allocation-free variants of the density
// evaluations for hot callers (the online detection loop scores one MHM
// every monitoring interval). The arithmetic is identical to the
// allocating entry points — LogProb routes through LogProbScratch — so
// both paths produce bit-identical densities.
package gmm

import (
	"fmt"
	"math"
)

// Scratch holds the working storage one LogProbScratch call needs. A
// Scratch is owned by a single goroutine; share a Model across
// goroutines by giving each its own Scratch.
type Scratch struct {
	diff  []float64 // x − µ_j, dimension D
	y     []float64 // forward-substitution solution, dimension D
	terms []float64 // per-component log terms, capacity J
}

// NewScratch returns scratch sized for m.
func (m *Model) NewScratch() *Scratch {
	d := m.Dim()
	return &Scratch{
		diff:  make([]float64, d),
		y:     make([]float64, d),
		terms: make([]float64, 0, len(m.Components)),
	}
}

// fits reports whether s can score a model of dimension d with j
// components.
func (s *Scratch) fits(d, j int) bool {
	return s != nil && len(s.diff) == d && len(s.y) == d && cap(s.terms) >= j
}

// logPDFScratch is LogPDF with caller-owned buffers for the mean offset
// and the triangular solve.
func (c *Component) logPDFScratch(x, diff, y []float64) (float64, error) {
	if len(x) != len(c.Mean) {
		return 0, fmt.Errorf("gmm: LogPDF: dim %d, want %d: %w", len(x), len(c.Mean), ErrTraining)
	}
	if c.chol == nil {
		if err := c.prepare(); err != nil {
			return 0, err
		}
	}
	for i := range x {
		diff[i] = x[i] - c.Mean[i]
	}
	m2, err := c.chol.MahalanobisSqScratch(diff, y)
	if err != nil {
		return 0, err
	}
	dim := float64(len(x))
	return -0.5 * (dim*log2Pi + c.logDet + m2), nil
}

// LogProbScratch is LogProb without per-call allocation: all working
// storage comes from s (from Model.NewScratch). The result is
// bit-identical to LogProb.
func (m *Model) LogProbScratch(x []float64, s *Scratch) (float64, error) {
	if len(m.Components) == 0 {
		return 0, fmt.Errorf("gmm: empty model: %w", ErrTraining)
	}
	if !s.fits(len(m.Components[0].Mean), len(m.Components)) {
		return 0, fmt.Errorf("gmm: scratch does not fit model (use Model.NewScratch): %w", ErrTraining)
	}
	best := math.Inf(-1)
	terms := s.terms[:0]
	for j := range m.Components {
		c := &m.Components[j]
		if c.Weight <= 0 {
			continue
		}
		lp, err := c.logPDFScratch(x, s.diff, s.y)
		if err != nil {
			return 0, err
		}
		term := math.Log(c.Weight) + lp
		terms = append(terms, term)
		if term > best {
			best = term
		}
	}
	if len(terms) == 0 || math.IsInf(best, -1) {
		return math.Inf(-1), nil
	}
	// Log-sum-exp.
	sum := 0.0
	for _, t := range terms {
		sum += math.Exp(t - best)
	}
	return best + math.Log(sum), nil
}
