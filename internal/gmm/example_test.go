package gmm_test

import (
	"fmt"
	"math/rand"

	"github.com/memheatmap/mhm/internal/gmm"
)

// Example fits a two-component mixture and shows that a far-away point
// scores a much lower log density than the training data — the paper's
// detection criterion.
func Example() {
	rng := rand.New(rand.NewSource(1))
	var data [][]float64
	for i := 0; i < 400; i++ {
		cx, cy := 0.0, 0.0
		if i%2 == 1 {
			cx, cy = 10, 10
		}
		data = append(data, []float64{cx + rng.NormFloat64(), cy + rng.NormFloat64()})
	}
	model, err := gmm.Train(data, gmm.Options{Components: 2, Restarts: 3, Seed: 2})
	if err != nil {
		panic(err)
	}
	normal, _ := model.LogProb(data[0])
	anomaly, _ := model.LogProb([]float64{50, -50})
	fmt.Println("components:", len(model.Components))
	fmt.Println("normal scores higher:", normal > anomaly)
	// Output:
	// components: 2
	// normal scores higher: true
}
