package gmm

import (
	"fmt"
	"math"
)

// The paper picks J manually and cites Figueiredo & Jain for automatic
// selection. This file provides the standard information-criterion
// route: fit a range of J values and keep the model minimizing BIC
// (Bayesian Information Criterion), which penalizes the parameter count
// k·(1 + D + D(D+1)/2) − 1 of a full-covariance mixture.

// Selection reports one candidate of TrainAuto's sweep.
type Selection struct {
	J             int
	LogLikelihood float64
	Params        int
	BIC           float64
}

// numParams returns the free-parameter count of a J-component,
// D-dimensional full-covariance mixture.
func numParams(j, d int) int {
	perComp := 1 + d + d*(d+1)/2 // weight + mean + covariance
	return j*perComp - 1         // weights sum to 1
}

// TrainAuto fits mixtures for every J in [minJ, maxJ] and returns the
// model with the lowest BIC, plus the full sweep for reporting. Options'
// Components field is ignored.
func TrainAuto(data [][]float64, minJ, maxJ int, opts Options) (*Model, []Selection, error) {
	if minJ < 1 || maxJ < minJ {
		return nil, nil, fmt.Errorf("gmm: TrainAuto range [%d, %d]: %w", minJ, maxJ, ErrTraining)
	}
	n := len(data)
	if n == 0 {
		return nil, nil, fmt.Errorf("gmm: empty training set: %w", ErrTraining)
	}
	d := len(data[0])
	var best *Model
	bestBIC := math.Inf(1)
	var sweep []Selection
	var lastErr error
	for j := minJ; j <= maxJ && j <= n; j++ {
		o := opts
		o.Components = j
		m, err := Train(data, o)
		if err != nil {
			lastErr = err
			continue
		}
		ll, err := m.TotalLogLikelihood(data)
		if err != nil {
			lastErr = err
			continue
		}
		p := numParams(j, d)
		bic := -2*ll + float64(p)*math.Log(float64(n))
		sweep = append(sweep, Selection{J: j, LogLikelihood: ll, Params: p, BIC: bic})
		if bic < bestBIC {
			best, bestBIC = m, bic
		}
	}
	if best == nil {
		return nil, nil, fmt.Errorf("gmm: TrainAuto found no viable model: %w", lastErr)
	}
	return best, sweep, nil
}
