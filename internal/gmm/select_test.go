package gmm

import (
	"errors"
	"math/rand"
	"testing"
)

func TestTrainAutoRecoversTrueComponentCount(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	centers := [][]float64{{0, 0}, {15, 0}, {0, 15}}
	data, _ := sampleMixture(rng, 900, centers, 1)
	m, sweep, err := TrainAuto(data, 1, 6, Options{Restarts: 3, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.Components); got != 3 {
		t.Errorf("BIC selected J=%d, want 3; sweep: %+v", got, sweep)
	}
	if len(sweep) != 6 {
		t.Errorf("sweep covered %d candidates", len(sweep))
	}
	// Log-likelihood is non-decreasing in J on the training data.
	for i := 1; i < len(sweep); i++ {
		if sweep[i].LogLikelihood < sweep[i-1].LogLikelihood-1 {
			t.Errorf("LL dropped at J=%d: %.1f -> %.1f", sweep[i].J, sweep[i-1].LogLikelihood, sweep[i].LogLikelihood)
		}
	}
	// Parameter counts grow linearly in J.
	if sweep[0].Params >= sweep[1].Params {
		t.Errorf("params not increasing: %+v", sweep[:2])
	}
}

func TestTrainAutoSingleCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	data, _ := sampleMixture(rng, 400, [][]float64{{5, 5}}, 1)
	m, _, err := TrainAuto(data, 1, 4, Options{Restarts: 2, Seed: 34})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.Components); got != 1 {
		t.Errorf("BIC selected J=%d for unimodal data, want 1", got)
	}
}

func TestTrainAutoValidation(t *testing.T) {
	ok := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	if _, _, err := TrainAuto(ok, 0, 3, Options{}); !errors.Is(err, ErrTraining) {
		t.Errorf("minJ=0: %v", err)
	}
	if _, _, err := TrainAuto(ok, 3, 2, Options{}); !errors.Is(err, ErrTraining) {
		t.Errorf("inverted range: %v", err)
	}
	if _, _, err := TrainAuto(nil, 1, 2, Options{}); !errors.Is(err, ErrTraining) {
		t.Errorf("empty data: %v", err)
	}
}

func TestTrainAutoCapsAtSampleCount(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	data, _ := sampleMixture(rng, 4, [][]float64{{0, 0}}, 1)
	_, sweep, err := TrainAuto(data, 1, 10, Options{Seed: 36})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sweep {
		if s.J > 4 {
			t.Errorf("sweep tried J=%d with 4 samples", s.J)
		}
	}
}

func TestNumParams(t *testing.T) {
	// J=2, D=3: 2*(1+3+6)-1 = 19.
	if got := numParams(2, 3); got != 19 {
		t.Errorf("numParams(2,3) = %d, want 19", got)
	}
	if got := numParams(1, 1); got != 2 { // mean + variance
		t.Errorf("numParams(1,1) = %d, want 2", got)
	}
}
