package gmm

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestTrainRejectsDegenerateInput(t *testing.T) {
	pt := []float64{1, 2}
	cases := []struct {
		name string
		data [][]float64
		opts Options
	}{
		{"empty set", nil, Options{Components: 1}},
		{"zero components", [][]float64{pt}, Options{}},
		{"negative components", [][]float64{pt}, Options{Components: -3}},
		{"zero-dimensional", [][]float64{{}}, Options{Components: 1}},
		{"mismatched dims", [][]float64{{1, 2}, {3}}, Options{Components: 1}},
		{"fewer samples than components", [][]float64{pt, {3, 4}}, Options{Components: 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := Train(tc.data, tc.opts)
			if !errors.Is(err, ErrTraining) {
				t.Fatalf("err = %v, want ErrTraining", err)
			}
			if m != nil {
				t.Error("model returned alongside error")
			}
		})
	}
}

// TestTrainDegenerateData covers inputs with singular empirical
// covariance: training must still converge (via the regularization
// floor) and scoring must stay NaN-free — the failure mode the online
// loop cannot tolerate.
func TestTrainDegenerateData(t *testing.T) {
	t.Run("all identical points", func(t *testing.T) {
		data := make([][]float64, 40)
		for i := range data {
			data[i] = []float64{3, -1, 7}
		}
		m, err := Train(data, Options{Components: 2, Restarts: 2})
		if err != nil {
			t.Fatal(err)
		}
		at, err := m.LogProb([]float64{3, -1, 7})
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(at) {
			t.Error("LogProb at the data point is NaN")
		}
		far, err := m.LogProb([]float64{300, 100, -700})
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(far) {
			t.Error("LogProb far from the data is NaN")
		}
		if !(far < at) {
			t.Errorf("far point scored %v, data point %v; want far < at", far, at)
		}
	})
	t.Run("duplicated distinct points", func(t *testing.T) {
		var data [][]float64
		for i := 0; i < 30; i++ {
			data = append(data, []float64{0, 0}, []float64{10, 10})
		}
		m, err := Train(data, Options{Components: 2, Restarts: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range [][]float64{{0, 0}, {10, 10}, {5, 5}} {
			lp, err := m.LogProb(p)
			if err != nil {
				t.Fatal(err)
			}
			if math.IsNaN(lp) {
				t.Errorf("LogProb(%v) is NaN", p)
			}
		}
	})
	t.Run("single sample single component", func(t *testing.T) {
		m, err := Train([][]float64{{2, 4}}, Options{Components: 1})
		if err != nil {
			t.Fatal(err)
		}
		lp, err := m.LogProb([]float64{2, 4})
		if err != nil || math.IsNaN(lp) {
			t.Errorf("LogProb = %v, %v", lp, err)
		}
	})
}

// sameModel asserts two trained mixtures are bitwise identical in their
// parameters and in the scores they assign.
func sameModel(t *testing.T, label string, a, b *Model, probes [][]float64) {
	t.Helper()
	if len(a.Components) != len(b.Components) {
		t.Fatalf("%s: component counts %d vs %d", label, len(a.Components), len(b.Components))
	}
	for j := range a.Components {
		ca, cb := a.Components[j], b.Components[j]
		if ca.Weight != cb.Weight {
			t.Errorf("%s: component %d weight %v vs %v", label, j, ca.Weight, cb.Weight)
		}
		for i := range ca.Mean {
			if ca.Mean[i] != cb.Mean[i] {
				t.Errorf("%s: component %d mean[%d] %v vs %v", label, j, i, ca.Mean[i], cb.Mean[i])
			}
		}
	}
	for _, p := range probes {
		la, err := a.LogProb(p)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := b.LogProb(p)
		if err != nil {
			t.Fatal(err)
		}
		if la != lb {
			t.Errorf("%s: LogProb(%v) %v vs %v", label, p, la, lb)
		}
	}
}

// TestTrainDeterminism pins the reproducibility contract: a fixed Seed
// yields the identical model across runs, and Parallel restarts match
// the serial schedule bit for bit.
func TestTrainDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var data [][]float64
	for i := 0; i < 120; i++ {
		c := float64(i%3) * 5
		data = append(data, []float64{c + 0.3*rng.NormFloat64(), -c + 0.3*rng.NormFloat64()})
	}
	opts := Options{Components: 3, Restarts: 4, Seed: 99}

	a, err := Train(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	par := opts
	par.Parallel = true
	c, err := Train(data, par)
	if err != nil {
		t.Fatal(err)
	}

	probes := data[:10]
	sameModel(t, "repeat run", a, b, probes)
	sameModel(t, "parallel vs serial", a, c, probes)
}
