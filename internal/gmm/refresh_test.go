package gmm

import (
	"math"
	"math/rand"
	"testing"
)

func refitCenters() [][]float64 {
	return [][]float64{{0, 0, 0}, {8, 8, 0}, {0, 8, 8}}
}

// TestRefitTracksDriftedWindow warm-refits a trained mixture over a
// slightly shifted window and checks the refreshed fit explains the new
// data about as well as a cold retrain, in a fraction of the
// iterations.
func TestRefitTracksDriftedWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	centers := refitCenters()
	data, _ := sampleMixture(rng, 500, centers, 0.8)
	prev, err := Train(data, Options{Components: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	shifted := make([][]float64, 0, 500)
	more, _ := sampleMixture(rng, 500, centers, 0.8)
	for _, v := range more {
		w := append([]float64(nil), v...)
		for i := range w {
			w[i] += 0.4
		}
		shifted = append(shifted, w)
	}
	cold, err := Train(shifted, Options{Components: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Refit(shifted, prev, RefitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Components) != 3 || warm.Dim() != 3 {
		t.Fatalf("refit shape (%d comps, dim %d)", len(warm.Components), warm.Dim())
	}
	coldLL, err := cold.TotalLogLikelihood(shifted)
	if err != nil {
		t.Fatal(err)
	}
	warmLL, err := warm.TotalLogLikelihood(shifted)
	if err != nil {
		t.Fatal(err)
	}
	if warmLL < coldLL-0.01*math.Abs(coldLL) {
		t.Fatalf("warm LL %g too far below cold LL %g", warmLL, coldLL)
	}
}

// TestRefitDeterministicAcrossWorkers pins the bit-identity contract,
// including the mini-batch path.
func TestRefitDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	data, _ := sampleMixture(rng, 700, refitCenters(), 0.7)
	prev, err := Train(data, Options{Components: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	window, _ := sampleMixture(rng, 700, refitCenters(), 0.7)
	for _, batch := range []int{0, 256} {
		base, err := Refit(window, prev, RefitOptions{BatchSize: batch, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			got, err := Refit(window, prev, RefitOptions{BatchSize: batch, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			for j := range base.Components {
				bc, gc := &base.Components[j], &got.Components[j]
				if math.Float64bits(bc.Weight) != math.Float64bits(gc.Weight) {
					t.Fatalf("batch=%d workers=%d: weight[%d] differs", batch, workers, j)
				}
				for i := range bc.Mean {
					if math.Float64bits(bc.Mean[i]) != math.Float64bits(gc.Mean[i]) {
						t.Fatalf("batch=%d workers=%d: mean[%d][%d] differs", batch, workers, j, i)
					}
				}
			}
		}
	}
}

// TestRefitRejectsBadInput checks validation: nil model, empty window,
// dimension mismatch.
func TestRefitRejectsBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	data, _ := sampleMixture(rng, 200, refitCenters(), 0.6)
	prev, err := Train(data, Options{Components: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Refit(data, nil, RefitOptions{}); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := Refit(nil, prev, RefitOptions{}); err == nil {
		t.Fatal("empty window accepted")
	}
	bad := [][]float64{{1, 2}}
	if _, err := Refit(bad, prev, RefitOptions{}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}
