package gmm

import (
	"math"
	"math/rand"
	"testing"

	"github.com/memheatmap/mhm/internal/mat"
)

// emOnceStaged is the pre-engine EM loop, kept verbatim as the
// regression reference: the E-step evaluates Responsibilities(x) AND
// LogProb(x) per sample (computing every component density twice), the
// M-step allocates fresh covariance storage per component per
// iteration, and a dead component is re-seeded by an O(n) LogProb
// rescan against the half-updated model. The engine fit must match it
// bit for bit whenever no component dies.
func emOnceStaged(data [][]float64, k, maxIter int, tol, reg float64, rng *rand.Rand) (*Model, float64, error) {
	n := len(data)
	d := len(data[0])
	means := kmeansSeed(data, k, rng)

	model := &Model{Components: make([]Component, k)}
	v := dataVariance(data)
	if v <= 0 {
		v = 1
	}
	for j := range model.Components {
		cov := mat.New(d, d)
		for i := 0; i < d; i++ {
			cov.Set(i, i, v+reg)
		}
		model.Components[j] = Component{
			Weight: 1 / float64(k),
			Mean:   means[j],
			Cov:    cov,
		}
		if err := model.Components[j].prepare(); err != nil {
			return nil, 0, err
		}
	}

	resp := make([][]float64, n)
	prevLL := math.Inf(-1)
	for iter := 0; iter < maxIter; iter++ {
		ll := 0.0
		for i, x := range data {
			r, err := model.Responsibilities(x)
			if err != nil {
				return nil, 0, err
			}
			resp[i] = r
			lp, err := model.LogProb(x)
			if err != nil {
				return nil, 0, err
			}
			ll += lp
		}
		if iter > 0 && ll-prevLL < tol {
			prevLL = ll
			break
		}
		prevLL = ll

		for j := 0; j < k; j++ {
			nj := 0.0
			for i := range data {
				nj += resp[i][j]
			}
			if nj < 1e-10 {
				worstI, worstLP := 0, math.Inf(1)
				for i, x := range data {
					lp, err := model.LogProb(x)
					if err != nil {
						return nil, 0, err
					}
					if lp < worstLP {
						worstI, worstLP = i, lp
					}
				}
				copy(model.Components[j].Mean, data[worstI])
				model.Components[j].Weight = 1 / float64(n)
				continue
			}
			c := &model.Components[j]
			c.Weight = nj / float64(n)
			for cdim := range c.Mean {
				c.Mean[cdim] = 0
			}
			for i, x := range data {
				w := resp[i][j]
				for cdim, v := range x {
					c.Mean[cdim] += w * v
				}
			}
			for cdim := range c.Mean {
				c.Mean[cdim] /= nj
			}
			cov := mat.New(d, d)
			diff := make([]float64, d)
			for i, x := range data {
				w := resp[i][j]
				if mat.IsZero(w) {
					continue
				}
				for cdim := range x {
					diff[cdim] = x[cdim] - c.Mean[cdim]
				}
				for a := 0; a < d; a++ {
					wa := w * diff[a]
					row := cov.Row(a)
					for b := 0; b < d; b++ {
						row[b] += wa * diff[b]
					}
				}
			}
			cov.Scale(1 / nj)
			for a := 0; a < d; a++ {
				cov.Set(a, a, cov.At(a, a)+reg)
			}
			c.Cov = cov
			if err := c.prepare(); err != nil {
				return nil, 0, err
			}
		}
	}
	return model, prevLL, nil
}

// blobs draws n samples around k well-separated centers in d dims.
func blobs(n, d, k int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		c := i % k
		v := make([]float64, d)
		for j := range v {
			v[j] = 10*float64(c) + rng.NormFloat64()
		}
		out[i] = v
	}
	return out
}

// requireSameFit compares two (model, ll) pairs bitwise.
func requireSameFit(t *testing.T, tag string, a, b *Model, lla, llb float64) {
	t.Helper()
	if math.Float64bits(lla) != math.Float64bits(llb) {
		t.Fatalf("%s: log-likelihood differs: %v vs %v", tag, lla, llb)
	}
	if len(a.Components) != len(b.Components) {
		t.Fatalf("%s: component counts differ: %d vs %d", tag, len(a.Components), len(b.Components))
	}
	for j := range a.Components {
		ca, cb := &a.Components[j], &b.Components[j]
		if math.Float64bits(ca.Weight) != math.Float64bits(cb.Weight) {
			t.Fatalf("%s: component %d weight %v vs %v", tag, j, ca.Weight, cb.Weight)
		}
		for i := range ca.Mean {
			if math.Float64bits(ca.Mean[i]) != math.Float64bits(cb.Mean[i]) {
				t.Fatalf("%s: component %d mean[%d] %v vs %v", tag, j, i, ca.Mean[i], cb.Mean[i])
			}
		}
		for r := 0; r < ca.Cov.Rows(); r++ {
			ra, rb := ca.Cov.Row(r), cb.Cov.Row(r)
			for cc := range ra {
				if math.Float64bits(ra[cc]) != math.Float64bits(rb[cc]) {
					t.Fatalf("%s: component %d cov[%d][%d] %v vs %v", tag, j, r, cc, ra[cc], rb[cc])
				}
			}
		}
	}
}

// TestEngineMatchesStagedFit pins the E-step double-density fix: the
// engine computes the per-component log-density matrix once and derives
// responsibilities and the log-likelihood from it, and the fit must be
// bit-identical to the staged reference that computed the densities
// twice through separate Responsibilities/LogProb calls.
func TestEngineMatchesStagedFit(t *testing.T) {
	cases := []struct {
		n, d, k int
		seed    int64
	}{
		{60, 3, 2, 1},
		{201, 5, 3, 2}, // odd n exercises the scalar tail lanes
		{128, 9, 5, 3}, // the paper's L'=9, J=5 shape
		{7, 2, 2, 4},   // fewer samples than one SIMD block
	}
	for _, tc := range cases {
		data := blobs(tc.n, tc.d, tc.k, tc.seed)
		for _, emSeed := range []int64{1, 7, 99} {
			ref, refLL, err := emOnceStaged(data, tc.k, 50, 1e-6, 1e-6, rand.New(rand.NewSource(emSeed)))
			if err != nil {
				t.Fatalf("staged fit (n=%d d=%d k=%d seed=%d): %v", tc.n, tc.d, tc.k, emSeed, err)
			}
			got, gotLL, err := emOnce(data, tc.k, 50, 1e-6, 1e-6, 0, rand.New(rand.NewSource(emSeed)))
			if err != nil {
				t.Fatalf("engine fit (n=%d d=%d k=%d seed=%d): %v", tc.n, tc.d, tc.k, emSeed, err)
			}
			requireSameFit(t, "staged vs engine", ref, got, refLL, gotLL)
		}
	}
}

// TestTrainWorkersBitIdentical verifies the engine's determinism
// contract end to end: gmm.Train produces bitwise-equal models for
// every in-restart worker count, serial and restart-parallel alike.
func TestTrainWorkersBitIdentical(t *testing.T) {
	data := blobs(300, 6, 4, 11)
	base, err := Train(data, Options{Components: 4, Restarts: 3, Seed: 5, MaxIter: 60, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	baseLL, err := base.TotalLogLikelihood(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 8} {
		for _, parallel := range []bool{false, true} {
			m, err := Train(data, Options{
				Components: 4, Restarts: 3, Seed: 5, MaxIter: 60,
				Workers: workers, Parallel: parallel,
			})
			if err != nil {
				t.Fatalf("workers=%d parallel=%v: %v", workers, parallel, err)
			}
			ll, err := m.TotalLogLikelihood(data)
			if err != nil {
				t.Fatal(err)
			}
			requireSameFit(t, "worker-count variant", base, m, baseLL, ll)
		}
	}
}
