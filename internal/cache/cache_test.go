package cache

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustCache(t *testing.T, cfg Config) *ICache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDefaults(t *testing.T) {
	c := mustCache(t, Config{})
	if c.ways != 4 || c.lineBits != 5 {
		t.Errorf("defaults: ways=%d lineBits=%d", c.ways, c.lineBits)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{LineBytes: 48},                          // not power of two
		{SizeBytes: -1},                          // negative
		{Ways: -2},                               // negative
		{SizeBytes: 96, LineBytes: 32, Ways: 4},  // 3 lines not divisible by 4
		{SizeBytes: 384, LineBytes: 32, Ways: 4}, // 3 sets, not a power of two
	}
	for i, cfg := range bad {
		if _, err := New(cfg); !errors.Is(err, ErrConfig) {
			t.Errorf("case %d: %v", i, err)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := mustCache(t, Config{})
	if !c.Access(0x1000) {
		t.Error("cold access hit")
	}
	if c.Access(0x1000) {
		t.Error("second access missed")
	}
	// Same line, different byte.
	if c.Access(0x101F) {
		t.Error("same-line access missed")
	}
	// Next line.
	if !c.Access(0x1020) {
		t.Error("next-line cold access hit")
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 2 {
		t.Errorf("stats = %d/%d", hits, misses)
	}
	if c.MissRatio() != 0.5 {
		t.Errorf("MissRatio = %g", c.MissRatio())
	}
}

func TestLRUEviction(t *testing.T) {
	// Tiny cache: 2 ways, 1 set, 32 B lines.
	c := mustCache(t, Config{SizeBytes: 64, LineBytes: 32, Ways: 2})
	a, b, d := uint64(0x0), uint64(0x1000), uint64(0x2000) // same set
	c.Access(a)
	c.Access(b)
	if c.Access(a) {
		t.Error("a evicted too early")
	}
	// Insert d: evicts LRU = b.
	c.Access(d)
	if c.Access(b) == false {
		t.Error("b should have been evicted")
	}
	// b's re-insert evicted a (LRU after d's insert made order d,a).
	if c.Access(d) {
		t.Error("d evicted unexpectedly")
	}
}

func TestAccessBurstCountsLineMisses(t *testing.T) {
	c := mustCache(t, Config{LineBytes: 32})
	// 16 instructions = 64 bytes = 2 lines, cold: 2 misses.
	if got := c.AccessBurst(0x2000, 16); got != 2 {
		t.Errorf("cold burst misses = %d, want 2", got)
	}
	// Re-run: all resident.
	if got := c.AccessBurst(0x2000, 16); got != 0 {
		t.Errorf("warm burst misses = %d, want 0", got)
	}
	// Huge count is capped at the loop-body span.
	if got := c.AccessBurst(0x4000, 1_000_000); got != 256/32 {
		t.Errorf("capped burst misses = %d, want %d", got, 256/32)
	}
	if got := c.AccessBurst(0x8000, 0); got != 0 {
		t.Errorf("zero burst misses = %d", got)
	}
}

func TestFlush(t *testing.T) {
	c := mustCache(t, Config{})
	c.Access(0x1000)
	c.Flush()
	if !c.Access(0x1000) {
		t.Error("flushed line still resident")
	}
}

func TestWorkingSetFitsAfterWarmup(t *testing.T) {
	// A working set smaller than capacity stops missing after one pass.
	c := mustCache(t, Config{SizeBytes: 4096, LineBytes: 32, Ways: 4})
	addrs := make([]uint64, 64) // 64 lines = 2 KB < 4 KB
	for i := range addrs {
		addrs[i] = uint64(i) * 32
	}
	for _, a := range addrs {
		c.Access(a)
	}
	_, missesAfterWarm := c.Stats()
	for pass := 0; pass < 5; pass++ {
		for _, a := range addrs {
			c.Access(a)
		}
	}
	_, misses := c.Stats()
	if misses != missesAfterWarm {
		t.Errorf("resident working set still missing: %d -> %d", missesAfterWarm, misses)
	}
}

func TestThrashingWorkingSetMisses(t *testing.T) {
	// A working set larger than capacity keeps missing.
	c := mustCache(t, Config{SizeBytes: 1024, LineBytes: 32, Ways: 2})
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < 128; i++ { // 128 lines = 4 KB > 1 KB
			c.Access(uint64(i) * 32)
		}
	}
	if c.MissRatio() < 0.5 {
		t.Errorf("thrashing miss ratio %g unexpectedly low", c.MissRatio())
	}
}

func TestMissesNeverExceedAccessesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := New(Config{SizeBytes: 2048, LineBytes: 32, Ways: 2})
		if err != nil {
			return false
		}
		for i := 0; i < 500; i++ {
			c.Access(uint64(rng.Intn(1 << 16)))
		}
		hits, misses := c.Stats()
		return hits+misses == 500 && c.MissRatio() >= 0 && c.MissRatio() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
