// Package cache models the monitored core's L1 instruction cache. The
// paper's prototype snoops *above* the L1 so no fetch is lost; §5.5
// discusses moving the Memometer below a shared cache, where only
// misses are visible, and conjectures the accuracy drop would be small.
// This model lets the monitoring pipeline test that conjecture: place an
// ICache in front of the Memometer and only miss traffic reaches the
// heat map.
package cache

import (
	"errors"
	"fmt"
	"math/bits"
)

// ErrConfig wraps invalid cache geometries.
var ErrConfig = errors.New("cache: invalid configuration")

// Config describes an instruction cache geometry.
type Config struct {
	// SizeBytes is the total capacity (default 32 KB, the paper's L1).
	SizeBytes int
	// LineBytes is the cache line size; power of two (default 32).
	LineBytes int
	// Ways is the associativity (default 4).
	Ways int
}

func (c *Config) fill() error {
	if c.SizeBytes == 0 {
		c.SizeBytes = 32 * 1024
	}
	if c.LineBytes == 0 {
		c.LineBytes = 32
	}
	if c.Ways == 0 {
		c.Ways = 4
	}
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two: %w", c.LineBytes, ErrConfig)
	}
	if c.SizeBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: size %d / ways %d: %w", c.SizeBytes, c.Ways, ErrConfig)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines <= 0 || lines%c.Ways != 0 {
		return fmt.Errorf("cache: %d lines not divisible by %d ways: %w", lines, c.Ways, ErrConfig)
	}
	sets := lines / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: %d sets not a power of two: %w", sets, ErrConfig)
	}
	return nil
}

// ICache is a set-associative instruction cache with LRU replacement.
// Not safe for concurrent use.
type ICache struct {
	lineBits uint
	setMask  uint64
	ways     int
	// tags[set] holds up to `ways` line tags in MRU-first order.
	tags [][]uint64

	hits, misses uint64
}

// New builds a cache from cfg (zero fields take the defaults).
func New(cfg Config) (*ICache, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	sets := cfg.SizeBytes / cfg.LineBytes / cfg.Ways
	c := &ICache{
		lineBits: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:  uint64(sets - 1),
		ways:     cfg.Ways,
		tags:     make([][]uint64, sets),
	}
	for i := range c.tags {
		c.tags[i] = make([]uint64, 0, cfg.Ways)
	}
	return c, nil
}

// Access fetches one instruction at addr; it returns true on a miss
// (the access is visible below the cache).
func (c *ICache) Access(addr uint64) bool {
	line := addr >> c.lineBits
	set := line & c.setMask
	ways := c.tags[set]
	for i, tag := range ways {
		if tag == line {
			// Hit: move to MRU.
			copy(ways[1:i+1], ways[:i])
			ways[0] = line
			c.hits++
			return false
		}
	}
	// Miss: insert at MRU, evict LRU if full.
	c.misses++
	if len(ways) < c.ways {
		ways = append(ways, 0)
	}
	copy(ways[1:], ways)
	ways[0] = line
	c.tags[set] = ways
	return true
}

// AccessBurst models a burst of count fetches executing through the
// instruction stream starting at addr (4 bytes per instruction, capped
// at spanCap bytes — a loop body re-executes the same lines). It returns
// the number of line misses, i.e. the traffic visible below the cache.
func (c *ICache) AccessBurst(addr uint64, count uint32) uint32 {
	if count == 0 {
		return 0
	}
	const spanCap = 256 // loop bodies larger than this are rare in hot code
	span := uint64(count) * 4
	if span > spanCap {
		span = spanCap
	}
	first := addr >> c.lineBits
	last := (addr + span - 1) >> c.lineBits
	var miss uint32
	for line := first; line <= last; line++ {
		if c.Access(line << c.lineBits) {
			miss++
		}
	}
	return miss
}

// Stats returns the hit and miss counts so far.
func (c *ICache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// MissRatio returns misses/(hits+misses), 0 before any access.
func (c *ICache) MissRatio() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.misses) / float64(total)
}

// Flush invalidates every line (e.g. across a simulated context of
// interest) and keeps the statistics.
func (c *ICache) Flush() {
	for i := range c.tags {
		c.tags[i] = c.tags[i][:0]
	}
}
