package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"github.com/memheatmap/mhm/internal/core"
	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/pipeline"
)

// ScoringRow is one mode of the scoring-throughput experiment.
type ScoringRow struct {
	// Mode identifies the scoring path: "single", "batch64", "sharded".
	Mode string
	// Intervals is the number of MHMs classified.
	Intervals int
	// PerMHMMicros is the mean classification cost in the mode.
	PerMHMMicros float64
	// Speedup is relative to the single-vector loop.
	Speedup float64
}

// ScoringResult compares the scoring engine's execution modes on the
// same classification workload: the single-vector loop (the paper's
// per-interval deployment), the blocked B=64 batch kernel (offline
// sweeps), and the sharded multi-stream scorer (N monitored systems).
type ScoringResult struct {
	L, LPrime, J    int
	Batch           int
	Streams, Shards int
	Rows            []ScoringRow
}

// String renders the comparison.
func (r ScoringResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "A10 — scoring engine throughput (L=%d, L'=%d, J=%d)\n", r.L, r.LPrime, r.J)
	b.WriteString("  mode       intervals  per-MHM(µs)  speedup\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-9s  %9d  %11.3f  %6.2fx\n",
			row.Mode, row.Intervals, row.PerMHMMicros, row.Speedup)
	}
	fmt.Fprintf(&b, "  (batch B=%d; sharded %d streams over %d workers)\n", r.Batch, r.Streams, r.Shards)
	return b.String()
}

// scoringBatch is the blocked batch size reported by the experiment.
const scoringBatch = 64

// ScoringThroughput measures the three scoring modes over fresh normal
// captures, repeating each mode enough to stabilize the timing. All
// modes produce bit-identical log densities; only the schedule differs.
func (l *Lab) ScoringThroughput(det *core.Detector, seedBase int64, repeats int) (*ScoringResult, error) {
	if repeats <= 0 {
		repeats = 3
	}
	maps, err := l.CollectNormal(seedBase+7, l.Scale.TrainRunMicros)
	if err != nil {
		return nil, err
	}
	if len(maps) == 0 {
		return nil, fmt.Errorf("experiments: scoring: no test MHMs: %w", ErrExperiment)
	}
	vecs, err := heatmap.PackVectors(maps)
	if err != nil {
		return nil, err
	}
	dst := make([]float64, len(vecs))

	cells, lprime := det.Dim()
	res := &ScoringResult{
		L:      cells,
		LPrime: lprime,
		J:      len(det.GMM.Components),
		Batch:  scoringBatch,
	}

	// Mode 1: the single-vector loop.
	if _, err := det.LogDensityVector(vecs[0]); err != nil {
		return nil, err
	}
	start := time.Now()
	for r := 0; r < repeats; r++ {
		for _, v := range vecs {
			if _, err := det.LogDensityVector(v); err != nil {
				return nil, err
			}
		}
	}
	singleMicros := microsPer(start, repeats*len(vecs))
	res.Rows = append(res.Rows, ScoringRow{
		Mode: "single", Intervals: repeats * len(vecs), PerMHMMicros: singleMicros, Speedup: 1,
	})

	// Mode 2: blocked batches of scoringBatch.
	start = time.Now()
	for r := 0; r < repeats; r++ {
		for lo := 0; lo < len(vecs); lo += scoringBatch {
			hi := lo + scoringBatch
			if hi > len(vecs) {
				hi = len(vecs)
			}
			if err := det.LogDensityBatch(dst[lo:hi], vecs[lo:hi]); err != nil {
				return nil, err
			}
		}
	}
	batchMicros := microsPer(start, repeats*len(vecs))
	res.Rows = append(res.Rows, ScoringRow{
		Mode: "batch64", Intervals: repeats * len(vecs), PerMHMMicros: batchMicros,
		Speedup: singleMicros / batchMicros,
	})

	// Mode 3: the sharded multi-stream scorer, one stream per worker.
	streams := runtime.GOMAXPROCS(0)
	if streams > 8 {
		streams = 8
	}
	if streams < 2 {
		streams = 2
	}
	sh, err := pipeline.NewSharded(det, streams, pipeline.ShardedConfig{
		Quantile: l.Scale.Quantiles[len(l.Scale.Quantiles)-1],
	})
	if err != nil {
		return nil, err
	}
	res.Streams, res.Shards = sh.Streams(), sh.Shards()
	start = time.Now()
	for r := 0; r < repeats; r++ {
		for i, m := range maps {
			if err := sh.Submit(i%streams, m); err != nil {
				return nil, err
			}
		}
	}
	sh.Close()
	shardMicros := microsPer(start, repeats*len(maps))
	res.Rows = append(res.Rows, ScoringRow{
		Mode: "sharded", Intervals: repeats * len(maps), PerMHMMicros: shardMicros,
		Speedup: singleMicros / shardMicros,
	})
	return res, nil
}

// microsPer returns mean microseconds per item since start.
func microsPer(start time.Time, items int) float64 {
	return float64(time.Since(start).Nanoseconds()) / 1e3 / float64(items)
}
