// Package experiments contains one driver per table and figure of the
// paper's evaluation (§5), each producing the same rows/series the paper
// reports, plus the ablation studies listed in DESIGN.md. The cmd/mhmreport
// binary and the repository benchmarks are thin wrappers over this
// package.
package experiments

import (
	"errors"
	"fmt"

	"github.com/memheatmap/mhm/internal/attack"
	"github.com/memheatmap/mhm/internal/cache"
	"github.com/memheatmap/mhm/internal/core"
	"github.com/memheatmap/mhm/internal/gmm"
	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/kernelmap"
	"github.com/memheatmap/mhm/internal/pca"
	"github.com/memheatmap/mhm/internal/securecore"
)

// ErrExperiment wraps experiment failures.
var ErrExperiment = errors.New("experiments: failure")

// Scale fixes the data volumes of an experiment run. PaperScale
// reproduces §5; QuickScale keeps unit tests fast while exercising the
// identical code path.
type Scale struct {
	// TrainRuns is the number of independent normal captures and
	// TrainRunMicros each capture's length (paper: 10 runs x 3 s).
	TrainRuns      int
	TrainRunMicros int64
	// CalibRunMicros is the length of the held-out normal capture used
	// for θ_p calibration.
	CalibRunMicros int64
	// IntervalMicros is the monitoring interval (paper: 10 ms).
	IntervalMicros int64
	// Gran is the MHM granularity δ (paper: 2 KB).
	Gran uint64
	// PCA/GMM knobs (paper: ≥99.99% variance → L' = 9; J = 5, 10 restarts).
	PCAOptions pca.Options
	GMMOptions gmm.Options
	// Quantiles to calibrate (paper: θ0.5 and θ1).
	Quantiles []float64
	// Cache, when non-nil, moves the snoop point below an L1 model of
	// this geometry (§5.5): only misses reach the heat maps.
	Cache *cache.Config
}

// PaperScale returns the §5.2 configuration.
func PaperScale() Scale {
	return Scale{
		TrainRuns:      10,
		TrainRunMicros: 3_000_000,
		CalibRunMicros: 3_000_000,
		IntervalMicros: 10_000,
		Gran:           2048,
		PCAOptions:     pca.Options{VarianceFraction: 0.9999, Parallel: true},
		GMMOptions:     gmm.Options{Components: 5, Restarts: 10, Parallel: true},
		Quantiles:      []float64{0.005, 0.01},
	}
}

// QuickScale returns a reduced configuration for tests: fewer, shorter
// runs and a smaller model, same pipeline.
func QuickScale() Scale {
	return Scale{
		TrainRuns:      3,
		TrainRunMicros: 1_000_000,
		CalibRunMicros: 1_000_000,
		IntervalMicros: 10_000,
		Gran:           2048,
		PCAOptions:     pca.Options{VarianceFraction: 0.9999, MaxComponents: 16, Parallel: true},
		GMMOptions:     gmm.Options{Components: 5, Restarts: 3, Parallel: true},
		Quantiles:      []float64{0.005, 0.01},
	}
}

// Lab bundles the synthetic platform shared by all experiments.
type Lab struct {
	Img   *kernelmap.Image
	Scale Scale
}

// NewLab builds the platform with the paper's kernel region.
func NewLab(seed int64, scale Scale) (*Lab, error) {
	img, err := kernelmap.NewImage(seed)
	if err != nil {
		return nil, err
	}
	return &Lab{Img: img, Scale: scale}, nil
}

// sessionConfig returns the securecore configuration for a given noise
// seed.
func (l *Lab) sessionConfig(noiseSeed int64) securecore.SessionConfig {
	return securecore.SessionConfig{
		Region:         heatmap.Def{AddrBase: l.Img.Base, Size: l.Img.Size, Gran: l.Scale.Gran},
		IntervalMicros: l.Scale.IntervalMicros,
		NoiseSeed:      noiseSeed,
		Cache:          l.Scale.Cache,
	}
}

// CollectNormal captures MHMs from a clean system run of the given
// length with the given noise seed.
func (l *Lab) CollectNormal(noiseSeed int64, micros int64) ([]*heatmap.HeatMap, error) {
	s, err := attack.BuildScenarioSession(l.Img, nil, l.sessionConfig(noiseSeed))
	if err != nil {
		return nil, err
	}
	return s.Run(micros)
}

// RunScenario captures MHMs from an attacked system run.
func (l *Lab) RunScenario(sc attack.Scenario, noiseSeed int64, micros int64) ([]*heatmap.HeatMap, error) {
	s, err := attack.BuildScenarioSession(l.Img, sc, l.sessionConfig(noiseSeed))
	if err != nil {
		return nil, err
	}
	return s.Run(micros)
}

// TrainingReport summarizes §5.2's training phase.
type TrainingReport struct {
	// TrainMHMs and CalibMHMs count the collected normal heat maps
	// (paper: 3,000 training MHMs).
	TrainMHMs, CalibMHMs int
	// Cells is L (paper: 1,472); Eigenmemories is L' (paper: 9).
	Cells, Eigenmemories int
	// VarianceExplained is the retained fraction (paper: > 99.99%).
	VarianceExplained float64
	// Components is J (paper: 5); Restarts the EM restarts (paper: 10).
	Components, Restarts int
	// TrainLogLikelihood is Σ log Pr of the training set under the chosen
	// model.
	TrainLogLikelihood float64
	// Thresholds are the calibrated θ_p values.
	Thresholds []core.Threshold
}

// String renders the report.
func (r TrainingReport) String() string {
	s := fmt.Sprintf("training: N=%d MHMs (calib %d), L=%d cells, L'=%d eigenmemories (%.4f%% variance), GMM J=%d (%d restarts), LL=%.1f\n",
		r.TrainMHMs, r.CalibMHMs, r.Cells, r.Eigenmemories, 100*r.VarianceExplained,
		r.Components, r.Restarts, r.TrainLogLikelihood)
	for _, th := range r.Thresholds {
		s += fmt.Sprintf("  θ%g = %.3f (log density)\n", th.P*100, th.Theta)
	}
	return s
}

// TrainDetector runs the full §5.2 procedure: collect TrainRuns normal
// captures (noise seeds seedBase..seedBase+TrainRuns-1), train the
// eigenmemory+GMM model, calibrate θ_p on a held-out capture
// (seedBase+TrainRuns).
func (l *Lab) TrainDetector(seedBase int64) (*core.Detector, TrainingReport, error) {
	var train []*heatmap.HeatMap
	for run := 0; run < l.Scale.TrainRuns; run++ {
		maps, err := l.CollectNormal(seedBase+int64(run), l.Scale.TrainRunMicros)
		if err != nil {
			return nil, TrainingReport{}, fmt.Errorf("experiments: training run %d: %w", run, err)
		}
		train = append(train, maps...)
	}
	calib, err := l.CollectNormal(seedBase+int64(l.Scale.TrainRuns), l.Scale.CalibRunMicros)
	if err != nil {
		return nil, TrainingReport{}, fmt.Errorf("experiments: calibration run: %w", err)
	}
	det, err := core.Train(train, calib, core.Config{
		PCA:       l.Scale.PCAOptions,
		GMM:       l.Scale.GMMOptions,
		Quantiles: l.Scale.Quantiles,
	})
	if err != nil {
		return nil, TrainingReport{}, err
	}
	// Training log-likelihood for the report, as one pass through the
	// detector's batched scoring engine (Σ log Pr over the training set,
	// summed in the same order TotalLogLikelihood would).
	vecs, err := heatmap.PackVectors(train)
	if err != nil {
		return nil, TrainingReport{}, err
	}
	dens := make([]float64, len(train))
	if err := det.LogDensityBatch(dens, vecs); err != nil {
		return nil, TrainingReport{}, err
	}
	ll := 0.0
	for _, d := range dens {
		ll += d
	}
	cells, lprime := det.Dim()
	rep := TrainingReport{
		TrainMHMs:          len(train),
		CalibMHMs:          len(calib),
		Cells:              cells,
		Eigenmemories:      lprime,
		VarianceExplained:  det.PCA.VarianceExplained(),
		Components:         len(det.GMM.Components),
		Restarts:           l.Scale.GMMOptions.Restarts,
		TrainLogLikelihood: ll,
		Thresholds:         det.Thresholds,
	}
	return det, rep, nil
}
