package experiments

import (
	"strings"
	"testing"
)

func TestCachePlacement(t *testing.T) {
	lab, _, _ := quickLab(t)
	r, err := lab.CachePlacement(4000)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	above, below := r.Rows[0], r.Rows[1]
	if above.Placement != "above-L1" || below.Placement != "below-L1" {
		t.Fatalf("placements = %+v", r.Rows)
	}
	// Above-L1 sees everything; below-L1 sees only misses.
	if above.VisibleFraction < 0.99 {
		t.Errorf("above-L1 visible fraction %.4f", above.VisibleFraction)
	}
	if below.VisibleFraction > 0.5 || below.VisibleFraction <= 0 {
		t.Errorf("below-L1 visible fraction %.4f; expected heavy thinning", below.VisibleFraction)
	}
	// Both placements keep FP under control and detect the scenario —
	// the §5.5 conjecture.
	for _, row := range r.Rows {
		if row.FPRate > 0.15 {
			t.Errorf("%s: FP %.3f", row.Placement, row.FPRate)
		}
		if row.DetectRate < 0.3 {
			t.Errorf("%s: detect rate %.3f", row.Placement, row.DetectRate)
		}
	}
	if !strings.Contains(r.String(), "A5") {
		t.Error("rendering incomplete")
	}
}

func TestSMPDetection(t *testing.T) {
	lab, _, _ := quickLab(t)
	r, err := lab.SMPDetection(5000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cores != 2 {
		t.Errorf("cores = %d", r.Cores)
	}
	if r.TrainMHMs != 300 {
		t.Errorf("train MHMs = %d, want 300 at quick scale", r.TrainMHMs)
	}
	if r.FPRate > 0.15 {
		t.Errorf("SMP FP rate %.3f", r.FPRate)
	}
	if r.DetectRate < 0.3 {
		t.Errorf("SMP detect rate %.3f", r.DetectRate)
	}
	if !strings.Contains(r.String(), "A6") {
		t.Error("rendering incomplete")
	}
}

func TestAlarmLatency(t *testing.T) {
	lab, det, _ := quickLab(t)
	r, err := lab.AlarmLatency(det, 6000)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byName := map[string]AlarmRow{}
	for _, row := range r.Rows {
		byName[row.Scenario] = row
	}
	// The loud scenarios raise promptly.
	for _, name := range []string{"app-addition", "fork-bomb"} {
		row := byName[name]
		if row.LatencyMs < 0 {
			t.Errorf("%s: never raised", name)
			continue
		}
		if row.LatencyMs > 300 {
			t.Errorf("%s: latency %d ms", name, row.LatencyMs)
		}
	}
	// Debouncing keeps pre-event false raises rare everywhere.
	for _, row := range r.Rows {
		if row.FalseRaises > 2 {
			t.Errorf("%s: %d false raises", row.Scenario, row.FalseRaises)
		}
	}
	if !strings.Contains(r.String(), "A7") {
		t.Error("rendering incomplete")
	}
}

func TestExtendedScenarios(t *testing.T) {
	lab, det, _ := quickLab(t)
	r, err := lab.ExtendedScenarios(det, 7000)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byName := map[string]ExtendedRow{}
	for _, row := range r.Rows {
		byName[row.Scenario] = row
	}
	// Exfiltration is volume-stealthy: the volume detector stays nearly
	// blind while the MHM detector sees the mix change.
	ex := byName["data-exfiltration"]
	if ex.VolumeRate > 0.15 {
		t.Errorf("volume detector flagged %.3f of exfiltration; should be nearly blind", ex.VolumeRate)
	}
	if ex.MHMRate <= ex.VolumeRate {
		t.Errorf("MHM rate %.3f not above volume rate %.3f on exfiltration", ex.MHMRate, ex.VolumeRate)
	}
	if !strings.Contains(r.String(), "E-ext") {
		t.Error("rendering incomplete")
	}
}
