package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestRefreshUpkeep runs experiment A14 at minimal repeats and pins the
// acceptance contract: the incremental refresh is cheaper than the full
// retrain, detection quality matches within the 0.02 AUC slack, the
// fleet loop refreshed and swapped at least once, and no admitted
// interval was dropped across the hot swaps.
func TestRefreshUpkeep(t *testing.T) {
	r, err := RefreshUpkeep(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Speedup <= 1 {
		t.Errorf("speedup %.2fx, want > 1x", r.Speedup)
	}
	if r.AUCGap > 0.02 {
		t.Errorf("AUC gap %.4f exceeds the 0.02 slack (refreshed %.4f, retrained %.4f)",
			r.AUCGap, r.AUCRefreshed, r.AUCRetrained)
	}
	if r.AUCRefreshed < 0.9 {
		t.Errorf("refreshed AUC %.4f: model does not separate the eval set", r.AUCRefreshed)
	}
	if r.SimRefreshes < 1 || r.SimSwaps < 1 || r.SimModelVersion < 2 {
		t.Errorf("loop stats: refreshes=%d swaps=%d version=%d, want all active",
			r.SimRefreshes, r.SimSwaps, r.SimModelVersion)
	}
	if r.DroppedIntervals != 0 {
		t.Errorf("dropped intervals = %d, want 0", r.DroppedIntervals)
	}
	if r.CPUs < 1 {
		t.Errorf("cpus = %d", r.CPUs)
	}

	// The JSON form must parse and carry the gated fields.
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("BENCH_refresh.json schema does not parse: %v\n%s", err, buf.String())
	}
	for _, key := range []string{"cpus", "refresh_ms", "full_retrain_ms", "speedup", "auc_gap", "dropped_intervals"} {
		if _, ok := got[key]; !ok {
			t.Errorf("JSON missing %q", key)
		}
	}
}
