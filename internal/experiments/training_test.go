package experiments

import (
	"strings"
	"testing"
)

// TestTrainingThroughputShape checks the A12 experiment's structure:
// four stages with serial/baseline-first row pairs, the determinism
// verdicts, and a renderable table. Timing magnitudes are
// hardware-dependent and asserted only by the benchmark baseline.
func TestTrainingThroughputShape(t *testing.T) {
	lab, _, _ := quickLab(t)
	r, err := lab.TrainingThroughput(5200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("%d rows, want 8", len(r.Rows))
	}
	wantRows := []struct{ stage, mode string }{
		{"core.Train", "serial"}, {"core.Train", "parallel"},
		{"pca.Train", "serial"}, {"pca.Train", "parallel"},
		{"gmm.Train", "serial"}, {"gmm.Train", "parallel"},
		{"ingest", "per-record"}, {"ingest", "batch"},
	}
	for i, row := range r.Rows {
		if row.Stage != wantRows[i].stage || row.Mode != wantRows[i].mode {
			t.Errorf("row %d = (%q, %q), want (%q, %q)", i, row.Stage, row.Mode, wantRows[i].stage, wantRows[i].mode)
		}
		if row.Millis <= 0 || row.Speedup <= 0 {
			t.Errorf("row (%q, %q): millis %v, speedup %v", row.Stage, row.Mode, row.Millis, row.Speedup)
		}
	}
	if !r.BitIdentical {
		t.Error("serial and parallel training (or the two ingest paths) diverged")
	}
	if r.L != 1472 || r.J != 5 {
		t.Errorf("shape L=%d J=%d, want L=1472 J=5", r.L, r.J)
	}
	if r.TrainMaps <= 0 || r.TraceEvents == 0 {
		t.Errorf("training volume: %d maps, %d trace events", r.TrainMaps, r.TraceEvents)
	}
	out := r.String()
	for _, want := range []string{"A12", "core.Train", "pca.Train", "gmm.Train", "ingest", "bit-identical: true"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
