package experiments

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/memheatmap/mhm/internal/attack"
	"github.com/memheatmap/mhm/internal/stats"
	"github.com/memheatmap/mhm/internal/syscalls"
)

// The full matrix is expensive; share one quick run across tests.
var (
	matrixOnce sync.Once
	matrixErr  error
	qMatrix    *ScenarioMatrix
)

// miniMatrixConfig keeps the shared test matrix cheap: 0.5 s per
// scenario run, event at interval 20.
func miniMatrixConfig() MatrixConfig {
	return MatrixConfig{EventIv: 20, HorizonIv: 50, P: 0.01, Window: 10, Weights: [2]float64{0.5, 0.5}}
}

func quickMatrix(t *testing.T) *ScenarioMatrix {
	t.Helper()
	lab, _, _ := quickLab(t)
	matrixOnce.Do(func() {
		qMatrix, matrixErr = lab.Scenarios(9400, miniMatrixConfig())
	})
	if matrixErr != nil {
		t.Fatal(matrixErr)
	}
	return qMatrix
}

func TestScenarioMatrixShape(t *testing.T) {
	m := quickMatrix(t)
	catalog := attack.Catalog()
	if len(catalog) < 8 {
		t.Fatalf("catalog has %d scenarios, want ≥ 8", len(catalog))
	}
	if len(m.Detectors) < 3 {
		t.Fatalf("matrix has %d detectors, want ≥ 3", len(m.Detectors))
	}
	if want := len(catalog) * len(m.Detectors); len(m.Cells) != want {
		t.Fatalf("matrix has %d cells, want %d", len(m.Cells), want)
	}
	for _, e := range catalog {
		for _, det := range m.Detectors {
			c, err := m.Cell(e.Name, det)
			if err != nil {
				t.Fatalf("missing cell (%s, %s): %v", e.Name, det, err)
			}
			if c.AUC < 0 || c.AUC > 1 {
				t.Errorf("(%s, %s): AUC %g out of [0,1]", e.Name, det, c.AUC)
			}
			if c.LatencyIv < -1 || c.LatencyIv >= m.Config.HorizonIv-m.Config.EventIv {
				t.Errorf("(%s, %s): latency %d out of range", e.Name, det, c.LatencyIv)
			}
			if c.PreFlagRate < 0 || c.PreFlagRate > 1 || c.PostFlagRate < 0 || c.PostFlagRate > 1 {
				t.Errorf("(%s, %s): rates %g/%g out of [0,1]", e.Name, det, c.PreFlagRate, c.PostFlagRate)
			}
			if c.Kind != e.Kind {
				t.Errorf("(%s, %s): kind %q, want %q", e.Name, det, c.Kind, e.Kind)
			}
		}
	}
	if _, err := m.Cell("no-such", "mhm"); !errors.Is(err, ErrExperiment) {
		t.Errorf("unknown cell: %v", err)
	}
	if s := m.String(); len(s) == 0 {
		t.Error("empty rendering")
	}
}

func TestScenarioMatrixLoudAttacksDetected(t *testing.T) {
	m := quickMatrix(t)
	// The paper's loud scenario must be cleanly separable for the fused
	// detectors even at the mini geometry.
	for _, det := range []string{"ensemble-max", "ensemble-wsum"} {
		c, err := m.Cell("app-addition", det)
		if err != nil {
			t.Fatal(err)
		}
		if c.AUC < 0.9 {
			t.Errorf("app-addition/%s AUC = %.3f, want ≥ 0.9", det, c.AUC)
		}
		if c.LatencyIv < 0 {
			t.Errorf("app-addition/%s never flagged", det)
		}
	}
	// Clean pre-event intervals must not be grossly miscalibrated. The
	// quick model sees 20 pre-event intervals of a different seed than
	// calibration, so seed-to-seed shift dominates the nominal 1% rate —
	// this bound only catches a threshold placed inside the clean bulk.
	for _, c := range m.Cells {
		if c.PreFlagRate > 0.5 {
			t.Errorf("(%s, %s): pre-event flag rate %.3f at θ_0.01", c.Scenario, c.Detector, c.PreFlagRate)
		}
	}
}

func TestScenarioMatrixJSONRoundTrip(t *testing.T) {
	m := quickMatrix(t)
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back ScenarioMatrix
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != len(m.Cells) || back.Config.EventIv != m.Config.EventIv {
		t.Errorf("round trip lost data: %d cells, event %d", len(back.Cells), back.Config.EventIv)
	}
	c0, b0 := m.Cells[0], back.Cells[0]
	if c0 != b0 {
		t.Errorf("cell round trip: %+v vs %+v", c0, b0)
	}
}

func TestMatrixGeometryValidation(t *testing.T) {
	lab, _, _ := quickLab(t)
	if _, err := lab.Scenarios(1, MatrixConfig{EventIv: 0, HorizonIv: 10}); !errors.Is(err, ErrExperiment) {
		t.Errorf("zero event: %v", err)
	}
	if _, err := lab.Scenarios(1, MatrixConfig{EventIv: 10, HorizonIv: 10}); !errors.Is(err, ErrExperiment) {
		t.Errorf("horizon == event: %v", err)
	}
}

func TestSmoothSeries(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	got := smoothSeries(xs, 3)
	want := []float64{1, 1.5, 2, 3, 4}
	for i := range want {
		if d := got[i] - want[i]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("smoothSeries[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if &smoothSeries(xs, 1)[0] != &xs[0] {
		t.Error("window 1 should return the input unchanged")
	}
}

func TestCollectObservedChannelsAligned(t *testing.T) {
	lab, _, _ := quickLab(t)
	maps, samples, err := lab.CollectObserved(nil, 4321, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(maps) != 30 || len(samples) != 30 {
		t.Fatalf("channels misaligned: %d maps vs %d samples", len(maps), len(samples))
	}
	// The recorder must not perturb the monitored channel: same seed
	// without a recorder yields bit-identical heat maps.
	plain, err := lab.CollectNormal(4321, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range maps {
		if d, err := maps[i].L1Distance(plain[i]); err != nil || d != 0 {
			t.Fatalf("interval %d: observed run diverged from plain run (d=%d, err=%v)", i, d, err)
		}
	}
	// Syscall samples carry real activity in every interval.
	for i, s := range samples {
		total := 0.0
		for _, c := range s.Counts {
			total += c
		}
		if total <= 0 {
			t.Errorf("interval %d: empty syscall sample", i)
		}
	}
	_ = syscalls.OtherBucket
}

// goldenAUC is the regression baseline for the paper's three attacks
// under the per-interval MHM detector at quick scale, δt = 10 ms
// defaults. Regenerate with MHM_UPDATE_GOLDEN=1 go test ./internal/experiments
// -run TestGoldenROCRegression after an intentional model change.
type goldenAUC map[string]float64

func paperAttackAUC(t *testing.T) goldenAUC {
	t.Helper()
	lab, det, _ := quickLab(t)
	const (
		eventIv = 40
		horizon = 100
	)
	iv := lab.Scale.IntervalMicros
	out := goldenAUC{}
	for i, name := range []string{"app-addition", "shellcode", "rootkit-lkm"} {
		e, err := attack.Find(name)
		if err != nil {
			t.Fatal(err)
		}
		maps, err := lab.RunScenario(e.Build(int64(eventIv)*iv+iv/2), 7700+int64(i), int64(horizon)*iv)
		if err != nil {
			t.Fatal(err)
		}
		dens, err := batchDensities(det, maps)
		if err != nil {
			t.Fatal(err)
		}
		neg := make([]float64, 0, eventIv)
		pos := make([]float64, 0, horizon-eventIv)
		for j, d := range dens {
			if j < eventIv {
				neg = append(neg, -d)
			} else {
				pos = append(pos, -d)
			}
		}
		auc, err := stats.AUC(neg, pos)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = auc
	}
	return out
}

func TestGoldenROCRegression(t *testing.T) {
	path := filepath.Join("testdata", "golden_auc.json")
	got := paperAttackAUC(t)
	if os.Getenv("MHM_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s: %v", path, got)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden file (regenerate with MHM_UPDATE_GOLDEN=1): %v", err)
	}
	var want goldenAUC
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	const slack = 0.02
	for name, g := range want {
		a, ok := got[name]
		if !ok {
			t.Errorf("scenario %s missing from current run", name)
			continue
		}
		if a < g-slack {
			t.Errorf("%s: AUC %.4f regressed below golden %.4f − %.2f", name, a, g, slack)
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("scenario %s not in golden file; regenerate", name)
		}
	}
}
