package experiments

import (
	"strings"
	"testing"
)

func TestLPrimeSweep(t *testing.T) {
	lab, _, _ := quickLab(t)
	r, err := lab.LPrimeSweep([]int{2, 4, 9}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// More eigenmemories: more variance, lower reconstruction error.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].VarianceExplained < r.Rows[i-1].VarianceExplained-1e-9 {
			t.Errorf("variance not increasing: %+v", r.Rows)
		}
		if r.Rows[i].ReconRMS > r.Rows[i-1].ReconRMS+1e-9 {
			t.Errorf("reconstruction error not decreasing: %+v", r.Rows)
		}
	}
	// All configurations must detect the qsort scenario well.
	for _, row := range r.Rows {
		if row.FPRate > 0.15 {
			t.Errorf("L'=%d: FP %.3f", row.LPrime, row.FPRate)
		}
	}
	if best := r.Rows[len(r.Rows)-1]; best.DetectRate < 0.4 {
		t.Errorf("L'=9 detect rate %.3f", best.DetectRate)
	}
	if !strings.Contains(r.String(), "A1") {
		t.Error("rendering incomplete")
	}
}

func TestJSweep(t *testing.T) {
	lab, _, _ := quickLab(t)
	r, err := lab.JSweep([]int{1, 5}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// More components fit the multi-phase data at least as well.
	if r.Rows[1].AvgLogLikelihood < r.Rows[0].AvgLogLikelihood-1e-6 {
		t.Errorf("J=5 avg LL %.3f below J=1 %.3f", r.Rows[1].AvgLogLikelihood, r.Rows[0].AvgLogLikelihood)
	}
	for _, row := range r.Rows {
		if row.FPRate > 0.15 {
			t.Errorf("J=%d: FP %.3f", row.J, row.FPRate)
		}
	}
	if !strings.Contains(r.String(), "A2") {
		t.Error("rendering incomplete")
	}
}

func TestGranSweep(t *testing.T) {
	lab, _, _ := quickLab(t)
	r, err := lab.GranSweep([]uint64{2048, 8192}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0].Cells != 1472 || r.Rows[1].Cells != 368 {
		t.Errorf("cells = %d/%d, want 1472/368", r.Rows[0].Cells, r.Rows[1].Cells)
	}
	for _, row := range r.Rows {
		if row.FPRate > 0.15 {
			t.Errorf("δ=%d: FP %.3f", row.Gran, row.FPRate)
		}
		if row.DetectRate < 0.3 {
			t.Errorf("δ=%d: detect rate %.3f", row.Gran, row.DetectRate)
		}
	}
	if !strings.Contains(r.String(), "A3") {
		t.Error("rendering incomplete")
	}
}

func TestBaselineCompare(t *testing.T) {
	lab, det, _ := quickLab(t)
	r, err := lab.BaselineCompare(det, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byName := map[string]BaselineRow{}
	for _, row := range r.Rows {
		byName[row.Scenario] = row
	}
	// The paper's core contrast: the rootkit's steady state is invisible
	// to volume monitoring but visible (at least partially) to the MHM
	// detector.
	rk := byName["rootkit-lkm"]
	if rk.VolumeRate > 0.15 {
		t.Errorf("volume detector flagged %.3f of rootkit steady state; should be nearly blind", rk.VolumeRate)
	}
	if rk.MHMRate <= rk.VolumeRate {
		t.Errorf("MHM rate %.3f not above volume rate %.3f on rootkit", rk.MHMRate, rk.VolumeRate)
	}
	// App addition must be strongly detected by the MHM detector.
	if byName["app-addition"].MHMRate < 0.4 {
		t.Errorf("app-addition MHM rate %.3f", byName["app-addition"].MHMRate)
	}
	if !strings.Contains(r.String(), "A4") {
		t.Error("rendering incomplete")
	}
}
