package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/pca"
	"github.com/memheatmap/mhm/internal/rtos"
	"github.com/memheatmap/mhm/internal/securecore"
	"github.com/memheatmap/mhm/internal/workload"
)

// AnalysisTimeRow is one configuration of the §5.4 analysis-time table.
type AnalysisTimeRow struct {
	// L is the number of cells, LPrime the eigenmemories, J the GMM
	// components.
	L, LPrime, J int
	// Gran is the MHM granularity producing L.
	Gran uint64
	// MeanMicros is the measured mean per-MHM classification time over
	// Samples classifications.
	MeanMicros float64
	Samples    int
	// PaperMicros is what the paper measured on its secure core, for
	// side-by-side reporting (0 when the paper has no number).
	PaperMicros float64
}

// AnalysisTimeResult is the §5.4 table.
type AnalysisTimeResult struct {
	Rows []AnalysisTimeRow
}

// String renders the table.
func (r AnalysisTimeResult) String() string {
	var b strings.Builder
	b.WriteString("§5.4 — analysis time per MHM\n")
	b.WriteString("  L(cells)  δ(bytes)  L'  J  measured(µs)  paper(µs)\n")
	for _, row := range r.Rows {
		paper := "-"
		if row.PaperMicros > 0 {
			paper = fmt.Sprintf("%.0f", row.PaperMicros)
		}
		fmt.Fprintf(&b, "  %8d  %8d  %2d  %d  %12.2f  %9s\n",
			row.L, row.Gran, row.LPrime, row.J, row.MeanMicros, paper)
	}
	b.WriteString("  (absolute times differ from the paper's ARM secure core; the shape —\n")
	b.WriteString("   cost grows with L and L' — is the reproduced result)\n")
	return b.String()
}

// analysisConfigs are the three §5.4 configurations with the paper's
// measurements.
var analysisConfigs = []struct {
	gran        uint64
	lprime      int
	paperMicros float64
}{
	{2048, 9, 358},
	{8192, 9, 100},
	{2048, 5, 216},
}

// AnalysisTime measures mean classification latency for the paper's
// three configurations. Each configuration trains a detector at the
// lab's scale (fixing L' explicitly) and times samples classifications
// of fresh normal MHMs.
func (l *Lab) AnalysisTime(seedBase int64, samples int) (*AnalysisTimeResult, error) {
	if samples <= 0 {
		samples = 1000
	}
	res := &AnalysisTimeResult{}
	for i, cfg := range analysisConfigs {
		lab := &Lab{Img: l.Img, Scale: l.Scale}
		lab.Scale.Gran = cfg.gran
		lab.Scale.PCAOptions = pca.Options{Components: cfg.lprime, Parallel: true}
		det, _, err := lab.TrainDetector(seedBase + int64(100*i))
		if err != nil {
			return nil, fmt.Errorf("experiments: analysis config %d: %w", i, err)
		}
		// Fresh normal data to classify.
		maps, err := lab.CollectNormal(seedBase+int64(100*i)+50, lab.Scale.TrainRunMicros)
		if err != nil {
			return nil, err
		}
		if len(maps) == 0 {
			return nil, fmt.Errorf("experiments: analysis config %d: no test MHMs: %w", i, ErrExperiment)
		}
		vectors, err := heatmap.PackVectors(maps)
		if err != nil {
			return nil, err
		}
		// Warm up, then measure.
		if _, err := det.LogDensityVector(vectors[0]); err != nil {
			return nil, err
		}
		start := time.Now()
		for s := 0; s < samples; s++ {
			if _, err := det.LogDensityVector(vectors[s%len(vectors)]); err != nil {
				return nil, err
			}
		}
		elapsed := time.Since(start)
		cells, lprime := det.Dim()
		res.Rows = append(res.Rows, AnalysisTimeRow{
			L:           cells,
			LPrime:      lprime,
			J:           len(det.GMM.Components),
			Gran:        cfg.gran,
			MeanMicros:  float64(elapsed.Microseconds()) / float64(samples),
			Samples:     samples,
			PaperMicros: cfg.paperMicros,
		})
	}
	return res, nil
}

// TasksetRow describes one task of the §5.1 table.
type TasksetRow struct {
	Name      string
	ExecMs    float64
	PeriodMs  float64
	Category  string
	Released  int64
	Completed int64
	Missed    int64
}

// TasksetResult is the §5.1 task table plus simulated schedulability.
type TasksetResult struct {
	Rows        []TasksetRow
	Utilization float64
	// LLBound is the Liu & Layland sufficient bound for the set size.
	LLSchedulable bool
	// SimMisses is the total deadline misses over the simulated horizon.
	SimMisses int64
}

// String renders the table.
func (r TasksetResult) String() string {
	var b strings.Builder
	b.WriteString("§5.1 — task set\n")
	b.WriteString("  task       exec(ms)  period(ms)  category    released  completed  missed\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-9s  %8.0f  %10.0f  %-10s  %8d  %9d  %6d\n",
			row.Name, row.ExecMs, row.PeriodMs, row.Category, row.Released, row.Completed, row.Missed)
	}
	fmt.Fprintf(&b, "  utilization %.2f (paper: 0.78); LL-bound schedulable: %v; simulated misses: %d\n",
		r.Utilization, r.LLSchedulable, r.SimMisses)
	return b.String()
}

// paperCategories maps the §5.1 MiBench categories.
var paperCategories = map[string]string{
	"FFT":       "telecomm",
	"bitcount":  "automotive",
	"basicmath": "automotive",
	"sha":       "security",
}

// Taskset runs the paper task set for the given horizon and reports the
// §5.1 table with simulated schedulability statistics.
func (l *Lab) Taskset(horizonMicros int64, noiseSeed int64) (*TasksetResult, error) {
	tasks, err := workload.PaperTaskSet(l.Img)
	if err != nil {
		return nil, err
	}
	perTask := map[string]*jobCounts{}
	for _, t := range tasks {
		perTask[t.Name] = &jobCounts{}
	}
	rec := &taskCounter{perTask: perTask}
	cfg := l.sessionConfig(noiseSeed)
	cfg.ExtraListeners = []rtos.ExecListener{rec}
	s, err := securecore.NewSession(l.Img, tasks, cfg)
	if err != nil {
		return nil, err
	}
	if _, err := s.Run(horizonMicros); err != nil {
		return nil, err
	}
	res := &TasksetResult{
		Utilization:   rtos.Utilization(tasks),
		LLSchedulable: rtos.RMSchedulable(tasks),
	}
	for _, t := range tasks {
		c := perTask[t.Name]
		res.Rows = append(res.Rows, TasksetRow{
			Name:      t.Name,
			ExecMs:    float64(t.WCET) / 1000,
			PeriodMs:  float64(t.Period) / 1000,
			Category:  paperCategories[t.Name],
			Released:  c.released,
			Completed: c.completed,
			Missed:    c.missed,
		})
		res.SimMisses += c.missed
	}
	return res, nil
}

// jobCounts tallies one task's job lifecycle events.
type jobCounts struct{ released, completed, missed int64 }

// taskCounter records per-task job statistics alongside the monitor.
type taskCounter struct {
	rtos.NopListener
	perTask map[string]*jobCounts
}

func (c *taskCounter) OnJobRelease(t int64, task *rtos.Task, idx int64) {
	if s, ok := c.perTask[task.Name]; ok {
		s.released++
	}
}

func (c *taskCounter) OnJobComplete(t int64, task *rtos.Task, idx int64, missed bool) {
	if s, ok := c.perTask[task.Name]; ok {
		s.completed++
		if missed {
			s.missed++
		}
	}
}
