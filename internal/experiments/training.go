package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"strings"
	"time"

	"github.com/memheatmap/mhm/internal/attack"
	"github.com/memheatmap/mhm/internal/core"
	"github.com/memheatmap/mhm/internal/gmm"
	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/memometer"
	"github.com/memheatmap/mhm/internal/pca"
	"github.com/memheatmap/mhm/internal/securecore"
	"github.com/memheatmap/mhm/internal/trace"
)

// TrainingThroughputRow is one (stage, mode) measurement of the
// training-throughput experiment.
type TrainingThroughputRow struct {
	// Stage identifies the pipeline stage: "core.Train", "pca.Train",
	// "gmm.Train", "ingest".
	Stage string
	// Mode is "serial" or "parallel" for the model stages and
	// "per-record" or "batch" for ingest.
	Mode string
	// Millis is the mean wall-clock cost of one full stage run.
	Millis float64
	// Speedup is relative to the stage's baseline mode.
	Speedup float64
}

// TrainingThroughputResult is experiment A12: wall-clock cost of the
// training engine's stages, serial versus parallel, plus per-record
// versus batched trace ingest — with the determinism contract checked
// on the side (the serial and parallel models must be bit-identical,
// and both ingest paths must produce identical heat maps).
type TrainingThroughputResult struct {
	L, LPrime, J int
	Restarts     int
	TrainMaps    int
	Workers      int
	TraceEvents  uint64
	Rows         []TrainingThroughputRow
	// BitIdentical reports whether the serial and parallel detectors
	// agreed bit for bit and the two ingest paths produced the same maps.
	BitIdentical bool
}

// String renders the comparison.
func (r TrainingThroughputResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "A12 — training engine throughput (L=%d, L'=%d, J=%d, restarts=%d, workers=%d)\n",
		r.L, r.LPrime, r.J, r.Restarts, r.Workers)
	b.WriteString("  stage       mode        wall(ms)  speedup\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-10s  %-10s  %8.1f  %6.2fx\n", row.Stage, row.Mode, row.Millis, row.Speedup)
	}
	fmt.Fprintf(&b, "  (%d training MHMs; ingest over %d trace events; serial/parallel bit-identical: %v)\n",
		r.TrainMaps, r.TraceEvents, r.BitIdentical)
	return b.String()
}

// TrainingThroughput measures experiment A12. The model stages run on
// the scale's training volume (paper scale: L=1472, L'=9, J=5, 10
// restarts); repeats averages each measurement. On a single-core
// machine the parallel rows simply reproduce the serial times — the
// engine's contract makes them bit-identical either way.
func (l *Lab) TrainingThroughput(seedBase int64, repeats int) (*TrainingThroughputResult, error) {
	if repeats <= 0 {
		repeats = 1
	}
	var trainSet []*heatmap.HeatMap
	for run := 0; run < l.Scale.TrainRuns; run++ {
		maps, err := l.CollectNormal(seedBase+int64(run), l.Scale.TrainRunMicros)
		if err != nil {
			return nil, fmt.Errorf("experiments: training throughput run %d: %w", run, err)
		}
		trainSet = append(trainSet, maps...)
	}
	calib, err := l.CollectNormal(seedBase+int64(l.Scale.TrainRuns), l.Scale.CalibRunMicros)
	if err != nil {
		return nil, fmt.Errorf("experiments: training throughput calibration: %w", err)
	}

	workers := runtime.GOMAXPROCS(0)
	res := &TrainingThroughputResult{
		J:            l.Scale.GMMOptions.Components,
		Restarts:     l.Scale.GMMOptions.Restarts,
		TrainMaps:    len(trainSet),
		Workers:      workers,
		BitIdentical: true,
	}

	cfgFor := func(parallel bool) core.Config {
		cfg := core.Config{
			PCA:       l.Scale.PCAOptions,
			GMM:       l.Scale.GMMOptions,
			Quantiles: l.Scale.Quantiles,
		}
		cfg.PCA.Parallel = parallel
		cfg.GMM.Parallel = parallel
		if parallel {
			cfg.Workers = workers
		} else {
			cfg.Workers = 1
		}
		return cfg
	}

	// Stage 1: the full model build, serial vs parallel.
	var serialDet, parallelDet *core.Detector
	serialMillis, err := timeStage(repeats, func() error {
		serialDet, err = core.Train(trainSet, calib, cfgFor(false))
		return err
	})
	if err != nil {
		return nil, err
	}
	parallelMillis, err := timeStage(repeats, func() error {
		parallelDet, err = core.Train(trainSet, calib, cfgFor(true))
		return err
	})
	if err != nil {
		return nil, err
	}
	res.L, res.LPrime = serialDet.Dim()
	for i, th := range serialDet.Thresholds {
		if math.Float64bits(parallelDet.Thresholds[i].Theta) != math.Float64bits(th.Theta) {
			res.BitIdentical = false
		}
	}
	res.Rows = append(res.Rows,
		TrainingThroughputRow{Stage: "core.Train", Mode: "serial", Millis: serialMillis, Speedup: 1},
		TrainingThroughputRow{Stage: "core.Train", Mode: "parallel", Millis: parallelMillis, Speedup: serialMillis / parallelMillis},
	)

	// Stage 2: the eigenmemory build alone.
	vectors, err := heatmap.PackVectors(trainSet)
	if err != nil {
		return nil, err
	}
	pcaOpts := l.Scale.PCAOptions
	pcaOpts.Parallel = false
	pcaOpts.Workers = 1
	pcaSerial, err := timeStage(repeats, func() error {
		_, err := pca.Train(vectors, pcaOpts)
		return err
	})
	if err != nil {
		return nil, err
	}
	pcaOpts.Parallel = true
	pcaOpts.Workers = workers
	pcaParallel, err := timeStage(repeats, func() error {
		_, err := pca.Train(vectors, pcaOpts)
		return err
	})
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows,
		TrainingThroughputRow{Stage: "pca.Train", Mode: "serial", Millis: pcaSerial, Speedup: 1},
		TrainingThroughputRow{Stage: "pca.Train", Mode: "parallel", Millis: pcaParallel, Speedup: pcaSerial / pcaParallel},
	)

	// Stage 3: the EM fit alone, on the serial detector's reduced set.
	reduced, err := serialDet.PCA.ProjectAll(vectors)
	if err != nil {
		return nil, err
	}
	gmmOpts := l.Scale.GMMOptions
	gmmOpts.Parallel = false
	gmmOpts.Workers = 1
	gmmSerial, err := timeStage(repeats, func() error {
		_, err := gmm.Train(reduced, gmmOpts)
		return err
	})
	if err != nil {
		return nil, err
	}
	gmmOpts.Parallel = true
	gmmOpts.Workers = workers
	gmmParallel, err := timeStage(repeats, func() error {
		_, err := gmm.Train(reduced, gmmOpts)
		return err
	})
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows,
		TrainingThroughputRow{Stage: "gmm.Train", Mode: "serial", Millis: gmmSerial, Speedup: 1},
		TrainingThroughputRow{Stage: "gmm.Train", Mode: "parallel", Millis: gmmParallel, Speedup: gmmSerial / gmmParallel},
	)

	// Stage 4: trace ingest, per-record vs batched replay of one capture.
	s, err := attack.BuildScenarioSession(l.Img, nil, l.sessionConfig(seedBase+900))
	if err != nil {
		return nil, err
	}
	var traceBuf bytes.Buffer
	tw := trace.NewWriter(&traceBuf)
	s.Monitor.SetTraceWriter(tw)
	if _, err := s.Run(l.Scale.TrainRunMicros); err != nil {
		return nil, err
	}
	if err := tw.Flush(); err != nil {
		return nil, err
	}
	res.TraceEvents = tw.Count()
	raw := traceBuf.Bytes()
	cfg := memometer.Config{
		Region:         heatmap.Def{AddrBase: l.Img.Base, Size: l.Img.Size, Gran: l.Scale.Gran},
		IntervalMicros: l.Scale.IntervalMicros,
	}

	var perRecMaps []*heatmap.HeatMap
	perRecMillis, err := timeStage(repeats, func() error {
		perRecMaps, err = replayPerRecord(raw, cfg, l.Scale.TrainRunMicros)
		return err
	})
	if err != nil {
		return nil, err
	}
	var batchMaps []*heatmap.HeatMap
	batchMillis, err := timeStage(repeats, func() error {
		batchMaps, err = securecore.Replay(trace.NewReader(bytes.NewReader(raw)), cfg, l.Scale.TrainRunMicros)
		return err
	})
	if err != nil {
		return nil, err
	}
	if len(perRecMaps) != len(batchMaps) {
		res.BitIdentical = false
	} else {
		for i := range perRecMaps {
			d, err := perRecMaps[i].L1Distance(batchMaps[i])
			if err != nil || d != 0 {
				res.BitIdentical = false
				break
			}
		}
	}
	res.Rows = append(res.Rows,
		TrainingThroughputRow{Stage: "ingest", Mode: "per-record", Millis: perRecMillis, Speedup: 1},
		TrainingThroughputRow{Stage: "ingest", Mode: "batch", Millis: batchMillis, Speedup: perRecMillis / batchMillis},
	)
	return res, nil
}

// timeStage runs fn repeats times and returns the mean wall-clock cost
// in milliseconds.
func timeStage(repeats int, fn func() error) (float64, error) {
	start := time.Now()
	for r := 0; r < repeats; r++ {
		if err := fn(); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / 1e6 / float64(repeats), nil
}

// replayPerRecord is the pre-batching replay loop — one Reader.Read and
// one SnoopBurst per event — kept as the ingest baseline.
func replayPerRecord(raw []byte, cfg memometer.Config, endTime int64) ([]*heatmap.HeatMap, error) {
	dev := memometer.New()
	if err := dev.Configure(cfg); err != nil {
		return nil, err
	}
	var maps []*heatmap.HeatMap
	drain := func() error {
		for dev.HasPending() {
			hm, err := dev.Collect()
			if err != nil {
				return err
			}
			maps = append(maps, hm)
		}
		return nil
	}
	r := trace.NewReader(bytes.NewReader(raw))
	for {
		a, err := r.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := dev.SnoopBurst(a.Time, a.Addr, a.Count); err != nil {
			return nil, err
		}
		if err := drain(); err != nil {
			return nil, err
		}
	}
	if err := dev.Tick(endTime); err != nil {
		return nil, err
	}
	if err := drain(); err != nil {
		return nil, err
	}
	return maps, nil
}
