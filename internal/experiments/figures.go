package experiments

import (
	"fmt"
	"strings"

	"github.com/memheatmap/mhm/internal/attack"
	"github.com/memheatmap/mhm/internal/baseline"
	"github.com/memheatmap/mhm/internal/core"
	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/workload"
)

// Fig1Result reproduces Fig. 1: an example MHM of the kernel .text
// segment measured for one 10 ms interval, with its parameter table.
type Fig1Result struct {
	AddrBase   uint64
	RegionSize uint64
	Gran       uint64
	Cells      int
	Interval   int64
	Total      uint64
	Rendered   string
	Map        *heatmap.HeatMap
}

// String renders the parameter table and the ASCII heat map.
func (r Fig1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 1 — example memory heat map (one %d ms interval)\n", r.Interval/1000)
	fmt.Fprintf(&b, "  AddrBase            %#x\n", r.AddrBase)
	fmt.Fprintf(&b, "  Memory Region Size  %d Bytes\n", r.RegionSize)
	fmt.Fprintf(&b, "  Granularity         %d Bytes\n", r.Gran)
	fmt.Fprintf(&b, "  # Cells             %d\n", r.Cells)
	fmt.Fprintf(&b, "  Total accesses      %d\n", r.Total)
	b.WriteString(r.Rendered)
	return b.String()
}

// Fig1 captures a representative normal interval (the 6th, past the
// startup transient) and renders it.
func (l *Lab) Fig1(noiseSeed int64) (*Fig1Result, error) {
	maps, err := l.CollectNormal(noiseSeed, 6*l.Scale.IntervalMicros)
	if err != nil {
		return nil, err
	}
	if len(maps) < 6 {
		return nil, fmt.Errorf("experiments: fig1: only %d intervals: %w", len(maps), ErrExperiment)
	}
	m := maps[5]
	return &Fig1Result{
		AddrBase:   m.Def.AddrBase,
		RegionSize: m.Def.Size,
		Gran:       m.Def.Gran,
		Cells:      len(m.Counts),
		Interval:   l.Scale.IntervalMicros,
		Total:      m.Total(),
		Rendered:   m.Render(92),
		Map:        m,
	}, nil
}

// DetectionResult is the common shape of Figs. 7, 8 and 10: a log
// probability density series with injection markers and per-threshold
// detection statistics.
type DetectionResult struct {
	Scenario string
	// EventInterval is the first interval at/after the injection;
	// ExitInterval marks scenario end events (Fig. 7's qsort exit), -1
	// when absent.
	EventInterval, ExitInterval int
	Verdicts                    []core.Verdict
	Thresholds                  []core.Threshold
	// PreFP counts flagged intervals before the event per quantile (the
	// false positives); PostFlagged counts flagged intervals from the
	// event on.
	PreFP, PostFlagged  map[float64]int
	PreCount, PostCount int
}

// analyze fills the detection statistics.
func analyze(name string, verdicts []core.Verdict, thresholds []core.Threshold, eventInterval, exitInterval int) *DetectionResult {
	r := &DetectionResult{
		Scenario:      name,
		EventInterval: eventInterval,
		ExitInterval:  exitInterval,
		Verdicts:      verdicts,
		Thresholds:    thresholds,
		PreFP:         map[float64]int{},
		PostFlagged:   map[float64]int{},
	}
	for _, v := range verdicts {
		pre := v.Index < eventInterval
		if pre {
			r.PreCount++
		} else {
			r.PostCount++
		}
		for p, anom := range v.Anomalous {
			if !anom {
				continue
			}
			if pre {
				r.PreFP[p]++
			} else {
				r.PostFlagged[p]++
			}
		}
	}
	return r
}

// String renders the summary and a downsampled density series.
func (r *DetectionResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: event at interval %d", r.Scenario, r.EventInterval)
	if r.ExitInterval >= 0 {
		fmt.Fprintf(&b, ", exit at %d", r.ExitInterval)
	}
	fmt.Fprintf(&b, "; %d intervals total\n", len(r.Verdicts))
	for _, th := range r.Thresholds {
		fmt.Fprintf(&b, "  θ%g=%.2f: pre-event flagged %d/%d (FP %.2f%%), post-event flagged %d/%d (%.1f%%)\n",
			th.P*100, th.Theta,
			r.PreFP[th.P], r.PreCount, 100*float64(r.PreFP[th.P])/float64(max(1, r.PreCount)),
			r.PostFlagged[th.P], r.PostCount, 100*float64(r.PostFlagged[th.P])/float64(max(1, r.PostCount)))
	}
	b.WriteString("  interval,logDensity\n")
	step := len(r.Verdicts) / 50
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(r.Verdicts); i += step {
		fmt.Fprintf(&b, "  %d,%.2f\n", r.Verdicts[i].Index, r.Verdicts[i].LogDensity)
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// MeanDensity returns the average log density over [lo, hi) interval
// indices, clamped to the series.
func (r *DetectionResult) MeanDensity(lo, hi int) float64 {
	if lo < 0 {
		lo = 0
	}
	if hi > len(r.Verdicts) {
		hi = len(r.Verdicts)
	}
	if hi <= lo {
		return 0
	}
	s := 0.0
	for _, v := range r.Verdicts[lo:hi] {
		s += v.LogDensity
	}
	return s / float64(hi-lo)
}

// Fig7 reproduces the application addition/deletion experiment: 500
// intervals, qsort (6 ms / 30 ms) launched shortly after interval 250
// and exited near interval 440.
func (l *Lab) Fig7(det *core.Detector, noiseSeed int64) (*DetectionResult, error) {
	iv := l.Scale.IntervalMicros
	launch := 250*iv + iv/2
	exit := 440*iv + iv/2
	sc := &attack.AppAddition{Spec: workload.QsortSpec(), LaunchAt: launch, ExitAt: exit}
	maps, err := l.RunScenario(sc, noiseSeed, 500*iv)
	if err != nil {
		return nil, err
	}
	verdicts, err := det.ClassifySeries(maps)
	if err != nil {
		return nil, err
	}
	return analyze("Fig. 7 — application addition/deletion (qsort)", verdicts, det.Thresholds, 250, 440), nil
}

// Fig8 reproduces the shellcode experiment: 400 intervals, a payload in
// bitcount fires shortly after interval 250 (disables ASLR, spawns a
// shell, kills the host).
func (l *Lab) Fig8(det *core.Detector, noiseSeed int64) (*DetectionResult, error) {
	iv := l.Scale.IntervalMicros
	inject := 250*iv + iv/2
	sc := &attack.Shellcode{Host: "bitcount", InjectAt: inject}
	maps, err := l.RunScenario(sc, noiseSeed, 400*iv)
	if err != nil {
		return nil, err
	}
	verdicts, err := det.ClassifySeries(maps)
	if err != nil {
		return nil, err
	}
	return analyze("Fig. 8 — shellcode execution (disable ASLR)", verdicts, det.Thresholds, 250, -1), nil
}

// Fig9Result is the rootkit traffic-volume series: loading is visible,
// the steady state is not.
type Fig9Result struct {
	LoadInterval int
	Totals       []uint64
	// Flags are the volume detector's verdicts (mean ± 3σ band trained on
	// the pre-load prefix).
	Flags []bool
	// SpikeRatio is load-interval traffic over normal mean; SteadyRatio
	// compares post-load steady-state mean to pre-load mean.
	SpikeRatio, SteadyRatio float64
}

// String renders the summary and a downsampled volume series.
func (r *Fig9Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 9 — rootkit memory traffic volume: load at interval %d\n", r.LoadInterval)
	fmt.Fprintf(&b, "  load spike ratio %.2fx, steady-state ratio %.4fx (≈1 means the hijack is invisible in volume)\n",
		r.SpikeRatio, r.SteadyRatio)
	flagged := 0
	postFlagged := 0
	for i, f := range r.Flags {
		if f {
			flagged++
			if i > r.LoadInterval+2 {
				postFlagged++
			}
		}
	}
	fmt.Fprintf(&b, "  volume detector: %d intervals flagged total, %d in post-load steady state\n", flagged, postFlagged)
	b.WriteString("  interval,totalAccesses\n")
	step := len(r.Totals) / 50
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(r.Totals); i += step {
		fmt.Fprintf(&b, "  %d,%d\n", i, r.Totals[i])
	}
	return b.String()
}

// rootkitScenario builds the Fig. 9/10 scenario at the paper-like load
// point (~interval 150).
func (l *Lab) rootkitScenario() (*attack.RootkitLKM, int) {
	iv := l.Scale.IntervalMicros
	loadInterval := 150
	return &attack.RootkitLKM{LoadAt: int64(loadInterval)*iv + iv/2}, loadInterval
}

// Fig9 reproduces the traffic-volume view of the rootkit run.
func (l *Lab) Fig9(noiseSeed int64) (*Fig9Result, error) {
	iv := l.Scale.IntervalMicros
	sc, loadInterval := l.rootkitScenario()
	maps, err := l.RunScenario(sc, noiseSeed, 400*iv)
	if err != nil {
		return nil, err
	}
	if len(maps) <= loadInterval+10 {
		return nil, fmt.Errorf("experiments: fig9: only %d intervals: %w", len(maps), ErrExperiment)
	}
	vol, err := baseline.TrainVolume(maps[:loadInterval], 3)
	if err != nil {
		return nil, err
	}
	flags, totals := vol.ClassifySeries(maps)

	var pre, steady float64
	for i := 0; i < loadInterval; i++ {
		pre += float64(totals[i])
	}
	pre /= float64(loadInterval)
	n := 0
	for i := loadInterval + 5; i < len(totals); i++ {
		steady += float64(totals[i])
		n++
	}
	steady /= float64(n)
	return &Fig9Result{
		LoadInterval: loadInterval,
		Totals:       totals,
		Flags:        flags,
		SpikeRatio:   float64(totals[loadInterval]) / pre,
		SteadyRatio:  steady / pre,
	}, nil
}

// Fig10 reproduces the MHM-detector view of the same rootkit run.
func (l *Lab) Fig10(det *core.Detector, noiseSeed int64) (*DetectionResult, error) {
	iv := l.Scale.IntervalMicros
	sc, loadInterval := l.rootkitScenario()
	maps, err := l.RunScenario(sc, noiseSeed, 400*iv)
	if err != nil {
		return nil, err
	}
	verdicts, err := det.ClassifySeries(maps)
	if err != nil {
		return nil, err
	}
	return analyze("Fig. 10 — rootkit read-hijack (MHM detector)", verdicts, det.Thresholds, loadInterval, -1), nil
}

// ShaPhaseHistogram counts flagged post-event intervals by schedule
// phase (interval index mod hyperperiod intervals); the paper observes
// Fig. 10's anomalies synchronize with sha's 100 ms period.
func ShaPhaseHistogram(r *DetectionResult, p float64, hyperIntervals int) []int {
	hist := make([]int, hyperIntervals)
	for _, v := range r.Verdicts {
		if v.Index <= r.EventInterval {
			continue
		}
		if v.Anomalous[p] {
			hist[v.Index%hyperIntervals]++
		}
	}
	return hist
}
