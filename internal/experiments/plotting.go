package experiments

import (
	"fmt"

	"github.com/memheatmap/mhm/internal/plot"
)

// Plot renders the log-density series as an ASCII chart with the
// calibrated thresholds and the event markers — the visual form of the
// paper's Figs. 7, 8 and 10.
func (r *DetectionResult) Plot(width, height int) (string, error) {
	ys := make([]float64, len(r.Verdicts))
	for i, v := range r.Verdicts {
		ys[i] = v.LogDensity
	}
	hlines := map[string]float64{}
	for _, th := range r.Thresholds {
		hlines[fmt.Sprintf("θ%g", th.P*100)] = th.Theta
	}
	marks := map[string]int{"event": r.EventInterval}
	if r.ExitInterval >= 0 {
		marks["exit"] = r.ExitInterval
	}
	return plot.Line(ys, plot.Options{
		Width:  width,
		Height: height,
		Title:  r.Scenario,
		HLines: hlines,
		Marks:  marks,
		YLabel: "log Pr(M)",
	})
}

// Plot renders the traffic-volume series — the visual form of Fig. 9.
func (r *Fig9Result) Plot(width, height int) (string, error) {
	ys := make([]float64, len(r.Totals))
	for i, v := range r.Totals {
		ys[i] = float64(v)
	}
	return plot.Line(ys, plot.Options{
		Width:   width,
		Height:  height,
		Title:   "Fig. 9 — rootkit memory traffic volume",
		Marks:   map[string]int{"insmod": r.LoadInterval},
		YLabel:  "accesses",
		KeepMax: true, // the insmod spike is the signal
	})
}
