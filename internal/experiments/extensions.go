package experiments

import (
	"fmt"
	"strings"

	"github.com/memheatmap/mhm/internal/alarm"
	"github.com/memheatmap/mhm/internal/attack"
	"github.com/memheatmap/mhm/internal/baseline"
	"github.com/memheatmap/mhm/internal/cache"
	"github.com/memheatmap/mhm/internal/core"
	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/rtos"
	"github.com/memheatmap/mhm/internal/securecore"
	"github.com/memheatmap/mhm/internal/workload"
)

// CacheRow compares one snoop-point placement.
type CacheRow struct {
	// Placement is "above-L1" (the paper's prototype) or "below-L1"
	// (§5.5's scalable variant).
	Placement string
	// VisibleFraction is the share of fetches that reach the Memometer.
	VisibleFraction float64
	FPRate          float64
	DetectRate      float64
}

// CachePlacementResult is extension experiment A5: does detection
// survive monitoring only cache misses? (§5.5 conjectures yes.)
type CachePlacementResult struct{ Rows []CacheRow }

// String renders the table.
func (r CachePlacementResult) String() string {
	var b strings.Builder
	b.WriteString("A5 — snoop-point placement (above vs below the L1 cache)\n")
	b.WriteString("  placement  visible   FP@θ1    detect@θ1\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-9s  %7.4f  %6.3f  %9.3f\n",
			row.Placement, row.VisibleFraction, row.FPRate, row.DetectRate)
	}
	return b.String()
}

// CachePlacement trains and evaluates detectors at both snoop points.
func (l *Lab) CachePlacement(seedBase int64) (*CachePlacementResult, error) {
	res := &CachePlacementResult{}
	configs := []struct {
		name  string
		cache *cache.Config
	}{
		{"above-L1", nil},
		{"below-L1", &cache.Config{SizeBytes: 32 * 1024, LineBytes: 32, Ways: 4}},
	}
	// Reference traffic for the visible-fraction column.
	refLab := &Lab{Img: l.Img, Scale: l.Scale}
	refLab.Scale.Cache = nil
	refMaps, err := refLab.CollectNormal(seedBase+77, l.Scale.CalibRunMicros)
	if err != nil {
		return nil, err
	}
	var refTotal float64
	for _, m := range refMaps {
		refTotal += float64(m.Total())
	}
	for _, cfg := range configs {
		lab := &Lab{Img: l.Img, Scale: l.Scale}
		lab.Scale.Cache = cfg.cache
		det, _, err := lab.TrainDetector(seedBase)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", cfg.name, err)
		}
		holdout, err := lab.CollectNormal(seedBase+77, lab.Scale.CalibRunMicros)
		if err != nil {
			return nil, err
		}
		verdicts, err := det.ClassifySeries(holdout)
		if err != nil {
			return nil, err
		}
		detect, err := lab.scenarioFlagRate(det, seedBase+88, 0.01)
		if err != nil {
			return nil, err
		}
		var total float64
		for _, m := range holdout {
			total += float64(m.Total())
		}
		res.Rows = append(res.Rows, CacheRow{
			Placement:       cfg.name,
			VisibleFraction: total / refTotal,
			FPRate:          core.FalsePositiveRate(verdicts, 0.01),
			DetectRate:      detect,
		})
	}
	return res, nil
}

// SMPResult is extension experiment A6: detection on a two-core SMP
// system whose kernel activity merges into one shared heat map.
type SMPResult struct {
	Cores      int
	TrainMHMs  int
	FPRate     float64
	DetectRate float64
}

// String renders the summary.
func (r SMPResult) String() string {
	return fmt.Sprintf("A6 — SMP monitoring (%d cores, shared MHM memory)\n"+
		"  trained on %d MHMs; FP@θ1 %.3f; qsort-launch detect@θ1 %.3f\n",
		r.Cores, r.TrainMHMs, r.FPRate, r.DetectRate)
}

// runSMP collects MHMs from a 2-core partitioned run (FFT+sha on core
// 0, bitcount+basicmath on core 1); extraQsortAt > 0 launches qsort on
// core 1 at that time.
func (l *Lab) runSMP(noiseSeed, micros, extraQsortAt int64) ([]*heatmap.HeatMap, error) {
	tasks, err := workload.PaperTaskSet(l.Img)
	if err != nil {
		return nil, err
	}
	byName := map[string]*rtos.Task{}
	for _, t := range tasks {
		byName[t.Name] = t
	}
	coreTasks := [][]*rtos.Task{
		{byName["FFT"], byName["sha"]},
		{byName["bitcount"], byName["basicmath"]},
	}
	s, err := securecore.NewSMPSession(l.Img, coreTasks, l.sessionConfig(noiseSeed))
	if err != nil {
		return nil, err
	}
	if extraQsortAt > 0 {
		qsort, err := workload.BuildTask(l.Img, workload.QsortSpec())
		if err != nil {
			return nil, err
		}
		if err := s.Schedulers[1].AddTaskAt(extraQsortAt, qsort); err != nil {
			return nil, err
		}
	}
	return s.Run(micros)
}

// SMPDetection trains on normal two-core behaviour and detects a qsort
// launch on core 1.
func (l *Lab) SMPDetection(seedBase int64) (*SMPResult, error) {
	var train []*heatmap.HeatMap
	for run := 0; run < l.Scale.TrainRuns; run++ {
		maps, err := l.runSMP(seedBase+int64(run), l.Scale.TrainRunMicros, 0)
		if err != nil {
			return nil, err
		}
		train = append(train, maps...)
	}
	calib, err := l.runSMP(seedBase+int64(l.Scale.TrainRuns), l.Scale.CalibRunMicros, 0)
	if err != nil {
		return nil, err
	}
	det, err := core.Train(train, calib, core.Config{
		PCA:       l.Scale.PCAOptions,
		GMM:       l.Scale.GMMOptions,
		Quantiles: l.Scale.Quantiles,
	})
	if err != nil {
		return nil, err
	}
	holdout, err := l.runSMP(seedBase+50, l.Scale.CalibRunMicros, 0)
	if err != nil {
		return nil, err
	}
	hv, err := det.ClassifySeries(holdout)
	if err != nil {
		return nil, err
	}
	iv := l.Scale.IntervalMicros
	launchIv := 100
	attacked, err := l.runSMP(seedBase+60, 200*iv, int64(launchIv)*iv+iv/2)
	if err != nil {
		return nil, err
	}
	av, err := det.ClassifySeries(attacked)
	if err != nil {
		return nil, err
	}
	flagged, n := 0, 0
	for _, v := range av {
		if v.Index <= launchIv {
			continue
		}
		n++
		if v.Anomalous[0.01] {
			flagged++
		}
	}
	return &SMPResult{
		Cores:      2,
		TrainMHMs:  len(train),
		FPRate:     core.FalsePositiveRate(hv, 0.01),
		DetectRate: float64(flagged) / float64(max(1, n)),
	}, nil
}

// AlarmRow is one scenario's debounced-alarm outcome.
type AlarmRow struct {
	Scenario    string
	FalseRaises int
	// LatencyMs is the detection latency in milliseconds (-1 = missed).
	LatencyMs int64
	Raises    int
}

// AlarmLatencyResult is extension experiment A7: operational alarms with
// debouncing (raise after 2 consecutive abnormal intervals).
type AlarmLatencyResult struct{ Rows []AlarmRow }

// String renders the table.
func (r AlarmLatencyResult) String() string {
	var b strings.Builder
	b.WriteString("A7 — debounced alarms (raise after 2, clear after 5)\n")
	b.WriteString("  scenario           raises  falseRaises  latency(ms)\n")
	for _, row := range r.Rows {
		lat := "missed"
		if row.LatencyMs >= 0 {
			lat = fmt.Sprintf("%d", row.LatencyMs)
		}
		fmt.Fprintf(&b, "  %-17s  %6d  %11d  %11s\n", row.Scenario, row.Raises, row.FalseRaises, lat)
	}
	return b.String()
}

// AlarmLatency runs every scenario (the paper's three plus the two
// extended ones) through the detector and the alarm runtime.
func (l *Lab) AlarmLatency(det *core.Detector, seedBase int64) (*AlarmLatencyResult, error) {
	iv := l.Scale.IntervalMicros
	eventIv := 100
	eventAt := int64(eventIv)*iv + iv/2
	scenarios := []attack.Scenario{
		&attack.AppAddition{Spec: workload.QsortSpec(), LaunchAt: eventAt},
		&attack.Shellcode{Host: "bitcount", InjectAt: eventAt},
		&attack.RootkitLKM{LoadAt: eventAt},
		&attack.DataExfiltration{StartAt: eventAt},
		&attack.ForkBomb{BurstAt: eventAt},
	}
	res := &AlarmLatencyResult{}
	for i, sc := range scenarios {
		maps, err := l.RunScenario(sc, seedBase+int64(i), 250*iv)
		if err != nil {
			return nil, fmt.Errorf("experiments: alarm %s: %w", sc.Name(), err)
		}
		verdicts, err := det.ClassifySeries(maps)
		if err != nil {
			return nil, err
		}
		rt, err := alarm.NewRuntime(alarm.Config{RaiseAfter: 2, ClearAfter: 5})
		if err != nil {
			return nil, err
		}
		for _, v := range verdicts {
			rt.Observe(v.Anomalous[0.01], v.End)
		}
		rep := rt.Analyze(eventIv)
		lat := int64(-1)
		if rep.DetectionLatencyIntervals >= 0 {
			lat = int64(rep.DetectionLatencyIntervals) * iv / 1000
		}
		res.Rows = append(res.Rows, AlarmRow{
			Scenario:    sc.Name(),
			FalseRaises: rep.FalseRaises,
			LatencyMs:   lat,
			Raises:      rep.Raises,
		})
	}
	return res, nil
}

// ExtendedRow scores one extended scenario for both detectors.
type ExtendedRow struct {
	Scenario            string
	VolumeRate, MHMRate float64
}

// ExtendedScenariosResult covers the attacks beyond the paper's three.
type ExtendedScenariosResult struct{ Rows []ExtendedRow }

// String renders the table.
func (r ExtendedScenariosResult) String() string {
	var b strings.Builder
	b.WriteString("E-ext — extended attack scenarios (post-event flag rate)\n")
	b.WriteString("  scenario           volume   MHM@θ1\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-17s  %6.3f  %7.3f\n", row.Scenario, row.VolumeRate, row.MHMRate)
	}
	return b.String()
}

// ExtendedScenarios evaluates the data-exfiltration and fork-bomb
// attacks against both detectors.
func (l *Lab) ExtendedScenarios(det *core.Detector, seedBase int64) (*ExtendedScenariosResult, error) {
	iv := l.Scale.IntervalMicros
	eventIv := 100
	eventAt := int64(eventIv)*iv + iv/2
	scenarios := []attack.Scenario{
		&attack.DataExfiltration{StartAt: eventAt},
		&attack.ForkBomb{BurstAt: eventAt},
	}
	normal, err := l.CollectNormal(seedBase+99, l.Scale.CalibRunMicros)
	if err != nil {
		return nil, err
	}
	vol, err := baseline.TrainVolume(normal, 3)
	if err != nil {
		return nil, err
	}
	res := &ExtendedScenariosResult{}
	for i, sc := range scenarios {
		maps, err := l.RunScenario(sc, seedBase+int64(20+i), 200*iv)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", sc.Name(), err)
		}
		post := postEventMaps(maps, eventIv)
		volFlags, _ := vol.ClassifySeries(post)
		verdicts, err := det.ClassifySeries(post)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, ExtendedRow{
			Scenario:   sc.Name(),
			VolumeRate: rate(volFlags),
			MHMRate:    core.FalsePositiveRate(verdicts, 0.01),
		})
	}
	return res, nil
}
