package experiments

import (
	"fmt"

	"github.com/memheatmap/mhm/internal/core"
	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/securecore"
	"github.com/memheatmap/mhm/internal/workload"
)

// GeneralizeResult is extension experiment A10: the same methodology on
// a different workload (crc32/dijkstra/susan/patricia — network- and
// mm-heavy, hyperperiod 600 ms) to show the detector is not tuned to the
// paper's four applications.
type GeneralizeResult struct {
	Utilization   float64
	TrainMHMs     int
	Eigenmemories int
	FPRate        float64
	DetectRate    float64
}

// String renders the summary.
func (r GeneralizeResult) String() string {
	return fmt.Sprintf("A10 — workload generalization (crc32/dijkstra/susan/patricia, U=%.2f)\n"+
		"  trained on %d MHMs, L'=%d; FP@θ1 %.3f; qsort-launch detect@θ1 %.3f\n",
		r.Utilization, r.TrainMHMs, r.Eigenmemories, r.FPRate, r.DetectRate)
}

// runAlternate collects MHMs from the alternate task set; qsortAt > 0
// launches the intruder.
func (l *Lab) runAlternate(noiseSeed, micros, qsortAt int64) ([]*heatmap.HeatMap, float64, error) {
	tasks, err := workload.AlternateTaskSet(l.Img)
	if err != nil {
		return nil, 0, err
	}
	var util float64
	for _, t := range tasks {
		util += float64(t.WCET) / float64(t.Period)
	}
	s, err := securecore.NewSession(l.Img, tasks, l.sessionConfig(noiseSeed))
	if err != nil {
		return nil, 0, err
	}
	if qsortAt > 0 {
		qsort, err := workload.BuildTask(l.Img, workload.QsortSpec())
		if err != nil {
			return nil, 0, err
		}
		if err := s.Scheduler.AddTaskAt(qsortAt, qsort); err != nil {
			return nil, 0, err
		}
	}
	maps, err := s.Run(micros)
	return maps, util, err
}

// Generalize trains on the alternate workload and detects a qsort
// launch, mirroring the Fig. 7 methodology on a foreign task set.
func (l *Lab) Generalize(seedBase int64) (*GeneralizeResult, error) {
	var train []*heatmap.HeatMap
	var util float64
	for run := 0; run < l.Scale.TrainRuns; run++ {
		maps, u, err := l.runAlternate(seedBase+int64(run), l.Scale.TrainRunMicros, 0)
		if err != nil {
			return nil, err
		}
		util = u
		train = append(train, maps...)
	}
	calib, _, err := l.runAlternate(seedBase+int64(l.Scale.TrainRuns), l.Scale.CalibRunMicros, 0)
	if err != nil {
		return nil, err
	}
	det, err := core.Train(train, calib, core.Config{
		PCA:       l.Scale.PCAOptions,
		GMM:       l.Scale.GMMOptions,
		Quantiles: l.Scale.Quantiles,
	})
	if err != nil {
		return nil, err
	}
	holdout, _, err := l.runAlternate(seedBase+50, l.Scale.CalibRunMicros, 0)
	if err != nil {
		return nil, err
	}
	hv, err := det.ClassifySeries(holdout)
	if err != nil {
		return nil, err
	}
	iv := l.Scale.IntervalMicros
	launchIv := 100
	attacked, _, err := l.runAlternate(seedBase+60, 250*iv, int64(launchIv)*iv+iv/2)
	if err != nil {
		return nil, err
	}
	av, err := det.ClassifySeries(attacked)
	if err != nil {
		return nil, err
	}
	flagged, n := 0, 0
	for _, v := range av {
		if v.Index <= launchIv {
			continue
		}
		n++
		if v.Anomalous[0.01] {
			flagged++
		}
	}
	_, lprime := det.Dim()
	return &GeneralizeResult{
		Utilization:   util,
		TrainMHMs:     len(train),
		Eigenmemories: lprime,
		FPRate:        core.FalsePositiveRate(hv, 0.01),
		DetectRate:    float64(flagged) / float64(max(1, n)),
	}, nil
}
