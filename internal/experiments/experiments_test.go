package experiments

import (
	"strings"
	"sync"
	"testing"

	"github.com/memheatmap/mhm/internal/core"
)

// Quick-scale lab and detector are expensive enough to share across the
// package's tests.
var (
	labOnce sync.Once
	labErr  error
	qLab    *Lab
	qDet    *core.Detector
	qRep    TrainingReport
)

func quickLab(t *testing.T) (*Lab, *core.Detector, TrainingReport) {
	t.Helper()
	labOnce.Do(func() {
		qLab, labErr = NewLab(1, QuickScale())
		if labErr != nil {
			return
		}
		qDet, qRep, labErr = qLab.TrainDetector(100)
	})
	if labErr != nil {
		t.Fatal(labErr)
	}
	return qLab, qDet, qRep
}

func TestTrainingReportShape(t *testing.T) {
	_, det, rep := quickLab(t)
	// 3 runs x 1 s at 10 ms = 300 training MHMs.
	if rep.TrainMHMs != 300 || rep.CalibMHMs != 100 {
		t.Errorf("train/calib = %d/%d, want 300/100", rep.TrainMHMs, rep.CalibMHMs)
	}
	if rep.Cells != 1472 {
		t.Errorf("cells = %d, want 1472 (paper: δ=2KB over .text)", rep.Cells)
	}
	if rep.Eigenmemories < 1 || rep.Eigenmemories > 16 {
		t.Errorf("eigenmemories = %d", rep.Eigenmemories)
	}
	if rep.VarianceExplained < 0.999 {
		t.Errorf("variance explained %.5f < 99.9%%", rep.VarianceExplained)
	}
	if rep.Components != 5 {
		t.Errorf("J = %d, want 5", rep.Components)
	}
	if len(det.Thresholds) != 2 {
		t.Errorf("thresholds = %+v", det.Thresholds)
	}
	if s := rep.String(); !strings.Contains(s, "L'=") {
		t.Errorf("report rendering: %q", s)
	}
}

func TestHeldOutNormalDataScoresNormal(t *testing.T) {
	lab, det, _ := quickLab(t)
	fresh, err := lab.CollectNormal(555, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	verdicts, err := det.ClassifySeries(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if fp := core.FalsePositiveRate(verdicts, 0.01); fp > 0.10 {
		t.Errorf("FP rate %.3f on held-out normal data at θ1", fp)
	}
}

func TestFig1(t *testing.T) {
	lab, _, _ := quickLab(t)
	r, err := lab.Fig1(42)
	if err != nil {
		t.Fatal(err)
	}
	if r.AddrBase != 0xC0008000 || r.RegionSize != 3013284 || r.Gran != 2048 || r.Cells != 1472 {
		t.Errorf("Fig1 params = %+v; must match the paper's table", r)
	}
	if r.Total == 0 {
		t.Error("empty example MHM")
	}
	if !strings.Contains(r.String(), "0xc0008000") {
		t.Errorf("rendering lacks base address:\n%s", r.String())
	}
}

func TestFig6(t *testing.T) {
	lab, _, _ := quickLab(t)
	r, err := lab.Fig6(300)
	if err != nil {
		t.Fatal(err)
	}
	if r.L != 1472 || r.LPrime != 16 || len(r.Weights) != 16 {
		t.Errorf("Fig6 dims = %d→%d, %d weights", r.L, r.LPrime, len(r.Weights))
	}
	// Eigenvalue shares decrease.
	for j := 1; j < len(r.EigenvalueShare); j++ {
		if r.EigenvalueShare[j] > r.EigenvalueShare[j-1]+1e-12 {
			t.Errorf("eigenvalue shares not decreasing at %d", j)
		}
	}
	if !strings.Contains(r.String(), "reconstruction RMS") {
		t.Error("rendering incomplete")
	}
}

func TestFig7AppAddition(t *testing.T) {
	lab, det, _ := quickLab(t)
	r, err := lab.Fig7(det, 777)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Verdicts) != 500 {
		t.Fatalf("%d intervals, want 500", len(r.Verdicts))
	}
	// Paper shape: pre-launch mostly normal; post-launch densities drop
	// immediately and stay low; post-exit recovery.
	preFP := float64(r.PreFP[0.01]) / float64(r.PreCount)
	if preFP > 0.10 {
		t.Errorf("pre-launch FP rate %.3f", preFP)
	}
	pre := r.MeanDensity(50, 250)
	during := r.MeanDensity(255, 440)
	after := r.MeanDensity(460, 500)
	if during >= pre-2 {
		t.Errorf("during-qsort mean density %.1f not clearly below pre %.1f", during, pre)
	}
	if after <= during+1 {
		t.Errorf("post-exit mean density %.1f did not recover from %.1f", after, during)
	}
	// Detection: most during-launch intervals flagged at θ1.
	flagged := 0
	n := 0
	for _, v := range r.Verdicts[255:440] {
		n++
		if v.Anomalous[0.01] {
			flagged++
		}
	}
	if rate := float64(flagged) / float64(n); rate < 0.5 {
		t.Errorf("during-qsort detection rate %.3f at θ1", rate)
	}
	if !strings.Contains(r.String(), "Fig. 7") {
		t.Error("rendering incomplete")
	}
}

func TestFig8Shellcode(t *testing.T) {
	lab, det, _ := quickLab(t)
	r, err := lab.Fig8(det, 888)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Verdicts) != 400 {
		t.Fatalf("%d intervals, want 400", len(r.Verdicts))
	}
	pre := r.MeanDensity(50, 250)
	post := r.MeanDensity(260, 400)
	if post >= pre-2 {
		t.Errorf("post-shellcode mean density %.1f not clearly below pre %.1f", post, pre)
	}
	// The host is dead: the anomaly persists for the rest of the run. As
	// in the paper's Fig. 7 discussion, intervals whose schedule phase
	// the dead task never touched can look normal, so require that every
	// hyperperiod window (10 intervals) keeps raising flags rather than
	// a blanket rate.
	flagged := 0
	for _, v := range r.Verdicts[260:] {
		if v.Anomalous[0.01] {
			flagged++
		}
	}
	if rate := float64(flagged) / float64(len(r.Verdicts)-260); rate < 0.3 {
		t.Errorf("post-shellcode detection rate %.3f", rate)
	}
	for w := 260; w+10 <= len(r.Verdicts); w += 10 {
		inWindow := 0
		for _, v := range r.Verdicts[w : w+10] {
			if v.Anomalous[0.01] {
				inWindow++
			}
		}
		if inWindow < 2 {
			t.Errorf("window [%d,%d): only %d flagged; anomaly did not persist", w, w+10, inWindow)
		}
	}
}

func TestFig9RootkitVolume(t *testing.T) {
	lab, _, _ := quickLab(t)
	r, err := lab.Fig9(999)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Totals) != 400 {
		t.Fatalf("%d intervals", len(r.Totals))
	}
	// Load moment distinguishable; steady state is not (paper's point).
	if r.SpikeRatio < 1.3 {
		t.Errorf("spike ratio %.2f; insmod should be loud", r.SpikeRatio)
	}
	if r.SteadyRatio < 0.97 || r.SteadyRatio > 1.03 {
		t.Errorf("steady ratio %.4f; volume should look normal after the hijack", r.SteadyRatio)
	}
	if !r.Flags[r.LoadInterval] {
		t.Error("volume detector missed the load spike")
	}
	// Steady state: volume detector nearly silent.
	flagged := 0
	for i := r.LoadInterval + 5; i < len(r.Flags); i++ {
		if r.Flags[i] {
			flagged++
		}
	}
	if rate := float64(flagged) / float64(len(r.Flags)-r.LoadInterval-5); rate > 0.2 {
		t.Errorf("volume detector flagged %.3f of steady-state intervals; should be blind", rate)
	}
}

func TestFig10RootkitMHM(t *testing.T) {
	lab, det, _ := quickLab(t)
	r, err := lab.Fig10(det, 999)
	if err != nil {
		t.Fatal(err)
	}
	// The load interval itself must score very low.
	loadLP := r.Verdicts[r.EventInterval].LogDensity
	pre := r.MeanDensity(50, r.EventInterval)
	if loadLP >= pre-3 {
		t.Errorf("load interval density %.1f not far below pre %.1f", loadLP, pre)
	}
	// Post-load: the MHM detector flags more intervals than normal FP
	// would explain (the paper: "somewhat low ... though not always
	// statistically distinguishable").
	flagged := r.PostFlagged[0.01]
	if flagged < 2 {
		t.Errorf("post-load flagged %d intervals; hijack left no statistical trace", flagged)
	}
	hist := ShaPhaseHistogram(r, 0.01, 10)
	if len(hist) != 10 {
		t.Fatalf("histogram size %d", len(hist))
	}
}

func TestAnalysisTimeShape(t *testing.T) {
	lab, _, _ := quickLab(t)
	r, err := lab.AnalysisTime(9000, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	base, coarse, fewer := r.Rows[0], r.Rows[1], r.Rows[2]
	if base.L != 1472 || coarse.L != 368 {
		t.Errorf("L values = %d/%d, want 1472/368", base.L, coarse.L)
	}
	if base.LPrime != 9 || fewer.LPrime != 5 {
		t.Errorf("L' values = %d/%d, want 9/5", base.LPrime, fewer.LPrime)
	}
	// Shape: coarse granularity and fewer eigenmemories are both faster.
	// A 10% margin absorbs wall-clock measurement noise on a loaded
	// machine; the true ratios are ~0.25 and ~0.5.
	if coarse.MeanMicros >= 1.1*base.MeanMicros {
		t.Errorf("coarse %.2fµs not faster than base %.2fµs", coarse.MeanMicros, base.MeanMicros)
	}
	if fewer.MeanMicros >= 1.1*base.MeanMicros {
		t.Errorf("L'=5 %.2fµs not faster than base %.2fµs", fewer.MeanMicros, base.MeanMicros)
	}
	if !strings.Contains(r.String(), "358") {
		t.Error("paper reference numbers missing from table")
	}
}

func TestTaskset(t *testing.T) {
	lab, _, _ := quickLab(t)
	r, err := lab.Taskset(1_000_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Utilization < 0.779 || r.Utilization > 0.781 {
		t.Errorf("utilization = %g", r.Utilization)
	}
	if r.SimMisses != 0 {
		t.Errorf("simulated misses = %d", r.SimMisses)
	}
	for _, row := range r.Rows {
		if row.Released == 0 || row.Completed == 0 {
			t.Errorf("task %s: released %d completed %d", row.Name, row.Released, row.Completed)
		}
		if row.Category == "" {
			t.Errorf("task %s has no category", row.Name)
		}
	}
	if !strings.Contains(r.String(), "0.78") {
		t.Error("rendering incomplete")
	}
}
