package experiments

import (
	"strings"
	"testing"
)

// TestScoringThroughputShape checks the A10 experiment's structure:
// three modes over the same interval count, single as the 1x baseline,
// and a renderable table. Timing magnitudes are hardware-dependent and
// asserted only by the committed benchmark baseline, not here.
func TestScoringThroughputShape(t *testing.T) {
	lab, det, _ := quickLab(t)
	r, err := lab.ScoringThroughput(det, 5100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(r.Rows))
	}
	modes := []string{"single", "batch64", "sharded"}
	for i, row := range r.Rows {
		if row.Mode != modes[i] {
			t.Errorf("row %d mode %q, want %q", i, row.Mode, modes[i])
		}
		if row.Intervals <= 0 || row.PerMHMMicros <= 0 {
			t.Errorf("row %q: intervals %d, per-MHM %v", row.Mode, row.Intervals, row.PerMHMMicros)
		}
		if row.Speedup <= 0 {
			t.Errorf("row %q: speedup %v", row.Mode, row.Speedup)
		}
	}
	if r.Rows[0].Speedup != 1 {
		t.Errorf("single speedup %v, want 1", r.Rows[0].Speedup)
	}
	if r.Streams < 2 || r.Shards < 1 || r.Batch != 64 {
		t.Errorf("topology streams=%d shards=%d batch=%d", r.Streams, r.Shards, r.Batch)
	}
	out := r.String()
	for _, want := range []string{"A10", "single", "batch64", "sharded"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
