package experiments

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"strings"
	"time"

	"github.com/memheatmap/mhm/internal/core"
	"github.com/memheatmap/mhm/internal/fleet"
	"github.com/memheatmap/mhm/internal/refresh"
	"github.com/memheatmap/mhm/internal/stats"
)

// RefreshResult is experiment A14 (DESIGN.md §14): the cost and quality
// of one incremental model refresh against the full retrain it replaces,
// plus the zero-drop contract of the fleet refresh loop. The JSON form
// is the BENCH_refresh.json schema consumed by scripts/bench.sh.
type RefreshResult struct {
	// CPUs is runtime.NumCPU() on the producing machine. Latency ratios
	// are scheduling-independent (both sides run on the same machine),
	// but absolute times only compare at a known core count.
	CPUs    int   `json:"cpus"`
	Seed    int64 `json:"seed"`
	Window  int   `json:"window"`
	Holdout int   `json:"holdout"`
	Repeats int   `json:"repeats"`
	// RefreshMillis is the mean steady-state cost of one incremental
	// refresh (warm eigen + warm EM + θ recalibration) over the full
	// window; FullMillis is the mean cost of the from-scratch train the
	// refresh replaces, at the same window and model shape.
	RefreshMillis float64 `json:"refresh_ms"`
	FullMillis    float64 `json:"full_retrain_ms"`
	Speedup       float64 `json:"speedup"`
	// AUCRefreshed and AUCRetrained separate anomalous from clean
	// held-out intervals under each model; Gap is |refreshed−retrained|.
	AUCRefreshed float64 `json:"auc_refreshed"`
	AUCRetrained float64 `json:"auc_retrained"`
	AUCGap       float64 `json:"auc_gap"`
	// Loop contract, from a mini fleet run with the refresh loop
	// installed: every admitted interval must find a model (dropped == 0)
	// across every hot swap the loop schedules.
	SimRefreshes     int   `json:"sim_refreshes"`
	SimSwaps         int   `json:"sim_swaps"`
	SimModelVersion  int   `json:"sim_model_version"`
	DroppedIntervals int64 `json:"dropped_intervals"`
}

// String renders the report.
func (r *RefreshResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "A14 — incremental model refresh vs full retrain (window=%d, holdout=%d, seed=%d, %d cpus)\n",
		r.Window, r.Holdout, r.Seed, r.CPUs)
	fmt.Fprintf(&b, "  refresh      %8.2f ms/op  (mean of %d steady-state refreshes)\n", r.RefreshMillis, r.Repeats)
	fmt.Fprintf(&b, "  full retrain %8.2f ms/op\n", r.FullMillis)
	fmt.Fprintf(&b, "  speedup      %8.1fx\n", r.Speedup)
	fmt.Fprintf(&b, "  AUC refreshed %.4f  retrained %.4f  gap %.4f\n",
		r.AUCRefreshed, r.AUCRetrained, r.AUCGap)
	fmt.Fprintf(&b, "  fleet loop: %d refreshes, %d swaps, model v%d, %d dropped intervals\n",
		r.SimRefreshes, r.SimSwaps, r.SimModelVersion, r.DroppedIntervals)
	return b.String()
}

// WriteJSON writes the BENCH_refresh.json schema.
func (r *RefreshResult) WriteJSON(w io.Writer) error {
	_, err := fmt.Fprintf(w, `{
  "cpus": %d,
  "seed": %d,
  "window": %d,
  "holdout": %d,
  "repeats": %d,
  "refresh_ms": %.4f,
  "full_retrain_ms": %.4f,
  "speedup": %.2f,
  "auc_refreshed": %.4f,
  "auc_retrained": %.4f,
  "auc_gap": %.4f,
  "sim_refreshes": %d,
  "sim_swaps": %d,
  "sim_model_version": %d,
  "dropped_intervals": %d
}
`, r.CPUs, r.Seed, r.Window, r.Holdout, r.Repeats,
		r.RefreshMillis, r.FullMillis, r.Speedup,
		r.AUCRefreshed, r.AUCRetrained, r.AUCGap,
		r.SimRefreshes, r.SimSwaps, r.SimModelVersion, r.DroppedIntervals)
	return err
}

// RefreshUpkeep measures experiment A14 on the fleet workload at the
// fleet benchmark model shape (window 192, holdout 64). The refresh side
// is timed in steady state — window full, probe engine warm — because
// that is the regime the fleet loop runs in; repeats averages both
// sides. Detection quality is compared on a shared held-out eval set of
// clean and anomalous intervals neither model trained on.
func RefreshUpkeep(seed int64, repeats int) (*RefreshResult, error) {
	if repeats <= 0 {
		repeats = 10
	}
	const window, holdout, trainN, calibN = 192, 64, 192, 64
	wl, err := fleet.NewWorkload(seed, fleet.SimRegion)
	if err != nil {
		return nil, err
	}
	det, err := wl.TrainDetector(trainN, calibN)
	if err != nil {
		return nil, err
	}

	res := &RefreshResult{
		CPUs: runtime.NumCPU(), Seed: seed,
		Window: window, Holdout: holdout, Repeats: repeats,
	}

	// Fill the refresher's windows from fresh clean intervals the base
	// model never trained on, then warm up past the first-refresh
	// transient (scratch engines allocate once).
	r, err := refresh.New(det, refresh.Config{Window: window, Holdout: holdout, HoldoutEvery: 4})
	if err != nil {
		return nil, err
	}
	v := make([]float64, fleet.SimRegion.Cells())
	for i := 0; i < window+holdout+window/2; i++ {
		wl.VectorInto(v, i%8, trainN+calibN+i, false)
		d, err := det.LogDensityVector(v)
		if err != nil {
			return nil, err
		}
		if err := r.Observe(v, d); err != nil {
			return nil, err
		}
	}
	var refreshed *refresh.Result
	for warm := 0; warm < 3; warm++ {
		if refreshed, err = r.Refresh(); err != nil {
			return nil, err
		}
	}
	start := time.Now()
	for i := 0; i < repeats; i++ {
		if refreshed, err = r.Refresh(); err != nil {
			return nil, err
		}
	}
	res.RefreshMillis = float64(time.Since(start).Nanoseconds()) / 1e6 / float64(repeats)

	// The slow path it replaces: a from-scratch train at the same window
	// size and model shape (PCA restart, GMM restarts, θ calibration).
	var retrained *core.Detector
	start = time.Now()
	for i := 0; i < repeats; i++ {
		if retrained, err = wl.TrainDetector(trainN, calibN); err != nil {
			return nil, err
		}
	}
	res.FullMillis = float64(time.Since(start).Nanoseconds()) / 1e6 / float64(repeats)
	if res.RefreshMillis > 0 {
		res.Speedup = res.FullMillis / res.RefreshMillis
	}

	// Detection quality on a shared held-out eval set (intervals far past
	// anything either model saw): anomaly score is −log density.
	const evalStreams, evalIv = 16, 24
	var negR, posR, negF, posF []float64
	for s := 0; s < evalStreams; s++ {
		for i := 0; i < evalIv; i++ {
			for _, anom := range []bool{false, true} {
				wl.VectorInto(v, s, 10_000+i, anom)
				dr, err := refreshed.Detector.LogDensityVector(v)
				if err != nil {
					return nil, err
				}
				df, err := retrained.LogDensityVector(v)
				if err != nil {
					return nil, err
				}
				if anom {
					posR, posF = append(posR, -dr), append(posF, -df)
				} else {
					negR, negF = append(negR, -dr), append(negF, -df)
				}
			}
		}
	}
	if res.AUCRefreshed, err = stats.AUC(negR, posR); err != nil {
		return nil, err
	}
	if res.AUCRetrained, err = stats.AUC(negF, posF); err != nil {
		return nil, err
	}
	res.AUCGap = math.Abs(res.AUCRefreshed - res.AUCRetrained)

	// Zero-drop contract: a mini fleet run with the loop installed, every
	// stream crossing several refresh-scheduled hot swaps.
	sim, err := fleet.NewSim(fleet.SimConfig{
		Streams: 8, Seed: seed, HorizonMicros: 600_000,
	})
	if err != nil {
		return nil, err
	}
	loop, err := refresh.NewLoop(sim.Detector(), sim.Registry(), refresh.LoopConfig{
		Every:     60,
		Refresher: refresh.Config{Window: 64, Holdout: 24, HoldoutEvery: 4},
	})
	if err != nil {
		return nil, err
	}
	sim.SetMaintainer(loop)
	simRes, err := sim.Run()
	if err != nil {
		return nil, err
	}
	if err := loop.Err(); err != nil {
		return nil, fmt.Errorf("experiments: refresh loop: %w", err)
	}
	st := loop.Stats()
	res.SimRefreshes = st.Refreshes
	res.SimSwaps = st.SwapsScheduled
	res.SimModelVersion = st.Version
	res.DroppedIntervals = simRes.DroppedIntervals
	return res, nil
}
