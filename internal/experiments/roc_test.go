package experiments

import (
	"strings"
	"testing"
)

func TestROCSweep(t *testing.T) {
	lab, det, _ := quickLab(t)
	r, err := lab.ROC(det, 8000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 8 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for i, pt := range r.Points {
		if pt.FPR < 0 || pt.FPR > 1 || pt.TPR < 0 || pt.TPR > 1 {
			t.Errorf("point %d out of range: %+v", i, pt)
		}
		if i > 0 {
			prev := r.Points[i-1]
			// Thresholds and rates are monotone in p.
			if pt.Theta < prev.Theta-1e-9 {
				t.Errorf("θ not monotone at p=%g", pt.P)
			}
			if pt.FPR < prev.FPR-1e-9 || pt.TPR < prev.TPR-1e-9 {
				t.Errorf("rates not monotone at p=%g", pt.P)
			}
		}
	}
	// The detector must beat chance decisively somewhere on the curve:
	// at the largest p, TPR far above FPR.
	last := r.Points[len(r.Points)-1]
	if last.TPR < last.FPR+0.3 {
		t.Errorf("weak operating point: TPR %.3f vs FPR %.3f", last.TPR, last.FPR)
	}
	if !strings.Contains(r.String(), "A8") {
		t.Error("rendering incomplete")
	}
}

func TestAutoJ(t *testing.T) {
	lab, _, _ := quickLab(t)
	r, err := lab.AutoJ(9100, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if r.SelectedJ < 1 || r.SelectedJ > 6 {
		t.Errorf("selected J=%d", r.SelectedJ)
	}
	if len(r.Sweep) == 0 {
		t.Fatal("empty sweep")
	}
	// BIC of the selected J is the sweep minimum.
	best := r.Sweep[0].BIC
	for _, s := range r.Sweep {
		if s.BIC < best {
			best = s.BIC
		}
	}
	for _, s := range r.Sweep {
		if s.J == r.SelectedJ && s.BIC != best {
			t.Errorf("selected J=%d BIC %.1f != minimum %.1f", s.J, s.BIC, best)
		}
	}
	if !strings.Contains(r.String(), "A9") {
		t.Error("rendering incomplete")
	}
}

func TestFigurePlots(t *testing.T) {
	lab, det, _ := quickLab(t)
	r, err := lab.Fig7(det, 777)
	if err != nil {
		t.Fatal(err)
	}
	chart, err := r.Plot(70, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chart, "event at x=250") || !strings.Contains(chart, "exit at x=440") {
		t.Errorf("Fig7 plot missing marks:\n%s", chart)
	}
	if !strings.Contains(chart, "θ1") {
		t.Errorf("Fig7 plot missing threshold:\n%s", chart)
	}
	f9, err := lab.Fig9(999)
	if err != nil {
		t.Fatal(err)
	}
	chart9, err := f9.Plot(70, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chart9, "insmod at x=150") {
		t.Errorf("Fig9 plot missing mark:\n%s", chart9)
	}
}

func TestGeneralize(t *testing.T) {
	lab, _, _ := quickLab(t)
	r, err := lab.Generalize(9500)
	if err != nil {
		t.Fatal(err)
	}
	if r.Utilization < 0.69 || r.Utilization > 0.71 {
		t.Errorf("utilization = %g", r.Utilization)
	}
	if r.TrainMHMs != 300 {
		t.Errorf("train MHMs = %d", r.TrainMHMs)
	}
	if r.FPRate > 0.15 {
		t.Errorf("alternate-workload FP %.3f", r.FPRate)
	}
	if r.DetectRate < 0.3 {
		t.Errorf("alternate-workload detect rate %.3f", r.DetectRate)
	}
	if !strings.Contains(r.String(), "A10") {
		t.Error("rendering incomplete")
	}
}

func TestMultiRegion(t *testing.T) {
	lab, det, _ := quickLab(t)
	r, err := lab.MultiRegion(det, 999)
	if err != nil {
		t.Fatal(err)
	}
	if r.ModulePreAccesses != 0 {
		t.Errorf("module area touched before the load: %d accesses", r.ModulePreAccesses)
	}
	// The paper's limitation (iv): the .text view is intermittent...
	if r.TextPostRate <= 0.05 || r.TextPostRate >= 0.9 {
		t.Errorf(".text post-load rate %.3f; expected intermittent detection", r.TextPostRate)
	}
	// ...the module watch is near-continuous (the hook runs on every
	// read, and reads happen in almost every interval).
	if r.ModulePostRate < 0.9 {
		t.Errorf("module-watch rate %.3f; hook execution should be visible almost every interval", r.ModulePostRate)
	}
	if r.ModulePostRate <= r.TextPostRate {
		t.Errorf("module watch %.3f not above .text view %.3f", r.ModulePostRate, r.TextPostRate)
	}
	if !strings.Contains(r.String(), "A11") {
		t.Error("rendering incomplete")
	}
}
