package experiments

import (
	"fmt"
	"strings"

	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/pca"
)

// Fig6Result reproduces Fig. 6: the dimensionality reduction of one MHM
// onto 16 eigenmemories — the weight vector that *is* the reduced MHM.
type Fig6Result struct {
	// L and LPrime are the original and reduced dimensionalities
	// (paper: 1,472 → 16 in the example).
	L, LPrime int
	// Weights is the reduced MHM M'_n = uᵀΦ_n of the example sample.
	Weights []float64
	// EigenvalueShare is each eigenmemory's share of the total variance.
	EigenvalueShare []float64
	// ReconRMS is the RMS error of reconstructing the example from the
	// 16 weights.
	ReconRMS float64
}

// String renders the weight table.
func (r Fig6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 6 — dimensionality reduction example (L=%d → L'=%d)\n", r.L, r.LPrime)
	b.WriteString("  j   weight w_n,j   eigenvalue share\n")
	for j, w := range r.Weights {
		fmt.Fprintf(&b, "  %2d  %12.2f  %16.5f\n", j+1, w, r.EigenvalueShare[j])
	}
	fmt.Fprintf(&b, "  reconstruction RMS error: %.2f accesses/cell\n", r.ReconRMS)
	return b.String()
}

// Fig6 trains a 16-eigenmemory basis on normal MHMs and reduces one
// fresh sample, as in the paper's worked example.
func (l *Lab) Fig6(seedBase int64) (*Fig6Result, error) {
	const lprime = 16
	var trainMaps []*heatmap.HeatMap
	for run := 0; run < l.Scale.TrainRuns; run++ {
		maps, err := l.CollectNormal(seedBase+int64(run), l.Scale.TrainRunMicros)
		if err != nil {
			return nil, err
		}
		trainMaps = append(trainMaps, maps...)
	}
	var train [][]float64
	if len(trainMaps) > 0 {
		var err error
		train, err = heatmap.PackVectors(trainMaps)
		if err != nil {
			return nil, err
		}
	}
	if len(train) <= lprime {
		return nil, fmt.Errorf("experiments: fig6: %d samples for %d eigenmemories: %w",
			len(train), lprime, ErrExperiment)
	}
	model, err := pca.Train(train, pca.Options{Components: lprime})
	if err != nil {
		return nil, err
	}
	fresh, err := l.CollectNormal(seedBase+1000, 20*l.Scale.IntervalMicros)
	if err != nil {
		return nil, err
	}
	if len(fresh) == 0 {
		return nil, fmt.Errorf("experiments: fig6: no fresh sample: %w", ErrExperiment)
	}
	example := fresh[len(fresh)-1].Vector()
	weights, err := model.Project(example)
	if err != nil {
		return nil, err
	}
	recon, err := model.ReconstructionError(example)
	if err != nil {
		return nil, err
	}
	shares := make([]float64, lprime)
	for j, v := range model.Values {
		if model.TotalVariance > 0 {
			shares[j] = v / model.TotalVariance
		}
	}
	lDim, _ := model.Dim()
	return &Fig6Result{
		L:               lDim,
		LPrime:          lprime,
		Weights:         weights,
		EigenvalueShare: shares,
		ReconRMS:        recon,
	}, nil
}
