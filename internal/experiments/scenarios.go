package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"

	"github.com/memheatmap/mhm/internal/attack"
	"github.com/memheatmap/mhm/internal/core"
	"github.com/memheatmap/mhm/internal/ensemble"
	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/stats"
	"github.com/memheatmap/mhm/internal/syscalls"
)

// MatrixConfig parameterizes the scenario × detector matrix.
type MatrixConfig struct {
	// EventIv is the monitoring interval at which every scenario's event
	// fires; HorizonIv the run length in intervals.
	EventIv, HorizonIv int
	// P is the calibration quantile used for flags and latency.
	P float64
	// Window is the syscall channel's smoothing window in intervals
	// (the paper task set's hyperperiod is 10 intervals at δt = 10 ms).
	Window int
	// Weights are the ensemble's weighted-sum (MHM, syscall) weights.
	Weights [2]float64
}

// DefaultMatrixConfig mirrors the alarm experiment's geometry: event at
// interval 100 of a 250-interval run, flags at θ_0.01.
func DefaultMatrixConfig() MatrixConfig {
	return MatrixConfig{EventIv: 100, HorizonIv: 250, P: 0.01, Window: 10, Weights: [2]float64{0.5, 0.5}}
}

// QuickMatrixConfig shrinks the geometry for smoke tests while keeping
// enough pre-event intervals to calibrate against.
func QuickMatrixConfig() MatrixConfig {
	return MatrixConfig{EventIv: 40, HorizonIv: 100, P: 0.01, Window: 10, Weights: [2]float64{0.5, 0.5}}
}

// ScenarioCell is one (scenario, detector) cell of the matrix.
type ScenarioCell struct {
	// Scenario and Kind come from the attack catalog; Detector is "mhm",
	// "syscall", "ensemble-max" or "ensemble-wsum".
	Scenario string `json:"scenario"`
	Kind     string `json:"kind"`
	Stealthy bool   `json:"stealthy,omitempty"`
	Detector string `json:"detector"`
	// AUC separates post-event from pre-event intervals (0.5 = chance).
	AUC float64 `json:"auc"`
	// LatencyIv is the gap in intervals between the event and the first
	// flagged post-event interval at θ_p; -1 means never flagged.
	LatencyIv int `json:"latency_iv"`
	// PreFlagRate is the flag rate on pre-event (clean) intervals — the
	// observed false-positive rate. PostFlagRate is the flag rate on
	// post-event intervals: the detection rate for attacks, and the
	// false-positive rate under change for workload-change scenarios.
	PreFlagRate  float64 `json:"pre_flag_rate"`
	PostFlagRate float64 `json:"post_flag_rate"`
}

// ScenarioMatrix is the full per-scenario ROC/latency/false-positive
// report across all catalogued scenarios and all detectors.
type ScenarioMatrix struct {
	Config MatrixConfig `json:"config"`
	// CPUs is runtime.NumCPU() on the machine that produced the matrix:
	// detection numbers are machine-independent, but wall-time comparisons
	// against this baseline are only meaningful at a known core count.
	CPUs      int            `json:"cpus"`
	Detectors []string       `json:"detectors"`
	Cells     []ScenarioCell `json:"cells"`
}

// matrixDetectors lists the matrix's detector columns in report order.
var matrixDetectors = []string{"mhm", "syscall", ensemble.Max.String(), ensemble.WeightedSum.String()}

// syscallVocab is the frequency channel's fixed vocabulary: the clean
// image's .text service catalog plus the scheduler's own kernel
// entries. Everything else — e.g. module-space rootkit hooks, which
// scenarios register on the shared image at Install time — lands in
// "other".
func (l *Lab) syscallVocab() []string {
	return append(l.Img.BaseServiceNames(), "sched_tick", "context_switch")
}

// CollectObserved runs a (possibly nil) scenario with a syscall
// recorder attached alongside the MHM monitor and returns both
// channels' per-interval observations. The recorder only listens: the
// heat maps are bit-identical to an unobserved run at the same seed.
func (l *Lab) CollectObserved(sc attack.Scenario, noiseSeed, micros int64) ([]*heatmap.HeatMap, []syscalls.Sample, error) {
	rec, err := syscalls.NewRecorder(l.syscallVocab(), l.Scale.IntervalMicros)
	if err != nil {
		return nil, nil, err
	}
	cfg := l.sessionConfig(noiseSeed)
	cfg.ExtraListeners = append(cfg.ExtraListeners, rec)
	s, err := attack.BuildScenarioSession(l.Img, sc, cfg)
	if err != nil {
		return nil, nil, err
	}
	maps, err := s.Run(micros)
	if err != nil {
		return nil, nil, err
	}
	return maps, rec.Finish(micros), nil
}

// ensembleKit bundles the matrix's trained detectors: the MHM core
// detector, the syscall-frequency detector and the calibrated fuser.
type ensembleKit struct {
	det     *core.Detector
	sys     *syscalls.Detector
	fuser   *ensemble.Fuser
	window  int
	p       float64
	thMHM   float64
	thSys   float64
	thMax   float64
	thWSum  float64
	vocab   []string
	weights [2]float64
}

// trainEnsemble runs the two-channel training procedure: TrainRuns
// observed clean captures fit both channels, one held-out capture
// calibrates every θ_p and the fuser's clean z distributions.
func (l *Lab) trainEnsemble(seedBase int64, cfg MatrixConfig) (*ensembleKit, error) {
	var (
		trainMaps []*heatmap.HeatMap
		trainSys  []syscalls.Sample
		names     []string
	)
	for run := 0; run < l.Scale.TrainRuns; run++ {
		maps, samples, err := l.CollectObserved(nil, seedBase+int64(run), l.Scale.TrainRunMicros)
		if err != nil {
			return nil, fmt.Errorf("experiments: observed training run %d: %w", run, err)
		}
		// Smooth per run so windows never straddle run boundaries.
		smoothed, err := syscalls.Smooth(samples, cfg.Window)
		if err != nil {
			return nil, err
		}
		trainMaps = append(trainMaps, maps...)
		trainSys = append(trainSys, smoothed...)
	}
	calibMaps, calibRaw, err := l.CollectObserved(nil, seedBase+int64(l.Scale.TrainRuns), l.Scale.CalibRunMicros)
	if err != nil {
		return nil, fmt.Errorf("experiments: observed calibration run: %w", err)
	}
	calibSys, err := syscalls.Smooth(calibRaw, cfg.Window)
	if err != nil {
		return nil, err
	}
	{
		rec, err := syscalls.NewRecorder(l.syscallVocab(), l.Scale.IntervalMicros)
		if err != nil {
			return nil, err
		}
		names = rec.Names()
	}

	det, err := core.Train(trainMaps, calibMaps, core.Config{
		PCA:       l.Scale.PCAOptions,
		GMM:       l.Scale.GMMOptions,
		Quantiles: []float64{cfg.P},
	})
	if err != nil {
		return nil, err
	}
	sys, err := syscalls.Train(names, trainSys, calibSys, []float64{cfg.P})
	if err != nil {
		return nil, err
	}

	calibDens, err := batchDensities(det, calibMaps)
	if err != nil {
		return nil, err
	}
	calibScores, err := sys.ScoreSeries(calibSys)
	if err != nil {
		return nil, err
	}
	// The fuser's MHM channel consumes hyperperiod-smoothed densities:
	// averaging over one cfg.Window shrinks the clean variance so small
	// persistent displacements survive standardization. The syscall
	// channel is already windowed by syscalls.Smooth. Calibrate also
	// fits each combiner's CUSUM drift channel and places θ_p on the
	// drift-augmented statistic, which integrates sub-threshold
	// persistent evidence (mimicry, slow drift) over time. The
	// standalone detector rows keep their own definitions (per-interval
	// MHM as in the paper; one-hyperperiod syscall window).
	fuser, err := ensemble.Calibrate(
		smoothSeries(calibDens, cfg.Window),
		calibScores,
		[]float64{cfg.P})
	if err != nil {
		return nil, err
	}
	fuser.Weights = cfg.Weights

	kit := &ensembleKit{
		det: det, sys: sys, fuser: fuser,
		window: cfg.Window, p: cfg.P, vocab: names, weights: cfg.Weights,
	}
	if kit.thMHM, err = det.Threshold(cfg.P); err != nil {
		return nil, err
	}
	if kit.thSys, err = sys.Threshold(cfg.P); err != nil {
		return nil, err
	}
	if kit.thMax, err = fuser.Threshold(ensemble.Max, cfg.P); err != nil {
		return nil, err
	}
	if kit.thWSum, err = fuser.Threshold(ensemble.WeightedSum, cfg.P); err != nil {
		return nil, err
	}
	return kit, nil
}

// smoothSeries is the scalar analogue of syscalls.Smooth: element i
// averages xs[max(0,i-window+1) .. i].
func smoothSeries(xs []float64, window int) []float64 {
	if window <= 1 {
		return xs
	}
	out := make([]float64, len(xs))
	acc := 0.0
	for i, x := range xs {
		acc += x
		n := window
		if i >= window {
			acc -= xs[i-window]
		} else {
			n = i + 1
		}
		out[i] = acc / float64(n)
	}
	return out
}

// channelSeries holds one run's per-interval scores on every detector,
// oriented so that HIGHER means more anomalous (raw log-density-like
// channels are negated), plus the matching flag series at θ_p.
type channelSeries struct {
	anomaly map[string][]float64
	flags   map[string][]bool
}

// score runs all four detectors over one observed capture.
func (k *ensembleKit) score(maps []*heatmap.HeatMap, samples []syscalls.Sample) (*channelSeries, error) {
	if len(maps) != len(samples) {
		return nil, fmt.Errorf("experiments: %d maps vs %d syscall samples: %w", len(maps), len(samples), ErrExperiment)
	}
	smoothed, err := syscalls.Smooth(samples, k.window)
	if err != nil {
		return nil, err
	}
	dens, err := batchDensities(k.det, maps)
	if err != nil {
		return nil, err
	}
	sysScores, err := k.sys.ScoreSeries(smoothed)
	if err != nil {
		return nil, err
	}
	densSm := smoothSeries(dens, k.window)
	fusedMax, err := k.fuser.FuseSeriesDrift(ensemble.Max, densSm, sysScores)
	if err != nil {
		return nil, err
	}
	fusedWSum, err := k.fuser.FuseSeriesDrift(ensemble.WeightedSum, densSm, sysScores)
	if err != nil {
		return nil, err
	}
	n := len(maps)
	out := &channelSeries{anomaly: map[string][]float64{}, flags: map[string][]bool{}}
	neg := func(xs []float64) []float64 {
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = -x
		}
		return ys
	}
	out.anomaly["mhm"] = neg(dens)
	out.anomaly["syscall"] = neg(sysScores)
	out.anomaly[ensemble.Max.String()] = fusedMax
	out.anomaly[ensemble.WeightedSum.String()] = fusedWSum
	flag := func(below []float64, theta float64) []bool {
		fs := make([]bool, n)
		for i, s := range below {
			fs[i] = s < theta
		}
		return fs
	}
	out.flags["mhm"] = flag(dens, k.thMHM)
	out.flags["syscall"] = flag(sysScores, k.thSys)
	above := func(fused []float64, theta float64) []bool {
		fs := make([]bool, n)
		for i, s := range fused {
			fs[i] = s > theta
		}
		return fs
	}
	out.flags[ensemble.Max.String()] = above(fusedMax, k.thMax)
	out.flags[ensemble.WeightedSum.String()] = above(fusedWSum, k.thWSum)
	return out, nil
}

// cellsFor turns one scenario run's series into the matrix rows.
func cellsFor(e attack.Entry, s *channelSeries, cfg MatrixConfig) ([]ScenarioCell, error) {
	var cells []ScenarioCell
	for _, name := range matrixDetectors {
		an := s.anomaly[name]
		if len(an) < cfg.HorizonIv {
			return nil, fmt.Errorf("experiments: %s/%s: %d intervals, want %d: %w",
				e.Name, name, len(an), cfg.HorizonIv, ErrExperiment)
		}
		pre, post := an[:cfg.EventIv], an[cfg.EventIv:cfg.HorizonIv]
		auc, err := stats.AUC(pre, post)
		if err != nil {
			return nil, err
		}
		fl := s.flags[name]
		latency := -1
		preFlags, postFlags := 0, 0
		for i := 0; i < cfg.EventIv; i++ {
			if fl[i] {
				preFlags++
			}
		}
		for i := cfg.EventIv; i < cfg.HorizonIv; i++ {
			if fl[i] {
				postFlags++
				if latency < 0 {
					latency = i - cfg.EventIv
				}
			}
		}
		cells = append(cells, ScenarioCell{
			Scenario:     e.Name,
			Kind:         e.Kind,
			Stealthy:     e.Stealthy,
			Detector:     name,
			AUC:          auc,
			LatencyIv:    latency,
			PreFlagRate:  float64(preFlags) / float64(cfg.EventIv),
			PostFlagRate: float64(postFlags) / float64(cfg.HorizonIv-cfg.EventIv),
		})
	}
	return cells, nil
}

// Scenarios runs the full matrix: every catalogued scenario (plus the
// benign workload-change entries) scored by every detector. Each
// scenario's event fires at cfg.EventIv; AUC separates its post-event
// intervals from its own pre-event (bit-identical-to-clean) prefix.
func (l *Lab) Scenarios(seedBase int64, cfg MatrixConfig) (*ScenarioMatrix, error) {
	if cfg.EventIv <= 0 || cfg.HorizonIv <= cfg.EventIv {
		return nil, fmt.Errorf("experiments: matrix geometry event=%d horizon=%d: %w",
			cfg.EventIv, cfg.HorizonIv, ErrExperiment)
	}
	kit, err := l.trainEnsemble(seedBase, cfg)
	if err != nil {
		return nil, err
	}
	iv := l.Scale.IntervalMicros
	eventAt := int64(cfg.EventIv)*iv + iv/2
	horizon := int64(cfg.HorizonIv) * iv
	matrix := &ScenarioMatrix{Config: cfg, CPUs: runtime.NumCPU(), Detectors: append([]string(nil), matrixDetectors...)}
	for i, e := range attack.Catalog() {
		sc := e.Build(eventAt)
		maps, samples, err := l.CollectObserved(sc, seedBase+int64(l.Scale.TrainRuns)+10+int64(i), horizon)
		if err != nil {
			return nil, fmt.Errorf("experiments: scenario %s: %w", e.Name, err)
		}
		series, err := kit.score(maps, samples)
		if err != nil {
			return nil, fmt.Errorf("experiments: scenario %s: %w", e.Name, err)
		}
		cells, err := cellsFor(e, series, cfg)
		if err != nil {
			return nil, err
		}
		matrix.Cells = append(matrix.Cells, cells...)
	}
	return matrix, nil
}

// Cell returns the (scenario, detector) cell.
func (m *ScenarioMatrix) Cell(scenario, detector string) (ScenarioCell, error) {
	for _, c := range m.Cells {
		if c.Scenario == scenario && c.Detector == detector {
			return c, nil
		}
	}
	return ScenarioCell{}, fmt.Errorf("experiments: no cell (%s, %s): %w", scenario, detector, ErrExperiment)
}

// String renders the matrix grouped by scenario.
func (m *ScenarioMatrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario × detector matrix (event at interval %d of %d, flags at θ_%g, window %d)\n",
		m.Config.EventIv, m.Config.HorizonIv, m.Config.P, m.Config.Window)
	b.WriteString("  scenario           kind             detector        AUC    latency   preFP   postFlag\n")
	last := ""
	for _, c := range m.Cells {
		name := c.Scenario
		if c.Stealthy {
			name += "*"
		}
		if name == last {
			name = ""
		} else {
			last = name
		}
		lat := "never"
		if c.LatencyIv >= 0 {
			lat = fmt.Sprintf("%3d iv", c.LatencyIv)
		}
		fmt.Fprintf(&b, "  %-18s %-16s %-13s %6.3f  %7s  %6.3f  %7.3f\n",
			name, c.Kind, c.Detector, c.AUC, lat, c.PreFlagRate, c.PostFlagRate)
	}
	b.WriteString("  (* = engineered against the per-interval MHM threshold; postFlag is the detection\n")
	b.WriteString("   rate for attacks and the false-positive rate under change for workload-change rows)\n")
	return b.String()
}

// WriteJSON emits the matrix in the BENCH_scenarios.json schema.
func (m *ScenarioMatrix) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
