package experiments

import (
	"fmt"

	"github.com/memheatmap/mhm/internal/attack"
	"github.com/memheatmap/mhm/internal/core"
	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/kernelmap"
	"github.com/memheatmap/mhm/internal/securecore"
	"github.com/memheatmap/mhm/internal/workload"
)

// MultiRegionResult is extension experiment A11: lifting the paper's
// limitation (iv) by monitoring the module area next to kernel .text.
// The rootkit's hooked handler executes in module space on every read:
// invisible to the .text detector's steady state (Fig. 10's intermittent
// dips), but a module-region watch sees it continuously.
type MultiRegionResult struct {
	LoadInterval int
	// TextPostRate is the .text MHM detector's post-load flag rate at θ1
	// (the paper's view).
	TextPostRate float64
	// ModulePreAccesses counts module-area accesses before the load
	// (must be 0 — nothing legitimate executes there).
	ModulePreAccesses uint64
	// ModulePostRate is the fraction of post-load intervals with any
	// module-area execution — the region watch's detection rate.
	ModulePostRate float64
}

// String renders the comparison.
func (r MultiRegionResult) String() string {
	return fmt.Sprintf("A11 — multi-region monitoring (.text + module area), rootkit at interval %d\n"+
		"  .text detector post-load flag rate @θ1: %.3f (intermittent, Fig. 10)\n"+
		"  module-area accesses before load:       %d (region is quiet)\n"+
		"  module-watch post-load detection rate:  %.3f (the hook executes there on every read)\n",
		r.LoadInterval, r.TextPostRate, r.ModulePreAccesses, r.ModulePostRate)
}

// MultiRegion runs the rootkit scenario with two Memometers — the
// paper's .text region and the module area — and scores both views.
func (l *Lab) MultiRegion(det *core.Detector, noiseSeed int64) (*MultiRegionResult, error) {
	iv := l.Scale.IntervalMicros
	loadInterval := 150
	sc := &attack.RootkitLKM{LoadAt: int64(loadInterval)*iv + iv/2}

	tasks, err := workload.PaperTaskSet(l.Img)
	if err != nil {
		return nil, err
	}
	if err := sc.Transform(tasks); err != nil {
		return nil, err
	}
	regions := []heatmap.Def{
		{AddrBase: l.Img.Base, Size: l.Img.Size, Gran: l.Scale.Gran},
		{AddrBase: kernelmap.ModuleBase, Size: kernelmap.ModuleSize, Gran: l.Scale.Gran},
	}
	s, err := securecore.NewMultiSession(l.Img, tasks, l.sessionConfig(noiseSeed), regions)
	if err != nil {
		return nil, err
	}
	if err := sc.Install(s.Scheduler, s.Image); err != nil {
		return nil, err
	}
	maps, err := s.Run(400 * iv)
	if err != nil {
		return nil, err
	}
	textMaps, moduleMaps := maps[0], maps[1]

	verdicts, err := det.ClassifySeries(textMaps)
	if err != nil {
		return nil, err
	}
	res := &MultiRegionResult{LoadInterval: loadInterval}
	flagged, n := 0, 0
	for _, v := range verdicts {
		if v.Index <= loadInterval {
			continue
		}
		n++
		if v.Anomalous[0.01] {
			flagged++
		}
	}
	res.TextPostRate = float64(flagged) / float64(max(1, n))

	hot, postN := 0, 0
	for i, m := range moduleMaps {
		if i <= loadInterval {
			res.ModulePreAccesses += m.Total()
			continue
		}
		postN++
		if m.Total() > 0 {
			hot++
		}
	}
	res.ModulePostRate = float64(hot) / float64(max(1, postN))
	return res, nil
}
