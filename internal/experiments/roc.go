package experiments

import (
	"fmt"
	"strings"

	"github.com/memheatmap/mhm/internal/attack"
	"github.com/memheatmap/mhm/internal/core"
	"github.com/memheatmap/mhm/internal/gmm"
	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/stats"
	"github.com/memheatmap/mhm/internal/workload"
)

// ROCPoint is one operating point of the detector.
type ROCPoint struct {
	// P is the calibration quantile; Theta the resulting threshold.
	P     float64
	Theta float64
	// FPR is the flag rate on held-out normal intervals; TPR the flag
	// rate on post-event attack intervals.
	FPR, TPR float64
}

// ROCResult sweeps the θ_p threshold to characterize the detection
// operating curve on the qsort-launch scenario — evaluation breadth the
// paper's fixed θ0.5/θ1 snapshots only sample.
type ROCResult struct {
	Scenario string
	Points   []ROCPoint
}

// String renders the curve.
func (r ROCResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "A8 — ROC sweep over θ_p (%s)\n", r.Scenario)
	b.WriteString("  p(%)     θ          FPR      TPR\n")
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "  %6.2f  %9.2f  %6.4f  %6.4f\n", pt.P*100, pt.Theta, pt.FPR, pt.TPR)
	}
	return b.String()
}

// ROC computes the curve: thresholds are the p-quantiles of calibration
// densities; each is evaluated on fresh normal data (FPR) and on the
// post-launch portion of an app-addition run (TPR).
func (l *Lab) ROC(det *core.Detector, seedBase int64, ps []float64) (*ROCResult, error) {
	if len(ps) == 0 {
		ps = []float64{0.001, 0.0025, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2}
	}
	calib, err := l.CollectNormal(seedBase+1, l.Scale.CalibRunMicros)
	if err != nil {
		return nil, err
	}
	calibDens, err := batchDensities(det, calib)
	if err != nil {
		return nil, err
	}
	normal, err := l.CollectNormal(seedBase+2, l.Scale.CalibRunMicros)
	if err != nil {
		return nil, err
	}
	normDens, err := batchDensities(det, normal)
	if err != nil {
		return nil, err
	}
	iv := l.Scale.IntervalMicros
	launchIv := 100
	sc := &attack.AppAddition{Spec: workload.QsortSpec(), LaunchAt: int64(launchIv)*iv + iv/2}
	attacked, err := l.RunScenario(sc, seedBase+3, 250*iv)
	if err != nil {
		return nil, err
	}
	var postLaunch []*heatmap.HeatMap
	for i, m := range attacked {
		if i > launchIv {
			postLaunch = append(postLaunch, m)
		}
	}
	attackDens, err := batchDensities(det, postLaunch)
	if err != nil {
		return nil, err
	}

	res := &ROCResult{Scenario: sc.Name()}
	for _, p := range ps {
		theta, err := stats.Quantile(calibDens, p)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, ROCPoint{
			P:     p,
			Theta: theta,
			FPR:   flagRateBelow(normDens, theta),
			TPR:   flagRateBelow(attackDens, theta),
		})
	}
	return res, nil
}

// batchDensities scores a capture in one pass through the detector's
// batched engine; element i matches det.LogDensity(maps[i]) bit for bit.
func batchDensities(det *core.Detector, maps []*heatmap.HeatMap) ([]float64, error) {
	if len(maps) == 0 {
		return nil, nil
	}
	vecs, err := heatmap.PackVectors(maps)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(maps))
	if err := det.LogDensityBatch(out, vecs); err != nil {
		return nil, err
	}
	return out, nil
}

func flagRateBelow(densities []float64, theta float64) float64 {
	if len(densities) == 0 {
		return 0
	}
	n := 0
	for _, d := range densities {
		if d < theta {
			n++
		}
	}
	return float64(n) / float64(len(densities))
}

// AutoJResult is extension experiment A9: BIC-driven selection of the
// GMM component count on the real reduced MHMs (the paper picks J = 5
// manually and cites Figueiredo & Jain for automating it).
type AutoJResult struct {
	SelectedJ int
	Sweep     []gmm.Selection
}

// String renders the sweep.
func (r AutoJResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "A9 — automatic GMM order selection by BIC (selected J=%d)\n", r.SelectedJ)
	b.WriteString("   J  logLikelihood   params       BIC\n")
	for _, s := range r.Sweep {
		fmt.Fprintf(&b, "  %2d  %13.1f  %7d  %10.1f\n", s.J, s.LogLikelihood, s.Params, s.BIC)
	}
	return b.String()
}

// AutoJ reduces a normal training set with the lab's PCA settings and
// sweeps J by BIC.
func (l *Lab) AutoJ(seedBase int64, minJ, maxJ int) (*AutoJResult, error) {
	det, _, err := l.TrainDetector(seedBase)
	if err != nil {
		return nil, err
	}
	maps, err := l.CollectNormal(seedBase+42, l.Scale.TrainRunMicros)
	if err != nil {
		return nil, err
	}
	vecs, err := heatmap.PackVectors(maps)
	if err != nil {
		return nil, err
	}
	reduced, err := det.PCA.ProjectAll(vecs)
	if err != nil {
		return nil, err
	}
	opts := l.Scale.GMMOptions
	best, sweep, err := gmm.TrainAuto(reduced, minJ, maxJ, opts)
	if err != nil {
		return nil, err
	}
	return &AutoJResult{SelectedJ: len(best.Components), Sweep: sweep}, nil
}
