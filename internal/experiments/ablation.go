package experiments

import (
	"fmt"
	"strings"

	"github.com/memheatmap/mhm/internal/attack"
	"github.com/memheatmap/mhm/internal/baseline"
	"github.com/memheatmap/mhm/internal/core"
	"github.com/memheatmap/mhm/internal/gmm"
	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/pca"
	"github.com/memheatmap/mhm/internal/workload"
)

// LPrimeRow is one row of the eigenmemory-count ablation.
type LPrimeRow struct {
	LPrime            int
	VarianceExplained float64
	// ReconRMS is the mean reconstruction RMS error on held-out normal
	// MHMs.
	ReconRMS float64
	// FPRate is the flag rate on held-out normal data at θ1.
	FPRate float64
	// DetectRate is the post-launch flag rate at θ1 on the Fig. 7
	// scenario.
	DetectRate float64
}

// LPrimeSweepResult is ablation A1: how many eigenmemories are enough.
type LPrimeSweepResult struct{ Rows []LPrimeRow }

// String renders the table.
func (r LPrimeSweepResult) String() string {
	var b strings.Builder
	b.WriteString("A1 — eigenmemory count (L') sweep\n")
	b.WriteString("  L'  variance   reconRMS   FP@θ1    detect@θ1\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %2d  %8.5f  %9.2f  %6.3f  %9.3f\n",
			row.LPrime, row.VarianceExplained, row.ReconRMS, row.FPRate, row.DetectRate)
	}
	return b.String()
}

// scenarioFlagRate returns the post-event flag rate at p for the Fig. 7
// scenario run against det.
func (l *Lab) scenarioFlagRate(det *core.Detector, noiseSeed int64, p float64) (float64, error) {
	iv := l.Scale.IntervalMicros
	launch := 100*iv + iv/2
	sc := &attack.AppAddition{Spec: workload.QsortSpec(), LaunchAt: launch}
	maps, err := l.RunScenario(sc, noiseSeed, 200*iv)
	if err != nil {
		return 0, err
	}
	verdicts, err := det.ClassifySeries(maps)
	if err != nil {
		return 0, err
	}
	flagged, n := 0, 0
	for _, v := range verdicts {
		if v.Index <= 100 {
			continue
		}
		n++
		if v.Anomalous[p] {
			flagged++
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("experiments: no post-launch intervals: %w", ErrExperiment)
	}
	return float64(flagged) / float64(n), nil
}

// LPrimeSweep trains detectors with fixed L' values and reports quality
// versus compactness.
func (l *Lab) LPrimeSweep(lprimes []int, seedBase int64) (*LPrimeSweepResult, error) {
	res := &LPrimeSweepResult{}
	holdout, err := l.CollectNormal(seedBase+77, l.Scale.CalibRunMicros)
	if err != nil {
		return nil, err
	}
	for _, lp := range lprimes {
		lab := &Lab{Img: l.Img, Scale: l.Scale}
		lab.Scale.PCAOptions = pca.Options{Components: lp}
		det, _, err := lab.TrainDetector(seedBase)
		if err != nil {
			return nil, fmt.Errorf("experiments: L'=%d: %w", lp, err)
		}
		verdicts, err := det.ClassifySeries(holdout)
		if err != nil {
			return nil, err
		}
		cells, lprime := det.Dim()
		vbuf := make([]float64, cells)
		wbuf := make([]float64, lprime)
		rbuf := make([]float64, cells)
		var recon float64
		for _, m := range holdout {
			m.VectorInto(vbuf)
			e, err := det.PCA.ReconstructionErrorInto(wbuf, rbuf, vbuf)
			if err != nil {
				return nil, err
			}
			recon += e
		}
		detect, err := lab.scenarioFlagRate(det, seedBase+88, 0.01)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, LPrimeRow{
			LPrime:            lp,
			VarianceExplained: det.PCA.VarianceExplained(),
			ReconRMS:          recon / float64(len(holdout)),
			FPRate:            core.FalsePositiveRate(verdicts, 0.01),
			DetectRate:        detect,
		})
	}
	return res, nil
}

// JRow is one row of the GMM component-count ablation.
type JRow struct {
	J int
	// AvgLogLikelihood is the mean training log-likelihood per MHM.
	AvgLogLikelihood float64
	FPRate           float64
	DetectRate       float64
}

// JSweepResult is ablation A2: how many mixture components are enough.
type JSweepResult struct{ Rows []JRow }

// String renders the table.
func (r JSweepResult) String() string {
	var b strings.Builder
	b.WriteString("A2 — GMM component count (J) sweep\n")
	b.WriteString("   J  avgLL      FP@θ1    detect@θ1\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %2d  %9.3f  %6.3f  %9.3f\n", row.J, row.AvgLogLikelihood, row.FPRate, row.DetectRate)
	}
	return b.String()
}

// JSweep trains detectors with different J and reports fit and
// detection quality.
func (l *Lab) JSweep(js []int, seedBase int64) (*JSweepResult, error) {
	res := &JSweepResult{}
	holdout, err := l.CollectNormal(seedBase+77, l.Scale.CalibRunMicros)
	if err != nil {
		return nil, err
	}
	for _, j := range js {
		lab := &Lab{Img: l.Img, Scale: l.Scale}
		lab.Scale.GMMOptions = gmm.Options{Components: j, Restarts: l.Scale.GMMOptions.Restarts}
		det, rep, err := lab.TrainDetector(seedBase)
		if err != nil {
			return nil, fmt.Errorf("experiments: J=%d: %w", j, err)
		}
		verdicts, err := det.ClassifySeries(holdout)
		if err != nil {
			return nil, err
		}
		detect, err := lab.scenarioFlagRate(det, seedBase+88, 0.01)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, JRow{
			J:                j,
			AvgLogLikelihood: rep.TrainLogLikelihood / float64(rep.TrainMHMs),
			FPRate:           core.FalsePositiveRate(verdicts, 0.01),
			DetectRate:       detect,
		})
	}
	return res, nil
}

// GranRow is one row of the granularity ablation.
type GranRow struct {
	Gran       uint64
	Cells      int
	FPRate     float64
	DetectRate float64
}

// GranSweepResult is ablation A3: cell granularity δ versus detection.
type GranSweepResult struct{ Rows []GranRow }

// String renders the table.
func (r GranSweepResult) String() string {
	var b strings.Builder
	b.WriteString("A3 — granularity (δ) sweep\n")
	b.WriteString("  δ(bytes)  cells  FP@θ1    detect@θ1\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %8d  %5d  %6.3f  %9.3f\n", row.Gran, row.Cells, row.FPRate, row.DetectRate)
	}
	return b.String()
}

// GranSweep varies δ; coarse maps are cheaper but blur service
// footprints.
func (l *Lab) GranSweep(grans []uint64, seedBase int64) (*GranSweepResult, error) {
	res := &GranSweepResult{}
	for _, g := range grans {
		lab := &Lab{Img: l.Img, Scale: l.Scale}
		lab.Scale.Gran = g
		det, _, err := lab.TrainDetector(seedBase)
		if err != nil {
			return nil, fmt.Errorf("experiments: δ=%d: %w", g, err)
		}
		holdout, err := lab.CollectNormal(seedBase+77, lab.Scale.CalibRunMicros)
		if err != nil {
			return nil, err
		}
		verdicts, err := det.ClassifySeries(holdout)
		if err != nil {
			return nil, err
		}
		detect, err := lab.scenarioFlagRate(det, seedBase+88, 0.01)
		if err != nil {
			return nil, err
		}
		cells, _ := det.Dim()
		res.Rows = append(res.Rows, GranRow{
			Gran:       g,
			Cells:      cells,
			FPRate:     core.FalsePositiveRate(verdicts, 0.01),
			DetectRate: detect,
		})
	}
	return res, nil
}

// BaselineRow compares the detectors on one scenario.
type BaselineRow struct {
	Scenario string
	// VolumeRate, EntropyRate and MHMRate are post-event flag rates of
	// the volume baseline, the KL-distribution baseline (Gu et al.
	// style) and the MHM detector.
	VolumeRate, EntropyRate, MHMRate float64
}

// BaselineCompareResult is ablation A4: traffic-volume and
// distribution-entropy monitoring versus memory heat maps across the
// paper's three attack scenarios.
type BaselineCompareResult struct{ Rows []BaselineRow }

// String renders the table.
func (r BaselineCompareResult) String() string {
	var b strings.Builder
	b.WriteString("A4 — baselines vs MHM detector (post-event flag rate)\n")
	b.WriteString("  scenario       volume   entropy  MHM@θ1\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-13s  %6.3f  %7.3f  %7.3f\n", row.Scenario, row.VolumeRate, row.EntropyRate, row.MHMRate)
	}
	return b.String()
}

// BaselineCompare runs each scenario once and scores both detectors.
func (l *Lab) BaselineCompare(det *core.Detector, seedBase int64) (*BaselineCompareResult, error) {
	iv := l.Scale.IntervalMicros
	eventIv := 100
	eventAt := int64(eventIv)*iv + iv/2
	scenarios := []attack.Scenario{
		&attack.AppAddition{Spec: workload.QsortSpec(), LaunchAt: eventAt},
		&attack.Shellcode{Host: "bitcount", InjectAt: eventAt},
		&attack.RootkitLKM{LoadAt: eventAt},
	}
	normal, err := l.CollectNormal(seedBase+99, l.Scale.CalibRunMicros)
	if err != nil {
		return nil, err
	}
	vol, err := baseline.TrainVolume(normal, 3)
	if err != nil {
		return nil, err
	}
	ent, err := baseline.TrainEntropy(normal, 0.01)
	if err != nil {
		return nil, err
	}
	res := &BaselineCompareResult{}
	for i, sc := range scenarios {
		maps, err := l.RunScenario(sc, seedBase+int64(10+i), 200*iv)
		if err != nil {
			return nil, fmt.Errorf("experiments: scenario %s: %w", sc.Name(), err)
		}
		post := postEventMaps(maps, eventIv)
		volFlags, _ := vol.ClassifySeries(post)
		entFlags, _, err := ent.ClassifySeries(post)
		if err != nil {
			return nil, err
		}
		verdicts, err := det.ClassifySeries(post)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, BaselineRow{
			Scenario:    sc.Name(),
			VolumeRate:  rate(volFlags),
			EntropyRate: rate(entFlags),
			MHMRate:     core.FalsePositiveRate(verdicts, 0.01), // flag rate; data is post-event
		})
	}
	return res, nil
}

func postEventMaps(maps []*heatmap.HeatMap, eventIv int) []*heatmap.HeatMap {
	if eventIv+1 >= len(maps) {
		return nil
	}
	return maps[eventIv+1:]
}

func rate(flags []bool) float64 {
	if len(flags) == 0 {
		return 0
	}
	n := 0
	for _, f := range flags {
		if f {
			n++
		}
	}
	return float64(n) / float64(len(flags))
}
