package alarm_test

import (
	"fmt"

	"github.com/memheatmap/mhm/internal/alarm"
)

// Example shows debouncing: one flickering false positive is absorbed,
// a sustained anomaly raises after two consecutive flags.
func Example() {
	rt, err := alarm.NewRuntime(alarm.Config{RaiseAfter: 2, ClearAfter: 3})
	if err != nil {
		panic(err)
	}
	verdicts := []bool{false, true, false, false, true, true, true, false, false, false}
	for i, anomalous := range verdicts {
		if ev := rt.Observe(anomalous, int64(i)*10_000); ev != nil {
			state := "cleared"
			if ev.Raised {
				state = "RAISED"
			}
			fmt.Printf("interval %d: alarm %s\n", ev.Interval, state)
		}
	}
	// Output:
	// interval 5: alarm RAISED
	// interval 9: alarm cleared
}
