package alarm

import (
	"errors"
	"testing"
)

func mustRuntime(t *testing.T, cfg Config) *Runtime {
	t.Helper()
	r, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func feed(r *Runtime, flags []bool) []Event {
	var evs []Event
	for i, f := range flags {
		if ev := r.Observe(f, int64(i)*10_000); ev != nil {
			evs = append(evs, *ev)
		}
	}
	return evs
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewRuntime(Config{RaiseAfter: -1}); !errors.Is(err, ErrConfig) {
		t.Errorf("negative RaiseAfter: %v", err)
	}
	if _, err := NewRuntime(Config{ClearAfter: -1}); !errors.Is(err, ErrConfig) {
		t.Errorf("negative ClearAfter: %v", err)
	}
	r := mustRuntime(t, Config{})
	if r.cfg.RaiseAfter != 2 || r.cfg.ClearAfter != 5 {
		t.Errorf("defaults = %+v", r.cfg)
	}
}

func TestRaiseAfterConsecutiveAnomalies(t *testing.T) {
	r := mustRuntime(t, Config{RaiseAfter: 3, ClearAfter: 2})
	evs := feed(r, []bool{true, true, false, true, true, true})
	// The streak resets at index 2; raise fires at index 5.
	if len(evs) != 1 || !evs[0].Raised || evs[0].Interval != 5 {
		t.Fatalf("events = %+v", evs)
	}
	if !r.Raised() {
		t.Error("not raised after raise event")
	}
	if evs[0].Time != 50_000 {
		t.Errorf("event time = %d", evs[0].Time)
	}
}

func TestClearAfterConsecutiveNormals(t *testing.T) {
	r := mustRuntime(t, Config{RaiseAfter: 1, ClearAfter: 3})
	evs := feed(r, []bool{true, false, true, false, false, false})
	// Raise at 0, flicker at 1-2 (raise stays; second raise NOT emitted
	// while raised), clear at 5.
	if len(evs) != 2 {
		t.Fatalf("events = %+v", evs)
	}
	if !evs[0].Raised || evs[0].Interval != 0 {
		t.Errorf("first event = %+v", evs[0])
	}
	if evs[1].Raised || evs[1].Interval != 5 {
		t.Errorf("second event = %+v", evs[1])
	}
	if r.Raised() {
		t.Error("still raised after clear")
	}
}

func TestSingleFlickerDoesNotRaise(t *testing.T) {
	// RaiseAfter=2 suppresses isolated false positives — the debouncing
	// rationale.
	r := mustRuntime(t, Config{RaiseAfter: 2, ClearAfter: 2})
	evs := feed(r, []bool{false, true, false, false, true, false, false})
	if len(evs) != 0 {
		t.Fatalf("isolated flickers raised: %+v", evs)
	}
}

func TestAnalyzeLatencyAndFalseRaises(t *testing.T) {
	r := mustRuntime(t, Config{RaiseAfter: 2, ClearAfter: 2})
	// False raise at intervals 1-2, clear, then the true attack from
	// interval 10 on.
	flags := []bool{false, true, true, false, false, false, false, false, false, false,
		true, true, true, true}
	feed(r, flags)
	rep := r.Analyze(10)
	if rep.Raises != 2 || rep.Clears != 1 {
		t.Errorf("raises/clears = %d/%d", rep.Raises, rep.Clears)
	}
	if rep.FalseRaises != 1 {
		t.Errorf("false raises = %d", rep.FalseRaises)
	}
	// Attack at 10, RaiseAfter=2 → raise at 11 → latency 1 interval.
	if rep.DetectionLatencyIntervals != 1 {
		t.Errorf("latency = %d", rep.DetectionLatencyIntervals)
	}
}

func TestAnalyzeCleanRun(t *testing.T) {
	r := mustRuntime(t, Config{})
	feed(r, make([]bool, 50))
	rep := r.Analyze(-1)
	if rep.Raises != 0 || rep.FalseRaises != -1 || rep.DetectionLatencyIntervals != -1 {
		t.Errorf("clean report = %+v", rep)
	}
}

func TestAnalyzeNeverDetected(t *testing.T) {
	r := mustRuntime(t, Config{RaiseAfter: 3})
	feed(r, []bool{false, false, true, false, true})
	rep := r.Analyze(2)
	if rep.DetectionLatencyIntervals != -1 {
		t.Errorf("latency = %d, want -1 (never raised)", rep.DetectionLatencyIntervals)
	}
	if rep.FalseRaises != 0 {
		t.Errorf("false raises = %d", rep.FalseRaises)
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	r := mustRuntime(t, Config{RaiseAfter: 1})
	feed(r, []bool{true})
	evs := r.Events()
	if len(evs) != 1 {
		t.Fatal("missing event")
	}
	evs[0].Interval = 999
	if r.Events()[0].Interval == 999 {
		t.Error("Events aliases internal state")
	}
}
