// Package alarm turns the detector's per-interval verdicts into
// operational alarms: a raw anomaly flag flickers (the paper's Figs. 7
// and 10 both show normal-looking intervals inside attack windows), so
// the secure core debounces — an alarm raises after K consecutive
// abnormal intervals and clears after M consecutive normal ones — and
// accounts detection latency against ground truth.
package alarm

import (
	"errors"
	"fmt"

	"github.com/memheatmap/mhm/internal/obs"
)

// ErrConfig wraps invalid runtime parameters.
var ErrConfig = errors.New("alarm: invalid configuration")

// Config tunes the debouncer.
type Config struct {
	// RaiseAfter is the number of consecutive anomalous intervals that
	// raises an alarm (default 2).
	RaiseAfter int
	// ClearAfter is the number of consecutive normal intervals that
	// clears a raised alarm (default 5).
	ClearAfter int
}

func (c *Config) fill() error {
	if c.RaiseAfter == 0 {
		c.RaiseAfter = 2
	}
	if c.ClearAfter == 0 {
		c.ClearAfter = 5
	}
	if c.RaiseAfter < 1 || c.ClearAfter < 1 {
		return fmt.Errorf("alarm: RaiseAfter=%d ClearAfter=%d: %w", c.RaiseAfter, c.ClearAfter, ErrConfig)
	}
	return nil
}

// Event is one alarm transition.
type Event struct {
	// Raised is true for a raise, false for a clear.
	Raised bool
	// Interval is the interval index at which the transition fired; Time
	// is its end time in microseconds.
	Interval int
	Time     int64
}

// Runtime is the stateful debouncer. Feed it one verdict per interval
// in order.
type Runtime struct {
	cfg    Config
	raised bool

	anomStreak, normStreak int
	interval               int
	events                 []Event

	// Observability counters (nil unless Instrument was called).
	raisedC     *obs.Counter
	clearedC    *obs.Counter
	suppressedC *obs.Counter
}

// NewRuntime builds a runtime.
func NewRuntime(cfg Config) (*Runtime, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	return &Runtime{cfg: cfg}, nil
}

// Instrument installs observability counters: alarm.raised and
// alarm.cleared count transitions; alarm.suppressed counts anomalous
// intervals the debouncer absorbed without a transition (below the
// raise streak, or already raised).
func (r *Runtime) Instrument(reg *obs.Registry) {
	r.raisedC = reg.Counter("alarm.raised")
	r.clearedC = reg.Counter("alarm.cleared")
	r.suppressedC = reg.Counter("alarm.suppressed")
}

// Observe consumes one interval's verdict and returns a transition
// event, or nil when the alarm state did not change.
func (r *Runtime) Observe(anomalous bool, endTime int64) *Event {
	idx := r.interval
	r.interval++
	if anomalous {
		r.anomStreak++
		r.normStreak = 0
	} else {
		r.normStreak++
		r.anomStreak = 0
	}
	var ev *Event
	if !r.raised && r.anomStreak >= r.cfg.RaiseAfter {
		r.raised = true
		ev = &Event{Raised: true, Interval: idx, Time: endTime}
	} else if r.raised && r.normStreak >= r.cfg.ClearAfter {
		r.raised = false
		ev = &Event{Raised: false, Interval: idx, Time: endTime}
	}
	if ev != nil {
		r.events = append(r.events, *ev)
		if ev.Raised {
			r.raisedC.Inc()
		} else {
			r.clearedC.Inc()
		}
	} else if anomalous {
		r.suppressedC.Inc()
	}
	return ev
}

// Raised reports the current alarm state.
func (r *Runtime) Raised() bool { return r.raised }

// Events returns every transition so far.
func (r *Runtime) Events() []Event {
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Report summarizes a finished run against ground truth.
type Report struct {
	// Raises and Clears count transitions.
	Raises, Clears int
	// FalseRaises counts raises strictly before the event interval
	// (ground truth), -1 when no truth was given.
	FalseRaises int
	// DetectionLatencyIntervals is the gap between the ground-truth
	// event interval and the first raise at or after it; -1 if never
	// detected or no truth given.
	DetectionLatencyIntervals int
}

// Analyze summarizes the transitions against a ground-truth event
// interval (pass a negative eventInterval when the run is clean).
func (r *Runtime) Analyze(eventInterval int) Report {
	rep := Report{FalseRaises: -1, DetectionLatencyIntervals: -1}
	if eventInterval >= 0 {
		rep.FalseRaises = 0
	}
	for _, ev := range r.events {
		if ev.Raised {
			rep.Raises++
			if eventInterval >= 0 {
				if ev.Interval < eventInterval {
					rep.FalseRaises++
				} else if rep.DetectionLatencyIntervals < 0 {
					rep.DetectionLatencyIntervals = ev.Interval - eventInterval
				}
			}
		} else {
			rep.Clears++
		}
	}
	return rep
}
