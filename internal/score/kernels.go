// The fused scoring kernels. Everything here is annotated //mhm:hotpath
// and enforced allocation-free by mhmlint: no allocating builtins, no
// fmt, no closures, no calls into unannotated module code. Callers own
// all storage; slices passed in are presized by the Scorer.
package score

import (
	"math"
	"math/bits"
)

// projectInto computes the eigenmemory projection w = uᵀv − uᵀΨ as L'
// sweeps over the contiguous panel. Accumulation order matches mat.Dot,
// so results are bit-identical to pca.Model.Project.
//
//mhm:hotpath
func (e *Engine) projectInto(w, v []float64) {
	for j := 0; j < e.lp; j++ {
		row := e.panel[j*e.l : (j+1)*e.l]
		s := 0.0
		for i, x := range row {
			s += x * v[i]
		}
		w[j] = s - e.meanOff[j]
	}
}

// tileI is the i-dimension cache tile of the batch projection: 8 lanes
// × 256 doubles × 8 bytes = 16 KiB, comfortably inside L1d, so a packed
// tile written once is still resident while all L' panel rows sweep it.
const tileI = 256

// projectBatchInto projects B vectors into wb (row b = reduced vector
// b). Full blocks of eight vectors run through a packed, L1-tiled,
// zero-compacted panel product; the remainder block falls back to
// projectInto.
//
// Per i-tile, one fused scan ORs the raw float64 bits of all eight
// lanes per column: columns whose every lane is ±0.0 are dropped, the
// survivors transposed column-major into pk (pk[t*8+k] = lane k of the
// t-th retained column) with their tile-relative indices in ridx. Heat
// maps are overwhelmingly empty (a handful of hot cells per interval),
// so this typically shrinks the kernel work by 20×+. Panel rows then
// gather the retained entries into prow and sweep the compacted tile
// via dotPacked8x2 (two rows per pass — doubling the add chains the
// dot loop is latency-bound on), with per-row, per-lane accumulators
// in acc chained across tiles in ascending i.
//
// Dropping a column only skips terms row[i]·x where x is ±0.0. Those
// products are themselves ±0.0 for any finite row[i], and adding ±0.0
// to an accumulator that is not -0.0 is a bitwise no-op; since every
// accumulator starts at +0.0 and a sum that includes a non-negative-
// zero term can never yield -0.0, each lane remains bit-identical to
// the full mat.Dot sweep — provided the panel is finite (true for any
// trained model; a NaN/Inf panel entry would have propagated through
// training long before scoring). NaN/Inf *inputs* are never dropped:
// their bit patterns survive the OR test and stay in the kernel sweep.
//
//mhm:hotpath
func (e *Engine) projectBatchInto(wb, pk, prow, acc []float64, ridx []int32, vecs [][]float64) {
	l, lp := e.l, e.lp
	b := 0
	for ; b+8 <= len(vecs); b += 8 {
		acc := acc[:lp*8]
		for x := range acc {
			acc[x] = 0
		}
		v0, v1, v2, v3 := vecs[b], vecs[b+1], vecs[b+2], vecs[b+3]
		v4, v5, v6, v7 := vecs[b+4], vecs[b+5], vecs[b+6], vecs[b+7]
		for lo := 0; lo < l; lo += tileI {
			hi := lo + tileI
			if hi > l {
				hi = l
			}
			// Scan: keep a column if any lane has bits besides the sign.
			// With an occupancy kernel bound, 64 columns are tested per
			// call and only set bits are packed; the scalar loop covers
			// the tail (and everything, on targets without the kernel).
			nz := 0
			t0, t1, t2, t3 := v0[lo:hi], v1[lo:hi], v2[lo:hi], v3[lo:hi]
			t4, t5, t6, t7 := v4[lo:hi], v5[lo:hi], v6[lo:hi], v7[lo:hi]
			i := 0
			if colMask64 != nil {
				for ; i+64 <= len(t0); i += 64 {
					bm := colMask64(t0, t1, t2, t3, t4, t5, t6, t7, i)
					for bm != 0 {
						c := i + bits.TrailingZeros64(bm)
						bm &= bm - 1
						p := pk[nz*8 : nz*8+8 : nz*8+8]
						p[0], p[1], p[2], p[3] = t0[c], t1[c], t2[c], t3[c]
						p[4], p[5], p[6], p[7] = t4[c], t5[c], t6[c], t7[c]
						ridx[nz] = int32(c)
						nz++
					}
				}
			}
			for ; i < len(t0); i++ {
				x0, x1, x2, x3 := t0[i], t1[i], t2[i], t3[i]
				x4, x5, x6, x7 := t4[i], t5[i], t6[i], t7[i]
				m := math.Float64bits(x0) | math.Float64bits(x1) |
					math.Float64bits(x2) | math.Float64bits(x3) |
					math.Float64bits(x4) | math.Float64bits(x5) |
					math.Float64bits(x6) | math.Float64bits(x7)
				if m<<1 == 0 {
					continue
				}
				p := pk[nz*8 : nz*8+8 : nz*8+8]
				p[0], p[1], p[2], p[3] = x0, x1, x2, x3
				p[4], p[5], p[6], p[7] = x4, x5, x6, x7
				ridx[nz] = int32(i)
				nz++
			}
			if nz == 0 {
				continue
			}
			g0 := prow[:nz]
			g1 := prow[tileI : tileI+nz]
			j := 0
			for ; j+2 <= lp; j += 2 {
				r0 := e.panel[j*l+lo : j*l+hi]
				r1 := e.panel[(j+1)*l+lo : (j+1)*l+hi]
				for t := 0; t < nz; t++ {
					ii := int(ridx[t])
					g0[t] = r0[ii]
					g1[t] = r1[ii]
				}
				dotPacked8x2(g0, g1, pk[:nz*8],
					(*[8]float64)(acc[j*8:j*8+8]), (*[8]float64)(acc[(j+1)*8:(j+1)*8+8]))
			}
			if j < lp {
				r0 := e.panel[j*l+lo : j*l+hi]
				for t := 0; t < nz; t++ {
					g0[t] = r0[int(ridx[t])]
				}
				dotPacked8(g0, pk[:nz*8], (*[8]float64)(acc[j*8:j*8+8]))
			}
		}
		for j := 0; j < lp; j++ {
			off := e.meanOff[j]
			for k := 0; k < 8; k++ {
				wb[(b+k)*lp+j] = acc[j*8+k] - off
			}
		}
	}
	for ; b < len(vecs); b++ {
		e.projectInto(wb[b*lp:(b+1)*lp], vecs[b])
	}
}

// projectSparse computes the eigenmemory projection of one interval
// given only its nonzero cells, as run-length coordinates: run r
// covers cells starts[r]..starts[r]+lens[r]-1 and sv carries the
// widened cell values in run order. Each panel row sweeps the runs in
// ascending cell order, so — by the same ±0.0 argument as
// projectBatchInto — the result is bit-identical to projectInto on the
// densified vector.
//
//mhm:hotpath
func (e *Engine) projectSparse(w, sv []float64, starts, lens []int32) {
	l, lp := e.l, e.lp
	for j := 0; j < lp; j++ {
		row := e.panel[j*l : (j+1)*l]
		s := 0.0
		off := 0
		for r, st := range starts {
			n := int(lens[r])
			seg := row[int(st) : int(st)+n]
			for i, x := range seg {
				s += x * sv[off+i]
			}
			off += n
		}
		w[j] = s - e.meanOff[j]
	}
}

// mixKernel evaluates the mixture log density of a reduced vector w:
// per component, a fused mean-offset + forward substitution through the
// flattened Cholesky factor gives the squared Mahalanobis distance, and
// the per-component log terms close with a log-sum-exp. Operation order
// matches gmm.Model.LogProb exactly (including the skip of non-positive
// weights at construction), so the result is bit-identical.
//
//mhm:hotpath
func (e *Engine) mixKernel(w, y, terms []float64) float64 {
	lp := e.lp
	best := math.Inf(-1)
	for ci := range e.comps {
		c := &e.comps[ci]
		// Forward substitution L y = (w − µ), accumulating m2 = yᵀy.
		m2 := 0.0
		for i := 0; i < lp; i++ {
			s := w[i] - c.mean[i]
			li := c.chol[i*lp : (i+1)*lp]
			for k := 0; k < i; k++ {
				s -= li[k] * y[k]
			}
			yi := s / li[i]
			y[i] = yi
			m2 += yi * yi
		}
		t := c.logW - 0.5*(c.base+m2)
		terms[ci] = t
		if t > best {
			best = t
		}
	}
	if len(e.comps) == 0 || math.IsInf(best, -1) {
		return math.Inf(-1)
	}
	sum := 0.0
	for _, t := range terms[:len(e.comps)] {
		sum += math.Exp(t - best)
	}
	return best + math.Log(sum)
}
