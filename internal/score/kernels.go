// The fused scoring kernels. Everything here is annotated //mhm:hotpath
// and enforced allocation-free by mhmlint: no allocating builtins, no
// fmt, no closures, no calls into unannotated module code. Callers own
// all storage; slices passed in are presized by the Scorer.
package score

import "math"

// projectInto computes the eigenmemory projection w = uᵀv − uᵀΨ as L'
// sweeps over the contiguous panel. Accumulation order matches mat.Dot,
// so results are bit-identical to pca.Model.Project.
//
//mhm:hotpath
func (e *Engine) projectInto(w, v []float64) {
	for j := 0; j < e.lp; j++ {
		row := e.panel[j*e.l : (j+1)*e.l]
		s := 0.0
		for i, x := range row {
			s += x * v[i]
		}
		w[j] = s - e.meanOff[j]
	}
}

// tileI is the i-dimension cache tile of the batch projection: 8 lanes
// × 256 doubles × 8 bytes = 16 KiB, comfortably inside L1d, so a packed
// tile written once is still resident while all L' panel rows sweep it.
const tileI = 256

// projectBatchInto projects B vectors into wb (row b = reduced vector
// b). Full blocks of eight vectors run through a packed, L1-tiled
// panel product: each i-tile is transposed column-major into pk
// (pk[i*8+k] = vecs[b+k][lo+i]) exactly once, then every panel row
// accumulates its partial dots over the resident tile via dotPacked8 —
// on amd64 an SSE2 kernel where each vector owns one SIMD lane, so a
// MULPD/ADDPD pair retires two mul-adds. Per-row, per-lane accumulators
// in acc chain across tiles in ascending i, so every lane still sums in
// mat.Dot index order and each reduced vector is bit-identical to the
// single-vector path. The remainder block falls back to projectInto.
//
//mhm:hotpath
func (e *Engine) projectBatchInto(wb, pk, acc []float64, vecs [][]float64) {
	l, lp := e.l, e.lp
	b := 0
	for ; b+8 <= len(vecs); b += 8 {
		acc := acc[:lp*8]
		for x := range acc {
			acc[x] = 0
		}
		for lo := 0; lo < l; lo += tileI {
			hi := lo + tileI
			if hi > l {
				hi = l
			}
			n := hi - lo
			for k := 0; k < 8; k++ {
				v := vecs[b+k][lo:hi]
				for i, x := range v {
					pk[i*8+k] = x
				}
			}
			for j := 0; j < lp; j++ {
				dotPacked8(e.panel[j*l+lo:j*l+hi], pk[:n*8], (*[8]float64)(acc[j*8:j*8+8]))
			}
		}
		for j := 0; j < lp; j++ {
			off := e.meanOff[j]
			for k := 0; k < 8; k++ {
				wb[(b+k)*lp+j] = acc[j*8+k] - off
			}
		}
	}
	for ; b < len(vecs); b++ {
		e.projectInto(wb[b*lp:(b+1)*lp], vecs[b])
	}
}

// mixKernel evaluates the mixture log density of a reduced vector w:
// per component, a fused mean-offset + forward substitution through the
// flattened Cholesky factor gives the squared Mahalanobis distance, and
// the per-component log terms close with a log-sum-exp. Operation order
// matches gmm.Model.LogProb exactly (including the skip of non-positive
// weights at construction), so the result is bit-identical.
//
//mhm:hotpath
func (e *Engine) mixKernel(w, y, terms []float64) float64 {
	lp := e.lp
	best := math.Inf(-1)
	for ci := range e.comps {
		c := &e.comps[ci]
		// Forward substitution L y = (w − µ), accumulating m2 = yᵀy.
		m2 := 0.0
		for i := 0; i < lp; i++ {
			s := w[i] - c.mean[i]
			li := c.chol[i*lp : (i+1)*lp]
			for k := 0; k < i; k++ {
				s -= li[k] * y[k]
			}
			yi := s / li[i]
			y[i] = yi
			m2 += yi * yi
		}
		t := c.logW - 0.5*(c.base+m2)
		terms[ci] = t
		if t > best {
			best = t
		}
	}
	if len(e.comps) == 0 || math.IsInf(best, -1) {
		return math.Inf(-1)
	}
	sum := 0.0
	for _, t := range terms[:len(e.comps)] {
		sum += math.Exp(t - best)
	}
	return best + math.Log(sum)
}
