//go:build !amd64 && !arm64

package score

// kernelVariants: targets with no SIMD kernels run only the portable
// reference, so the identity tests degenerate to self-consistency.
func kernelVariants() []kernelVariant {
	return []kernelVariant{{name: "go", dot: dotPacked8Ref}}
}
