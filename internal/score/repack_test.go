package score

import (
	"math"
	"math/rand"
	"testing"

	"github.com/memheatmap/mhm/internal/gmm"
	"github.com/memheatmap/mhm/internal/mat"
	"github.com/memheatmap/mhm/internal/pca"
)

// repackModel builds a well-conditioned basis + mixture (white-box twin
// of score_test.synthModel, which lives in the external test package).
func repackModel(t testing.TB, l, lp, j int, seed int64) (*pca.Model, *gmm.Model) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cols := make([][]float64, lp)
	for c := range cols {
		v := make([]float64, l)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		for _, prev := range cols[:c] {
			d := mat.Dot(prev, v)
			for i := range v {
				v[i] -= d * prev[i]
			}
		}
		mat.Normalize(v)
		cols[c] = v
	}
	comps := mat.New(l, lp)
	for c, v := range cols {
		for i, x := range v {
			comps.Set(i, c, x)
		}
	}
	mean := make([]float64, l)
	for i := range mean {
		mean[i] = 50 * rng.Float64()
	}
	p := &pca.Model{Mean: mean, Components: comps, Values: make([]float64, lp), TotalVariance: 1}
	g := &gmm.Model{}
	for c := 0; c < j; c++ {
		mu := make([]float64, lp)
		for i := range mu {
			mu[i] = 10 * rng.NormFloat64()
		}
		a := mat.New(lp, lp)
		for i := 0; i < lp; i++ {
			for k := 0; k < lp; k++ {
				a.Set(i, k, rng.NormFloat64())
			}
		}
		cov := mat.New(lp, lp)
		for i := 0; i < lp; i++ {
			for k := 0; k < lp; k++ {
				cov.Set(i, k, mat.Dot(a.Row(i), a.Row(k)))
			}
			cov.Set(i, i, cov.At(i, i)+1)
		}
		g.Components = append(g.Components, gmm.Component{
			Weight: 1 / float64(j), Mean: mu, Cov: cov,
		})
	}
	return p, g
}

// TestRepackBitIdentical packs refreshed models into a retired engine
// and checks every packed value matches a fresh New bit for bit.
func TestRepackBitIdentical(t *testing.T) {
	const l, lp, j = 64, 6, 4
	p1, g1 := repackModel(t, l, lp, j, 71)
	spare, err := New(p1, g1)
	if err != nil {
		t.Fatal(err)
	}
	p2, g2 := repackModel(t, l, lp, j, 72)
	fresh, err := New(p2, g2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Repack(spare, p2, g2)
	if err != nil {
		t.Fatal(err)
	}
	if got != spare {
		t.Fatal("Repack did not reuse the spare engine")
	}
	for i := range fresh.panel {
		if math.Float64bits(fresh.panel[i]) != math.Float64bits(got.panel[i]) {
			t.Fatalf("panel[%d] differs", i)
		}
	}
	for i := range fresh.meanOff {
		if math.Float64bits(fresh.meanOff[i]) != math.Float64bits(got.meanOff[i]) {
			t.Fatalf("meanOff[%d] differs", i)
		}
	}
	if len(fresh.comps) != len(got.comps) {
		t.Fatalf("%d packed components, want %d", len(got.comps), len(fresh.comps))
	}
	for c := range fresh.comps {
		fc, gc := &fresh.comps[c], &got.comps[c]
		if math.Float64bits(fc.logW) != math.Float64bits(gc.logW) ||
			math.Float64bits(fc.base) != math.Float64bits(gc.base) {
			t.Fatalf("component %d scalars differ", c)
		}
		for i := range fc.mean {
			if math.Float64bits(fc.mean[i]) != math.Float64bits(gc.mean[i]) {
				t.Fatalf("component %d mean[%d] differs", c, i)
			}
		}
		for i := range fc.chol {
			if math.Float64bits(fc.chol[i]) != math.Float64bits(gc.chol[i]) {
				t.Fatalf("component %d chol[%d] differs", c, i)
			}
		}
	}
}

// TestRepackReusesBacking pins the zero-reallocation contract: the
// panel, mean offsets and component blocks keep their backing arrays
// across a repack.
func TestRepackReusesBacking(t *testing.T) {
	const l, lp, j = 48, 5, 3
	p1, g1 := repackModel(t, l, lp, j, 73)
	spare, err := New(p1, g1)
	if err != nil {
		t.Fatal(err)
	}
	panel0, mean0, chol0 := &spare.panel[0], &spare.comps[0].mean[0], &spare.comps[0].chol[0]
	p2, g2 := repackModel(t, l, lp, j, 74)
	got, err := Repack(spare, p2, g2)
	if err != nil {
		t.Fatal(err)
	}
	if &got.panel[0] != panel0 || &got.comps[0].mean[0] != mean0 || &got.comps[0].chol[0] != chol0 {
		t.Fatal("Repack reallocated engine storage")
	}
}

// TestRepackFallsBackOnShapeChange checks a dimension change falls back
// to a fresh engine instead of corrupting the spare.
func TestRepackFallsBackOnShapeChange(t *testing.T) {
	p1, g1 := repackModel(t, 64, 6, 4, 75)
	spare, err := New(p1, g1)
	if err != nil {
		t.Fatal(err)
	}
	p2, g2 := repackModel(t, 64, 4, 4, 76) // different L'
	got, err := Repack(spare, p2, g2)
	if err != nil {
		t.Fatal(err)
	}
	if got == spare {
		t.Fatal("Repack reused a shape-mismatched spare")
	}
	if got.lp != 4 {
		t.Fatalf("fallback engine lp = %d, want 4", got.lp)
	}
	if _, err := Repack(nil, p2, g2); err != nil {
		t.Fatalf("nil spare: %v", err)
	}
}

// TestRepackScoresMatchNew runs the full scoring path through a
// repacked engine and a fresh one and compares densities bit for bit.
func TestRepackScoresMatchNew(t *testing.T) {
	const l, lp, j = 80, 7, 5
	p1, g1 := repackModel(t, l, lp, j, 77)
	spare, err := New(p1, g1)
	if err != nil {
		t.Fatal(err)
	}
	p2, g2 := repackModel(t, l, lp, j, 78)
	fresh, err := New(p2, g2)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Repack(spare, p2, g2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(79))
	v := make([]float64, l)
	sFresh, sRe := fresh.NewScorer(), re.NewScorer()
	for trial := 0; trial < 50; trial++ {
		for i := range v {
			v[i] = 100 * rng.Float64()
		}
		a, err := sFresh.Score(v)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sRe.Score(v)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("trial %d: fresh %v vs repacked %v", trial, a, b)
		}
	}
}
