package score

import "github.com/memheatmap/mhm/internal/cpufeat"

// kernelVariants lists every kernel configuration this amd64 host can
// execute: the portable reference, the SSE2 baseline, and — when the
// CPU and OS support it (and GODEBUG has not masked it) — the AVX2 set
// with its fused two-row kernel and occupancy-scan mask.
func kernelVariants() []kernelVariant {
	vs := []kernelVariant{
		{name: "go", dot: dotPacked8Ref},
		{name: "sse2", dot: dotPacked8SSE2},
	}
	if cpufeat.X86.HasAVX2 {
		vs = append(vs, kernelVariant{
			name: "avx2",
			dot:  dotPacked8AVX2,
			x2:   dotPacked8x2AVX2,
			mask: colMask64AVX2,
		})
	}
	return vs
}
