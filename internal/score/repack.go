// Engine re-pack for the refresh loop: rebuild a fused engine from
// refreshed models into the storage of a retired one, so periodic model
// refreshes do not re-allocate the L'×L panel, the mean offsets or the
// per-component factor blocks every cycle.
package score

import (
	"fmt"
	"math"

	"github.com/memheatmap/mhm/internal/gmm"
	"github.com/memheatmap/mhm/internal/mat"
	"github.com/memheatmap/mhm/internal/pca"
)

// Repack fuses refreshed models into spare's storage and returns spare,
// provided the shapes match (same L, L' and at least as many packed
// component blocks); otherwise — or when spare is nil — it falls back
// to New. The packed values are bit-identical to New's.
//
// Ownership contract: spare must be exclusively owned by the caller —
// retired from every Scorer, registry slot and goroutine — because its
// arrays are overwritten in place. The refresh loop satisfies this by
// repacking only its private calibration engine, never a published one.
//
//mhm:deterministic
func Repack(spare *Engine, p *pca.Model, g *gmm.Model) (*Engine, error) {
	if p == nil || g == nil {
		return nil, fmt.Errorf("score: nil model: %w", ErrModel)
	}
	l, lp := p.Dim()
	active := 0
	for ci := range g.Components {
		if g.Components[ci].Weight > 0 {
			active++
		}
	}
	if spare == nil || spare.l != l || spare.lp != lp || len(spare.comps) < active {
		return New(p, g)
	}
	if d := g.Dim(); d != lp {
		return nil, fmt.Errorf("score: mixture dimension %d, eigenmemories %d: %w", d, lp, ErrModel)
	}
	for j := 0; j < lp; j++ {
		row := spare.panel[j*l : (j+1)*l]
		for i := 0; i < l; i++ {
			row[i] = p.Components.At(i, j)
		}
		spare.meanOff[j] = mat.Dot(row, p.Mean)
	}
	packed := 0
	for ci := range g.Components {
		c := &g.Components[ci]
		if c.Weight <= 0 {
			continue
		}
		if len(c.Mean) != lp || c.Cov.Rows() != lp || c.Cov.Cols() != lp {
			return nil, fmt.Errorf("score: component %d shape: %w", ci, ErrModel)
		}
		ch, err := mat.NewCholesky(c.Cov)
		if err != nil {
			return nil, fmt.Errorf("score: component %d: %w", ci, err)
		}
		fc := &spare.comps[packed]
		copy(fc.mean, c.Mean)
		fc.logW = math.Log(c.Weight)
		fc.base = float64(lp)*log2Pi + ch.LogDet()
		lo := ch.L()
		for i := 0; i < lp; i++ {
			copy(fc.chol[i*lp:(i+1)*lp], lo.Row(i))
		}
		packed++
	}
	spare.comps = spare.comps[:packed]
	return spare, nil
}
