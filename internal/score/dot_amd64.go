//go:build amd64

package score

// dotPacked8 accumulates eight dot products against one panel-row tile
// over a column-major packed block: out[k] += Σ_i row[i]·packed[i*8+k].
// The SSE2 kernel (baseline amd64, no feature detection needed) assigns
// each of the eight vectors its own SIMD lane; every lane multiplies
// then adds in ascending index order, exactly like the scalar loop, so
// chaining the accumulators across tiles stays bit-identical to
// mat.Dot. len(packed) must be 8·len(row).
//
//mhm:hotpath
//go:noescape
func dotPacked8(row, packed []float64, out *[8]float64)
