//go:build amd64

package score

import "github.com/memheatmap/mhm/internal/cpufeat"

// dotPacked8SSE2 is the amd64 baseline kernel (SSE2 needs no feature
// detection): each of the eight vectors owns one SIMD lane; every lane
// multiplies then adds in ascending index order, exactly like the
// scalar loop, so chaining the accumulators across tiles stays
// bit-identical to mat.Dot. len(packed) must be 8·len(row).
//
//mhm:hotpath
//go:noescape
func dotPacked8SSE2(row, packed []float64, out *[8]float64)

// dotPacked8AVX2 is the 4-lane-wide variant: two YMM accumulators
// cover all eight lanes, with separate VMULPD/VADDPD (no FMA — fused
// rounding would break the bit-identity contract detorder enforces).
//
//mhm:hotpath
//go:noescape
func dotPacked8AVX2(row, packed []float64, out *[8]float64)

// dotPacked8x2AVX2 fuses two panel rows over one packed tile: four
// YMM accumulators give each row its own add chains, doubling
// throughput on the latency-bound dot loop. Per-row arithmetic is
// exactly dotPacked8AVX2's. len(row1) must equal len(row0).
//
//mhm:hotpath
//go:noescape
func dotPacked8x2AVX2(row0, row1, packed []float64, out0, out1 *[8]float64)

// colMask64AVX2 computes the 64-column occupancy bitmask of eight
// lanes with a VPOR tree per four columns, a VPSLLQ to drop the sign
// bits, and a VPCMPEQQ/VMOVMSKPD pair to turn zero-tests into mask
// bits. All lanes must hold at least i+64 elements.
//
//mhm:hotpath
//go:noescape
func colMask64AVX2(v0, v1, v2, v3, v4, v5, v6, v7 []float64, i int) uint64

func init() {
	if cpufeat.X86.HasAVX2 {
		kernelName = "avx2"
		dotPacked8 = dotPacked8AVX2
		dotPacked8x2 = dotPacked8x2AVX2
		colMask64 = colMask64AVX2
	} else {
		kernelName = "sse2"
		dotPacked8 = dotPacked8SSE2
	}
}
