package score

import (
	"math"
	"math/rand"
	"testing"
)

// kernelVariant is one dispatchable kernel configuration. variants()
// (per-arch test files) lists every configuration the host can run;
// each must reproduce the portable reference bit for bit, which is the
// contract that lets init-time dispatch never change a score.
type kernelVariant struct {
	name string
	dot  func(row, packed []float64, out *[8]float64)
	x2   func(row0, row1, packed []float64, out0, out1 *[8]float64) // nil = split fallback
	mask func(v0, v1, v2, v3, v4, v5, v6, v7 []float64, i int) uint64
}

// withKernels runs f with the dispatch tables temporarily rebound to
// kv, restoring the init-time binding afterwards. Tests using it must
// not run in parallel.
func withKernels(t *testing.T, kv kernelVariant, f func()) {
	t.Helper()
	oldDot, oldX2, oldMask := dotPacked8, dotPacked8x2, colMask64
	dotPacked8 = kv.dot
	if kv.x2 != nil {
		dotPacked8x2 = kv.x2
	} else {
		dotPacked8x2 = dotPacked8x2Split
	}
	colMask64 = kv.mask
	defer func() {
		dotPacked8, dotPacked8x2, colMask64 = oldDot, oldX2, oldMask
	}()
	f()
}

// sameBits is the cross-kernel equality contract: exact bit identity
// for every non-NaN value (covering signed zeros, infinities and
// denormals), and NaN-for-NaN agreement without comparing payloads.
// IEEE NaN payload propagation depends on operand order, which the
// compiler is free to pick for the scalar reference, so payload-exact
// NaN equality is not a property any kernel can promise — and trained
// models guarantee finite panels and vectors, so NaN results never
// arise outside adversarial tests like these.
func sameBits(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

// specialValue mixes in the adversarial float64s the bit-identity
// contract must survive: signed zeros, infinities, NaN, denormals.
func specialValue(rng *rand.Rand) float64 {
	switch rng.Intn(12) {
	case 0:
		return math.Copysign(0, -1)
	case 1:
		return 0
	case 2:
		return math.Inf(1)
	case 3:
		return math.Inf(-1)
	case 4:
		return math.NaN()
	case 5:
		return 5e-324 // smallest denormal
	default:
		return rng.NormFloat64() * math.Pow(10, float64(rng.Intn(40)-20))
	}
}

// TestDotKernelsBitIdentical compares every host kernel against
// dotPacked8Ref on the raw kernel contract, including adversarial
// inputs and pre-seeded accumulators.
func TestDotKernelsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, rows := range []int{0, 1, 2, 7, 8, 63, 256} {
		row0 := make([]float64, rows)
		row1 := make([]float64, rows)
		packed := make([]float64, rows*8)
		for i := range row0 {
			row0[i] = specialValue(rng)
			row1[i] = specialValue(rng)
		}
		for i := range packed {
			packed[i] = specialValue(rng)
		}
		var seed [8]float64
		for k := range seed {
			seed[k] = rng.NormFloat64()
		}
		want0, want1 := seed, seed
		dotPacked8Ref(row0, packed, &want0)
		dotPacked8Ref(row1, packed, &want1)

		for _, kv := range kernelVariants() {
			got0, got1 := seed, seed
			kv.dot(row0, packed, &got0)
			for k := range got0 {
				if !sameBits(got0[k], want0[k]) {
					t.Fatalf("%s rows=%d lane %d: %v, want %v (bits %x vs %x)",
						kv.name, rows, k, got0[k], want0[k],
						math.Float64bits(got0[k]), math.Float64bits(want0[k]))
				}
			}
			if kv.x2 == nil {
				continue
			}
			got0, got1 = seed, seed
			kv.x2(row0, row1, packed, &got0, &got1)
			for k := range got0 {
				if !sameBits(got0[k], want0[k]) || !sameBits(got1[k], want1[k]) {
					t.Fatalf("%s x2 rows=%d lane %d: (%v,%v), want (%v,%v)",
						kv.name, rows, k, got0[k], got1[k], want0[k], want1[k])
				}
			}
		}
	}
}

// TestColMask64MatchesScalar pins the occupancy-scan kernels to the
// scalar Float64bits test in projectBatchInto: a bit is set iff some
// lane holds anything but ±0.0 — NaN, Inf and denormals all count as
// occupied; both zeros do not.
func TestColMask64MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const cols = 192
	lanes := make([][]float64, 8)
	for k := range lanes {
		lanes[k] = make([]float64, cols)
		for i := range lanes[k] {
			switch rng.Intn(4) {
			case 0:
				lanes[k][i] = specialValue(rng)
			case 1:
				lanes[k][i] = math.Copysign(0, -1)
			default:
				// Mostly zero columns, like real sparse batches.
			}
		}
	}
	scalar := func(i int) uint64 {
		var m uint64
		for c := 0; c < 64; c++ {
			var bits uint64
			for k := range lanes {
				bits |= math.Float64bits(lanes[k][i+c]) << 1
			}
			if bits != 0 {
				m |= 1 << uint(c)
			}
		}
		return m
	}
	for _, kv := range kernelVariants() {
		if kv.mask == nil {
			continue
		}
		for _, i := range []int{0, 64, 128} {
			got := kv.mask(lanes[0], lanes[1], lanes[2], lanes[3], lanes[4], lanes[5], lanes[6], lanes[7], i)
			if want := scalar(i); got != want {
				t.Fatalf("%s colMask64(i=%d) = %#x, want %#x", kv.name, i, got, want)
			}
		}
	}
}

// testEngine builds a small Engine literal with a deterministic finite
// panel, as trained models guarantee.
func testEngine(l, lp int, seed int64) *Engine {
	rng := rand.New(rand.NewSource(seed))
	e := &Engine{
		l:       l,
		lp:      lp,
		panel:   make([]float64, lp*l),
		meanOff: make([]float64, lp),
	}
	for i := range e.panel {
		e.panel[i] = rng.NormFloat64()
	}
	for j := range e.meanOff {
		e.meanOff[j] = rng.NormFloat64()
	}
	return e
}

// FuzzProjectBatchAcrossKernels drives the full batch projection —
// zero-column compaction, tile gathering, row pairing — under every
// host kernel configuration and demands bit-identical outputs,
// including on batches laden with zero columns, signed zeros, NaN and
// Inf. This is the dispatch-level guarantee behind "dispatch never
// changes a score".
func FuzzProjectBatchAcrossKernels(f *testing.F) {
	f.Add(int64(1), 300, 6, 9, uint8(10))
	f.Add(int64(2), 64, 4, 8, uint8(0))
	f.Add(int64(3), 513, 3, 17, uint8(255))
	f.Fuzz(func(t *testing.T, seed int64, l, lp, batch int, density uint8) {
		if l < 1 || l > 1024 || lp < 1 || lp > 16 || batch < 8 || batch > 24 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		e := testEngine(l, lp, seed)
		vecs := make([][]float64, batch)
		for b := range vecs {
			v := make([]float64, l)
			for i := range v {
				if int(density) > 0 && rng.Intn(256) < int(density) {
					v[i] = specialValue(rng)
				}
			}
			vecs[b] = v
		}
		tl := l
		if tl > tileI {
			tl = tileI
		}
		run := func(kv kernelVariant) []float64 {
			wb := make([]float64, batch*lp)
			pk := make([]float64, 8*tl)
			prow := make([]float64, 2*tileI)
			acc := make([]float64, 8*lp)
			ridx := make([]int32, tl)
			withKernels(t, kv, func() {
				e.projectBatchInto(wb, pk, prow, acc, ridx, vecs)
			})
			return wb
		}
		ref := run(kernelVariant{name: "go", dot: dotPacked8Ref})
		for _, kv := range kernelVariants() {
			got := run(kv)
			for i := range ref {
				if !sameBits(got[i], ref[i]) {
					t.Fatalf("%s: wb[%d] = %v, reference %v (bits %x vs %x)",
						kv.name, i, got[i], ref[i],
						math.Float64bits(got[i]), math.Float64bits(ref[i]))
				}
			}
		}
	})
}
