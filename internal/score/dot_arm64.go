//go:build arm64

package score

import "github.com/memheatmap/mhm/internal/cpufeat"

// dotPacked8NEON is the arm64 kernel: four 128-bit vector accumulators
// cover the eight lanes, using unfused FMUL/FADD pairs (no FMLA — the
// fused rounding would break the bit-identity contract detorder
// enforces). len(packed) must be 8·len(row).
//
//mhm:hotpath
//go:noescape
func dotPacked8NEON(row, packed []float64, out *[8]float64)

func init() {
	if cpufeat.ARM64.HasASIMD {
		kernelName = "neon"
		dotPacked8 = dotPacked8NEON
	}
}
