package score

// Runtime kernel dispatch. The package-level function variables below
// are bound exactly once, at package init, to the widest kernel the
// CPU supports (internal/cpufeat probes features and honours
// GODEBUG=cpu.<feature>=off masking); after init they are never
// reassigned, so hot-path calls through them are data-race-free and
// branch-predictable. Every candidate implementation obeys the same
// contract as dotPacked8Ref — per-lane multiply-then-add in ascending
// index order, no FMA — so dispatch never changes a single bit of any
// score. mhmlint extends its hotpath and detorder checks through these
// tables: each function assigned here must itself be //mhm:hotpath,
// and the detorder walk treats a call through the variable as a call
// to every bound kernel.

// dotPacked8 accumulates eight packed dot products against one
// panel-row tile: out[k] += Σ_i row[i]·packed[i*8+k], with
// len(packed) == 8·len(row).
//
//mhm:hotpath
var dotPacked8 func(row, packed []float64, out *[8]float64) = dotPacked8Ref

// dotPacked8x2 runs dotPacked8 for two panel rows over one resident
// packed tile (len(row1) == len(row0)). Fusing the rows doubles the
// independent accumulator chains, hiding the vector-add latency that
// bounds the single-row kernel; lane arithmetic per row is exactly
// dotPacked8's, so results stay bit-identical.
//
//mhm:hotpath
var dotPacked8x2 func(row0, row1, packed []float64, out0, out1 *[8]float64) = dotPacked8x2Split

// colMask64, when non-nil, returns the occupancy bitmask of 64 batch
// columns starting at column i: bit c is set iff any of the eight
// lanes has a value other than ±0.0 at column i+c (i+64 must be
// within the lanes' shared length). It only accelerates the
// zero-column scan — a set/clear bit matches exactly the scalar
// Float64bits test in projectBatchInto — so scores are unaffected by
// whether it is bound. Nil when the CPU has no suitable kernel.
//
//mhm:hotpath
var colMask64 func(v0, v1, v2, v3, v4, v5, v6, v7 []float64, i int) uint64

// kernelName records which projection kernel dispatch selected, for
// benchmarks and reports.
var kernelName = "go"

// Kernel reports the projection kernel selected at startup: "avx2",
// "sse2", "neon", or "go".
func Kernel() string { return kernelName }

// dotPacked8x2Split is the two-row fallback for targets without a
// fused two-row kernel: two sweeps through whatever single-row kernel
// dispatch selected.
//
//mhm:hotpath
func dotPacked8x2Split(row0, row1, packed []float64, out0, out1 *[8]float64) {
	dotPacked8(row0, packed, out0)
	dotPacked8(row1, packed, out1)
}
