package score_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/memheatmap/mhm/internal/gmm"
	"github.com/memheatmap/mhm/internal/mat"
	"github.com/memheatmap/mhm/internal/pca"
	"github.com/memheatmap/mhm/internal/score"
)

// synthModel builds a random but well-conditioned eigenmemory basis and
// mixture directly from exported model fields: an orthonormalized L×L'
// basis and J SPD covariances.
func synthModel(t testing.TB, l, lp, j int, seed int64) (*pca.Model, *gmm.Model) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))

	// Random basis, Gram-Schmidt orthonormalized column by column.
	cols := make([][]float64, lp)
	for c := range cols {
		v := make([]float64, l)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		for _, prev := range cols[:c] {
			d := mat.Dot(prev, v)
			for i := range v {
				v[i] -= d * prev[i]
			}
		}
		mat.Normalize(v)
		cols[c] = v
	}
	comps := mat.New(l, lp)
	for c, v := range cols {
		for i, x := range v {
			comps.Set(i, c, x)
		}
	}
	mean := make([]float64, l)
	for i := range mean {
		mean[i] = 50 * rng.Float64()
	}
	p := &pca.Model{Mean: mean, Components: comps, Values: make([]float64, lp), TotalVariance: 1}

	g := &gmm.Model{}
	for c := 0; c < j; c++ {
		mu := make([]float64, lp)
		for i := range mu {
			mu[i] = 10 * rng.NormFloat64()
		}
		// SPD covariance: A Aᵀ + I.
		a := mat.New(lp, lp)
		for i := 0; i < lp; i++ {
			for k := 0; k < lp; k++ {
				a.Set(i, k, rng.NormFloat64())
			}
		}
		cov := mat.New(lp, lp)
		for i := 0; i < lp; i++ {
			for k := 0; k < lp; k++ {
				cov.Set(i, k, mat.Dot(a.Row(i), a.Row(k)))
			}
			cov.Set(i, i, cov.At(i, i)+1)
		}
		g.Components = append(g.Components, gmm.Component{
			Weight: 1 / float64(j),
			Mean:   mu,
			Cov:    cov,
		})
	}
	return p, g
}

// randomVecs draws MHM-like vectors spanning in-distribution and
// out-of-distribution mass.
func randomVecs(n, l int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, l)
		for k := range v {
			v[k] = 100 * rng.Float64() * float64(1+i%7)
		}
		out[i] = v
	}
	return out
}

// TestScoreMatchesStagedPath is the engine's ground truth: the fused
// score must match pca.Project followed by gmm.LogProb within 1e-12 on
// hundreds of held-out vectors (it is designed to be bit-identical).
func TestScoreMatchesStagedPath(t *testing.T) {
	p, g := synthModel(t, 96, 6, 4, 1)
	eng, err := score.New(p, g)
	if err != nil {
		t.Fatal(err)
	}
	s := eng.NewScorer()
	vecs := randomVecs(600, 96, 2)
	exact := 0
	for i, v := range vecs {
		w, err := p.Project(v)
		if err != nil {
			t.Fatal(err)
		}
		want, err := g.LogProb(w)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Score(v)
		if err != nil {
			t.Fatal(err)
		}
		if !mat.EqTol(got, want, 1e-12) {
			t.Fatalf("vector %d: fused %v, staged %v", i, got, want)
		}
		if math.Float64bits(got) == math.Float64bits(want) {
			exact++
		}
	}
	// The kernels reproduce the staged arithmetic operation for
	// operation; hold them to bit-identity, not just tolerance.
	if exact != len(vecs) {
		t.Errorf("only %d/%d scores bit-identical to the staged path", exact, len(vecs))
	}
}

// TestScoreBatchMatchesSingle pins the blocked batch kernel to the
// single-vector kernel for every batch-size remainder mod 4.
func TestScoreBatchMatchesSingle(t *testing.T) {
	p, g := synthModel(t, 64, 5, 3, 3)
	eng, err := score.New(p, g)
	if err != nil {
		t.Fatal(err)
	}
	s := eng.NewScorer()
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 64, 65} {
		vecs := randomVecs(n, 64, int64(10+n))
		dst := make([]float64, n)
		if err := s.ScoreBatch(dst, vecs); err != nil {
			t.Fatal(err)
		}
		for i, v := range vecs {
			want, err := s.Score(v)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(dst[i]) != math.Float64bits(want) {
				t.Fatalf("batch %d, vector %d: batch %v, single %v", n, i, dst[i], want)
			}
		}
	}
}

// TestScorerZeroAlloc pins the steady-state allocation contract of both
// entry points.
func TestScorerZeroAlloc(t *testing.T) {
	p, g := synthModel(t, 128, 8, 5, 4)
	eng, err := score.New(p, g)
	if err != nil {
		t.Fatal(err)
	}
	s := eng.NewScorer()
	v := randomVecs(1, 128, 5)[0]
	if _, err := s.Score(v); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := s.Score(v); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("Score allocates %.1f/op, want 0", n)
	}

	const b = 64
	vecs := randomVecs(b, 128, 6)
	dst := make([]float64, b)
	if err := s.ScoreBatch(dst, vecs); err != nil {
		t.Fatal(err) // warm-up grows the batch scratch once
	}
	if n := testing.AllocsPerRun(50, func() {
		if err := s.ScoreBatch(dst, vecs); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("ScoreBatch allocates %.1f per batch, want 0", n)
	}
}

// TestEngineValidation covers construction and shape errors.
func TestEngineValidation(t *testing.T) {
	p, g := synthModel(t, 32, 4, 2, 7)
	if _, err := score.New(nil, g); !errors.Is(err, score.ErrModel) {
		t.Errorf("nil pca: %v", err)
	}
	if _, err := score.New(p, nil); !errors.Is(err, score.ErrModel) {
		t.Errorf("nil gmm: %v", err)
	}
	_, gBad := synthModel(t, 32, 3, 2, 8) // mixture dim 3 != basis L'=4
	if _, err := score.New(p, gBad); !errors.Is(err, score.ErrModel) {
		t.Errorf("dim mismatch: %v", err)
	}

	eng, err := score.New(p, g)
	if err != nil {
		t.Fatal(err)
	}
	if l, lp := eng.Dim(); l != 32 || lp != 4 {
		t.Errorf("Dim = (%d, %d)", l, lp)
	}
	if eng.Components() != 2 {
		t.Errorf("Components = %d", eng.Components())
	}
	s := eng.NewScorer()
	if _, err := s.Score(make([]float64, 31)); !errors.Is(err, score.ErrModel) {
		t.Errorf("short vector: %v", err)
	}
	if _, err := s.ScoreReduced(make([]float64, 5)); !errors.Is(err, score.ErrModel) {
		t.Errorf("long reduced: %v", err)
	}
	if err := s.ScoreBatch(make([]float64, 2), randomVecs(3, 32, 9)); !errors.Is(err, score.ErrModel) {
		t.Errorf("dst mismatch: %v", err)
	}
	if err := s.ScoreBatch(make([]float64, 1), [][]float64{make([]float64, 30)}); !errors.Is(err, score.ErrModel) {
		t.Errorf("bad batch vector: %v", err)
	}
}

// TestZeroWeightComponents: components the mixture would skip are
// dropped at construction; an all-dead mixture scores −Inf like LogProb.
func TestZeroWeightComponents(t *testing.T) {
	p, g := synthModel(t, 32, 4, 3, 11)
	g.Components[1].Weight = 0
	eng, err := score.New(p, g)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Components() != 2 {
		t.Fatalf("Components = %d, want 2", eng.Components())
	}
	s := eng.NewScorer()
	v := randomVecs(1, 32, 12)[0]
	w, _ := p.Project(v)
	want, err := g.LogProb(w)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Score(v)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("partial mixture: fused %v, staged %v", got, want)
	}

	for i := range g.Components {
		g.Components[i].Weight = 0
	}
	dead, err := score.New(p, g)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := dead.NewScorer().Score(v)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(lp, -1) {
		t.Errorf("dead mixture scored %v, want -Inf", lp)
	}
}
