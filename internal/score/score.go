// Package score is the fused, allocation-free scoring engine for the
// per-interval classification the paper budgets in §5.4: eigenmemory
// projection (Eq. 1) plus mixture log-density (Eq. 2) in one pass over
// preallocated, cache-friendly storage.
//
// Layout: the eigenmemory basis is flattened into one contiguous
// row-major L'×L panel (row j = u_jᵀ), so the projection is L' dot
// products over sequential memory; each mixture component carries its
// precomputed log-weight, Cholesky factor (flattened lower-triangular,
// row-major) and log-determinant, so the density needs only a forward
// substitution and a log-sum-exp — no per-call slices anywhere.
//
// The arithmetic reproduces pca.Model.Project followed by
// gmm.Model.LogProb operation for operation (same accumulation order,
// same constant folding), so fused scores are bit-identical to the
// staged path.
//
// Concurrency: an Engine is immutable after construction and shared
// freely; a Scorer owns scratch and serves one goroutine at a time.
// Give each worker its own Scorer via Engine.NewScorer.
package score

import (
	"errors"
	"fmt"
	"math"

	"github.com/memheatmap/mhm/internal/gmm"
	"github.com/memheatmap/mhm/internal/mat"
	"github.com/memheatmap/mhm/internal/pca"
)

// ErrModel wraps engine construction failures and shape mismatches.
var ErrModel = errors.New("score: invalid model")

const log2Pi = 1.8378770664093453 // ln(2π), as in gmm

// component is one Gaussian with everything the scoring kernel needs
// precomputed and flattened.
type component struct {
	mean []float64 // µ_j, length L'
	chol []float64 // lower-triangular Cholesky factor, row-major L'×L'
	logW float64   // ln λ_j
	base float64   // L'·ln(2π) + ln det Σ_j
}

// Engine holds the fused model: immutable after construction, safe to
// share across any number of Scorers.
type Engine struct {
	l, lp   int
	panel   []float64 // L'×L row-major: row j is eigenmemory u_jᵀ
	meanOff []float64 // u_jᵀΨ, length L'
	comps   []component
}

// New fuses a trained eigenmemory basis and mixture into an Engine. The
// mixture must be trained on the basis's L'-dimensional weights.
// Components with non-positive weight are dropped, exactly as LogProb
// skips them.
func New(p *pca.Model, g *gmm.Model) (*Engine, error) {
	if p == nil || g == nil {
		return nil, fmt.Errorf("score: nil model: %w", ErrModel)
	}
	l, lp := p.Dim()
	if d := g.Dim(); d != lp {
		return nil, fmt.Errorf("score: mixture dimension %d, eigenmemories %d: %w", d, lp, ErrModel)
	}
	e := &Engine{
		l:       l,
		lp:      lp,
		panel:   make([]float64, lp*l),
		meanOff: make([]float64, lp),
	}
	// Flatten uᵀ row-major and precompute the mean offsets with the same
	// dot-product order pca.Model.prepare uses.
	for j := 0; j < lp; j++ {
		row := e.panel[j*l : (j+1)*l]
		for i := 0; i < l; i++ {
			row[i] = p.Components.At(i, j)
		}
		e.meanOff[j] = mat.Dot(row, p.Mean)
	}
	for ci := range g.Components {
		c := &g.Components[ci]
		if c.Weight <= 0 {
			continue
		}
		if len(c.Mean) != lp || c.Cov.Rows() != lp || c.Cov.Cols() != lp {
			return nil, fmt.Errorf("score: component %d shape: %w", ci, ErrModel)
		}
		ch, err := mat.NewCholesky(c.Cov)
		if err != nil {
			return nil, fmt.Errorf("score: component %d: %w", ci, err)
		}
		fc := component{
			mean: append([]float64(nil), c.Mean...),
			chol: make([]float64, lp*lp),
			logW: math.Log(c.Weight),
			base: float64(lp)*log2Pi + ch.LogDet(),
		}
		lo := ch.L()
		for i := 0; i < lp; i++ {
			copy(fc.chol[i*lp:(i+1)*lp], lo.Row(i))
		}
		e.comps = append(e.comps, fc)
	}
	return e, nil
}

// Dim returns (L, L').
func (e *Engine) Dim() (int, int) { return e.l, e.lp }

// Components returns the number of active (positive-weight) Gaussians.
func (e *Engine) Components() int { return len(e.comps) }

// Scorer is a per-worker handle: the shared Engine plus private scratch.
// Not safe for concurrent use; create one per goroutine.
type Scorer struct {
	e     *Engine
	w     []float64 // reduced vector, length L'
	y     []float64 // triangular-solve scratch, length L'
	terms []float64 // per-component log terms, length J
	wb    []float64 // batch panel output, grown to B·L' on demand
	pk    []float64 // column-major packed tile, 8·min(L, tileI) once batching
	acc   []float64 // per-row, per-lane batch accumulators, 8·L'
	prow  []float64 // two gathered panel-row tiles, 2·min(L, tileI)
	ridx  []int32   // retained column indices of the current tile
	sv    []float64 // widened sparse cell values, grown to NNZ on demand
}

// NewScorer returns a Scorer over e with its own scratch.
func (e *Engine) NewScorer() *Scorer {
	return &Scorer{
		e:     e,
		w:     make([]float64, e.lp),
		y:     make([]float64, e.lp),
		terms: make([]float64, len(e.comps)),
	}
}

// Engine returns the shared immutable engine.
func (s *Scorer) Engine() *Engine { return s.e }

// Score returns the mixture log density of one MHM vector (length L).
// Zero allocations in steady state.
//
//mhm:deterministic
func (s *Scorer) Score(v []float64) (float64, error) {
	if len(v) != s.e.l {
		return 0, fmt.Errorf("score: vector length %d, want %d: %w", len(v), s.e.l, ErrModel)
	}
	s.e.projectInto(s.w, v)
	return s.e.mixKernel(s.w, s.y, s.terms), nil
}

// ScoreReduced scores an already-projected L'-dimensional weight vector.
//
//mhm:deterministic
func (s *Scorer) ScoreReduced(w []float64) (float64, error) {
	if len(w) != s.e.lp {
		return 0, fmt.Errorf("score: reduced length %d, want %d: %w", len(w), s.e.lp, ErrModel)
	}
	return s.e.mixKernel(w, s.y, s.terms), nil
}

// ScoreBatch scores B vectors into dst (len(dst) == len(vecs)). The
// projection runs as a packed, L1-tiled panel product — eight vectors
// share each panel-row sweep (one SIMD lane apiece on amd64), amortizing
// the eigenmemory traffic the way §5.4's analysis cost scales with
// batched intervals. After scratch has grown to the largest batch seen,
// the per-item cost is allocation-free. Scores are bit-identical to
// Score called per vector.
//
//mhm:deterministic
func (s *Scorer) ScoreBatch(dst []float64, vecs [][]float64) error {
	if len(dst) != len(vecs) {
		return fmt.Errorf("score: dst length %d for %d vectors: %w", len(dst), len(vecs), ErrModel)
	}
	for b, v := range vecs {
		if len(v) != s.e.l {
			return fmt.Errorf("score: vector %d length %d, want %d: %w", b, len(v), s.e.l, ErrModel)
		}
	}
	need := len(vecs) * s.e.lp
	if cap(s.wb) < need {
		s.wb = make([]float64, need)
	}
	if len(vecs) >= 8 && len(s.pk) == 0 {
		t := s.e.l
		if t > tileI {
			t = tileI
		}
		s.pk = make([]float64, 8*t)
		s.acc = make([]float64, 8*s.e.lp)
		s.prow = make([]float64, 2*tileI)
		s.ridx = make([]int32, t)
	}
	wb := s.wb[:need]
	s.e.projectBatchInto(wb, s.pk, s.prow, s.acc, s.ridx, vecs)
	for b := range vecs {
		dst[b] = s.e.mixKernel(wb[b*s.e.lp:(b+1)*s.e.lp], s.y, s.terms)
	}
	return nil
}

// ScoreSparse scores one interval given only its occupied cells, as
// run-length coordinates: run r covers cells starts[r] through
// starts[r]+lens[r]-1 and counts carries the cell counts in run
// order (Σ lens[r] == len(counts)). Runs must be in ascending cell
// order and non-overlapping, within [0, L). The result is
// bit-identical to Score on the densified vector, and the projection
// touches only the occupied cells — this is the scoring half of the
// fused zero-copy ingest→snoop→score path. Allocation-free once sv
// has grown to the largest NNZ seen.
//
//mhm:deterministic
func (s *Scorer) ScoreSparse(starts, lens []int32, counts []uint32) (float64, error) {
	if len(starts) != len(lens) {
		return 0, fmt.Errorf("score: %d run starts, %d run lengths: %w", len(starts), len(lens), ErrModel)
	}
	nnz := 0
	prev := int32(0)
	for r, st := range starts {
		if st < prev || lens[r] <= 0 || int(st)+int(lens[r]) > s.e.l {
			return 0, fmt.Errorf("score: run %d [%d,+%d) invalid for %d cells: %w",
				r, st, lens[r], s.e.l, ErrModel)
		}
		prev = st + lens[r]
		nnz += int(lens[r])
	}
	if nnz != len(counts) {
		return 0, fmt.Errorf("score: runs cover %d cells, %d counts: %w", nnz, len(counts), ErrModel)
	}
	if cap(s.sv) < nnz {
		s.sv = make([]float64, nnz)
	}
	sv := s.sv[:nnz]
	for i, c := range counts {
		sv[i] = float64(c)
	}
	s.e.projectSparse(s.w, sv, starts, lens)
	return s.e.mixKernel(s.w, s.y, s.terms), nil
}
