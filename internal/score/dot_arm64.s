// NEON micro-kernel for the batched eigenmemory projection. The Go
// arm64 assembler has no mnemonics for the unfused two-double vector
// FMUL/FADD, so those two instructions are emitted as WORD-encoded
// machine code (encodings verified against `go tool objdump`, which
// round-trips them back to FMUL/FADD V*.D2). FMLA is deliberately not
// used: fusing the multiply-add would change rounding and break the
// bit-identity contract the detorder analyzer enforces.

#include "textflag.h"

// func dotPacked8NEON(row, packed []float64, out *[8]float64)
TEXT ·dotPacked8NEON(SB), NOSPLIT, $0-56
	MOVD row_base+0(FP), R0
	MOVD row_len+8(FP), R1
	MOVD packed_base+24(FP), R2
	MOVD out+48(FP), R3

	// Running lane accumulators: V0 = lanes 0,1 ... V3 = lanes 6,7.
	VLD1 (R3), [V0.D2, V1.D2, V2.D2, V3.D2]

	CBZ R1, done

loop:
	// Broadcast row[i] into both halves of V8.
	FMOVD (R0), F8
	VDUP  V8.D[0], V8.D2

	VLD1.P 64(R2), [V9.D2, V10.D2, V11.D2, V12.D2]
	WORD   $0x6E68DD29 // FMUL V9.2D, V9.2D, V8.2D
	WORD   $0x4E69D400 // FADD V0.2D, V0.2D, V9.2D
	WORD   $0x6E68DD4A // FMUL V10.2D, V10.2D, V8.2D
	WORD   $0x4E6AD421 // FADD V1.2D, V1.2D, V10.2D
	WORD   $0x6E68DD6B // FMUL V11.2D, V11.2D, V8.2D
	WORD   $0x4E6BD442 // FADD V2.2D, V2.2D, V11.2D
	WORD   $0x6E68DD8C // FMUL V12.2D, V12.2D, V8.2D
	WORD   $0x4E6CD463 // FADD V3.2D, V3.2D, V12.2D

	ADD  $8, R0
	SUB  $1, R1
	CBNZ R1, loop

done:
	VST1 [V0.D2, V1.D2, V2.D2, V3.D2], (R3)
	RET
