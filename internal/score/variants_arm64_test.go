package score

import "github.com/memheatmap/mhm/internal/cpufeat"

// kernelVariants lists every kernel configuration this arm64 host can
// execute: the portable reference and, unless GODEBUG masked ASIMD, the
// NEON kernel.
func kernelVariants() []kernelVariant {
	vs := []kernelVariant{{name: "go", dot: dotPacked8Ref}}
	if cpufeat.ARM64.HasASIMD {
		vs = append(vs, kernelVariant{name: "neon", dot: dotPacked8NEON})
	}
	return vs
}
