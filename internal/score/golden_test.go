package score_test

import (
	"math"
	"testing"

	"github.com/memheatmap/mhm/internal/score"
)

// TestGoldenScores pins twelve exact score bit patterns for a
// deterministic synthetic model. Because every dispatchable kernel is
// bit-identical to the portable reference (the kernel identity tests
// and FuzzProjectBatchAcrossKernels), these values must hold on every
// architecture and under every GODEBUG cpu mask — any drift means the
// arithmetic contract (per-lane multiply-then-add in ascending index
// order, no FMA) was broken somewhere.
func TestGoldenScores(t *testing.T) {
	golden := []uint64{
		0xc077d24ce8c93330, // -381.14377668946963
		0xc0c4985708291ba1, // -10544.679936541072
		0xc0b61f2f6fdab76b, // -5663.185300512104
		0xc0e198c53cc9bad7, // -36038.163670411035
		0xc0f7835b4426f3e8, // -96309.70413871075
		0xc0f981db8d20be43, // -104477.72195505448
		0xc120d29ef8628ba0, // -551247.4851268418
		0xc093202ee2a4d380, // -1224.0457864526834
		0xc0a5725619ec5ead, // -2745.168166529233
		0xc0c5c5b72aac9d52, // -11147.430989815537
		0xc0e1b368d63bf184, // -36251.276151630125
		0xc0f0eef04681202a, // -69359.01721298756
	}
	p, g := synthModel(t, 96, 5, 3, 42)
	eng, err := score.New(p, g)
	if err != nil {
		t.Fatal(err)
	}
	sc := eng.NewScorer()
	vecs := randomVecs(len(golden), 96, 43)

	// Batch path (the kernel-dispatched panel product).
	dst := make([]float64, len(vecs))
	if err := sc.ScoreBatch(dst, vecs); err != nil {
		t.Fatal(err)
	}
	for i, d := range dst {
		if math.Float64bits(d) != golden[i] {
			t.Errorf("batch score %d = %v (bits %#016x), golden %#016x [kernel %s]",
				i, d, math.Float64bits(d), golden[i], score.Kernel())
		}
	}

	// Single-vector path must land on the same bits.
	for i, v := range vecs {
		d, err := sc.Score(v)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(d) != golden[i] {
			t.Errorf("single score %d = %v (bits %#016x), golden %#016x [kernel %s]",
				i, d, math.Float64bits(d), golden[i], score.Kernel())
		}
	}
}
