package score

// dotPacked8Ref accumulates eight dot products against one panel-row
// tile over a column-major packed block: out[k] += Σ_i row[i]·packed[i*8+k].
// Portable reference implementation, compiled on every architecture:
// it anchors the cross-kernel bit-identity fuzz and serves as the
// dispatch fallback when no SIMD kernel applies. The eight independent
// accumulators each sum in ascending index order, so chaining them
// across tiles stays bit-identical to mat.Dot.
//
//mhm:hotpath
func dotPacked8Ref(row, packed []float64, out *[8]float64) {
	s0, s1, s2, s3 := out[0], out[1], out[2], out[3]
	s4, s5, s6, s7 := out[4], out[5], out[6], out[7]
	for i, x := range row {
		p := packed[i*8 : i*8+8]
		s0 += x * p[0]
		s1 += x * p[1]
		s2 += x * p[2]
		s3 += x * p[3]
		s4 += x * p[4]
		s5 += x * p[5]
		s6 += x * p[6]
		s7 += x * p[7]
	}
	out[0], out[1], out[2], out[3] = s0, s1, s2, s3
	out[4], out[5], out[6], out[7] = s4, s5, s6, s7
}
