// SSE2 micro-kernel for the batched eigenmemory projection: eight
// packed dot-product accumulations against one panel-row tile, one
// vector per SIMD lane. Lane k adds row[i]*packed[i*8+k] onto out[k] in
// ascending i with separate multiply and add (no FMA), so a lane's
// accumulator chained across tiles is bit-identical to the scalar loop
// in mat.Dot. SSE2 is the amd64 baseline; no CPU feature detection is
// required.

#include "textflag.h"

// func dotPacked8(row, packed []float64, out *[8]float64)
TEXT ·dotPacked8(SB), NOSPLIT, $0-56
	MOVQ row_base+0(FP), SI
	MOVQ row_len+8(FP), CX
	MOVQ packed_base+24(FP), DI
	MOVQ out+48(FP), DX

	// Running lane accumulators: X0 = lanes 0,1 ... X3 = lanes 6,7.
	MOVUPS (DX), X0
	MOVUPS 16(DX), X1
	MOVUPS 32(DX), X2
	MOVUPS 48(DX), X3

	TESTQ CX, CX
	JZ    done

loop:
	// Broadcast row[i] into both halves of X4.
	MOVSD    (SI), X4
	UNPCKLPD X4, X4

	MOVUPS (DI), X5
	MULPD  X4, X5
	ADDPD  X5, X0
	MOVUPS 16(DI), X6
	MULPD  X4, X6
	ADDPD  X6, X1
	MOVUPS 32(DI), X7
	MULPD  X4, X7
	ADDPD  X7, X2
	MOVUPS 48(DI), X8
	MULPD  X4, X8
	ADDPD  X8, X3

	ADDQ $8, SI
	ADDQ $64, DI
	DECQ CX
	JNZ  loop

done:
	MOVUPS X0, (DX)
	MOVUPS X1, 16(DX)
	MOVUPS X2, 32(DX)
	MOVUPS X3, 48(DX)
	RET
