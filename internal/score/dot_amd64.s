// SIMD micro-kernels for the batched eigenmemory projection: packed
// dot-product accumulations against panel-row tiles, one vector per
// SIMD lane. Every kernel adds row[i]*packed[i*8+k] onto out[k] in
// ascending i with separate multiply and add (no FMA), so a lane's
// accumulator chained across tiles is bit-identical to the scalar loop
// in mat.Dot. SSE2 is the amd64 baseline; the AVX2 kernels are bound
// by internal/cpufeat dispatch only when the CPU and OS support them.

#include "textflag.h"

// func dotPacked8SSE2(row, packed []float64, out *[8]float64)
TEXT ·dotPacked8SSE2(SB), NOSPLIT, $0-56
	MOVQ row_base+0(FP), SI
	MOVQ row_len+8(FP), CX
	MOVQ packed_base+24(FP), DI
	MOVQ out+48(FP), DX

	// Running lane accumulators: X0 = lanes 0,1 ... X3 = lanes 6,7.
	MOVUPS (DX), X0
	MOVUPS 16(DX), X1
	MOVUPS 32(DX), X2
	MOVUPS 48(DX), X3

	TESTQ CX, CX
	JZ    done

loop:
	// Broadcast row[i] into both halves of X4.
	MOVSD    (SI), X4
	UNPCKLPD X4, X4

	MOVUPS (DI), X5
	MULPD  X4, X5
	ADDPD  X5, X0
	MOVUPS 16(DI), X6
	MULPD  X4, X6
	ADDPD  X6, X1
	MOVUPS 32(DI), X7
	MULPD  X4, X7
	ADDPD  X7, X2
	MOVUPS 48(DI), X8
	MULPD  X4, X8
	ADDPD  X8, X3

	ADDQ $8, SI
	ADDQ $64, DI
	DECQ CX
	JNZ  loop

done:
	MOVUPS X0, (DX)
	MOVUPS X1, 16(DX)
	MOVUPS X2, 32(DX)
	MOVUPS X3, 48(DX)
	RET

// func dotPacked8AVX2(row, packed []float64, out *[8]float64)
//
// Two YMM accumulators: Y0 = lanes 0..3, Y1 = lanes 4..7. Per i: one
// VBROADCASTSD, two VMULPD, two VADDPD — halving the instruction count
// of the SSE2 loop while keeping each lane's multiply-then-add order.
TEXT ·dotPacked8AVX2(SB), NOSPLIT, $0-56
	MOVQ row_base+0(FP), SI
	MOVQ row_len+8(FP), CX
	MOVQ packed_base+24(FP), DI
	MOVQ out+48(FP), DX

	VMOVUPD (DX), Y0
	VMOVUPD 32(DX), Y1

	TESTQ CX, CX
	JZ    done

loop:
	VBROADCASTSD (SI), Y4

	VMULPD (DI), Y4, Y5
	VADDPD Y5, Y0, Y0
	VMULPD 32(DI), Y4, Y6
	VADDPD Y6, Y1, Y1

	ADDQ $8, SI
	ADDQ $64, DI
	DECQ CX
	JNZ  loop

done:
	VMOVUPD Y0, (DX)
	VMOVUPD Y1, 32(DX)
	VZEROUPPER
	RET

// func colMask64AVX2(v0, v1, v2, v3, v4, v5, v6, v7 []float64, i int) uint64
//
// Occupancy scan for the zero-column compaction: bit c of the result
// is set iff any lane has a value other than ±0.0 at column i+c.
// Sixteen groups of four columns each: an 8-way VPOR tree collapses
// the lanes, VPSLLQ drops the sign bits, and VPCMPEQQ against zero
// plus VMOVMSKPD yields the per-column zero bits, inverted and folded
// into the mask from the top (the accumulator shifts right 4 per
// group, so group g lands at bits 4g..4g+3).
TEXT ·colMask64AVX2(SB), NOSPLIT, $0-208
	MOVQ v0_base+0(FP), SI
	MOVQ v1_base+24(FP), DI
	MOVQ v2_base+48(FP), R8
	MOVQ v3_base+72(FP), R9
	MOVQ v4_base+96(FP), R10
	MOVQ v5_base+120(FP), R11
	MOVQ v6_base+144(FP), R12
	MOVQ v7_base+168(FP), R13
	MOVQ i+192(FP), AX

	VPXOR Y12, Y12, Y12
	XORQ  R15, R15
	MOVQ  $16, CX

group:
	VMOVUPD (SI)(AX*8), Y0
	VPOR    (DI)(AX*8), Y0, Y0
	VPOR    (R8)(AX*8), Y0, Y0
	VPOR    (R9)(AX*8), Y0, Y0
	VPOR    (R10)(AX*8), Y0, Y0
	VPOR    (R11)(AX*8), Y0, Y0
	VPOR    (R12)(AX*8), Y0, Y0
	VPOR    (R13)(AX*8), Y0, Y0
	VPSLLQ  $1, Y0, Y0
	VPCMPEQQ Y12, Y0, Y0
	VMOVMSKPD Y0, DX
	NOTL    DX
	ANDQ    $0xF, DX
	SHRQ    $4, R15
	SHLQ    $60, DX
	ORQ     DX, R15
	ADDQ    $4, AX
	DECQ    CX
	JNZ     group

	MOVQ R15, ret+200(FP)
	VZEROUPPER
	RET

// func dotPacked8x2AVX2(row0, row1, packed []float64, out0, out1 *[8]float64)
//
// Fused two-row kernel: Y0/Y1 accumulate row0's lanes, Y2/Y3 row1's.
// The single-row loop is bound by the 4-cycle VADDPD dependency chain
// (one add per chain per i); serving two rows from the same resident
// tile gives four independent chains and exactly fills the multiply
// and add ports. Requires len(row1) == len(row0).
TEXT ·dotPacked8x2AVX2(SB), NOSPLIT, $0-88
	MOVQ row0_base+0(FP), SI
	MOVQ row0_len+8(FP), CX
	MOVQ row1_base+24(FP), BX
	MOVQ packed_base+48(FP), DI
	MOVQ out0+72(FP), DX
	MOVQ out1+80(FP), R8

	VMOVUPD (DX), Y0
	VMOVUPD 32(DX), Y1
	VMOVUPD (R8), Y2
	VMOVUPD 32(R8), Y3

	TESTQ CX, CX
	JZ    done

loop:
	VBROADCASTSD (SI), Y4
	VBROADCASTSD (BX), Y5
	VMOVUPD      (DI), Y6
	VMOVUPD      32(DI), Y8

	VMULPD Y6, Y4, Y7
	VADDPD Y7, Y0, Y0
	VMULPD Y8, Y4, Y9
	VADDPD Y9, Y1, Y1
	VMULPD Y6, Y5, Y7
	VADDPD Y7, Y2, Y2
	VMULPD Y8, Y5, Y9
	VADDPD Y9, Y3, Y3

	ADDQ $8, SI
	ADDQ $8, BX
	ADDQ $64, DI
	DECQ CX
	JNZ  loop

done:
	VMOVUPD Y0, (DX)
	VMOVUPD Y1, 32(DX)
	VMOVUPD Y2, (R8)
	VMOVUPD Y3, 32(R8)
	VZEROUPPER
	RET
