package heatmap

import (
	"math"
	"math/rand"
	"testing"
)

func testDef(t *testing.T) Def {
	t.Helper()
	return Def{AddrBase: 0x1000, Size: 64 * 64, Gran: 64} // 64 cells
}

func TestSparsifyDenseRoundTrip(t *testing.T) {
	d := testDef(t)
	h, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	h.Start, h.End = 100, 200
	for _, c := range []struct {
		idx   int
		count uint32
	}{{0, 3}, {1, 9}, {5, 1}, {6, 2}, {7, 4}, {63, math.MaxUint32}} {
		h.Counts[c.idx] = c.count
	}

	sp := h.Sparsify(nil)
	if err := sp.Validate(); err != nil {
		t.Fatalf("Sparsify produced invalid runs: %v", err)
	}
	if got, want := len(sp.RunStart), 3; got != want {
		t.Errorf("runs = %d, want %d (cells 0-1, 5-7, 63)", got, want)
	}
	if sp.NNZ() != 6 {
		t.Errorf("NNZ = %d, want 6", sp.NNZ())
	}
	if sp.Total() != h.Total() {
		t.Errorf("Total = %d, want %d", sp.Total(), h.Total())
	}
	if sp.Start != 100 || sp.End != 200 {
		t.Errorf("interval = [%d,%d], want [100,200]", sp.Start, sp.End)
	}

	back := sp.Dense(nil)
	if back.Def != h.Def || back.Start != h.Start || back.End != h.End {
		t.Errorf("Dense header = %+v [%d,%d]", back.Def, back.Start, back.End)
	}
	for i, c := range h.Counts {
		if back.Counts[i] != c {
			t.Fatalf("cell %d: round-trip %d, want %d", i, back.Counts[i], c)
		}
	}
}

func TestSparseVectorIntoMatchesDense(t *testing.T) {
	d := testDef(t)
	h, _ := New(d)
	rng := rand.New(rand.NewSource(7))
	for i := range h.Counts {
		if rng.Intn(4) == 0 {
			h.Counts[i] = uint32(rng.Intn(1000))
		}
	}
	sp := h.Sparsify(nil)
	dv := make([]float64, d.Cells())
	sv := make([]float64, d.Cells())
	// Dirty sv to prove VectorInto clears stale cells.
	for i := range sv {
		sv[i] = -1
	}
	h.VectorInto(dv)
	sp.VectorInto(sv)
	for i := range dv {
		if dv[i] != sv[i] {
			t.Fatalf("cell %d: sparse %v, dense %v", i, sv[i], dv[i])
		}
	}
}

func TestSparsifyReusesBacking(t *testing.T) {
	d := testDef(t)
	h, _ := New(d)
	for i := 0; i < len(h.Counts); i += 3 {
		h.Counts[i] = uint32(i + 1)
	}
	sp := h.Sparsify(nil)
	allocs := testing.AllocsPerRun(100, func() {
		h.Sparsify(sp)
	})
	if allocs != 0 {
		t.Errorf("Sparsify into warm dst allocates %.1f times, want 0", allocs)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSparseEdgeShapes(t *testing.T) {
	d := testDef(t)
	h, _ := New(d)

	// All-empty map: zero runs, and Dense of it is all zeros.
	sp := h.Sparsify(nil)
	if len(sp.RunStart) != 0 || sp.NNZ() != 0 {
		t.Fatalf("empty map produced runs %v", sp.RunStart)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	back := sp.Dense(nil)
	for i, c := range back.Counts {
		if c != 0 {
			t.Fatalf("cell %d nonzero after empty round-trip", i)
		}
	}

	// Fully-occupied map: exactly one run spanning the region.
	for i := range h.Counts {
		h.Counts[i] = 1
	}
	sp = h.Sparsify(sp)
	if len(sp.RunStart) != 1 || int(sp.RunLen[0]) != d.Cells() {
		t.Fatalf("full map runs = %v/%v, want one full-span run", sp.RunStart, sp.RunLen)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSparseAddMatchesDenseAdd(t *testing.T) {
	d := testDef(t)
	a, _ := New(d)
	b, _ := New(d)
	a.Counts[3] = math.MaxUint32 - 1
	a.Counts[10] = 7
	b.Counts[3] = 5 // saturates
	b.Counts[11] = 2
	sp := b.Sparsify(nil)

	wantDst := a.Clone()
	if err := wantDst.Add(b); err != nil {
		t.Fatal(err)
	}
	if err := sp.Add(a); err != nil {
		t.Fatal(err)
	}
	for i := range a.Counts {
		if a.Counts[i] != wantDst.Counts[i] {
			t.Fatalf("cell %d: sparse add %d, dense add %d", i, a.Counts[i], wantDst.Counts[i])
		}
	}
}

func TestSparseValidateRejects(t *testing.T) {
	d := testDef(t)
	mk := func(mut func(*Sparse)) *Sparse {
		h, _ := New(d)
		h.Counts[2], h.Counts[3], h.Counts[9] = 1, 2, 3
		sp := h.Sparsify(nil)
		mut(sp)
		return sp
	}
	cases := map[string]*Sparse{
		"zero count":      mk(func(s *Sparse) { s.Counts[0] = 0 }),
		"length mismatch": mk(func(s *Sparse) { s.RunLen = s.RunLen[:1] }),
		"overlapping":     mk(func(s *Sparse) { s.RunStart[1] = s.RunStart[0] }),
		"adjacent runs":   mk(func(s *Sparse) { s.RunStart[1] = s.RunStart[0] + s.RunLen[0] }),
		"negative length": mk(func(s *Sparse) { s.RunLen[0] = -1 }),
		"past region":     mk(func(s *Sparse) { s.RunStart[1] = int32(d.Cells()) }),
		"count shortfall": mk(func(s *Sparse) { s.Counts = s.Counts[:2] }),
	}
	for name, sp := range cases {
		if err := sp.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid sparse map", name)
		}
	}
}

func TestPackVectorsSparseMatchesPackVectors(t *testing.T) {
	d := testDef(t)
	rng := rand.New(rand.NewSource(11))
	var dense []*HeatMap
	var sparse []*Sparse
	for m := 0; m < 5; m++ {
		h, _ := New(d)
		for i := range h.Counts {
			if rng.Intn(5) == 0 {
				h.Counts[i] = uint32(rng.Intn(100) + 1)
			}
		}
		dense = append(dense, h)
		sparse = append(sparse, h.Sparsify(nil))
	}
	dv, err := PackVectors(dense)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := PackVectorsSparse(sparse)
	if err != nil {
		t.Fatal(err)
	}
	for m := range dv {
		for i := range dv[m] {
			if dv[m][i] != sv[m][i] {
				t.Fatalf("map %d cell %d: sparse %v, dense %v", m, i, sv[m][i], dv[m][i])
			}
		}
	}

	bad := sparse[0].Clone()
	bad.Def.Gran *= 2
	if _, err := PackVectorsSparse([]*Sparse{sparse[1], bad}); err == nil {
		t.Error("PackVectorsSparse accepted mismatched definitions")
	}
	if _, err := PackVectorsSparse(nil); err == nil {
		t.Error("PackVectorsSparse accepted an empty set")
	}
}

// FuzzSparseRoundTrip drives random dense maps through
// Sparsify → Validate → Dense and demands an exact count round-trip.
func FuzzSparseRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(16), uint8(30))
	f.Add(int64(2), uint8(1), uint8(0))
	f.Add(int64(3), uint8(255), uint8(100))
	f.Fuzz(func(t *testing.T, seed int64, ncells, density uint8) {
		cells := int(ncells)%256 + 1
		d := Def{AddrBase: 0, Size: uint64(cells) * 8, Gran: 8}
		h, err := New(d)
		if err != nil {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		for i := range h.Counts {
			if density > 0 && rng.Intn(256) < int(density) {
				h.Counts[i] = uint32(rng.Int63())
			}
		}
		sp := h.Sparsify(nil)
		if err := sp.Validate(); err != nil {
			t.Fatalf("invalid sparse form: %v", err)
		}
		if sp.Total() != h.Total() {
			t.Fatalf("Total %d != %d", sp.Total(), h.Total())
		}
		back := sp.Dense(nil)
		for i, c := range h.Counts {
			if back.Counts[i] != c {
				t.Fatalf("cell %d: round-trip %d, want %d", i, back.Counts[i], c)
			}
		}
	})
}
