package heatmap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ErrFormat is returned for malformed serialized heat maps.
var ErrFormat = errors.New("heatmap: malformed serialized heat map")

// serializedMagic frames the binary format; the version byte leaves room
// for evolution.
const (
	serializedMagic   = uint32(0x4d484d31) // "MHM1"
	serializedVersion = byte(1)
)

// WriteBinary serializes the heat map in a compact binary form:
// magic, version, definition, interval bounds, then the raw counters.
func (h *HeatMap) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var hdr [45]byte
	binary.LittleEndian.PutUint32(hdr[0:4], serializedMagic)
	hdr[4] = serializedVersion
	binary.LittleEndian.PutUint64(hdr[5:13], h.Def.AddrBase)
	binary.LittleEndian.PutUint64(hdr[13:21], h.Def.Size)
	binary.LittleEndian.PutUint64(hdr[21:29], h.Def.Gran)
	binary.LittleEndian.PutUint64(hdr[29:37], uint64(h.Start))
	binary.LittleEndian.PutUint64(hdr[37:45], uint64(h.End))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("heatmap: write header: %w", err)
	}
	var cell [4]byte
	for _, c := range h.Counts {
		binary.LittleEndian.PutUint32(cell[:], c)
		if _, err := bw.Write(cell[:]); err != nil {
			return fmt.Errorf("heatmap: write counts: %w", err)
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a heat map written by WriteBinary, validating
// the definition before allocating counters.
func ReadBinary(r io.Reader) (*HeatMap, error) {
	var hdr [45]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("heatmap: read header: %w", errors.Join(ErrFormat, err))
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != serializedMagic {
		return nil, fmt.Errorf("heatmap: bad magic: %w", ErrFormat)
	}
	if hdr[4] != serializedVersion {
		return nil, fmt.Errorf("heatmap: unsupported version %d: %w", hdr[4], ErrFormat)
	}
	def := Def{
		AddrBase: binary.LittleEndian.Uint64(hdr[5:13]),
		Size:     binary.LittleEndian.Uint64(hdr[13:21]),
		Gran:     binary.LittleEndian.Uint64(hdr[21:29]),
	}
	if err := def.Validate(); err != nil {
		return nil, fmt.Errorf("heatmap: serialized definition: %w", err)
	}
	h, err := New(def)
	if err != nil {
		return nil, err
	}
	h.Start = int64(binary.LittleEndian.Uint64(hdr[29:37]))
	h.End = int64(binary.LittleEndian.Uint64(hdr[37:45]))
	buf := make([]byte, 4*len(h.Counts))
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("heatmap: read counts: %w", errors.Join(ErrFormat, err))
	}
	for i := range h.Counts {
		h.Counts[i] = binary.LittleEndian.Uint32(buf[4*i : 4*i+4])
	}
	return h, nil
}

// WriteSeries serializes a sequence of heat maps: a count prefix then
// each map in binary form.
func WriteSeries(w io.Writer, maps []*HeatMap) error {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(maps)))
	if _, err := w.Write(n[:]); err != nil {
		return fmt.Errorf("heatmap: write series length: %w", err)
	}
	for i, m := range maps {
		if err := m.WriteBinary(w); err != nil {
			return fmt.Errorf("heatmap: series element %d: %w", i, err)
		}
	}
	return nil
}

// ReadSeries deserializes a sequence written by WriteSeries.
func ReadSeries(r io.Reader) ([]*HeatMap, error) {
	var n [8]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return nil, fmt.Errorf("heatmap: read series length: %w", errors.Join(ErrFormat, err))
	}
	count := binary.LittleEndian.Uint64(n[:])
	const maxSeries = 1 << 24 // guards against corrupt length prefixes
	if count > maxSeries {
		return nil, fmt.Errorf("heatmap: series length %d exceeds limit: %w", count, ErrFormat)
	}
	out := make([]*HeatMap, 0, count)
	for i := uint64(0); i < count; i++ {
		m, err := ReadBinary(r)
		if err != nil {
			return nil, fmt.Errorf("heatmap: series element %d: %w", i, err)
		}
		out = append(out, m)
	}
	return out, nil
}
