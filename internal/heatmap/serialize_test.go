package heatmap

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMap(rng *rand.Rand) *HeatMap {
	h, err := New(Def{AddrBase: 0xC0008000, Size: 0x8000, Gran: 0x400})
	if err != nil {
		panic(err)
	}
	h.Start = rng.Int63n(1 << 40)
	h.End = h.Start + 10000
	for i := range h.Counts {
		h.Counts[i] = rng.Uint32() >> uint(rng.Intn(20))
	}
	return h
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := randomMap(rng)
	var buf bytes.Buffer
	if err := h.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Def != h.Def || got.Start != h.Start || got.End != h.End {
		t.Errorf("metadata changed: %+v vs %+v", got, h)
	}
	if d, err := got.L1Distance(h); err != nil || d != 0 {
		t.Errorf("counts changed: d=%d err=%v", d, err)
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomMap(rng)
		var buf bytes.Buffer
		if h.WriteBinary(&buf) != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		d, err := got.L1Distance(h)
		return err == nil && d == 0 && got.Start == h.Start && got.End == h.End
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		bytes.Repeat([]byte{0xFF}, 45),
	}
	for i, c := range cases {
		if _, err := ReadBinary(bytes.NewReader(c)); !errors.Is(err, ErrFormat) {
			t.Errorf("case %d: %v", i, err)
		}
	}
}

func TestReadBinaryRejectsWrongVersion(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h := randomMap(rng)
	var buf bytes.Buffer
	if err := h.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 99 // version byte
	if _, err := ReadBinary(bytes.NewReader(b)); !errors.Is(err, ErrFormat) {
		t.Errorf("wrong version: %v", err)
	}
}

func TestReadBinaryRejectsBadDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := randomMap(rng)
	var buf bytes.Buffer
	if err := h.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Corrupt the granularity to a non-power-of-two.
	b[21] = 3
	b[22] = 0
	if _, err := ReadBinary(bytes.NewReader(b)); !errors.Is(err, ErrConfig) {
		t.Errorf("bad definition: %v", err)
	}
}

func TestReadBinaryTruncatedCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h := randomMap(rng)
	var buf bytes.Buffer
	if err := h.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(b[:len(b)-7])); !errors.Is(err, ErrFormat) {
		t.Errorf("truncated counts: %v", err)
	}
}

func TestSeriesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	maps := []*HeatMap{randomMap(rng), randomMap(rng), randomMap(rng)}
	var buf bytes.Buffer
	if err := WriteSeries(&buf, maps); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSeries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("series length %d", len(got))
	}
	for i := range maps {
		if d, _ := got[i].L1Distance(maps[i]); d != 0 {
			t.Errorf("element %d changed", i)
		}
	}
}

func TestEmptySeriesRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSeries(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSeries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty series yielded %d maps", len(got))
	}
}

func TestReadSeriesRejectsHugeLength(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	if _, err := ReadSeries(&buf); !errors.Is(err, ErrFormat) {
		t.Errorf("huge length: %v", err)
	}
}
