package heatmap

import (
	"bytes"
	"testing"
)

// FuzzReadBinary hardens the deserializer against corrupt inputs: it
// must never panic and never return a heat map violating its own
// definition.
func FuzzReadBinary(f *testing.F) {
	// Seed with a valid serialization and a few mutations.
	h, err := New(Def{AddrBase: 0x1000, Size: 0x800, Gran: 0x100})
	if err != nil {
		f.Fatal(err)
	}
	h.Counts[3] = 42
	var buf bytes.Buffer
	if err := h.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:10])
	f.Add([]byte{})
	mutated := append([]byte(nil), valid...)
	mutated[21] = 0x03 // non-power-of-two granularity
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Any successfully parsed map must be self-consistent.
		if verr := m.Def.Validate(); verr != nil {
			t.Fatalf("parsed map has invalid definition: %v", verr)
		}
		if len(m.Counts) != m.Def.Cells() {
			t.Fatalf("parsed map has %d counts for %d cells", len(m.Counts), m.Def.Cells())
		}
		// Round trip must be stable.
		var out bytes.Buffer
		if werr := m.WriteBinary(&out); werr != nil {
			t.Fatalf("re-serialize: %v", werr)
		}
		m2, rerr := ReadBinary(&out)
		if rerr != nil {
			t.Fatalf("re-parse: %v", rerr)
		}
		if d, derr := m2.L1Distance(m); derr != nil || d != 0 {
			t.Fatalf("round trip unstable: d=%d err=%v", d, derr)
		}
	})
}

// FuzzCellIndex checks the paper's address filter + target-cell
// calculation against its specification for arbitrary region triples
// and addresses: accept exactly the addresses in [base, base+size),
// and map every accepted address to the cell whose range contains it.
func FuzzCellIndex(f *testing.F) {
	// In-region, both boundaries, one-below-base, one-past-end, and the
	// top of the address space.
	f.Add(uint64(0x1000), uint64(0x800), uint64(0x100), uint64(0x1234))
	f.Add(uint64(0x1000), uint64(0x800), uint64(0x100), uint64(0x1000))
	f.Add(uint64(0x1000), uint64(0x800), uint64(0x100), uint64(0x17ff))
	f.Add(uint64(0x1000), uint64(0x800), uint64(0x100), uint64(0x1800))
	f.Add(uint64(0x1000), uint64(0x800), uint64(0x100), uint64(0xfff))
	f.Add(uint64(0xC0008000), uint64(736*1024), uint64(2048), uint64(0xC0008000))
	// Partial final cell (size not a multiple of gran) at the boundary.
	f.Add(uint64(0x2000), uint64(0x301), uint64(0x100), uint64(0x2300))
	// Region touching the top of the address space.
	f.Add(^uint64(0xfff), uint64(0x1000), uint64(0x200), ^uint64(0))

	f.Fuzz(func(t *testing.T, base, size, gran, addr uint64) {
		d := Def{AddrBase: base, Size: size, Gran: gran}
		if d.Validate() != nil {
			t.Skip("invalid definition")
		}
		idx, ok := d.CellIndex(addr)
		inRegion := addr >= base && addr-base < size // overflow-safe form of addr < base+size
		if ok != inRegion {
			t.Fatalf("CellIndex(%#x) ok=%v, want %v for region [%#x,+%#x)", addr, ok, inRegion, base, size)
		}
		if !ok {
			if idx != 0 {
				t.Fatalf("rejected address returned idx %d", idx)
			}
			return
		}
		if idx < 0 || idx >= d.Cells() {
			t.Fatalf("idx %d outside [0,%d)", idx, d.Cells())
		}
		lo, hi, err := d.CellRange(idx)
		if err != nil {
			t.Fatalf("CellRange(%d): %v", idx, err)
		}
		if addr < lo || addr >= hi {
			t.Fatalf("addr %#x outside its cell %d range [%#x,%#x)", addr, idx, lo, hi)
		}
	})
}
