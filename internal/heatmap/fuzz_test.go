package heatmap

import (
	"bytes"
	"testing"
)

// FuzzReadBinary hardens the deserializer against corrupt inputs: it
// must never panic and never return a heat map violating its own
// definition.
func FuzzReadBinary(f *testing.F) {
	// Seed with a valid serialization and a few mutations.
	h, err := New(Def{AddrBase: 0x1000, Size: 0x800, Gran: 0x100})
	if err != nil {
		f.Fatal(err)
	}
	h.Counts[3] = 42
	var buf bytes.Buffer
	if err := h.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:10])
	f.Add([]byte{})
	mutated := append([]byte(nil), valid...)
	mutated[21] = 0x03 // non-power-of-two granularity
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Any successfully parsed map must be self-consistent.
		if verr := m.Def.Validate(); verr != nil {
			t.Fatalf("parsed map has invalid definition: %v", verr)
		}
		if len(m.Counts) != m.Def.Cells() {
			t.Fatalf("parsed map has %d counts for %d cells", len(m.Counts), m.Def.Cells())
		}
		// Round trip must be stable.
		var out bytes.Buffer
		if werr := m.WriteBinary(&out); werr != nil {
			t.Fatalf("re-serialize: %v", werr)
		}
		m2, rerr := ReadBinary(&out)
		if rerr != nil {
			t.Fatalf("re-parse: %v", rerr)
		}
		if d, derr := m2.L1Distance(m); derr != nil || d != 0 {
			t.Fatalf("round trip unstable: d=%d err=%v", d, derr)
		}
	})
}
