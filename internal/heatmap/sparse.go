// The sparse MHM representation. A monitoring interval touches a
// handful of hot cells in an otherwise empty region, so the dense
// Counts vector is overwhelmingly zeros; Sparse stores only the
// occupied cells as index+count runs, shrinking per-interval buffers
// and fleet-scale memory bandwidth, and feeding the run-aware scoring
// path (score.Scorer.ScoreSparse) without densifying.
package heatmap

import (
	"fmt"
	"math"
)

// Sparse is the run-length form of one MHM: run r covers the
// RunLen[r] consecutive occupied cells starting at cell RunStart[r],
// whose counts sit contiguously in Counts (Σ RunLen == len(Counts)).
// Runs are in ascending cell order and separated by at least one
// empty cell; zero counts never appear inside a run. The zero value
// is an empty map with no definition; (*HeatMap).Sparsify and Reset
// establish the invariants.
type Sparse struct {
	Def Def
	// Start and End are the interval bounds in simulation microseconds.
	Start, End int64
	// RunStart[r] is the first cell of run r; RunLen[r] its cell count.
	RunStart []int32
	RunLen   []int32
	// Counts holds the per-cell counts of all runs, concatenated.
	Counts []uint32
}

// Reset re-targets s to a new (empty) interval, keeping the backing
// arrays for reuse.
func (s *Sparse) Reset(d Def, start, end int64) {
	s.Def = d
	s.Start, s.End = start, end
	s.RunStart = s.RunStart[:0]
	s.RunLen = s.RunLen[:0]
	s.Counts = s.Counts[:0]
}

// NNZ returns the number of occupied cells.
func (s *Sparse) NNZ() int { return len(s.Counts) }

// MemBytes returns the payload size of the sparse form (runs plus
// counts, excluding the fixed header) — the bandwidth a fleet moves
// per interval in place of 4·Cells() dense bytes.
func (s *Sparse) MemBytes() int {
	return 4*len(s.RunStart) + 4*len(s.RunLen) + 4*len(s.Counts)
}

// appendRun appends one run, growing the backing arrays as needed.
func (s *Sparse) appendRun(start int32, counts []uint32) {
	s.RunStart = append(s.RunStart, start)
	s.RunLen = append(s.RunLen, int32(len(counts)))
	s.Counts = append(s.Counts, counts...)
}

// Sparsify converts h to run-length form. dst's backing arrays are
// reused when large enough (pass the same dst every interval for an
// allocation-free steady state); a nil dst allocates a fresh Sparse.
func (h *HeatMap) Sparsify(dst *Sparse) *Sparse {
	if dst == nil {
		dst = &Sparse{}
	}
	dst.Reset(h.Def, h.Start, h.End)
	counts := h.Counts
	for i := 0; i < len(counts); {
		if counts[i] == 0 {
			i++
			continue
		}
		j := i + 1
		for j < len(counts) && counts[j] != 0 {
			j++
		}
		dst.appendRun(int32(i), counts[i:j])
		i = j
	}
	return dst
}

// Dense expands s back to a dense HeatMap. dst is reused when it has
// the right cell count (its counts are overwritten); a nil or
// mis-sized dst allocates. Sparsify and Dense are exact inverses:
// Dense(Sparsify(h)) reproduces h's definition, interval, and counts.
func (s *Sparse) Dense(dst *HeatMap) *HeatMap {
	l := s.Def.Cells()
	if dst == nil || len(dst.Counts) != l {
		dst = &HeatMap{Counts: make([]uint32, l)}
	}
	dst.Def = s.Def
	dst.Start, dst.End = s.Start, s.End
	for i := range dst.Counts {
		dst.Counts[i] = 0
	}
	s.scatter(dst.Counts)
	return dst
}

// scatter writes the run counts into a zeroed dense array.
func (s *Sparse) scatter(counts []uint32) {
	off := 0
	for r, st := range s.RunStart {
		n := int(s.RunLen[r])
		copy(counts[int(st):int(st)+n], s.Counts[off:off+n])
		off += n
	}
}

// Validate checks the run invariants: ascending, non-adjacent,
// positive-length runs within the cell count, run lengths consistent
// with the flat counts, and no zero count inside a run.
func (s *Sparse) Validate() error {
	if err := s.Def.Validate(); err != nil {
		return err
	}
	if len(s.RunStart) != len(s.RunLen) {
		return fmt.Errorf("heatmap: sparse: %d run starts, %d run lengths: %w",
			len(s.RunStart), len(s.RunLen), ErrConfig)
	}
	l := s.Def.Cells()
	next := int32(0) // earliest legal start of the next run
	total := 0
	for r, st := range s.RunStart {
		n := s.RunLen[r]
		if n <= 0 || st < next || int(st)+int(n) > l {
			return fmt.Errorf("heatmap: sparse: run %d [%d,+%d) invalid for %d cells: %w",
				r, st, n, l, ErrConfig)
		}
		next = st + n + 1 // at least one empty cell between runs
		total += int(n)
	}
	if total != len(s.Counts) {
		return fmt.Errorf("heatmap: sparse: runs cover %d cells, %d counts: %w",
			total, len(s.Counts), ErrConfig)
	}
	for i, c := range s.Counts {
		if c == 0 {
			return fmt.Errorf("heatmap: sparse: zero count at flat index %d: %w", i, ErrConfig)
		}
	}
	return nil
}

// Total returns the sum of all cell counts, matching
// (*HeatMap).Total on the dense form.
func (s *Sparse) Total() uint64 {
	var t uint64
	for _, c := range s.Counts {
		t += uint64(c)
	}
	return t
}

// VectorInto widens s into the dense float64 vector the learning
// pipeline consumes: zeros everywhere except the run cells. It panics
// on length mismatch, like (*HeatMap).VectorInto. Allocation-free.
//
//mhm:hotpath
func (s *Sparse) VectorInto(dst []float64) {
	if len(dst) != s.Def.Cells() {
		panic("heatmap: Sparse.VectorInto: dst length differs from cell count")
	}
	for i := range dst {
		dst[i] = 0
	}
	off := 0
	for r, st := range s.RunStart {
		n := int(s.RunLen[r])
		seg := dst[int(st) : int(st)+n]
		for i := range seg {
			seg[i] = float64(s.Counts[off+i])
		}
		off += n
	}
}

// Vector returns the densified counts as a fresh float64 vector.
func (s *Sparse) Vector() []float64 {
	out := make([]float64, s.Def.Cells())
	s.VectorInto(out)
	return out
}

// Clone returns a deep copy.
func (s *Sparse) Clone() *Sparse {
	out := &Sparse{
		Def:      s.Def,
		Start:    s.Start,
		End:      s.End,
		RunStart: append([]int32(nil), s.RunStart...),
		RunLen:   append([]int32(nil), s.RunLen...),
		Counts:   append([]uint32(nil), s.Counts...),
	}
	return out
}

// Add accumulates s's counts into the dense map h (saturating); both
// must share a definition.
func (s *Sparse) Add(h *HeatMap) error {
	if s.Def != h.Def {
		return fmt.Errorf("heatmap: sparse Add across definitions %+v and %+v: %w", s.Def, h.Def, ErrConfig)
	}
	off := 0
	for r, st := range s.RunStart {
		n := int(s.RunLen[r])
		for i := 0; i < n; i++ {
			idx := int(st) + i
			cur := h.Counts[idx]
			c := s.Counts[off+i]
			if cur > math.MaxUint32-c {
				h.Counts[idx] = math.MaxUint32
			} else {
				h.Counts[idx] = cur + c
			}
		}
		off += n
	}
	return nil
}

// PackVectorsSparse widens a set of equally-defined sparse maps into
// dense float64 vectors sharing one contiguous backing array — the
// same layout PackVectors builds from dense maps, but produced
// straight from the run-length form: one allocation for the whole
// set and only NNZ scatter-writes per map beyond the zero fill.
func PackVectorsSparse(maps []*Sparse) ([][]float64, error) {
	if len(maps) == 0 {
		return nil, fmt.Errorf("heatmap: PackVectorsSparse: empty set: %w", ErrConfig)
	}
	def := maps[0].Def
	l := def.Cells()
	backing := make([]float64, len(maps)*l)
	out := make([][]float64, len(maps))
	for i, m := range maps {
		if m.Def != def {
			return nil, fmt.Errorf("heatmap: PackVectorsSparse: map %d definition differs: %w", i, ErrConfig)
		}
		v := backing[i*l : (i+1)*l : (i+1)*l]
		m.VectorInto(v)
		out[i] = v
	}
	return out, nil
}
