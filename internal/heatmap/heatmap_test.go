package heatmap

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// paperDef is the configuration from the paper's Fig. 1: Linux kernel
// .text at 0xC0008000, 3,013,284 bytes, δ = 2 KB → 1,472 cells.
var paperDef = Def{AddrBase: 0xC0008000, Size: 3013284, Gran: 2048}

func TestPaperFig1Parameters(t *testing.T) {
	if err := paperDef.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := paperDef.Cells(); got != 1472 {
		t.Errorf("Cells = %d, want 1472 (paper Fig. 1)", got)
	}
	if got := paperDef.ShiftBits(); got != 11 {
		t.Errorf("ShiftBits = %d, want 11", got)
	}
}

func TestDefValidate(t *testing.T) {
	cases := []struct {
		name string
		d    Def
		ok   bool
	}{
		{"paper", paperDef, true},
		{"zero size", Def{AddrBase: 0, Size: 0, Gran: 2048}, false},
		{"non pow2 gran", Def{AddrBase: 0, Size: 4096, Gran: 3000}, false},
		{"zero gran", Def{AddrBase: 0, Size: 4096, Gran: 0}, false},
		{"wraparound", Def{AddrBase: math.MaxUint64 - 10, Size: 100, Gran: 2}, false},
		{"gran 1", Def{AddrBase: 0, Size: 16, Gran: 1}, true},
	}
	for _, c := range cases {
		err := c.d.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && !errors.Is(err, ErrConfig) {
			t.Errorf("%s: err = %v, want ErrConfig", c.name, err)
		}
	}
}

func TestCellIndexPaperFormula(t *testing.T) {
	d := Def{AddrBase: 0x1000, Size: 0x2000, Gran: 0x100}
	cases := []struct {
		addr uint64
		idx  int
		ok   bool
	}{
		{0x1000, 0, true},          // first byte
		{0x10FF, 0, true},          // last byte of cell 0
		{0x1100, 1, true},          // first byte of cell 1
		{0x2FFF, 31, true},         // last byte of region
		{0x3000, 0, false},         // one past the end
		{0x0FFF, 0, false},         // one below base
		{0, 0, false},              // far below
		{math.MaxUint64, 0, false}, // far above
	}
	for _, c := range cases {
		idx, ok := d.CellIndex(c.addr)
		if ok != c.ok || (ok && idx != c.idx) {
			t.Errorf("CellIndex(%#x) = (%d, %v), want (%d, %v)", c.addr, idx, ok, c.idx, c.ok)
		}
	}
}

func TestCellIndexMatchesShiftIdentity(t *testing.T) {
	// Property: for in-region addresses, idx == floor(offset/δ) and the
	// address falls inside CellRange(idx).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gran := uint64(1) << (3 + rng.Intn(12))
		d := Def{AddrBase: uint64(rng.Intn(1 << 30)), Size: gran*uint64(1+rng.Intn(100)) + uint64(rng.Intn(int(gran))), Gran: gran}
		if d.Validate() != nil {
			return true // skip invalid combos
		}
		addr := d.AddrBase + uint64(rng.Int63n(int64(d.Size)))
		idx, ok := d.CellIndex(addr)
		if !ok {
			return false
		}
		if idx != int((addr-d.AddrBase)/d.Gran) {
			return false
		}
		lo, hi, err := d.CellRange(idx)
		if err != nil {
			return false
		}
		return addr >= lo && addr < hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCellRangePartialLastCell(t *testing.T) {
	d := Def{AddrBase: 0x1000, Size: 0x250, Gran: 0x100} // 3 cells, last partial
	if d.Cells() != 3 {
		t.Fatalf("Cells = %d", d.Cells())
	}
	lo, hi, err := d.CellRange(2)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0x1200 || hi != 0x1250 {
		t.Errorf("CellRange(2) = [%#x, %#x), want [0x1200, 0x1250)", lo, hi)
	}
	if _, _, err := d.CellRange(3); !errors.Is(err, ErrConfig) {
		t.Errorf("out-of-range cell: %v", err)
	}
	if _, _, err := d.CellRange(-1); !errors.Is(err, ErrConfig) {
		t.Errorf("negative cell: %v", err)
	}
}

func TestNewRejectsInvalidDef(t *testing.T) {
	if _, err := New(Def{Size: 10, Gran: 3}); !errors.Is(err, ErrConfig) {
		t.Errorf("New invalid: %v", err)
	}
}

func TestRecordAndTotal(t *testing.T) {
	h, err := New(Def{AddrBase: 0x1000, Size: 0x400, Gran: 0x100})
	if err != nil {
		t.Fatal(err)
	}
	if !h.Record(0x1000, 5) {
		t.Error("in-region record rejected")
	}
	if !h.Record(0x13FF, 7) {
		t.Error("last-byte record rejected")
	}
	if h.Record(0x1400, 1) {
		t.Error("out-of-region record accepted")
	}
	if h.Counts[0] != 5 || h.Counts[3] != 7 {
		t.Errorf("Counts = %v", h.Counts)
	}
	if h.Total() != 12 {
		t.Errorf("Total = %d", h.Total())
	}
	idx, cnt := h.MaxCell()
	if idx != 3 || cnt != 7 {
		t.Errorf("MaxCell = (%d, %d)", idx, cnt)
	}
}

func TestRecordSaturates(t *testing.T) {
	h, _ := New(Def{AddrBase: 0, Size: 0x100, Gran: 0x100})
	h.Counts[0] = math.MaxUint32 - 1
	h.Record(0, 10)
	if h.Counts[0] != math.MaxUint32 {
		t.Errorf("count = %d, want saturation at MaxUint32", h.Counts[0])
	}
	// Saturated counter stays saturated.
	h.Record(0, 1)
	if h.Counts[0] != math.MaxUint32 {
		t.Errorf("saturated counter moved to %d", h.Counts[0])
	}
}

func TestResetAndClone(t *testing.T) {
	h, _ := New(Def{AddrBase: 0, Size: 0x400, Gran: 0x100})
	h.Record(0x50, 3)
	h.Start, h.End = 100, 200
	c := h.Clone()
	h.Reset()
	if h.Total() != 0 || h.Start != 0 || h.End != 0 {
		t.Error("Reset incomplete")
	}
	if c.Total() != 3 || c.Start != 100 || c.End != 200 {
		t.Error("Clone shares state with original")
	}
	c.Counts[0] = 99
	if h.Counts[0] != 0 {
		t.Error("Clone aliases Counts")
	}
}

func TestAdd(t *testing.T) {
	d := Def{AddrBase: 0, Size: 0x200, Gran: 0x100}
	a, _ := New(d)
	b, _ := New(d)
	a.Record(0, 3)
	b.Record(0, 4)
	b.Record(0x100, 5)
	if err := a.Add(b); err != nil {
		t.Fatal(err)
	}
	if a.Counts[0] != 7 || a.Counts[1] != 5 {
		t.Errorf("after Add: %v", a.Counts)
	}
	// Saturating add.
	a.Counts[0] = math.MaxUint32 - 1
	if err := a.Add(b); err != nil {
		t.Fatal(err)
	}
	if a.Counts[0] != math.MaxUint32 {
		t.Errorf("Add did not saturate: %d", a.Counts[0])
	}
	other, _ := New(Def{AddrBase: 0, Size: 0x100, Gran: 0x100})
	if err := a.Add(other); !errors.Is(err, ErrConfig) {
		t.Errorf("Add across defs: %v", err)
	}
}

func TestVector(t *testing.T) {
	h, _ := New(Def{AddrBase: 0, Size: 0x300, Gran: 0x100})
	h.Record(0x100, 42)
	v := h.Vector()
	if len(v) != 3 || v[1] != 42 || v[0] != 0 {
		t.Errorf("Vector = %v", v)
	}
	v[1] = 0
	if h.Counts[1] != 42 {
		t.Error("Vector aliases counts")
	}
}

func TestL1Distance(t *testing.T) {
	d := Def{AddrBase: 0, Size: 0x200, Gran: 0x100}
	a, _ := New(d)
	b, _ := New(d)
	a.Counts[0], a.Counts[1] = 10, 0
	b.Counts[0], b.Counts[1] = 4, 9
	got, err := a.L1Distance(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != 15 {
		t.Errorf("L1Distance = %d, want 15", got)
	}
	if d2, _ := b.L1Distance(a); d2 != got {
		t.Errorf("L1Distance asymmetric: %d vs %d", d2, got)
	}
	other, _ := New(Def{AddrBase: 0, Size: 0x100, Gran: 0x100})
	if _, err := a.L1Distance(other); !errors.Is(err, ErrConfig) {
		t.Errorf("L1Distance across defs: %v", err)
	}
}

func TestRecordConservationProperty(t *testing.T) {
	// Property: every in-region recorded count appears in Total; every
	// out-of-region record leaves Total unchanged.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h, err := New(Def{AddrBase: 0x8000, Size: 0x4000, Gran: 0x200})
		if err != nil {
			return false
		}
		var want uint64
		for i := 0; i < 300; i++ {
			addr := uint64(rng.Intn(0x10000))
			cnt := uint32(rng.Intn(50))
			in := h.Record(addr, cnt)
			expectIn := addr >= 0x8000 && addr < 0xC000
			if in != expectIn {
				return false
			}
			if in {
				want += uint64(cnt)
			}
		}
		return h.Total() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRender(t *testing.T) {
	h, _ := New(Def{AddrBase: 0x1000, Size: 0x1000, Gran: 0x100})
	h.Record(0x1000, 100)
	h.Record(0x1800, 1)
	s := h.Render(8)
	if !strings.Contains(s, "cells=16") {
		t.Errorf("Render header missing cell count:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	// Header + 2 rows of 8 cells.
	if len(lines) != 3 {
		t.Errorf("Render rows = %d, want 3:\n%s", len(lines), s)
	}
	if !strings.Contains(s, "@") {
		t.Errorf("hottest cell not rendered hot:\n%s", s)
	}
	// Zero map renders without dividing by zero.
	z, _ := New(Def{AddrBase: 0, Size: 0x100, Gran: 0x100})
	if out := z.Render(0); out == "" {
		t.Error("empty render for zero map")
	}
}
