// Package heatmap implements the Memory Heat Map (MHM), the paper's core
// data structure: a vector of per-cell access counts over a monitored
// memory region (AddrBase, Size, Granularity) accumulated during one
// monitoring interval.
package heatmap

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// ErrConfig is returned (wrapped) for invalid heat map definitions.
var ErrConfig = errors.New("heatmap: invalid configuration")

// Def is the triple that defines a memory heat map: where and at what
// detail memory behaviour is monitored.
type Def struct {
	// AddrBase is the base (virtual) address of the monitored region.
	AddrBase uint64
	// Size is the region size in bytes.
	Size uint64
	// Gran is the cell granularity δ in bytes; must be a power of two so
	// that the hardware cell calculation is a single shift.
	Gran uint64
}

// Validate checks the definition against the hardware constraints: a
// positive region, a power-of-two granularity, and no address-space
// overflow.
func (d Def) Validate() error {
	if d.Size == 0 {
		return fmt.Errorf("heatmap: zero region size: %w", ErrConfig)
	}
	if d.Gran == 0 || d.Gran&(d.Gran-1) != 0 {
		return fmt.Errorf("heatmap: granularity %d is not a power of two: %w", d.Gran, ErrConfig)
	}
	if d.AddrBase+d.Size < d.AddrBase {
		return fmt.Errorf("heatmap: region wraps the address space: %w", ErrConfig)
	}
	// The ceil in Cells() computes Size+Gran-1; reject sizes where that
	// sum wraps uint64 (or the result exceeds int) so Cells() is always
	// exact for a validated definition.
	if d.Size > math.MaxUint64-(d.Gran-1) {
		return fmt.Errorf("heatmap: region size overflows the cell count: %w", ErrConfig)
	}
	if cells := (d.Size + d.Gran - 1) / d.Gran; cells > uint64(math.MaxInt) {
		return fmt.Errorf("heatmap: %d cells overflow int: %w", cells, ErrConfig)
	}
	return nil
}

// ShiftBits returns g = log2(Gran), the right-shift used by the target
// cell calculation.
//
//mhm:hotpath
func (d Def) ShiftBits() uint {
	return uint(bits.TrailingZeros64(d.Gran))
}

// Cells returns L, the number of cells: ceil(Size/Gran).
//
//mhm:hotpath
func (d Def) Cells() int {
	return int((d.Size + d.Gran - 1) / d.Gran)
}

// CellIndex performs the paper's address filtering and target-cell
// calculation: offset = addr − AddrBase; reject unless 0 ≤ offset < Size;
// idx = offset >> log2(δ). The boolean reports whether the address is in
// the monitored region.
//
//mhm:hotpath
func (d Def) CellIndex(addr uint64) (int, bool) {
	offset := addr - d.AddrBase
	// Unsigned arithmetic: addr < AddrBase wraps to a huge offset, which
	// the size check rejects, exactly like the hardware comparator pair
	// (>= 0 && < Size).
	if offset >= d.Size {
		return 0, false
	}
	return int(offset >> d.ShiftBits()), true
}

// CellRange returns the [lo, hi) address span of cell idx, clamped to the
// region end for the final partial cell.
func (d Def) CellRange(idx int) (lo, hi uint64, err error) {
	if idx < 0 || idx >= d.Cells() {
		return 0, 0, fmt.Errorf("heatmap: cell %d out of [0,%d): %w", idx, d.Cells(), ErrConfig)
	}
	lo = d.AddrBase + uint64(idx)*d.Gran
	hi = lo + d.Gran
	// hi < lo: the cell abuts the top of the address space and lo+Gran
	// wrapped; Validate guarantees AddrBase+Size itself does not wrap.
	if end := d.AddrBase + d.Size; hi > end || hi < lo {
		hi = end
	}
	return lo, hi, nil
}

// HeatMap is one MHM: per-cell saturating 32-bit access counters plus the
// interval it covers. In the hardware the counts live in an on-chip
// memory; here they are a plain vector, which is also how the learning
// algorithms consume them.
type HeatMap struct {
	Def Def
	// Start and End are the interval bounds in simulation microseconds.
	Start, End int64
	// Counts has Def.Cells() entries.
	Counts []uint32
}

// New returns a zeroed heat map for d.
func New(d Def) (*HeatMap, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &HeatMap{Def: d, Counts: make([]uint32, d.Cells())}, nil
}

// Record adds count accesses at addr, returning true when the address was
// inside the monitored region. Counters saturate at 2³²−1 rather than
// wrapping.
//
//mhm:hotpath
func (h *HeatMap) Record(addr uint64, count uint32) bool {
	idx, ok := h.Def.CellIndex(addr)
	if !ok {
		return false
	}
	c := h.Counts[idx]
	if c > math.MaxUint32-count {
		h.Counts[idx] = math.MaxUint32
	} else {
		h.Counts[idx] = c + count
	}
	return true
}

// RecordNew is Record, additionally reporting whether this access
// occupied a previously-empty cell — the signal occupancy trackers
// (the Memometer's sparse-collect routing) need without a rescan.
//
//mhm:hotpath
func (h *HeatMap) RecordNew(addr uint64, count uint32) (newCell, ok bool) {
	idx, ok := h.Def.CellIndex(addr)
	if !ok {
		return false, false
	}
	c := h.Counts[idx]
	newCell = c == 0 && count > 0
	if c > math.MaxUint32-count {
		h.Counts[idx] = math.MaxUint32
	} else {
		h.Counts[idx] = c + count
	}
	return newCell, true
}

// Reset zeroes all counters.
//
//mhm:hotpath
func (h *HeatMap) Reset() {
	for i := range h.Counts {
		h.Counts[i] = 0
	}
	h.Start, h.End = 0, 0
}

// Clone returns a deep copy.
func (h *HeatMap) Clone() *HeatMap {
	out := &HeatMap{Def: h.Def, Start: h.Start, End: h.End, Counts: make([]uint32, len(h.Counts))}
	copy(out.Counts, h.Counts)
	return out
}

// Total returns the sum of all cell counts (the interval's memory
// traffic volume — the Fig. 9 baseline signal).
func (h *HeatMap) Total() uint64 {
	var t uint64
	for _, c := range h.Counts {
		t += uint64(c)
	}
	return t
}

// MaxCell returns the index and count of the hottest cell.
func (h *HeatMap) MaxCell() (idx int, count uint32) {
	for i, c := range h.Counts {
		if c > count {
			idx, count = i, c
		}
	}
	return idx, count
}

// Add accumulates o's counts into h (saturating); both maps must share a
// definition.
func (h *HeatMap) Add(o *HeatMap) error {
	if h.Def != o.Def {
		return fmt.Errorf("heatmap: Add across definitions %+v and %+v: %w", h.Def, o.Def, ErrConfig)
	}
	for i, c := range o.Counts {
		cur := h.Counts[i]
		if cur > math.MaxUint32-c {
			h.Counts[i] = math.MaxUint32
		} else {
			h.Counts[i] = cur + c
		}
	}
	return nil
}

// Vector returns the counts as float64, the representation the learning
// pipeline (mean-shift, PCA projection) operates on.
func (h *HeatMap) Vector() []float64 {
	out := make([]float64, len(h.Counts))
	h.VectorInto(out)
	return out
}

// VectorInto widens the counts into dst without allocating. It panics on
// length mismatch: like the mat vector helpers, the cell count is a
// structural invariant, not a runtime input.
//
//mhm:hotpath
func (h *HeatMap) VectorInto(dst []float64) {
	if len(dst) != len(h.Counts) {
		panic("heatmap: VectorInto: dst length differs from cell count")
	}
	for i, c := range h.Counts {
		dst[i] = float64(c)
	}
}

// PackVectors widens a set of equally-defined heat maps into float64
// vectors sharing one contiguous backing array — the layout the
// training engine wants: one allocation for the whole set, and
// cache-friendly sequential sweeps over consecutive maps.
func PackVectors(maps []*HeatMap) ([][]float64, error) {
	if len(maps) == 0 {
		return nil, fmt.Errorf("heatmap: PackVectors: empty set: %w", ErrConfig)
	}
	def := maps[0].Def
	l := len(maps[0].Counts)
	backing := make([]float64, len(maps)*l)
	out := make([][]float64, len(maps))
	for i, m := range maps {
		if m.Def != def {
			return nil, fmt.Errorf("heatmap: PackVectors: map %d definition differs: %w", i, ErrConfig)
		}
		v := backing[i*l : (i+1)*l : (i+1)*l]
		m.VectorInto(v)
		out[i] = v
	}
	return out, nil
}

// L1Distance returns the sum of absolute per-cell count differences.
func (h *HeatMap) L1Distance(o *HeatMap) (uint64, error) {
	if h.Def != o.Def {
		return 0, fmt.Errorf("heatmap: L1Distance across definitions: %w", ErrConfig)
	}
	var d uint64
	for i, c := range h.Counts {
		oc := o.Counts[i]
		if c > oc {
			d += uint64(c - oc)
		} else {
			d += uint64(oc - c)
		}
	}
	return d, nil
}

// renderRamp maps relative heat to glyphs, cold to hot.
const renderRamp = " .:-=+*#%@"

// Render draws the heat map as a 2-D ASCII picture with the given number
// of columns, mirroring the paper's Fig. 1 visualization. Each character
// is one cell scaled against the hottest cell.
func (h *HeatMap) Render(cols int) string {
	if cols <= 0 {
		cols = 64
	}
	_, max := h.MaxCell()
	var b strings.Builder
	fmt.Fprintf(&b, "MHM base=%#x size=%d gran=%d cells=%d total=%d\n",
		h.Def.AddrBase, h.Def.Size, h.Def.Gran, len(h.Counts), h.Total())
	for i, c := range h.Counts {
		if i%cols == 0 {
			if i > 0 {
				b.WriteByte('\n')
			}
		}
		if max == 0 {
			b.WriteByte(renderRamp[0])
			continue
		}
		// Log scaling spreads the glyph ramp across the dynamic range.
		level := 0
		if c > 0 {
			level = 1 + int(float64(len(renderRamp)-2)*math.Log1p(float64(c))/math.Log1p(float64(max)))
			if level > len(renderRamp)-1 {
				level = len(renderRamp) - 1
			}
		}
		b.WriteByte(renderRamp[level])
	}
	b.WriteByte('\n')
	return b.String()
}
