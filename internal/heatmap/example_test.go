package heatmap_test

import (
	"fmt"

	"github.com/memheatmap/mhm/internal/heatmap"
)

// Example demonstrates the paper's cell calculation: the heat map's
// definition triple maps addresses to cells with a shift.
func Example() {
	def := heatmap.Def{AddrBase: 0xC0008000, Size: 3013284, Gran: 2048}
	hm, err := heatmap.New(def)
	if err != nil {
		panic(err)
	}
	fmt.Println("cells:", def.Cells())

	hm.Record(0xC0008000, 3) // first byte of the region -> cell 0
	hm.Record(0xC0008800, 5) // 2 KB in -> cell 1
	hm.Record(0xB0000000, 1) // below the region: filtered

	idx, ok := def.CellIndex(0xC0008800)
	fmt.Println("cell of 0xC0008800:", idx, ok)
	fmt.Println("total accesses:", hm.Total())
	// Output:
	// cells: 1472
	// cell of 0xC0008800: 1 true
	// total accesses: 8
}
