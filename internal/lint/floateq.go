// The floateq analyzer bans exact ==/!= comparison of floating-point
// operands in the numeric packages (gmm, pca, stats, score, train): EM
// convergence, eigenvalue selection, quantile math and the fused
// scoring kernels must compare through the tolerance helpers in
// internal/mat (mat.IsZero, mat.Eq, mat.EqTol), which spell out the
// intended precision instead of relying on exact bit equality.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEqScope lists the import-path suffixes (whole trailing segments)
// the floateq analyzer applies to.
var FloatEqScope = []string{"gmm", "pca", "stats", "score", "train", "ensemble", "syscalls"}

// FloatEqAnalyzer returns the floateq analyzer.
func FloatEqAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "floateq",
		Doc:  "no ==/!= between floating-point operands in gmm/pca/stats/score/train; use mat epsilon helpers",
		Run:  floateqRun,
	}
}

func floateqRun(prog *Program) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range prog.Pkgs {
		inScope := false
		for _, seg := range FloatEqScope {
			if pathEndsWith(pkg.Path, seg) {
				inScope = true
				break
			}
		}
		if !inScope {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				xt, yt := pkg.Info.Types[be.X], pkg.Info.Types[be.Y]
				if !isFloat(xt.Type) && !isFloat(yt.Type) {
					return true
				}
				// Comparing two compile-time constants is exact by
				// construction and not a runtime hazard.
				if xt.Value != nil && yt.Value != nil {
					return true
				}
				helper := "mat.EqTol"
				if isZeroConst(xt) || isZeroConst(yt) {
					helper = "mat.IsZero"
				}
				out = append(out, Diagnostic{
					Analyzer: "floateq",
					Pos:      prog.Fset.Position(be.OpPos),
					Message: fmt.Sprintf("floating-point %s comparison; use %s (or an explicit tolerance)",
						be.Op, helper),
				})
				return true
			})
		}
	}
	return out
}

// isFloat reports whether t's underlying type is a floating-point basic
// type (float32, float64, or an untyped float constant).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isZeroConst reports whether the operand is the constant 0.
func isZeroConst(tv types.TypeAndValue) bool {
	return tv.Value != nil && tv.Value.String() == "0"
}
