// SARIF 2.1.0 output (static analysis results interchange format,
// OASIS standard): the CI-annotation wire form of a lint run. One run,
// one tool.driver carrying the analyzer suite as rules, one result per
// diagnostic with a physical location relative to the module root so
// upload-sarif actions annotate the right lines.
package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// SARIF 2.1.0 document structure — only the slice of the schema this
// tool emits; every field below is either required by the schema or a
// standard CI-consumed property.
type (
	sarifLog struct {
		Schema  string     `json:"$schema"`
		Version string     `json:"version"`
		Runs    []sarifRun `json:"runs"`
	}
	sarifRun struct {
		Tool    sarifTool     `json:"tool"`
		Results []sarifResult `json:"results"`
	}
	sarifTool struct {
		Driver sarifDriver `json:"driver"`
	}
	sarifDriver struct {
		Name           string      `json:"name"`
		InformationURI string      `json:"informationUri,omitempty"`
		Rules          []sarifRule `json:"rules"`
	}
	sarifRule struct {
		ID               string       `json:"id"`
		ShortDescription sarifMessage `json:"shortDescription"`
	}
	sarifResult struct {
		RuleID    string          `json:"ruleId"`
		RuleIndex int             `json:"ruleIndex"`
		Level     string          `json:"level"`
		Message   sarifMessage    `json:"message"`
		Locations []sarifLocation `json:"locations"`
	}
	sarifMessage struct {
		Text string `json:"text"`
	}
	sarifLocation struct {
		PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
	}
	sarifPhysicalLocation struct {
		ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
		Region           sarifRegion           `json:"region"`
	}
	sarifArtifactLocation struct {
		URI string `json:"uri"`
	}
	sarifRegion struct {
		StartLine   int `json:"startLine"`
		StartColumn int `json:"startColumn,omitempty"`
	}
)

// SARIFSchemaURI is the published 2.1.0 schema location emitted in
// $schema (and asserted by the CLI test).
const SARIFSchemaURI = "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/sarif-schema-2.1.0.json"

// WriteSARIF renders diagnostics as one SARIF 2.1.0 run. Rules carry
// the given analyzers (plus the driver's own "mhmlint" rule for
// malformed directives); file URIs are rendered relative to root with
// forward slashes.
func WriteSARIF(w io.Writer, root string, analyzers []*Analyzer, diags []Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	index := map[string]int{}
	for _, a := range analyzers {
		index[a.Name] = len(rules)
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	// Malformed-directive reports come from the driver itself.
	index["mhmlint"] = len(rules)
	rules = append(rules, sarifRule{ID: "mhmlint", ShortDescription: sarifMessage{Text: "malformed //mhmlint:ignore directive"}})

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		idx, ok := index[d.Analyzer]
		if !ok {
			idx = index["mhmlint"]
		}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: sarifURI(root, d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	doc := sarifLog{
		Schema:  SARIFSchemaURI,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "mhmlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// sarifURI renders a diagnostic path as a root-relative, slash-
// separated artifact URI.
func sarifURI(root, path string) string {
	rel, err := filepath.Rel(root, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(path)
	}
	return filepath.ToSlash(rel)
}
