// The goleak analyzer keeps goroutine lifetimes bounded and dispatch
// closures race-free. A monitor that must run for months cannot shed
// goroutines: every `go` launch needs a join — a WaitGroup the module
// waits on, a channel whose other end is drained or closed, or a
// context-cancel path. And a dispatch closure that captures loop state
// by reference instead of taking it as an argument races against the
// next iteration — the bug class the train/gmm/mat dispatchers avoid
// with the `go func(w int) {...}(w)` idiom.
//
// Join evidence, resolved module-wide on the object identity of the
// WaitGroup/channel (a local, a package var, or a struct field):
//
//   - the goroutine body calls wg.Done() and somewhere the module calls
//     wg.Wait() on the same WaitGroup;
//   - the body sends on a channel that the module receives from;
//   - the body receives from (or ranges over) a channel that the module
//     closes or sends on;
//   - the body waits on a context's Done() channel.
//
// Goroutines launched through func values or interface methods are not
// resolvable statically and are skipped; the caller vouches for them.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// GoLeakAnalyzer returns the goleak analyzer.
func GoLeakAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "goleak",
		Doc:  "goroutines need a WaitGroup/channel join or context-cancel path; dispatch closures must not capture loop state",
		Run:  goleakRun,
	}
}

// joinFacts is the module-wide evidence base.
type joinFacts struct {
	waited   map[types.Object]bool // WaitGroups with a .Wait() call
	received map[types.Object]bool // channels somebody receives from / ranges over
	closed   map[types.Object]bool // channels somebody closes
	sent     map[types.Object]bool // channels somebody sends on
}

func goleakRun(prog *Program) []Diagnostic {
	facts := gatherJoinFacts(prog)
	var out []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkGoStmts(prog, pkg, fd, facts, &out)
			}
		}
	}
	return out
}

// gatherJoinFacts scans every loaded file for join evidence.
func gatherJoinFacts(prog *Program) *joinFacts {
	facts := &joinFacts{
		waited:   map[types.Object]bool{},
		received: map[types.Object]bool{},
		closed:   map[types.Object]bool{},
		sent:     map[types.Object]bool{},
	}
	for _, pkg := range prog.allSorted() {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch node := n.(type) {
				case *ast.CallExpr:
					if sel, ok := node.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
						if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
							if obj := lockIdentity(pkg.Info, sel.X); obj != nil {
								facts.waited[obj] = true
							}
						}
					}
					if b, ok := calleeObject(pkg.Info, node).(*types.Builtin); ok && b.Name() == "close" && len(node.Args) == 1 {
						if obj := chanIdentity(pkg.Info, node.Args[0]); obj != nil {
							facts.closed[obj] = true
						}
					}
				case *ast.UnaryExpr:
					if node.Op == token.ARROW {
						if obj := chanIdentity(pkg.Info, node.X); obj != nil {
							facts.received[obj] = true
						}
					}
				case *ast.RangeStmt:
					if t := pkg.Info.Types[node.X].Type; t != nil {
						if _, isChan := t.Underlying().(*types.Chan); isChan {
							if obj := chanIdentity(pkg.Info, node.X); obj != nil {
								facts.received[obj] = true
							}
						}
					}
				case *ast.SendStmt:
					if obj := chanIdentity(pkg.Info, node.Chan); obj != nil {
						facts.sent[obj] = true
					}
				}
				return true
			})
		}
	}
	return facts
}

// chanIdentity resolves a channel expression to its backing object,
// peeling indexes and selectors like lockIdentity.
func chanIdentity(info *types.Info, e ast.Expr) types.Object {
	return lockIdentity(info, e)
}

// checkGoStmts walks one function for `go` launches.
func checkGoStmts(prog *Program, pkg *Package, fd *ast.FuncDecl, facts *joinFacts, out *[]Diagnostic) {
	inspectWithStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		var body *ast.BlockStmt
		var bodyPkg *Package
		switch fun := ast.Unparen(gs.Call.Fun).(type) {
		case *ast.FuncLit:
			body, bodyPkg = fun.Body, pkg
			checkDispatchCaptures(prog, pkg, fd.Name.Name, gs, fun, stack, out)
		default:
			if callee, ok := calleeObject(pkg.Info, gs.Call).(*types.Func); ok && !isInterfaceMethod(callee) &&
				callee.Pkg() != nil && prog.isLocal(callee.Pkg().Path()) {
				if d := prog.declOf(callee); d != nil && d.decl.Body != nil {
					body, bodyPkg = d.decl.Body, d.pkg
				}
			}
		}
		if body == nil {
			return true // func value or foreign callee: caller vouches
		}
		if !hasJoinEvidence(bodyPkg, body, facts) {
			*out = append(*out, Diagnostic{
				Analyzer: "goleak",
				Pos:      prog.Fset.Position(gs.Pos()),
				Message: fmt.Sprintf("%s launches a goroutine with no join: no WaitGroup Done/Wait pair, no channel the module drains or closes, no context-cancel path",
					fd.Name.Name),
			})
		}
		return true
	})
}

// hasJoinEvidence reports whether the goroutine body contains any
// bounded-lifetime signal backed by the module-wide facts.
func hasJoinEvidence(pkg *Package, body *ast.BlockStmt, facts *joinFacts) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch node := n.(type) {
		case *ast.CallExpr:
			if sel, ok := node.Fun.(*ast.SelectorExpr); ok {
				fn, _ := pkg.Info.Uses[sel.Sel].(*types.Func)
				switch {
				case sel.Sel.Name == "Done" && fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync":
					if obj := lockIdentity(pkg.Info, sel.X); obj != nil && facts.waited[obj] {
						found = true
					}
				case sel.Sel.Name == "Done" && fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context":
					// <-ctx.Done() (or a select case over it): cancel path.
					found = true
				}
			}
		case *ast.SendStmt:
			if obj := chanIdentity(pkg.Info, node.Chan); obj != nil && facts.received[obj] {
				found = true
			}
		case *ast.UnaryExpr:
			if node.Op == token.ARROW {
				if obj := chanIdentity(pkg.Info, node.X); obj != nil && (facts.closed[obj] || facts.sent[obj]) {
					found = true
				}
			}
		case *ast.RangeStmt:
			if t := pkg.Info.Types[node.X].Type; t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					if obj := chanIdentity(pkg.Info, node.X); obj != nil && facts.closed[obj] {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// checkDispatchCaptures flags a go'd closure inside a loop capturing a
// variable the loop mutates (or the loop's own variables) by reference
// instead of receiving it as an argument.
func checkDispatchCaptures(prog *Program, pkg *Package, fname string, gs *ast.GoStmt, lit *ast.FuncLit, stack []ast.Node, out *[]Diagnostic) {
	// Innermost enclosing loop, if any.
	var loop ast.Node
	var loopBody *ast.BlockStmt
	for i := len(stack) - 1; i >= 0; i-- {
		switch l := stack[i].(type) {
		case *ast.ForStmt:
			loop, loopBody = l, l.Body
		case *ast.RangeStmt:
			loop, loopBody = l, l.Body
		case *ast.FuncLit, *ast.FuncDecl:
			i = -1 // don't look past the enclosing function
		}
		if loop != nil {
			break
		}
	}
	if loop == nil {
		return
	}
	for _, name := range captures(pkg.Info, lit) {
		v := findCapturedVar(pkg.Info, lit, name)
		if v == nil {
			continue
		}
		// Declared inside the loop and before the go statement: fresh per
		// iteration, safe to capture.
		if v.Pos() >= loop.Pos() && v.Pos() <= loop.End() {
			continue
		}
		// Declared outside the loop: only a hazard when the loop body
		// writes it (scratch reuse across iterations).
		if !assignedWithin(pkg.Info, loopBody, v, lit) {
			continue
		}
		*out = append(*out, Diagnostic{
			Analyzer: "goleak",
			Pos:      prog.Fset.Position(gs.Pos()),
			Message: fmt.Sprintf("%s dispatch closure captures %s by reference while the loop reuses it; pass it as an argument (go func(x T) {...}(%s))",
				fname, name, name),
		})
	}
}

// findCapturedVar resolves a captured name back to its variable object.
func findCapturedVar(info *types.Info, lit *ast.FuncLit, name string) *types.Var {
	var found *types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Name != name || found != nil {
			return true
		}
		if v, ok := info.Uses[id].(*types.Var); ok {
			if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
				found = v
			}
		}
		return true
	})
	return found
}

// assignedWithin reports whether v is written inside body, outside the
// given literal (the reuse that races with the captured reference).
func assignedWithin(info *types.Info, body *ast.BlockStmt, v *types.Var, except *ast.FuncLit) bool {
	written := false
	ast.Inspect(body, func(n ast.Node) bool {
		if written {
			return false
		}
		if n == except {
			return false
		}
		switch node := n.(type) {
		case *ast.AssignStmt:
			// Peel indexes and stars: row[j] = x mutates the shared backing
			// the capture aliases, which races just like reassigning row.
			for _, lhs := range node.Lhs {
				if id, ok := assignBase(lhs); ok {
					if obj := info.Uses[id]; obj == v {
						written = true
					}
					if obj := info.Defs[id]; obj == v {
						written = true
					}
				}
			}
		case *ast.IncDecStmt:
			if id, ok := assignBase(node.X); ok && info.Uses[id] == v {
				written = true
			}
		}
		return !written
	})
	return written
}

// assignBase peels parens, indexes and stars off an assignment target
// down to its base identifier.
func assignBase(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			id, ok := e.(*ast.Ident)
			return id, ok
		}
	}
}
