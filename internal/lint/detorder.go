// The detorder analyzer makes the repository's determinism contract
// statically checkable. The paper's detection guarantee rests on the
// secure core recomputing the exact density the model was calibrated
// on, which this repo pins as bit-identity of scores and fits at any
// worker count (DESIGN.md §11). A function annotated //mhm:deterministic
// — and, transitively, every module-local function it can reach through
// static calls, function values or method expressions — must avoid the
// constructs that break bit-identity:
//
//   - iterating a map while accumulating floats or appending output
//     (map order is randomized; float addition does not commute);
//   - time.Now/Since/Until (wall-clock reads);
//   - the global math/rand source (unseeded by the caller; inject a
//     *rand.Rand built from rand.NewSource(seed) instead);
//   - math.FMA (fuses the intermediate rounding, so results differ
//     from the separate multiply-add the pure-Go paths compute);
//   - select statements with more than one communication clause (the
//     runtime picks a ready case pseudo-randomly);
//   - accumulating channel-received worker results in arrival order
//     (the bug class the train/score reductions avoid by writing
//     per-chunk partials and folding them in ascending index order).
//
// Dynamic interface calls and calls through func values are not
// traversed — the annotated caller vouches for what it injects, exactly
// as the hotpath analyzer treats func-valued callees. One class of func
// value IS traversed: a reference to a //mhm:hotpath dispatch variable
// (a runtime kernel dispatch table) reaches every function the module
// statically binds to it, so whichever kernel init selects, its body
// was walked.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// DetOrderAnalyzer returns the detorder analyzer.
func DetOrderAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "detorder",
		Doc:  "//mhm:deterministic functions (and static callees) must avoid nondeterminism sources",
		Run:  detorderRun,
	}
}

// detReach is one function in the deterministic set, with the annotated
// root it was reached from (itself, when directly annotated).
type detReach struct {
	fn   *funcDecl
	root types.Object
}

func detorderRun(prog *Program) []Diagnostic {
	reached := detSet(prog)

	// Deterministic report order: by file position of the declaration.
	objs := make([]types.Object, 0, len(reached))
	for obj := range reached {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })

	var out []Diagnostic
	for _, obj := range objs {
		r := reached[obj]
		via := ""
		if r.root != obj {
			via = fmt.Sprintf(" (deterministic via %s)", r.root.Name())
		}
		checkDetBody(prog, r.fn.pkg, r.fn.decl, obj.Name()+via, &out)
	}
	return out
}

// detSet computes the deterministic function set: BFS from every
// //mhm:deterministic root through static module-local calls and
// references (method expressions and function values taken inside a
// deterministic body run as part of the deterministic computation).
func detSet(prog *Program) map[types.Object]detReach {
	reached := map[types.Object]detReach{}
	var queue []types.Object
	// Seed with annotated roots in deterministic order.
	var roots []types.Object
	for obj := range prog.deterministic {
		roots = append(roots, obj)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Pos() < roots[j].Pos() })
	for _, obj := range roots {
		if fd := prog.declOf(obj); fd != nil && fd.decl.Body != nil {
			reached[obj] = detReach{fn: fd, root: obj}
			queue = append(queue, obj)
		}
	}
	enqueue := func(fn types.Object, root types.Object) {
		if _, seen := reached[fn]; seen {
			return
		}
		fd := prog.declOf(fn)
		if fd == nil || fd.decl.Body == nil {
			return
		}
		reached[fn] = detReach{fn: fd, root: root}
		queue = append(queue, fn)
	}
	for len(queue) > 0 {
		obj := queue[0]
		queue = queue[1:]
		r := reached[obj]
		ast.Inspect(r.fn.decl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			used := r.fn.pkg.Info.Uses[id]
			// A dispatch-table reference reaches every kernel the module
			// binds to the table: calls through the variable execute one
			// of them, and which one is a CPU-feature choice the
			// determinism contract must not depend on.
			if prog.IsDispatchVar(used) {
				for _, b := range prog.dispatchBind[used] {
					if b.fn != nil {
						enqueue(b.fn, r.root)
					}
				}
				return true
			}
			fn, ok := used.(*types.Func)
			if !ok || isInterfaceMethod(fn) {
				return true
			}
			if fn.Pkg() == nil || !prog.isLocal(fn.Pkg().Path()) {
				return true
			}
			enqueue(fn, r.root)
			return true
		})
	}
	return reached
}

// checkDetBody reports every nondeterminism source in one body.
func checkDetBody(prog *Program, pkg *Package, fd *ast.FuncDecl, name string, out *[]Diagnostic) {
	report := func(pos ast.Node, format string, args ...any) {
		*out = append(*out, Diagnostic{
			Analyzer: "detorder",
			Pos:      prog.Fset.Position(pos.Pos()),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	inspectWithStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			checkDetCall(pkg, name, node, report)
		case *ast.SelectStmt:
			comms := 0
			for _, c := range node.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					comms++
				}
			}
			if comms >= 2 {
				report(node, "deterministic function %s selects over %d ready channels (runtime picks pseudo-randomly); dedicate one channel per result slot", name, comms)
			}
		case *ast.RangeStmt:
			if t := pkg.Info.Types[node.X].Type; t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					checkMapRangeBody(pkg, name, fd.Body, node, report)
				}
			}
		case *ast.AssignStmt:
			checkRecvAccumulate(pkg, name, node, stack, report)
		}
		return true
	})
}

// checkDetCall flags the banned callees inside a deterministic body.
func checkDetCall(pkg *Package, name string, call *ast.CallExpr, report func(ast.Node, string, ...any)) {
	fn, ok := calleeObject(pkg.Info, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	path := fn.Pkg().Path()
	switch {
	case path == "time" && bannedTimeFuncs[fn.Name()]:
		report(call, "deterministic function %s calls time.%s (wall-clock read)", name, fn.Name())
	case path == "math/rand" || path == "math/rand/v2":
		// Methods on *rand.Rand draw from a caller-injected, seeded
		// source; only the package-level functions hit the global one.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && fn.Name() != "New" && fn.Name() != "NewSource" && fn.Name() != "NewZipf" && fn.Name() != "NewPCG" && fn.Name() != "NewChaCha8" {
			report(call, "deterministic function %s uses the global math/rand source (rand.%s); inject a seeded *rand.Rand", name, fn.Name())
		}
	case path == "math" && fn.Name() == "FMA":
		report(call, "deterministic function %s calls math.FMA (fused rounding differs from the separate multiply-add)", name)
	}
}

// checkMapRangeBody flags float accumulation and output built inside a
// range-over-map body: both observe the randomized iteration order. The
// canonical fix — collect keys, sort, then reduce — necessarily appends
// inside the map range, so an append target later handed to a sort/
// slices call is exempt.
func checkMapRangeBody(pkg *Package, name string, fnBody *ast.BlockStmt, rng *ast.RangeStmt, report func(ast.Node, string, ...any)) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			for _, lhs := range as.Lhs {
				if isFloat(pkg.Info.Types[lhs].Type) && declaredOutside(pkg.Info, lhs, rng) {
					report(as, "deterministic function %s accumulates a float across a map range (iteration order is randomized); collect keys, sort, then reduce", name)
				}
			}
		case token.ASSIGN, token.DEFINE:
			// append into a variable living outside the loop emits output
			// in map order.
			for i, rhs := range as.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				if b, ok := calleeObject(pkg.Info, call).(*types.Builtin); !ok || b.Name() != "append" {
					continue
				}
				if i < len(as.Lhs) && declaredOutside(pkg.Info, as.Lhs[i], rng) && !sortedLater(pkg, fnBody, as.Lhs[i]) {
					report(as, "deterministic function %s appends output inside a map range (iteration order is randomized); collect keys, sort, then emit", name)
				}
			}
		}
		return true
	})
}

// declaredOutside reports whether the variable behind expr is declared
// outside the given node's span (i.e. survives across iterations).
// Index/selector bases count: dst[k] targets dst.
func declaredOutside(info *types.Info, expr ast.Expr, within ast.Node) bool {
	for {
		switch e := expr.(type) {
		case *ast.IndexExpr:
			expr = e.X
			continue
		case *ast.ParenExpr:
			expr = e.X
			continue
		case *ast.StarExpr:
			expr = e.X
			continue
		}
		break
	}
	id, ok := expr.(*ast.Ident)
	if !ok {
		// Selector (field) targets outlive any loop.
		_, isSel := expr.(*ast.SelectorExpr)
		return isSel
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.Pos() < within.Pos() || v.Pos() > within.End()
}

// sortedLater reports whether the variable behind expr is passed to any
// sort or slices call somewhere in the function: the collect-sort-emit
// idiom that repairs map-iteration order.
func sortedLater(pkg *Package, fnBody *ast.BlockStmt, expr ast.Expr) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return false
	}
	target := pkg.Info.Uses[id]
	if target == nil {
		target = pkg.Info.Defs[id]
	}
	if target == nil {
		return false
	}
	sorted := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || sorted {
			return !sorted
		}
		fn, ok := calleeObject(pkg.Info, call).(*types.Func)
		if !ok || fn.Pkg() == nil || (fn.Pkg().Path() != "sort" && fn.Pkg().Path() != "slices") {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if aid, ok := an.(*ast.Ident); ok && pkg.Info.Uses[aid] == target {
					sorted = true
				}
				return !sorted
			})
		}
		return !sorted
	})
	return sorted
}

// checkRecvAccumulate flags `acc += <-ch` style collection inside a
// loop: worker results fold in arrival order, which varies run to run.
func checkRecvAccumulate(pkg *Package, name string, as *ast.AssignStmt, stack []ast.Node, report func(ast.Node, string, ...any)) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN, token.ASSIGN:
	default:
		return
	}
	inLoop := false
	for _, anc := range stack {
		switch anc.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			inLoop = true
		}
	}
	if !inLoop {
		return
	}
	hasRecv := false
	for _, rhs := range as.Rhs {
		ast.Inspect(rhs, func(n ast.Node) bool {
			if un, ok := n.(*ast.UnaryExpr); ok && un.Op == token.ARROW {
				hasRecv = true
			}
			return true
		})
	}
	if !hasRecv {
		return
	}
	for _, lhs := range as.Lhs {
		if isFloat(pkg.Info.Types[lhs].Type) {
			// `acc = acc + <-ch` and compound forms both reorder the fold;
			// a plain overwrite of a per-index slot (dst[i] = <-ch) keyed by
			// something received alongside is fine, but a float target that
			// also appears on the right is an accumulation.
			if as.Tok != token.ASSIGN || mentions(as.Rhs, lhs, pkg.Info) {
				report(as, "deterministic function %s accumulates channel-received worker results in arrival order; write per-chunk partials and reduce in ascending index order", name)
			}
		}
	}
}

// mentions reports whether the variable behind lhs also appears in any
// rhs expression (the accumulation pattern x = x + ...).
func mentions(rhs []ast.Expr, lhs ast.Expr, info *types.Info) bool {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return false
	}
	target := info.Uses[id]
	if target == nil {
		target = info.Defs[id]
	}
	if target == nil {
		return false
	}
	found := false
	for _, e := range rhs {
		ast.Inspect(e, func(n ast.Node) bool {
			if rid, ok := n.(*ast.Ident); ok && info.Uses[rid] == target {
				found = true
			}
			return true
		})
	}
	return found
}
