package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// writeModule materializes a file map under dir.
func writeModule(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for name, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestLoadTreeDeterministic loads the whole module twice and checks the
// package lists and full-suite diagnostics agree: parallel scheduling
// must not leak into results.
func TestLoadTreeDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree load in -short mode")
	}
	run := func() ([]string, []string) {
		prog, err := Load("../..", []string{"./..."})
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		var paths []string
		for _, pkg := range prog.Pkgs {
			paths = append(paths, pkg.Path)
		}
		var diags []string
		for _, d := range RunAnalyzers(prog, Analyzers()) {
			diags = append(diags, d.String())
		}
		return paths, diags
	}
	p1, d1 := run()
	p2, d2 := run()
	if fmt.Sprint(p1) != fmt.Sprint(p2) {
		t.Errorf("package lists differ across loads:\n%v\n%v", p1, p2)
	}
	if fmt.Sprint(d1) != fmt.Sprint(d2) {
		t.Errorf("diagnostics differ across loads:\n%v\n%v", d1, d2)
	}
}

// TestLoadParallelMatchesSerial pins that the parallel scheduler and a
// serial one (parallelism forced to 1) produce identical programs.
func TestLoadParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree load in -short mode")
	}
	load := func(par int) []string {
		old := loadParallelism
		loadParallelism = func() int { return par }
		defer func() { loadParallelism = old }()
		prog, err := Load("../..", []string{"./..."})
		if err != nil {
			t.Fatalf("load (parallelism %d): %v", par, err)
		}
		var out []string
		for path, pkg := range prog.All {
			out = append(out, fmt.Sprintf("%s=%d files", path, len(pkg.Files)))
		}
		var diags []string
		for _, d := range RunAnalyzers(prog, Analyzers()) {
			diags = append(diags, d.String())
		}
		return append(out, diags...)
	}
	serial := load(1)
	parallel := load(8)
	sort.Strings(serial)
	sort.Strings(parallel)
	if fmt.Sprint(serial) != fmt.Sprint(parallel) {
		t.Errorf("serial and parallel loads disagree:\nserial:   %v\nparallel: %v", serial, parallel)
	}
}

// TestLoadImportCycle verifies the pre-check rejects a module-local
// import cycle instead of deadlocking the scheduler.
func TestLoadImportCycle(t *testing.T) {
	dir := t.TempDir()
	writeModule(t, dir, map[string]string{
		"go.mod":    "module example.com/cyc\n\ngo 1.21\n",
		"a/a.go":    "package a\n\nimport \"example.com/cyc/b\"\n\nvar X = b.Y\n",
		"b/b.go":    "package b\n\nimport \"example.com/cyc/a\"\n\nvar Y = 1\n\nvar Z = a.X\n",
		"main/m.go": "package main\n\nimport \"example.com/cyc/a\"\n\nfunc main() { _ = a.X }\n",
	})
	_, err := Load(dir, []string{"./..."})
	if err == nil {
		t.Fatal("cyclic module loaded without error")
	}
	if got := err.Error(); !strings.Contains(got, "import cycle") {
		t.Errorf("want import-cycle error, got %q", got)
	}
}

// BenchmarkLoadTree pins the wall time of a whole-tree load — the cost
// the parallel loader exists to keep down.
func BenchmarkLoadTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prog, err := Load("../..", []string{"./..."})
		if err != nil {
			b.Fatal(err)
		}
		if len(prog.Pkgs) == 0 {
			b.Fatal("empty program")
		}
	}
}
