// Package gl exercises the goleak analyzer: every goroutine needs a
// join (WaitGroup, drained/closed channel, context cancel), and a
// dispatch closure must not capture loop-reused state by reference.
package gl

import (
	"context"
	"sync"
)

// sink absorbs fixture values.
var sink float64

func work(w int) { sink += float64(w) }

// Fire launches a closure with no join of any kind.
func Fire() {
	go func() { // want "no join"
		sink++
	}()
}

// leakyLoop spins forever with no cancel path.
func leakyLoop() {
	for {
		sink++
	}
}

// Named launches a module-local function whose body has no join.
func Named() {
	go leakyLoop() // want "no join"
}

// spinner carries the leaking method for the go s.run() form.
type spinner struct{ n int }

func (s *spinner) run() {
	for {
		s.n++
	}
}

// Spin launches a method value with no join in its body.
func Spin(s *spinner) {
	go s.run() // want "no join"
}

// Orphan sends on a channel nothing in the module ever receives from.
func Orphan() {
	ch := make(chan int)
	go func() { // want "no join"
		ch <- 1
	}()
}

// Consume receives from a channel nothing ever closes or sends on.
func Consume() {
	ch := make(chan float64)
	go func() { // want "no join"
		for v := range ch {
			sink += v
		}
	}()
}

// Scratch reuses a buffer across iterations while a dispatched closure
// holds a reference to it: the classic dispatch race.
func Scratch(n int) {
	var wg sync.WaitGroup
	row := make([]float64, 4)
	for i := 0; i < n; i++ {
		row[0] = float64(i)
		wg.Add(1)
		go func() { // want "captures row by reference"
			defer wg.Done()
			sink += row[0]
		}()
	}
	wg.Wait()
}

// Fan is the repository dispatch idiom: per-worker argument passing and
// a WaitGroup join. Clean.
func Fan(n int) {
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			work(w)
		}(w)
	}
	wg.Wait()
}

// Produce's goroutine sends on a channel the function drains: joined.
func Produce(n int) []float64 {
	ch := make(chan float64, n)
	go func() {
		for i := 0; i < n; i++ {
			ch <- float64(i)
		}
		close(ch)
	}()
	var out []float64
	for v := range ch {
		out = append(out, v)
	}
	return out
}

// ticks feeds Watch; Tick sends on it so the fact base sees a sender.
var ticks = make(chan float64)

func Tick(v float64) { ticks <- v }

// Watch's goroutine exits through the context cancel path.
func Watch(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ticks:
				sink += v
			}
		}
	}()
}

// pool mirrors the sharded-pipeline shape: workers join through a field
// WaitGroup waited on (and a jobs channel closed) in Close.
type pool struct {
	wg   sync.WaitGroup
	jobs chan int
}

func (p *pool) Start(n int) {
	for w := 0; w < n; w++ {
		p.wg.Add(1)
		go p.run()
	}
}

func (p *pool) run() {
	defer p.wg.Done()
	for j := range p.jobs {
		work(j)
	}
}

func (p *pool) Close() {
	close(p.jobs)
	p.wg.Wait()
}

// metricsPump runs for the process lifetime; its launch is reviewed and
// suppressed with a reason.
func metricsPump() {
	for {
		sink++
	}
}

func Daemon() {
	//mhmlint:ignore goleak process-lifetime metrics pump, exits with the process
	go metricsPump()
}
