// Package clean is the negative fixture: it uses atomics, floats,
// errors and hot-path annotations correctly, plus one deliberate
// violation suppressed by an //mhmlint:ignore directive, and must
// produce zero findings.
package clean

import (
	"os"
	"sync/atomic"
)

// Counter is a correctly handled atomic field.
type Counter struct {
	n atomic.Uint64
}

// Inc is a compliant hot-path increment.
//
//mhm:hotpath
func (c *Counter) Inc() { c.n.Add(1) }

// Value loads through the atomic API.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Cleanup drops an error on purpose, visibly, with a reason.
func Cleanup(path string) {
	//mhmlint:ignore errdrop best-effort cleanup of a scratch file
	os.Remove(path)
}

// NearlyEqual is tolerance-based float comparison.
func NearlyEqual(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}
