// Package obs exercises the nilreceiver analyzer. Its import path ends
// in "obs", so exported handle types with exported pointer-receiver
// methods must be annotated //mhm:nilsafe, and annotated types must keep
// their guards.
package obs

// Counter is a guarded handle type.
//
//mhm:nilsafe
type Counter struct {
	n uint64
}

// Add is compliant: the guard comes first.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.n += n
}

// Inc is compliant by delegation: the receiver is only used to call
// (nil-safe) methods.
func (c *Counter) Inc() { c.Add(1) }

// Value dereferences the receiver with no guard in sight.
func (c *Counter) Value() uint64 { // want `dereferences receiver "c" without a nil-receiver guard`
	return c.n
}

// reset is unexported and exempt.
func (c *Counter) reset() { c.n = 0 }

// Gauge has pointer-receiver methods but no annotation.
type Gauge struct { // want "must be annotated //mhm:nilsafe"
	v float64
}

// Set would need a guard once Gauge is annotated.
func (g *Gauge) Set(v float64) { g.v = v }

// Reading is a value-receiver type and never needs annotation.
type Reading struct {
	v float64
}

// Value cannot observe a nil receiver.
func (r Reading) Value() float64 { return r.v }
