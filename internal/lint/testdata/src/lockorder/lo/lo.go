// Package lo exercises the lockorder analyzer: the module-wide
// acquisition graph must stay acyclic, each ordered pair must keep one
// Lock/RLock mode, and no lock is reacquired while held.
package lo

import "sync"

// sink absorbs fixture values.
var sink int

// a and b form the direct AB/BA cycle.
var (
	a sync.Mutex
	b sync.Mutex
)

// AB acquires a then b; BA acquires b then a. Together: a cycle,
// reported once at its lexically first edge.
func AB() {
	a.Lock()
	defer a.Unlock()
	b.Lock() // want "lock-order cycle"
	defer b.Unlock()
	sink++
}

func BA() {
	b.Lock()
	defer b.Unlock()
	a.Lock()
	defer a.Unlock()
	sink++
}

// box holds a field mutex for the self-deadlock case.
type box struct {
	mu sync.Mutex
	n  int
}

// Double reacquires a held field mutex.
func (x *box) Double() {
	x.mu.Lock()
	x.mu.Lock() // want "self-deadlock"
	x.n++
	x.mu.Unlock()
	x.mu.Unlock()
}

// rw is the read-to-write upgrade case.
var rw sync.RWMutex

// Upgrade takes the read lock and then asks for the write lock: with a
// writer queued in between, this blocks forever.
func Upgrade() {
	rw.RLock()
	defer rw.RUnlock()
	rw.Lock() // want "self-deadlock"
	defer rw.Unlock()
	sink++
}

// m1 and m2 are ordered consistently but in mixed modes.
var (
	m1 sync.Mutex
	m2 sync.RWMutex
)

func WriteNested() {
	m1.Lock()
	defer m1.Unlock()
	m2.Lock()
	defer m2.Unlock()
	sink++
}

func ReadNested() {
	m1.Lock()
	defer m1.Unlock()
	m2.RLock() // want "mixed RLock/Lock acquisition"
	defer m2.RUnlock()
	sink++
}

// d and e form a cycle only through a callee: Outer holds d and calls
// lockE, whose acquisition of e becomes the d→e edge.
var (
	d sync.Mutex
	e sync.Mutex
)

func lockE() {
	e.Lock()
	sink++
	e.Unlock()
}

func Outer() {
	d.Lock()
	defer d.Unlock()
	lockE() // want "lock-order cycle"
}

func Inner() {
	e.Lock()
	defer e.Unlock()
	d.Lock()
	defer d.Unlock()
	sink++
}

// n1 and n2 are always taken in the same order and mode: clean.
var (
	n1 sync.Mutex
	n2 sync.Mutex
)

func OrderedOne() {
	n1.Lock()
	defer n1.Unlock()
	n2.Lock()
	defer n2.Unlock()
	sink++
}

func OrderedTwo() {
	n1.Lock()
	defer n1.Unlock()
	n2.Lock()
	defer n2.Unlock()
	sink++
}

// q1 and q2 never nest: releasing before the next acquire makes no edge.
var (
	q1 sync.Mutex
	q2 sync.Mutex
)

func Sequential() {
	q1.Lock()
	sink++
	q1.Unlock()
	q2.Lock()
	sink++
	q2.Unlock()
}

func SequentialReversed() {
	q2.Lock()
	sink++
	q2.Unlock()
	q1.Lock()
	sink++
	q1.Unlock()
}

// z1 and z2: a closure defined while z1 is held runs later, on another
// goroutine or call path — it contributes no edge.
var (
	z1 sync.Mutex
	z2 sync.Mutex
)

func Deferred() func() {
	z1.Lock()
	defer z1.Unlock()
	f := func() {
		z2.Lock()
		sink++
		z2.Unlock()
	}
	return f
}

func ReversedLater() {
	z2.Lock()
	defer z2.Unlock()
	sink++
}

// s1 is a reviewed recursive acquisition, suppressed with a reason.
var s1 sync.Mutex

func Reviewed() {
	s1.Lock()
	defer s1.Unlock()
	//mhmlint:ignore lockorder re-entry is guarded by the caller's state machine
	s1.Lock()
	defer s1.Unlock()
	sink++
}
