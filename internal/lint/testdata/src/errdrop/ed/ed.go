// Package ed exercises the errdrop analyzer: error returns may not be
// silently discarded by expression statements.
package ed

import (
	"bufio"
	"fmt"
	"os"
	"strings"
)

// fallible returns an error that must not be dropped.
func fallible() error { return nil }

// pair returns a value and an error.
func pair() (int, error) { return 0, nil }

// Drops collects the violations.
func Drops(w *bufio.Writer) {
	fallible()          // want "error return of fallible is silently discarded"
	pair()              // want "error return of pair is silently discarded"
	os.Remove("gone")   // want "error return of os.Remove is silently discarded"
	w.Flush()           // want "error return of w.Flush is silently discarded"
	fmt.Fprintf(w, "x") // fine: bufio latches its error until Flush
}

// Allowed collects the sanctioned forms.
func Allowed(w *bufio.Writer) string {
	_ = fallible()
	if err := fallible(); err != nil {
		fmt.Fprintln(os.Stderr, "ed:", err)
	}
	fmt.Println("console output is best-effort")
	var b strings.Builder
	b.WriteString("builders never fail")
	fmt.Fprintf(&b, " (%d)", 1)
	return b.String()
}
