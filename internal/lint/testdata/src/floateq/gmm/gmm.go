// Package gmm exercises the floateq analyzer: its import path ends in
// "gmm", one of the numeric packages where raw float equality is
// banned.
package gmm

// epsilon stands in for the mat helpers in this self-contained fixture.
const epsilon = 1e-9

// Converged compares log-likelihoods the wrong way.
func Converged(ll, prev float64) bool {
	return ll == prev // want "floating-point == comparison"
}

// Changed compares floats for inequality.
func Changed(a, b float64) bool {
	return a != b // want "floating-point != comparison"
}

// IsUnset tests a sentinel against the zero constant.
func IsUnset(tol float64) bool {
	return tol == 0 // want "use mat.IsZero"
}

// Near is the sanctioned tolerance form and is not flagged.
func Near(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= epsilon
}

// SameCount compares integers; only floats are the analyzer's business.
func SameCount(n, m int) bool {
	return n == m
}

// mixed compares an int-typed expression against a float constant
// context... it does not: untyped consts on both sides are exact.
func mixed() bool {
	return 1.5 == 3.0/2.0
}
