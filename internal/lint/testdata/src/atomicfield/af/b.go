package af

import "sync/atomic"

// LoadHits is the compliant cross-file reader.
func LoadHits(s *S) uint64 {
	return atomic.LoadUint64(&s.hits)
}

// StoreHitsRacy writes the atomic field plainly from another file — the
// multi-file case the analyzer must catch.
func StoreHitsRacy(s *S) {
	s.hits = 0 // want "non-atomic access to field af.hits"
}

// Helper takes the address of a typed atomic field for a callee, which
// is allowed (the callee can only use methods).
func Helper(s *S) *atomic.Uint64 {
	return &s.gen
}
