// Package af exercises the atomicfield analyzer: mixed atomic/plain
// access to the same field, across files, in both the legacy-call and
// typed styles.
package af

import "sync/atomic"

// S mixes a legacy-atomic counter with a plain one.
type S struct {
	hits  uint64
	plain uint64
	gen   atomic.Uint64
}

// IncHits is the atomic writer that pins S.hits as an atomic field.
func (s *S) IncHits() {
	atomic.AddUint64(&s.hits, 1)
}

// ReadHitsRacy reads the pinned field without sync/atomic.
func (s *S) ReadHitsRacy() uint64 {
	return s.hits // want "non-atomic access to field af.hits"
}

// Plain never touches atomics and stays unflagged.
func (s *S) Plain() uint64 {
	s.plain++
	return s.plain
}

// Gen uses the typed style correctly: method calls only.
func (s *S) Gen() uint64 {
	return s.gen.Load()
}

// GenRacy copies the atomic value instead of loading it.
func (s *S) GenRacy() uint64 {
	g := s.gen // want "field af.gen has an atomic type"
	return g.Load()
}
