// Package det exercises the detorder analyzer: //mhm:deterministic
// functions and their static callees must avoid nondeterminism sources.
package det

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// sink absorbs fixture values.
var sink float64

// Sum accumulates a float in map-iteration order.
//
//mhm:deterministic
func Sum(m map[int]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want "accumulates a float across a map range"
	}
	return total
}

// Keys emits output in map-iteration order without sorting it.
//
//mhm:deterministic
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "appends output inside a map range"
	}
	return out
}

// Stamp reads the wall clock.
//
//mhm:deterministic
func Stamp() int64 {
	t := time.Now() // want "calls time.Now"
	return t.Unix()
}

// Jitter draws from the global math/rand source.
//
//mhm:deterministic
func Jitter(x float64) float64 {
	return x + rand.Float64() // want "global math/rand source"
}

// Fused uses the fused multiply-add.
//
//mhm:deterministic
func Fused(a, b, c float64) float64 {
	return math.FMA(a, b, c) // want "calls math.FMA"
}

// Gather races two channels through a select.
//
//mhm:deterministic
func Gather(a, b chan float64) float64 {
	select { // want "selects over 2 ready channels"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// Collect folds worker results in arrival order.
//
//mhm:deterministic
func Collect(ch chan float64, n int) float64 {
	var acc float64
	for i := 0; i < n; i++ {
		acc += <-ch // want "arrival order"
	}
	return acc
}

// Root is clean itself but reaches helper through a static call.
//
//mhm:deterministic
func Root(xs []float64) float64 {
	return helper(xs)
}

// helper is unannotated; the contract reaches it from Root.
func helper(xs []float64) float64 {
	_ = time.Now() // want "helper \\(deterministic via Root\\) calls time.Now"
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// scaler carries the method taken as a method expression in Apply.
type scaler struct{}

func (scaler) bump(x float64) float64 {
	return x * rand.Float64() // want "bump \\(deterministic via Apply\\)"
}

// Apply reaches bump through a method expression, not a direct call.
//
//mhm:deterministic
func Apply(xs []float64) {
	f := scaler.bump
	for i := range xs {
		xs[i] = f(scaler{}, xs[i])
	}
}

// SortedSum is the canonical repair: collect keys, sort, then reduce in
// sorted order. The append inside the map range is exempt because the
// slice is handed to sort.Strings.
//
//mhm:deterministic
func SortedSum(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var total float64
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// Seeded draws from a caller-injected, seeded source: allowed.
//
//mhm:deterministic
func Seeded(seed int64, n int) float64 {
	rng := rand.New(rand.NewSource(seed))
	var s float64
	for i := 0; i < n; i++ {
		s += rng.Float64()
	}
	return s
}

// Wall carries a reviewed suppression for a boot-time stamp.
//
//mhm:deterministic
func Wall() int64 {
	//mhmlint:ignore detorder boot-time stamp is outside the scored path
	return time.Now().Unix()
}

// valuer is a dynamic dependency: interface calls are not traversed, the
// annotated caller vouches for what it injects.
type valuer interface {
	value(x float64) float64
}

// Dyn calls through an interface; clock's wall-clock read is not reached.
//
//mhm:deterministic
func Dyn(v valuer, x float64) float64 {
	return v.value(x)
}

// clock satisfies valuer but is never referenced from a deterministic
// body, so its wall-clock read is out of contract.
type clock struct{}

func (clock) value(x float64) float64 {
	return x * float64(time.Now().Unix())
}

// Free is unannotated and unreachable from any root: no contract.
func Free() int64 {
	return time.Now().Unix()
}

// kernel is a runtime dispatch table; the detorder walk must reach
// every function the package binds to it, because which binding runs
// is a CPU-feature choice the determinism contract cannot depend on.
//
//mhm:hotpath
var kernel func() float64 = safeKernel

func init() {
	kernel = clockKernel
}

// safeKernel is deterministic; reached through the table, no finding.
func safeKernel() float64 { return 1.5 }

// clockKernel is only ever called through the dispatch table.
func clockKernel() float64 {
	return float64(time.Now().UnixNano()) // want "clockKernel .deterministic via Project. calls time.Now"
}

// Project is the annotated root; its only path to clockKernel is the
// call through the dispatch variable.
//
//mhm:deterministic
func Project(x float64) float64 {
	return x * kernel()
}
