// Package hp exercises the hotpath analyzer: annotated functions must
// avoid allocating constructs and unannotated module-local callees.
package hp

import (
	"fmt"
	"sort"
	"time"
)

// sink defeats trivial dead-code elimination in fixtures.
var sink any

// tick is an annotated helper; calling it from a hot function is fine.
//
//mhm:hotpath
func tick(n int) int { return n + 1 }

// cold is NOT annotated.
func cold(n int) int { return n * 2 }

// Hot demonstrates every banned construct.
//
//mhm:hotpath
func Hot(buf []int, n int) int {
	s := fmt.Sprintf("%d", n) // want "calls fmt.Sprintf"
	t := time.Now()           // want "calls time.Now"
	buf = append(buf, n)      // want "calls append"
	m := make([]int, n)       // want "calls make"
	p := new(int)             // want "calls new"
	kv := map[int]int{n: n}   // want "builds a map literal"
	lit := []int{n}           // want "builds a slice literal"
	f := func() int {         // want "capturing n"
		return n
	}
	go tick(n)    // want "spawns a goroutine"
	defer tick(n) // want "defers a call"
	n = cold(n)   // want "calls hp.cold, which is not annotated"
	n = tick(n)
	use(s, t, buf, m, p, kv, lit, f)
	return n
}

// use absorbs fixture values; it is annotated so calls to it are legal.
//
//mhm:hotpath
func use(args ...any) { sink = args }

// Warm shows the allowed forms: annotated callees, stdlib outside the
// ban list, non-capturing closures, and plain arithmetic.
//
//mhm:hotpath
func Warm(xs []float64, n int) int {
	i := sort.SearchFloat64s(xs, float64(n))
	n = tick(n + i)
	cmp := func(a, b int) bool { return a < b }
	if cmp(n, i) {
		return i
	}
	return n
}

// Cold is unannotated: anything goes.
func Cold(n int) string {
	defer cold(n)
	return fmt.Sprintf("%v %v", time.Now(), append([]int{}, n))
}

// dot is a runtime kernel dispatch table: the directive on a
// func-typed package variable makes every binding site checkable.
//
//mhm:hotpath
var dot func(n int) int = tick

// mis is a dispatch table whose declaration initializer is already in
// violation.
//
//mhm:hotpath
var mis func(n int) int = cold // want "dispatch variable mis is bound to cold"

// optional starts nil (a cleared table is not a binding).
//
//mhm:hotpath
var optional func(n int) int

func init() {
	dot = cold              // want "dispatch variable dot is bound to cold, which is not annotated"
	dot = func(n int) int { // want "dispatch variable dot is bound to a dynamically computed value"
		return n
	}
	dot = tick
	optional = nil
	optional = tick
}

// Dispatch calls through the table from a hot body: legal, because
// every function bound to dot was checked at its binding site.
//
//mhm:hotpath
func Dispatch(n int) int {
	if optional != nil {
		n = optional(n)
	}
	return dot(n)
}
