package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// want expectation comments follow the go/analysis convention: a
// `// want "regexp"` (or backquoted) comment on a line means exactly one
// diagnostic whose message matches the regexp is expected on that line.
var wantRe = regexp.MustCompile("//\\s*want\\s+(`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

type wantExpect struct {
	file string // base name
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// collectWants scans every non-test .go file in dir for want comments.
func collectWants(t *testing.T, dir string) []*wantExpect {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	var wants []*wantExpect
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("read fixture file: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			raw := m[1]
			var pat string
			if raw[0] == '`' {
				pat = raw[1 : len(raw)-1]
			} else {
				pat, err = strconv.Unquote(raw)
				if err != nil {
					t.Fatalf("%s:%d: bad want string %s: %v", e.Name(), i+1, raw, err)
				}
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", e.Name(), i+1, pat, err)
			}
			wants = append(wants, &wantExpect{file: e.Name(), line: i + 1, re: re, raw: pat})
		}
	}
	return wants
}

// checkFixture loads the fixture package at dir (relative to this
// package), runs the named analyzers over it, and asserts that the
// diagnostics and the want comments match one-to-one.
func checkFixture(t *testing.T, dir string, names ...string) {
	t.Helper()
	prog, err := Load(".", []string{"./" + filepath.ToSlash(dir)})
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	var selected []*Analyzer
	for _, a := range Analyzers() {
		for _, name := range names {
			if a.Name == name {
				selected = append(selected, a)
			}
		}
	}
	if len(selected) != len(names) {
		t.Fatalf("unknown analyzer in %v", names)
	}
	diags := RunAnalyzers(prog, selected)
	wants := collectWants(t, dir)

	var unmatched []string
	for _, d := range diags {
		base := filepath.Base(d.Pos.Filename)
		found := false
		for _, w := range wants {
			if !w.hit && w.file == base && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				found = true
				break
			}
		}
		if !found {
			unmatched = append(unmatched, fmt.Sprintf("unexpected diagnostic %s:%d: %s: %s",
				base, d.Pos.Line, d.Analyzer, d.Message))
		}
	}
	for _, w := range wants {
		if !w.hit {
			unmatched = append(unmatched, fmt.Sprintf("missing diagnostic %s:%d: want %q",
				w.file, w.line, w.raw))
		}
	}
	sort.Strings(unmatched)
	for _, msg := range unmatched {
		t.Error(msg)
	}
}

func TestAtomicFieldFixture(t *testing.T) {
	checkFixture(t, "testdata/src/atomicfield/af", "atomicfield")
}

func TestNilReceiverFixture(t *testing.T) {
	checkFixture(t, "testdata/src/nilreceiver/obs", "nilreceiver")
}

func TestHotpathFixture(t *testing.T) {
	checkFixture(t, "testdata/src/hotpath/hp", "hotpath")
}

func TestFloatEqFixture(t *testing.T) {
	checkFixture(t, "testdata/src/floateq/gmm", "floateq")
}

func TestErrDropFixture(t *testing.T) {
	checkFixture(t, "testdata/src/errdrop/ed", "errdrop")
}

func TestDetOrderFixture(t *testing.T) {
	checkFixture(t, "testdata/src/detorder/det", "detorder")
}

func TestLockOrderFixture(t *testing.T) {
	checkFixture(t, "testdata/src/lockorder/lo", "lockorder")
}

func TestGoLeakFixture(t *testing.T) {
	checkFixture(t, "testdata/src/goleak/gl", "goleak")
}

// TestCleanFixture is the negative case: a package that plays by every
// rule (including one suppressed violation) yields zero findings from
// the full analyzer suite.
func TestCleanFixture(t *testing.T) {
	names := make([]string, 0, len(Analyzers()))
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	checkFixture(t, "testdata/src/clean/clean", names...)
}

// TestIgnoreRequiresReason verifies that a bare ignore directive is
// itself reported rather than silently honored.
func TestIgnoreRequiresReason(t *testing.T) {
	dir := t.TempDir()
	src := `package bad

import "os"

func f() {
	//mhmlint:ignore errdrop
	os.Remove("x")
}
`
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module example.com/bad\n\ngo 1.21\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	prog, err := Load(dir, []string{"."})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags := RunAnalyzers(prog, Analyzers())
	var gotBad, gotDrop bool
	for _, d := range diags {
		switch d.Analyzer {
		case "mhmlint":
			gotBad = true
		case "errdrop":
			gotDrop = true
		}
	}
	if !gotBad {
		t.Errorf("malformed directive not reported; got %v", diags)
	}
	if !gotDrop {
		t.Errorf("errdrop finding unexpectedly suppressed by a reason-less directive; got %v", diags)
	}
}
