// The atomicfield analyzer enforces the obs/pipeline concurrency
// discipline: once a struct field is touched through sync/atomic
// anywhere in the module, every other access to it must also be atomic.
// Mixed atomic/plain access is exactly the data race the double-buffered
// Memometer design exists to avoid.
//
// Two access styles are covered:
//
//   - legacy call style: atomic.AddUint64(&s.f, 1). The field's address
//     escaping into sync/atomic marks it atomic; any plain read/write of
//     the field elsewhere is reported.
//   - typed style: fields declared as atomic.Uint64 and friends must only
//     be used as method-call receivers (or have their address taken for a
//     helper); a plain copy or assignment is reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// AtomicFieldAnalyzer returns the atomicfield analyzer.
func AtomicFieldAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "atomicfield",
		Doc:  "a field touched via sync/atomic must never be accessed non-atomically",
		Run:  atomicfieldRun,
	}
}

// atomicCallee resolves call to a sync/atomic function, or nil.
func atomicCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil
	}
	return fn
}

// fieldObject resolves a selector expression to the struct-field object
// it selects, or nil if it is not a field selection.
func fieldObject(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

// unwrapIndex peels index expressions: &s.f[i] pins field f just as
// &s.f does.
func unwrapIndex(e ast.Expr) ast.Expr {
	for {
		ix, ok := e.(*ast.IndexExpr)
		if !ok {
			return e
		}
		e = ix.X
	}
}

// isAtomicNamedType reports whether t (after pointers) is one of the
// sync/atomic value types (atomic.Uint64, atomic.Value, ...).
func isAtomicNamedType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

// atomicfieldRun gathers module-wide facts, then reports plain accesses
// in the requested packages.
func atomicfieldRun(prog *Program) []Diagnostic {
	// Phase 1: every field whose address reaches sync/atomic, with the
	// first such position for the report message.
	atomicUsed := map[*types.Var]token.Position{}
	for _, pkg := range prog.allSorted() {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || atomicCallee(pkg.Info, call) == nil {
					return true
				}
				for _, arg := range call.Args {
					un, ok := arg.(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					sel, ok := unwrapIndex(un.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if v := fieldObject(pkg.Info, sel); v != nil {
						pos := prog.Fset.Position(un.Pos())
						if old, ok := atomicUsed[v]; !ok || less(pos, old) {
							atomicUsed[v] = pos
						}
					}
				}
				return true
			})
		}
	}

	// Phase 2: report plain accesses in the requested packages.
	var out []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				v := fieldObject(pkg.Info, sel)
				if v == nil {
					return true
				}
				if first, ok := atomicUsed[v]; ok && !insideAtomicArg(pkg.Info, stack) {
					out = append(out, Diagnostic{
						Analyzer: "atomicfield",
						Pos:      prog.Fset.Position(sel.Sel.Pos()),
						Message: fmt.Sprintf("non-atomic access to field %s.%s, which is accessed atomically at %s:%d",
							fieldOwner(v), v.Name(), relFile(prog, first), first.Line),
					})
					return true
				}
				if isAtomicNamedType(v.Type()) && !atomicMethodContext(pkg.Info, stack) {
					out = append(out, Diagnostic{
						Analyzer: "atomicfield",
						Pos:      prog.Fset.Position(sel.Sel.Pos()),
						Message: fmt.Sprintf("field %s.%s has an atomic type and must only be used via its methods or by address",
							fieldOwner(v), v.Name()),
					})
				}
				return true
			})
		}
	}
	return out
}

// insideAtomicArg reports whether the innermost relevant ancestors are
// &expr as a direct argument of a sync/atomic call.
func insideAtomicArg(info *types.Info, stack []ast.Node) bool {
	// Walking outward: optional index expressions, then &, then the call.
	i := len(stack) - 1
	for i >= 0 {
		if _, ok := stack[i].(*ast.IndexExpr); ok {
			i--
			continue
		}
		break
	}
	if i < 1 {
		return false
	}
	un, ok := stack[i].(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return false
	}
	call, ok := stack[i-1].(*ast.CallExpr)
	return ok && atomicCallee(info, call) != nil
}

// atomicMethodContext reports whether a selector of an atomic-typed
// field is used legitimately: as the receiver of a method selection, or
// with its address taken (to hand to a helper that uses it atomically).
func atomicMethodContext(info *types.Info, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.SelectorExpr:
		// h.count.Load(): the parent selection must be a method.
		if s := info.Selections[parent]; s != nil && s.Kind() == types.MethodVal {
			return true
		}
	case *ast.UnaryExpr:
		return parent.Op == token.AND
	}
	return false
}

// fieldOwner names the struct type a field belongs to, best effort.
func fieldOwner(v *types.Var) string {
	if v.Pkg() != nil {
		return v.Pkg().Name()
	}
	return "?"
}

// less orders positions by file, then offset.
func less(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	return a.Offset < b.Offset
}

// relFile renders a diagnostic-friendly path relative to the module root.
func relFile(prog *Program, pos token.Position) string {
	rel, err := filepath.Rel(prog.Root, pos.Filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return pos.Filename
	}
	return filepath.ToSlash(rel)
}
