package lint

import (
	"go/types"
	"strings"
	"testing"
)

// loadSnippet materializes a one-package module and loads it.
func loadSnippet(t *testing.T, src string) *Program {
	t.Helper()
	dir := t.TempDir()
	writeModule(t, dir, map[string]string{
		"go.mod": "module example.com/snip\n\ngo 1.21\n",
		"p/p.go": src,
	})
	prog, err := Load(dir, []string{"./p"})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return prog
}

// lookupFunc finds a declared function object by name in the target
// package.
func lookupFunc(t *testing.T, prog *Program, name string) types.Object {
	t.Helper()
	scope := prog.Pkgs[0].Types.Scope()
	obj := scope.Lookup(name)
	if obj == nil {
		t.Fatalf("no function %s in fixture", name)
	}
	return obj
}

// TestDeterministicDirectiveParsing pins the exact-line rule: the
// directive registers only as its own doc-comment line, not with a
// space after the slashes, trailing text, or placement inside a body.
func TestDeterministicDirectiveParsing(t *testing.T) {
	prog := loadSnippet(t, `package p

//mhm:deterministic
func Exact() int { return 1 }

// mhm:deterministic
func Spaced() int { return 2 }

//mhm:deterministic trailing words
func Trailing() int { return 3 }

// Documented functions register too.
//
//mhm:deterministic
func Documented() int { return 4 }

func Inside() int {
	//mhm:deterministic
	return 5
}
`)
	cases := []struct {
		name string
		want bool
	}{
		{"Exact", true},
		{"Spaced", false},
		{"Trailing", false},
		{"Documented", true},
		{"Inside", false},
	}
	for _, tc := range cases {
		if got := prog.IsDeterministic(lookupFunc(t, prog, tc.name)); got != tc.want {
			t.Errorf("IsDeterministic(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestDeterministicTransitiveScoping pins which callees the contract
// reaches: static calls and references (function values, method
// expressions) are in; interface calls and stdlib are out.
func TestDeterministicTransitiveScoping(t *testing.T) {
	prog := loadSnippet(t, `package p

//mhm:deterministic
func Root(xs []float64) float64 {
	direct(xs)
	f := viaValue
	f(xs)
	g := recv.viaMethodExpr
	g(recv{}, xs)
	var i iface = impl{}
	i.viaIface(xs)
	return 0
}

func direct(xs []float64) float64       { return xs[0] }
func viaValue(xs []float64) float64     { return xs[0] }
func unreached(xs []float64) float64    { return xs[0] }

type recv struct{}

func (recv) viaMethodExpr(xs []float64) float64 { return xs[0] }

type iface interface{ viaIface(xs []float64) float64 }

type impl struct{}

func (impl) viaIface(xs []float64) float64 { return xs[0] }
`)
	set := detSet(prog)
	inSet := func(name string) bool {
		for obj := range set {
			if obj.Name() == name {
				return true
			}
		}
		return false
	}
	for _, name := range []string{"Root", "direct", "viaValue", "viaMethodExpr"} {
		if !inSet(name) {
			t.Errorf("%s should be in the deterministic closure", name)
		}
	}
	for _, name := range []string{"unreached", "viaIface"} {
		if inSet(name) {
			t.Errorf("%s should NOT be in the deterministic closure (caller vouches for dynamic calls)", name)
		}
	}
}

// TestIgnoreDeterministicInteraction pins that an //mhmlint:ignore
// directive suppresses exactly the named analyzer at that line: the
// detorder suppression leaves a same-line errdrop finding standing, and
// an ignore naming a different analyzer suppresses nothing.
func TestIgnoreDeterministicInteraction(t *testing.T) {
	prog := loadSnippet(t, `package p

import (
	"os"
	"time"
)

//mhm:deterministic
func Both() int64 {
	//mhmlint:ignore detorder reviewed wall-clock read in a log path
	os.Remove(time.Now().String())
	return 0
}

//mhm:deterministic
func WrongName() int64 {
	//mhmlint:ignore errdrop not the analyzer that fires here
	return time.Now().Unix()
}
`)
	diags := RunAnalyzers(prog, Analyzers())
	var gotErrdrop, gotDetorderBoth, gotDetorderWrong bool
	for _, d := range diags {
		switch {
		case d.Analyzer == "errdrop":
			gotErrdrop = true
		case d.Analyzer == "detorder" && strings.Contains(d.Message, "Both"):
			gotDetorderBoth = true
		case d.Analyzer == "detorder" && strings.Contains(d.Message, "WrongName"):
			gotDetorderWrong = true
		}
	}
	if !gotErrdrop {
		t.Errorf("errdrop finding was wrongly suppressed by a detorder ignore; diags: %v", diags)
	}
	if gotDetorderBoth {
		t.Errorf("detorder finding in Both survived its suppression; diags: %v", diags)
	}
	if !gotDetorderWrong {
		t.Errorf("detorder finding in WrongName was suppressed by an errdrop ignore; diags: %v", diags)
	}
}

// TestDeterministicViaCalleeMessage pins the "(deterministic via X)"
// attribution on transitively reached functions.
func TestDeterministicViaCalleeMessage(t *testing.T) {
	prog := loadSnippet(t, `package p

import "time"

//mhm:deterministic
func Entry() int64 { return stamp() }

func stamp() int64 { return time.Now().Unix() }
`)
	diags := RunAnalyzers(prog, []*Analyzer{DetOrderAnalyzer()})
	if len(diags) != 1 {
		t.Fatalf("diags = %v, want exactly one", diags)
	}
	if !strings.Contains(diags[0].Message, "stamp (deterministic via Entry)") {
		t.Errorf("missing attribution: %s", diags[0].Message)
	}
}
