// Module-aware package loading built on go/parser and go/types only: the
// module's own import paths resolve to local directories and everything
// else goes through go/importer (export data when available, source
// otherwise). This keeps the driver free of external dependencies while
// still type-checking the full tree.
//
// Loading is parallel in two phases. Parse/discovery fans out over
// package directories (token.FileSet is safe for concurrent use),
// following module-local imports breadth-first until the dependency
// graph is closed. Type-checking then runs one goroutine per package,
// each blocking on its dependencies' completion, so independent
// subtrees check concurrently while imports always resolve to finished
// packages. The toolchain importers are not documented as
// goroutine-safe, so stdlib imports serialize through one mutex and a
// shared cache — which also keeps type identity (one *types.Package per
// path) across concurrently checked packages.
package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// skipDir reports whether a directory is never a lintable package dir
// (mirrors the go tool's pattern-walking rules).
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// goSources lists the non-test .go files of dir that build on the host
// platform, sorted. Build-constraint filtering (//go:build lines and
// _GOOS/_GOARCH filename suffixes) matches what the go tool would
// compile, so arch-specific files with pure-Go fallbacks don't
// redeclare their symbols here.
func goSources(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	return files, nil
}

// ExpandPatterns resolves package patterns relative to cwd into package
// directories. Supported forms: a directory ("./cmd/mhmlint"), a
// recursive pattern ("./...", "./internal/..."), and the module-path
// equivalents ("github.com/memheatmap/mhm/internal/gmm", ".../...").
func ExpandPatterns(cwd, root, modpath string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		// Module-path patterns map onto the tree under root.
		if pat == modpath {
			pat = root
		} else if rest, ok := strings.CutPrefix(pat, modpath+"/"); ok {
			pat = filepath.Join(root, filepath.FromSlash(rest))
		}
		recursive := false
		if pat == "..." {
			pat, recursive = root, true
		} else if strings.HasSuffix(pat, "/...") {
			pat, recursive = strings.TrimSuffix(pat, "/..."), true
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(cwd, base)
		}
		base = filepath.Clean(base)
		if !recursive {
			files, err := goSources(base)
			if err != nil {
				return nil, fmt.Errorf("lint: pattern %q: %w", pat, err)
			}
			if len(files) == 0 {
				return nil, fmt.Errorf("lint: no Go files in %s", base)
			}
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if path != base && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			files, err := goSources(path)
			if err != nil {
				return err
			}
			if len(files) > 0 {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("lint: pattern %q: %w", pat, err)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// loadParallelism bounds both loader phases; overridable in tests.
var loadParallelism = func() int { return runtime.GOMAXPROCS(0) }

// loader resolves and type-checks packages with shared, locked caches.
type loader struct {
	fset    *token.FileSet
	root    string
	modpath string

	mu   sync.Mutex
	pkgs map[string]*Package // by import path, module-local only

	// The toolchain importers are serialized: neither the export-data nor
	// the source importer documents goroutine-safety, and the shared cache
	// guarantees one *types.Package per path across concurrent checks.
	impMu    sync.Mutex
	std      types.Importer // export-data importer for non-module paths
	source   types.Importer // source fallback when export data is absent
	imported map[string]*types.Package
}

// Import implements types.Importer: module-local paths resolve to
// already-checked packages (the scheduler guarantees dependency order),
// everything else defers to the serialized toolchain importers.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.modpath || strings.HasPrefix(path, l.modpath+"/") {
		l.mu.Lock()
		pkg := l.pkgs[path]
		l.mu.Unlock()
		if pkg == nil {
			return nil, fmt.Errorf("lint: internal error: %s imported before it was checked", path)
		}
		return pkg.Types, nil
	}
	l.impMu.Lock()
	defer l.impMu.Unlock()
	if pkg, ok := l.imported[path]; ok {
		return pkg, nil
	}
	pkg, err := l.std.Import(path)
	if err != nil {
		if l.source == nil {
			l.source = importer.ForCompiler(l.fset, "source", nil)
		}
		pkg, err = l.source.Import(path)
		if err != nil {
			return nil, err
		}
	}
	l.imported[path] = pkg
	return pkg, nil
}

// importPathFor maps an absolute directory to its import path. Dirs
// outside the module root (never expected) fall back to the directory
// path itself so error messages stay meaningful.
func (l *loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(dir)
	}
	if rel == "." {
		return l.modpath
	}
	return l.modpath + "/" + filepath.ToSlash(rel)
}

// dirFor inverts importPathFor for module-local import paths.
func (l *loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modpath), "/")
	return filepath.Join(l.root, filepath.FromSlash(rel))
}

// parseJob carries one package through both loader phases.
type parseJob struct {
	dir  string
	path string
	asts []*ast.File
	deps []string // module-local import paths
	err  error
	pkg  *Package
	done chan struct{} // closed once type-checking finished (or was skipped)
}

// discover parses the targets and, breadth-first and in parallel, every
// module-local package they transitively import.
func (l *loader) discover(dirs []string) map[string]*parseJob {
	jobs := map[string]*parseJob{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, loadParallelism())

	var schedule func(dir string)
	schedule = func(dir string) {
		path := l.importPathFor(dir)
		mu.Lock()
		if _, ok := jobs[path]; ok {
			mu.Unlock()
			return
		}
		j := &parseJob{dir: dir, path: path, done: make(chan struct{})}
		jobs[path] = j
		mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			l.parseInto(j)
			<-sem
			for _, dep := range j.deps {
				schedule(l.dirFor(dep))
			}
		}()
	}
	for _, dir := range dirs {
		schedule(dir)
	}
	wg.Wait()
	return jobs
}

// parseInto parses one package directory and records its module-local
// imports.
func (l *loader) parseInto(j *parseJob) {
	files, err := goSources(j.dir)
	if err != nil {
		j.err = err
		return
	}
	if len(files) == 0 {
		j.err = fmt.Errorf("lint: no Go files in %s", j.dir)
		return
	}
	deps := map[string]bool{}
	for _, f := range files {
		parsed, err := parser.ParseFile(l.fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			j.err = err
			return
		}
		j.asts = append(j.asts, parsed)
		for _, imp := range parsed.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == l.modpath || strings.HasPrefix(path, l.modpath+"/") {
				deps[path] = true
			}
		}
	}
	for dep := range deps {
		j.deps = append(j.deps, dep)
	}
	sort.Strings(j.deps)
}

// findImportCycle looks for a cycle in the module-local import graph
// before type-checking starts: the dependency-ordered scheduler would
// otherwise deadlock on one. Deterministic: paths visit in sorted order.
func findImportCycle(jobs map[string]*parseJob) error {
	paths := make([]string, 0, len(jobs))
	for p := range jobs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	const (
		white = 0 // unvisited
		grey  = 1 // on the current DFS path
		black = 2 // finished
	)
	color := map[string]int{}
	var visit func(p string) error
	visit = func(p string) error {
		color[p] = grey
		j := jobs[p]
		if j != nil {
			for _, dep := range j.deps {
				switch color[dep] {
				case grey:
					return fmt.Errorf("lint: import cycle through %s", dep)
				case white:
					if err := visit(dep); err != nil {
						return err
					}
				}
			}
		}
		color[p] = black
		return nil
	}
	for _, p := range paths {
		if color[p] == white {
			if err := visit(p); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkAll type-checks every parsed package: one goroutine per package,
// each gated on its dependencies' completion, bounded by a semaphore
// acquired only after the gates open (so waiting never holds a slot).
func (l *loader) checkAll(jobs map[string]*parseJob) {
	var wg sync.WaitGroup
	sem := make(chan struct{}, loadParallelism())
	for _, j := range jobs {
		wg.Add(1)
		go func(j *parseJob) {
			defer wg.Done()
			defer close(j.done)
			if j.err != nil {
				return
			}
			for _, dep := range j.deps {
				dj := jobs[dep]
				if dj == nil {
					j.err = fmt.Errorf("lint: no Go files in %s", l.dirFor(dep))
					return
				}
				<-dj.done
				if dj.err != nil {
					// The root cause reports from its own job; this package
					// just cannot be checked.
					j.err = fmt.Errorf("lint: skipped %s: dependency %s failed", j.path, dep)
					return
				}
			}
			sem <- struct{}{}
			l.check(j)
			<-sem
		}(j)
	}
	wg.Wait()
}

// check type-checks one parsed package and publishes it.
func (l *loader) check(j *parseJob) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(j.path, l.fset, j.asts, info)
	if err != nil {
		j.err = fmt.Errorf("lint: typecheck %s: %w", j.path, err)
		return
	}
	j.pkg = &Package{Path: j.path, Dir: j.dir, Files: j.asts, Types: tpkg, Info: info}
	l.mu.Lock()
	l.pkgs[j.path] = j.pkg
	l.mu.Unlock()
}

// firstError picks the error from the import-path-smallest failed job,
// skipping secondary "dependency failed" reports when the root cause is
// also present, so the reported error is deterministic under parallel
// loading.
func firstError(jobs map[string]*parseJob) error {
	paths := make([]string, 0, len(jobs))
	for p, j := range jobs {
		if j.err != nil {
			paths = append(paths, p)
		}
	}
	if len(paths) == 0 {
		return nil
	}
	sort.Strings(paths)
	for _, p := range paths {
		if !strings.Contains(jobs[p].err.Error(), "lint: skipped ") {
			return jobs[p].err
		}
	}
	return jobs[paths[0]].err
}

// Load type-checks the packages matched by patterns (resolved relative
// to cwd) and returns a Program ready for analysis.
func Load(cwd string, patterns []string) (*Program, error) {
	// Absolute from the start: relative dirs would defeat the
	// root-relative import-path mapping in importPathFor.
	cwd, err := filepath.Abs(cwd)
	if err != nil {
		return nil, err
	}
	root, err := FindModuleRoot(cwd)
	if err != nil {
		return nil, err
	}
	modpath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	dirs, err := ExpandPatterns(cwd, root, modpath, patterns)
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("lint: no packages matched %v", patterns)
	}
	l := &loader{
		fset:     token.NewFileSet(),
		root:     root,
		modpath:  modpath,
		pkgs:     map[string]*Package{},
		std:      importer.Default(),
		imported: map[string]*types.Package{},
	}
	jobs := l.discover(dirs)
	if err := firstError(jobs); err != nil {
		return nil, err
	}
	if err := findImportCycle(jobs); err != nil {
		return nil, err
	}
	l.checkAll(jobs)
	if err := firstError(jobs); err != nil {
		return nil, err
	}
	prog := &Program{Fset: l.fset, ModPath: modpath, Root: root, All: l.pkgs}
	for _, dir := range dirs {
		prog.Pkgs = append(prog.Pkgs, jobs[l.importPathFor(dir)].pkg)
	}
	prog.scanFacts()
	return prog, nil
}
