// Module-aware package loading built on go/parser and go/types only: the
// module's own import paths resolve to local directories and everything
// else goes through go/importer (export data when available, source
// otherwise). This keeps the driver free of external dependencies while
// still type-checking the full tree.
package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// skipDir reports whether a directory is never a lintable package dir
// (mirrors the go tool's pattern-walking rules).
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// goSources lists the non-test .go files of dir that build on the host
// platform, sorted. Build-constraint filtering (//go:build lines and
// _GOOS/_GOARCH filename suffixes) matches what the go tool would
// compile, so arch-specific files with pure-Go fallbacks don't
// redeclare their symbols here.
func goSources(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	return files, nil
}

// ExpandPatterns resolves package patterns relative to cwd into package
// directories. Supported forms: a directory ("./cmd/mhmlint"), a
// recursive pattern ("./...", "./internal/..."), and the module-path
// equivalents ("github.com/memheatmap/mhm/internal/gmm", ".../...").
func ExpandPatterns(cwd, root, modpath string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		// Module-path patterns map onto the tree under root.
		if pat == modpath {
			pat = root
		} else if rest, ok := strings.CutPrefix(pat, modpath+"/"); ok {
			pat = filepath.Join(root, filepath.FromSlash(rest))
		}
		recursive := false
		if pat == "..." {
			pat, recursive = root, true
		} else if strings.HasSuffix(pat, "/...") {
			pat, recursive = strings.TrimSuffix(pat, "/..."), true
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(cwd, base)
		}
		base = filepath.Clean(base)
		if !recursive {
			files, err := goSources(base)
			if err != nil {
				return nil, fmt.Errorf("lint: pattern %q: %w", pat, err)
			}
			if len(files) == 0 {
				return nil, fmt.Errorf("lint: no Go files in %s", base)
			}
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if path != base && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			files, err := goSources(path)
			if err != nil {
				return err
			}
			if len(files) > 0 {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("lint: pattern %q: %w", pat, err)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// loader resolves and type-checks packages with a shared cache.
type loader struct {
	fset    *token.FileSet
	root    string
	modpath string
	pkgs    map[string]*Package // by import path, module-local only
	loading map[string]bool     // cycle detection
	std     types.Importer      // export-data importer for non-module paths
	source  types.Importer      // source fallback when export data is absent
}

// Import implements types.Importer: module-local paths load from source,
// everything else defers to the toolchain importers.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.modpath || strings.HasPrefix(path, l.modpath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modpath), "/")
		pkg, err := l.loadDir(filepath.Join(l.root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	pkg, err := l.std.Import(path)
	if err == nil {
		return pkg, nil
	}
	if l.source == nil {
		l.source = importer.ForCompiler(l.fset, "source", nil)
	}
	return l.source.Import(path)
}

// importPathFor maps an absolute directory to its import path. Dirs
// outside the module root (never expected) fall back to the directory
// path itself so error messages stay meaningful.
func (l *loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(dir)
	}
	if rel == "." {
		return l.modpath
	}
	return l.modpath + "/" + filepath.ToSlash(rel)
}

// loadDir parses and type-checks the package in dir (cached).
func (l *loader) loadDir(dir string) (*Package, error) {
	path := l.importPathFor(dir)
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := goSources(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var asts []*ast.File
	for _, f := range files {
		parsed, err := parser.ParseFile(l.fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		asts = append(asts, parsed)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(path, l.fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: asts, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Load type-checks the packages matched by patterns (resolved relative
// to cwd) and returns a Program ready for analysis.
func Load(cwd string, patterns []string) (*Program, error) {
	// Absolute from the start: relative dirs would defeat the
	// root-relative import-path mapping in importPathFor.
	cwd, err := filepath.Abs(cwd)
	if err != nil {
		return nil, err
	}
	root, err := FindModuleRoot(cwd)
	if err != nil {
		return nil, err
	}
	modpath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	dirs, err := ExpandPatterns(cwd, root, modpath, patterns)
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("lint: no packages matched %v", patterns)
	}
	l := &loader{
		fset:    token.NewFileSet(),
		root:    root,
		modpath: modpath,
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
		std:     importer.Default(),
	}
	prog := &Program{Fset: l.fset, ModPath: modpath, Root: root, All: map[string]*Package{}}
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	prog.All = l.pkgs
	prog.scanFacts()
	return prog, nil
}
