// The nilreceiver analyzer guards the obs contract that a nil metric
// handle is a no-op: every exported pointer-receiver method on a type
// annotated //mhm:nilsafe must either begin life with an explicit
// receiver nil-check or touch the receiver only by calling (nil-safe)
// methods on it. Additionally, in any package whose import path ends in
// "obs", every exported type that has exported pointer-receiver methods
// must carry the //mhm:nilsafe annotation, so the invariant cannot be
// silently un-enforced by deleting a comment.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// NilReceiverAnalyzer returns the nilreceiver analyzer.
func NilReceiverAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "nilreceiver",
		Doc:  "exported methods on //mhm:nilsafe handle types must keep their nil-receiver guards",
		Run:  nilreceiverRun,
	}
}

func nilreceiverRun(prog *Program) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range prog.Pkgs {
		enforceAnnotated := pathEndsWith(pkg.Path, "obs") || pathEndsWith(pkg.Path, "internal/obs")
		// Types in this package that have exported pointer-receiver methods,
		// for the obs annotation-presence rule.
		withPtrMethods := map[types.Object]token.Pos{}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 {
					continue
				}
				recvType, recvName := receiverInfo(fd)
				if recvType == nil {
					continue // value receiver: cannot be nil
				}
				tobj := pkg.Info.Uses[recvType]
				if tobj == nil {
					continue
				}
				if fd.Name.IsExported() {
					if _, seen := withPtrMethods[tobj]; !seen {
						withPtrMethods[tobj] = tobj.Pos()
					}
				}
				if !prog.IsNilsafe(tobj) || !fd.Name.IsExported() || fd.Body == nil {
					continue
				}
				recvObj := recvVarObject(pkg.Info, fd)
				if recvObj == nil {
					continue // unnamed receiver: body cannot dereference it
				}
				if hasNilGuard(pkg.Info, fd.Body, recvObj) {
					continue
				}
				if receiverMethodOnly(pkg.Info, fd.Body, recvObj) {
					continue // pure delegation to (nil-safe) methods
				}
				out = append(out, Diagnostic{
					Analyzer: "nilreceiver",
					Pos:      prog.Fset.Position(fd.Name.Pos()),
					Message: fmt.Sprintf("exported method (%s).%s on //mhm:nilsafe type dereferences receiver %q without a nil-receiver guard",
						"*"+tobj.Name(), fd.Name.Name, recvName),
				})
			}
		}
		if enforceAnnotated {
			for tobj, pos := range withPtrMethods {
				if !prog.IsNilsafe(tobj) && tobj.Exported() {
					out = append(out, Diagnostic{
						Analyzer: "nilreceiver",
						Pos:      prog.Fset.Position(pos),
						Message: fmt.Sprintf("exported handle type %s has exported pointer-receiver methods and must be annotated %s",
							tobj.Name(), NilsafeDirective),
					})
				}
			}
		}
	}
	return out
}

// receiverInfo returns the receiver's named-type identifier (nil for a
// value receiver) and the receiver variable name ("" when unnamed).
func receiverInfo(fd *ast.FuncDecl) (*ast.Ident, string) {
	field := fd.Recv.List[0]
	name := ""
	if len(field.Names) > 0 {
		name = field.Names[0].Name
	}
	star, ok := field.Type.(*ast.StarExpr)
	if !ok {
		return nil, name
	}
	switch t := star.X.(type) {
	case *ast.Ident:
		return t, name
	case *ast.IndexExpr: // generic receiver *T[P]
		if id, ok := t.X.(*ast.Ident); ok {
			return id, name
		}
	}
	return nil, name
}

// recvVarObject resolves the receiver variable's object.
func recvVarObject(info *types.Info, fd *ast.FuncDecl) types.Object {
	field := fd.Recv.List[0]
	if len(field.Names) == 0 || field.Names[0].Name == "_" {
		return nil
	}
	return info.Defs[field.Names[0]]
}

// hasNilGuard reports whether the body contains an if-condition comparing
// the receiver against nil (either polarity, possibly combined with other
// conditions).
func hasNilGuard(info *types.Info, body *ast.BlockStmt, recv types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		ifstmt, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		ast.Inspect(ifstmt.Cond, func(c ast.Node) bool {
			be, ok := c.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if (isRecvIdent(info, be.X, recv) && isNilIdent(info, be.Y)) ||
				(isRecvIdent(info, be.Y, recv) && isNilIdent(info, be.X)) {
				found = true
				return false
			}
			return true
		})
		return !found
	})
	return found
}

func isRecvIdent(info *types.Info, e ast.Expr, recv types.Object) bool {
	id, ok := e.(*ast.Ident)
	return ok && info.Uses[id] == recv
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// receiverMethodOnly reports whether every use of the receiver in body is
// as the receiver of an invoked method call — i.e. the method merely
// delegates, and nil-safety is the callees' responsibility.
func receiverMethodOnly(info *types.Info, body *ast.BlockStmt, recv types.Object) bool {
	ok := true
	inspectWithStack(body, func(n ast.Node, stack []ast.Node) bool {
		if !ok {
			return false
		}
		id, isIdent := n.(*ast.Ident)
		if !isIdent || info.Uses[id] != recv {
			return true
		}
		// The identifier must be the X of a method-value selector whose
		// parent is a call using it as the function.
		if len(stack) < 2 {
			ok = false
			return false
		}
		sel, isSel := stack[len(stack)-1].(*ast.SelectorExpr)
		if !isSel || sel.X != id {
			ok = false
			return false
		}
		s := info.Selections[sel]
		if s == nil || s.Kind() != types.MethodVal {
			ok = false
			return false
		}
		call, isCall := stack[len(stack)-2].(*ast.CallExpr)
		if !isCall || call.Fun != sel {
			ok = false
			return false
		}
		return true
	})
	return ok
}
