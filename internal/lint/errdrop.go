// The errdrop analyzer forbids silently discarded error returns: a call
// whose result set includes an error may not stand alone as an
// expression statement. Assigning the error away explicitly (`_ = ...`)
// is visible in review and therefore allowed, as are a small set of
// writers that are documented never to fail or to latch their error
// until Flush:
//
//   - fmt.Print/Printf/Println, and fmt.Fprint* to os.Stdout/os.Stderr
//     (the CLI convention for best-effort console output);
//   - methods on strings.Builder and bytes.Buffer;
//   - fmt.Fprint* to a strings.Builder, bytes.Buffer or bufio.Writer
//     (bufio latches the first error; its Flush IS checked).
//
// Deferred calls are not examined (a syntactic approximation — wrapping
// every `defer f.Close()` adds noise without catching the hot bugs);
// test files are never loaded by the driver.
package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// ErrDropAnalyzer returns the errdrop analyzer.
func ErrDropAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "errdrop",
		Doc:  "no silently discarded error returns outside tests",
		Run:  errdropRun,
	}
}

func errdropRun(prog *Program) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				stmt, ok := n.(*ast.ExprStmt)
				if !ok {
					return true
				}
				call, ok := stmt.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !returnsError(pkg.Info, call) || allowedDrop(pkg.Info, call) {
					return true
				}
				out = append(out, Diagnostic{
					Analyzer: "errdrop",
					Pos:      prog.Fset.Position(call.Pos()),
					Message:  fmt.Sprintf("error return of %s is silently discarded; handle it or assign to _", calleeName(call)),
				})
				return true
			})
		}
	}
	return out
}

// returnsError reports whether any result of the call is an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface)
}

// allowedDrop applies the documented writer allowlist.
func allowedDrop(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "fmt":
		switch fn.Name() {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			return len(call.Args) > 0 && safeWriterArg(info, call.Args[0])
		}
		return false
	case "strings", "bytes":
		// Methods on strings.Builder / bytes.Buffer never return a
		// non-nil error.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return isNamedIn(sig.Recv().Type(), "strings", "Builder") ||
				isNamedIn(sig.Recv().Type(), "bytes", "Buffer")
		}
	}
	return false
}

// safeWriterArg reports whether the writer argument is os.Stdout,
// os.Stderr, or a latching/infallible writer type.
func safeWriterArg(info *types.Info, arg ast.Expr) bool {
	if sel, ok := ast.Unparen(arg).(*ast.SelectorExpr); ok {
		if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.Pkg() != nil && v.Pkg().Path() == "os" {
			if v.Name() == "Stdout" || v.Name() == "Stderr" {
				return true
			}
		}
	}
	tv, ok := info.Types[ast.Unparen(arg)]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	return isNamedIn(t, "strings", "Builder") ||
		isNamedIn(t, "bytes", "Buffer") ||
		isNamedIn(t, "bufio", "Writer")
}

// isNamedIn reports whether t (after pointers) is the named type
// pkgpath.name.
func isNamedIn(t types.Type, pkgpath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgpath && obj.Name() == name
}

// calleeName renders a short name for the called function.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
