// The lockorder analyzer builds a module-wide mutex-acquisition graph
// and keeps it a partial order. The sharded pipeline holds its
// registry lock while touching per-stream locks; one function acquiring
// A then B while another acquires B then A is a deadlock waiting for
// the right interleaving — exactly the failure mode -race tests only
// catch when they happen to hit it.
//
// Mechanics: every sync.Mutex/sync.RWMutex acquisition site is resolved
// to a lock identity (the struct field or variable holding the mutex).
// A linear walk of each function body tracks the held set — Lock/RLock
// push, Unlock/RUnlock pop, deferred unlocks keep the lock held to the
// function's end — and records an edge held→acquired for every nested
// acquisition. Calls to module-local functions made while holding a
// lock contribute the callee's transitive acquisition set. Reported:
//
//   - reacquiring a lock already held (self-deadlock; for an RWMutex,
//     the read-to-write upgrade);
//   - cycles in the acquisition graph (potential deadlock);
//   - a lock pair acquired in both Lock and RLock mode along the same
//     edge (mixed read/write ordering: a writer queued between two
//     readers of an RWMutex deadlocks the pair).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrderAnalyzer returns the lockorder analyzer.
func LockOrderAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "lockorder",
		Doc:  "mutex-acquisition graph must be acyclic with consistent Lock/RLock ordering",
		Run:  lockorderRun,
	}
}

// lockAcquire and lockRelease classify the sync method names.
var (
	lockAcquire = map[string]bool{"Lock": true, "RLock": true}
	lockRelease = map[string]string{"Unlock": "Lock", "RUnlock": "RLock"}
)

// lockEdge is one held→acquired observation.
type lockEdge struct {
	from, to types.Object
	fromMode string // mode from was held in at the site
	toMode   string // Lock or RLock
	pos      token.Position
	fn       string // function the edge was observed in
	viaCall  bool   // acquired inside a callee, not literally here
}

// lockSite is one acquisition with its mode.
type lockSite struct {
	obj  types.Object
	mode string
	pos  token.Position
}

func lockorderRun(prog *Program) []Diagnostic {
	var out []Diagnostic

	// Phase 1: per-function direct acquisition sets, module-wide, for
	// the transitive closure.
	acquires := map[types.Object][]lockSite{}
	for _, pkg := range prog.allSorted() {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj := pkg.Info.Defs[fd.Name]
				if obj == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if site, ok := lockCallSite(prog, pkg, call); ok && lockAcquire[site.mode] {
						acquires[obj] = append(acquires[obj], site)
					}
					return true
				})
			}
		}
	}
	transAcq := transitiveAcquires(prog, acquires)

	// Phase 2: walk target-package bodies tracking the held set; build
	// the module edge list and report immediate re-acquisitions.
	var edges []lockEdge
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				walkHeldSet(prog, pkg, fd, transAcq, &edges, &out)
			}
		}
	}

	out = append(out, reportCycles(prog, edges)...)
	out = append(out, reportMixedModes(prog, edges)...)
	return out
}

// lockCallSite resolves call to a sync mutex method invocation on a
// nameable lock identity.
func lockCallSite(prog *Program, pkg *Package, call *ast.CallExpr) (lockSite, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockSite{}, false
	}
	name := sel.Sel.Name
	if !lockAcquire[name] && lockRelease[name] == "" {
		return lockSite{}, false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockSite{}, false
	}
	obj := lockIdentity(pkg.Info, sel.X)
	if obj == nil {
		return lockSite{}, false
	}
	return lockSite{obj: obj, mode: name, pos: prog.Fset.Position(call.Pos())}, true
}

// lockIdentity resolves the expression a mutex method is invoked on to
// a stable object: a struct field or a variable. Index, paren, star and
// leading selectors peel away (s.streams[i].mu → field mu).
func lockIdentity(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			if v := fieldObject(info, x); v != nil {
				return v
			}
			// Package-qualified var (pkg.mu) or chained value selector.
			if obj := info.Uses[x.Sel]; obj != nil {
				return obj
			}
			return nil
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		default:
			return nil
		}
	}
}

// transitiveAcquires closes the per-function acquisition sets over the
// static call graph (fixpoint; cycles converge because sets only grow).
func transitiveAcquires(prog *Program, direct map[types.Object][]lockSite) map[types.Object]map[types.Object]lockSite {
	closure := map[types.Object]map[types.Object]lockSite{}
	for fn, sites := range direct {
		m := map[types.Object]lockSite{}
		for _, s := range sites {
			if _, ok := m[s.obj]; !ok {
				m[s.obj] = s
			}
		}
		closure[fn] = m
	}
	callees := map[types.Object][]types.Object{}
	for fn, fd := range prog.funcDecls {
		if fd.decl.Body == nil {
			continue
		}
		ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, ok := calleeObject(fd.pkg.Info, call).(*types.Func)
			if !ok || isInterfaceMethod(callee) || callee.Pkg() == nil || !prog.isLocal(callee.Pkg().Path()) {
				return true
			}
			callees[fn] = append(callees[fn], callee)
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for fn, cs := range callees {
			for _, c := range cs {
				for obj, site := range closure[c] {
					m := closure[fn]
					if m == nil {
						m = map[types.Object]lockSite{}
						closure[fn] = m
					}
					if _, ok := m[obj]; !ok {
						m[obj] = site
						changed = true
					}
				}
			}
		}
	}
	return closure
}

// walkHeldSet does the linear held-set walk of one function body.
func walkHeldSet(prog *Program, pkg *Package, fd *ast.FuncDecl, transAcq map[types.Object]map[types.Object]lockSite, edges *[]lockEdge, out *[]Diagnostic) {
	fname := fd.Name.Name
	var held []lockSite
	inspectWithStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		// Skip nested function literals: they run later, on another
		// goroutine or call path, not under this held set.
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// A deferred unlock runs at return: the lock stays held for the
		// rest of the walk, which is exactly what the edge model wants.
		if len(stack) > 0 {
			if _, isDefer := stack[len(stack)-1].(*ast.DeferStmt); isDefer {
				return true
			}
		}
		if site, ok := lockCallSite(prog, pkg, call); ok {
			if lockAcquire[site.mode] {
				for _, h := range held {
					if h.obj == site.obj {
						*out = append(*out, Diagnostic{
							Analyzer: "lockorder",
							Pos:      site.pos,
							Message: fmt.Sprintf("%s acquires %s (%s) while already holding it (%s at line %d): self-deadlock",
								fname, lockName(site.obj), site.mode, h.mode, h.pos.Line),
						})
						continue
					}
					*edges = append(*edges, lockEdge{
						from: h.obj, to: site.obj,
						fromMode: h.mode, toMode: site.mode,
						pos: site.pos, fn: fname,
					})
				}
				held = append(held, site)
			} else if want := lockRelease[site.mode]; want != "" {
				for i := len(held) - 1; i >= 0; i-- {
					if held[i].obj == site.obj {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			}
			return true
		}
		// A module-local call while holding locks contributes the
		// callee's transitive acquisitions as edges.
		if callee, ok := calleeObject(pkg.Info, call).(*types.Func); ok && len(held) > 0 &&
			!isInterfaceMethod(callee) && callee.Pkg() != nil && prog.isLocal(callee.Pkg().Path()) {
			for _, h := range held {
				for obj, site := range transAcq[callee] {
					if obj == h.obj {
						continue // re-entrant acquisition via a callee is the callee's report
					}
					*edges = append(*edges, lockEdge{
						from: h.obj, to: obj,
						fromMode: h.mode, toMode: site.mode,
						pos: prog.Fset.Position(call.Pos()), fn: fname, viaCall: true,
					})
				}
			}
		}
		return true
	})
}

// reportCycles finds cycles in the acquisition graph and reports each
// once, anchored at its lexically first edge.
func reportCycles(prog *Program, edges []lockEdge) []Diagnostic {
	adj := map[types.Object][]lockEdge{}
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e)
	}
	nodes := make([]types.Object, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return lockName(nodes[i]) < lockName(nodes[j]) })

	var out []Diagnostic
	reported := map[string]bool{}
	var path []lockEdge
	onPath := map[types.Object]bool{}
	var dfs func(n types.Object)
	dfs = func(n types.Object) {
		onPath[n] = true
		for _, e := range adj[n] {
			if onPath[e.to] {
				// Cycle: the suffix of path from e.to, plus e.
				var cyc []lockEdge
				for i, pe := range path {
					if pe.from == e.to {
						cyc = append([]lockEdge{}, path[i:]...)
						break
					}
				}
				cyc = append(cyc, e)
				key := cycleKey(cyc)
				if !reported[key] {
					reported[key] = true
					out = append(out, Diagnostic{
						Analyzer: "lockorder",
						Pos:      cyc[0].pos,
						Message:  fmt.Sprintf("lock-order cycle: %s", describeCycle(cyc)),
					})
				}
				continue
			}
			path = append(path, e)
			dfs(e.to)
			path = path[:len(path)-1]
		}
		onPath[n] = false
	}
	for _, n := range nodes {
		dfs(n)
	}
	return out
}

// cycleKey canonicalizes a cycle to its sorted lock-name set so each
// cycle reports once regardless of entry point.
func cycleKey(cyc []lockEdge) string {
	names := make([]string, len(cyc))
	for i, e := range cyc {
		names[i] = lockName(e.from)
	}
	sort.Strings(names)
	return strings.Join(names, "→")
}

// describeCycle renders A →(fn:line) B →(fn:line) A.
func describeCycle(cyc []lockEdge) string {
	var b strings.Builder
	for _, e := range cyc {
		fmt.Fprintf(&b, "%s(%s) → ", lockName(e.from), e.fromMode)
	}
	b.WriteString(lockName(cyc[0].from))
	parts := make([]string, len(cyc))
	for i, e := range cyc {
		parts[i] = fmt.Sprintf("%s at line %d", e.fn, e.pos.Line)
	}
	return b.String() + " (" + strings.Join(parts, "; ") + ")"
}

// reportMixedModes flags an ordered lock pair acquired in both Lock and
// RLock mode: inconsistent read/write nesting deadlocks when a writer
// queues between the two readers.
func reportMixedModes(prog *Program, edges []lockEdge) []Diagnostic {
	type pair struct{ from, to types.Object }
	modes := map[pair]map[string]lockEdge{}
	for _, e := range edges {
		p := pair{e.from, e.to}
		if modes[p] == nil {
			modes[p] = map[string]lockEdge{}
		}
		if _, ok := modes[p][e.toMode]; !ok {
			modes[p][e.toMode] = e
		}
	}
	var out []Diagnostic
	for p, m := range modes {
		l, hasL := m["Lock"]
		r, hasR := m["RLock"]
		if !hasL || !hasR {
			continue
		}
		first, second := l, r
		if posLess(r.pos, l.pos) {
			first, second = r, l
		}
		out = append(out, Diagnostic{
			Analyzer: "lockorder",
			Pos:      second.pos,
			Message: fmt.Sprintf("mixed %s/%s acquisition of %s while holding %s (other mode in %s at line %d); pick one mode for this ordering",
				second.toMode, first.toMode, lockName(p.to), lockName(p.from), first.fn, first.pos.Line),
		})
	}
	sort.Slice(out, func(i, j int) bool { return posLess(out[i].Pos, out[j].Pos) })
	return out
}

// posLess orders positions by file then offset.
func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	return a.Offset < b.Offset
}

// lockName renders a lock identity as pkg.name.
func lockName(obj types.Object) string {
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}
