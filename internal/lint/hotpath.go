// The hotpath analyzer keeps the counting path of the software Memometer
// as allocation-free as the paper's hardware one. A function annotated
// //mhm:hotpath may not, syntactically:
//
//   - call into package fmt, or call time.Now/time.Since/time.Until;
//   - use the allocating builtins append, make or new;
//   - build map or slice composite literals, or take the address of a
//     composite literal;
//   - declare a variable-capturing function literal (captures force a
//     heap-allocated closure);
//   - spawn goroutines or defer calls;
//   - call a module-local function or method that is not itself
//     annotated //mhm:hotpath, or make a dynamic (interface) call.
//
// The directive is also recognised on package-level func-typed
// variables — runtime kernel dispatch tables, bound once at init.
// Calls through such a variable are allowed in hot bodies because the
// analyzer checks every binding site instead: a function assigned to a
// //mhm:hotpath dispatch variable must itself carry the annotation,
// and binding a closure or computed value is reported outright. This
// closes the "caller vouches" escape hatch for the dispatch pattern —
// whatever kernel init selects, it was checked.
//
// This is a syntactic approximation: stdlib calls outside the banned
// list, interface boxing, map writes and string concatenation are not
// modelled. Cold error paths inside hot functions are suppressed with
// //mhmlint:ignore hotpath <reason>.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// HotpathAnalyzer returns the hotpath analyzer.
func HotpathAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "hotpath",
		Doc:  "//mhm:hotpath functions must avoid allocating constructs and non-hotpath callees",
		Run:  hotpathRun,
	}
}

// bannedTimeFuncs are the clock reads disallowed on the hot path.
var bannedTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func hotpathRun(prog *Program) []Diagnostic {
	var out []Diagnostic
	report := func(pos ast.Node, format string, args ...any) {
		out = append(out, Diagnostic{
			Analyzer: "hotpath",
			Pos:      prog.Fset.Position(pos.Pos()),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj := pkg.Info.Defs[fd.Name]
				if obj == nil || !prog.IsHotpath(obj) {
					continue
				}
				checkHotBody(prog, pkg, fd, report)
			}
		}
	}
	out = append(out, checkDispatchBindings(prog)...)
	return out
}

// checkDispatchBindings verifies every function bound to a hotpath
// dispatch variable is itself annotated. Bindings are module-wide
// facts, so they are checked once per run rather than per package.
func checkDispatchBindings(prog *Program) []Diagnostic {
	vars := make([]types.Object, 0, len(prog.dispatchVars))
	for v := range prog.dispatchVars {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Pos() < vars[j].Pos() })
	var out []Diagnostic
	for _, v := range vars {
		for _, b := range prog.dispatchBind[v] {
			pos := prog.Fset.Position(b.pos)
			switch {
			case b.fn == nil:
				out = append(out, Diagnostic{
					Analyzer: "hotpath",
					Pos:      pos,
					Message: fmt.Sprintf("hotpath dispatch variable %s is bound to a dynamically computed value; bind a declared %s function",
						v.Name(), HotpathDirective),
				})
			case !prog.IsHotpath(b.fn):
				out = append(out, Diagnostic{
					Analyzer: "hotpath",
					Pos:      pos,
					Message: fmt.Sprintf("hotpath dispatch variable %s is bound to %s, which is not annotated %s",
						v.Name(), b.fn.Name(), HotpathDirective),
				})
			}
		}
	}
	return out
}

// checkHotBody walks one annotated function body.
func checkHotBody(prog *Program, pkg *Package, fd *ast.FuncDecl, report func(ast.Node, string, ...any)) {
	name := fd.Name.Name
	inspectWithStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch node := n.(type) {
		case *ast.GoStmt:
			report(node, "hotpath function %s spawns a goroutine", name)
		case *ast.DeferStmt:
			report(node, "hotpath function %s defers a call", name)
		case *ast.FuncLit:
			if caps := captures(pkg.Info, node); len(caps) > 0 {
				report(node, "hotpath function %s declares a closure capturing %s (heap allocation)", name, caps[0])
			}
			// Do not descend: the literal runs later (or is itself checked
			// when passed to an annotated callee).
			return false
		case *ast.CompositeLit:
			t := pkg.Info.Types[node].Type
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					report(node, "hotpath function %s builds a map literal", name)
				case *types.Slice:
					report(node, "hotpath function %s builds a slice literal", name)
				}
			}
			if len(stack) > 0 {
				if un, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && un.Op == token.AND {
					report(node, "hotpath function %s takes the address of a composite literal (heap allocation)", name)
				}
			}
		case *ast.CallExpr:
			checkHotCall(prog, pkg, name, node, report)
		}
		return true
	})
}

// checkHotCall classifies one call expression inside a hot body.
func checkHotCall(prog *Program, pkg *Package, name string, call *ast.CallExpr, report func(ast.Node, string, ...any)) {
	// Type conversions are not calls.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	callee := calleeObject(pkg.Info, call)
	switch fn := callee.(type) {
	case *types.Builtin:
		switch fn.Name() {
		case "append":
			report(call, "hotpath function %s calls append, which may allocate; preallocate with capacity instead", name)
		case "make":
			report(call, "hotpath function %s calls make (heap allocation)", name)
		case "new":
			report(call, "hotpath function %s calls new (heap allocation)", name)
		}
	case *types.Func:
		pkgPath := ""
		if fn.Pkg() != nil {
			pkgPath = fn.Pkg().Path()
		}
		switch {
		case pkgPath == "fmt":
			report(call, "hotpath function %s calls fmt.%s (allocates)", name, fn.Name())
		case pkgPath == "time" && bannedTimeFuncs[fn.Name()]:
			report(call, "hotpath function %s calls time.%s (clock read on the counting path)", name, fn.Name())
		case isInterfaceMethod(fn):
			if prog.isLocal(pkgPath) {
				report(call, "hotpath function %s makes a dynamic interface call to %s", name, fn.Name())
			}
		case prog.isLocal(pkgPath) && !prog.IsHotpath(fn):
			report(call, "hotpath function %s calls %s.%s, which is not annotated %s",
				name, fn.Pkg().Name(), fn.Name(), HotpathDirective)
		}
	default:
		// Calls through func values (parameters, fields) cannot be
		// verified syntactically; the caller vouches for them.
	}
}

// calleeObject resolves the called function/builtin, or nil for dynamic
// calls through func values.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// isInterfaceMethod reports whether fn is declared on an interface.
func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// captures lists names used inside lit but declared outside it (and
// outside package/universe scope) — the variables a closure would have
// to capture.
func captures(info *types.Info, lit *ast.FuncLit) []string {
	var caps []string
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		v, isVar := obj.(*types.Var)
		if !isVar || seen[v] {
			return true
		}
		// Declared inside the literal (params, results, locals): fine.
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true
		}
		// Package-level variables are not captured.
		if v.Parent() == nil || v.Parent().Parent() == types.Universe {
			return true
		}
		seen[v] = true
		caps = append(caps, v.Name())
		return true
	})
	return caps
}
