// Package lint is a go-vet-style static-analysis driver, written against
// the standard library only, that enforces the repository's concurrency,
// hot-path and numeric invariants (DESIGN.md "Enforced invariants").
//
// The paper's Memometer must never stall the monitored core: counting is
// allocation- and block-free while the secure core analyses the previous
// interval. The Go port keeps that discipline by convention — atomic-only
// field access in internal/obs, nil-safe metric handles, allocation-free
// hot paths, tolerance-based float comparison in the learning math. The
// analyzers in this package make each convention mechanically checkable:
//
//   - atomicfield: a struct field touched via sync/atomic anywhere must
//     never be read or written non-atomically elsewhere.
//   - nilreceiver: exported pointer-receiver methods on //mhm:nilsafe
//     handle types must keep their nil-receiver guards.
//   - hotpath: functions annotated //mhm:hotpath may not use allocating
//     constructs (syntactically approximated) or call unannotated
//     module-local functions.
//   - floateq: no ==/!= between floating-point operands in the numeric
//     packages (gmm, pca, stats); use the mat epsilon helpers.
//   - errdrop: no silently discarded error returns outside tests.
//   - detorder: functions annotated //mhm:deterministic (and their
//     static callees) must avoid nondeterminism sources — map iteration
//     feeding float accumulation, wall clocks, the global math/rand
//     source, math.FMA, multi-way selects, and arrival-order collection
//     of parallel worker results.
//   - lockorder: the module-wide mutex-acquisition graph must stay
//     acyclic and each ordered lock pair must use one consistent
//     Lock/RLock mode.
//   - goleak: goroutines need a join (WaitGroup, channel, context
//     cancel), and parallel dispatch closures must not capture loop
//     state by reference.
//
// A finding is suppressed by a directive on the same line or the line
// above:
//
//	//mhmlint:ignore <analyzer> <reason>
//
// The reason is mandatory; a malformed directive is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Annotation directives recognised in doc comments.
const (
	// HotpathDirective marks a function whose body must stay
	// allocation-free (see the hotpath analyzer).
	HotpathDirective = "//mhm:hotpath"
	// NilsafeDirective marks a handle type whose exported pointer-receiver
	// methods must be nil-receiver safe (see the nilreceiver analyzer).
	NilsafeDirective = "//mhm:nilsafe"
	// DeterministicDirective marks a function whose result must be
	// bit-identical across runs, platforms and worker counts (see the
	// detorder analyzer). The contract extends to its static callees.
	DeterministicDirective = "//mhm:deterministic"
	// IgnoreDirective suppresses a finding on its line or the line below.
	IgnoreDirective = "//mhmlint:ignore"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check run over a loaded Program.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(prog *Program) []Diagnostic
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AtomicFieldAnalyzer(),
		NilReceiverAnalyzer(),
		HotpathAnalyzer(),
		FloatEqAnalyzer(),
		ErrDropAnalyzer(),
		DetOrderAnalyzer(),
		LockOrderAnalyzer(),
		GoLeakAnalyzer(),
	}
}

// Package is one type-checked package.
type Package struct {
	Path  string // import path
	Dir   string // absolute directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// ignoreDirective is one parsed //mhmlint:ignore comment.
type ignoreDirective struct {
	analyzer string
	reason   string
}

// Program is a set of type-checked packages plus module-wide facts.
type Program struct {
	Fset    *token.FileSet
	ModPath string
	Root    string
	// Pkgs are the requested analysis targets, in deterministic order.
	Pkgs []*Package
	// All maps import path to every module-local package loaded,
	// including dependencies of the targets.
	All map[string]*Package

	hotpath       map[types.Object]bool
	nilsafe       map[types.Object]bool
	deterministic map[types.Object]bool
	// dispatchVars marks package-level func-typed variables annotated
	// //mhm:hotpath — runtime kernel dispatch tables. dispatchBind maps
	// each to every value statically bound to it, whether in its
	// declaration initializer or by assignment anywhere in the module.
	dispatchVars map[types.Object]bool
	dispatchBind map[types.Object][]dispatchBinding
	// funcDecls maps every module-local function/method object to its
	// declaration, for interprocedural analyzers (detorder, lockorder,
	// goleak).
	funcDecls map[types.Object]*funcDecl
	// ignores maps filename then line to the directives on that line.
	ignores map[string]map[int][]ignoreDirective
	// badDirectives are malformed //mhmlint:ignore comments.
	badDirectives []Diagnostic
}

// allSorted returns every loaded package sorted by import path, for
// deterministic module-wide fact gathering.
func (p *Program) allSorted() []*Package {
	out := make([]*Package, 0, len(p.All))
	for _, pkg := range p.All {
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// IsHotpath reports whether obj is a function annotated //mhm:hotpath
// anywhere in the loaded module.
func (p *Program) IsHotpath(obj types.Object) bool { return p.hotpath[obj] }

// IsNilsafe reports whether obj is a type annotated //mhm:nilsafe.
func (p *Program) IsNilsafe(obj types.Object) bool { return p.nilsafe[obj] }

// IsDeterministic reports whether obj is a function annotated
// //mhm:deterministic anywhere in the loaded module.
func (p *Program) IsDeterministic(obj types.Object) bool { return p.deterministic[obj] }

// funcDecl pairs a declaration with the package it was parsed in.
type funcDecl struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// dispatchBinding is one value bound to a dispatch variable. fn is the
// bound function object, or nil when the value is not a static function
// reference (a closure or computed expression the analyzers cannot see
// through).
type dispatchBinding struct {
	fn  types.Object
	pos token.Pos
}

// IsDispatchVar reports whether obj is a package-level func-typed
// variable annotated //mhm:hotpath — a runtime kernel dispatch table.
func (p *Program) IsDispatchVar(obj types.Object) bool { return p.dispatchVars[obj] }

// declOf returns the module-local declaration of a function object, or
// nil when the object is not a declared module function (stdlib,
// interface method, func value).
func (p *Program) declOf(obj types.Object) *funcDecl { return p.funcDecls[obj] }

// isLocal reports whether path belongs to the loaded module.
func (p *Program) isLocal(path string) bool {
	return path == p.ModPath || strings.HasPrefix(path, p.ModPath+"/")
}

// scanFacts harvests annotations and ignore directives from every loaded
// file. Called once at the end of loading.
func (p *Program) scanFacts() {
	p.hotpath = map[types.Object]bool{}
	p.nilsafe = map[types.Object]bool{}
	p.deterministic = map[types.Object]bool{}
	p.dispatchVars = map[types.Object]bool{}
	p.dispatchBind = map[types.Object][]dispatchBinding{}
	p.funcDecls = map[types.Object]*funcDecl{}
	p.ignores = map[string]map[int][]ignoreDirective{}
	for _, pkg := range p.allSorted() {
		for _, f := range pkg.Files {
			p.scanAnnotations(pkg, f)
			p.scanIgnores(f)
		}
	}
	// Bindings are gathered in a second pass so assignments in one file
	// (typically init) resolve against dispatch variables declared in
	// another.
	for _, pkg := range p.allSorted() {
		for _, f := range pkg.Files {
			p.scanDispatchBindings(pkg, f)
		}
	}
}

// hasDirective reports whether any line of doc is exactly the directive.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

// scanAnnotations records //mhm:hotpath functions and dispatch
// variables, //mhm:deterministic functions, and //mhm:nilsafe types.
func (p *Program) scanAnnotations(pkg *Package, f *ast.File) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if obj := pkg.Info.Defs[d.Name]; obj != nil {
				p.funcDecls[obj] = &funcDecl{pkg: pkg, decl: d}
				if hasDirective(d.Doc, HotpathDirective) {
					p.hotpath[obj] = true
				}
				if hasDirective(d.Doc, DeterministicDirective) {
					p.deterministic[obj] = true
				}
			}
		case *ast.GenDecl:
			switch d.Tok {
			case token.TYPE:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					// The directive may sit on the grouped decl or the spec.
					if hasDirective(ts.Doc, NilsafeDirective) || (len(d.Specs) == 1 && hasDirective(d.Doc, NilsafeDirective)) {
						if obj := pkg.Info.Defs[ts.Name]; obj != nil {
							p.nilsafe[obj] = true
						}
					}
				}
			case token.VAR:
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					if !hasDirective(vs.Doc, HotpathDirective) && !(len(d.Specs) == 1 && hasDirective(d.Doc, HotpathDirective)) {
						continue
					}
					for _, name := range vs.Names {
						obj := pkg.Info.Defs[name]
						if obj == nil {
							continue
						}
						// Only func-typed package-level variables form
						// dispatch tables; the directive is meaningless on
						// anything else.
						if _, ok := obj.Type().Underlying().(*types.Signature); ok {
							p.dispatchVars[obj] = true
						}
					}
				}
			}
		}
	}
}

// scanDispatchBindings records every value statically bound to a
// dispatch variable: declaration initializers and plain assignments
// (the init-time kernel selection pattern). nil bindings — clearing an
// optional table — are not bindings.
func (p *Program) scanDispatchBindings(pkg *Package, f *ast.File) {
	record := func(lhs types.Object, rhs ast.Expr) {
		if lhs == nil || !p.dispatchVars[lhs] {
			return
		}
		rhs = ast.Unparen(rhs)
		var fn types.Object
		switch e := rhs.(type) {
		case *ast.Ident:
			if e.Name == "nil" {
				return
			}
			if fo, ok := pkg.Info.Uses[e].(*types.Func); ok {
				fn = fo
			}
		case *ast.SelectorExpr:
			if fo, ok := pkg.Info.Uses[e.Sel].(*types.Func); ok {
				fn = fo
			}
		}
		p.dispatchBind[lhs] = append(p.dispatchBind[lhs], dispatchBinding{fn: fn, pos: rhs.Pos()})
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.ValueSpec:
			for i, name := range node.Names {
				if i < len(node.Values) {
					record(pkg.Info.Defs[name], node.Values[i])
				}
			}
		case *ast.AssignStmt:
			if node.Tok != token.ASSIGN || len(node.Lhs) != len(node.Rhs) {
				return true
			}
			for i, lhs := range node.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					record(pkg.Info.Uses[id], node.Rhs[i])
				}
			}
		}
		return true
	})
}

// scanIgnores indexes //mhmlint:ignore directives by file and line.
func (p *Program) scanIgnores(f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, IgnoreDirective) {
				continue
			}
			pos := p.Fset.Position(c.Pos())
			fields := strings.Fields(strings.TrimPrefix(text, IgnoreDirective))
			if len(fields) < 2 {
				p.badDirectives = append(p.badDirectives, Diagnostic{
					Analyzer: "mhmlint",
					Pos:      pos,
					Message:  fmt.Sprintf("malformed directive %q: want %s <analyzer> <reason>", text, IgnoreDirective),
				})
				continue
			}
			m := p.ignores[pos.Filename]
			if m == nil {
				m = map[int][]ignoreDirective{}
				p.ignores[pos.Filename] = m
			}
			m[pos.Line] = append(m[pos.Line], ignoreDirective{
				analyzer: fields[0],
				reason:   strings.Join(fields[1:], " "),
			})
		}
	}
}

// suppressed reports whether d is covered by an ignore directive on its
// line or the line above.
func (p *Program) suppressed(d Diagnostic) bool {
	m := p.ignores[d.Pos.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, ig := range m[line] {
			if ig.analyzer == d.Analyzer {
				return true
			}
		}
	}
	return false
}

// RunAnalyzers runs the given analyzers over prog, filters suppressed
// findings, appends malformed-directive reports, and returns the result
// sorted by position.
func RunAnalyzers(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, a := range analyzers {
		for _, d := range a.Run(prog) {
			if !prog.suppressed(d) {
				out = append(out, d)
			}
		}
	}
	out = append(out, prog.badDirectives...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}

// pathEndsWith reports whether the import path's trailing segments equal
// seg ("gmm" matches ".../internal/gmm"; "internal/gmm" matches too).
func pathEndsWith(path, seg string) bool {
	return path == seg || strings.HasSuffix(path, "/"+seg)
}

// inspectWithStack walks root calling f with each node and the stack of
// its ancestors (outermost first, not including n itself). Returning
// false prunes the subtree.
func inspectWithStack(root ast.Node, f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !f(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}
