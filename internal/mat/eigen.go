package mat

import (
	"fmt"
	"math"
	"sort"
)

// Eigen holds a symmetric eigendecomposition A = V diag(values) Vᵀ with
// eigenvalues in decreasing order and eigenvectors as columns of V.
type Eigen struct {
	Values  []float64
	Vectors *Matrix // n x n, column j pairs with Values[j]
}

// jacobiMaxSweeps bounds the Jacobi iteration; convergence on real inputs
// takes far fewer sweeps (usually < 15).
const jacobiMaxSweeps = 100

// EigenSym computes the full eigendecomposition of a symmetric matrix by
// the cyclic Jacobi method. It is intended for small-to-medium matrices
// (n up to a few hundred); for top-k eigenpairs of large matrices use
// EigenSymTopK.
func EigenSym(a *Matrix) (*Eigen, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("mat: EigenSym of %dx%d: %w", a.rows, a.cols, ErrShape)
	}
	if !a.IsSymmetric(1e-9 * (1 + a.MaxAbs())) {
		return nil, fmt.Errorf("mat: EigenSym: matrix is not symmetric: %w", ErrShape)
	}
	n := a.rows
	w := a.Clone() // working copy, driven to diagonal
	v := Identity(n)

	offDiag := func() float64 {
		s := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += w.At(i, j) * w.At(i, j)
			}
		}
		return s
	}
	scale := 1 + a.MaxAbs()
	tol := 1e-28 * scale * scale * float64(n*n)

	for sweep := 0; sweep < jacobiMaxSweeps; sweep++ {
		if offDiag() <= tol {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) <= 1e-300 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				// Rotation angle per Golub & Van Loan.
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c

				// Apply rotation J(p,q,θ) on both sides of w.
				for k := 0; k < n; k++ {
					wkp := w.At(k, p)
					wkq := w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk := w.At(p, k)
					wqk := w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				// Accumulate eigenvectors.
				for k := 0; k < n; k++ {
					vkp := v.At(k, p)
					vkq := v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	sortEigen(vals, v)
	return &Eigen{Values: vals, Vectors: v}, nil
}

// sortEigen reorders eigenvalues in decreasing order, permuting the
// columns of v to match.
func sortEigen(vals []float64, v *Matrix) {
	n := len(vals)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })

	oldVals := append([]float64(nil), vals...)
	oldV := v.Clone()
	for newJ, oldJ := range idx {
		vals[newJ] = oldVals[oldJ]
		for i := 0; i < v.rows; i++ {
			v.Set(i, newJ, oldV.At(i, oldJ))
		}
	}
}
