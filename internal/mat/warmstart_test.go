package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// TestEigenSymTopKWarmStart seeds the block with the true eigenvectors
// and checks the iteration still lands on the correct pairs — and does
// so within a tiny iteration budget, which a cold random start cannot.
func TestEigenSymTopKWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	n, k := 40, 5
	a := randSPD(rng, n)
	full, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	init := New(n, k)
	for c := 0; c < k; c++ {
		for i := 0; i < n; i++ {
			// Perturb the true vectors slightly: the warm start models a
			// previous basis for a drifted operator.
			init.Set(i, c, full.Vectors.At(i, c)+0.01*rng.NormFloat64())
		}
	}
	warm, err := EigenSymTopK(DenseOp{M: a}, k, TopKOptions{MaxIter: 6, Init: init})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if !almostEq(warm.Values[i], full.Values[i], 1e-6*(1+full.Values[0])) {
			t.Errorf("warm value[%d] = %g, full = %g", i, warm.Values[i], full.Values[i])
		}
		dot := math.Abs(Dot(warm.Vectors.ColCopy(i), full.Vectors.ColCopy(i)))
		if !almostEq(dot, 1, 1e-4) {
			t.Errorf("warm vector %d misaligned: |dot| = %g", i, dot)
		}
	}
}

// TestEigenSymTopKWarmStartDeterministic pins that the warm-started
// iteration is a pure function of (operator, Init, opts): two runs are
// bit-identical, and parallel matches serial.
func TestEigenSymTopKWarmStartDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n, k := 30, 4
	a := randSPD(rng, n)
	init := New(n, 2) // fewer columns than the block: remainder is random
	for i := 0; i < n; i++ {
		init.Set(i, 0, rng.NormFloat64())
		init.Set(i, 1, rng.NormFloat64())
	}
	run := func(parallel bool) *Eigen {
		es, err := EigenSymTopK(DenseOp{M: a}, k, TopKOptions{Init: init, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		return es
	}
	base := run(false)
	for _, parallel := range []bool{false, true} {
		got := run(parallel)
		for i := range base.Values {
			if math.Float64bits(base.Values[i]) != math.Float64bits(got.Values[i]) {
				t.Fatalf("parallel=%t: value[%d] differs", parallel, i)
			}
		}
		for i := range base.Vectors.data {
			if math.Float64bits(base.Vectors.data[i]) != math.Float64bits(got.Vectors.data[i]) {
				t.Fatalf("parallel=%t: vector data[%d] differs", parallel, i)
			}
		}
	}
}

// TestEigenSymTopKWarmStartRejectsShape checks Init row validation.
func TestEigenSymTopKWarmStartRejectsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := randSPD(rng, 10)
	bad := New(9, 2)
	if _, err := EigenSymTopK(DenseOp{M: a}, 3, TopKOptions{Init: bad}); !errors.Is(err, ErrShape) {
		t.Fatalf("mismatched Init rows: err = %v, want ErrShape", err)
	}
}
