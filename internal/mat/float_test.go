package mat

import (
	"math"
	"testing"
)

func TestIsZero(t *testing.T) {
	if !IsZero(0) || !IsZero(math.Copysign(0, -1)) {
		t.Error("IsZero must accept both signed zeros")
	}
	for _, x := range []float64{1e-300, -1e-300, 1, math.Inf(1), math.NaN()} {
		if IsZero(x) {
			t.Errorf("IsZero(%g) = true", x)
		}
	}
}

func TestEqTol(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 0, true},
		{1, 1 + 1e-10, 1e-9, true},
		{1, 1 + 1e-8, 1e-9, false},
		{math.Inf(1), math.Inf(1), 0, true},
		{math.Inf(1), math.Inf(-1), 1, false},
		{math.NaN(), math.NaN(), 1, false},
		{0, math.NaN(), math.Inf(1), false},
	}
	for _, c := range cases {
		if got := EqTol(c.a, c.b, c.tol); got != c.want {
			t.Errorf("EqTol(%g, %g, %g) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestEq(t *testing.T) {
	if !Eq(1e12, 1e12+1) {
		t.Error("Eq must scale its tolerance with magnitude")
	}
	if Eq(1, 1.001) {
		t.Error("Eq(1, 1.001) should be false")
	}
	if !Eq(0, 1e-12) {
		t.Error("Eq near zero should use the absolute floor")
	}
}
