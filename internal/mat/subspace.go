package mat

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// SymOp is a linear operator x -> A x for a symmetric positive
// semi-definite A that may be cheaper to apply than to materialize
// (e.g. a covariance C = (1/N) Φ Φᵀ applied as Φ (Φᵀ x) / N).
type SymOp interface {
	// Dim returns the dimension n of the operator.
	Dim() int
	// Apply computes dst = A*src. dst and src have length Dim and do not
	// alias.
	Apply(dst, src []float64)
}

// DenseOp adapts a symmetric *Matrix to the SymOp interface.
type DenseOp struct{ M *Matrix }

// Dim returns the matrix dimension.
func (d DenseOp) Dim() int { return d.M.Rows() }

// Apply computes dst = M*src.
func (d DenseOp) Apply(dst, src []float64) {
	for i := 0; i < d.M.Rows(); i++ {
		dst[i] = Dot(d.M.Row(i), src)
	}
}

// GramOp applies C = (1/N) A Aᵀ where A is n x N, without forming C.
// This is the eigenfaces covariance trick: for MHM training sets A holds
// the mean-shifted heat maps as columns. Apply is safe for concurrent
// use (scratch vectors come from an internal pool, so concurrent calls
// each check one out and steady-state iteration does not allocate).
type GramOp struct {
	A       *Matrix // n x N
	scratch sync.Pool
}

// NewGramOp wraps the n x N matrix a.
func NewGramOp(a *Matrix) *GramOp {
	g := &GramOp{A: a}
	cols := a.Cols()
	g.scratch.New = func() any {
		s := make([]float64, cols)
		return &s
	}
	return g
}

// Dim returns n, the row dimension of A.
func (g *GramOp) Dim() int { return g.A.Rows() }

// Apply computes dst = (1/N) A (Aᵀ src).
func (g *GramOp) Apply(dst, src []float64) {
	n := g.A.Rows()
	cols := g.A.Cols()
	tp := g.scratch.Get().(*[]float64)
	defer g.scratch.Put(tp)
	t := *tp
	for j := range t {
		t[j] = 0
	}
	// t = Aᵀ src
	for i := 0; i < n; i++ {
		si := src[i]
		if si == 0 {
			continue
		}
		ri := g.A.Row(i)
		for j, v := range ri {
			t[j] += si * v
		}
	}
	// dst = A t / N
	inv := 1 / float64(cols)
	for i := 0; i < n; i++ {
		dst[i] = Dot(g.A.Row(i), t) * inv
	}
}

// TopKOptions tunes EigenSymTopK.
type TopKOptions struct {
	// MaxIter bounds the number of subspace iterations (default 300).
	MaxIter int
	// Tol is the relative change in the Ritz values at which iteration
	// stops (default 1e-10).
	Tol float64
	// Seed seeds the random starting block for determinism (default 1).
	Seed int64
	// Oversample adds extra vectors to the iterated block to speed
	// convergence of the trailing wanted pairs (default min(8, dim-k)).
	Oversample int
	// Parallel applies the operator to the block vectors on separate
	// goroutines; the operator's Apply must be concurrency-safe (DenseOp
	// and GramOp are). Results are identical to the serial run.
	Parallel bool
	// Init warm-starts the iteration: its columns (an n×m matrix, m ≤
	// k+Oversample — typically the previous model's eigenvectors) seed
	// the leading block rows, and any remaining rows come from the
	// seeded random generator as usual. When the operator has drifted
	// only slightly from the one that produced Init, the block starts
	// near the invariant subspace and converges in a handful of
	// iterations instead of hundreds.
	Init *Matrix
}

func (o *TopKOptions) fill(dim, k int) {
	if o.MaxIter <= 0 {
		o.MaxIter = 300
	}
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Oversample <= 0 {
		o.Oversample = 8
	}
	if k+o.Oversample > dim {
		o.Oversample = dim - k
	}
}

// EigenSymTopK computes the k largest eigenpairs of the symmetric PSD
// operator op by block subspace (orthogonal) iteration with a Rayleigh-
// Ritz projection each round. Eigenvalues come back in decreasing order;
// eigenvectors are the columns of the returned matrix.
func EigenSymTopK(op SymOp, k int, opts TopKOptions) (*Eigen, error) {
	n := op.Dim()
	if k <= 0 || k > n {
		return nil, fmt.Errorf("mat: EigenSymTopK: k=%d for dim %d: %w", k, n, ErrShape)
	}
	opts.fill(n, k)
	b := k + opts.Oversample // block size

	rng := rand.New(rand.NewSource(opts.Seed))
	// Block of b column vectors, stored as rows of q (b x n) for locality.
	q := New(b, n)
	warm := 0
	if opts.Init != nil {
		if opts.Init.Rows() != n {
			return nil, fmt.Errorf("mat: EigenSymTopK: Init has %d rows, operator dim %d: %w", opts.Init.Rows(), n, ErrShape)
		}
		warm = opts.Init.Cols()
		if warm > b {
			warm = b
		}
		for i := 0; i < warm; i++ {
			row := q.Row(i)
			for j := 0; j < n; j++ {
				row[j] = opts.Init.At(j, i)
			}
		}
	}
	for i := warm; i < b; i++ {
		row := q.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
	}
	if err := orthonormalizeRows(q); err != nil {
		return nil, err
	}

	z := New(b, n)
	prev := make([]float64, k)
	var ritzVals []float64
	var ritzVecs *Matrix

	applyBlock := func(q *Matrix) {
		if !opts.Parallel {
			for i := 0; i < b; i++ {
				op.Apply(z.Row(i), q.Row(i))
			}
			return
		}
		var wg sync.WaitGroup
		for i := 0; i < b; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				op.Apply(z.Row(i), q.Row(i))
			}(i)
		}
		wg.Wait()
	}

	for iter := 0; iter < opts.MaxIter; iter++ {
		// z_i = A q_i
		applyBlock(q)
		// Rayleigh-Ritz: S = Q A Qᵀ (b x b), small dense eigenproblem.
		s := New(b, b)
		for i := 0; i < b; i++ {
			zi := z.Row(i)
			for j := i; j < b; j++ {
				v := Dot(q.Row(j), zi)
				s.Set(i, j, v)
				s.Set(j, i, v)
			}
		}
		es, err := EigenSym(s)
		if err != nil {
			return nil, fmt.Errorf("mat: EigenSymTopK: inner eigensolve: %w", err)
		}
		// Rotate the block: newQ = esᵀ-combined rows of z (i.e. Ritz
		// vectors of A within span(z)). Using z (=A·q) instead of q makes
		// this a power step plus projection.
		newQ := New(b, n)
		for c := 0; c < b; c++ { // Ritz vector c
			dst := newQ.Row(c)
			for i := 0; i < b; i++ {
				w := es.Vectors.At(i, c)
				if w != 0 {
					Axpy(w, z.Row(i), dst)
				}
			}
		}
		if err := orthonormalizeRows(newQ); err != nil {
			return nil, err
		}
		q = newQ
		ritzVals = es.Values

		// Convergence on the k wanted Ritz values.
		maxRel := 0.0
		for i := 0; i < k; i++ {
			den := math.Abs(ritzVals[i])
			if den < 1e-300 {
				den = 1e-300
			}
			rel := math.Abs(ritzVals[i]-prev[i]) / den
			if rel > maxRel {
				maxRel = rel
			}
		}
		copy(prev, ritzVals[:k])
		if iter > 0 && maxRel < opts.Tol {
			break
		}
	}

	// Final Rayleigh quotients and vectors for the leading k pairs.
	ritzVecs = New(n, k)
	vals := make([]float64, k)
	tmp := make([]float64, n)
	for c := 0; c < k; c++ {
		row := q.Row(c)
		op.Apply(tmp, row)
		vals[c] = Dot(row, tmp)
		for i := 0; i < n; i++ {
			ritzVecs.Set(i, c, row[i])
		}
	}
	// The Ritz pairs can come out of order by tiny amounts; sort.
	sortEigen(vals, ritzVecs)
	return &Eigen{Values: vals, Vectors: ritzVecs}, nil
}

// orthonormalizeRows applies modified Gram-Schmidt to the rows of q in
// place. Rows that collapse to (near) zero are replaced by fresh random
// directions orthogonal to the earlier rows; this keeps subspace
// iteration full-rank when the operator has low numerical rank.
func orthonormalizeRows(q *Matrix) error {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < q.rows; i++ {
		ri := q.Row(i)
		for attempt := 0; ; attempt++ {
			for j := 0; j < i; j++ {
				rj := q.Row(j)
				Axpy(-Dot(ri, rj), rj, ri)
			}
			if Normalize(ri) > 1e-12 {
				break
			}
			if attempt >= 5 {
				return fmt.Errorf("mat: orthonormalizeRows: row %d keeps collapsing: %w", i, ErrSingular)
			}
			for k := range ri {
				ri[k] = rng.NormFloat64()
			}
		}
	}
	return nil
}
