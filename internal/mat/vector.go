package mat

import (
	"fmt"
	"math"
)

// Dot returns the inner product of two equal-length vectors. It panics on
// length mismatch: vector lengths are structural invariants here.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dot: lengths %d and %d", len(a), len(b)))
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	// Scaled accumulation avoids overflow for extreme values.
	max := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > max {
			max = a
		}
	}
	if max == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		t := x / max
		s += t * t
	}
	return max * math.Sqrt(s)
}

// AddVec returns a+b as a new vector.
func AddVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: AddVec: lengths %d and %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// SubVec returns a-b as a new vector.
func SubVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: SubVec: lengths %d and %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// ScaleVec returns s*v as a new vector.
func ScaleVec(s float64, v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = s * x
	}
	return out
}

// Axpy adds s*x to y in place (y += s*x).
func Axpy(s float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Axpy: lengths %d and %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += s * v
	}
}

// Normalize scales v to unit Euclidean norm in place and returns the
// original norm. A zero vector is left unchanged and 0 is returned.
func Normalize(v []float64) float64 {
	n := Norm2(v)
	if n == 0 {
		return 0
	}
	inv := 1 / n
	for i := range v {
		v[i] *= inv
	}
	return n
}

// DistEuclid returns the Euclidean distance between a and b.
func DistEuclid(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: DistEuclid: lengths %d and %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
