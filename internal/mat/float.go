// Float comparison helpers. The floateq analyzer (internal/lint) bans
// raw ==/!= between floats in the numeric packages (gmm, pca, stats);
// these helpers are the sanctioned replacements, making the intended
// precision explicit at every comparison site. This package is outside
// the analyzer's scope precisely so the helpers can use exact
// comparison where that is the contract.
package mat

import "math"

// DefaultTol is the relative tolerance used by Eq: floats that agree to
// about nine significant digits are considered equal, far tighter than
// the training tolerances (1e-6) the detector runs with.
const DefaultTol = 1e-9

// IsZero reports whether x is exactly zero (either sign). Use it where
// zero is a sentinel or an exact algebraic case — unset options,
// skip-zero-weight loops — not where accumulated round-off is possible.
//
//mhm:hotpath
func IsZero(x float64) bool {
	return x == 0
}

// EqTol reports whether a and b agree within the absolute tolerance tol.
// Equal infinities compare true; any NaN operand compares false.
func EqTol(a, b, tol float64) bool {
	if a == b {
		return true // handles equal infinities and exact hits
	}
	return math.Abs(a-b) <= tol
}

// Eq reports whether a and b agree within DefaultTol scaled by their
// magnitude: |a-b| <= DefaultTol * max(1, |a|, |b|).
func Eq(a, b float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return EqTol(a, b, DefaultTol*scale)
}
