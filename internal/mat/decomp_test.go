package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCholeskyReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 3, 5, 9, 20} {
		a := randSPD(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		l := ch.L()
		llt, err := Mul(l, l.T())
		if err != nil {
			t.Fatal(err)
		}
		diff, _ := Sub(llt, a)
		if diff.MaxAbs() > 1e-8*(1+a.MaxAbs()) {
			t.Errorf("n=%d: ||LLᵀ-A|| = %g", n, diff.MaxAbs())
		}
		if ch.Size() != n {
			t.Errorf("Size = %d, want %d", ch.Size(), n)
		}
	}
}

func TestCholeskySolveAndInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randSPD(rng, 6)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 6)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b, _ := a.MulVec(x)
	got, err := ch.SolveVec(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !almostEq(got[i], x[i], 1e-8) {
			t.Errorf("solve[%d] = %g, want %g", i, got[i], x[i])
		}
	}
	inv, err := ch.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	prod, _ := Mul(a, inv)
	diff, _ := Sub(prod, Identity(6))
	if diff.MaxAbs() > 1e-8 {
		t.Errorf("A*A⁻¹ deviates from I by %g", diff.MaxAbs())
	}
	if _, err := ch.SolveVec([]float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("short solve: %v", err)
	}
}

func TestCholeskyLogDet(t *testing.T) {
	// diag(4, 9): det = 36, logdet = log 36.
	a, _ := FromRows([][]float64{{4, 0}, {0, 9}})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(ch.LogDet(), math.Log(36), 1e-12) {
		t.Errorf("LogDet = %g, want %g", ch.LogDet(), math.Log(36))
	}
}

func TestCholeskyRejectsNonSPD(t *testing.T) {
	bad, _ := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := NewCholesky(bad); !errors.Is(err, ErrSingular) {
		t.Errorf("non-SPD: err = %v, want ErrSingular", err)
	}
	if _, err := NewCholesky(New(2, 3)); !errors.Is(err, ErrShape) {
		t.Errorf("non-square: err = %v, want ErrShape", err)
	}
}

func TestCholeskyMahalanobis(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randSPD(rng, 5)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	d := make([]float64, 5)
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	got, err := ch.MahalanobisSq(d)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: dᵀ A⁻¹ d via explicit inverse.
	inv, _ := ch.Inverse()
	invd, _ := inv.MulVec(d)
	want := Dot(d, invd)
	if !almostEq(got, want, 1e-8*(1+math.Abs(want))) {
		t.Errorf("MahalanobisSq = %g, want %g", got, want)
	}
	if got < 0 {
		t.Error("MahalanobisSq negative")
	}
	if _, err := ch.MahalanobisSq([]float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("short input: %v", err)
	}
}

func TestEigenSymDiagonal(t *testing.T) {
	a, _ := FromRows([][]float64{{3, 0, 0}, {0, -1, 0}, {0, 0, 7}})
	es, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{7, 3, -1}
	for i, w := range want {
		if !almostEq(es.Values[i], w, 1e-10) {
			t.Errorf("value[%d] = %g, want %g", i, es.Values[i], w)
		}
	}
}

func TestEigenSymProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{2, 3, 5, 10, 25} {
		a := randSym(rng, n)
		es, err := EigenSym(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Decreasing order.
		for i := 1; i < n; i++ {
			if es.Values[i] > es.Values[i-1]+1e-10 {
				t.Errorf("n=%d: values not decreasing at %d", n, i)
			}
		}
		// A v = λ v for each pair.
		for j := 0; j < n; j++ {
			v := es.Vectors.ColCopy(j)
			av, _ := a.MulVec(v)
			for i := 0; i < n; i++ {
				if !almostEq(av[i], es.Values[j]*v[i], 1e-7*(1+a.MaxAbs())) {
					t.Errorf("n=%d: residual (Av-λv)[%d] for pair %d = %g", n, i, j, av[i]-es.Values[j]*v[i])
				}
			}
		}
		// Orthonormal columns.
		vtv, _ := Mul(es.Vectors.T(), es.Vectors)
		diff, _ := Sub(vtv, Identity(n))
		if diff.MaxAbs() > 1e-9 {
			t.Errorf("n=%d: VᵀV deviates from I by %g", n, diff.MaxAbs())
		}
		// Trace preservation: sum of eigenvalues == trace(A).
		tr, _ := a.Trace()
		sum := 0.0
		for _, v := range es.Values {
			sum += v
		}
		if !almostEq(sum, tr, 1e-8*(1+math.Abs(tr))) {
			t.Errorf("n=%d: Σλ = %g, trace = %g", n, sum, tr)
		}
	}
}

func TestEigenSymRejects(t *testing.T) {
	if _, err := EigenSym(New(2, 3)); !errors.Is(err, ErrShape) {
		t.Errorf("non-square: %v", err)
	}
	ns, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	if _, err := EigenSym(ns); !errors.Is(err, ErrShape) {
		t.Errorf("non-symmetric: %v", err)
	}
}

func TestEigenSymQuickProperty(t *testing.T) {
	// Property: for random symmetric matrices the spectral reconstruction
	// V diag(λ) Vᵀ recovers A.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a := randSym(rng, n)
		es, err := EigenSym(a)
		if err != nil {
			return false
		}
		d := New(n, n)
		for i := 0; i < n; i++ {
			d.Set(i, i, es.Values[i])
		}
		vd, _ := Mul(es.Vectors, d)
		rec, _ := Mul(vd, es.Vectors.T())
		diff, _ := Sub(rec, a)
		return diff.MaxAbs() <= 1e-7*(1+a.MaxAbs())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestEigenSymTopKMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n, k := 40, 5
	// PSD matrix so subspace iteration's assumptions hold.
	a := randSPD(rng, n)
	full, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	top, err := EigenSymTopK(DenseOp{M: a}, k, TopKOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if !almostEq(top.Values[i], full.Values[i], 1e-6*(1+full.Values[0])) {
			t.Errorf("value[%d] = %g, full = %g", i, top.Values[i], full.Values[i])
		}
		// Vectors match up to sign.
		dot := math.Abs(Dot(top.Vectors.ColCopy(i), full.Vectors.ColCopy(i)))
		if !almostEq(dot, 1, 1e-5) {
			t.Errorf("vector %d misaligned: |dot| = %g", i, dot)
		}
	}
}

func TestEigenSymTopKGramOp(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	n, cols, k := 30, 50, 4
	phi := New(n, cols)
	for i := range phi.data {
		phi.data[i] = rng.NormFloat64()
	}
	// Dense covariance (1/cols) Φ Φᵀ for reference.
	cov, _ := Mul(phi, phi.T())
	cov.Scale(1 / float64(cols))

	full, err := EigenSym(cov)
	if err != nil {
		t.Fatal(err)
	}
	top, err := EigenSymTopK(NewGramOp(phi), k, TopKOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if !almostEq(top.Values[i], full.Values[i], 1e-6*(1+full.Values[0])) {
			t.Errorf("value[%d] = %g, want %g", i, top.Values[i], full.Values[i])
		}
	}
}

func TestEigenSymTopKRejectsBadK(t *testing.T) {
	a := Identity(4)
	if _, err := EigenSymTopK(DenseOp{M: a}, 0, TopKOptions{}); !errors.Is(err, ErrShape) {
		t.Errorf("k=0: %v", err)
	}
	if _, err := EigenSymTopK(DenseOp{M: a}, 5, TopKOptions{}); !errors.Is(err, ErrShape) {
		t.Errorf("k>n: %v", err)
	}
}

func TestEigenSymTopKLowRank(t *testing.T) {
	// Rank-2 operator: subspace iteration must survive the rank
	// deficiency thanks to re-randomized Gram-Schmidt.
	n := 20
	u1 := make([]float64, n)
	u2 := make([]float64, n)
	for i := 0; i < n; i++ {
		u1[i] = math.Sin(float64(i + 1))
		u2[i] = math.Cos(float64(2*i + 1))
	}
	Normalize(u1)
	// Orthogonalize u2 against u1.
	Axpy(-Dot(u1, u2), u1, u2)
	Normalize(u2)
	a := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, 5*u1[i]*u1[j]+2*u2[i]*u2[j])
		}
	}
	es, err := EigenSymTopK(DenseOp{M: a}, 3, TopKOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(es.Values[0], 5, 1e-8) || !almostEq(es.Values[1], 2, 1e-8) {
		t.Errorf("leading values = %v, want [5 2 ~0]", es.Values)
	}
	if math.Abs(es.Values[2]) > 1e-8 {
		t.Errorf("third value = %g, want ~0", es.Values[2])
	}
}

func TestQRProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, dims := range [][2]int{{3, 3}, {5, 3}, {10, 4}, {8, 8}} {
		m, n := dims[0], dims[1]
		a := New(m, n)
		for i := range a.data {
			a.data[i] = rng.NormFloat64()
		}
		qr, err := NewQR(a)
		if err != nil {
			t.Fatalf("%dx%d: %v", m, n, err)
		}
		// QR == A.
		rec, _ := Mul(qr.Q, qr.R)
		diff, _ := Sub(rec, a)
		if diff.MaxAbs() > 1e-9*(1+a.MaxAbs()) {
			t.Errorf("%dx%d: ||QR-A|| = %g", m, n, diff.MaxAbs())
		}
		// QᵀQ == I.
		qtq, _ := Mul(qr.Q.T(), qr.Q)
		dI, _ := Sub(qtq, Identity(n))
		if dI.MaxAbs() > 1e-9 {
			t.Errorf("%dx%d: QᵀQ off identity by %g", m, n, dI.MaxAbs())
		}
		// R upper triangular.
		for i := 1; i < n; i++ {
			for j := 0; j < i; j++ {
				if qr.R.At(i, j) != 0 {
					t.Errorf("%dx%d: R[%d][%d] = %g, want 0", m, n, i, j, qr.R.At(i, j))
				}
			}
		}
	}
	if _, err := NewQR(New(2, 3)); !errors.Is(err, ErrShape) {
		t.Errorf("wide QR: %v", err)
	}
}

func TestQRSolveLeastSquares(t *testing.T) {
	// Overdetermined consistent system recovers the exact solution.
	rng := rand.New(rand.NewSource(42))
	a := New(10, 3)
	for i := range a.data {
		a.data[i] = rng.NormFloat64()
	}
	x := []float64{1.5, -2, 0.25}
	b, _ := a.MulVec(x)
	qr, err := NewQR(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := qr.SolveVec(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !almostEq(got[i], x[i], 1e-9) {
			t.Errorf("x[%d] = %g, want %g", i, got[i], x[i])
		}
	}
	if _, err := qr.SolveVec([]float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("short b: %v", err)
	}
}

func TestSVDReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, dims := range [][2]int{{4, 4}, {6, 3}, {3, 6}} {
		m, n := dims[0], dims[1]
		a := New(m, n)
		for i := range a.data {
			a.data[i] = rng.NormFloat64()
		}
		sv, err := NewSVD(a)
		if err != nil {
			t.Fatalf("%dx%d: %v", m, n, err)
		}
		r := len(sv.S)
		// Singular values nonnegative and decreasing.
		for i := 0; i < r; i++ {
			if sv.S[i] < 0 {
				t.Errorf("negative singular value %g", sv.S[i])
			}
			if i > 0 && sv.S[i] > sv.S[i-1]+1e-10 {
				t.Errorf("singular values not decreasing at %d", i)
			}
		}
		// Reconstruct U diag(S) Vᵀ.
		us := sv.U.Clone()
		for i := 0; i < us.Rows(); i++ {
			for j := 0; j < us.Cols(); j++ {
				us.Set(i, j, us.At(i, j)*sv.S[j])
			}
		}
		rec, _ := Mul(us, sv.V.T())
		diff, _ := Sub(rec, a)
		if diff.MaxAbs() > 1e-7*(1+a.MaxAbs()) {
			t.Errorf("%dx%d: ||USVᵀ-A|| = %g", m, n, diff.MaxAbs())
		}
	}
}

func TestGramOpMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	phi := New(12, 7)
	for i := range phi.data {
		phi.data[i] = rng.NormFloat64()
	}
	cov, _ := Mul(phi, phi.T())
	cov.Scale(1.0 / 7)
	g := NewGramOp(phi)
	if g.Dim() != 12 {
		t.Fatalf("Dim = %d", g.Dim())
	}
	x := make([]float64, 12)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want, _ := cov.MulVec(x)
	got := make([]float64, 12)
	g.Apply(got, x)
	for i := range want {
		if !almostEq(got[i], want[i], 1e-10*(1+math.Abs(want[i]))) {
			t.Errorf("GramOp[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestEigenSymTopKParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	phi := New(50, 80)
	for i := range phi.data {
		phi.data[i] = rng.NormFloat64()
	}
	serial, err := EigenSymTopK(NewGramOp(phi), 6, TopKOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := EigenSymTopK(NewGramOp(phi), 6, TopKOptions{Seed: 3, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Values {
		if serial.Values[i] != parallel.Values[i] {
			t.Fatalf("value %d: serial %g vs parallel %g", i, serial.Values[i], parallel.Values[i])
		}
	}
	for j := 0; j < 6; j++ {
		a := serial.Vectors.ColCopy(j)
		b := parallel.Vectors.ColCopy(j)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vector %d differs at %d", j, i)
			}
		}
	}
}
