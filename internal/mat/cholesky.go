package mat

import (
	"fmt"
	"math"
)

// Cholesky holds the lower-triangular factor L of a symmetric
// positive-definite matrix A = L Lᵀ.
type Cholesky struct {
	n int
	l *Matrix // lower triangular, upper part zero
}

// NewCholesky factors the symmetric positive-definite matrix a.
// It returns an error wrapping ErrSingular if a pivot is not positive.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("mat: Cholesky of %dx%d: %w", a.rows, a.cols, ErrShape)
	}
	n := a.rows
	l := New(n, n)
	for j := 0; j < n; j++ {
		// Diagonal element.
		d := a.At(j, j)
		lj := l.Row(j)
		for k := 0; k < j; k++ {
			d -= lj[k] * lj[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("mat: Cholesky pivot %d is %g: %w", j, d, ErrSingular)
		}
		ljj := math.Sqrt(d)
		lj[j] = ljj
		// Column below the diagonal.
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			li := l.Row(i)
			for k := 0; k < j; k++ {
				s -= li[k] * lj[k]
			}
			li[j] = s / ljj
		}
	}
	return &Cholesky{n: n, l: l}, nil
}

// Size returns the dimension of the factored matrix.
func (c *Cholesky) Size() int { return c.n }

// L returns a copy of the lower-triangular factor.
func (c *Cholesky) L() *Matrix { return c.l.Clone() }

// LogDet returns log(det(A)) = 2*sum(log(L[i][i])).
func (c *Cholesky) LogDet() float64 {
	s := 0.0
	for i := 0; i < c.n; i++ {
		s += math.Log(c.l.At(i, i))
	}
	return 2 * s
}

// SolveVec solves A x = b for x.
func (c *Cholesky) SolveVec(b []float64) ([]float64, error) {
	if len(b) != c.n {
		return nil, fmt.Errorf("mat: Cholesky.SolveVec: len %d, want %d: %w", len(b), c.n, ErrShape)
	}
	// Forward substitution: L y = b.
	y := make([]float64, c.n)
	for i := 0; i < c.n; i++ {
		s := b[i]
		li := c.l.Row(i)
		for k := 0; k < i; k++ {
			s -= li[k] * y[k]
		}
		y[i] = s / li[i]
	}
	// Back substitution: Lᵀ x = y.
	x := make([]float64, c.n)
	for i := c.n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < c.n; k++ {
			s -= c.l.At(k, i) * x[k]
		}
		x[i] = s / c.l.At(i, i)
	}
	return x, nil
}

// MahalanobisSq returns dᵀ A⁻¹ d computed stably through the factor:
// solve L y = d, then the result is yᵀy.
func (c *Cholesky) MahalanobisSq(d []float64) (float64, error) {
	return c.MahalanobisSqScratch(d, make([]float64, c.n))
}

// MahalanobisSqScratch is MahalanobisSq with caller-owned scratch: the
// forward-substitution solution is written into y (length Size()), so
// steady-state callers allocate nothing.
func (c *Cholesky) MahalanobisSqScratch(d, y []float64) (float64, error) {
	if len(d) != c.n {
		return 0, fmt.Errorf("mat: MahalanobisSq: len %d, want %d: %w", len(d), c.n, ErrShape)
	}
	if len(y) != c.n {
		return 0, fmt.Errorf("mat: MahalanobisSq: scratch len %d, want %d: %w", len(y), c.n, ErrShape)
	}
	for i := 0; i < c.n; i++ {
		s := d[i]
		li := c.l.Row(i)
		for k := 0; k < i; k++ {
			s -= li[k] * y[k]
		}
		y[i] = s / li[i]
	}
	out := 0.0
	for _, v := range y {
		out += v * v
	}
	return out, nil
}

// Inverse returns A⁻¹ as a dense matrix.
func (c *Cholesky) Inverse() (*Matrix, error) {
	inv := New(c.n, c.n)
	e := make([]float64, c.n)
	for j := 0; j < c.n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := c.SolveVec(e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < c.n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}
