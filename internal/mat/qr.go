package mat

import (
	"fmt"
	"math"
)

// QR holds a Householder QR factorization A = Q R with A m x n, m >= n,
// Q m x n with orthonormal columns (thin Q) and R n x n upper triangular.
type QR struct {
	Q *Matrix
	R *Matrix
}

// NewQR factors a (m x n, m >= n) into thin Q and R.
func NewQR(a *Matrix) (*QR, error) {
	m, n := a.rows, a.cols
	if m < n {
		return nil, fmt.Errorf("mat: QR of %dx%d needs rows >= cols: %w", m, n, ErrShape)
	}
	r := a.Clone()
	// Accumulate Householder reflectors applied to an m x m identity is
	// wasteful; instead store the reflectors and form thin Q afterwards.
	vs := make([][]float64, 0, n)
	for k := 0; k < n; k++ {
		// Build the reflector for column k, rows k..m-1.
		x := make([]float64, m-k)
		for i := k; i < m; i++ {
			x[i-k] = r.At(i, k)
		}
		alpha := Norm2(x)
		if x[0] > 0 {
			alpha = -alpha
		}
		if alpha == 0 {
			vs = append(vs, nil) // column already zero below diagonal
			continue
		}
		v := append([]float64(nil), x...)
		v[0] -= alpha
		vn := Norm2(v)
		if vn < 1e-300 {
			vs = append(vs, nil)
			continue
		}
		for i := range v {
			v[i] /= vn
		}
		vs = append(vs, v)
		// Apply (I - 2vvᵀ) to the trailing submatrix of r.
		for j := k; j < n; j++ {
			s := 0.0
			for i := k; i < m; i++ {
				s += v[i-k] * r.At(i, j)
			}
			s *= 2
			for i := k; i < m; i++ {
				r.Set(i, j, r.At(i, j)-s*v[i-k])
			}
		}
	}
	// Zero out below-diagonal noise and keep the n x n R.
	rOut := New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			rOut.Set(i, j, r.At(i, j))
		}
	}
	// Form thin Q by applying the reflectors in reverse to the first n
	// columns of the identity.
	q := New(m, n)
	for j := 0; j < n; j++ {
		q.Set(j, j, 1)
	}
	for k := len(vs) - 1; k >= 0; k-- {
		v := vs[k]
		if v == nil {
			continue
		}
		for j := 0; j < n; j++ {
			s := 0.0
			for i := k; i < m; i++ {
				s += v[i-k] * q.At(i, j)
			}
			s *= 2
			for i := k; i < m; i++ {
				q.Set(i, j, q.At(i, j)-s*v[i-k])
			}
		}
	}
	return &QR{Q: q, R: rOut}, nil
}

// SolveVec solves the least-squares problem min ||A x - b|| using the
// factorization (x = R⁻¹ Qᵀ b).
func (qr *QR) SolveVec(b []float64) ([]float64, error) {
	m, n := qr.Q.rows, qr.Q.cols
	if len(b) != m {
		return nil, fmt.Errorf("mat: QR.SolveVec: len %d, want %d: %w", len(b), m, ErrShape)
	}
	y, err := qr.Q.TMulVec(b)
	if err != nil {
		return nil, err
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= qr.R.At(i, k) * x[k]
		}
		d := qr.R.At(i, i)
		if math.Abs(d) < 1e-300 {
			return nil, fmt.Errorf("mat: QR.SolveVec: zero diagonal at %d: %w", i, ErrSingular)
		}
		x[i] = s / d
	}
	return x, nil
}

// SVDThin holds a thin singular value decomposition A = U diag(S) Vᵀ with
// A m x n, U m x r, V n x r, r = min(m, n), singular values decreasing.
type SVDThin struct {
	U *Matrix
	S []float64
	V *Matrix
}

// NewSVD computes a thin SVD via the symmetric eigendecomposition of the
// smaller Gram matrix (AᵀA or AAᵀ). Adequate for the small matrices this
// project decomposes directly; large covariances go through EigenSymTopK.
func NewSVD(a *Matrix) (*SVDThin, error) {
	m, n := a.rows, a.cols
	if m >= n {
		// Eigen of AᵀA (n x n): A = U S Vᵀ with V the eigenvectors.
		ata, err := Mul(a.T(), a)
		if err != nil {
			return nil, err
		}
		es, err := EigenSym(ata)
		if err != nil {
			return nil, err
		}
		s := make([]float64, n)
		u := New(m, n)
		for j := 0; j < n; j++ {
			ev := es.Values[j]
			if ev < 0 {
				ev = 0
			}
			s[j] = math.Sqrt(ev)
			// u_j = A v_j / s_j
			vj := es.Vectors.ColCopy(j)
			av, err := a.MulVec(vj)
			if err != nil {
				return nil, err
			}
			if s[j] > 1e-300 {
				for i := 0; i < m; i++ {
					u.Set(i, j, av[i]/s[j])
				}
			}
		}
		return &SVDThin{U: u, S: s, V: es.Vectors}, nil
	}
	// m < n: decompose the transpose and swap U and V.
	sv, err := NewSVD(a.T())
	if err != nil {
		return nil, err
	}
	return &SVDThin{U: sv.V, S: sv.S, V: sv.U}, nil
}
