// Package mat provides the dense linear algebra needed by the memory
// heat map detector: matrices and vectors, Cholesky and QR
// factorizations, symmetric eigendecomposition (full Jacobi and
// truncated subspace iteration), and a small SVD.
//
// The package is deliberately self-contained (stdlib only) and tuned for
// the shapes this project uses: full decompositions of small matrices
// (GMM covariances, L' <= 32) and top-k eigenpairs of moderately large
// symmetric matrices (the 1472x1472 MHM covariance).
package mat

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrShape is returned (wrapped) when operand dimensions are incompatible.
var ErrShape = errors.New("mat: incompatible dimensions")

// ErrSingular is returned (wrapped) when a factorization meets a matrix
// that is singular or not positive definite.
var ErrSingular = errors.New("mat: singular or non-positive-definite matrix")

// Matrix is a dense, row-major matrix of float64.
type Matrix struct {
	rows, cols int
	data       []float64 // len == rows*cols, row-major
}

// New returns a zeroed rows x cols matrix. It panics if either dimension
// is not positive: matrix shapes are program invariants, not runtime
// inputs.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: New(%d, %d): dimensions must be positive", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equally sized rows.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("mat: FromRows: empty input: %w", ErrShape)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			return nil, fmt.Errorf("mat: FromRows: row %d has %d columns, want %d: %w", i, len(r), m.cols, ErrShape)
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m, nil
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// RowCopy returns a copy of row i.
func (m *Matrix) RowCopy(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.Row(i))
	return out
}

// ColCopy returns a copy of column j.
func (m *Matrix) ColCopy(j int) []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow copies v into row i.
func (m *Matrix) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic(fmt.Sprintf("mat: SetRow: len %d, want %d", len(v), m.cols))
	}
	copy(m.Row(i), v)
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		ri := m.Row(i)
		for j, v := range ri {
			out.data[j*out.cols+i] = v
		}
	}
	return out
}

// Mul returns a*b.
func Mul(a, b *Matrix) (*Matrix, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("mat: Mul: %dx%d by %dx%d: %w", a.rows, a.cols, b.rows, b.cols, ErrShape)
	}
	out := New(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		ar := a.Row(i)
		or := out.Row(i)
		for k, av := range ar {
			if av == 0 {
				continue
			}
			br := b.Row(k)
			for j, bv := range br {
				or[j] += av * bv
			}
		}
	}
	return out, nil
}

// MulVec returns a*x as a new vector.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	out := make([]float64, m.rows)
	if err := m.MulVecInto(out, x); err != nil {
		return nil, err
	}
	return out, nil
}

// MulVecInto computes a*x into dst (length Rows()) without allocating.
func (m *Matrix) MulVecInto(dst, x []float64) error {
	if len(x) != m.cols {
		return fmt.Errorf("mat: MulVec: vector len %d, matrix %dx%d: %w", len(x), m.rows, m.cols, ErrShape)
	}
	if len(dst) != m.rows {
		return fmt.Errorf("mat: MulVec: dst len %d, matrix %dx%d: %w", len(dst), m.rows, m.cols, ErrShape)
	}
	for i := 0; i < m.rows; i++ {
		dst[i] = Dot(m.Row(i), x)
	}
	return nil
}

// TMulVec returns aᵀ*x without materializing the transpose.
func (m *Matrix) TMulVec(x []float64) ([]float64, error) {
	if len(x) != m.rows {
		return nil, fmt.Errorf("mat: TMulVec: vector len %d, matrix %dx%d: %w", len(x), m.rows, m.cols, ErrShape)
	}
	out := make([]float64, m.cols)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		ri := m.Row(i)
		for j, v := range ri {
			out[j] += xi * v
		}
	}
	return out, nil
}

// Add returns a+b.
func Add(a, b *Matrix) (*Matrix, error) {
	if a.rows != b.rows || a.cols != b.cols {
		return nil, fmt.Errorf("mat: Add: %dx%d and %dx%d: %w", a.rows, a.cols, b.rows, b.cols, ErrShape)
	}
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] += v
	}
	return out, nil
}

// Sub returns a-b.
func Sub(a, b *Matrix) (*Matrix, error) {
	if a.rows != b.rows || a.cols != b.cols {
		return nil, fmt.Errorf("mat: Sub: %dx%d and %dx%d: %w", a.rows, a.cols, b.rows, b.cols, ErrShape)
	}
	out := a.Clone()
	for i, v := range b.data {
		out.data[i] -= v
	}
	return out, nil
}

// Scale multiplies every element of m by s in place and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbs returns the largest absolute element value of m.
func (m *Matrix) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// FrobeniusNorm returns sqrt(sum of squared elements).
func (m *Matrix) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Trace returns the sum of diagonal elements of a square matrix.
func (m *Matrix) Trace() (float64, error) {
	if m.rows != m.cols {
		return 0, fmt.Errorf("mat: Trace of %dx%d: %w", m.rows, m.cols, ErrShape)
	}
	t := 0.0
	for i := 0; i < m.rows; i++ {
		t += m.At(i, i)
	}
	return t, nil
}

// String renders the matrix for debugging; large matrices are summarized.
func (m *Matrix) String() string {
	const maxDim = 8
	if m.rows > maxDim || m.cols > maxDim {
		return fmt.Sprintf("Matrix(%dx%d, |max|=%.4g)", m.rows, m.cols, m.MaxAbs())
	}
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%9.4g", m.At(i, j))
		}
		b.WriteString("]\n")
	}
	return b.String()
}
