package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randSym(rng *rand.Rand, n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

// randSPD returns a random symmetric positive-definite matrix B Bᵀ + εI.
func randSPD(rng *rand.Rand, n int) *Matrix {
	b := New(n, n)
	for i := range b.data {
		b.data[i] = rng.NormFloat64()
	}
	m, err := Mul(b, b.T())
	if err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		m.Set(i, i, m.At(i, i)+0.5)
	}
	return m
}

func TestNewPanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 2}, {2, -3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			New(dims[0], dims[1])
		}()
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("got %dx%d, want 3x2", m.Rows(), m.Cols())
	}
	if m.At(2, 1) != 6 {
		t.Errorf("At(2,1) = %g, want 6", m.At(2, 1))
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrShape) {
		t.Errorf("ragged rows: err = %v, want ErrShape", err)
	}
	if _, err := FromRows(nil); !errors.Is(err, ErrShape) {
		t.Errorf("nil rows: err = %v, want ErrShape", err)
	}
}

func TestIdentityAndTrace(t *testing.T) {
	id := Identity(4)
	tr, err := id.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if tr != 4 {
		t.Errorf("trace(I4) = %g, want 4", tr)
	}
	if _, err := New(2, 3).Trace(); !errors.Is(err, ErrShape) {
		t.Errorf("trace of non-square: err = %v, want ErrShape", err)
	}
}

func TestMulAgainstHandComputed(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b, _ := FromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	c, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{58, 64}, {139, 154}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Errorf("c[%d][%d] = %g, want %g", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	if _, err := Mul(a, a); !errors.Is(err, ErrShape) {
		t.Errorf("mismatched Mul: err = %v, want ErrShape", err)
	}
}

func TestMulVecAndTMulVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	y, err := a.MulVec([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 6 || y[1] != 15 {
		t.Errorf("MulVec = %v, want [6 15]", y)
	}
	z, err := a.TMulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if z[0] != 5 || z[1] != 7 || z[2] != 9 {
		t.Errorf("TMulVec = %v, want [5 7 9]", z)
	}
	if _, err := a.MulVec([]float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("MulVec mismatch: err = %v", err)
	}
	if _, err := a.TMulVec([]float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("TMulVec mismatch: err = %v", err)
	}
}

func TestTransposeProperty(t *testing.T) {
	// Property: (Aᵀ)ᵀ == A for random shapes and data.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(6)
		c := 1 + rng.Intn(6)
		a := New(r, c)
		for i := range a.data {
			a.data[i] = rng.NormFloat64()
		}
		tt := a.T().T()
		for i := range a.data {
			if tt.data[i] != a.data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddSubScale(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	s, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if s.At(1, 1) != 12 {
		t.Errorf("Add: got %g", s.At(1, 1))
	}
	d, err := Sub(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if d.At(0, 0) != 4 {
		t.Errorf("Sub: got %g", d.At(0, 0))
	}
	a.Clone().Scale(2)
	if a.At(0, 0) != 1 {
		t.Errorf("Scale mutated the source of a clone")
	}
	if _, err := Add(a, New(3, 3)); !errors.Is(err, ErrShape) {
		t.Errorf("Add mismatch: err = %v", err)
	}
	if _, err := Sub(a, New(3, 3)); !errors.Is(err, ErrShape) {
		t.Errorf("Sub mismatch: err = %v", err)
	}
}

func TestRowColAccessors(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	r := a.RowCopy(1)
	r[0] = 99
	if a.At(1, 0) != 4 {
		t.Error("RowCopy aliases the matrix")
	}
	c := a.ColCopy(2)
	if c[0] != 3 || c[1] != 6 {
		t.Errorf("ColCopy = %v", c)
	}
	a.SetRow(0, []float64{7, 8, 9})
	if a.At(0, 2) != 9 {
		t.Error("SetRow did not write")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetRow with wrong length did not panic")
			}
		}()
		a.SetRow(0, []float64{1})
	}()
}

func TestIsSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := randSym(rng, 5)
	if !s.IsSymmetric(0) {
		t.Error("randSym not symmetric")
	}
	s.Set(0, 1, s.At(0, 1)+1)
	if s.IsSymmetric(1e-9) {
		t.Error("perturbed matrix still symmetric")
	}
	if New(2, 3).IsSymmetric(1) {
		t.Error("non-square reported symmetric")
	}
}

func TestStringForms(t *testing.T) {
	small, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	if got := small.String(); got == "" {
		t.Error("empty String for small matrix")
	}
	big := New(20, 20)
	if got := big.String(); got == "" {
		t.Error("empty String for big matrix")
	}
}

func TestVectorOps(t *testing.T) {
	a := []float64{3, 4}
	if Norm2(a) != 5 {
		t.Errorf("Norm2 = %g, want 5", Norm2(a))
	}
	if Norm2([]float64{0, 0}) != 0 {
		t.Error("Norm2 of zero vector")
	}
	if Dot(a, []float64{1, 2}) != 11 {
		t.Errorf("Dot = %g", Dot(a, []float64{1, 2}))
	}
	s := AddVec(a, []float64{1, 1})
	if s[0] != 4 || s[1] != 5 {
		t.Errorf("AddVec = %v", s)
	}
	d := SubVec(a, []float64{1, 1})
	if d[0] != 2 || d[1] != 3 {
		t.Errorf("SubVec = %v", d)
	}
	sc := ScaleVec(2, a)
	if sc[0] != 6 || sc[1] != 8 {
		t.Errorf("ScaleVec = %v", sc)
	}
	y := []float64{1, 1}
	Axpy(2, a, y)
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("Axpy = %v", y)
	}
	v := []float64{3, 4}
	if n := Normalize(v); n != 5 || !almostEq(Norm2(v), 1, 1e-12) {
		t.Errorf("Normalize: n=%g, |v|=%g", n, Norm2(v))
	}
	z := []float64{0, 0}
	if n := Normalize(z); n != 0 {
		t.Errorf("Normalize zero: %g", n)
	}
	if DistEuclid([]float64{0, 0}, []float64{3, 4}) != 5 {
		t.Error("DistEuclid")
	}
}

func TestVectorPanicsOnMismatch(t *testing.T) {
	cases := []func(){
		func() { Dot([]float64{1}, []float64{1, 2}) },
		func() { AddVec([]float64{1}, []float64{1, 2}) },
		func() { SubVec([]float64{1}, []float64{1, 2}) },
		func() { Axpy(1, []float64{1}, []float64{1, 2}) },
		func() { DistEuclid([]float64{1}, []float64{1, 2}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestNorm2ExtremeValues(t *testing.T) {
	// Scaled accumulation must not overflow for huge components.
	v := []float64{1e200, 1e200}
	want := 1e200 * math.Sqrt(2)
	if got := Norm2(v); !almostEq(got/want, 1, 1e-12) {
		t.Errorf("Norm2 overflowed: got %g, want %g", got, want)
	}
}
