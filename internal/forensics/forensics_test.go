package forensics

import (
	"errors"
	"strings"
	"testing"

	"github.com/memheatmap/mhm/internal/attack"
	"github.com/memheatmap/mhm/internal/core"
	"github.com/memheatmap/mhm/internal/experiments"
	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/kernelmap"
)

// trainedSetup builds a quick-scale detector plus the rootkit run whose
// insmod interval the tests explain.
func trainedSetup(t *testing.T) (*core.Detector, *kernelmap.Image, []*heatmap.HeatMap) {
	t.Helper()
	lab, err := experiments.NewLab(1, experiments.QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	det, _, err := lab.TrainDetector(100)
	if err != nil {
		t.Fatal(err)
	}
	sc := &attack.RootkitLKM{LoadAt: 1_505_000} // interval 150
	maps, err := lab.RunScenario(sc, 999, 1_600_000)
	if err != nil {
		t.Fatal(err)
	}
	return det, lab.Img, maps
}

func TestExplainAttributesRootkitToModuleLoader(t *testing.T) {
	det, img, maps := trainedSetup(t)
	rep, err := Explain(det, img, maps[150], 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 15 {
		t.Fatalf("findings = %d", len(rep.Findings))
	}
	// The insmod interval's dominant deviation must sit in the module
	// loader subsystem — the forensics must point at the right code.
	top := rep.TopSubsystems()
	if len(top) == 0 || top[0] != kernelmap.SubModule {
		t.Errorf("top subsystem = %v, want %q first", top, kernelmap.SubModule)
	}
	// Findings carry symbols and positive deltas for the loader cells.
	foundModuleSymbol := false
	for _, f := range rep.Findings {
		for _, sym := range f.Symbols {
			if strings.HasPrefix(sym, kernelmap.SubModule+"/") && f.Delta > 0 {
				foundModuleSymbol = true
			}
		}
	}
	if !foundModuleSymbol {
		t.Error("no module-loader symbol among the top findings")
	}
	if !strings.Contains(rep.String(), "subsystems by deviation") {
		t.Error("rendering incomplete")
	}
}

func TestExplainNormalIntervalHasSmallDeltas(t *testing.T) {
	det, img, maps := trainedSetup(t)
	normal, err := Explain(det, img, maps[50], 10)
	if err != nil {
		t.Fatal(err)
	}
	anomalous, err := Explain(det, img, maps[150], 10)
	if err != nil {
		t.Fatal(err)
	}
	maxAbs := func(r *Report) float64 {
		m := 0.0
		for _, f := range r.Findings {
			d := f.Delta
			if d < 0 {
				d = -d
			}
			if d > m {
				m = d
			}
		}
		return m
	}
	if maxAbs(anomalous) < 5*maxAbs(normal) {
		t.Errorf("anomalous max |Δ| %.0f not well above normal %.0f",
			maxAbs(anomalous), maxAbs(normal))
	}
	if anomalous.LogDensity >= normal.LogDensity {
		t.Errorf("densities inverted: %.1f vs %.1f", anomalous.LogDensity, normal.LogDensity)
	}
}

func TestExplainValidation(t *testing.T) {
	det, img, maps := trainedSetup(t)
	if _, err := Explain(nil, img, maps[0], 5); !errors.Is(err, ErrInput) {
		t.Errorf("nil detector: %v", err)
	}
	if _, err := Explain(det, nil, maps[0], 5); !errors.Is(err, ErrInput) {
		t.Errorf("nil image: %v", err)
	}
	if _, err := Explain(det, img, nil, 5); !errors.Is(err, ErrInput) {
		t.Errorf("nil map: %v", err)
	}
	// Default topN.
	rep, err := Explain(det, img, maps[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 10 {
		t.Errorf("default topN findings = %d, want 10", len(rep.Findings))
	}
	// Foreign region propagates the core error.
	foreign, _ := heatmap.New(heatmap.Def{AddrBase: 0, Size: 4096, Gran: 2048})
	if _, err := Explain(det, img, foreign, 5); err == nil {
		t.Error("foreign region accepted")
	}
}
