// Package forensics explains detections: given an anomalous memory heat
// map, it finds the cells deviating most from the closest learned normal
// pattern and attributes them to kernel symbols — turning "interval 150
// is anomalous" into "the module loader lit up". The paper stops at the
// alarm; an operator needs the why.
package forensics

import (
	"errors"
	"fmt"
	"sort"

	"github.com/memheatmap/mhm/internal/core"
	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/kernelmap"
)

// ErrInput wraps invalid explain requests.
var ErrInput = errors.New("forensics: invalid input")

// CellFinding is one deviating cell with its symbol attribution.
type CellFinding struct {
	// Cell is the MHM cell index; AddrLo/AddrHi its address span.
	Cell           int
	AddrLo, AddrHi uint64
	// Observed is the cell's count in the analyzed MHM; Expected the
	// count under the closest learned normal pattern.
	Observed, Expected float64
	// Delta is Observed − Expected (positive: unexpectedly hot).
	Delta float64
	// Symbols are the kernel functions overlapping the cell, with their
	// subsystems, e.g. "module/module_fn_0003".
	Symbols []string
}

// Report is the explanation of one MHM.
type Report struct {
	// Component is the index of the GMM component (learned pattern) the
	// MHM is closest to.
	Component int
	// LogDensity is the MHM's mixture log density.
	LogDensity float64
	// Findings are the top deviating cells, largest |Delta| first.
	Findings []CellFinding
	// SubsystemDelta aggregates |Delta| per kernel subsystem, a coarse
	// "where did the anomaly happen" view.
	SubsystemDelta map[string]float64
}

// Explain analyzes m against the detector's learned patterns: it picks
// the GMM component with the highest responsibility, reconstructs that
// component's mean back into cell space as the expected behaviour, and
// reports the topN cells with the largest deviation, each attributed to
// kernel symbols from img.
func Explain(det *core.Detector, img *kernelmap.Image, m *heatmap.HeatMap, topN int) (*Report, error) {
	if det == nil || img == nil || m == nil {
		return nil, fmt.Errorf("forensics: nil argument: %w", ErrInput)
	}
	if topN <= 0 {
		topN = 10
	}
	v := m.Vector()
	w, err := det.PCA.Project(v)
	if err != nil {
		return nil, err
	}
	lp, err := det.GMM.LogProb(w)
	if err != nil {
		return nil, err
	}
	resp, err := det.GMM.Responsibilities(w)
	if err != nil {
		return nil, err
	}
	bestJ := 0
	for j, r := range resp {
		if r > resp[bestJ] {
			bestJ = j
		}
	}
	// Expected = the closest normal pattern, lifted back to cell space.
	expected, err := det.PCA.Reconstruct(det.GMM.Components[bestJ].Mean)
	if err != nil {
		return nil, err
	}

	type scored struct {
		cell  int
		delta float64
	}
	cells := make([]scored, len(v))
	for i := range v {
		cells[i] = scored{cell: i, delta: v[i] - expected[i]}
	}
	sort.Slice(cells, func(a, b int) bool {
		da, db := cells[a].delta, cells[b].delta
		if da < 0 {
			da = -da
		}
		if db < 0 {
			db = -db
		}
		return da > db
	})
	if topN > len(cells) {
		topN = len(cells)
	}

	rep := &Report{
		Component:      bestJ,
		LogDensity:     lp,
		SubsystemDelta: map[string]float64{},
	}
	for _, sc := range cells[:topN] {
		lo, hi, err := m.Def.CellRange(sc.cell)
		if err != nil {
			return nil, err
		}
		finding := CellFinding{
			Cell:     sc.cell,
			AddrLo:   lo,
			AddrHi:   hi,
			Observed: v[sc.cell],
			Expected: expected[sc.cell],
			Delta:    sc.delta,
		}
		for _, fn := range symbolsInRange(img, lo, hi) {
			finding.Symbols = append(finding.Symbols, fn.Subsystem+"/"+fn.Name)
		}
		rep.Findings = append(rep.Findings, finding)
	}
	// Subsystem aggregation over every cell (not just topN) so the
	// coarse view is complete.
	for _, sc := range cells {
		lo, hi, err := m.Def.CellRange(sc.cell)
		if err != nil {
			return nil, err
		}
		d := sc.delta
		if d < 0 {
			d = -d
		}
		if d == 0 {
			continue
		}
		fns := symbolsInRange(img, lo, hi)
		if len(fns) == 0 {
			continue
		}
		// Split the cell's deviation evenly across its subsystems.
		share := d / float64(len(fns))
		for _, fn := range fns {
			rep.SubsystemDelta[fn.Subsystem] += share
		}
	}
	return rep, nil
}

// symbolsInRange returns the functions overlapping [lo, hi).
func symbolsInRange(img *kernelmap.Image, lo, hi uint64) []*kernelmap.Function {
	var out []*kernelmap.Function
	// Walk from the function containing lo (or the next one after).
	for addr := lo; addr < hi; {
		fn, ok := img.Lookup(addr)
		if !ok {
			// Padding: skip forward conservatively.
			addr += 16
			continue
		}
		out = append(out, fn)
		addr = fn.Addr + fn.Size
	}
	return out
}

// TopSubsystems returns the report's subsystems ordered by aggregate
// deviation, largest first.
func (r *Report) TopSubsystems() []string {
	type kv struct {
		name string
		d    float64
	}
	list := make([]kv, 0, len(r.SubsystemDelta))
	for name, d := range r.SubsystemDelta {
		list = append(list, kv{name, d})
	}
	sort.Slice(list, func(a, b int) bool {
		if list[a].d != list[b].d {
			return list[a].d > list[b].d
		}
		return list[a].name < list[b].name
	})
	out := make([]string, len(list))
	for i, e := range list {
		out[i] = e.name
	}
	return out
}

// String renders the report.
func (r *Report) String() string {
	s := fmt.Sprintf("closest pattern: component %d (log density %.1f)\n", r.Component, r.LogDensity)
	s += "top deviating cells:\n"
	for _, f := range r.Findings {
		s += fmt.Sprintf("  cell %4d [%#x,%#x): observed %.0f expected %.0f (Δ %+.0f)",
			f.Cell, f.AddrLo, f.AddrHi, f.Observed, f.Expected, f.Delta)
		if len(f.Symbols) > 0 {
			s += " — " + f.Symbols[0]
			if len(f.Symbols) > 1 {
				s += fmt.Sprintf(" (+%d more)", len(f.Symbols)-1)
			}
		}
		s += "\n"
	}
	subs := r.TopSubsystems()
	if len(subs) > 5 {
		subs = subs[:5]
	}
	s += fmt.Sprintf("subsystems by deviation: %v\n", subs)
	return s
}
