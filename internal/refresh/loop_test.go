package refresh

import (
	"math"
	"testing"

	"github.com/memheatmap/mhm/internal/fleet"
)

func runSimWithLoop(t *testing.T, workers int) (*fleet.SimResult, LoopStats, error) {
	t.Helper()
	sim, err := fleet.NewSim(fleet.SimConfig{
		Streams:       8,
		Seed:          1,
		HorizonMicros: 600_000, // 60 intervals per stream
		Workers:       workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	loop, err := NewLoop(sim.Detector(), sim.Registry(), LoopConfig{
		Every: 60,
		Refresher: Config{
			Window:       64,
			Holdout:      24,
			HoldoutEvery: 4,
			Workers:      workers,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.SetMaintainer(loop)
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, loop.Stats(), loop.Err()
}

// TestLoopRefreshesFleetWithoutDrops runs the fleet simulator with the
// refresh loop installed and pins the zero-drop invariant: every
// admitted interval resolves a model across all hot swaps, refreshes
// actually happen, and the registry converges onto a refreshed
// generation.
func TestLoopRefreshesFleetWithoutDrops(t *testing.T) {
	res, stats, lerr := runSimWithLoop(t, 4)
	if lerr != nil {
		t.Fatalf("loop error: %v", lerr)
	}
	if res.DroppedIntervals != 0 {
		t.Fatalf("%d dropped intervals across swaps, want 0", res.DroppedIntervals)
	}
	if stats.Refreshes == 0 || stats.SwapsScheduled == 0 {
		t.Fatalf("loop idle: %+v", stats)
	}
	if stats.Version < 2 {
		t.Fatalf("no refreshed generation published: version %d", stats.Version)
	}
	if stats.Observed != res.Admitted {
		t.Fatalf("maintainer observed %d of %d admitted intervals", stats.Observed, res.Admitted)
	}
}

// TestLoopSimDeterministicAcrossWorkers pins the fleet-level
// determinism contract with online refresh active: verdict counts,
// alarm traces and loop stats are identical at every worker count.
func TestLoopSimDeterministicAcrossWorkers(t *testing.T) {
	baseRes, baseStats, lerr := runSimWithLoop(t, 1)
	if lerr != nil {
		t.Fatalf("loop error: %v", lerr)
	}
	for _, workers := range []int{2, 8} {
		res, stats, lerr := runSimWithLoop(t, workers)
		if lerr != nil {
			t.Fatalf("workers=%d: loop error: %v", workers, lerr)
		}
		if res.Anomalous != baseRes.Anomalous || res.Admitted != baseRes.Admitted {
			t.Fatalf("workers=%d: verdicts (%d,%d) vs (%d,%d)",
				workers, res.Anomalous, res.Admitted, baseRes.Anomalous, baseRes.Admitted)
		}
		if len(res.Alarms) != len(baseRes.Alarms) {
			t.Fatalf("workers=%d: %d alarms vs %d", workers, len(res.Alarms), len(baseRes.Alarms))
		}
		for i, a := range baseRes.Alarms {
			if res.Alarms[i] != a {
				t.Fatalf("workers=%d: alarm[%d] = %+v, want %+v", workers, i, res.Alarms[i], a)
			}
		}
		if stats != baseStats {
			t.Fatalf("workers=%d: loop stats %+v vs %+v", workers, stats, baseStats)
		}
	}
}

// TestLoopStatsDriftFieldsFinite sanity-checks the published snapshot
// fields after a run.
func TestLoopStatsDriftFieldsFinite(t *testing.T) {
	_, stats, _ := runSimWithLoop(t, 2)
	if math.IsNaN(stats.LastDriftStat) || stats.LastDriftStat < 0 {
		t.Fatalf("drift stat %v", stats.LastDriftStat)
	}
	if stats.LastWindow <= 0 {
		t.Fatalf("last window %d", stats.LastWindow)
	}
}

// TestNewLoopValidation exercises constructor errors.
func TestNewLoopValidation(t *testing.T) {
	wl, det := fixture(t)
	_ = wl
	base, err := fleet.NewModel(det, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := fleet.NewRegistry(2, base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLoop(nil, reg, LoopConfig{}); err == nil {
		t.Fatal("nil detector accepted")
	}
	if _, err := NewLoop(det, nil, LoopConfig{}); err == nil {
		t.Fatal("nil registry accepted")
	}
	if _, err := NewLoop(det, reg, LoopConfig{Quantile: 0.123}); err == nil {
		t.Fatal("quantile absent from the base detector accepted")
	}
	l, err := NewLoop(det, reg, LoopConfig{Every: 40})
	if err != nil {
		t.Fatal(err)
	}
	if l.Refresher() == nil {
		t.Fatal("nil refresher")
	}
}
