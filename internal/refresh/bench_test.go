package refresh

import (
	"testing"

	"github.com/memheatmap/mhm/internal/fleet"
)

// BenchmarkCenteredObserve times the Observe hot path at the
// simulator's region shape — the steady-state cost of keeping the
// training window current. allocs/op must be 0.
func BenchmarkCenteredObserve(b *testing.B) {
	wl, det := fixture(b)
	r := newRefresher(b, det, Config{Window: 192, Holdout: 64, HoldoutEvery: 4})
	l := fleet.SimRegion.Cells()
	v := make([]float64, l)
	wl.VectorInto(v, 0, 1, false)
	d, err := det.LogDensityVector(v)
	if err != nil {
		b.Fatal(err)
	}
	feed(b, r, wl, det, 0, 200, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Observe(v, d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRefreshIncremental times one incremental refresh (warm
// eigen + warm EM + θ recalibration) over a full window — the fast
// path the fleet loop runs every cycle.
func BenchmarkRefreshIncremental(b *testing.B) {
	wl, det := fixture(b)
	r := newRefresher(b, det, Config{Window: 192, Holdout: 64, HoldoutEvery: 4})
	feed(b, r, wl, det, 0, 300, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Refresh(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullRetrain times the slow path the refresh replaces: a
// from-scratch core.Train over the same window size, via the workload's
// trainer (PCA restart + GMM restarts + calibration).
func BenchmarkFullRetrain(b *testing.B) {
	wl, err := fleet.NewWorkload(1, fleet.SimRegion)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wl.TrainDetector(192, 64); err != nil {
			b.Fatal(err)
		}
	}
}
