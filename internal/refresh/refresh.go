// Package refresh is the online model-maintenance engine (DESIGN.md
// §14): it keeps a live detector current against workload drift at a
// small fraction of a full retrain. The fast path chains the
// incremental machinery the training stack grew for it — the
// sliding-window covariance sketch (train.Centered, O(batch·L) updates,
// zero allocations), warm-started subspace iteration from the previous
// eigenmemory basis (pca.Refresh), and warm-start mini-batch EM seeded
// from the live mixture (gmm.Refit, a small bounded number of blocked
// iterations) — then recalibrates the θ_p thresholds on a sliding
// held-out window of recent normal intervals. A one-sided CUSUM over
// the standardized holdout densities (ensemble.CusumState) raises a
// drift alarm when the normal-density distribution shifts; the next
// Refresh then takes the slow path, a full from-scratch retrain over
// the window, and re-baselines the drift channel.
//
// Determinism contract: for a fixed observation history every refreshed
// model is bit-identical for every worker count, including under -race
// — all inputs flow through the training engines' fixed chunk grids and
// the sequential rings here.
package refresh

import (
	"errors"
	"fmt"
	"math"

	"github.com/memheatmap/mhm/internal/core"
	"github.com/memheatmap/mhm/internal/ensemble"
	"github.com/memheatmap/mhm/internal/gmm"
	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/pca"
	"github.com/memheatmap/mhm/internal/score"
	"github.com/memheatmap/mhm/internal/stats"
	"github.com/memheatmap/mhm/internal/train"
)

// ErrConfig wraps invalid configuration.
var ErrConfig = errors.New("refresh: invalid config")

// ErrNotReady reports a Refresh attempted before the training window
// holds enough samples for the model's dimensionality.
var ErrNotReady = errors.New("refresh: training window not ready")

// Config tunes a Refresher.
type Config struct {
	// Window is the sliding training-window capacity in intervals
	// (default 192, the simulator's training-set size).
	Window int
	// Holdout is the held-out calibration window capacity (default 64;
	// negative disables the holdout entirely, so θ_p carries over and no
	// drift channel is fitted). Held-out intervals never enter the
	// training window; θ_p recalibration and the drift channel are
	// fitted on them.
	Holdout int
	// HoldoutEvery routes every Nth observed normal interval to the
	// holdout window instead of the training window (default 4; negative
	// disables the routing).
	HoldoutEvery int
	// EigenIter bounds the warm-started subspace iterations per
	// incremental refresh (default 8).
	EigenIter int
	// EMIter bounds the warm-start EM iterations per incremental
	// refresh (default 4).
	EMIter int
	// EMBatch, when positive, runs each EM iteration over a rotating
	// contiguous mini-batch of that many window samples.
	EMBatch int
	// Quantiles are the θ_p probabilities to recalibrate. Default: the
	// P values of the seed detector's thresholds.
	Quantiles []float64
	// DriftK is the CUSUM allowance in |z| units (default
	// ensemble.DriftK).
	DriftK float64
	// DriftThreshold is the accumulator level that raises the drift
	// alarm (default 16).
	DriftThreshold float64
	// RebuildEvery forces a full rebuild every N refreshes regardless of
	// drift (0 = rebuild only on a drift alarm).
	RebuildEvery int
	// Workers bounds goroutines inside the training engines. Results
	// are bit-identical for every value.
	Workers int
	// Seed seeds the full-rebuild training paths (default 1).
	Seed int64
}

func (c *Config) fill() error {
	if c.Window == 0 {
		c.Window = 192
	}
	if c.Holdout == 0 {
		c.Holdout = 64
	} else if c.Holdout < 0 {
		c.Holdout = 0
	}
	if c.HoldoutEvery == 0 {
		c.HoldoutEvery = 4
	} else if c.HoldoutEvery < 0 {
		c.HoldoutEvery = 0
	}
	if c.EigenIter == 0 {
		c.EigenIter = 8
	}
	if c.EMIter == 0 {
		c.EMIter = 4
	}
	if c.DriftK == 0 {
		c.DriftK = ensemble.DriftK
	}
	if c.DriftThreshold == 0 {
		c.DriftThreshold = 16
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Window < 2 || c.EMBatch < 0 || c.RebuildEvery < 0 {
		return fmt.Errorf("refresh: window=%d holdout=%d holdoutEvery=%d emBatch=%d rebuildEvery=%d: %w",
			c.Window, c.Holdout, c.HoldoutEvery, c.EMBatch, c.RebuildEvery, ErrConfig)
	}
	for _, p := range c.Quantiles {
		if !(p > 0) || p >= 1 {
			return fmt.Errorf("refresh: quantile %g out of (0,1): %w", p, ErrConfig)
		}
	}
	return nil
}

// Result describes one completed refresh.
type Result struct {
	// Detector is the refreshed model with the fused scoring runtime
	// installed and the recalibrated thresholds.
	Detector *core.Detector
	// FullRebuild reports the slow path ran (drift alarm or cadence).
	FullRebuild bool
	// Recalibrated reports whether θ_p was re-derived from the holdout
	// window; false (thresholds carried over) when the holdout is empty.
	Recalibrated bool
	// DriftStat is the CUSUM accumulator value entering the refresh.
	DriftStat float64
	// WindowLen and HoldoutLen are the window fills at refresh time.
	WindowLen, HoldoutLen int
}

// Refresher maintains one detector's model state online. Not safe for
// concurrent use: Observe and Refresh run on the caller's sequential
// decision pass (the fleet simulator's verdict loop, or a single
// maintenance goroutine).
type Refresher struct {
	cfg    Config
	region heatmap.Def
	l, lp  int

	pcaM       *pca.Model
	gmmM       *gmm.Model
	thresholds []core.Threshold

	sketch *train.Centered
	batch1 [][]float64 // length-1 Update wrapper, reused

	hold     []float64 // Holdout×L ring backing
	holdN    int
	holdHead int

	reduced [][]float64 // Window rows of length L', reused per refresh
	redBack []float64
	set     [][]float64 // Window sample views, reused by the rebuild path
	dens    []float64   // holdout density scratch

	probe       *score.Engine // private repacked calibration engine
	probeScorer *score.Scorer

	channel ensemble.Channel
	chanOK  bool
	cusum   ensemble.CusumState
	drift   bool

	seen         int
	sinceRebuild int

	refreshes, fullRebuilds, driftAlarms int
}

// New builds a Refresher seeded from a live detector. The detector's
// models are referenced as the warm-start state; they are not modified.
func New(det *core.Detector, cfg Config) (*Refresher, error) {
	if det == nil || det.PCA == nil || det.GMM == nil {
		return nil, fmt.Errorf("refresh: nil detector or models: %w", ErrConfig)
	}
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	l, lp := det.PCA.Dim()
	if cfg.Window < lp+2 {
		return nil, fmt.Errorf("refresh: window %d below L'+2=%d: %w", cfg.Window, lp+2, ErrConfig)
	}
	if len(cfg.Quantiles) == 0 {
		for _, th := range det.Thresholds {
			cfg.Quantiles = append(cfg.Quantiles, th.P)
		}
	}
	sk, err := train.NewCentered(l, cfg.Window, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("refresh: %w", err)
	}
	r := &Refresher{
		cfg:        cfg,
		region:     det.Region,
		l:          l,
		lp:         lp,
		pcaM:       det.PCA,
		gmmM:       det.GMM,
		thresholds: append([]core.Threshold(nil), det.Thresholds...),
		sketch:     sk,
		batch1:     make([][]float64, 1),
		hold:       make([]float64, cfg.Holdout*l),
		reduced:    make([][]float64, cfg.Window),
		redBack:    make([]float64, cfg.Window*lp),
		set:        make([][]float64, cfg.Window),
		dens:       make([]float64, cfg.Holdout),
	}
	for i := range r.reduced {
		r.reduced[i] = r.redBack[i*lp : (i+1)*lp]
	}
	return r, nil
}

// Observe feeds one normal (non-anomalous-verdict) interval: its raw
// MHM vector and the log density the live model assigned it. Every
// HoldoutEvery-th interval lands in the held-out calibration ring; the
// rest update the training sketch. The density drives the drift CUSUM.
// Zero allocations in steady state; v is copied, not retained.
//
//mhm:deterministic
func (r *Refresher) Observe(v []float64, logDensity float64) error {
	if len(v) != r.l {
		return fmt.Errorf("refresh: vector length %d, want %d: %w", len(v), r.l, ErrConfig)
	}
	r.seen++
	if r.chanOK {
		z := r.channel.Z(logDensity)
		s := r.cusum.Step(math.Abs(z), r.cfg.DriftK)
		if s >= r.cfg.DriftThreshold && !r.drift {
			r.drift = true
			r.driftAlarms++
		}
	}
	if r.cfg.Holdout > 0 && r.cfg.HoldoutEvery > 0 && r.seen%r.cfg.HoldoutEvery == 0 {
		copy(r.hold[r.holdHead*r.l:(r.holdHead+1)*r.l], v)
		r.holdHead = (r.holdHead + 1) % r.cfg.Holdout
		if r.holdN < r.cfg.Holdout {
			r.holdN++
		}
		return nil
	}
	r.batch1[0] = v
	err := r.sketch.Update(r.batch1)
	r.batch1[0] = nil
	return err
}

// Drift reports whether the drift alarm is raised (cleared by the next
// Refresh, which takes the full-rebuild path).
func (r *Refresher) Drift() bool { return r.drift }

// DriftStat returns the current CUSUM accumulator value.
func (r *Refresher) DriftStat() float64 { return r.cusum.S }

// Ready reports whether the training window holds enough samples to
// refresh the model.
func (r *Refresher) Ready() bool { return r.sketch.Len() >= r.lp+2 }

// Counters returns (refreshes, full rebuilds, drift alarms) so far.
func (r *Refresher) Counters() (int, int, int) {
	return r.refreshes, r.fullRebuilds, r.driftAlarms
}

// Refresh derives a new detector from the current windows. The fast
// path warm-starts both models from the live ones; a drift alarm or the
// RebuildEvery cadence forces the full from-scratch path (which also
// re-derives the sketch sums exactly). θ_p is recalibrated on the
// holdout window when it is non-empty, with the quantile set pinned at
// construction; an empty holdout carries the previous thresholds over.
// The refreshed models become the next warm-start state.
//
//mhm:deterministic
func (r *Refresher) Refresh() (*Result, error) {
	n := r.sketch.Len()
	if n < r.lp+2 {
		return nil, fmt.Errorf("refresh: %d window samples for L'=%d: %w", n, r.lp, ErrNotReady)
	}
	res := &Result{
		DriftStat:  r.cusum.S,
		WindowLen:  n,
		HoldoutLen: r.holdN,
	}
	full := r.drift || (r.cfg.RebuildEvery > 0 && r.sinceRebuild >= r.cfg.RebuildEvery)

	newPCA, newGMM, err := r.fitModels(n, full)
	if err != nil && !full {
		// The warm path can lose a component (covariance collapse on a
		// shifted window); the full path reseeds from scratch.
		full = true
		newPCA, newGMM, err = r.fitModels(n, full)
	}
	if err != nil {
		return nil, err
	}
	res.FullRebuild = full

	thresholds := r.thresholds
	if r.holdN > 0 && len(r.cfg.Quantiles) > 0 {
		if err := r.scoreHoldout(newPCA, newGMM); err != nil {
			return nil, err
		}
		dens := r.dens[:r.holdN]
		thresholds = make([]core.Threshold, 0, len(r.cfg.Quantiles))
		for _, p := range r.cfg.Quantiles {
			theta, err := stats.Quantile(dens, p)
			if err != nil {
				return nil, fmt.Errorf("refresh: θ_%g: %w", p, err)
			}
			thresholds = append(thresholds, core.Threshold{P: p, Theta: theta})
		}
		res.Recalibrated = true
		// Re-baseline the drift channel on the holdout densities under
		// the new model; a degenerate window (all-identical densities
		// hit the Std floor inside FitChannel) still yields a channel.
		if ch, err := ensemble.FitChannel(dens); err == nil {
			r.channel = ch
			r.chanOK = true
		} else {
			r.chanOK = false
		}
	}

	det, err := core.NewDetector(r.region, newPCA, newGMM, thresholds)
	if err != nil {
		return nil, fmt.Errorf("refresh: %w", err)
	}

	r.pcaM, r.gmmM, r.thresholds = newPCA, newGMM, det.Thresholds
	r.cusum.Reset()
	r.drift = false
	r.refreshes++
	if full {
		r.fullRebuilds++
		r.sinceRebuild = 0
	} else {
		r.sinceRebuild++
	}
	res.Detector = det
	return res, nil
}

// fitModels runs either the warm incremental path or the full
// from-scratch path over the current window.
func (r *Refresher) fitModels(n int, full bool) (*pca.Model, *gmm.Model, error) {
	var newPCA *pca.Model
	var err error
	if full {
		set := r.set[:n]
		for i := 0; i < n; i++ {
			set[i] = r.sketch.Sample(i)
		}
		newPCA, err = pca.Train(set, pca.Options{
			Components: r.lp,
			Seed:       r.cfg.Seed,
			Workers:    r.cfg.Workers,
			Parallel:   r.cfg.Workers > 1,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("refresh: full PCA: %w", err)
		}
		// Discard the incremental sums' rounding drift while the window
		// is authoritative anyway.
		r.sketch.Rebuild()
	} else {
		newPCA, err = pca.Refresh(r.pcaM, r.sketch, pca.RefreshOptions{
			MaxIter:  r.cfg.EigenIter,
			Seed:     r.cfg.Seed,
			Parallel: r.cfg.Workers > 1,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("refresh: incremental PCA: %w", err)
		}
	}

	reduced := r.reduced[:n]
	for i := 0; i < n; i++ {
		if err := newPCA.ProjectInto(reduced[i], r.sketch.Sample(i)); err != nil {
			return nil, nil, fmt.Errorf("refresh: project window sample %d: %w", i, err)
		}
	}

	var newGMM *gmm.Model
	if full {
		newGMM, err = gmm.Train(reduced, gmm.Options{
			Components: len(r.gmmM.Components),
			Restarts:   2,
			Seed:       r.cfg.Seed,
			Workers:    r.cfg.Workers,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("refresh: full GMM: %w", err)
		}
	} else {
		newGMM, err = gmm.Refit(reduced, r.gmmM, gmm.RefitOptions{
			MaxIter:   r.cfg.EMIter,
			BatchSize: r.cfg.EMBatch,
			Workers:   r.cfg.Workers,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("refresh: warm GMM: %w", err)
		}
	}
	return newPCA, newGMM, nil
}

// scoreHoldout scores the held-out ring under the candidate models into
// r.dens, through the private repacked probe engine — the only engine
// this package mutates in place, per score.Repack's exclusive-ownership
// contract (published engines are always freshly built by NewDetector).
func (r *Refresher) scoreHoldout(p *pca.Model, g *gmm.Model) error {
	probe, err := score.Repack(r.probe, p, g)
	if err != nil {
		return fmt.Errorf("refresh: probe engine: %w", err)
	}
	if probe != r.probe || r.probeScorer == nil {
		r.probe = probe
		r.probeScorer = probe.NewScorer()
	}
	for i := 0; i < r.holdN; i++ {
		d, err := r.probeScorer.Score(r.hold[i*r.l : (i+1)*r.l])
		if err != nil {
			return fmt.Errorf("refresh: holdout %d: %w", i, err)
		}
		r.dens[i] = d
	}
	return nil
}
