package refresh

import (
	"errors"
	"math"
	"testing"

	"github.com/memheatmap/mhm/internal/core"
	"github.com/memheatmap/mhm/internal/fleet"
)

// fixture trains a base detector from the fleet workload generator and
// returns the workload for feeding observation streams.
func fixture(t testing.TB) (*fleet.Workload, *core.Detector) {
	t.Helper()
	wl, err := fleet.NewWorkload(1, fleet.SimRegion)
	if err != nil {
		t.Fatal(err)
	}
	det, err := wl.TrainDetector(192, 96)
	if err != nil {
		t.Fatal(err)
	}
	return wl, det
}

// feed pushes n generated intervals (streams round-robin) through
// Observe, scoring each under the detector for the density input.
func feed(t testing.TB, r *Refresher, wl *fleet.Workload, det *core.Detector, start, n int, anomalous bool) {
	t.Helper()
	l := fleet.SimRegion.Cells()
	v := make([]float64, l)
	for i := start; i < start+n; i++ {
		wl.VectorInto(v, i%4, i, anomalous)
		d, err := det.LogDensityVector(v)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Observe(v, d); err != nil {
			t.Fatal(err)
		}
	}
}

func newRefresher(t testing.TB, det *core.Detector, cfg Config) *Refresher {
	t.Helper()
	r, err := New(det, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRefreshIncrementalPath fills the window with in-distribution
// intervals and checks the fast path runs: no full rebuild, θ
// recalibrated, a usable detector with the same shapes and thresholds
// that classify like the original's.
func TestRefreshIncrementalPath(t *testing.T) {
	wl, det := fixture(t)
	r := newRefresher(t, det, Config{Window: 64, Holdout: 32, HoldoutEvery: 3})
	if r.Ready() {
		t.Fatal("ready before any observation")
	}
	feed(t, r, wl, det, 0, 96, false)
	if !r.Ready() {
		t.Fatal("not ready after 96 observations")
	}
	res, err := r.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if res.FullRebuild {
		t.Fatal("incremental refresh took the full-rebuild path")
	}
	if !res.Recalibrated {
		t.Fatal("holdout was non-empty but θ was not recalibrated")
	}
	if res.Detector == nil {
		t.Fatal("nil refreshed detector")
	}
	wantL, wantLP := det.Dim()
	gotL, gotLP := res.Detector.Dim()
	if gotL != wantL || gotLP != wantLP {
		t.Fatalf("refreshed dims (%d,%d), want (%d,%d)", gotL, gotLP, wantL, wantLP)
	}
	if len(res.Detector.Thresholds) != len(det.Thresholds) {
		t.Fatalf("%d thresholds, want %d", len(res.Detector.Thresholds), len(det.Thresholds))
	}
	// The refreshed model must still separate the workload: clean
	// intervals above θ, anomalous ones below.
	l := fleet.SimRegion.Cells()
	v := make([]float64, l)
	theta, err := res.Detector.Threshold(0.01)
	if err != nil {
		t.Fatal(err)
	}
	missClean, missAnom := 0, 0
	for i := 0; i < 50; i++ {
		wl.VectorInto(v, i%4, 500+i, false)
		d, err := res.Detector.LogDensityVector(v)
		if err != nil {
			t.Fatal(err)
		}
		if d < theta {
			missClean++
		}
		wl.VectorInto(v, i%4, 500+i, true)
		if d, err = res.Detector.LogDensityVector(v); err != nil {
			t.Fatal(err)
		}
		if d >= theta {
			missAnom++
		}
	}
	if missClean > 3 || missAnom > 3 {
		t.Fatalf("refreshed model misclassified %d/50 clean, %d/50 anomalous", missClean, missAnom)
	}
	refreshes, fulls, alarms := r.Counters()
	if refreshes != 1 || fulls != 0 || alarms != 0 {
		t.Fatalf("counters (%d,%d,%d), want (1,0,0)", refreshes, fulls, alarms)
	}
}

// TestRefreshDeterministicAcrossWorkers pins the headline determinism
// contract: the same observation history yields a bit-identical
// refreshed detector at every worker count.
func TestRefreshDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *core.Detector {
		wl, det := fixture(t)
		r := newRefresher(t, det, Config{Window: 64, Holdout: 24, HoldoutEvery: 4, Workers: workers})
		feed(t, r, wl, det, 0, 90, false)
		res, err := r.Refresh()
		if err != nil {
			t.Fatal(err)
		}
		// A second refresh over more data exercises the warm chain.
		feed(t, r, wl, det, 90, 70, false)
		res, err = r.Refresh()
		if err != nil {
			t.Fatal(err)
		}
		return res.Detector
	}
	base := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		for i, th := range base.Thresholds {
			if math.Float64bits(th.Theta) != math.Float64bits(got.Thresholds[i].Theta) {
				t.Fatalf("workers=%d: θ_%g differs: %v vs %v", workers, th.P, th.Theta, got.Thresholds[i].Theta)
			}
		}
		l, lp := base.Dim()
		for j := 0; j < lp; j++ {
			for i := 0; i < l; i++ {
				if math.Float64bits(base.PCA.Components.At(i, j)) != math.Float64bits(got.PCA.Components.At(i, j)) {
					t.Fatalf("workers=%d: component (%d,%d) differs", workers, i, j)
				}
			}
		}
		for j := range base.GMM.Components {
			bc, gc := &base.GMM.Components[j], &got.GMM.Components[j]
			if math.Float64bits(bc.Weight) != math.Float64bits(gc.Weight) {
				t.Fatalf("workers=%d: weight[%d] differs", workers, j)
			}
			for i := range bc.Mean {
				if math.Float64bits(bc.Mean[i]) != math.Float64bits(gc.Mean[i]) {
					t.Fatalf("workers=%d: mean[%d][%d] differs", workers, j, i)
				}
			}
		}
	}
}

// TestRefreshEmptyHoldoutKeepsThresholds pins the θ recalibration edge
// case: with no held-out intervals the previous thresholds carry over
// unchanged and Recalibrated is false.
func TestRefreshEmptyHoldoutKeepsThresholds(t *testing.T) {
	wl, det := fixture(t)
	r := newRefresher(t, det, Config{Window: 64, Holdout: -1})
	feed(t, r, wl, det, 0, 64, false)
	res, err := r.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if res.Recalibrated {
		t.Fatal("recalibrated from an empty holdout")
	}
	if res.HoldoutLen != 0 {
		t.Fatalf("holdout len %d, want 0", res.HoldoutLen)
	}
	if len(res.Detector.Thresholds) != len(det.Thresholds) {
		t.Fatalf("%d thresholds, want %d", len(res.Detector.Thresholds), len(det.Thresholds))
	}
	for i, th := range det.Thresholds {
		if res.Detector.Thresholds[i] != th {
			t.Fatalf("threshold[%d] = %+v, want carried-over %+v", i, res.Detector.Thresholds[i], th)
		}
	}
}

// TestRefreshIdenticalDensities pins the degenerate-calibration edge
// case: a holdout of identical vectors produces identical densities,
// and every recalibrated θ_p collapses to that single density without
// error.
func TestRefreshIdenticalDensities(t *testing.T) {
	wl, det := fixture(t)
	r := newRefresher(t, det, Config{Window: 64, Holdout: 16, HoldoutEvery: 2})
	l := fleet.SimRegion.Cells()
	v := make([]float64, l)
	wl.VectorInto(v, 0, 7, false)
	d, err := det.LogDensityVector(v)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80; i++ {
		if err := r.Observe(v, d); err != nil {
			t.Fatal(err)
		}
	}
	res, err := r.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recalibrated {
		t.Fatal("θ not recalibrated")
	}
	ths := res.Detector.Thresholds
	for _, th := range ths[1:] {
		if math.Float64bits(th.Theta) != math.Float64bits(ths[0].Theta) {
			t.Fatalf("identical densities yielded distinct θ: %v vs %v", th.Theta, ths[0].Theta)
		}
	}
}

// TestRefreshShortHoldoutWindow pins the quantile-support edge case: a
// holdout holding a single interval still recalibrates (the empirical
// quantile of one sample is that sample) for every configured p.
func TestRefreshShortHoldoutWindow(t *testing.T) {
	wl, det := fixture(t)
	// HoldoutEvery=64 over 64 observations routes exactly one interval
	// to the holdout ring.
	r := newRefresher(t, det, Config{Window: 64, Holdout: 8, HoldoutEvery: 64})
	feed(t, r, wl, det, 0, 64, false)
	res, err := r.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if res.HoldoutLen != 1 {
		t.Fatalf("holdout len %d, want 1", res.HoldoutLen)
	}
	if !res.Recalibrated {
		t.Fatal("single-sample holdout did not recalibrate")
	}
	ths := res.Detector.Thresholds
	for _, th := range ths[1:] {
		if math.Float64bits(th.Theta) != math.Float64bits(ths[0].Theta) {
			t.Fatal("single-sample quantiles disagree across p")
		}
	}
}

// TestRefreshDriftTriggersFullRebuild establishes a density baseline,
// then feeds intervals whose reported densities are far below it; the
// CUSUM must alarm and the next refresh must take the full path and
// clear the alarm.
func TestRefreshDriftTriggersFullRebuild(t *testing.T) {
	wl, det := fixture(t)
	r := newRefresher(t, det, Config{Window: 64, Holdout: 24, HoldoutEvery: 4, DriftThreshold: 8})
	feed(t, r, wl, det, 0, 90, false)
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	if r.Drift() {
		t.Fatal("drift raised on the baseline")
	}
	// Report densities displaced far below the fitted channel.
	l := fleet.SimRegion.Cells()
	v := make([]float64, l)
	for i := 0; i < 60 && !r.Drift(); i++ {
		wl.VectorInto(v, i%4, 200+i, false)
		d, err := det.LogDensityVector(v)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Observe(v, d-1e3); err != nil {
			t.Fatal(err)
		}
	}
	if !r.Drift() {
		t.Fatal("persistent density shift did not raise the drift alarm")
	}
	res, err := r.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if !res.FullRebuild {
		t.Fatal("drift alarm did not force the full-rebuild path")
	}
	if r.Drift() || r.DriftStat() != 0 {
		t.Fatal("refresh did not clear the drift alarm")
	}
	_, fulls, alarms := r.Counters()
	if fulls != 1 || alarms != 1 {
		t.Fatalf("(fulls,alarms) = (%d,%d), want (1,1)", fulls, alarms)
	}
}

// TestRefreshNotReady checks ErrNotReady surfaces before the window has
// L'+2 samples.
func TestRefreshNotReady(t *testing.T) {
	wl, det := fixture(t)
	r := newRefresher(t, det, Config{Window: 64})
	feed(t, r, wl, det, 0, 3, false)
	if _, err := r.Refresh(); !errors.Is(err, ErrNotReady) {
		t.Fatalf("thin window: err = %v, want ErrNotReady", err)
	}
}

// TestObserveAllocationFree pins the steady-state zero-alloc contract
// on the Observe hot path (sketch route and holdout route).
func TestObserveAllocationFree(t *testing.T) {
	wl, det := fixture(t)
	r := newRefresher(t, det, Config{Window: 64, Holdout: 16, HoldoutEvery: 4})
	l := fleet.SimRegion.Cells()
	v := make([]float64, l)
	wl.VectorInto(v, 0, 3, false)
	d, err := det.LogDensityVector(v)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, r, wl, det, 0, 70, false) // past first fill, channel still unfitted
	allocs := testing.AllocsPerRun(100, func() {
		if err := r.Observe(v, d); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Observe allocated %.1f/op, want 0", allocs)
	}
}

// TestConfigValidation exercises Config.fill errors.
func TestConfigValidation(t *testing.T) {
	_, det := fixture(t)
	if _, err := New(det, Config{Quantiles: []float64{1.5}}); !errors.Is(err, ErrConfig) {
		t.Fatalf("quantile 1.5: %v", err)
	}
	if _, err := New(det, Config{Window: 3}); !errors.Is(err, ErrConfig) {
		t.Fatalf("window below L'+2: %v", err)
	}
	if _, err := New(nil, Config{}); !errors.Is(err, ErrConfig) {
		t.Fatalf("nil detector: %v", err)
	}
}
