// The fleet-facing refresh loop: a fleet.ModelMaintainer that feeds the
// Refresher from the simulator's sequential verdict pass and publishes
// each refreshed model through the registry at an exact upcoming
// interval boundary. All decisions — which intervals feed the window,
// when a refresh triggers, which boundary the swap lands on — happen in
// admission order on the sequential pass, so a fleet run with the loop
// installed is bit-identical at any worker count.
package refresh

import (
	"fmt"

	"github.com/memheatmap/mhm/internal/core"
	"github.com/memheatmap/mhm/internal/fleet"
)

// LoopConfig tunes a Loop.
type LoopConfig struct {
	// Every triggers a refresh after that many clean (non-anomalous)
	// observed intervals (default 256).
	Every int
	// Lead places each published swap Lead intervals past the highest
	// per-stream index observed so far (default 2), so the boundary is
	// still ahead of every stream and the cutover is exact.
	Lead int
	// Quantile selects the published models' decision threshold
	// (default 0.01). It is forced into the Refresher's recalibration
	// quantile set.
	Quantile float64
	// Refresher configures the underlying model maintenance.
	Refresher Config
}

// LoopStats is a point-in-time snapshot of loop activity.
type LoopStats struct {
	Observed, Skipped  int64 // scored intervals seen / anomalous ones excluded
	Refreshes          int
	FullRebuilds       int
	DriftAlarms        int
	SwapsScheduled     int
	Version            int // latest published model version
	LastDriftStat      float64
	LastRecalibrated   bool
	LastWindow, LastHO int
}

// Loop implements fleet.ModelMaintainer: it routes every clean scored
// interval into the Refresher and hot-swaps the whole fleet onto each
// refreshed model via SwapAllAtCoalesce. Anomalous-verdict intervals
// never enter the training or calibration windows, so an attack cannot
// poison the refreshed model with its own behaviour. Not safe for
// concurrent use (the verdict pass is sequential by contract).
type Loop struct {
	cfg LoopConfig
	r   *Refresher
	reg *fleet.Registry

	version      int
	maxIdx       int
	sinceTrigger int
	lastErr      error
	stats        LoopStats
}

var _ fleet.ModelMaintainer = (*Loop)(nil)

// NewLoop builds a refresh loop seeded from the fleet's base detector.
// The detector must expose a threshold at cfg.Quantile (the published
// models need it), and the Refresher's recalibration set is extended to
// include it.
func NewLoop(det *core.Detector, reg *fleet.Registry, cfg LoopConfig) (*Loop, error) {
	if reg == nil {
		return nil, fmt.Errorf("refresh: nil registry: %w", ErrConfig)
	}
	if cfg.Every == 0 {
		cfg.Every = 256
	}
	if cfg.Lead == 0 {
		cfg.Lead = 2
	}
	if cfg.Quantile == 0 {
		cfg.Quantile = 0.01
	}
	if cfg.Every < 1 || cfg.Lead < 1 || !(cfg.Quantile > 0) || cfg.Quantile >= 1 {
		return nil, fmt.Errorf("refresh: every=%d lead=%d quantile=%g: %w",
			cfg.Every, cfg.Lead, cfg.Quantile, ErrConfig)
	}
	if det == nil {
		return nil, fmt.Errorf("refresh: nil detector: %w", ErrConfig)
	}
	if _, err := det.Threshold(cfg.Quantile); err != nil {
		return nil, fmt.Errorf("refresh: base detector lacks θ at p=%g: %w", cfg.Quantile, err)
	}
	has := false
	for _, p := range cfg.Refresher.Quantiles {
		if p == cfg.Quantile {
			has = true
			break
		}
	}
	if !has && len(cfg.Refresher.Quantiles) > 0 {
		cfg.Refresher.Quantiles = append(cfg.Refresher.Quantiles, cfg.Quantile)
	}
	r, err := New(det, cfg.Refresher)
	if err != nil {
		return nil, err
	}
	return &Loop{cfg: cfg, r: r, reg: reg, version: 1}, nil
}

// Observe implements fleet.ModelMaintainer. Clean intervals feed the
// Refresher; every cfg.Every-th clean interval triggers a refresh and a
// fleet-wide coalescing swap at boundary maxIdx+Lead. Errors are
// retained (see Err) rather than surfaced — a failed refresh leaves the
// fleet on its current model, which is the correct degraded mode.
//
//mhm:deterministic
func (l *Loop) Observe(stream, scoredIdx int, anomalous bool, density float64, vec []float64) {
	l.stats.Observed++
	if scoredIdx > l.maxIdx {
		l.maxIdx = scoredIdx
	}
	if anomalous {
		l.stats.Skipped++
		return
	}
	if err := l.r.Observe(vec, density); err != nil {
		l.lastErr = err
		return
	}
	l.sinceTrigger++
	if l.sinceTrigger < l.cfg.Every || !l.r.Ready() {
		return
	}
	l.sinceTrigger = 0
	res, err := l.r.Refresh()
	if err != nil {
		l.lastErr = err
		return
	}
	l.version++
	m, err := fleet.NewModel(res.Detector, l.cfg.Quantile, l.version)
	if err != nil {
		l.lastErr = err
		l.version--
		return
	}
	if err := l.reg.SwapAllAtCoalesce(l.maxIdx+l.cfg.Lead, m); err != nil {
		l.lastErr = err
		return
	}
	l.stats.SwapsScheduled++
	l.stats.LastDriftStat = res.DriftStat
	l.stats.LastRecalibrated = res.Recalibrated
	l.stats.LastWindow, l.stats.LastHO = res.WindowLen, res.HoldoutLen
}

// Stats snapshots the loop counters (refresh counters pulled from the
// underlying Refresher).
func (l *Loop) Stats() LoopStats {
	s := l.stats
	s.Refreshes, s.FullRebuilds, s.DriftAlarms = l.r.Counters()
	s.Version = l.version
	return s
}

// Err returns the most recent retained error, if any.
func (l *Loop) Err() error { return l.lastErr }

// Refresher exposes the underlying engine (tests poke its windows).
func (l *Loop) Refresher() *Refresher { return l.r }
