package rtos

import (
	"errors"
	"testing"

	"github.com/memheatmap/mhm/internal/sim"
)

func TestSpawnOneShotRunsAboveEverything(t *testing.T) {
	// A long-running low-priority task gets preempted by the one-shot
	// even though the one-shot is aperiodic.
	task := computeTask("bg", 10_000, 8_000)
	eng := sim.NewEngine()
	rec := &recorder{}
	s, err := NewScheduler(eng, Config{TickPeriod: 0}, []*Task{task}, rec)
	if err != nil {
		t.Fatal(err)
	}
	segs := []Segment{
		{Kind: Syscall, Duration: 300, Service: "init_module", Invocations: 1},
		{Kind: Compute, Duration: 200},
	}
	if err := s.SpawnOneShotAt(2_000, "insmod", segs); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(10_000); err != nil {
		t.Fatal(err)
	}
	// The one-shot executes exactly [2000, 2500).
	var oneShot int64
	for _, sl := range rec.slices {
		if sl.task == "insmod" {
			oneShot += sl.end - sl.start
			if sl.start < 2_000 || sl.end > 2_500 {
				t.Errorf("one-shot slice [%d, %d) outside [2000, 2500)", sl.start, sl.end)
			}
		}
	}
	if oneShot != 500 {
		t.Errorf("one-shot executed %d, want 500", oneShot)
	}
	// The background task still completes all its work.
	if got := rec.execTime("bg"); got != 8_000 {
		t.Errorf("bg exec = %d, want 8000", got)
	}
	// Release/complete events fired for the one-shot.
	found := false
	for _, c := range rec.completes {
		if c.task == "insmod" {
			found = true
			if c.missed {
				t.Error("one-shot reported a deadline miss")
			}
		}
	}
	if !found {
		t.Error("one-shot completion not reported")
	}
}

func TestSpawnOneShotValidation(t *testing.T) {
	eng := sim.NewEngine()
	s, err := NewScheduler(eng, Config{TickPeriod: 0}, []*Task{computeTask("a", 100, 10)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SpawnOneShotAt(5, "", []Segment{{Kind: Compute, Duration: 1}}); !errors.Is(err, ErrConfig) {
		t.Errorf("empty name: %v", err)
	}
	if err := s.SpawnOneShotAt(5, "x", nil); !errors.Is(err, ErrConfig) {
		t.Errorf("no segments: %v", err)
	}
	if err := s.SpawnOneShotAt(5, "x", []Segment{{Kind: Compute, Duration: -1}}); !errors.Is(err, ErrConfig) {
		t.Errorf("negative segment: %v", err)
	}
}

func TestTeeFansOutAllEvents(t *testing.T) {
	a, b := &recorder{}, &recorder{}
	tee := Tee(a, b)
	task := computeTask("t", 100, 10)
	tee.OnSlice(task, Segment{Kind: Compute, Duration: 10}, 0, 10, 0, 1)
	tee.OnContextSwitch(5, "x", "y")
	tee.OnTick(7)
	tee.OnIdle(8, 9)
	tee.OnJobRelease(1, task, 0)
	tee.OnJobComplete(11, task, 0, true)
	for i, r := range []*recorder{a, b} {
		if len(r.slices) != 1 || len(r.switches) != 1 || len(r.ticks) != 1 ||
			len(r.idles) != 1 || len(r.releases) != 1 || len(r.completes) != 1 {
			t.Errorf("recorder %d missed events: %+v", i, r)
		}
	}
	if !a.completes[0].missed {
		t.Error("missed flag not propagated")
	}
}

func TestSegmentKindString(t *testing.T) {
	if Compute.String() != "compute" || Syscall.String() != "syscall" {
		t.Error("kind names")
	}
	if SegmentKind(9).String() == "" {
		t.Error("unknown kind empty")
	}
}

func TestAddTaskAtDuplicateIgnored(t *testing.T) {
	base := computeTask("base", 1_000, 100)
	eng := sim.NewEngine()
	rec := &recorder{}
	s, err := NewScheduler(eng, Config{TickPeriod: 0}, []*Task{base}, rec)
	if err != nil {
		t.Fatal(err)
	}
	clone := computeTask("base", 500, 50) // same name: duplicate launch
	if err := s.AddTaskAt(1_000, clone); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(3_000); err != nil {
		t.Fatal(err)
	}
	// Only the original cadence: releases at 0, 1000, 2000.
	if len(rec.releases) != 3 {
		t.Errorf("releases = %d, want 3 (duplicate ignored)", len(rec.releases))
	}
	if err := s.AddTaskAt(1, &Task{}); !errors.Is(err, ErrConfig) {
		t.Errorf("invalid dynamic task: %v", err)
	}
}

func TestRemoveRunningTaskMidSlice(t *testing.T) {
	// Removing the currently running task charges its partial slice and
	// dispatches the next job immediately.
	long := computeTask("long", 10_000, 5_000)
	other := computeTask("other", 10_000, 1_000)
	other.Phase = 6_000
	eng := sim.NewEngine()
	rec := &recorder{}
	s, err := NewScheduler(eng, Config{TickPeriod: 0}, []*Task{long, other}, rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveTaskAt(2_500, "long"); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if got := rec.execTime("long"); got != 2_500 {
		t.Errorf("long exec = %d, want 2500 (charged up to removal)", got)
	}
	if got := rec.execTime("other"); got != 1_000 {
		t.Errorf("other exec = %d, want 1000", got)
	}
}
