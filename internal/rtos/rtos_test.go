package rtos

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/memheatmap/mhm/internal/sim"
)

// fixedBehavior returns the same segments for every job.
func fixedBehavior(segs ...Segment) JobBehavior {
	return BehaviorFunc(func(int64, *rand.Rand) []Segment {
		out := make([]Segment, len(segs))
		copy(out, segs)
		return out
	})
}

func computeTask(name string, period, wcet int64) *Task {
	return &Task{
		Name: name, Period: period, WCET: wcet,
		Behavior: fixedBehavior(Segment{Kind: Compute, Duration: wcet}),
	}
}

// recorder captures listener callbacks for assertions.
type recorder struct {
	NopListener
	slices    []sliceRec
	switches  []switchRec
	ticks     []int64
	idles     []idleRec
	releases  []string
	completes []completeRec
}

type sliceRec struct {
	task       string
	kind       SegmentKind
	start, end int64
}
type switchRec struct {
	t        int64
	from, to string
}
type idleRec struct{ start, end int64 }
type completeRec struct {
	t      int64
	task   string
	idx    int64
	missed bool
}

func (r *recorder) OnSlice(task *Task, seg Segment, start, end int64, f0, f1 float64) {
	r.slices = append(r.slices, sliceRec{task.Name, seg.Kind, start, end})
}
func (r *recorder) OnContextSwitch(t int64, from, to string) {
	r.switches = append(r.switches, switchRec{t, from, to})
}
func (r *recorder) OnTick(t int64)          { r.ticks = append(r.ticks, t) }
func (r *recorder) OnIdle(start, end int64) { r.idles = append(r.idles, idleRec{start, end}) }
func (r *recorder) OnJobRelease(t int64, task *Task, idx int64) {
	r.releases = append(r.releases, task.Name)
}
func (r *recorder) OnJobComplete(t int64, task *Task, idx int64, missed bool) {
	r.completes = append(r.completes, completeRec{t, task.Name, idx, missed})
}

func (r *recorder) execTime(task string) int64 {
	var total int64
	for _, s := range r.slices {
		if s.task == task {
			total += s.end - s.start
		}
	}
	return total
}

func runSched(t *testing.T, tasks []*Task, horizon int64, cfg Config) (*Scheduler, *recorder) {
	t.Helper()
	eng := sim.NewEngine()
	rec := &recorder{}
	s, err := NewScheduler(eng, cfg, tasks, rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(horizon); err != nil {
		t.Fatal(err)
	}
	s.FinishIdle()
	return s, rec
}

func TestValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := NewScheduler(nil, Config{}, []*Task{computeTask("a", 10, 1)}, nil); !errors.Is(err, ErrConfig) {
		t.Errorf("nil engine: %v", err)
	}
	if _, err := NewScheduler(eng, Config{}, nil, nil); !errors.Is(err, ErrConfig) {
		t.Errorf("empty set: %v", err)
	}
	if _, err := NewScheduler(eng, Config{TickPeriod: -5}, []*Task{computeTask("a", 10, 1)}, nil); !errors.Is(err, ErrConfig) {
		t.Errorf("negative tick: %v", err)
	}
	bad := []*Task{computeTask("a", 10, 1), computeTask("a", 20, 1)}
	if _, err := NewScheduler(eng, Config{}, bad, nil); !errors.Is(err, ErrConfig) {
		t.Errorf("duplicate names: %v", err)
	}
	for _, task := range []*Task{
		{Name: "", Period: 10, Behavior: fixedBehavior()},
		{Name: "x", Period: 0, Behavior: fixedBehavior()},
		{Name: "x", Period: 10, Behavior: nil},
		{Name: "x", Period: 10, Phase: -1, Behavior: fixedBehavior()},
	} {
		if err := task.Validate(); !errors.Is(err, ErrConfig) {
			t.Errorf("task %+v: %v", task, err)
		}
	}
}

func TestSingleTaskRunsToCompletion(t *testing.T) {
	task := computeTask("solo", 1000, 300)
	s, rec := runSched(t, []*Task{task}, 5000, Config{TickPeriod: 0})
	// 5 releases (t=0..4000), each runs 300.
	if s.Released != 5 || s.Completed != 5 || s.Missed != 0 {
		t.Errorf("released=%d completed=%d missed=%d", s.Released, s.Completed, s.Missed)
	}
	if got := rec.execTime("solo"); got != 1500 {
		t.Errorf("exec time = %d, want 1500", got)
	}
	// Idle should cover the remaining 3500.
	var idle int64
	for _, id := range rec.idles {
		idle += id.end - id.start
	}
	if idle != 3500 {
		t.Errorf("idle = %d, want 3500", idle)
	}
}

func TestRMPreemption(t *testing.T) {
	// hi: period 100, wcet 20; lo: period 1000, wcet 500.
	// lo must be preempted by every hi release.
	hi := computeTask("hi", 100, 20)
	lo := computeTask("lo", 1000, 500)
	s, rec := runSched(t, []*Task{lo, hi}, 1000, Config{TickPeriod: 0})
	if s.Missed != 0 {
		t.Errorf("missed = %d", s.Missed)
	}
	// hi runs 10 times * 20 = 200; lo runs 500 within the first 1000.
	if got := rec.execTime("hi"); got != 200 {
		t.Errorf("hi exec = %d, want 200", got)
	}
	if got := rec.execTime("lo"); got != 500 {
		t.Errorf("lo exec = %d, want 500", got)
	}
	// hi always executes immediately at its release (no blocking in this
	// model): slices for hi start at multiples of 100.
	for _, sl := range rec.slices {
		if sl.task == "hi" && sl.start%100 != 0 {
			t.Errorf("hi slice started at %d, want multiple of 100", sl.start)
		}
	}
	// lo's execution must be split by preemptions: more than one slice.
	var loSlices int
	for _, sl := range rec.slices {
		if sl.task == "lo" {
			loSlices++
		}
	}
	if loSlices < 5 {
		t.Errorf("lo slices = %d, expected several due to preemption", loSlices)
	}
}

func TestNoOverlappingExecution(t *testing.T) {
	// Property: execution slices never overlap — single CPU.
	tasks := []*Task{
		computeTask("a", 100, 30),
		computeTask("b", 150, 40),
		computeTask("c", 400, 100),
	}
	_, rec := runSched(t, tasks, 10000, Config{TickPeriod: 0})
	type span struct{ s, e int64 }
	var spans []span
	for _, sl := range rec.slices {
		spans = append(spans, span{sl.start, sl.end})
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].s < spans[i-1].e {
			t.Fatalf("overlap: slice %d [%d,%d) vs previous [%d,%d)", i, spans[i].s, spans[i].e, spans[i-1].s, spans[i-1].e)
		}
	}
}

func TestExecutionTimeConservation(t *testing.T) {
	// Each completed job must have received exactly its segment time.
	task := &Task{
		Name: "segs", Period: 500, WCET: 120,
		Behavior: fixedBehavior(
			Segment{Kind: Syscall, Duration: 20, Service: "read", Invocations: 2},
			Segment{Kind: Compute, Duration: 80},
			Segment{Kind: Syscall, Duration: 20, Service: "write", Invocations: 1},
		),
	}
	s, rec := runSched(t, []*Task{task}, 5000, Config{TickPeriod: 0})
	if s.Completed != 10 {
		t.Fatalf("completed = %d", s.Completed)
	}
	if got := rec.execTime("segs"); got != 1200 {
		t.Errorf("total exec = %d, want 1200", got)
	}
	// Syscall vs compute split: 400 syscall, 800 compute.
	var sys, comp int64
	for _, sl := range rec.slices {
		if sl.kind == Syscall {
			sys += sl.end - sl.start
		} else {
			comp += sl.end - sl.start
		}
	}
	if sys != 400 || comp != 800 {
		t.Errorf("syscall=%d compute=%d, want 400/800", sys, comp)
	}
}

func TestDeadlineMissDetected(t *testing.T) {
	// Overloaded: two tasks each needing 80 per 100 → guaranteed misses.
	a := computeTask("a", 100, 80)
	b := computeTask("b", 100, 80)
	s, _ := runSched(t, []*Task{a, b}, 2000, Config{TickPeriod: 0})
	if s.Missed == 0 {
		t.Error("overload produced no deadline misses")
	}
}

func TestTicksFire(t *testing.T) {
	task := computeTask("a", 1000, 100)
	_, rec := runSched(t, []*Task{task}, 10000, Config{TickPeriod: 1000})
	// Ticks at 1000..9000.
	if len(rec.ticks) != 9 {
		t.Errorf("ticks = %d, want 9", len(rec.ticks))
	}
	for i, tk := range rec.ticks {
		if tk != int64(i+1)*1000 {
			t.Errorf("tick %d at %d", i, tk)
		}
	}
}

func TestPhaseDelaysFirstRelease(t *testing.T) {
	task := computeTask("late", 1000, 100)
	task.Phase = 300
	_, rec := runSched(t, []*Task{task}, 2000, Config{TickPeriod: 0})
	if len(rec.slices) == 0 || rec.slices[0].start != 300 {
		t.Errorf("first slice = %+v, want start 300", rec.slices)
	}
}

func TestContextSwitchSequence(t *testing.T) {
	hi := computeTask("hi", 100, 20)
	lo := computeTask("lo", 200, 100)
	_, rec := runSched(t, []*Task{hi, lo}, 200, Config{TickPeriod: 0})
	// t=0: idle->hi, t=20: hi->lo, t=100: lo preempted by hi's second
	// job, t=120: back to lo, t=140: lo's 100 units are done -> idle.
	want := []switchRec{
		{0, "", "hi"}, {20, "hi", "lo"}, {100, "lo", "hi"}, {120, "hi", "lo"}, {140, "lo", ""},
	}
	if len(rec.switches) != len(want) {
		t.Fatalf("switches = %+v", rec.switches)
	}
	for i, w := range want {
		if rec.switches[i] != w {
			t.Errorf("switch %d = %+v, want %+v", i, rec.switches[i], w)
		}
	}
}

func TestUtilizationAndRMBound(t *testing.T) {
	// The paper's task set: 2/10, 3/20, 9/50, 25/100 ms → U = 0.78.
	tasks := []*Task{
		{Name: "FFT", Period: 10000, WCET: 2000, Behavior: fixedBehavior()},
		{Name: "bitcount", Period: 20000, WCET: 3000, Behavior: fixedBehavior()},
		{Name: "basicmath", Period: 50000, WCET: 9000, Behavior: fixedBehavior()},
		{Name: "sha", Period: 100000, WCET: 25000, Behavior: fixedBehavior()},
	}
	u := Utilization(tasks)
	if math.Abs(u-0.78) > 1e-9 {
		t.Errorf("utilization = %g, want 0.78 (paper §5.1)", u)
	}
	// U=0.78 exceeds the n=4 LL bound (~0.757): the sufficient test must
	// come back false even though simulation shows the set schedulable.
	if RMSchedulable(tasks) {
		t.Error("LL bound unexpectedly admits U=0.78 with n=4")
	}
	light := []*Task{
		{Name: "x", Period: 100, WCET: 10, Behavior: fixedBehavior()},
		{Name: "y", Period: 200, WCET: 20, Behavior: fixedBehavior()},
	}
	if !RMSchedulable(light) {
		t.Error("LL bound rejected a light set")
	}
}

func TestPaperTaskSetSchedulesWithoutMisses(t *testing.T) {
	// Simulation-based schedulability: the paper set runs one hyperperiod
	// (100 ms) without deadline misses despite failing the LL bound.
	mk := func(name string, period, wcet int64) *Task {
		return &Task{Name: name, Period: period, WCET: wcet,
			Behavior: fixedBehavior(Segment{Kind: Compute, Duration: wcet})}
	}
	tasks := []*Task{
		mk("FFT", 10000, 2000),
		mk("bitcount", 20000, 3000),
		mk("basicmath", 50000, 9000),
		mk("sha", 100000, 25000),
	}
	s, _ := runSched(t, tasks, 300000, Config{TickPeriod: 1000})
	if s.Missed != 0 {
		t.Errorf("paper task set missed %d deadlines", s.Missed)
	}
	if s.Completed == 0 {
		t.Error("no jobs completed")
	}
}

func TestAddTaskAt(t *testing.T) {
	base := computeTask("base", 1000, 100)
	eng := sim.NewEngine()
	rec := &recorder{}
	s, err := NewScheduler(eng, Config{TickPeriod: 0}, []*Task{base}, rec)
	if err != nil {
		t.Fatal(err)
	}
	extra := computeTask("extra", 500, 50)
	if err := s.AddTaskAt(2000, extra); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(4000); err != nil {
		t.Fatal(err)
	}
	var before, after int64
	for _, sl := range rec.slices {
		if sl.task == "extra" {
			if sl.start < 2000 {
				before++
			}
			after += sl.end - sl.start
		}
	}
	if before != 0 {
		t.Error("extra ran before its launch time")
	}
	if after != 200 { // releases at 2000, 2500, 3000, 3500 → 4*50
		t.Errorf("extra exec = %d, want 200", after)
	}
}

func TestRemoveTaskAt(t *testing.T) {
	victim := computeTask("victim", 500, 50)
	other := computeTask("other", 1000, 100)
	eng := sim.NewEngine()
	rec := &recorder{}
	s, err := NewScheduler(eng, Config{TickPeriod: 0}, []*Task{victim, other}, rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveTaskAt(1200, "victim"); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(4000); err != nil {
		t.Fatal(err)
	}
	for _, sl := range rec.slices {
		if sl.task == "victim" && sl.end > 1200 {
			t.Errorf("victim executed after removal: slice [%d,%d)", sl.start, sl.end)
		}
	}
	// other keeps running.
	var otherLate int64
	for _, sl := range rec.slices {
		if sl.task == "other" && sl.start >= 1200 {
			otherLate += sl.end - sl.start
		}
	}
	if otherLate == 0 {
		t.Error("other stopped after victim removal")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	jittery := &Task{
		Name: "j", Period: 1000, WCET: 300, Seed: 7,
		Behavior: BehaviorFunc(func(idx int64, rng *rand.Rand) []Segment {
			d := 250 + rng.Int63n(100)
			return []Segment{{Kind: Compute, Duration: d}}
		}),
	}
	run := func() []sliceRec {
		eng := sim.NewEngine()
		rec := &recorder{}
		s, err := NewScheduler(eng, Config{TickPeriod: 0}, []*Task{jittery}, rec)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(10000); err != nil {
			t.Fatal(err)
		}
		return rec.slices
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("slice %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestZeroLengthJobCompletesInstantly(t *testing.T) {
	empty := &Task{Name: "e", Period: 100, Behavior: fixedBehavior()}
	s, rec := runSched(t, []*Task{empty}, 500, Config{TickPeriod: 0})
	if s.Completed != s.Released || s.Completed != 5 {
		t.Errorf("released=%d completed=%d", s.Released, s.Completed)
	}
	if len(rec.slices) != 0 {
		t.Errorf("zero job produced slices: %+v", rec.slices)
	}
}
