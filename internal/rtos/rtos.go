// Package rtos simulates the monitored core's real-time operating
// system: a set of periodic tasks under preemptive fixed-priority
// (rate-monotonic) scheduling, with timer ticks, context switches and
// deadline bookkeeping. Execution is reported to an ExecListener, which
// the monitoring harness uses to synthesize the kernel memory-access
// stream.
package rtos

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"github.com/memheatmap/mhm/internal/sim"
)

// ErrConfig wraps invalid task-set or scheduler parameters.
var ErrConfig = errors.New("rtos: invalid configuration")

// SegmentKind distinguishes what a job is doing during a segment.
type SegmentKind int

const (
	// Compute is user-space execution: it consumes CPU time but touches
	// no kernel text.
	Compute SegmentKind = iota
	// Syscall is kernel execution of a named service.
	Syscall
)

// String returns the segment kind name.
func (k SegmentKind) String() string {
	switch k {
	case Compute:
		return "compute"
	case Syscall:
		return "syscall"
	default:
		return fmt.Sprintf("SegmentKind(%d)", int(k))
	}
}

// Segment is one phase of a job's execution.
type Segment struct {
	Kind SegmentKind
	// Duration is the segment's execution time in microseconds.
	Duration int64
	// Service names the kernel service for Syscall segments.
	Service string
	// Invocations is how many calls of Service the segment represents;
	// access emission scales with it.
	Invocations int
}

// JobBehavior produces the segment list for each job of a task. The rng
// is task-local and seeded deterministically, so behaviors can add
// execution-time jitter without breaking reproducibility.
type JobBehavior interface {
	NewJob(jobIndex int64, rng *rand.Rand) []Segment
}

// BehaviorFunc adapts a function to JobBehavior.
type BehaviorFunc func(jobIndex int64, rng *rand.Rand) []Segment

// NewJob calls f.
func (f BehaviorFunc) NewJob(jobIndex int64, rng *rand.Rand) []Segment { return f(jobIndex, rng) }

// Task describes one periodic real-time task.
type Task struct {
	Name string
	// Period and relative Deadline in microseconds (Deadline 0 means
	// deadline == period).
	Period, Deadline int64
	// Phase delays the first release.
	Phase int64
	// WCET is the nominal worst-case execution time, used for utilization
	// accounting and schedulability checks.
	WCET int64
	// Behavior generates each job's segments. Behaviors whose segment
	// durations exceed WCET are allowed (the paper's execution times are
	// measured averages); the scheduler simply runs what it is given.
	Behavior JobBehavior
	// Seed isolates this task's jitter stream.
	Seed int64
}

// Validate checks the task parameters.
func (t *Task) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("rtos: task with empty name: %w", ErrConfig)
	}
	if t.Period <= 0 {
		return fmt.Errorf("rtos: task %s: period %d: %w", t.Name, t.Period, ErrConfig)
	}
	if t.Deadline < 0 || t.Phase < 0 || t.WCET < 0 {
		return fmt.Errorf("rtos: task %s: negative timing parameter: %w", t.Name, ErrConfig)
	}
	if t.Behavior == nil {
		return fmt.Errorf("rtos: task %s: nil behavior: %w", t.Name, ErrConfig)
	}
	return nil
}

// ExecListener observes scheduler activity. All callbacks run inside the
// simulation loop and must not call back into the scheduler.
type ExecListener interface {
	// OnSlice reports that task spent [start, end) executing seg,
	// advancing it from fraction frac0 to frac1 of its duration.
	OnSlice(task *Task, seg Segment, start, end int64, frac0, frac1 float64)
	// OnContextSwitch reports a dispatch changing the running context;
	// from or to is "" for the idle context.
	OnContextSwitch(t int64, from, to string)
	// OnTick reports a periodic timer interrupt.
	OnTick(t int64)
	// OnIdle reports that the CPU idled over [start, end).
	OnIdle(start, end int64)
	// OnJobRelease reports the release of task's job number idx.
	OnJobRelease(t int64, task *Task, idx int64)
	// OnJobComplete reports job completion; missed is true when it
	// finished past its absolute deadline.
	OnJobComplete(t int64, task *Task, idx int64, missed bool)
}

// NopListener is an ExecListener that ignores everything; embed it to
// implement only the callbacks of interest.
type NopListener struct{}

// OnSlice implements ExecListener.
func (NopListener) OnSlice(*Task, Segment, int64, int64, float64, float64) {}

// OnContextSwitch implements ExecListener.
func (NopListener) OnContextSwitch(int64, string, string) {}

// OnTick implements ExecListener.
func (NopListener) OnTick(int64) {}

// OnIdle implements ExecListener.
func (NopListener) OnIdle(int64, int64) {}

// OnJobRelease implements ExecListener.
func (NopListener) OnJobRelease(int64, *Task, int64) {}

// OnJobComplete implements ExecListener.
func (NopListener) OnJobComplete(int64, *Task, int64, bool) {}

// Tee fans scheduler events out to several listeners in order.
func Tee(listeners ...ExecListener) ExecListener {
	return teeListener(listeners)
}

type teeListener []ExecListener

// OnSlice implements ExecListener.
func (t teeListener) OnSlice(task *Task, seg Segment, start, end int64, f0, f1 float64) {
	for _, l := range t {
		l.OnSlice(task, seg, start, end, f0, f1)
	}
}

// OnContextSwitch implements ExecListener.
func (t teeListener) OnContextSwitch(tm int64, from, to string) {
	for _, l := range t {
		l.OnContextSwitch(tm, from, to)
	}
}

// OnTick implements ExecListener.
func (t teeListener) OnTick(tm int64) {
	for _, l := range t {
		l.OnTick(tm)
	}
}

// OnIdle implements ExecListener.
func (t teeListener) OnIdle(start, end int64) {
	for _, l := range t {
		l.OnIdle(start, end)
	}
}

// OnJobRelease implements ExecListener.
func (t teeListener) OnJobRelease(tm int64, task *Task, idx int64) {
	for _, l := range t {
		l.OnJobRelease(tm, task, idx)
	}
}

// OnJobComplete implements ExecListener.
func (t teeListener) OnJobComplete(tm int64, task *Task, idx int64, missed bool) {
	for _, l := range t {
		l.OnJobComplete(tm, task, idx, missed)
	}
}

// Config tunes the scheduler.
type Config struct {
	// TickPeriod is the timer interrupt period in microseconds
	// (default 1000 = 1 ms).
	TickPeriod int64
}

type jobState struct {
	task     *Task
	index    int64
	release  int64
	deadline int64
	segments []Segment
	segIdx   int
	segDone  int64 // executed time within current segment
	priority int   // smaller = more urgent
}

func (j *jobState) remaining() int64 {
	var r int64
	for i := j.segIdx; i < len(j.segments); i++ {
		d := j.segments[i].Duration
		if i == j.segIdx {
			d -= j.segDone
		}
		r += d
	}
	return r
}

// Scheduler is a preemptive fixed-priority scheduler over a sim.Engine.
type Scheduler struct {
	engine   *sim.Engine
	cfg      Config
	tasks    []*Task
	listener ExecListener
	rngs     map[string]*rand.Rand

	ready      []*jobState
	running    *jobState
	current    string // name of the running context, "" when idle
	sliceStart int64
	idleStart  int64
	isIdle     bool
	generation uint64 // invalidates stale slice-end events

	// Released counts total job releases; Completed total completions;
	// Missed total deadline misses.
	Released, Completed, Missed int64
}

// NewScheduler validates the task set and prepares a scheduler. The
// listener may be nil to discard events.
func NewScheduler(engine *sim.Engine, cfg Config, tasks []*Task, listener ExecListener) (*Scheduler, error) {
	if engine == nil {
		return nil, fmt.Errorf("rtos: nil engine: %w", ErrConfig)
	}
	if cfg.TickPeriod == 0 {
		cfg.TickPeriod = 1000
	}
	if cfg.TickPeriod < 0 {
		return nil, fmt.Errorf("rtos: tick period %d: %w", cfg.TickPeriod, ErrConfig)
	}
	if len(tasks) == 0 {
		return nil, fmt.Errorf("rtos: empty task set: %w", ErrConfig)
	}
	seen := map[string]bool{}
	for _, t := range tasks {
		if err := t.Validate(); err != nil {
			return nil, err
		}
		if seen[t.Name] {
			return nil, fmt.Errorf("rtos: duplicate task name %q: %w", t.Name, ErrConfig)
		}
		seen[t.Name] = true
	}
	if listener == nil {
		listener = NopListener{}
	}
	s := &Scheduler{
		engine:   engine,
		cfg:      cfg,
		tasks:    append([]*Task(nil), tasks...),
		listener: listener,
		rngs:     make(map[string]*rand.Rand, len(tasks)),
		isIdle:   true,
	}
	for _, t := range tasks {
		s.rngs[t.Name] = rand.New(rand.NewSource(t.Seed + 1))
	}
	return s, nil
}

// Utilization returns the task set's nominal CPU utilization Σ WCET/T.
func Utilization(tasks []*Task) float64 {
	u := 0.0
	for _, t := range tasks {
		u += float64(t.WCET) / float64(t.Period)
	}
	return u
}

// RMSchedulable applies the Liu & Layland sufficient bound
// U ≤ n(2^{1/n}−1) for rate-monotonic scheduling. A false result does
// not prove unschedulability (the bound is sufficient, not necessary).
func RMSchedulable(tasks []*Task) bool {
	n := float64(len(tasks))
	if n == 0 {
		return true
	}
	bound := n * (pow2inv(n) - 1)
	return Utilization(tasks) <= bound
}

func pow2inv(n float64) float64 {
	// 2^(1/n) via exp/log would pull in math; keep it explicit.
	// n >= 1 in all callers.
	x := 1.0
	// Newton iteration for x^n = 2.
	for i := 0; i < 64; i++ {
		xn := 1.0
		for j := 0; j < int(n); j++ {
			xn *= x
		}
		// derivative n*x^(n-1)
		d := n * xn / x
		next := x - (xn-2)/d
		if next == x {
			break
		}
		x = next
	}
	return x
}

// rmPriority returns the rate-monotonic priority of task index i within
// s.tasks: tasks sorted by (period, name) get increasing priority values.
func (s *Scheduler) rmPriority(task *Task) int {
	type key struct {
		period int64
		name   string
	}
	keys := make([]key, len(s.tasks))
	for i, t := range s.tasks {
		keys[i] = key{t.Period, t.Name}
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].period != keys[b].period {
			return keys[a].period < keys[b].period
		}
		return keys[a].name < keys[b].name
	})
	for i, k := range keys {
		if k.period == task.Period && k.name == task.Name {
			return i
		}
	}
	return len(keys)
}

// Start schedules the initial releases and timer ticks. Call once before
// running the engine.
func (s *Scheduler) Start() error {
	now := s.engine.Now()
	s.idleStart = now
	for _, t := range s.tasks {
		t := t
		if err := s.engine.At(now+t.Phase, func(tm int64) { s.release(t, 0, tm) }); err != nil {
			return err
		}
	}
	if s.cfg.TickPeriod > 0 {
		var tick func(tm int64)
		tick = func(tm int64) {
			// Charge the running slice up to the tick so listeners never
			// see execution reported more than one tick late; monitoring
			// sinks rely on (near) monotone emission timestamps.
			s.chargeRunning(tm)
			s.listener.OnTick(tm)
			if err := s.engine.After(s.cfg.TickPeriod, tick); err != nil {
				// Engine time only moves forward inside Run; After with a
				// positive delay cannot fail.
				panic(err)
			}
		}
		if err := s.engine.After(s.cfg.TickPeriod, tick); err != nil {
			return err
		}
	}
	return nil
}

// AddTaskAt dynamically introduces a task at absolute time t (used by the
// application-addition attack scenario). The task's first release occurs
// at t + task.Phase.
func (s *Scheduler) AddTaskAt(t int64, task *Task) error {
	if err := task.Validate(); err != nil {
		return err
	}
	return s.engine.At(t, func(tm int64) {
		for _, existing := range s.tasks {
			if existing.Name == task.Name {
				return // already present; ignore duplicate launch
			}
		}
		s.tasks = append(s.tasks, task)
		s.rngs[task.Name] = rand.New(rand.NewSource(task.Seed + 1))
		// Re-dispatch so RM priorities account for the newcomer.
		next := tm + task.Phase
		if err := s.engine.At(next, func(tm2 int64) { s.release(task, 0, tm2) }); err != nil {
			panic(err)
		}
	})
}

// RemoveTaskAt stops releasing task name's jobs from absolute time t on;
// an in-flight job is abandoned at its next dispatch (used by the
// shellcode host-kill and qsort-exit scenarios).
func (s *Scheduler) RemoveTaskAt(t int64, name string) error {
	return s.engine.At(t, func(tm int64) {
		for i, task := range s.tasks {
			if task.Name == name {
				s.tasks = append(s.tasks[:i], s.tasks[i+1:]...)
				break
			}
		}
		// Drop queued jobs of the task.
		kept := s.ready[:0]
		for _, j := range s.ready {
			if j.task.Name != name {
				kept = append(kept, j)
			}
		}
		s.ready = kept
		if s.running != nil && s.running.task.Name == name {
			s.chargeRunning(tm)
			s.running = nil
			s.generation++
			s.dispatch(tm)
		}
	})
}

// SpawnOneShotAt schedules a single job with the given segments at
// absolute time t, running above all periodic tasks (priority -1). It
// models sporadic kernel-context work such as insmod loading a module:
// the job goes through the normal dispatch/charge path, so its kernel
// service emission and its interference with the task set are both
// accounted for.
func (s *Scheduler) SpawnOneShotAt(t int64, name string, segs []Segment) error {
	if name == "" {
		return fmt.Errorf("rtos: one-shot with empty name: %w", ErrConfig)
	}
	if len(segs) == 0 {
		return fmt.Errorf("rtos: one-shot %q with no segments: %w", name, ErrConfig)
	}
	segsCopy := append([]Segment(nil), segs...)
	var total int64
	for _, seg := range segsCopy {
		if seg.Duration < 0 {
			return fmt.Errorf("rtos: one-shot %q with negative segment: %w", name, ErrConfig)
		}
		total += seg.Duration
	}
	task := &Task{
		Name:   name,
		Period: 1 << 40, // effectively aperiodic; never re-released
		WCET:   total,
		Behavior: BehaviorFunc(func(int64, *rand.Rand) []Segment {
			return segsCopy
		}),
	}
	return s.engine.At(t, func(now int64) {
		job := &jobState{
			task:     task,
			index:    0,
			release:  now,
			deadline: now + task.Period,
			segments: segsCopy,
			priority: -1, // above every rate-monotonic priority
		}
		s.Released++
		s.listener.OnJobRelease(now, task, 0)
		s.ready = append(s.ready, job)
		s.preemptCheck(now)
	})
}

func (s *Scheduler) release(t *Task, idx int64, now int64) {
	// Stop the release chain if the task was removed.
	alive := false
	for _, existing := range s.tasks {
		if existing == t {
			alive = true
			break
		}
	}
	if !alive {
		return
	}
	deadline := t.Deadline
	if deadline == 0 {
		deadline = t.Period
	}
	segs := t.Behavior.NewJob(idx, s.rngs[t.Name])
	job := &jobState{
		task:     t,
		index:    idx,
		release:  now,
		deadline: now + deadline,
		segments: segs,
		priority: s.rmPriority(t),
	}
	s.Released++
	s.listener.OnJobRelease(now, t, idx)

	// Schedule next release.
	if err := s.engine.After(t.Period, func(tm int64) { s.release(t, idx+1, tm) }); err != nil {
		panic(err)
	}

	if len(segs) == 0 || job.remaining() == 0 {
		// Degenerate zero-length job completes instantly.
		s.Completed++
		s.listener.OnJobComplete(now, t, idx, now > job.deadline)
		return
	}

	s.ready = append(s.ready, job)
	s.preemptCheck(now)
}

// preemptCheck re-evaluates the dispatch decision after a queue change.
func (s *Scheduler) preemptCheck(now int64) {
	best := s.bestReady()
	if s.running == nil {
		if best != nil {
			s.dispatch(now)
		}
		return
	}
	if best != nil && best.priority < s.running.priority {
		// Preempt: charge the running job and put it back in the queue.
		s.chargeRunning(now)
		s.ready = append(s.ready, s.running)
		s.running = nil
		s.generation++
		s.dispatch(now)
	}
}

func (s *Scheduler) bestReady() *jobState {
	var best *jobState
	for _, j := range s.ready {
		if best == nil ||
			j.priority < best.priority ||
			(j.priority == best.priority && j.release < best.release) ||
			(j.priority == best.priority && j.release == best.release && j.index < best.index) {
			best = j
		}
	}
	return best
}

func (s *Scheduler) removeReady(j *jobState) {
	for i, r := range s.ready {
		if r == j {
			s.ready = append(s.ready[:i], s.ready[i+1:]...)
			return
		}
	}
}

// chargeRunning accounts the running job's execution from sliceStart to
// now, emitting OnSlice per touched segment.
func (s *Scheduler) chargeRunning(now int64) {
	j := s.running
	if j == nil || now <= s.sliceStart {
		return
	}
	t := s.sliceStart
	elapsed := now - s.sliceStart
	for elapsed > 0 && j.segIdx < len(j.segments) {
		seg := j.segments[j.segIdx]
		left := seg.Duration - j.segDone
		run := elapsed
		if run > left {
			run = left
		}
		frac0 := 0.0
		if seg.Duration > 0 {
			frac0 = float64(j.segDone) / float64(seg.Duration)
		}
		j.segDone += run
		frac1 := 1.0
		if seg.Duration > 0 {
			frac1 = float64(j.segDone) / float64(seg.Duration)
		}
		s.listener.OnSlice(j.task, seg, t, t+run, frac0, frac1)
		t += run
		elapsed -= run
		if j.segDone >= seg.Duration {
			j.segIdx++
			j.segDone = 0
		}
	}
	s.sliceStart = now
}

// dispatch picks the best ready job and runs it. Call with running == nil.
func (s *Scheduler) dispatch(now int64) {
	best := s.bestReady()
	if best == nil {
		if !s.isIdle {
			s.isIdle = true
			s.idleStart = now
			s.listener.OnContextSwitch(now, s.current, "")
			s.current = ""
		}
		return
	}
	if s.isIdle {
		if now > s.idleStart {
			s.listener.OnIdle(s.idleStart, now)
		}
		s.isIdle = false
	}
	s.removeReady(best)
	s.running = best
	s.sliceStart = now
	if s.current != best.task.Name {
		s.listener.OnContextSwitch(now, s.current, best.task.Name)
		s.current = best.task.Name
	}
	s.generation++
	gen := s.generation
	rem := best.remaining()
	if err := s.engine.After(rem, func(tm int64) { s.sliceEnd(gen, tm) }); err != nil {
		panic(err)
	}
}

// sliceEnd fires when the running job would complete, unless a newer
// dispatch superseded it.
func (s *Scheduler) sliceEnd(gen uint64, now int64) {
	if gen != s.generation || s.running == nil {
		return
	}
	s.chargeRunning(now)
	j := s.running
	if j.segIdx < len(j.segments) {
		// Still work left (can happen if charging rounded); keep running.
		gen2 := s.generation
		if err := s.engine.After(j.remaining(), func(tm int64) { s.sliceEnd(gen2, tm) }); err != nil {
			panic(err)
		}
		return
	}
	s.running = nil
	missed := now > j.deadline
	s.Completed++
	if missed {
		s.Missed++
	}
	s.listener.OnJobComplete(now, j.task, j.index, missed)
	s.dispatch(now)
}

// FinishIdle flushes a trailing idle period at simulation end so OnIdle
// accounting covers the whole run.
func (s *Scheduler) FinishIdle() {
	now := s.engine.Now()
	if s.isIdle && now > s.idleStart {
		s.listener.OnIdle(s.idleStart, now)
		s.idleStart = now
	}
}
