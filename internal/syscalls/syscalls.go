// Package syscalls implements the second detection channel of the
// ensemble: a syscall-frequency-distribution detector in the spirit of
// Yoon et al.'s execution-context follow-up (arXiv 1501.05963). A
// Recorder listens to the RTOS scheduler and counts kernel service
// invocations per monitoring interval; a Detector models the clean
// per-service frequency distribution and scores new intervals by a
// Gaussian log-density over variance-stabilized counts — the same
// "lower score = more anomalous" convention as the MHM detector, so
// both channels calibrate and fuse identically.
//
// Frequencies are counted against a fixed vocabulary (the image's
// service catalog at construction time); executions of services outside
// it — e.g. a rootkit hook's module-space handler — fall into a
// trailing "other" bucket, which in the clean system stays at zero.
package syscalls

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/memheatmap/mhm/internal/mat"
	"github.com/memheatmap/mhm/internal/rtos"
	"github.com/memheatmap/mhm/internal/stats"
)

// Errors of the syscall channel.
var (
	// ErrConfig wraps invalid recorder or training configuration.
	ErrConfig = errors.New("syscalls: invalid configuration")
	// ErrVocabMismatch is returned when a sample's dimensionality differs
	// from the detector's vocabulary.
	ErrVocabMismatch = errors.New("syscalls: sample vocabulary differs from trained vocabulary")
)

// OtherBucket is the name of the out-of-vocabulary bucket.
const OtherBucket = "other"

// Sample is one interval's (or window's) per-service invocation counts.
// Counts are fractional because a partially executed syscall segment
// contributes its executed share.
type Sample struct {
	// Start and End bound the covered span in simulation microseconds.
	Start, End int64
	// Counts has one entry per vocabulary name (the recorder's Names).
	Counts []float64
}

// Recorder implements rtos.ExecListener: it accumulates per-interval
// kernel service invocation counts aligned with the Memometer's
// monitoring intervals (both clocks start at 0). It observes only — a
// session's heat maps are bit-identical with or without a Recorder
// attached.
type Recorder struct {
	rtos.NopListener

	interval int64
	names    []string
	index    map[string]int

	cur      []float64
	curStart int64
	started  bool
	samples  []Sample
}

// NewRecorder builds a recorder over the given service vocabulary
// (names are deduplicated and sorted; an "other" bucket is appended).
func NewRecorder(vocab []string, intervalMicros int64) (*Recorder, error) {
	if intervalMicros <= 0 {
		return nil, fmt.Errorf("syscalls: interval %d: %w", intervalMicros, ErrConfig)
	}
	if len(vocab) == 0 {
		return nil, fmt.Errorf("syscalls: empty vocabulary: %w", ErrConfig)
	}
	seen := map[string]bool{}
	names := make([]string, 0, len(vocab)+1)
	for _, n := range vocab {
		if n == "" || n == OtherBucket || seen[n] {
			continue
		}
		seen[n] = true
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("syscalls: vocabulary holds no usable names: %w", ErrConfig)
	}
	sort.Strings(names)
	names = append(names, OtherBucket)
	index := make(map[string]int, len(names))
	for i, n := range names {
		index[n] = i
	}
	return &Recorder{
		interval: intervalMicros,
		names:    names,
		index:    index,
		cur:      make([]float64, len(names)),
	}, nil
}

// Names returns the vocabulary, "other" last.
func (r *Recorder) Names() []string { return append([]string(nil), r.names...) }

// roll closes completed intervals up to (not including) the one holding t.
func (r *Recorder) roll(t int64) {
	if !r.started {
		r.curStart = 0
		r.started = true
	}
	for t >= r.curStart+r.interval {
		r.flush(r.curStart + r.interval)
	}
}

// flush closes the current interval at end and starts the next.
func (r *Recorder) flush(end int64) {
	counts := make([]float64, len(r.cur))
	copy(counts, r.cur)
	r.samples = append(r.samples, Sample{Start: r.curStart, End: end, Counts: counts})
	for i := range r.cur {
		r.cur[i] = 0
	}
	r.curStart = end
}

// add accumulates n invocations of service name at time t.
func (r *Recorder) add(t int64, name string, n float64) {
	if n <= 0 {
		return
	}
	r.roll(t)
	idx, ok := r.index[name]
	if !ok {
		idx = r.index[OtherBucket]
	}
	r.cur[idx] += n
}

// OnSlice implements rtos.ExecListener: a syscall segment's invocations
// accrue in proportion to the executed fraction, attributed to the
// interval holding the slice end.
func (r *Recorder) OnSlice(task *rtos.Task, seg rtos.Segment, start, end int64, frac0, frac1 float64) {
	if seg.Kind != rtos.Syscall || frac1 <= frac0 || seg.Invocations <= 0 {
		return
	}
	r.add(end, seg.Service, float64(seg.Invocations)*(frac1-frac0))
}

// OnTick implements rtos.ExecListener: the timer interrupt is kernel
// execution too and is part of the frequency signature.
func (r *Recorder) OnTick(t int64) { r.add(t, "sched_tick", 1) }

// OnContextSwitch implements rtos.ExecListener.
func (r *Recorder) OnContextSwitch(t int64, from, to string) { r.add(t, "context_switch", 1) }

// Finish closes the trailing interval at the horizon and returns all
// samples. Call once after the simulation run.
func (r *Recorder) Finish(horizon int64) []Sample {
	r.roll(horizon)
	if horizon > r.curStart {
		r.flush(horizon)
	}
	return r.samples
}

// Samples returns the completed samples collected so far.
func (r *Recorder) Samples() []Sample { return r.samples }

// Smooth returns sliding-window averages of the samples: output i
// averages samples [i-window+1, i] (truncated at the front). Window 1
// returns per-interval samples unchanged. Averaging over the task set's
// hyperperiod removes schedule-phase variance, which is what makes slow
// mimicry and drift visible against tight clean distributions.
func Smooth(samples []Sample, window int) ([]Sample, error) {
	if window <= 0 {
		return nil, fmt.Errorf("syscalls: window %d: %w", window, ErrConfig)
	}
	if window == 1 || len(samples) == 0 {
		return samples, nil
	}
	k := len(samples[0].Counts)
	out := make([]Sample, len(samples))
	acc := make([]float64, k)
	for i, s := range samples {
		if len(s.Counts) != k {
			return nil, fmt.Errorf("syscalls: sample %d has %d counts, want %d: %w", i, len(s.Counts), k, ErrVocabMismatch)
		}
		for j, c := range s.Counts {
			acc[j] += c
		}
		if i >= window {
			for j, c := range samples[i-window].Counts {
				acc[j] -= c
			}
		}
		n := i + 1
		if n > window {
			n = window
		}
		counts := make([]float64, k)
		for j := range acc {
			counts[j] = acc[j] / float64(n)
		}
		start := samples[i+1-n].Start
		out[i] = Sample{Start: start, End: s.End, Counts: counts}
	}
	return out, nil
}

// stdFloor keeps zero-variance services (typically the "other" bucket,
// at zero in every clean interval) from producing infinite z-scores
// while still making any activity on them stand out sharply.
const stdFloor = 0.25

// Threshold is one calibrated decision boundary, mirroring
// core.Threshold: a sample whose score falls below Theta is anomalous
// at expected false-positive rate P.
type Threshold struct {
	P     float64 `json:"p"`
	Theta float64 `json:"theta"`
}

// Detector models the clean per-service frequency distribution: a
// diagonal Gaussian over sqrt-transformed counts (the square root
// stabilizes Poisson-like count variance).
type Detector struct {
	// Names is the vocabulary the detector was trained on, "other" last.
	Names []string `json:"names"`
	// Mean and Std are per-service statistics of sqrt counts.
	Mean []float64 `json:"mean"`
	Std  []float64 `json:"std"`
	// Thresholds are sorted by P ascending.
	Thresholds []Threshold `json:"thresholds"`
}

// Train fits the clean frequency model on training samples and
// calibrates θ_p thresholds on a held-out clean set, mirroring the MHM
// detector's two-phase procedure.
func Train(names []string, train, calib []Sample, quantiles []float64) (*Detector, error) {
	if len(train) < 2 {
		return nil, fmt.Errorf("syscalls: %d training samples: %w", len(train), ErrConfig)
	}
	if len(calib) == 0 {
		return nil, fmt.Errorf("syscalls: empty calibration set: %w", ErrConfig)
	}
	k := len(names)
	if k == 0 {
		return nil, fmt.Errorf("syscalls: empty vocabulary: %w", ErrConfig)
	}
	d := &Detector{
		Names: append([]string(nil), names...),
		Mean:  make([]float64, k),
		Std:   make([]float64, k),
	}
	welford := make([]stats.Welford, k)
	for i, s := range train {
		if len(s.Counts) != k {
			return nil, fmt.Errorf("syscalls: training sample %d has %d counts, want %d: %w", i, len(s.Counts), k, ErrVocabMismatch)
		}
		for j, c := range s.Counts {
			welford[j].Add(math.Sqrt(c))
		}
	}
	for j := range welford {
		d.Mean[j] = welford[j].Mean()
		sd := welford[j].StdDev()
		if sd < stdFloor {
			sd = stdFloor
		}
		d.Std[j] = sd
	}
	scores := make([]float64, len(calib))
	for i, s := range calib {
		sc, err := d.Score(s)
		if err != nil {
			return nil, fmt.Errorf("syscalls: calibration sample %d: %w", i, err)
		}
		scores[i] = sc
	}
	for _, p := range quantiles {
		if p <= 0 || p >= 1 {
			return nil, fmt.Errorf("syscalls: quantile %g out of (0,1): %w", p, ErrConfig)
		}
		theta, err := stats.Quantile(scores, p)
		if err != nil {
			return nil, err
		}
		d.Thresholds = append(d.Thresholds, Threshold{P: p, Theta: theta})
	}
	sort.Slice(d.Thresholds, func(i, j int) bool { return d.Thresholds[i].P < d.Thresholds[j].P })
	return d, nil
}

// Score returns the sample's log-density-like score −½·Σ z²/K: lower is
// more anomalous, matching the MHM detector's orientation.
func (d *Detector) Score(s Sample) (float64, error) {
	if len(s.Counts) != len(d.Mean) {
		return 0, fmt.Errorf("syscalls: sample has %d counts, want %d: %w", len(s.Counts), len(d.Mean), ErrVocabMismatch)
	}
	sum := 0.0
	for j, c := range s.Counts {
		z := (math.Sqrt(c) - d.Mean[j]) / d.Std[j]
		sum += z * z
	}
	return -0.5 * sum / float64(len(d.Mean)), nil
}

// ScoreSeries scores every sample.
func (d *Detector) ScoreSeries(samples []Sample) ([]float64, error) {
	out := make([]float64, len(samples))
	for i, s := range samples {
		sc, err := d.Score(s)
		if err != nil {
			return nil, fmt.Errorf("syscalls: sample %d: %w", i, err)
		}
		out[i] = sc
	}
	return out, nil
}

// quantileTol matches threshold quantile labels: p values arrive
// through flag parsing and JSON round-trips, so exact float equality
// would miss a calibrated 0.995.
const quantileTol = 1e-9

// Threshold returns θ_p for a calibrated quantile, matched within
// quantileTol.
func (d *Detector) Threshold(p float64) (float64, error) {
	for _, th := range d.Thresholds {
		if mat.EqTol(th.P, p, quantileTol) {
			return th.Theta, nil
		}
	}
	return 0, fmt.Errorf("syscalls: p=%g not calibrated: %w", p, ErrConfig)
}
