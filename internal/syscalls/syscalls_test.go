package syscalls

import (
	"errors"
	"math"
	"testing"

	"github.com/memheatmap/mhm/internal/rtos"
)

func TestNewRecorderValidation(t *testing.T) {
	if _, err := NewRecorder(nil, 10_000); !errors.Is(err, ErrConfig) {
		t.Fatalf("empty vocab: got %v, want ErrConfig", err)
	}
	if _, err := NewRecorder([]string{"a"}, 0); !errors.Is(err, ErrConfig) {
		t.Fatalf("zero interval: got %v, want ErrConfig", err)
	}
	if _, err := NewRecorder([]string{"", OtherBucket}, 10_000); !errors.Is(err, ErrConfig) {
		t.Fatalf("unusable vocab: got %v, want ErrConfig", err)
	}
}

func TestRecorderBucketsByInterval(t *testing.T) {
	r, err := NewRecorder([]string{"sys_read", "sys_write"}, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	seg := func(svc string, inv int) rtos.Segment {
		return rtos.Segment{Kind: rtos.Syscall, Service: svc, Invocations: inv}
	}
	// Interval 0: two full reads, one half-executed write.
	r.OnSlice(nil, seg("sys_read", 2), 0, 1000, 0, 1)
	r.OnSlice(nil, seg("sys_write", 2), 1000, 2000, 0, 0.25)
	// Interval 1: the rest of the write, plus an out-of-vocabulary service.
	r.OnSlice(nil, seg("sys_write", 2), 12_000, 13_000, 0.25, 1)
	r.OnSlice(nil, seg("rootkit_hook", 3), 15_000, 15_100, 0, 1)
	// Compute segments must not count.
	r.OnSlice(nil, rtos.Segment{Kind: rtos.Compute, Duration: 500}, 16_000, 16_500, 0, 1)
	samples := r.Finish(20_000)
	if len(samples) != 2 {
		t.Fatalf("got %d samples, want 2", len(samples))
	}
	names := r.Names()
	idx := map[string]int{}
	for i, n := range names {
		idx[n] = i
	}
	if names[len(names)-1] != OtherBucket {
		t.Fatalf("vocabulary %v does not end with %q", names, OtherBucket)
	}
	s0, s1 := samples[0], samples[1]
	if got := s0.Counts[idx["sys_read"]]; math.Abs(got-2) > 1e-12 {
		t.Errorf("interval 0 reads = %g, want 2", got)
	}
	if got := s0.Counts[idx["sys_write"]]; math.Abs(got-0.5) > 1e-12 {
		t.Errorf("interval 0 writes = %g, want 0.5", got)
	}
	if got := s1.Counts[idx["sys_write"]]; math.Abs(got-1.5) > 1e-12 {
		t.Errorf("interval 1 writes = %g, want 1.5", got)
	}
	if got := s1.Counts[idx[OtherBucket]]; math.Abs(got-3) > 1e-12 {
		t.Errorf("interval 1 other = %g, want 3", got)
	}
	if s0.Start != 0 || s0.End != 10_000 || s1.Start != 10_000 || s1.End != 20_000 {
		t.Errorf("sample bounds: %+v %+v", s0, s1)
	}
}

func TestRecorderEmitsEmptyIntervals(t *testing.T) {
	r, err := NewRecorder([]string{"sys_read"}, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	r.OnTick(1000)
	r.OnTick(45_000) // three intervals later
	samples := r.Finish(50_000)
	if len(samples) != 5 {
		t.Fatalf("got %d samples, want 5", len(samples))
	}
	// "sched_tick" is outside this vocabulary, so ticks land in "other".
	var nonZero int
	for _, s := range samples {
		for _, c := range s.Counts {
			if c > 0 {
				nonZero++
			}
		}
	}
	if nonZero != 2 {
		t.Errorf("non-zero buckets = %d, want 2 (one tick each in intervals 0 and 4)", nonZero)
	}
}

func TestSmooth(t *testing.T) {
	samples := []Sample{
		{Start: 0, End: 10, Counts: []float64{4, 0}},
		{Start: 10, End: 20, Counts: []float64{0, 2}},
		{Start: 20, End: 30, Counts: []float64{2, 2}},
	}
	out, err := Smooth(samples, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{4, 0}, {2, 1}, {1, 2}}
	for i, s := range out {
		for j := range s.Counts {
			if math.Abs(s.Counts[j]-want[i][j]) > 1e-12 {
				t.Errorf("smooth[%d][%d] = %g, want %g", i, j, s.Counts[j], want[i][j])
			}
		}
	}
	if out[1].Start != 0 || out[1].End != 20 {
		t.Errorf("smooth[1] bounds = [%d,%d), want [0,20)", out[1].Start, out[1].End)
	}
	if _, err := Smooth(samples, 0); !errors.Is(err, ErrConfig) {
		t.Fatalf("window 0: got %v, want ErrConfig", err)
	}
}

// synthetic returns n samples with reads ~ baseline plus optional extra.
func synthetic(n int, seedOff, extra float64) []Sample {
	out := make([]Sample, n)
	for i := range out {
		// Deterministic wobble standing in for schedule-phase variance.
		wobble := 2 * math.Sin(float64(i)+seedOff)
		out[i] = Sample{
			Start:  int64(i) * 10_000,
			End:    int64(i+1) * 10_000,
			Counts: []float64{40 + wobble + extra, 10 + wobble/2, 0},
		}
	}
	return out
}

func TestDetectorSeparatesShiftedFrequencies(t *testing.T) {
	names := []string{"sys_read", "sys_write", OtherBucket}
	det, err := Train(names, synthetic(200, 0, 0), synthetic(100, 1, 0), []float64{0.01})
	if err != nil {
		t.Fatal(err)
	}
	cleanScores, err := det.ScoreSeries(synthetic(50, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	hotScores, err := det.ScoreSeries(synthetic(50, 3, 25))
	if err != nil {
		t.Fatal(err)
	}
	meanClean, meanHot := 0.0, 0.0
	for i := range cleanScores {
		meanClean += cleanScores[i]
		meanHot += hotScores[i]
	}
	meanClean /= float64(len(cleanScores))
	meanHot /= float64(len(hotScores))
	if meanHot >= meanClean {
		t.Errorf("shifted-frequency mean score %.3f not below clean %.3f", meanHot, meanClean)
	}
	theta, err := det.Threshold(0.01)
	if err != nil {
		t.Fatal(err)
	}
	flagged := 0
	for _, s := range hotScores {
		if s < theta {
			flagged++
		}
	}
	if flagged < len(hotScores)/2 {
		t.Errorf("only %d/%d shifted samples below θ", flagged, len(hotScores))
	}
}

func TestDetectorOtherBucketIsSharp(t *testing.T) {
	names := []string{"sys_read", "sys_write", OtherBucket}
	det, err := Train(names, synthetic(200, 0, 0), synthetic(100, 1, 0), []float64{0.01})
	if err != nil {
		t.Fatal(err)
	}
	s := synthetic(1, 4, 0)[0]
	base, err := det.Score(s)
	if err != nil {
		t.Fatal(err)
	}
	s.Counts[2] = 5 // rootkit-hook-style out-of-vocabulary executions
	hooked, err := det.Score(s)
	if err != nil {
		t.Fatal(err)
	}
	if hooked >= base {
		t.Errorf("other-bucket activity score %.3f not below clean %.3f", hooked, base)
	}
	theta, err := det.Threshold(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if hooked >= theta {
		t.Errorf("other-bucket activity score %.3f not below θ=%.3f", hooked, theta)
	}
}

func TestTrainValidation(t *testing.T) {
	names := []string{"a", OtherBucket}
	good := []Sample{{Counts: []float64{1, 0}}, {Counts: []float64{2, 0}}}
	if _, err := Train(names, good[:1], good, []float64{0.01}); !errors.Is(err, ErrConfig) {
		t.Errorf("tiny training set: got %v, want ErrConfig", err)
	}
	if _, err := Train(names, good, nil, []float64{0.01}); !errors.Is(err, ErrConfig) {
		t.Errorf("empty calib: got %v, want ErrConfig", err)
	}
	if _, err := Train(names, good, good, []float64{2}); !errors.Is(err, ErrConfig) {
		t.Errorf("bad quantile: got %v, want ErrConfig", err)
	}
	bad := []Sample{{Counts: []float64{1}}, {Counts: []float64{2}}}
	if _, err := Train(names, bad, good, []float64{0.01}); !errors.Is(err, ErrVocabMismatch) {
		t.Errorf("mismatched sample: got %v, want ErrVocabMismatch", err)
	}
	det, err := Train(names, good, good, []float64{0.01})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Score(Sample{Counts: []float64{1}}); !errors.Is(err, ErrVocabMismatch) {
		t.Errorf("score mismatch: got %v, want ErrVocabMismatch", err)
	}
	if _, err := det.Threshold(0.5); !errors.Is(err, ErrConfig) {
		t.Errorf("unknown quantile: got %v, want ErrConfig", err)
	}
}
