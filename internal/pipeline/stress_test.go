package pipeline

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/memheatmap/mhm/internal/memometer"
	"github.com/memheatmap/mhm/internal/obs"
)

// TestConcurrentPipelineAndSnapshot exercises the deployment shape the
// observability layer exists for: the simulation thread drives the
// memometer double buffer and the pipeline, while exporter goroutines
// concurrently poll the registry and the pipeline's read accessors. Run
// under -race this proves the snapshot path never tears live state.
func TestConcurrentPipelineAndSnapshot(t *testing.T) {
	det, _ := trainDetector(t, false)
	reg := obs.NewRegistry()
	det.Instrument(reg)
	p, err := New(det, Config{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	dev := memometer.New()
	if err := dev.Configure(memometer.Config{Region: testDef, IntervalMicros: 10_000}); err != nil {
		t.Fatal(err)
	}
	dev.SetMetrics(reg)

	done := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := reg.Snapshot()
				if snap.Counters["pipeline.intervals"] > 0 && snap.Histograms["pipeline.analysis_micros"].Count == 0 {
					t.Error("intervals counted but analysis histogram empty")
					return
				}
				_ = p.Records()
				_ = p.Budget()
				_ = p.Raised()
				_ = p.Alarms()
			}
		}()
	}

	// Simulation thread: per interval, snoop a burst of in-region
	// traffic, cross the boundary (buffer swap), collect, analyze.
	const intervals = 40
	rng := rand.New(rand.NewSource(7))
	for n := int64(0); n < intervals; n++ {
		start := n * 10_000
		for k := 0; k < 200; k++ {
			addr := testDef.AddrBase + uint64(rng.Intn(int(testDef.Size)))
			if err := dev.SnoopBurst(start+int64(k)*40, addr, 1+uint32(rng.Intn(8))); err != nil {
				t.Fatal(err)
			}
		}
		if err := dev.Tick(start + 10_000); err != nil {
			t.Fatal(err)
		}
		m, err := dev.Collect()
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Process(m); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	readers.Wait()

	if got := len(p.Records()); got != intervals {
		t.Errorf("records = %d, want %d", got, intervals)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["memometer.swaps"]; got != intervals {
		t.Errorf("memometer.swaps = %d, want %d", got, intervals)
	}
	if got := snap.Counters["pipeline.intervals"]; got != intervals {
		t.Errorf("pipeline.intervals = %d, want %d", got, intervals)
	}
	if got := snap.Histograms["pipeline.analysis_micros"].Count; got != intervals {
		t.Errorf("analysis histogram count = %d, want %d", got, intervals)
	}
	if got := snap.Counters["memometer.snooped"]; got != intervals*200 {
		t.Errorf("memometer.snooped = %d, want %d", got, intervals*200)
	}
}
