// Package pipeline assembles the secure core's online loop: every
// completed memory heat map is classified against a trained detector,
// the verdict is debounced into alarms, and the analysis cost is
// checked against the real-time budget — the paper's deployment model,
// where the analysis of interval i must finish while interval i+1 is
// being recorded (§3.1's double buffering, §5.4's timing argument).
package pipeline

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/memheatmap/mhm/internal/alarm"
	"github.com/memheatmap/mhm/internal/core"
	"github.com/memheatmap/mhm/internal/heatmap"
	"github.com/memheatmap/mhm/internal/obs"
)

// ErrConfig wraps invalid pipeline configuration.
var ErrConfig = errors.New("pipeline: invalid configuration")

// Config tunes the online pipeline.
type Config struct {
	// Quantile selects the calibrated threshold to act on (default 0.01
	// = the paper's θ1).
	Quantile float64
	// Alarm configures debouncing (zero value = alarm defaults).
	Alarm alarm.Config
	// UseResidual additionally applies the residual test when the
	// detector was calibrated with residual quantiles.
	UseResidual bool
	// Metrics, when non-nil, instruments the pipeline and its alarm
	// runtime with live counters and a per-interval analysis-latency
	// histogram (catalogue: DESIGN.md §6). The detector is NOT
	// instrumented here — call Detector.Instrument separately, since
	// detectors may be shared across pipelines.
	Metrics *obs.Registry
}

// IntervalRecord is one analyzed interval.
type IntervalRecord struct {
	Index      int
	Start, End int64
	LogDensity float64
	Residual   float64 // 0 unless UseResidual
	Anomalous  bool
	// AnalysisMicros is the measured wall-clock analysis cost.
	AnalysisMicros float64
	// Event is the alarm transition this interval triggered, if any.
	Event *alarm.Event
}

// Pipeline is the online analyzer; plug Process into
// securecore.SessionConfig.OnMHM. A mutex serializes Process against
// the read-side accessors (Records, Budget, Alarms, Raised, Analyze),
// so a metrics or status exporter may poll a running pipeline from
// another goroutine.
type Pipeline struct {
	det *core.Detector
	cfg Config
	rt  *alarm.Runtime

	mu      sync.Mutex
	records []IntervalRecord
	index   int

	// Observability (nil without Config.Metrics).
	intervals *obs.Counter
	anomalous *obs.Counter
	overruns  *obs.Counter
	analysis  *obs.Histogram
}

// New builds a pipeline over a trained detector.
func New(det *core.Detector, cfg Config) (*Pipeline, error) {
	if det == nil {
		return nil, fmt.Errorf("pipeline: nil detector: %w", ErrConfig)
	}
	if cfg.Quantile == 0 {
		cfg.Quantile = 0.01
	}
	if _, err := det.Threshold(cfg.Quantile); err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	if cfg.UseResidual {
		if _, err := det.ResidualThreshold(cfg.Quantile); err != nil {
			return nil, fmt.Errorf("pipeline: residual requested: %w", err)
		}
	}
	rt, err := alarm.NewRuntime(cfg.Alarm)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{det: det, cfg: cfg, rt: rt}
	if cfg.Metrics != nil {
		p.intervals = cfg.Metrics.Counter("pipeline.intervals")
		p.anomalous = cfg.Metrics.Counter("pipeline.anomalous")
		p.overruns = cfg.Metrics.Counter("pipeline.overruns")
		p.analysis = cfg.Metrics.Histogram("pipeline.analysis_micros", obs.LatencyBuckets)
		rt.Instrument(cfg.Metrics)
	}
	return p, nil
}

// Process analyzes one completed MHM; it is the securecore OnMHM hook.
// Safe for concurrent use with the pipeline's read-side accessors.
func (p *Pipeline) Process(m *heatmap.HeatMap) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	start := time.Now()
	var (
		anomalous bool
		lp, res   float64
		err       error
	)
	if p.cfg.UseResidual {
		anomalous, lp, res, err = p.det.ClassifyWithResidual(m, p.cfg.Quantile)
	} else {
		anomalous, lp, err = p.det.Classify(m, p.cfg.Quantile)
	}
	if err != nil {
		return fmt.Errorf("pipeline: interval %d: %w", p.index, err)
	}
	rec := IntervalRecord{
		Index:          p.index,
		Start:          m.Start,
		End:            m.End,
		LogDensity:     lp,
		Residual:       res,
		Anomalous:      anomalous,
		AnalysisMicros: float64(time.Since(start).Nanoseconds()) / 1e3,
	}
	rec.Event = p.rt.Observe(anomalous, m.End)
	p.records = append(p.records, rec)
	p.index++

	p.intervals.Inc()
	if anomalous {
		p.anomalous.Inc()
	}
	p.analysis.Observe(rec.AnalysisMicros)
	// Live deadline accounting against this interval's own length — the
	// §5.4 feasibility condition, visible while the loop runs rather
	// than only in the post-hoc Budget report.
	if budget := m.End - m.Start; budget > 0 && int64(rec.AnalysisMicros) >= budget {
		p.overruns.Inc()
	}
	return nil
}

// Records returns every analyzed interval so far.
func (p *Pipeline) Records() []IntervalRecord {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]IntervalRecord, len(p.records))
	copy(out, p.records)
	return out
}

// Alarms returns the alarm transitions so far.
func (p *Pipeline) Alarms() []alarm.Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rt.Events()
}

// Raised reports the current alarm state.
func (p *Pipeline) Raised() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rt.Raised()
}

// BudgetReport summarizes whether the analysis fits the monitoring
// interval — the paper's §5.4 feasibility argument.
type BudgetReport struct {
	Intervals int
	// MeanMicros and MaxMicros are analysis-cost statistics.
	MeanMicros, MaxMicros float64
	// IntervalMicros is the budget (0 if no intervals were seen).
	IntervalMicros int64
	// Overruns counts intervals whose analysis exceeded the budget; with
	// double buffering one overrun drops one MHM.
	Overruns int
}

// Budget computes the report against the MHM interval length.
func (p *Pipeline) Budget() BudgetReport {
	p.mu.Lock()
	defer p.mu.Unlock()
	rep := BudgetReport{Intervals: len(p.records)}
	if len(p.records) == 0 {
		return rep
	}
	rep.IntervalMicros = p.records[0].End - p.records[0].Start
	sum := 0.0
	for _, r := range p.records {
		sum += r.AnalysisMicros
		if r.AnalysisMicros > rep.MaxMicros {
			rep.MaxMicros = r.AnalysisMicros
		}
		if int64(r.AnalysisMicros) >= rep.IntervalMicros {
			rep.Overruns++
		}
	}
	rep.MeanMicros = sum / float64(len(p.records))
	return rep
}

// Analyze summarizes detection against a ground-truth event interval
// (negative for a clean run), delegating to the alarm runtime.
func (p *Pipeline) Analyze(eventInterval int) alarm.Report {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rt.Analyze(eventInterval)
}
