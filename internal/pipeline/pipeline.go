// Package pipeline assembles the secure core's online loop: every
// completed memory heat map is classified against a trained detector,
// the verdict is debounced into alarms, and the analysis cost is
// checked against the real-time budget — the paper's deployment model,
// where the analysis of interval i must finish while interval i+1 is
// being recorded (§3.1's double buffering, §5.4's timing argument).
package pipeline

import (
	"errors"
	"fmt"
	"time"

	"github.com/memheatmap/mhm/internal/alarm"
	"github.com/memheatmap/mhm/internal/core"
	"github.com/memheatmap/mhm/internal/heatmap"
)

// ErrConfig wraps invalid pipeline configuration.
var ErrConfig = errors.New("pipeline: invalid configuration")

// Config tunes the online pipeline.
type Config struct {
	// Quantile selects the calibrated threshold to act on (default 0.01
	// = the paper's θ1).
	Quantile float64
	// Alarm configures debouncing (zero value = alarm defaults).
	Alarm alarm.Config
	// UseResidual additionally applies the residual test when the
	// detector was calibrated with residual quantiles.
	UseResidual bool
}

// IntervalRecord is one analyzed interval.
type IntervalRecord struct {
	Index      int
	Start, End int64
	LogDensity float64
	Residual   float64 // 0 unless UseResidual
	Anomalous  bool
	// AnalysisMicros is the measured wall-clock analysis cost.
	AnalysisMicros float64
	// Event is the alarm transition this interval triggered, if any.
	Event *alarm.Event
}

// Pipeline is the online analyzer; plug Process into
// securecore.SessionConfig.OnMHM.
type Pipeline struct {
	det *core.Detector
	cfg Config
	rt  *alarm.Runtime

	records []IntervalRecord
	index   int
}

// New builds a pipeline over a trained detector.
func New(det *core.Detector, cfg Config) (*Pipeline, error) {
	if det == nil {
		return nil, fmt.Errorf("pipeline: nil detector: %w", ErrConfig)
	}
	if cfg.Quantile == 0 {
		cfg.Quantile = 0.01
	}
	if _, err := det.Threshold(cfg.Quantile); err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	if cfg.UseResidual {
		if _, err := det.ResidualThreshold(cfg.Quantile); err != nil {
			return nil, fmt.Errorf("pipeline: residual requested: %w", err)
		}
	}
	rt, err := alarm.NewRuntime(cfg.Alarm)
	if err != nil {
		return nil, err
	}
	return &Pipeline{det: det, cfg: cfg, rt: rt}, nil
}

// Process analyzes one completed MHM; it is the securecore OnMHM hook.
func (p *Pipeline) Process(m *heatmap.HeatMap) error {
	start := time.Now()
	var (
		anomalous bool
		lp, res   float64
		err       error
	)
	if p.cfg.UseResidual {
		anomalous, lp, res, err = p.det.ClassifyWithResidual(m, p.cfg.Quantile)
	} else {
		anomalous, lp, err = p.det.Classify(m, p.cfg.Quantile)
	}
	if err != nil {
		return fmt.Errorf("pipeline: interval %d: %w", p.index, err)
	}
	rec := IntervalRecord{
		Index:          p.index,
		Start:          m.Start,
		End:            m.End,
		LogDensity:     lp,
		Residual:       res,
		Anomalous:      anomalous,
		AnalysisMicros: float64(time.Since(start).Nanoseconds()) / 1e3,
	}
	rec.Event = p.rt.Observe(anomalous, m.End)
	p.records = append(p.records, rec)
	p.index++
	return nil
}

// Records returns every analyzed interval so far.
func (p *Pipeline) Records() []IntervalRecord {
	out := make([]IntervalRecord, len(p.records))
	copy(out, p.records)
	return out
}

// Alarms returns the alarm transitions so far.
func (p *Pipeline) Alarms() []alarm.Event { return p.rt.Events() }

// Raised reports the current alarm state.
func (p *Pipeline) Raised() bool { return p.rt.Raised() }

// BudgetReport summarizes whether the analysis fits the monitoring
// interval — the paper's §5.4 feasibility argument.
type BudgetReport struct {
	Intervals int
	// MeanMicros and MaxMicros are analysis-cost statistics.
	MeanMicros, MaxMicros float64
	// IntervalMicros is the budget (0 if no intervals were seen).
	IntervalMicros int64
	// Overruns counts intervals whose analysis exceeded the budget; with
	// double buffering one overrun drops one MHM.
	Overruns int
}

// Budget computes the report against the MHM interval length.
func (p *Pipeline) Budget() BudgetReport {
	rep := BudgetReport{Intervals: len(p.records)}
	if len(p.records) == 0 {
		return rep
	}
	rep.IntervalMicros = p.records[0].End - p.records[0].Start
	sum := 0.0
	for _, r := range p.records {
		sum += r.AnalysisMicros
		if r.AnalysisMicros > rep.MaxMicros {
			rep.MaxMicros = r.AnalysisMicros
		}
		if int64(r.AnalysisMicros) >= rep.IntervalMicros {
			rep.Overruns++
		}
	}
	rep.MeanMicros = sum / float64(len(p.records))
	return rep
}

// Analyze summarizes detection against a ground-truth event interval
// (negative for a clean run), delegating to the alarm runtime.
func (p *Pipeline) Analyze(eventInterval int) alarm.Report {
	return p.rt.Analyze(eventInterval)
}
